// A volatile grid: machine performance changes *during* execution. One
// machine starts healthy and degrades 20x mid-query (a step-load profile,
// as if another job landed on it); a second machine's cost factor
// fluctuates per tuple; the third drifts naturally. The adaptive system
// notices the step, sheds the degraded machine's backlog through the
// recovery logs and rebalances the remaining work, while the static
// system is dragged down by the degraded machine for the rest of the run.
//
//   ./build/examples/volatile_grid

#include <cstdio>

#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

using namespace gqp;

namespace {

double RunOnce(bool adaptive, const TablePtr& sequences,
               const TablePtr& interactions) {
  GridOptions grid_options;
  grid_options.num_evaluators = 3;
  grid_options.adaptive = adaptive;
  GridSetup grid(grid_options);
  if (!grid.Initialize().ok()) return -1;

  (void)grid.AddTable(sequences);
  (void)grid.AddTable(interactions);
  (void)grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);

  // Machine 0: fine until t=300 ms, then 20x slower, recovers at t=1200 ms.
  (void)grid.PerturbEvaluator(
      0, "ws:EntropyAnalyser",
      std::make_shared<StepPerturbation>(std::vector<StepPerturbation::Step>{
          {300.0, 20.0}}));
  // Machine 1: per-tuple cost factor ~ N(1.5, 0.5) in [0.5, 3].
  (void)grid.PerturbEvaluator(
      1, "ws:EntropyAnalyser",
      std::make_shared<GaussianFactorPerturbation>(1.5, 0.5, 0.5, 3.0, 7));
  // Machine 2: healthy, with natural drift.
  (void)grid.PerturbEvaluator(
      2, "ws:EntropyAnalyser",
      std::make_shared<DriftPerturbation>(0.2, 250.0, 11));

  QueryOptions options;
  options.adaptivity.enabled = adaptive;
  options.adaptivity.response = ResponseType::kRetrospective;

  Result<int> query =
      grid.gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), options);
  if (!query.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 query.status().ToString().c_str());
    return -1;
  }
  grid.simulator()->RunToCompletion();
  Result<QueryResult> result = grid.gdqs()->GetResult(*query);
  if (!result.ok() || !result->complete ||
      result->rows.size() != sequences->num_rows()) {
    std::fprintf(stderr, "run failed or lost rows\n");
    return -1;
  }

  Result<QueryStatsSnapshot> stats = grid.gdqs()->CollectStats(*query);
  if (stats.ok()) {
    std::printf("  tuples per machine:");
    for (const uint64_t n : stats->tuples_per_evaluator) {
      std::printf(" %llu", static_cast<unsigned long long>(n));
    }
    if (adaptive) {
      std::printf("  (digests %llu, rounds applied %llu, recalled %llu)",
                  static_cast<unsigned long long>(stats->med_notifications),
                  static_cast<unsigned long long>(stats->rounds_applied),
                  static_cast<unsigned long long>(stats->resent_tuples));
    }
    std::printf("\n");
  }
  return result->response_time_ms;
}

}  // namespace

int main() {
  ProteinSequencesSpec spec;
  spec.num_rows = 6000;
  TablePtr sequences = GenerateProteinSequences(spec);
  TablePtr interactions = GenerateProteinInteractions({});

  std::printf("Q1 over 3 machines on a volatile grid:\n");
  std::printf("  machine 0: degrades 20x at t=300ms (step load)\n");
  std::printf("  machine 1: per-tuple cost ~ N(1.5, 0.5)\n");
  std::printf("  machine 2: healthy with natural drift\n");

  std::printf("\n-- static --\n");
  const double static_ms = RunOnce(false, sequences, interactions);
  std::printf("  response: %.1f virtual ms\n", static_ms);

  std::printf("\n-- adaptive (A1 + R1) --\n");
  const double adaptive_ms = RunOnce(true, sequences, interactions);
  std::printf("  response: %.1f virtual ms\n", adaptive_ms);

  if (static_ms < 0 || adaptive_ms < 0) return 1;
  std::printf("\nadaptive is %.2fx faster on the volatile grid\n",
              static_ms / adaptive_ms);
  return 0;
}
