// Adaptive partitioned hash join (the paper's Q2 scenario): the join of
// protein_sequences with protein_interactions is partitioned over two
// machines; one machine sleeps 10 ms before every join tuple. With the
// retrospective (R1) response, the system repartitions the join's hash
// table state through the recovery logs at runtime. The example shows the
// final state distribution and verifies the join result against a locally
// computed reference.
//
//   ./build/examples/adaptive_join

#include <cstdio>
#include <set>

#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

using namespace gqp;

namespace {

size_t ReferenceJoinSize(const Table& sequences, const Table& interactions) {
  std::set<std::string> orfs;
  for (const Tuple& row : sequences.rows()) orfs.insert(row[0].AsString());
  size_t matches = 0;
  for (const Tuple& row : interactions.rows()) {
    if (orfs.count(row[0].AsString()) > 0) ++matches;
  }
  return matches;
}

struct RunOutcome {
  double response_ms = -1;
  size_t rows = 0;
};

RunOutcome RunOnce(bool adaptive, const TablePtr& sequences,
                   const TablePtr& interactions) {
  GridOptions grid_options;
  grid_options.num_evaluators = 2;
  grid_options.adaptive = adaptive;
  GridSetup grid(grid_options);
  if (!grid.Initialize().ok()) return {};

  (void)grid.AddTable(sequences);
  (void)grid.AddTable(interactions);
  (void)grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);

  // sleep(10 ms) before each join tuple on machine 0 — the paper's second
  // load-injection method.
  (void)grid.PerturbEvaluator(0, "op:hash_join",
                              std::make_shared<AddedDelayPerturbation>(10.0));

  QueryOptions options;
  options.adaptivity.enabled = adaptive;
  options.adaptivity.response = ResponseType::kRetrospective;
  options.optimizer.costs.scan_cost_ms = 3.5;
  options.optimizer.costs.join_probe_cost_ms = 1.0;
  options.optimizer.costs.join_build_cost_ms = 0.5;

  Result<int> query =
      grid.gdqs()->SubmitQuery(QuerySql(QueryKind::kQ2), options);
  if (!query.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 query.status().ToString().c_str());
    return {};
  }
  grid.simulator()->RunToCompletion();
  Result<QueryResult> result = grid.gdqs()->GetResult(*query);
  if (!result.ok() || !result->complete) return {};

  // Inspect the join state that ended up on each machine.
  std::printf("  join build-state distribution:");
  for (int i = 0; i < 2; ++i) {
    Gqes* gqes = grid.gqes_on(grid.evaluator_node(i)->id());
    for (FragmentExecutor* executor : gqes->Executors()) {
      if (const HashJoinOperator* join = executor->FindHashJoin()) {
        std::printf(" machine%d=%zu", i, join->StateSize());
      }
    }
  }
  Result<QueryStatsSnapshot> stats = grid.gdqs()->CollectStats(*query);
  if (stats.ok() && adaptive) {
    std::printf("  (resent through recovery logs: %llu tuples, rounds: %llu)",
                static_cast<unsigned long long>(stats->resent_tuples),
                static_cast<unsigned long long>(stats->rounds_applied));
  }
  std::printf("\n");
  return {result->response_time_ms, result->rows.size()};
}

}  // namespace

int main() {
  TablePtr sequences = GenerateProteinSequences({});
  TablePtr interactions = GenerateProteinInteractions({});
  const size_t expected = ReferenceJoinSize(*sequences, *interactions);
  std::printf("Q2: join of %zu sequences with %zu interactions "
              "(expected %zu result rows)\n",
              sequences->num_rows(), interactions->num_rows(), expected);
  std::printf("machine 0 sleeps 10 ms before every join tuple\n");

  std::printf("\n-- static execution --\n");
  const RunOutcome static_run = RunOnce(false, sequences, interactions);
  std::printf("  response: %.1f virtual ms, %zu rows\n",
              static_run.response_ms, static_run.rows);

  std::printf("\n-- adaptive execution (A1 + R1, state repartitioning) --\n");
  const RunOutcome adaptive_run = RunOnce(true, sequences, interactions);
  std::printf("  response: %.1f virtual ms, %zu rows\n",
              adaptive_run.response_ms, adaptive_run.rows);

  if (static_run.rows != expected || adaptive_run.rows != expected) {
    std::fprintf(stderr,
                 "FATAL: result cardinality mismatch (expected %zu)\n",
                 expected);
    return 1;
  }
  std::printf(
      "\nresult correctness verified; adaptive is %.2fx faster while "
      "producing the identical join result\n",
      static_run.response_ms / adaptive_run.response_ms);
  return 0;
}
