// Fault tolerance in action: the partitioned join of Q2 is running on
// three machines when one of them crashes. The recovery logs kept by the
// exchange producers (the substrate the paper reuses for retrospective
// adaptation) contain every tuple whose effects are not yet safe
// downstream — including the hash-table state of the dead machine — so
// the Responder redistributes them to the survivors and the query
// completes with the full result.
//
//   ./build/examples/node_failure

#include <cstdio>
#include <set>

#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

using namespace gqp;

int main() {
  TablePtr sequences = GenerateProteinSequences({});
  TablePtr interactions = GenerateProteinInteractions({});

  std::set<std::string> orfs;
  for (const Tuple& row : sequences->rows()) orfs.insert(row[0].AsString());
  size_t expected = 0;
  for (const Tuple& row : interactions->rows()) {
    if (orfs.count(row[0].AsString()) > 0) ++expected;
  }

  GridOptions grid_options;
  grid_options.num_evaluators = 3;
  grid_options.adaptive = true;
  GridSetup grid(grid_options);
  if (!grid.Initialize().ok()) return 1;
  (void)grid.AddTable(sequences);
  (void)grid.AddTable(interactions);
  (void)grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);

  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  options.optimizer.costs.scan_cost_ms = 1.0;

  std::printf("running Q2 (%zu x %zu partitioned hash join, 3 machines); "
              "expecting %zu result rows\n",
              sequences->num_rows(), interactions->num_rows(), expected);

  Result<int> query =
      grid.gdqs()->SubmitQuery(QuerySql(QueryKind::kQ2), options);
  if (!query.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  grid.simulator()->Schedule(2000.0, [&grid] {
    std::printf("[%8.1f ms] machine 0 crashes\n", grid.simulator()->Now());
    const Status s = grid.FailEvaluator(0);
    if (!s.ok()) {
      std::fprintf(stderr, "failure injection failed: %s\n",
                   s.ToString().c_str());
    }
  });

  grid.simulator()->RunToCompletion();

  if (!grid.gdqs()->QueryComplete(*query)) {
    std::fprintf(stderr, "query did not complete after the crash\n");
    return 1;
  }
  Result<QueryResult> result = grid.gdqs()->GetResult(*query);
  if (!result.ok()) return 1;

  Result<QueryStatsSnapshot> stats = grid.gdqs()->CollectStats(*query);
  std::printf("query completed in %.1f virtual ms with %zu rows "
              "(expected %zu; at-least-once, extras = unacknowledged "
              "window at the crash)\n",
              result->response_time_ms, result->rows.size(), expected);
  if (stats.ok()) {
    std::printf("recovered through the logs: %llu tuples resent, "
                "%llu recovery/adaptation rounds\n",
                static_cast<unsigned long long>(stats->resent_tuples),
                static_cast<unsigned long long>(stats->rounds_applied));
  }
  // Surviving machines' state sizes.
  for (int i = 1; i < 3; ++i) {
    Gqes* gqes = grid.gqes_on(grid.evaluator_node(i)->id());
    for (FragmentExecutor* executor : gqes->Executors()) {
      if (const HashJoinOperator* join = executor->FindHashJoin()) {
        std::printf("survivor machine %d holds %zu build tuples\n", i,
                    join->StateSize());
      }
    }
  }
  return result->rows.size() >= expected ? 0 : 1;
}
