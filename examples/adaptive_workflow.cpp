// Adaptive web-service workflow (the paper's Q1 scenario): one of the two
// machines evaluating the EntropyAnalyser web service becomes 10x slower.
// The example runs the query once statically and once adaptively, prints a
// live timeline of the adaptivity loop (Diagnoser proposals, Responder
// rounds, applied weight vectors), and compares response times.
//
//   ./build/examples/adaptive_workflow

#include <cstdio>

#include "adapt/diagnoser.h"
#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

using namespace gqp;

namespace {

/// Observer service printing the adaptivity conversation as it happens.
class TimelineObserver : public GridService {
 public:
  TimelineObserver(MessageBus* bus, HostId host, Simulator* sim)
      : GridService(bus, host, "observer"), sim_(sim) {}

 protected:
  void HandleMessage(const Message&) override {}

  void OnNotification(const Address& publisher, const std::string& topic,
                      const PayloadPtr& body) override {
    if (const auto* proposal = PayloadAs<ImbalanceProposalPayload>(body)) {
      std::printf("[%8.1f ms] Diagnoser %s proposes W' = (",
                  sim_->Now(), publisher.ToString().c_str());
      for (size_t i = 0; i < proposal->weights().size(); ++i) {
        std::printf("%s%.3f", i ? ", " : "", proposal->weights()[i]);
      }
      std::printf(") from costs (");
      for (size_t i = 0; i < proposal->costs().size(); ++i) {
        std::printf("%s%.2f", i ? ", " : "", proposal->costs()[i]);
      }
      std::printf(") ms/tuple\n");
      return;
    }
    if (const auto* applied = PayloadAs<WeightsAppliedPayload>(body)) {
      std::printf("[%8.1f ms] Responder applied round %llu: W <- (",
                  sim_->Now(),
                  static_cast<unsigned long long>(applied->round()));
      for (size_t i = 0; i < applied->weights().size(); ++i) {
        std::printf("%s%.3f", i ? ", " : "", applied->weights()[i]);
      }
      std::printf(")\n");
      return;
    }
    (void)topic;
  }

 private:
  Simulator* sim_;
};

double RunOnce(bool adaptive) {
  GridOptions grid_options;
  grid_options.num_evaluators = 2;
  grid_options.adaptive = adaptive;
  GridSetup grid(grid_options);
  if (!grid.Initialize().ok()) return -1;

  (void)grid.AddTable(GenerateProteinSequences({}));
  (void)grid.AddTable(GenerateProteinInteractions({}));
  (void)grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);

  // Machine 0's web service is 10x costlier (the paper's first experiment).
  (void)grid.PerturbEvaluator(
      0, "ws:EntropyAnalyser",
      std::make_shared<ConstantFactorPerturbation>(10.0));

  QueryOptions options;
  options.adaptivity.enabled = adaptive;
  Result<int> query = grid.gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1),
                                               options);
  if (!query.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 query.status().ToString().c_str());
    return -1;
  }

  TimelineObserver observer(grid.bus(), 0, grid.simulator());
  if (adaptive) {
    (void)observer.Start();
    (void)observer.Subscribe(grid.gdqs()->diagnoser(*query)->address(),
                             kTopicImbalance);
    (void)observer.Subscribe(grid.gdqs()->responder(*query)->address(),
                             kTopicWeightsApplied);
  }

  grid.simulator()->RunToCompletion();
  Result<QueryResult> result = grid.gdqs()->GetResult(*query);
  if (!result.ok() || !result->complete) return -1;

  if (adaptive) {
    Result<QueryStatsSnapshot> stats = grid.gdqs()->CollectStats(*query);
    if (stats.ok()) {
      std::printf("  tuples per machine:");
      for (const uint64_t n : stats->tuples_per_evaluator) {
        std::printf(" %llu", static_cast<unsigned long long>(n));
      }
      std::printf("  (rounds applied: %llu)\n",
                  static_cast<unsigned long long>(stats->rounds_applied));
    }
  }
  return result->response_time_ms;
}

}  // namespace

int main() {
  std::printf("Q1 with one EntropyAnalyser service 10x costlier\n");
  std::printf("\n-- static execution (GQES) --\n");
  const double static_ms = RunOnce(false);
  std::printf("  response: %.1f virtual ms\n", static_ms);

  std::printf("\n-- adaptive execution (AGQES) --\n");
  const double adaptive_ms = RunOnce(true);
  std::printf("  response: %.1f virtual ms\n", adaptive_ms);

  if (static_ms > 0 && adaptive_ms > 0) {
    std::printf("\nadaptive is %.2fx faster under the perturbation\n",
                static_ms / adaptive_ms);
  }
  return static_ms > 0 && adaptive_ms > 0 ? 0 : 1;
}
