// Interactive GridQP shell: a small grid with the demo protein database,
// accepting SQL on stdin. Meta commands:
//
//   \explain <sql>     show the bound logical plan and the scheduled
//                      physical fragments without running the query
//   \perturb <i> <k>   make evaluator i's WS/join work k times costlier
//   \fail <i>          crash evaluator i (takes effect on the next query)
//   \adaptivity on|off toggle the AGQES adaptivity loop (default on)
//   \stats             monitoring/adaptation counters of the last query
//   \quit
//
//   echo "select i.orf1, count(*) from protein_interactions i
//         group by i.orf1" | ./build/examples/gridqp_shell

#include <cstdio>
#include <unistd.h>

#include <iostream>
#include <sstream>
#include <string>

#include "plan/binder.h"
#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

using namespace gqp;

namespace {

void PrintRows(const QueryResult& result, size_t limit = 20) {
  std::printf("%s\n", result.schema->ToString().c_str());
  for (size_t i = 0; i < result.rows.size() && i < limit; ++i) {
    std::printf("  %s\n", result.rows[i].ToString().c_str());
  }
  if (result.rows.size() > limit) {
    std::printf("  ... (%zu rows total)\n", result.rows.size());
  }
  std::printf("%zu rows in %.1f virtual ms\n", result.rows.size(),
              result.response_time_ms);
}

}  // namespace

int main() {
  GridOptions grid_options;
  grid_options.num_evaluators = 3;
  GridSetup grid(grid_options);
  if (!grid.Initialize().ok()) return 1;
  (void)grid.AddTable(GenerateProteinSequences({}));
  (void)grid.AddTable(GenerateProteinInteractions({}));
  (void)grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);

  bool adaptivity = true;
  int last_query = -1;
  const bool tty = isatty(0);

  std::printf("GridQP shell — 1 coordinator, 1 data node, 3 evaluators\n");
  std::printf("tables: protein_sequences (3000), protein_interactions "
              "(4700); WS: EntropyAnalyser\n");

  std::string line;
  while (true) {
    if (tty) std::printf("gridqp> ");
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (!tty) std::printf("gridqp> %s\n", line.c_str());

    if (line[0] == '\\') {
      std::istringstream in(line.substr(1));
      std::string cmd;
      in >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "adaptivity") {
        std::string mode;
        in >> mode;
        adaptivity = mode != "off";
        std::printf("adaptivity %s\n", adaptivity ? "on" : "off");
        continue;
      }
      if (cmd == "perturb") {
        int evaluator = -1;
        double factor = 1;
        in >> evaluator >> factor;
        for (const char* tag : {"ws:EntropyAnalyser", "op:hash_join",
                                "op:hash_aggregate"}) {
          const Status s = grid.PerturbEvaluator(
              evaluator, tag,
              std::make_shared<ConstantFactorPerturbation>(factor));
          if (!s.ok()) {
            std::printf("error: %s\n", s.ToString().c_str());
            break;
          }
        }
        std::printf("evaluator %d perturbed x%.1f\n", evaluator, factor);
        continue;
      }
      if (cmd == "fail") {
        int evaluator = -1;
        in >> evaluator;
        const Status s = grid.FailEvaluator(evaluator);
        std::printf("%s\n", s.ok() ? "machine crashed"
                                   : s.ToString().c_str());
        continue;
      }
      if (cmd == "stats") {
        if (last_query < 0) {
          std::printf("no query yet\n");
          continue;
        }
        auto stats = grid.gdqs()->CollectStats(last_query);
        if (!stats.ok()) {
          std::printf("error: %s\n", stats.status().ToString().c_str());
          continue;
        }
        std::printf("raw M1 %llu, raw M2 %llu, MED digests %llu, proposals "
                    "%llu, rounds applied %llu, resent %llu\n",
                    static_cast<unsigned long long>(stats->raw_m1),
                    static_cast<unsigned long long>(stats->raw_m2),
                    static_cast<unsigned long long>(stats->med_notifications),
                    static_cast<unsigned long long>(
                        stats->diagnoser_proposals),
                    static_cast<unsigned long long>(stats->rounds_applied),
                    static_cast<unsigned long long>(stats->resent_tuples));
        std::printf("tuples per evaluator:");
        for (const uint64_t n : stats->tuples_per_evaluator) {
          std::printf(" %llu", static_cast<unsigned long long>(n));
        }
        std::printf("\n");
        continue;
      }
      if (cmd == "explain") {
        std::string sql;
        std::getline(in, sql);
        Result<LogicalNodePtr> logical = PlanSql(sql, *grid.catalog());
        if (!logical.ok()) {
          std::printf("error: %s\n", logical.status().ToString().c_str());
          continue;
        }
        std::printf("-- logical plan --\n%s",
                    (*logical)->TreeString().c_str());
        Result<PhysicalPlan> physical = CreatePhysicalPlan(*logical, {});
        if (!physical.ok()) {
          std::printf("error: %s\n", physical.status().ToString().c_str());
          continue;
        }
        Result<ScheduledPlan> scheduled =
            SchedulePlan(*physical, *grid.registry(), {});
        if (!scheduled.ok()) {
          std::printf("error: %s\n", scheduled.status().ToString().c_str());
          continue;
        }
        std::printf("-- scheduled physical plan --\n%s",
                    scheduled->ToString().c_str());
        continue;
      }
      std::printf("unknown command \\%s\n", cmd.c_str());
      continue;
    }

    QueryOptions options;
    options.adaptivity.enabled = adaptivity;
    options.adaptivity.response = ResponseType::kRetrospective;
    Result<int> query = grid.gdqs()->SubmitQuery(line, options);
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    grid.simulator()->RunToCompletion();
    if (!grid.gdqs()->QueryComplete(*query)) {
      std::printf("error: query did not complete (%s)\n",
                  grid.gdqs()->ExecutionStatus(*query).ToString().c_str());
      continue;
    }
    Result<QueryResult> result = grid.gdqs()->GetResult(*query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    last_query = *query;
    PrintRows(*result);
  }
  return 0;
}
