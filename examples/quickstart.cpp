// Quickstart: stand up a simulated grid, load the demo protein data, run
// the paper's Q1 (a web-service call per tuple, partitioned over two
// evaluator machines) and print the first results plus basic execution
// statistics.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

using namespace gqp;

int main() {
  Logger::SetLevel(LogLevel::kWarn);

  GridOptions grid_options;
  grid_options.num_evaluators = 2;
  GridSetup grid(grid_options);
  if (Status s = grid.Initialize(); !s.ok()) {
    std::fprintf(stderr, "grid init failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The OGSA-DQP demo database, synthesized (see DESIGN.md).
  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = 3000;
  (void)grid.AddTable(GenerateProteinSequences(seq_spec));
  (void)grid.AddTable(GenerateProteinInteractions({}));
  (void)grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.25);

  QueryOptions options;
  options.adaptivity.enabled = true;  // AGQES mode

  const std::string sql = QuerySql(QueryKind::kQ1);
  std::printf("submitting: %s\n", sql.c_str());
  Result<int> submitted = grid.gdqs()->SubmitQuery(sql, options);
  if (!submitted.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 submitted.status().ToString().c_str());
    return 1;
  }
  const int query_id = *submitted;

  grid.simulator()->RunToCompletion();

  if (!grid.gdqs()->QueryComplete(query_id)) {
    std::fprintf(stderr, "query did not complete: %s\n",
                 grid.gdqs()->ExecutionStatus(query_id).ToString().c_str());
    return 1;
  }
  Result<QueryResult> result = grid.gdqs()->GetResult(query_id);
  if (!result.ok()) {
    std::fprintf(stderr, "result fetch failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("query complete: %zu rows in %.1f virtual ms\n",
              result->rows.size(), result->response_time_ms);
  std::printf("schema: %s\n", result->schema->ToString().c_str());
  for (size_t i = 0; i < result->rows.size() && i < 5; ++i) {
    std::printf("  row %zu: %s\n", i, result->rows[i].ToString().c_str());
  }

  Result<QueryStatsSnapshot> stats = grid.gdqs()->CollectStats(query_id);
  if (stats.ok()) {
    std::printf(
        "monitoring: %llu raw M1, %llu raw M2, %llu MED digests, "
        "%llu proposals, %llu rounds applied\n",
        static_cast<unsigned long long>(stats->raw_m1),
        static_cast<unsigned long long>(stats->raw_m2),
        static_cast<unsigned long long>(stats->med_notifications),
        static_cast<unsigned long long>(stats->diagnoser_proposals),
        static_cast<unsigned long long>(stats->rounds_applied));
    std::printf("tuples per evaluator:");
    for (const uint64_t n : stats->tuples_per_evaluator) {
      std::printf(" %llu", static_cast<unsigned long long>(n));
    }
    std::printf("\n");
  }
  return 0;
}
