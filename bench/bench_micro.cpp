// Micro-benchmarks (google-benchmark) for the substrate components:
// regression guards for the pieces whose cost the simulation depends on.
// These are not paper experiments; they keep the engine honest.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "exec/distribution_policy.h"
#include "ft/recovery_log.h"
#include "monitor/window_average.h"
#include "sim/simulator.h"
#include "storage/datagen.h"

namespace gqp {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<double>(i % 97), [] {});
    }
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

void BM_RngGaussian(benchmark::State& state) {
  Rng rng(7);
  double sink = 0;
  for (auto _ : state) {
    sink += rng.NextTruncatedGaussian(30, 5, 20, 40);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngGaussian);

void BM_WindowAverage(benchmark::State& state) {
  WindowAverage window(25);
  Rng rng(3);
  double sink = 0;
  for (auto _ : state) {
    window.Add(rng.NextDouble());
    sink += window.Average();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_WindowAverage);

void BM_HashBucketRoute(benchmark::State& state) {
  ExchangeDesc desc;
  desc.policy = PolicyKind::kHashBuckets;
  desc.key_col = 0;
  desc.num_buckets = 120;
  auto policy = MakePolicy(desc, {0.5, 0.3, 0.2}).TakeValue();
  auto schema = MakeSchema({{"orf", DataType::kString}});
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < 512; ++i) {
    tuples.emplace_back(schema, std::vector<Value>{Value(OrfKey(i))});
  }
  size_t i = 0;
  int sink = 0;
  for (auto _ : state) {
    int bucket;
    sink += policy->Route(tuples[i++ % tuples.size()], &bucket);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HashBucketRoute);

void BM_WeightedRoundRobinRoute(benchmark::State& state) {
  WeightedRoundRobinPolicy policy({0.4, 0.3, 0.2, 0.1});
  auto schema = MakeSchema({{"x", DataType::kInt64}});
  Tuple t(schema, {Value(static_cast<int64_t>(1))});
  int sink = 0;
  for (auto _ : state) {
    sink += policy.Route(t, nullptr);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_WeightedRoundRobinRoute);

void BM_RecoveryLogAppendAck(benchmark::State& state) {
  auto schema = MakeSchema({{"x", DataType::kInt64}});
  Tuple t(schema, {Value(static_cast<int64_t>(42))});
  for (auto _ : state) {
    RecoveryLog log;
    for (uint64_t s = 1; s <= static_cast<uint64_t>(state.range(0)); ++s) {
      log.Append(LogRecord{s, static_cast<int>(s % 120), 0, t});
    }
    for (uint64_t s = 1; s <= static_cast<uint64_t>(state.range(0)); ++s) {
      log.Ack(s);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecoveryLogAppendAck)->Arg(1000);

void BM_RecoveryLogExtractMoved(benchmark::State& state) {
  auto schema = MakeSchema({{"x", DataType::kInt64}});
  Tuple t(schema, {Value(static_cast<int64_t>(42))});
  for (auto _ : state) {
    state.PauseTiming();
    RecoveryLog log;
    for (uint64_t s = 1; s <= 3000; ++s) {
      log.Append(LogRecord{s, static_cast<int>(s % 120), 0, t});
    }
    state.ResumeTiming();
    auto recalled = log.Extract(
        [](const LogRecord& rec) { return rec.bucket < 30; });
    benchmark::DoNotOptimize(recalled.size());
  }
}
BENCHMARK(BM_RecoveryLogExtractMoved);

void BM_ShannonEntropy(benchmark::State& state) {
  ProteinSequencesSpec spec;
  spec.num_rows = 1;
  spec.sequence_length = 200;
  auto table = GenerateProteinSequences(spec);
  const std::string& seq = table->row(0).at(1).AsString();
  double sink = 0;
  for (auto _ : state) {
    sink += ShannonEntropy(seq);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ShannonEntropy);

void BM_ValueHash(benchmark::State& state) {
  Value v(OrfKey(12345));
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += v.Hash();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ValueHash);

}  // namespace
}  // namespace gqp

BENCHMARK_MAIN();
