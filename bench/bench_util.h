// Shared reporting helpers for the paper-reproduction benchmark binaries.
// Each binary regenerates one table or figure of the paper's evaluation
// and prints rows in "paper vs measured" form, and additionally emits a
// machine-readable BENCH_<name>.json next to its stdout table so repeated
// runs accumulate a perf trajectory (see README "Benchmarking").

#ifndef GRIDQP_BENCH_BENCH_UTIL_H_
#define GRIDQP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"

#include "workload/experiment.h"

namespace gqp::bench {

/// True when this translation unit was compiled without optimization.
/// Benchmark numbers from such builds are meaningless; every entry point
/// below shouts about it (silently benchmarking -O0 is a footgun).
constexpr bool kUnoptimizedBuild =
#ifdef __OPTIMIZE__
    false;
#else
    true;
#endif

/// Prints the -O0 warning (once per call site that cares).
inline void WarnIfUnoptimized() {
  if (!kUnoptimizedBuild) return;
  std::fprintf(stderr,
               "**************************************************************\n"
               "** WARNING: this benchmark binary was built WITHOUT         **\n"
               "** optimization (-O0). Wall-clock numbers are meaningless.  **\n"
               "** Configure with -DCMAKE_BUILD_TYPE=Release and rebuild.   **\n"
               "**************************************************************\n");
}

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title, const std::string& detail) {
  WarnIfUnoptimized();
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", detail.c_str());
  std::printf("==============================================================\n");
}

/// Runs an experiment, printing an error and aborting the binary on
/// failure (a bench that cannot execute its workload must not report).
inline ExperimentResult MustRun(const ExperimentParams& params) {
  ExperimentResult result = RunExperiment(params);
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: experiment '%s' failed: %s\n",
                 params.name.c_str(), result.error.c_str());
    std::exit(1);
  }
  return result;
}

/// Quick environment flag for shorter runs (REPS=1 in CI loops).
inline int Repetitions(int fallback = 3) {
  const char* reps = std::getenv("GRIDQP_BENCH_REPS");
  if (reps == nullptr) return fallback;
  const int value = std::atoi(reps);
  return value > 0 ? value : fallback;
}

/// Flat metric set accumulated by a bench binary and flushed to
/// BENCH_<name>.json. Keys are inserted in order; values render with %.6g
/// so the files diff cleanly between runs.
class Metrics {
 public:
  explicit Metrics(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Set(const std::string& key, double value) {
    for (auto& [k, v] : values_) {
      if (k == key) {
        v = value;
        return;
      }
    }
    values_.emplace_back(key, value);
  }

  const std::string& bench_name() const { return bench_name_; }
  const std::vector<std::pair<std::string, double>>& values() const {
    return values_;
  }

  /// Writes BENCH_<name>.json into the current directory (or `dir` when
  /// given) and reports the path on stdout. Returns false on I/O failure.
  bool WriteJson(const std::string& dir = ".") const {
    const std::string path =
        StrCat(dir, "/BENCH_", bench_name_, ".json");
    return WriteJsonTo(path);
  }

  bool WriteJsonTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name_.c_str());
    std::fprintf(f, "  \"optimized_build\": %s,\n",
                 kUnoptimizedBuild ? "false" : "true");
    std::fprintf(f, "  \"metrics\": {\n");
    for (size_t i = 0; i < values_.size(); ++i) {
      std::fprintf(f, "    \"%s\": %.6g%s\n", values_[i].first.c_str(),
                   values_[i].second, i + 1 < values_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, double>> values_;
};

/// Reads one numeric metric back out of a BENCH_*.json file written by
/// Metrics::WriteJson (used by bench_hotpath --check; not a general JSON
/// parser). Returns false when the file or key is absent.
inline bool ReadJsonMetric(const std::string& path, const std::string& key,
                           double* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  const std::string needle = StrCat("\"", key, "\":");
  const size_t pos = contents.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(contents.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace gqp::bench

#endif  // GRIDQP_BENCH_BENCH_UTIL_H_
