// Shared reporting helpers for the paper-reproduction benchmark binaries.
// Each binary regenerates one table or figure of the paper's evaluation
// and prints rows in "paper vs measured" form.

#ifndef GRIDQP_BENCH_BENCH_UTIL_H_
#define GRIDQP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.h"

#include "workload/experiment.h"

namespace gqp::bench {

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title, const std::string& detail) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", detail.c_str());
  std::printf("==============================================================\n");
}

/// Runs an experiment, printing an error and aborting the binary on
/// failure (a bench that cannot execute its workload must not report).
inline ExperimentResult MustRun(const ExperimentParams& params) {
  ExperimentResult result = RunExperiment(params);
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: experiment '%s' failed: %s\n",
                 params.name.c_str(), result.error.c_str());
    std::exit(1);
  }
  return result;
}

/// Quick environment flag for shorter runs (REPS=1 in CI loops).
inline int Repetitions(int fallback = 3) {
  const char* reps = std::getenv("GRIDQP_BENCH_REPS");
  if (reps == nullptr) return fallback;
  const int value = std::atoi(reps);
  return value > 0 ? value : fallback;
}

}  // namespace gqp::bench

#endif  // GRIDQP_BENCH_BENCH_UTIL_H_
