// Reproduces Fig. 2(b): performance of Q1 under different adaptivity
// policies — (A1+R2), (A1+R1), (A2+R2) — for 10x/20x/30x WS perturbation.
//
// Expected qualitative results (Section 3.2):
//  - A1 (communication cost ignored, pipelining assumed) beats A2;
//  - retrospective (R1) behaves better than prospective (R2) for bigger
//    perturbations, and its bars stay roughly flat across perturbation
//    sizes.

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Fig. 2(b) — Q1 under different adaptivity policies",
         "A1+R2 vs A1+R1 vs A2+R2; one WS 10/20/30 times costlier");

  ExperimentParams base;
  base.query = QueryKind::kQ1;
  base.repetitions = Repetitions();

  ExperimentParams baseline = base;
  baseline.name = "fig2b-baseline";
  baseline.adaptivity = false;
  const ExperimentResult base_result = MustRun(baseline);

  struct Policy {
    const char* label;
    AssessmentType assessment;
    ResponseType response;
  };
  const Policy policies[] = {
      {"A1+R2", AssessmentType::kA1, ResponseType::kProspective},
      {"A1+R1", AssessmentType::kA1, ResponseType::kRetrospective},
      {"A2+R2", AssessmentType::kA2, ResponseType::kProspective},
  };
  const double factors[] = {10, 20, 30};

  Metrics metrics("fig2b");
  metrics.Set("baseline_ms", base_result.response_ms);
  std::printf("\n%-10s %-12s %-12s %-12s\n", "perturb", "A1+R2", "A1+R1",
              "A2+R2");
  for (const double factor : factors) {
    std::printf("%-10s", StrCat(factor, "x").c_str());
    for (const Policy& policy : policies) {
      ExperimentParams p = base;
      p.name = StrCat("fig2b-", policy.label, "-", factor, "x");
      p.adaptivity = true;
      p.assessment = policy.assessment;
      p.response = policy.response;
      p.perturbations = {
          {0, PerturbSpec::Kind::kFactor, factor, 0, 0, 0, 0, 0}};
      const ExperimentResult r = MustRun(p);
      std::printf(" %-12.2f", Normalized(r, base_result));
      std::string slug = policy.label;  // "A1+R2" -> "A1_R2"
      for (char& c : slug) {
        if (c == '+') c = '_';
      }
      metrics.Set(StrCat(slug, "_", factor, "x"), Normalized(r, base_result));
    }
    std::printf("\n");
  }
  metrics.WriteJson();
  std::printf(
      "\nexpected shape: A1+R1 roughly flat in the perturbation size and "
      "best at 30x;\nA1 variants <= A2+R2 (A2 mixes in communication costs "
      "that overlap with\nprocessing under pipelined parallelism, degrading "
      "the repartitioning decision).\n");
  return 0;
}
