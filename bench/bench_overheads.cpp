// Reproduces the "Overheads" experiments of Section 3.2:
//
//  1. Adaptivity overhead without imbalance, for prospective and
//     retrospective responses (paper: ~5.9% R2, ~15.3% R1), and the ratio
//     of tuples routed to the two machines (paper: 1.21 prospective, 1.01
//     retrospective).
//  2. Message-volume accounting: raw engine notifications vs MED->Diagnoser
//     digests vs actual rebalancings (paper: 100-300 raw, ~10 digests, 1-3
//     rebalances — "the system is not flooded by messages").
//  3. Sensitivity to the monitoring frequency under a 10x perturbation:
//     raw events every 0 (off), 10, 20, 30 tuples (paper: both adaptation
//     quality and overhead rather insensitive).

#include <algorithm>

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

namespace {

double TupleRatio(const QueryStatsSnapshot& stats) {
  if (stats.tuples_per_evaluator.size() < 2) return 1.0;
  const double a = static_cast<double>(stats.tuples_per_evaluator[0]);
  const double b = static_cast<double>(stats.tuples_per_evaluator[1]);
  if (a <= 0 || b <= 0) return 0.0;
  return std::max(a, b) / std::min(a, b);
}

}  // namespace

int main() {
  Banner("Overheads — Q1 adaptivity cost without imbalance + monitoring "
         "frequency sweep",
         "paper: overhead 5.9% (R2) / 15.3% (R1); tuple ratio 1.21 / 1.01; "
         "no message flooding");

  ExperimentParams base;
  base.query = QueryKind::kQ1;
  base.repetitions = Repetitions();
  // The paper attributes part of the no-imbalance overhead to natural
  // performance fluctuations that occasionally trigger adaptations; model
  // them with a larger noise band here.
  base.noise_stddev = 0.12;

  ExperimentParams baseline = base;
  baseline.name = "overheads-baseline";
  baseline.adaptivity = false;
  const ExperimentResult base_result = MustRun(baseline);

  Metrics metrics("overheads");
  metrics.Set("baseline_ms", base_result.response_ms);
  std::printf("\n-- adaptivity overhead without imbalance --\n");
  std::printf("%-16s %-12s %-14s %-12s %-14s\n", "response",
              "overhead", "(paper)", "tuple-ratio", "(paper)");
  for (const ResponseType response :
       {ResponseType::kProspective, ResponseType::kRetrospective}) {
    ExperimentParams p = base;
    p.name = StrCat("overheads-",
                    std::string(ResponseTypeToString(response)));
    p.adaptivity = true;
    p.response = response;
    const ExperimentResult r = MustRun(p);
    const double overhead = Normalized(r, base_result) - 1.0;
    const bool prospective = response == ResponseType::kProspective;
    std::printf("%-16s %-11.1f%% %-14s %-12.2f %-14s\n",
                prospective ? "prospective(R2)" : "retrospective(R1)",
                overhead * 100.0, prospective ? "(5.9%)" : "(15.3%)",
                TupleRatio(r.stats), prospective ? "(1.21)" : "(1.01)");
    metrics.Set(StrCat(prospective ? "R2" : "R1", "_overhead_pct"),
                overhead * 100.0);
    metrics.Set(StrCat(prospective ? "R2" : "R1", "_tuple_ratio"),
                TupleRatio(r.stats));
  }

  // Control-plane tax of the failure detector: heartbeats + reliable
  // transport on, nothing failing. Guard, not just report: heartbeats are
  // pure control traffic, so more than a few percent on Q1 means the
  // control plane leaked into the data path.
  std::printf("\n-- failure-detection overhead (no failures) --\n");
  ExperimentParams detect = baseline;
  detect.name = "overheads-heartbeat";
  detect.failure_detection = true;
  const ExperimentResult detect_result = MustRun(detect);
  const double detect_overhead =
      Normalized(detect_result, base_result) - 1.0;
  constexpr double kDetectOverheadBudget = 0.05;
  std::printf("%-16s %-11.1f%% (budget %.0f%%)\n", "heartbeat(Q1)",
              detect_overhead * 100.0, kDetectOverheadBudget * 100.0);
  metrics.Set("heartbeat_overhead_pct", detect_overhead * 100.0);
  if (detect_overhead > kDetectOverheadBudget) {
    std::printf("FAIL: failure-detection overhead exceeds the budget\n");
    return 1;
  }

  // Flow-control tax when nothing is overloaded: credits flow but the
  // generous budget means the gate never closes, so the only cost is the
  // bookkeeping and grant traffic. Guarded like the heartbeat tax — more
  // than a few percent means credit accounting leaked into the data path.
  std::printf("\n-- flow-control overhead (no overload) --\n");
  ExperimentParams fc = baseline;
  fc.name = "overheads-flow-control";
  fc.flow_control = true;
  fc.memory_budget_bytes = 4 << 20;
  const ExperimentResult fc_result = MustRun(fc);
  const double fc_overhead = Normalized(fc_result, base_result) - 1.0;
  constexpr double kFcOverheadBudget = 0.05;
  std::printf("%-16s %-11.1f%% (budget %.0f%%)\n", "flow-control(Q1)",
              fc_overhead * 100.0, kFcOverheadBudget * 100.0);
  metrics.Set("flow_control_overhead_pct", fc_overhead * 100.0);
  if (fc_overhead > kFcOverheadBudget) {
    std::printf("FAIL: flow-control overhead exceeds the budget\n");
    return 1;
  }

  // Standby-mirroring tax (D14): a replicated coordinator shadows every
  // GDQS decision over the control plane, nothing failing. Mirror entries
  // and primary heartbeats are pure control traffic, so the same few-
  // percent budget applies. With the knob off the failover machinery must
  // not exist at all — the run is byte-identical to the baseline, so its
  // response time must match EXACTLY, not just within the budget.
  std::printf("\n-- coordinator-standby overhead (no takeover) --\n");
  ExperimentParams standby = baseline;
  standby.name = "overheads-standby";
  standby.coordinator_standby = true;
  const ExperimentResult standby_result = MustRun(standby);
  const double standby_overhead =
      Normalized(standby_result, base_result) - 1.0;
  constexpr double kStandbyOverheadBudget = 0.05;
  std::printf("%-16s %-11.1f%% (budget %.0f%%)\n", "standby(Q1)",
              standby_overhead * 100.0, kStandbyOverheadBudget * 100.0);
  metrics.Set("standby_overhead_pct", standby_overhead * 100.0);
  if (standby_overhead > kStandbyOverheadBudget) {
    std::printf("FAIL: coordinator-standby overhead exceeds the budget\n");
    return 1;
  }
  ExperimentParams standby_off = baseline;
  standby_off.name = "overheads-standby-off";
  standby_off.coordinator_standby = false;
  const ExperimentResult standby_off_result = MustRun(standby_off);
  if (standby_off_result.response_ms != base_result.response_ms) {
    std::printf("FAIL: standby=off changed the response time (%.6f vs "
                "%.6f ms) — disabled failover machinery must be free\n",
                standby_off_result.response_ms, base_result.response_ms);
    return 1;
  }
  std::printf("%-16s exact match with baseline (%.3f ms)\n", "standby-off",
              standby_off_result.response_ms);

  // Admission-control tax (D16): the controller in the submission path of
  // a single uncontended query — one queue push/pop and the tenant
  // bookkeeping, no rejections possible. Same few-percent budget; and
  // with the knob off the submission path must be byte-identical to the
  // baseline, so the response time must match EXACTLY.
  std::printf("\n-- admission-control overhead (no contention) --\n");
  ExperimentParams admission = baseline;
  admission.name = "overheads-admission";
  admission.admission_control = true;
  const ExperimentResult admission_result = MustRun(admission);
  const double admission_overhead =
      Normalized(admission_result, base_result) - 1.0;
  constexpr double kAdmissionOverheadBudget = 0.05;
  std::printf("%-16s %-11.1f%% (budget %.0f%%)\n", "admission(Q1)",
              admission_overhead * 100.0, kAdmissionOverheadBudget * 100.0);
  metrics.Set("admission_overhead_pct", admission_overhead * 100.0);
  if (admission_overhead > kAdmissionOverheadBudget) {
    std::printf("FAIL: admission-control overhead exceeds the budget\n");
    return 1;
  }
  ExperimentParams admission_off = baseline;
  admission_off.name = "overheads-admission-off";
  admission_off.admission_control = false;
  const ExperimentResult admission_off_result = MustRun(admission_off);
  if (admission_off_result.response_ms != base_result.response_ms) {
    std::printf("FAIL: admission=off changed the response time (%.6f vs "
                "%.6f ms) — disabled admission control must be free\n",
                admission_off_result.response_ms, base_result.response_ms);
    return 1;
  }
  std::printf("%-16s exact match with baseline (%.3f ms)\n",
              "admission-off", admission_off_result.response_ms);

  std::printf("\n-- message volume under a 10x perturbation --\n");
  std::printf("%-14s %-10s %-10s %-12s %-12s %-10s\n", "m1-frequency",
              "raw M1", "raw M2", "MED digests", "proposals", "rebalances");
  const size_t frequencies[] = {0, 10, 20, 30};
  ExperimentResult freq_results[4];
  int i = 0;
  for (const size_t freq : frequencies) {
    ExperimentParams p = base;
    p.name = StrCat("overheads-freq-", freq);
    p.noise_stddev = 0.05;
    p.adaptivity = true;
    p.response = ResponseType::kProspective;
    p.m1_frequency = freq;
    p.perturbations = {{0, PerturbSpec::Kind::kFactor, 10, 0, 0, 0, 0, 0}};
    const ExperimentResult r = MustRun(p);
    freq_results[i++] = r;
    std::printf("%-14s %-10llu %-10llu %-12llu %-12llu %-10llu\n",
                freq == 0 ? "off" : StrCat("1/", freq).c_str(),
                static_cast<unsigned long long>(r.stats.raw_m1),
                static_cast<unsigned long long>(r.stats.raw_m2),
                static_cast<unsigned long long>(r.stats.med_notifications),
                static_cast<unsigned long long>(r.stats.diagnoser_proposals),
                static_cast<unsigned long long>(r.stats.rounds_applied));
  }

  std::printf("\n-- adaptation quality vs monitoring frequency (10x) --\n");
  std::printf("%-14s %-14s\n", "m1-frequency", "normalised RT");
  i = 0;
  for (const size_t freq : frequencies) {
    const double normalized = Normalized(freq_results[i++], base_result);
    std::printf("%-14s %-14.2f\n",
                freq == 0 ? "off" : StrCat("1/", freq).c_str(), normalized);
    metrics.Set(freq == 0 ? "freq_off" : StrCat("freq_", freq), normalized);
  }
  metrics.WriteJson();
  std::printf(
      "\nexpected: frequencies 1/10..1/30 give nearly the same response "
      "time;\n'off' disables adaptation and degrades to the static "
      "system.\n");
  return 0;
}
