// Multi-query execution (DESIGN.md §D12): one grid, several live queries
// at once. Five queries (a Q1/Q2 mix) are submitted at staggered virtual
// times so their executions overlap on the same evaluators, then each is
// checked for
//
//  1. correct completion: its result multiset is identical to the same
//     query run alone on an identical grid (concurrency must not change
//     answers, only timing);
//  2. exact per-query statistics: the coordinator's per-query M1/M2
//     counts equal the sum of what that query's own executors emitted,
//     and the per-query MED slices sum back to the site-wide totals.
//
// There is no paper table for this; the paper's single-query experiments
// implicitly assume the engine underneath can host overlapping queries.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "monitor/monitoring_event_detector.h"
#include "storage/datagen.h"
#include "workload/grid_setup.h"

using namespace gqp;
using namespace gqp::bench;

namespace {

constexpr int kNumEvaluators = 2;
constexpr uint64_t kSeed = 7;
constexpr size_t kSequences = 1500;
constexpr size_t kInteractions = 2300;

struct QuerySpec {
  QueryKind kind;
  double submit_at_ms;
};

/// Datasets + web service, identical for every grid this bench builds
/// (the correctness oracle depends on it).
Status PopulateGrid(GridSetup* grid) {
  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = kSequences;
  seq_spec.seed = kSeed;
  GQP_RETURN_IF_ERROR(grid->AddTable(GenerateProteinSequences(seq_spec)));

  ProteinInteractionsSpec inter_spec;
  inter_spec.num_rows = kInteractions;
  inter_spec.num_orfs = kSequences;
  inter_spec.seed = kSeed + 1000003;
  GQP_RETURN_IF_ERROR(
      grid->AddTable(GenerateProteinInteractions(inter_spec)));

  return grid->AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);
}

QueryOptions MakeOptions(QueryKind kind) {
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  options.exec.monitoring_enabled = true;
  options.exec.recovery_log_enabled = true;
  options.optimizer.costs.scan_cost_ms =
      kind == QueryKind::kQ2 ? 3.5 : 0.30;
  options.scheduler.num_evaluators = kNumEvaluators;
  return options;
}

std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Tuple& t : result.rows) rows.push_back(t.ToString());
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Runs `kind` alone on a fresh identical grid: the reference answer.
Result<std::vector<std::string>> ReferenceRows(QueryKind kind) {
  GridOptions grid_options;
  grid_options.num_evaluators = kNumEvaluators;
  GridSetup grid(grid_options);
  GQP_RETURN_IF_ERROR(grid.Initialize());
  GQP_RETURN_IF_ERROR(PopulateGrid(&grid));
  GQP_ASSIGN_OR_RETURN(
      int id, grid.gdqs()->SubmitQuery(QuerySql(kind), MakeOptions(kind)));
  GQP_RETURN_IF_ERROR(grid.simulator()->Run());
  GQP_RETURN_IF_ERROR(grid.gdqs()->ExecutionStatus(id));
  GQP_ASSIGN_OR_RETURN(QueryResult result, grid.gdqs()->GetResult(id));
  return SortedRows(result);
}

/// Sums an executor-side stat over every fragment instance of a query.
uint64_t SumOverQuery(GridSetup* grid, int query_id,
                      uint64_t FragmentStats::*field) {
  uint64_t total = 0;
  for (HostId h = 0; h < static_cast<HostId>(2 + kNumEvaluators); ++h) {
    Gqes* gqes = grid->gqes_on(h);
    if (gqes == nullptr) continue;
    for (FragmentExecutor* executor : gqes->Executors()) {
      if (executor->plan().id.query != query_id) continue;
      total += executor->stats().*field;
    }
  }
  return total;
}

}  // namespace

int main() {
  Banner("Multi-query — overlapping queries on one grid",
         "per-query results must match single-query runs; per-query "
         "stats must be exact under concurrency");

  const QuerySpec specs[] = {
      {QueryKind::kQ1, 0.0},    {QueryKind::kQ2, 40.0},
      {QueryKind::kQ1, 90.0},   {QueryKind::kQ2, 140.0},
      {QueryKind::kQ1, 200.0},
  };
  const int num_queries = static_cast<int>(std::size(specs));

  std::vector<std::string> reference_q1;
  std::vector<std::string> reference_q2;
  {
    Result<std::vector<std::string>> q1 = ReferenceRows(QueryKind::kQ1);
    Result<std::vector<std::string>> q2 = ReferenceRows(QueryKind::kQ2);
    if (!q1.ok() || !q2.ok()) {
      std::fprintf(stderr, "FATAL: reference run failed: %s\n",
                   (!q1.ok() ? q1.status() : q2.status()).ToString().c_str());
      return 1;
    }
    reference_q1 = std::move(*q1);
    reference_q2 = std::move(*q2);
  }

  GridOptions grid_options;
  grid_options.num_evaluators = kNumEvaluators;
  GridSetup grid(grid_options);
  if (Status s = grid.Initialize(); !s.ok()) {
    std::fprintf(stderr, "FATAL: grid init failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  if (Status s = PopulateGrid(&grid); !s.ok()) {
    std::fprintf(stderr, "FATAL: grid population failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  std::vector<int> query_ids(static_cast<size_t>(num_queries), -1);
  bool submit_failed = false;
  for (int i = 0; i < num_queries; ++i) {
    const QuerySpec& spec = specs[static_cast<size_t>(i)];
    grid.simulator()->Schedule(spec.submit_at_ms, [&, i, spec] {
      Result<int> id = grid.gdqs()->SubmitQuery(QuerySql(spec.kind),
                                                MakeOptions(spec.kind));
      if (!id.ok()) {
        std::fprintf(stderr, "FATAL: submit %d failed: %s\n", i,
                     id.status().ToString().c_str());
        submit_failed = true;
        return;
      }
      query_ids[static_cast<size_t>(i)] = *id;
    });
  }
  if (Status s = grid.simulator()->Run(); !s.ok() || submit_failed) {
    std::fprintf(stderr, "FATAL: simulation failed\n");
    return 1;
  }

  Metrics metrics("multiquery");
  int failures = 0;
  double makespan = 0.0;
  double prev_completion = 0.0;
  bool overlapped = false;
  uint64_t m1_slices = 0;
  uint64_t m2_slices = 0;

  std::printf("\n%-4s %-5s %-10s %-12s %-7s %-8s %-8s %-8s\n", "id",
              "query", "submit_ms", "response_ms", "rows", "raw_m1",
              "raw_m2", "rounds");
  for (int i = 0; i < num_queries; ++i) {
    const QuerySpec& spec = specs[static_cast<size_t>(i)];
    const int id = query_ids[static_cast<size_t>(i)];
    if (id < 0 || !grid.gdqs()->QueryComplete(id)) {
      std::printf("q%-3d %-5s DID NOT COMPLETE\n", id,
                  spec.kind == QueryKind::kQ1 ? "Q1" : "Q2");
      ++failures;
      continue;
    }
    if (Status s = grid.gdqs()->ExecutionStatus(id); !s.ok()) {
      std::printf("q%-3d execution error: %s\n", id, s.ToString().c_str());
      ++failures;
      continue;
    }
    Result<QueryResult> result = grid.gdqs()->GetResult(id);
    Result<QueryStatsSnapshot> stats = grid.gdqs()->CollectStats(id);
    if (!result.ok() || !stats.ok()) {
      std::printf("q%-3d result/stats fetch failed\n", id);
      ++failures;
      continue;
    }

    // Correctness: identical result multiset to the single-query run.
    const std::vector<std::string>& expected =
        spec.kind == QueryKind::kQ1 ? reference_q1 : reference_q2;
    if (SortedRows(*result) != expected) {
      std::printf("q%-3d WRONG RESULT: %zu rows vs %zu expected\n", id,
                  result->rows.size(), expected.size());
      ++failures;
    }

    // Exactness: the coordinator's per-query M1/M2 slices must equal what
    // this query's own executors emitted — no bleed between live queries.
    const uint64_t m1_emitted =
        SumOverQuery(&grid, id, &FragmentStats::m1_sent);
    const uint64_t m2_emitted =
        SumOverQuery(&grid, id, &FragmentStats::m2_sent);
    if (stats->raw_m1 != m1_emitted || stats->raw_m2 != m2_emitted) {
      std::printf(
          "q%-3d STATS MISMATCH: raw_m1=%llu vs emitted %llu, raw_m2=%llu "
          "vs emitted %llu\n",
          id, static_cast<unsigned long long>(stats->raw_m1),
          static_cast<unsigned long long>(m1_emitted),
          static_cast<unsigned long long>(stats->raw_m2),
          static_cast<unsigned long long>(m2_emitted));
      ++failures;
    }
    m1_slices += stats->raw_m1;
    m2_slices += stats->raw_m2;

    if (i > 0 && result->submit_time_ms < prev_completion) overlapped = true;
    prev_completion = result->completion_time_ms;
    makespan = std::max(makespan, result->completion_time_ms);

    std::printf("q%-3d %-5s %-10.0f %-12.1f %-7zu %-8llu %-8llu %-8llu\n",
                id, spec.kind == QueryKind::kQ1 ? "Q1" : "Q2",
                result->submit_time_ms, result->response_time_ms,
                result->rows.size(),
                static_cast<unsigned long long>(stats->raw_m1),
                static_cast<unsigned long long>(stats->raw_m2),
                static_cast<unsigned long long>(stats->rounds_applied));
    metrics.Set(StrCat("q", i, "_response_ms"), result->response_time_ms);
  }

  // The queries must actually have run concurrently, or this bench proved
  // nothing about multi-query hosting.
  if (!overlapped) {
    std::printf("FAIL: no two queries overlapped in time\n");
    ++failures;
  }

  // Attribution conservation: per-query MED slices sum to site totals.
  uint64_t m1_total = 0;
  uint64_t m2_total = 0;
  for (HostId h = 0; h < static_cast<HostId>(2 + kNumEvaluators); ++h) {
    Gqes* gqes = grid.gqes_on(h);
    if (gqes == nullptr || gqes->med() == nullptr) continue;
    m1_total += gqes->med()->stats().raw_m1;
    m2_total += gqes->med()->stats().raw_m2;
  }
  if (m1_slices != m1_total || m2_slices != m2_total) {
    std::printf(
        "FAIL: per-query slices do not sum to MED totals (m1 %llu/%llu, "
        "m2 %llu/%llu)\n",
        static_cast<unsigned long long>(m1_slices),
        static_cast<unsigned long long>(m1_total),
        static_cast<unsigned long long>(m2_slices),
        static_cast<unsigned long long>(m2_total));
    ++failures;
  }

  metrics.Set("makespan_ms", makespan);
  metrics.Set("queries", num_queries);
  metrics.WriteJson();

  if (failures > 0) {
    std::printf("\nFAIL: %d multi-query check(s) failed\n", failures);
    return 1;
  }
  std::printf("\nall %d concurrent queries completed correctly with exact "
              "per-query stats\n",
              num_queries);
  return 0;
}
