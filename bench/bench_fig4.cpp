// Reproduces Fig. 4(a)-(c): performance of Q1 for retrospective
// adaptations with three evaluator machines and a varying number of
// perturbed machines (0..3), for perturbation sizes 10x, 20x and 30x.
//
// Expected results (Section 3.2, "Varying the number of perturbed
// machines"): with adaptivity the performance degrades very gracefully;
// as long as at least one machine is unperturbed the adaptive response is
// nearly independent of the perturbation magnitude; the relative
// degradation improves on the static system by up to an order of
// magnitude.

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Fig. 4(a)-(c) — Q1, retrospective adaptations, 3 evaluators",
         "0..3 machines perturbed by 10x/20x/30x");

  ExperimentParams base;
  base.query = QueryKind::kQ1;
  base.response = ResponseType::kRetrospective;
  base.num_evaluators = 3;
  base.repetitions = Repetitions();

  ExperimentParams baseline = base;
  baseline.name = "fig4-baseline";
  baseline.adaptivity = false;
  const ExperimentResult base_result = MustRun(baseline);
  std::printf("baseline (no ad / no imb, 3 evaluators): %.1f virtual ms\n",
              base_result.response_ms);

  Metrics metrics("fig4");
  metrics.Set("baseline_ms", base_result.response_ms);
  const double factors[] = {10, 20, 30};
  for (const double factor : factors) {
    std::printf("\nFig. 4 — perturbation %sx\n", StrCat(factor).c_str());
    std::printf("%-22s %-22s %-20s\n", "#perturbed machines",
                "adaptivity disabled", "adaptivity enabled");
    for (int perturbed = 0; perturbed <= 3; ++perturbed) {
      std::vector<PerturbSpec> specs;
      for (int m = 0; m < perturbed; ++m) {
        specs.push_back({m, PerturbSpec::Kind::kFactor, factor, 0, 0, 0, 0, 0});
      }

      ExperimentParams noad = base;
      noad.name = StrCat("fig4-noad-", factor, "x-", perturbed);
      noad.adaptivity = false;
      noad.perturbations = specs;
      const ExperimentResult noad_result = MustRun(noad);

      ExperimentParams ad = base;
      ad.name = StrCat("fig4-ad-", factor, "x-", perturbed);
      ad.adaptivity = true;
      ad.perturbations = specs;
      const ExperimentResult ad_result = MustRun(ad);

      std::printf("%-22d %-22.2f %-20.2f\n", perturbed,
                  Normalized(noad_result, base_result),
                  Normalized(ad_result, base_result));
      metrics.Set(StrCat("noad_", factor, "x_", perturbed, "m"),
                  Normalized(noad_result, base_result));
      metrics.Set(StrCat("ad_", factor, "x_", perturbed, "m"),
                  Normalized(ad_result, base_result));
    }
  }
  metrics.WriteJson();
  std::printf(
      "\nexpected shape: adaptive curves flat while >= 1 machine is "
      "unperturbed and\nsimilar across 10x/20x/30x; static curves grow "
      "steeply with both axes.\n");
  return 0;
}
