// Reproduces Fig. 3(a): performance of Q2 (partitioned hash join) for
// retrospective adaptations (assessment A1, response R1) when one machine
// sleeps 10/50/100 ms before processing each join tuple. Retrospective
// response is mandatory here: the join is stateful, so rebalancing must
// repartition the hash-table state through the recovery logs.
//
// Paper reference points: at 10 ms the normalised response is 1.71 without
// adaptivity and 1.31 with (Table 1, row 3); Fig. 3(a) shows the same
// pattern growing with the sleep duration, with the adaptive bars staying
// much flatter than the static ones.

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Fig. 3(a) — Q2, retrospective adaptations (A1 + R1)",
         "sleep(10/50/100 ms) before each join tuple on one machine");

  ExperimentParams base;
  base.query = QueryKind::kQ2;
  base.response = ResponseType::kRetrospective;
  base.assessment = AssessmentType::kA1;
  base.repetitions = Repetitions();

  ExperimentParams baseline = base;
  baseline.name = "fig3a-baseline";
  baseline.adaptivity = false;
  const ExperimentResult base_result = MustRun(baseline);
  std::printf("baseline (no ad / no imb): %.1f virtual ms, %zu result rows\n",
              base_result.response_ms, base_result.result_rows);

  const double sleeps[] = {10, 50, 100};
  const char* paper_note[] = {"1.71 / 1.31 (Table 1)", "-", "-"};

  Metrics metrics("fig3a");
  metrics.Set("baseline_ms", base_result.response_ms);

  std::printf("\n%-12s %-20s %-20s %-24s\n", "sleep", "adaptivity disabled",
              "adaptivity enabled", "paper (noad/ad)");
  for (int i = 0; i < 3; ++i) {
    ExperimentParams noad = base;
    noad.name = StrCat("fig3a-noad-", sleeps[i], "ms");
    noad.adaptivity = false;
    noad.perturbations = {
        {0, PerturbSpec::Kind::kSleep, 1.0, sleeps[i], 0, 0, 0, 0}};
    const ExperimentResult noad_result = MustRun(noad);

    ExperimentParams ad = base;
    ad.name = StrCat("fig3a-ad-", sleeps[i], "ms");
    ad.adaptivity = true;
    ad.perturbations = noad.perturbations;
    const ExperimentResult ad_result = MustRun(ad);

    if (noad_result.result_rows != base_result.result_rows ||
        ad_result.result_rows != base_result.result_rows) {
      std::fprintf(stderr,
                   "FATAL: result cardinality diverged (base %zu, noad %zu, "
                   "ad %zu) — state repartitioning lost/duplicated tuples\n",
                   base_result.result_rows, noad_result.result_rows,
                   ad_result.result_rows);
      return 1;
    }

    std::printf("%-12s %-20.2f %-20.2f %-24s\n",
                StrCat(sleeps[i], "ms").c_str(),
                Normalized(noad_result, base_result),
                Normalized(ad_result, base_result), paper_note[i]);
    metrics.Set(StrCat("noad_", sleeps[i], "ms"),
                Normalized(noad_result, base_result));
    metrics.Set(StrCat("ad_", sleeps[i], "ms"),
                Normalized(ad_result, base_result));
  }
  std::printf("\nresult correctness: all runs returned %zu rows\n",
              base_result.result_rows);
  metrics.WriteJson();
  return 0;
}
