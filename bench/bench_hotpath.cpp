// Wall-clock hot-path benchmark: the three loops every experiment in this
// repository bottlenecks on, measured directly so perf PRs leave a
// recorded trajectory (BENCH_hotpath.json) instead of anecdotes.
//
//   1. events_per_sec        — discrete-event kernel throughput under the
//                              schedule/fire + schedule/cancel mix the rpc
//                              and detector layers generate.
//   2. join_tuples_per_sec   — partitioned hash-join build+probe through
//                              HashJoinOperator::Process.
//   3. tuple_ops_per_sec     — row construction, refcounted copy and
//                              WireSize accounting (the per-tuple tax of
//                              the exchange machinery).
//   4. chaos_batch_wall_ms   — end-to-end wall-clock for a fixed batch of
//                              pinned chaos seeds (full stack).
//   5. fig4_wall_ms          — end-to-end wall-clock for one Fig. 4 cell
//                              (Q1, retrospective, 3 evaluators, 2
//                              perturbed 20x), the workload the ISSUE's
//                              speedup target is stated against.
//
// Modes:
//   bench_hotpath                      measure and write BENCH_hotpath.json
//   bench_hotpath --check <baseline>   additionally compare events_per_sec
//                                      against the checked-in baseline and
//                                      exit 1 on a >20% regression (CI
//                                      perf-smoke; tolerance overridable
//                                      via GRIDQP_PERF_TOLERANCE).

#include <chrono>
#include <cstring>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/runner.h"
#include "chaos/scenario.h"
#include "exec/operators.h"
#include "sim/simulator.h"
#include "storage/tuple.h"

using namespace gqp;
using namespace gqp::bench;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---- 1. event kernel ----------------------------------------------------

// One self-rescheduling chain: a small-capture callback of the kind the
// rpc/detect/net layers schedule by the thousands.
struct ChainFn {
  Simulator* sim;
  uint64_t* fired;
  uint64_t target;
  double period;

  void operator()() const {
    ++*fired;
    // Companion timer set and immediately cancelled, mirroring the
    // reliable transport's retransmit timers (armed per send, cancelled
    // by the ack).
    const EventId timer = sim->Schedule(3 * period, [] {});
    sim->Cancel(timer);
    if (*fired < target) sim->Schedule(period, *this);
  }
};

double BenchEvents(uint64_t target_events) {
  Simulator sim;
  uint64_t fired = 0;
  constexpr int kChains = 64;  // staggered periods: realistic heap mixing
  for (int i = 0; i < kChains; ++i) {
    const double period = 1.0 + 0.1 * i;
    sim.Schedule(period, ChainFn{&sim, &fired, target_events, period});
  }
  const auto start = Clock::now();
  sim.RunToCompletion();
  const double secs = SecondsSince(start);
  return static_cast<double>(sim.events_executed()) / secs;
}

// ---- 2. hash join -------------------------------------------------------

double BenchJoin(size_t build_rows, size_t probe_rows, size_t* matches_out) {
  const SchemaPtr build_schema = MakeSchema(
      {{"k", DataType::kInt64}, {"payload", DataType::kInt64}});
  const SchemaPtr probe_schema = MakeSchema({{"k", DataType::kInt64}});
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kHashJoin;
  desc.out_schema =
      MakeSchema({{"k", DataType::kInt64},
                  {"payload", DataType::kInt64},
                  {"k2", DataType::kInt64}});
  desc.build_key = 0;
  desc.probe_key = 0;
  desc.base_cost_ms = 1.0;
  desc.build_cost_ms = 0.5;
  desc.cost_tag = "join";

  auto op_result = MakeOperator(desc);
  if (!op_result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", op_result.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<PhysicalOperator> op = std::move(*op_result);

  // Keys are bucketed the way a hash-partitioned exchange would route
  // them: bucket = key % kBuckets, two build rows per key, and probes
  // drawn from twice the key range so roughly half of them miss.
  constexpr int kBuckets = 4;
  const size_t distinct_keys = build_rows / 2;
  std::vector<Tuple> build;
  build.reserve(build_rows);
  for (size_t i = 0; i < build_rows; ++i) {
    build.emplace_back(
        build_schema,
        std::vector<Value>{Value(static_cast<int64_t>(i / 2)),
                           Value(static_cast<int64_t>(i))});
  }
  std::vector<Tuple> probe;
  probe.reserve(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i) {
    probe.emplace_back(probe_schema,
                       std::vector<Value>{Value(static_cast<int64_t>(
                           (i * 2654435761ULL) % (2 * distinct_keys)))});
  }

  ExecContext ctx;
  size_t matches = 0;
  const auto start = Clock::now();
  for (const Tuple& t : build) {
    ctx.ResetForTuple();
    const uint64_t key = static_cast<uint64_t>(t.at(0).AsInt64());
    (void)op->Process(0, t, static_cast<int>(key % kBuckets), &ctx);
  }
  for (const Tuple& t : probe) {
    ctx.ResetForTuple();
    const uint64_t key = static_cast<uint64_t>(t.at(0).AsInt64());
    (void)op->Process(1, t, static_cast<int>(key % kBuckets), &ctx);
    matches += ctx.out.size();
  }
  const double secs = SecondsSince(start);
  *matches_out = matches;
  return static_cast<double>(build_rows + probe_rows) / secs;
}

// ---- 3. tuple construction / copy / wire accounting ---------------------

double BenchTuples(size_t rows) {
  const SchemaPtr schema = MakeSchema({{"id", DataType::kInt64},
                                       {"score", DataType::kDouble},
                                       {"seq", DataType::kString}});
  std::vector<Tuple> kept;
  kept.reserve(rows);
  size_t wire = 0;
  const std::string payload = "MKVLAAGITALSLLAAGCSS";  // 20-char protein-ish
  const auto start = Clock::now();
  for (size_t i = 0; i < rows; ++i) {
    Tuple t(schema,
            std::vector<Value>{Value(static_cast<int64_t>(i)),
                               Value(0.5 * static_cast<double>(i)),
                               Value(payload)});
    wire += t.WireSize();
    Tuple copy = t;        // refcounted copy (recovery-log + queue pattern)
    wire += copy.WireSize();  // re-walk or memo hit, depending on layout
    kept.push_back(std::move(copy));
  }
  const double secs = SecondsSince(start);
  if (wire == 0) std::printf("impossible\n");  // keep `wire` alive
  return static_cast<double>(rows) / secs;
}

// ---- 4/5. end-to-end ----------------------------------------------------

double BenchChaosBatch() {
  const uint64_t seeds[] = {1, 13, 29, 47, 87};
  const auto start = Clock::now();
  for (const uint64_t seed : seeds) {
    const chaos::ChaosScenario scenario = chaos::GenerateScenario(seed);
    const chaos::ChaosRunResult result = chaos::RunScenario(scenario);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: chaos seed %llu failed: %s\n",
                   static_cast<unsigned long long>(seed),
                   result.Report().c_str());
      std::exit(1);
    }
  }
  return 1000.0 * SecondsSince(start);
}

double BenchFig4() {
  ExperimentParams params;
  params.name = "hotpath-fig4-cell";
  params.query = QueryKind::kQ1;
  params.response = ResponseType::kRetrospective;
  params.num_evaluators = 3;
  params.adaptivity = true;
  params.repetitions = Repetitions();
  params.perturbations = {
      {0, PerturbSpec::Kind::kFactor, 20.0, 0, 0, 0, 0, 0},
      {1, PerturbSpec::Kind::kFactor, 20.0, 0, 0, 0, 0, 0}};
  const auto start = Clock::now();
  (void)MustRun(params);
  return 1000.0 * SecondsSince(start);
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--check <BENCH_hotpath.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  Banner("Hot-path wall-clock benchmark",
         "event kernel / hash join / tuple layer / end-to-end");

  const int reps = Repetitions();
  const uint64_t event_target = 400'000ULL * static_cast<uint64_t>(reps);
  const size_t build_rows = 100'000 * static_cast<size_t>(reps);
  const size_t probe_rows = 2 * build_rows;
  const size_t tuple_rows = 300'000 * static_cast<size_t>(reps);

  Metrics metrics("hotpath");

  const double events_per_sec = BenchEvents(event_target);
  std::printf("%-24s %14.0f events/s\n", "event kernel", events_per_sec);
  metrics.Set("events_per_sec", events_per_sec);

  size_t matches = 0;
  const double join_tuples_per_sec =
      BenchJoin(build_rows, probe_rows, &matches);
  std::printf("%-24s %14.0f tuples/s   (%zu matches)\n", "hash join",
              join_tuples_per_sec, matches);
  metrics.Set("join_tuples_per_sec", join_tuples_per_sec);

  const double tuple_ops_per_sec = BenchTuples(tuple_rows);
  std::printf("%-24s %14.0f rows/s\n", "tuple layer", tuple_ops_per_sec);
  metrics.Set("tuple_ops_per_sec", tuple_ops_per_sec);

  const double chaos_ms = BenchChaosBatch();
  std::printf("%-24s %14.1f wall ms    (seeds 1,13,29,47,87)\n",
              "chaos batch", chaos_ms);
  metrics.Set("chaos_batch_wall_ms", chaos_ms);

  const double fig4_ms = BenchFig4();
  std::printf("%-24s %14.1f wall ms    (%d reps)\n", "fig4 cell", fig4_ms,
              reps);
  metrics.Set("fig4_wall_ms", fig4_ms);

  metrics.WriteJson();

  if (baseline_path != nullptr) {
    double baseline = 0.0;
    if (!ReadJsonMetric(baseline_path, "events_per_sec", &baseline)) {
      std::fprintf(stderr, "FATAL: no events_per_sec in %s\n", baseline_path);
      return 2;
    }
    double tolerance = 0.20;
    if (const char* env = std::getenv("GRIDQP_PERF_TOLERANCE")) {
      const double v = std::atof(env);
      if (v > 0 && v < 1) tolerance = v;
    }
    const double floor = baseline * (1.0 - tolerance);
    std::printf("\nperf check: events/s %.0f vs baseline %.0f (floor %.0f)\n",
                events_per_sec, baseline, floor);
    if (events_per_sec < floor) {
      std::fprintf(stderr,
                   "FAIL: events_per_sec regressed more than %.0f%% against "
                   "%s\n",
                   100 * tolerance, baseline_path);
      return 1;
    }
    std::printf("perf check OK\n");
  }
  return 0;
}
