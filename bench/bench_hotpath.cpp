// Wall-clock hot-path benchmark: the three loops every experiment in this
// repository bottlenecks on, measured directly so perf PRs leave a
// recorded trajectory (BENCH_hotpath.json) instead of anecdotes.
//
//   1. events_per_sec        — discrete-event kernel throughput under the
//                              schedule/fire + schedule/cancel mix the rpc
//                              and detector layers generate.
//   2. join_tuples_per_sec   — partitioned hash-join build+probe through
//                              HashJoinOperator::ProcessBatch (1024-row
//                              batches, the vectorized executor path);
//                              join_scalar_tuples_per_sec records the
//                              per-tuple Process path for the trajectory.
//   3. tuple_ops_per_sec     — row construction, refcounted copy and
//                              WireSize accounting (the per-tuple tax of
//                              the exchange machinery).
//   4. sharded_events_per_sec_{1,2,4}
//                            — the same event mix on the conservative
//                              sharded kernel (D15) at 1, 2 and 4 shards,
//                              with cross-shard sends at the lookahead
//                              bound; sharded_speedup_4x is the 4-shard
//                              aggregate over the 1-shard run and
//                              hw_threads records how many cores the host
//                              actually had (speedup is bounded by it).
//   5. chaos_batch_wall_ms   — end-to-end wall-clock for a fixed batch of
//                              pinned chaos seeds (full stack).
//   6. fig4_wall_ms          — end-to-end wall-clock for one Fig. 4 cell
//                              (Q1, retrospective, 3 evaluators, 2
//                              perturbed 20x), the workload the ISSUE's
//                              speedup target is stated against.
//
// Modes:
//   bench_hotpath                      measure and write BENCH_hotpath.json
//   bench_hotpath --shards N           measure ONLY the sharded event
//                                      kernel at N shards and print it (no
//                                      JSON write; exploration mode)
//   bench_hotpath --check <baseline>   additionally compare events_per_sec,
//                                      join_tuples_per_sec and
//                                      sharded_events_per_sec_4 against the
//                                      checked-in baseline and exit 1 on a
//                                      >20% regression (CI perf-smoke;
//                                      tolerance overridable via
//                                      GRIDQP_PERF_TOLERANCE).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <vector>

#include <thread>

#include "bench/bench_util.h"
#include "chaos/runner.h"
#include "chaos/scenario.h"
#include "exec/operators.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "storage/tuple.h"

using namespace gqp;
using namespace gqp::bench;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Repetitions per timed metric; the fastest is reported. On shared
// machines the scheduler only ever ADDS time to a CPU-bound deterministic
// loop, so min-of-k is the low-variance estimator of true throughput
// (the same reasoning hyperfine and the LLVM benchmarking guide use).
// Keeps the perf-smoke CI leg from flaking on a noisy runner.
constexpr int kTimingReps = 3;

// ---- 1. event kernel ----------------------------------------------------

// One self-rescheduling chain: a small-capture callback of the kind the
// rpc/detect/net layers schedule by the thousands.
struct ChainFn {
  Simulator* sim;
  uint64_t* fired;
  uint64_t target;
  double period;

  void operator()() const {
    ++*fired;
    // Companion timer set and immediately cancelled, mirroring the
    // reliable transport's retransmit timers (armed per send, cancelled
    // by the ack).
    const EventId timer = sim->Schedule(3 * period, [] {});
    sim->Cancel(timer);
    if (*fired < target) sim->Schedule(period, *this);
  }
};

double BenchEvents(uint64_t target_events) {
  double best = 0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    Simulator sim;
    uint64_t fired = 0;
    constexpr int kChains = 64;  // staggered periods: realistic heap mixing
    for (int i = 0; i < kChains; ++i) {
      const double period = 1.0 + 0.1 * i;
      sim.Schedule(period, ChainFn{&sim, &fired, target_events, period});
    }
    const auto start = Clock::now();
    sim.RunToCompletion();
    const double secs = SecondsSince(start);
    best = std::max(best, static_cast<double>(sim.events_executed()) / secs);
  }
  return best;
}

// ---- 1b. sharded event kernel (D15) -------------------------------------

// The BenchEvents mix on the conservative parallel kernel: per-shard
// chains of local fire/reschedule + schedule/cancel pairs, with every
// 16th firing sending a cross-shard no-op at exactly now + lookahead (the
// tightest legal send, so windows stay as small as the protocol allows —
// the worst case for barrier overhead).
struct ShardChainFn {
  ShardedSimulator* sim;
  int shard;
  uint64_t* fired;  // shard-confined: only this shard's worker touches it
  uint64_t target;
  double period;

  void operator()() const {
    ++*fired;
    Simulator* local = sim->shard(shard);
    const EventId timer = local->Schedule(3 * period, [] {});
    local->Cancel(timer);
    if (*fired % 16 == 0 && sim->num_shards() > 1) {
      sim->ScheduleCrossAt((shard + 1) % sim->num_shards(),
                           local->Now() + 1.0, [] {});
    }
    if (*fired < target) local->Schedule(period, *this);
  }
};

double BenchShardedEvents(int shards, uint64_t target_per_shard) {
  double best = 0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    ShardedSimulator sim(shards, /*lookahead_ms=*/1.0);
    // Padded per-shard counters: adjacent uint64_t would false-share.
    struct alignas(64) Counter {
      uint64_t fired = 0;
    };
    std::vector<Counter> fired(static_cast<size_t>(shards));
    constexpr int kChainsPerShard = 16;
    for (int s = 0; s < shards; ++s) {
      for (int i = 0; i < kChainsPerShard; ++i) {
        const double period = 1.0 + 0.1 * i;
        sim.shard(s)->Schedule(
            period, ShardChainFn{&sim, s, &fired[static_cast<size_t>(s)].fired,
                                 target_per_shard, period});
      }
    }
    const auto start = Clock::now();
    sim.RunToCompletion();
    const double secs = SecondsSince(start);
    best = std::max(best, static_cast<double>(sim.events_executed()) / secs);
  }
  return best;
}

// ---- 2. hash join -------------------------------------------------------

double BenchJoin(size_t build_rows, size_t probe_rows, bool vectorized,
                 size_t* matches_out) {
  const SchemaPtr build_schema = MakeSchema(
      {{"k", DataType::kInt64}, {"payload", DataType::kInt64}});
  const SchemaPtr probe_schema = MakeSchema({{"k", DataType::kInt64}});
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kHashJoin;
  desc.out_schema =
      MakeSchema({{"k", DataType::kInt64},
                  {"payload", DataType::kInt64},
                  {"k2", DataType::kInt64}});
  desc.build_key = 0;
  desc.probe_key = 0;
  desc.base_cost_ms = 1.0;
  desc.build_cost_ms = 0.5;
  desc.cost_tag = "join";

  // Keys are bucketed the way a hash-partitioned exchange would route
  // them: bucket = key % kBuckets, two build rows per key, and probes
  // drawn from twice the key range so roughly half of them miss.
  constexpr int kBuckets = 4;
  const size_t distinct_keys = build_rows / 2;
  std::vector<Tuple> build;
  build.reserve(build_rows);
  for (size_t i = 0; i < build_rows; ++i) {
    build.emplace_back(
        build_schema,
        std::vector<Value>{Value(static_cast<int64_t>(i / 2)),
                           Value(static_cast<int64_t>(i))});
  }
  std::vector<Tuple> probe;
  probe.reserve(probe_rows);
  for (size_t i = 0; i < probe_rows; ++i) {
    probe.emplace_back(probe_schema,
                       std::vector<Value>{Value(static_cast<int64_t>(
                           (i * 2654435761ULL) % (2 * distinct_keys)))});
  }

  double best = 0;
  size_t matches = 0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    // The operator is rebuilt per repetition: its build table is stateful,
    // and a fresh instance also keeps the cold-allocation cost (table
    // growth, scratch vectors) inside the measurement like a real query.
    auto op_result = MakeOperator(desc);
    if (!op_result.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   op_result.status().ToString().c_str());
      std::exit(1);
    }
    std::unique_ptr<PhysicalOperator> op = std::move(*op_result);
    ExecContext ctx;
    matches = 0;
    const auto start = Clock::now();
    if (vectorized) {
      // The executor's batch quantum: slices of the input stream appended
      // (refcounted copy, as a queue pop hands over) into a reused batch,
      // one ProcessBatch per slice.
      constexpr size_t kBatch = 1024;
      TupleBatch in, out;
      for (int port = 0; port <= 1; ++port) {
        const std::vector<Tuple>& rows = port == 0 ? build : probe;
        for (size_t pos = 0; pos < rows.size(); pos += kBatch) {
          const size_t n = std::min(kBatch, rows.size() - pos);
          in.Clear();
          for (size_t i = 0; i < n; ++i) {
            const Tuple& t = rows[pos + i];
            const uint64_t key = static_cast<uint64_t>(t.at(0).AsInt64());
            in.Append(t, static_cast<int>(key % kBuckets),
                      static_cast<uint32_t>(i));
          }
          ctx.ResetForBatch(n);
          out.Clear();
          (void)op->ProcessBatch(port, &in, &out, &ctx);
          matches += out.size();
        }
      }
    } else {
      for (const Tuple& t : build) {
        ctx.ResetForTuple();
        const uint64_t key = static_cast<uint64_t>(t.at(0).AsInt64());
        (void)op->Process(0, t, static_cast<int>(key % kBuckets), &ctx);
      }
      for (const Tuple& t : probe) {
        ctx.ResetForTuple();
        const uint64_t key = static_cast<uint64_t>(t.at(0).AsInt64());
        (void)op->Process(1, t, static_cast<int>(key % kBuckets), &ctx);
        matches += ctx.out.size();
      }
    }
    const double secs = SecondsSince(start);
    best = std::max(best,
                    static_cast<double>(build_rows + probe_rows) / secs);
  }
  *matches_out = matches;
  return best;
}

// ---- 3. tuple construction / copy / wire accounting ---------------------

double BenchTuples(size_t rows) {
  const SchemaPtr schema = MakeSchema({{"id", DataType::kInt64},
                                       {"score", DataType::kDouble},
                                       {"seq", DataType::kString}});
  std::vector<Tuple> kept;
  kept.reserve(rows);
  size_t wire = 0;
  const std::string payload = "MKVLAAGITALSLLAAGCSS";  // 20-char protein-ish
  const auto start = Clock::now();
  for (size_t i = 0; i < rows; ++i) {
    Tuple t(schema,
            std::vector<Value>{Value(static_cast<int64_t>(i)),
                               Value(0.5 * static_cast<double>(i)),
                               Value(payload)});
    wire += t.WireSize();
    Tuple copy = t;        // refcounted copy (recovery-log + queue pattern)
    wire += copy.WireSize();  // re-walk or memo hit, depending on layout
    kept.push_back(std::move(copy));
  }
  const double secs = SecondsSince(start);
  if (wire == 0) std::printf("impossible\n");  // keep `wire` alive
  return static_cast<double>(rows) / secs;
}

// ---- 4/5. end-to-end ----------------------------------------------------

double BenchChaosBatch() {
  const uint64_t seeds[] = {1, 13, 29, 47, 87};
  const auto start = Clock::now();
  for (const uint64_t seed : seeds) {
    const chaos::ChaosScenario scenario = chaos::GenerateScenario(seed);
    const chaos::ChaosRunResult result = chaos::RunScenario(scenario);
    if (!result.ok()) {
      std::fprintf(stderr, "FATAL: chaos seed %llu failed: %s\n",
                   static_cast<unsigned long long>(seed),
                   result.Report().c_str());
      std::exit(1);
    }
  }
  return 1000.0 * SecondsSince(start);
}

double BenchFig4() {
  ExperimentParams params;
  params.name = "hotpath-fig4-cell";
  params.query = QueryKind::kQ1;
  params.response = ResponseType::kRetrospective;
  params.num_evaluators = 3;
  params.adaptivity = true;
  params.repetitions = Repetitions();
  params.perturbations = {
      {0, PerturbSpec::Kind::kFactor, 20.0, 0, 0, 0, 0, 0},
      {1, PerturbSpec::Kind::kFactor, 20.0, 0, 0, 0, 0, 0}};
  const auto start = Clock::now();
  (void)MustRun(params);
  return 1000.0 * SecondsSince(start);
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  int only_shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      only_shards = std::atoi(argv[++i]);
      if (only_shards < 1) {
        std::fprintf(stderr, "--shards wants a positive count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards N] [--check <BENCH_hotpath.json>]\n",
                   argv[0]);
      return 2;
    }
  }

  const int reps = Repetitions();
  const uint64_t shard_target = 150'000ULL * static_cast<uint64_t>(reps);

  if (only_shards > 0) {
    Banner("Hot-path wall-clock benchmark (sharded kernel only)",
           "conservative parallel event kernel, D15");
    const double per_sec = BenchShardedEvents(only_shards, shard_target);
    std::printf("%-24s %14.0f events/s   (%d shards, %u hw threads)\n",
                "sharded event kernel", per_sec, only_shards,
                std::thread::hardware_concurrency());
    return 0;
  }

  Banner("Hot-path wall-clock benchmark",
         "event kernel / hash join / tuple layer / end-to-end");

  const uint64_t event_target = 400'000ULL * static_cast<uint64_t>(reps);
  const size_t build_rows = 100'000 * static_cast<size_t>(reps);
  const size_t probe_rows = 2 * build_rows;
  const size_t tuple_rows = 300'000 * static_cast<size_t>(reps);

  Metrics metrics("hotpath");

  const double events_per_sec = BenchEvents(event_target);
  std::printf("%-24s %14.0f events/s\n", "event kernel", events_per_sec);
  metrics.Set("events_per_sec", events_per_sec);

  size_t matches = 0;
  const double join_tuples_per_sec =
      BenchJoin(build_rows, probe_rows, /*vectorized=*/true, &matches);
  std::printf("%-24s %14.0f tuples/s   (%zu matches)\n", "hash join (batch)",
              join_tuples_per_sec, matches);
  metrics.Set("join_tuples_per_sec", join_tuples_per_sec);

  size_t scalar_matches = 0;
  const double join_scalar_tuples_per_sec =
      BenchJoin(build_rows, probe_rows, /*vectorized=*/false, &scalar_matches);
  std::printf("%-24s %14.0f tuples/s   (%zu matches)\n", "hash join (scalar)",
              join_scalar_tuples_per_sec, scalar_matches);
  metrics.Set("join_scalar_tuples_per_sec", join_scalar_tuples_per_sec);
  if (matches != scalar_matches) {
    std::fprintf(stderr, "FATAL: batch/scalar join disagree: %zu vs %zu\n",
                 matches, scalar_matches);
    return 1;
  }

  const double tuple_ops_per_sec = BenchTuples(tuple_rows);
  std::printf("%-24s %14.0f rows/s\n", "tuple layer", tuple_ops_per_sec);
  metrics.Set("tuple_ops_per_sec", tuple_ops_per_sec);

  const unsigned hw_threads = std::thread::hardware_concurrency();
  double sharded_per_sec[3] = {0, 0, 0};
  const int shard_counts[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    sharded_per_sec[i] = BenchShardedEvents(shard_counts[i], shard_target);
    std::printf("%-24s %14.0f events/s   (%d shards)\n",
                "sharded event kernel", sharded_per_sec[i], shard_counts[i]);
    metrics.Set(StrCat("sharded_events_per_sec_", shard_counts[i]),
                sharded_per_sec[i]);
  }
  const double speedup_4x = sharded_per_sec[2] / sharded_per_sec[0];
  std::printf("%-24s %14.2f x          (%u hw threads)\n",
              "sharded speedup 4x", speedup_4x, hw_threads);
  metrics.Set("sharded_speedup_4x", speedup_4x);
  metrics.Set("hw_threads", static_cast<double>(hw_threads));

  const double chaos_ms = BenchChaosBatch();
  std::printf("%-24s %14.1f wall ms    (seeds 1,13,29,47,87)\n",
              "chaos batch", chaos_ms);
  metrics.Set("chaos_batch_wall_ms", chaos_ms);

  const double fig4_ms = BenchFig4();
  std::printf("%-24s %14.1f wall ms    (%d reps)\n", "fig4 cell", fig4_ms,
              reps);
  metrics.Set("fig4_wall_ms", fig4_ms);

  metrics.WriteJson();

  if (baseline_path != nullptr) {
    double tolerance = 0.20;
    if (const char* env = std::getenv("GRIDQP_PERF_TOLERANCE")) {
      const double v = std::atof(env);
      if (v > 0 && v < 1) tolerance = v;
    }
    const struct {
      const char* key;
      double measured;
    } gates[] = {{"events_per_sec", events_per_sec},
                 {"join_tuples_per_sec", join_tuples_per_sec},
                 {"sharded_events_per_sec_4", sharded_per_sec[2]}};
    bool failed = false;
    for (const auto& gate : gates) {
      if (hw_threads <= 1 &&
          std::strcmp(gate.key, "sharded_events_per_sec_4") == 0) {
        // On a single hardware thread the 4-shard kernel is all
        // synchronization overhead; comparing it against a baseline
        // recorded on a multi-core host only measures the host.
        std::printf("\nperf check: %s skipped (1 hw thread; the 4-shard "
                    "kernel cannot beat its baseline without cores)\n",
                    gate.key);
        continue;
      }
      double baseline = 0.0;
      if (!ReadJsonMetric(baseline_path, gate.key, &baseline)) {
        std::fprintf(stderr, "FATAL: no %s in %s\n", gate.key, baseline_path);
        return 2;
      }
      const double floor = baseline * (1.0 - tolerance);
      std::printf("\nperf check: %s %.0f vs baseline %.0f (floor %.0f)\n",
                  gate.key, gate.measured, baseline, floor);
      if (gate.measured < floor) {
        std::fprintf(stderr,
                     "FAIL: %s regressed more than %.0f%% against %s\n",
                     gate.key, 100 * tolerance, baseline_path);
        failed = true;
      }
    }
    if (failed) return 1;
    std::printf("perf check OK\n");
  }
  return 0;
}
