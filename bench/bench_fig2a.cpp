// Reproduces Fig. 2(a): performance of Q1 for prospective adaptations
// (assessment A1, response R2) with the web-service call on one of the
// two machines made 10x, 20x and 30x costlier. Reported in normalised
// response time (no-adaptivity / no-imbalance = 1).
//
// Paper reference series:
//   adaptivity disabled: 3.53, 6.66, 9.76
//   adaptivity enabled:  1.45, 2.48, 3.79

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Fig. 2(a) — Q1, prospective adaptations (A1 + R2)",
         "one WS call 10/20/30 times costlier; normalised response time");

  ExperimentParams base;
  base.query = QueryKind::kQ1;
  base.response = ResponseType::kProspective;
  base.assessment = AssessmentType::kA1;
  base.repetitions = Repetitions();

  // Baseline: no imbalance, no adaptivity.
  ExperimentParams baseline = base;
  baseline.name = "fig2a-baseline";
  baseline.adaptivity = false;
  const ExperimentResult base_result = MustRun(baseline);
  std::printf("baseline (no ad / no imb): %.1f virtual ms\n",
              base_result.response_ms);

  const double paper_noad[] = {3.53, 6.66, 9.76};
  const double paper_ad[] = {1.45, 2.48, 3.79};
  const double factors[] = {10, 20, 30};

  Metrics metrics("fig2a");
  metrics.Set("baseline_ms", base_result.response_ms);

  std::printf("\n%-12s %-22s %-22s\n", "perturb",
              "adaptivity disabled", "adaptivity enabled");
  std::printf("%-12s %-10s %-11s %-10s %-11s\n", "", "measured", "(paper)",
              "measured", "(paper)");
  for (int i = 0; i < 3; ++i) {
    ExperimentParams noad = base;
    noad.name = StrCat("fig2a-noad-", factors[i], "x");
    noad.adaptivity = false;
    noad.perturbations = {
        {0, PerturbSpec::Kind::kFactor, factors[i], 0, 0, 0, 0, 0}};
    const ExperimentResult noad_result = MustRun(noad);

    ExperimentParams ad = base;
    ad.name = StrCat("fig2a-ad-", factors[i], "x");
    ad.adaptivity = true;
    ad.perturbations = noad.perturbations;
    const ExperimentResult ad_result = MustRun(ad);

    std::printf("%-12s %-10.2f %-11.2f %-10.2f %-11.2f\n",
                StrCat(factors[i], "x").c_str(),
                Normalized(noad_result, base_result), paper_noad[i],
                Normalized(ad_result, base_result), paper_ad[i]);
    metrics.Set(StrCat("noad_", factors[i], "x"),
                Normalized(noad_result, base_result));
    metrics.Set(StrCat("ad_", factors[i], "x"),
                Normalized(ad_result, base_result));
  }
  metrics.WriteJson();
  return 0;
}
