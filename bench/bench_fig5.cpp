// Reproduces Fig. 5: performance of Q1 under rapidly changing
// perturbations. The perturbed machine's WS cost factor varies per
// incoming tuple, normally distributed with stable mean 30, truncated to
// [30,30] (stable), [25,35], [20,40] and [1,60]; both prospective and
// retrospective responses are measured.
//
// Expected result (Section 3.2, "Rapid Changes"): the adaptive performance
// changes only slightly across the four distributions — the system adapts
// efficiently to rapid changes of resource performance.

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Fig. 5 — Q1 under changing perturbations",
         "per-tuple WS cost factor ~ N(30, sd) truncated to the interval");

  ExperimentParams base;
  base.query = QueryKind::kQ1;
  base.repetitions = Repetitions();

  ExperimentParams baseline = base;
  baseline.name = "fig5-baseline";
  baseline.adaptivity = false;
  const ExperimentResult base_result = MustRun(baseline);

  struct Band {
    const char* label;
    double lo, hi, stddev;
  };
  const Band bands[] = {
      {"[30,30]", 30, 30, 0},
      {"[25,35]", 25, 35, 2.5},
      {"[20,40]", 20, 40, 5.0},
      {"[1,60]", 1, 60, 15.0},
  };

  Metrics metrics("fig5");
  metrics.Set("baseline_ms", base_result.response_ms);
  std::printf("\n%-10s %-16s %-16s\n", "band", "prospective(R2)",
              "retrospective(R1)");
  for (const Band& band : bands) {
    std::printf("%-10s", band.label);
    for (const ResponseType response :
         {ResponseType::kProspective, ResponseType::kRetrospective}) {
      ExperimentParams p = base;
      p.name = StrCat("fig5-", band.label, "-",
                      std::string(ResponseTypeToString(response)));
      p.adaptivity = true;
      p.response = response;
      if (band.stddev == 0) {
        p.perturbations = {{0, PerturbSpec::Kind::kFactor, 30, 0, 0, 0, 0, 0}};
        p.noise_stddev = 0;  // exact stable 30x reference bar
      } else {
        p.perturbations = {{0, PerturbSpec::Kind::kGaussianFactor, 0, 0, 30,
                            band.stddev, band.lo, band.hi}};
      }
      const ExperimentResult r = MustRun(p);
      std::printf(" %-16.2f", Normalized(r, base_result));
      // "[25,35]" -> "25_35"; R2 = prospective, R1 = retrospective.
      std::string band_slug(band.label + 1);
      band_slug.pop_back();
      for (char& c : band_slug) {
        if (c == ',') c = '_';
      }
      metrics.Set(
          StrCat(response == ResponseType::kProspective ? "R2_" : "R1_",
                 band_slug),
          Normalized(r, base_result));
    }
    std::printf("\n");
  }
  metrics.WriteJson();
  std::printf(
      "\nexpected shape: within each response type the four bars are nearly "
      "equal —\nvariability around a stable mean does not hurt the dynamic "
      "balancing.\n");
  return 0;
}
