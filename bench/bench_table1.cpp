// Reproduces Table 1: normalised response times of Q1 and Q2 under the
// four configurations {no ad / no imb, ad / no imb, no ad / imb, ad / imb}
// for three query/response combinations.
//
// Paper reference rows:
//   Q1 - R2 : 1, 1.059, 3.53, 1.45
//   Q1 - R1 : 1, 1.15,  3.53, 1.57
//   Q2 - R1 : 1, 1.11,  1.71, 1.31
//
// Imbalance injection follows the paper: Q1 — one WS call 10x costlier;
// Q2 — sleep(10 ms) before each join tuple on one machine.

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

namespace {

struct Row {
  const char* label;
  QueryKind query;
  ResponseType response;
  PerturbSpec imbalance;
  double paper[4];
};

}  // namespace

int main() {
  Banner("Table 1 — performance of queries in normalised units",
         "columns: no-ad/no-imb, ad/no-imb, no-ad/imb, ad/imb");

  const Row rows[] = {
      {"Q1 - R2", QueryKind::kQ1, ResponseType::kProspective,
       {0, PerturbSpec::Kind::kFactor, 10, 0, 0, 0, 0, 0},
       {1, 1.059, 3.53, 1.45}},
      {"Q1 - R1", QueryKind::kQ1, ResponseType::kRetrospective,
       {0, PerturbSpec::Kind::kFactor, 10, 0, 0, 0, 0, 0},
       {1, 1.15, 3.53, 1.57}},
      {"Q2 - R1", QueryKind::kQ2, ResponseType::kRetrospective,
       {0, PerturbSpec::Kind::kSleep, 1, 10, 0, 0, 0, 0},
       {1, 1.11, 1.71, 1.31}},
  };

  std::printf("%-10s | %-19s | %-19s | %-19s | %-19s\n", "Query-Resp",
              "no ad / no imb", "ad / no imb", "no ad / imb", "ad / imb");
  std::printf("%-10s | %-9s %-9s | %-9s %-9s | %-9s %-9s | %-9s %-9s\n", "",
              "measured", "(paper)", "measured", "(paper)", "measured",
              "(paper)", "measured", "(paper)");

  Metrics metrics("table1");
  for (const Row& row : rows) {
    ExperimentParams base;
    base.query = row.query;
    base.response = row.response;
    base.repetitions = Repetitions();

    ExperimentParams p_noad_noimb = base;
    p_noad_noimb.name = StrCat("table1-", row.label, "-noad-noimb");
    p_noad_noimb.adaptivity = false;

    ExperimentParams p_ad_noimb = base;
    p_ad_noimb.name = StrCat("table1-", row.label, "-ad-noimb");
    p_ad_noimb.adaptivity = true;

    ExperimentParams p_noad_imb = base;
    p_noad_imb.name = StrCat("table1-", row.label, "-noad-imb");
    p_noad_imb.adaptivity = false;
    p_noad_imb.perturbations = {row.imbalance};

    ExperimentParams p_ad_imb = base;
    p_ad_imb.name = StrCat("table1-", row.label, "-ad-imb");
    p_ad_imb.adaptivity = true;
    p_ad_imb.perturbations = {row.imbalance};

    const ExperimentResult r_base = MustRun(p_noad_noimb);
    const ExperimentResult r_ad_noimb = MustRun(p_ad_noimb);
    const ExperimentResult r_noad_imb = MustRun(p_noad_imb);
    const ExperimentResult r_ad_imb = MustRun(p_ad_imb);

    std::printf(
        "%-10s | %-9.3f %-9.3f | %-9.3f %-9.3f | %-9.2f %-9.2f | %-9.2f "
        "%-9.2f\n",
        row.label, 1.0, row.paper[0], Normalized(r_ad_noimb, r_base),
        row.paper[1], Normalized(r_noad_imb, r_base), row.paper[2],
        Normalized(r_ad_imb, r_base), row.paper[3]);

    // JSON keys: "Q1 - R2" -> "Q1_R2_<config>".
    std::string slug = row.label;
    for (char& c : slug) {
      if (c == ' ' || c == '-') c = '_';
    }
    while (slug.find("__") != std::string::npos) {
      slug.erase(slug.find("__"), 1);
    }
    metrics.Set(StrCat(slug, "_base_ms"), r_base.response_ms);
    metrics.Set(StrCat(slug, "_ad_noimb"), Normalized(r_ad_noimb, r_base));
    metrics.Set(StrCat(slug, "_noad_imb"), Normalized(r_noad_imb, r_base));
    metrics.Set(StrCat(slug, "_ad_imb"), Normalized(r_ad_imb, r_base));
  }
  metrics.WriteJson();

  std::printf(
      "\nNote: the 'ad/no imb' column is the paper's \"unnecessary "
      "adaptivity\" overhead (R2 ~5.9%%, R1 ~15.3%%, Q2-R1 ~11%%).\n");
  return 0;
}
