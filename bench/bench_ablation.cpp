// Ablation benches for the design choices DESIGN.md calls out (not paper
// experiments): sensitivity of the adaptive response to
//   (a) the number of logical partition buckets (Flux-style granularity),
//   (b) the Diagnoser trigger threshold thresA,
//   (c) the MED window length.
// Workload: Q1, one WS 10x costlier, retrospective response.

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Ablations — bucket count, thresA, MED window",
         "Q1, one WS 10x costlier, A1 + R1; normalised response time");

  ExperimentParams base;
  base.query = QueryKind::kQ1;
  base.response = ResponseType::kRetrospective;
  base.repetitions = Repetitions();
  base.perturbations = {{0, PerturbSpec::Kind::kFactor, 10, 0, 0, 0, 0, 0}};

  ExperimentParams baseline = base;
  baseline.name = "ablation-baseline";
  baseline.adaptivity = false;
  baseline.perturbations.clear();
  const ExperimentResult base_result = MustRun(baseline);

  Metrics metrics("ablation");
  metrics.Set("baseline_ms", base_result.response_ms);

  // (a) thresA sweep (the paper fixes 20% and leaves tuning as future
  // work; this is that experiment).
  std::printf("\n-- thresA sweep --\n%-12s %-14s %-12s\n", "thresA",
              "normalised RT", "rounds");
  for (const double thres_a : {0.05, 0.10, 0.20, 0.40, 0.80}) {
    ExperimentParams p = base;
    p.name = StrCat("ablation-thresA-", thres_a);
    p.thres_a = thres_a;
    const ExperimentResult r = MustRun(p);
    std::printf("%-12.2f %-14.2f %-12llu\n", thres_a,
                Normalized(r, base_result),
                static_cast<unsigned long long>(r.stats.rounds_applied));
    metrics.Set(StrCat("thresA_", thres_a), Normalized(r, base_result));
  }

  // (b) MED window sweep.
  std::printf("\n-- MED window sweep --\n%-12s %-14s %-12s\n", "window",
              "normalised RT", "MED digests");
  for (const size_t window : {size_t{5}, size_t{10}, size_t{25},
                              size_t{50}, size_t{100}}) {
    ExperimentParams p = base;
    p.name = StrCat("ablation-window-", window);
    p.med_window = window;
    const ExperimentResult r = MustRun(p);
    std::printf("%-12zu %-14.2f %-12llu\n", window,
                Normalized(r, base_result),
                static_cast<unsigned long long>(r.stats.med_notifications));
    metrics.Set(StrCat("window_", window), Normalized(r, base_result));
  }

  // (c) thresM sweep.
  std::printf("\n-- thresM sweep --\n%-12s %-14s %-12s\n", "thresM",
              "normalised RT", "MED digests");
  for (const double thres_m : {0.05, 0.10, 0.20, 0.40}) {
    ExperimentParams p = base;
    p.name = StrCat("ablation-thresM-", thres_m);
    p.thres_m = thres_m;
    const ExperimentResult r = MustRun(p);
    std::printf("%-12.2f %-14.2f %-12llu\n", thres_m,
                Normalized(r, base_result),
                static_cast<unsigned long long>(r.stats.med_notifications));
    metrics.Set(StrCat("thresM_", thres_m), Normalized(r, base_result));
  }
  metrics.WriteJson();

  std::printf(
      "\nexpected shape: response time is flat across sane settings (the "
      "paper's\n\"both the adaptation quality and the overhead were rather "
      "insensitive\"),\nwith degradation only at extreme thresholds that "
      "suppress adaptation.\n");
  return 0;
}
