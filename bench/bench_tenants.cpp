// Multi-tenant overload (DESIGN.md §D16): an open-loop workload driver
// presses one grid at twice its sustainable rate and the bench checks
// that the GDQS admission controller degrades gracefully instead of
// collapsing:
//
//  1. uncontended baseline: a low-rate run where every query completes;
//     its p95 is the reference latency;
//  2. overload with admission ON: the ADMITTED queries' p95 must stay
//     within 1.5x the uncontended baseline — overload is absorbed by
//     deterministic rejections/sheds, not by latency creep;
//  3. overload with admission OFF: every arrival deploys immediately and
//     the completed-query p95 blows past the same 1.5x bound (the
//     collapse the controller exists to prevent);
//  4. determinism: the admission-on overload run, repeated with the same
//     seed, renders a byte-identical workload report.
//
// There is no paper table for this; the paper's adaptivity experiments
// assume a coordinator that survives being offered more work than the
// grid can execute.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "storage/datagen.h"
#include "workload/driver.h"
#include "workload/grid_setup.h"

using namespace gqp;
using namespace gqp::bench;

namespace {

constexpr int kNumEvaluators = 2;
constexpr uint64_t kSeed = 23;
constexpr size_t kSequences = 100;
constexpr size_t kInteractions = 150;
constexpr double kHorizonMs = 12'000.0;
constexpr double kDeadlineMs = 8000.0;
constexpr int kTenants = 3;
// Calibrated against the grid below: at 4 qps/tenant every query
// completes with no rejections (uncontended: queries overlap on the
// evaluators but never queue against the admission bound); the overload
// runs offer 2x that per tenant, past what the slots can drain.
constexpr double kBaselineRateQps = 4.0;
constexpr double kOverloadRateQps = 2.0 * kBaselineRateQps;
// Acceptance gate: admitted p95 under overload vs uncontended baseline.
constexpr double kP95DegradationBound = 1.5;

Status PopulateGrid(GridSetup* grid) {
  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = kSequences;
  seq_spec.seed = kSeed;
  seq_spec.sequence_length = 16;
  GQP_RETURN_IF_ERROR(grid->AddTable(GenerateProteinSequences(seq_spec)));

  ProteinInteractionsSpec inter_spec;
  inter_spec.num_rows = kInteractions;
  inter_spec.num_orfs = kSequences;
  inter_spec.seed = kSeed + 1000003;
  GQP_RETURN_IF_ERROR(
      grid->AddTable(GenerateProteinInteractions(inter_spec)));

  return grid->AddWebService("EntropyAnalyser", DataType::kDouble, 0.21);
}

DriverConfig MakeWorkload(double rate_qps) {
  DriverConfig config;
  config.seed = kSeed;
  config.horizon_ms = kHorizonMs;
  config.deadline_ms = kDeadlineMs;
  for (int t = 0; t < kTenants; ++t) {
    TenantSpec tenant;
    tenant.name = StrCat("t", t);
    tenant.arrival_rate_qps = rate_qps;
    tenant.weight_q1 = 1.0;  // uniform service time keeps p95 comparable
    config.tenants.push_back(tenant);
  }
  config.base_options.adaptivity.enabled = true;
  config.base_options.adaptivity.response = ResponseType::kRetrospective;
  config.base_options.exec.monitoring_enabled = true;
  config.base_options.exec.recovery_log_enabled = true;
  config.base_options.scheduler.num_evaluators = kNumEvaluators;
  return config;
}

/// One full simulated run: fresh grid, the given workload, admission on
/// or off. Aborts the binary on infrastructure failure (a bench that
/// cannot execute its workload must not report).
DriverReport RunWorkload(double rate_qps, bool admission_on) {
  GridOptions grid_options;
  grid_options.num_evaluators = kNumEvaluators;
  grid_options.admission.enabled = admission_on;
  // A short queue is the point: admitted latency = queue wait + execution,
  // so graceful degradation needs the wait bounded tightly and the excess
  // rejected instead of parked.
  grid_options.admission.max_concurrent_queries = 3;
  grid_options.admission.queue_capacity = 2;
  grid_options.admission.per_tenant_inflight_cap = 2;
  GridSetup grid(grid_options);
  if (Status s = grid.Initialize(); !s.ok()) {
    std::fprintf(stderr, "FATAL: grid init failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  if (Status s = PopulateGrid(&grid); !s.ok()) {
    std::fprintf(stderr, "FATAL: grid population failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }

  WorkloadDriver driver(MakeWorkload(rate_qps));
  driver.ScheduleArrivals(&grid);
  if (Status s = grid.simulator()->Run(); !s.ok()) {
    std::fprintf(stderr, "FATAL: simulation failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  return driver.Collect(&grid);
}

/// p95 over the completed queries of every tenant, pooled (the per-tenant
/// reports keep their own percentiles; the gate uses the pooled one).
double PooledP95(const DriverReport& report) {
  std::vector<double> latencies;
  for (const DriverQueryRecord& q : report.queries) {
    if (q.outcome == QueryOutcome::kComplete)
      latencies.push_back(q.latency_ms);
  }
  return NearestRankPercentile(std::move(latencies), 95.0);
}

}  // namespace

int main() {
  Banner("Multi-tenant overload — graceful degradation under admission "
         "control",
         "2x-sustainable open-loop load: admitted p95 must stay within "
         "1.5x the uncontended baseline, absorbed by deterministic "
         "rejections instead of latency collapse");

  int failures = 0;
  Metrics metrics("tenants");

  // 1. Uncontended baseline.
  const DriverReport baseline = RunWorkload(kBaselineRateQps, true);
  const double baseline_p95 = PooledP95(baseline);
  std::printf("\n--- baseline (%.1f qps/tenant, admission on) ---\n%s",
              kBaselineRateQps, baseline.Render().c_str());
  if (!baseline.trichotomy_ok || baseline.completed != baseline.submitted) {
    std::printf("FAIL: baseline run was not uncontended (%llu/%llu "
                "completed)\n",
                static_cast<unsigned long long>(baseline.completed),
                static_cast<unsigned long long>(baseline.submitted));
    ++failures;
  }

  // 2. Overload, admission ON: graceful degradation.
  const DriverReport on = RunWorkload(kOverloadRateQps, true);
  const double on_p95 = PooledP95(on);
  std::printf("\n--- overload (%.1f qps/tenant, admission on) ---\n%s",
              kOverloadRateQps, on.Render().c_str());
  if (!on.trichotomy_ok) {
    std::printf("FAIL: overload run violated terminal trichotomy\n");
    ++failures;
  }
  if (on.rejected == 0) {
    std::printf("FAIL: overload run with admission on rejected nothing — "
                "the offered load is not actually above capacity\n");
    ++failures;
  }
  if (baseline_p95 > 0 && on_p95 > kP95DegradationBound * baseline_p95) {
    std::printf("FAIL: admitted p95 %.3f ms exceeds %.1fx uncontended "
                "baseline %.3f ms\n",
                on_p95, kP95DegradationBound, baseline_p95);
    ++failures;
  }

  // 3. Overload, admission OFF: the collapse being prevented.
  const DriverReport off = RunWorkload(kOverloadRateQps, false);
  const double off_p95 = PooledP95(off);
  std::printf("\n--- overload (%.1f qps/tenant, admission off) ---\n%s",
              kOverloadRateQps, off.Render().c_str());
  if (off.rejected != 0) {
    std::printf("FAIL: admission off must reject nothing (got %llu)\n",
                static_cast<unsigned long long>(off.rejected));
    ++failures;
  }
  if (baseline_p95 > 0 && off_p95 <= kP95DegradationBound * baseline_p95) {
    std::printf("FAIL: admission-off p95 %.3f ms stayed within %.1fx "
                "baseline %.3f ms — the overload is too mild to "
                "demonstrate collapse\n",
                off_p95, kP95DegradationBound, baseline_p95);
    ++failures;
  }

  // 4. Determinism: same seed, byte-identical report.
  const DriverReport on_again = RunWorkload(kOverloadRateQps, true);
  if (on_again.Render() != on.Render()) {
    std::printf("FAIL: two same-seed admission-on runs rendered different "
                "workload reports\n");
    ++failures;
  }

  std::printf("\nsummary: baseline_p95=%.3f ms  admitted_p95=%.3f ms "
              "(bound %.3f)  admission_off_p95=%.3f ms  rejected=%llu  "
              "shed=%llu\n",
              baseline_p95, on_p95, kP95DegradationBound * baseline_p95,
              off_p95, static_cast<unsigned long long>(on.rejected),
              static_cast<unsigned long long>(on.aborted));

  metrics.Set("baseline_p95_ms", baseline_p95);
  metrics.Set("overload_on_p95_ms", on_p95);
  metrics.Set("overload_off_p95_ms", off_p95);
  metrics.Set("overload_on_goodput_qps", on.goodput_qps);
  metrics.Set("overload_off_goodput_qps", off.goodput_qps);
  metrics.Set("overload_on_rejected", static_cast<double>(on.rejected));
  metrics.Set("overload_on_completed", static_cast<double>(on.completed));
  metrics.Set("overload_submitted", static_cast<double>(on.submitted));
  metrics.WriteJson();

  if (failures > 0) {
    std::printf("\nFAIL: %d graceful-degradation check(s) failed\n",
                failures);
    return 1;
  }
  std::printf("\nadmission control absorbed a 2x overload with bounded "
              "admitted latency and deterministic rejections\n");
  return 0;
}
