// Reproduces Fig. 3(b): performance of Q1 for prospective adaptations and
// double data size (6000 tuples instead of 3000).
//
// Expected result (Section 3.2, "Varying the dataset size"): prospective
// adaptations suffer because a significant share of the tuples has been
// distributed before the adaptation takes effect; with twice the data the
// prospective results come close to the retrospective ones and improve on
// the 3000-tuple prospective run (Fig. 2(a)).

#include "bench/bench_util.h"

using namespace gqp;
using namespace gqp::bench;

int main() {
  Banner("Fig. 3(b) — Q1, prospective adaptations, doubled data size",
         "6000 tuples; one WS call 10/20/30 times costlier");

  const double factors[] = {10, 20, 30};

  Metrics metrics("fig3b");
  for (const size_t tuples : {size_t{3000}, size_t{6000}}) {
    ExperimentParams base;
    base.query = QueryKind::kQ1;
    base.response = ResponseType::kProspective;
    base.sequences = tuples;
    base.repetitions = Repetitions();

    ExperimentParams baseline = base;
    baseline.name = StrCat("fig3b-baseline-", tuples);
    baseline.adaptivity = false;
    const ExperimentResult base_result = MustRun(baseline);

    std::printf("\ndataset = %zu tuples (baseline %.1f virtual ms)\n", tuples,
                base_result.response_ms);
    std::printf("%-10s %-22s %-20s\n", "perturb", "adaptivity disabled",
                "adaptivity enabled");
    for (const double factor : factors) {
      ExperimentParams noad = base;
      noad.name = StrCat("fig3b-noad-", tuples, "-", factor, "x");
      noad.adaptivity = false;
      noad.perturbations = {
          {0, PerturbSpec::Kind::kFactor, factor, 0, 0, 0, 0, 0}};
      const ExperimentResult noad_result = MustRun(noad);

      ExperimentParams ad = base;
      ad.name = StrCat("fig3b-ad-", tuples, "-", factor, "x");
      ad.adaptivity = true;
      ad.perturbations = noad.perturbations;
      const ExperimentResult ad_result = MustRun(ad);

      std::printf("%-10s %-22.2f %-20.2f\n", StrCat(factor, "x").c_str(),
                  Normalized(noad_result, base_result),
                  Normalized(ad_result, base_result));
      metrics.Set(StrCat("noad_", tuples, "_", factor, "x"),
                  Normalized(noad_result, base_result));
      metrics.Set(StrCat("ad_", tuples, "_", factor, "x"),
                  Normalized(ad_result, base_result));
    }
  }
  metrics.WriteJson();
  std::printf(
      "\nexpected shape: the 6000-tuple adaptive column improves on the "
      "3000-tuple one\n(relative to its own baseline), approaching the "
      "retrospective results of Fig. 2(b).\n");
  return 0;
}
