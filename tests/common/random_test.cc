#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gqp {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, NextBelowBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(17), 17u);
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(30.0, 5.0);
  EXPECT_NEAR(sum / n, 30.0, 0.3);
}

TEST(RngTest, TruncatedGaussianStaysInBounds) {
  Rng rng(14);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextTruncatedGaussian(30.0, 10.0, 20.0, 40.0);
    EXPECT_GE(v, 20.0);
    EXPECT_LE(v, 40.0);
  }
}

TEST(RngTest, TruncatedGaussianDegenerateIntervalClamps) {
  Rng rng(15);
  // Interval far from the mean: rejection fails, clamping kicks in.
  const double v = rng.NextTruncatedGaussian(0.0, 0.001, 100.0, 101.0);
  EXPECT_GE(v, 100.0);
  EXPECT_LE(v, 101.0);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(16);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(77);
  Rng forked = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(77);
  b.Next();  // align with the state after Fork's draw
  EXPECT_NE(forked.Next(), b.Next());
}

}  // namespace
}  // namespace gqp
