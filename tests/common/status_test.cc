#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("bad").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(StatusTest, ErrorIsNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, MessagePreserved) {
  EXPECT_EQ(Status::NotFound("the thing").message(), "the thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("t").ToString(), "NotFound: t");
  EXPECT_EQ(Status::InvalidArgument("w").ToString(), "InvalidArgument: w");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, OkStatusRemappedToInternal) {
  Result<int> r = [] () -> Result<int> { return Status::OK(); }();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(err.ValueOr(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(ok.ValueOr(7), 3);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Passthrough(int x) {
  GQP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(1).ok());
  EXPECT_TRUE(Passthrough(-1).IsInvalidArgument());
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return 2 * x;
}

Result<int> Quadrupled(int x) {
  GQP_ASSIGN_OR_RETURN(int d, Doubled(x));
  GQP_ASSIGN_OR_RETURN(int q, Doubled(d));
  return q;
}

TEST(MacrosTest, AssignOrReturnChains) {
  Result<int> r = Quadrupled(3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 12);
  EXPECT_TRUE(Quadrupled(-1).status().IsOutOfRange());
}

}  // namespace
}  // namespace gqp
