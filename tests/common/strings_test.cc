#include "common/strings.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(StringsTest, StrCatConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrJoin) {
  std::vector<std::string> v{"a", "b", "c"};
  EXPECT_EQ(StrJoin(v, ", "), "a, b, c");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2}, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<int>{}, "-"), "");
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, ToUpper) {
  EXPECT_EQ(ToUpper("Protein_Sequences9"), "PROTEIN_SEQUENCES9");
  EXPECT_EQ(ToUpper(""), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

}  // namespace
}  // namespace gqp
