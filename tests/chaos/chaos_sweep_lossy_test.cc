// The lossy chaos sweep: seeded scenarios replayed under the
// lossy-network profile — per-link message loss up to 5%, scheduled
// partition windows, and heartbeat stalls (the false-suspicion case) on
// top of the standard perturbation/crash schedule. Every run keeps the
// full invariant set, now including detection latency: a crash must be
// confirmed by the heartbeat detector within its configured bound. A red
// entry prints the repro command (`chaos_repro --seed=N --lossy`).
//
// Uses a fresh seed range (201–240) so the standard sweep's seeds keep
// their historical meaning.

#include <cstdint>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

class LossyChaosSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LossyChaosSweepTest, InvariantsHoldUnderLoss) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario = GenerateScenario(seed, ChaosProfile::kLossy);
  const ChaosRunResult result = RunScenario(scenario);

  ASSERT_TRUE(result.status.ok())
      << result.status.ToString() << "\n  scenario: " << scenario.Describe()
      << "\n  repro: " << ReproCommand(seed, ChaosProfile::kLossy);
  EXPECT_TRUE(result.ok()) << result.Report()
                           << "\n  scenario: " << scenario.Describe();
  EXPECT_TRUE(result.completed)
      << "query never completed; repro: "
      << ReproCommand(seed, ChaosProfile::kLossy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyChaosSweepTest,
                         ::testing::Range<uint64_t>(201, 241),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
