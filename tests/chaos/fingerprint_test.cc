// Golden-fingerprint pinning. determinism_test.cc proves a seed replays
// identically *within* one binary; this test pins the absolute (event
// count, trace hash) of a handful of seeds against values recorded from
// the pre-hot-path-overhaul kernel, so any change to event ordering,
// sequence numbering, or scheduling behavior — however subtle — fails
// loudly instead of silently shifting every downstream result.
//
// If a fingerprint changes *by design* (e.g. a new subsystem schedules
// extra events), re-record the constants with:
//   chaos_repro --seed=N [--lossy]
// and say so in the commit message.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

struct GoldenFingerprint {
  uint64_t seed;
  ChaosProfile profile;
  uint64_t events;
  uint64_t hash;
  bool vectorized = false;
};

// Recorded 2026-08 from the seed kernel (priority_queue + id map), before
// the pooled event pool / packed rows / flat join table landed. Seed 87
// is the historical duplicate-build-insert regression scenario.
constexpr GoldenFingerprint kGolden[] = {
    {1, ChaosProfile::kStandard, 4465, 0x1cec7d16215d2d6cULL},
    {13, ChaosProfile::kStandard, 8927, 0xba0d24135de482d7ULL},
    {29, ChaosProfile::kStandard, 6942, 0x4007ced18da45a10ULL},
    {47, ChaosProfile::kStandard, 6244, 0x54b118bfe5855babULL},
    {58, ChaosProfile::kStandard, 7715, 0x0acd6c9ef770b7b8ULL},
    {87, ChaosProfile::kStandard, 14526, 0xb29764efbe1b9b07ULL},
    {96, ChaosProfile::kStandard, 15644, 0xe8cc4f7b0c541cadULL},
    {201, ChaosProfile::kLossy, 6999, 0x063fe15c9eb0a93bULL},
    {213, ChaosProfile::kLossy, 3550, 0xbe5189377fd8e54fULL},
    {240, ChaosProfile::kLossy, 6830, 0x3ecfcabd4e2146bfULL},
    // Flow-control profiles (D11), recorded 2026-08 when credit-based
    // flow control landed: park/unpark scheduling and credit-grant
    // traffic must replay bit-identically.
    {6, ChaosProfile::kSlowConsumer, 12664, 0x3dbc880d0e788913ULL},
    {3, ChaosProfile::kMemorySqueeze, 8960, 0xbb210f5865a4e957ULL},
    // Vectorized execution (D13), recorded 2026-08 when batch-at-a-time
    // operators landed: the same 12 seeds re-pinned at batch-boundary
    // event granularity (one composite charge per batch legitimately
    // changes simulated timing, so these differ from the scalar rows
    // above by design). Re-record with:
    //   chaos_repro --seed=N [profile flag] --vectorized
    {1, ChaosProfile::kStandard, 2913, 0x88b4b7d44bda0d26ULL, true},
    {13, ChaosProfile::kStandard, 4758, 0x2d2d136c7dd27bb9ULL, true},
    {29, ChaosProfile::kStandard, 3054, 0xe43d9be2248c6bdfULL, true},
    {47, ChaosProfile::kStandard, 2967, 0x965d1f056e5ecb9eULL, true},
    {58, ChaosProfile::kStandard, 3656, 0x71b7fefc6b4a8597ULL, true},
    {87, ChaosProfile::kStandard, 11102, 0x3dbc0f89745ee2aeULL, true},
    {96, ChaosProfile::kStandard, 3746, 0x34a52a146493d176ULL, true},
    {201, ChaosProfile::kLossy, 3933, 0xd3695289fbdd3ee4ULL, true},
    {213, ChaosProfile::kLossy, 1973, 0x4ce1769ae8ee59abULL, true},
    {240, ChaosProfile::kLossy, 3946, 0x8251978a7dfdce06ULL, true},
    {6, ChaosProfile::kSlowConsumer, 3950, 0xdc830b1447364194ULL, true},
    {3, ChaosProfile::kMemorySqueeze, 5296, 0x1142bc093144a15fULL, true},
};

std::string ProfilePrefix(ChaosProfile profile) {
  switch (profile) {
    case ChaosProfile::kStandard:
      return "seed";
    case ChaosProfile::kLossy:
      return "lossy_seed";
    case ChaosProfile::kSlowConsumer:
      return "slow_seed";
    case ChaosProfile::kMemorySqueeze:
      return "squeeze_seed";
    case ChaosProfile::kMultiQuery:
      return "mq_seed";
    case ChaosProfile::kCoordinatorKill:
      return "coord_seed";
  }
  return "seed";
}

class FingerprintTest
    : public ::testing::TestWithParam<GoldenFingerprint> {};

TEST_P(FingerprintTest, MatchesPrePoolKernel) {
  const GoldenFingerprint& golden = GetParam();
  ChaosScenario scenario = GenerateScenario(golden.seed, golden.profile);
  scenario.vectorized = golden.vectorized;
  const ChaosRunResult result = RunScenario(scenario, ChaosRunOptions{});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.trace_events, golden.events)
      << ReproCommand(golden.seed, golden.profile, golden.vectorized);
  EXPECT_EQ(result.trace_hash, golden.hash)
      << ReproCommand(golden.seed, golden.profile, golden.vectorized);
}

INSTANTIATE_TEST_SUITE_P(
    GoldenSeeds, FingerprintTest, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenFingerprint>& info) {
      return (info.param.vectorized ? "vec_" : "") +
             ProfilePrefix(info.param.profile) +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace chaos
}  // namespace gqp
