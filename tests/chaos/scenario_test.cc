#include "chaos/scenario.h"

#include <set>

#include <gtest/gtest.h>

namespace gqp {
namespace chaos {
namespace {

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (uint64_t seed : {0ULL, 1ULL, 42ULL, 1234567ULL, 0xdeadbeefULL}) {
    const ChaosScenario a = GenerateScenario(seed);
    const ChaosScenario b = GenerateScenario(seed);
    EXPECT_EQ(a.Describe(), b.Describe()) << "seed " << seed;
    EXPECT_EQ(a.seed, seed);
    EXPECT_EQ(a.query, b.query);
    EXPECT_EQ(a.sequences, b.sequences);
    EXPECT_EQ(a.interactions, b.interactions);
    EXPECT_EQ(a.num_evaluators, b.num_evaluators);
    EXPECT_EQ(a.capacities, b.capacities);
    EXPECT_EQ(a.perturbations.size(), b.perturbations.size());
    for (size_t i = 0; i < a.perturbations.size(); ++i) {
      EXPECT_EQ(a.perturbations[i].Describe(), b.perturbations[i].Describe());
      EXPECT_EQ(a.perturbations[i].profile_seed,
                b.perturbations[i].profile_seed);
    }
    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (size_t i = 0; i < a.failures.size(); ++i) {
      EXPECT_EQ(a.failures[i].evaluator, b.failures[i].evaluator);
      EXPECT_DOUBLE_EQ(a.failures[i].at_ms, b.failures[i].at_ms);
    }
    ASSERT_EQ(a.link_shifts.size(), b.link_shifts.size());
    for (size_t i = 0; i < a.link_shifts.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.link_shifts[i].params.latency_ms,
                       b.link_shifts[i].params.latency_ms);
    }
  }
}

TEST(ScenarioTest, DistinctSeedsProduceDistinctScenarios) {
  // Not a hard guarantee in general, but over a contiguous range the
  // generator must not collapse to a handful of shapes.
  std::set<std::string> shapes;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    shapes.insert(GenerateScenario(seed).Describe());
  }
  EXPECT_EQ(shapes.size(), 64u);
}

TEST(ScenarioTest, ParametersStayWithinGeneratorBounds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const ChaosScenario s = GenerateScenario(seed);
    EXPECT_GE(s.sequences, 150u) << seed;
    EXPECT_LE(s.sequences, 600u) << seed;
    EXPECT_GE(s.interactions, 200u) << seed;
    EXPECT_LE(s.interactions, 900u) << seed;
    EXPECT_GE(s.num_evaluators, 2) << seed;
    EXPECT_LE(s.num_evaluators, 4) << seed;
    ASSERT_EQ(s.capacities.size(), static_cast<size_t>(s.num_evaluators));
    for (double cap : s.capacities) {
      EXPECT_GE(cap, 0.5) << seed;
      EXPECT_LE(cap, 2.0) << seed;
    }
    EXPECT_GT(s.initial_link.latency_ms, 0.0) << seed;
    EXPECT_GT(s.initial_link.bandwidth_bytes_per_ms, 0.0) << seed;
    EXPECT_LE(s.perturbations.size(), 3u) << seed;
    EXPECT_LE(s.link_shifts.size(), 2u) << seed;
    for (const PerturbationEvent& ev : s.perturbations) {
      EXPECT_GE(ev.evaluator, 0) << seed;
      EXPECT_LT(ev.evaluator, s.num_evaluators) << seed;
      EXPECT_GE(ev.at_ms, 0.0) << seed;
    }
  }
}

TEST(ScenarioTest, AtLeastOneEvaluatorSurvivesEveryFailureSchedule) {
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    const ChaosScenario s = GenerateScenario(seed);
    EXPECT_LT(s.failures.size(), static_cast<size_t>(s.num_evaluators))
        << "seed " << seed << " kills every evaluator";
    std::set<int> victims;
    for (const FailureEvent& ev : s.failures) {
      EXPECT_GE(ev.evaluator, 0) << seed;
      EXPECT_LT(ev.evaluator, s.num_evaluators) << seed;
      EXPECT_TRUE(victims.insert(ev.evaluator).second)
          << "seed " << seed << " crashes evaluator " << ev.evaluator
          << " twice";
    }
  }
}

TEST(ScenarioTest, JoinQueriesAlwaysUseRetrospectiveResponse) {
  // R2 cannot preserve correctness for partitioned stateful operators;
  // the GDQS rejects that combination, so the generator must never
  // produce it.
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    const ChaosScenario s = GenerateScenario(seed);
    if (s.query == QueryKind::kQ2) {
      EXPECT_EQ(s.response, ResponseType::kRetrospective) << "seed " << seed;
    }
  }
}

TEST(ScenarioTest, ReproCommandNamesTheSeed) {
  EXPECT_EQ(ReproCommand(42), "chaos_repro --seed=42");
  EXPECT_EQ(ReproCommand(0), "chaos_repro --seed=0");
}

TEST(ScenarioTest, DescribeMentionsInjectedChaos) {
  // Find a seed with failures and one with perturbations; their one-line
  // summaries must surface the schedule (that line is what a red sweep
  // entry prints).
  bool saw_failure = false;
  bool saw_perturbation = false;
  for (uint64_t seed = 1; seed <= 100 && !(saw_failure && saw_perturbation);
       ++seed) {
    const ChaosScenario s = GenerateScenario(seed);
    const std::string desc = s.Describe();
    if (!s.failures.empty()) {
      saw_failure = true;
      EXPECT_NE(desc.find("fail=["), std::string::npos) << desc;
    }
    if (!s.perturbations.empty()) {
      saw_perturbation = true;
      EXPECT_NE(desc.find("perturb=["), std::string::npos) << desc;
    }
    EXPECT_NE(desc.find("seed=" + std::to_string(seed)), std::string::npos);
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_perturbation);
}

}  // namespace
}  // namespace chaos
}  // namespace gqp
