// The chaos sweep: 60 seeded scenarios through the full GDQS/GQES
// pipeline, each checked against the system invariants (result-multiset
// correctness vs. the unperturbed oracle, tuple conservation, and
// termination). A red entry prints the scenario summary and the exact
// one-line repro command (`chaos_repro --seed=N`).

#include <cstdint>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

class ChaosSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweepTest, InvariantsHold) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario = GenerateScenario(seed);
  const ChaosRunResult result = RunScenario(scenario);

  ASSERT_TRUE(result.status.ok())
      << result.status.ToString() << "\n  scenario: " << scenario.Describe()
      << "\n  repro: " << ReproCommand(seed);
  EXPECT_TRUE(result.ok()) << result.Report()
                           << "\n  scenario: " << scenario.Describe();
  EXPECT_TRUE(result.completed)
      << "query never completed; repro: " << ReproCommand(seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepTest,
                         ::testing::Range<uint64_t>(1, 61),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Regression pins: seeds outside the range above that once exposed real
// bugs. 87: a slow consumer deferred a recovery StateMoveRequest behind a
// perturbed (9.6 ms/tuple) in-flight tuple; batches routed under the new
// map arrived meanwhile and the late purge destroyed them — tuples above
// the producer's recall watermark that nothing would ever resend.
INSTANTIATE_TEST_SUITE_P(RegressionSeeds, ChaosSweepTest,
                         ::testing::Values<uint64_t>(87),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
