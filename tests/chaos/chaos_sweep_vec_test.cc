// Vectorized chaos sweep (D13): 40 seeded scenarios through the full
// GDQS/GQES pipeline with batch-at-a-time operator execution, each
// checked against the system invariants (result-multiset correctness
// vs. the unperturbed oracle, tuple conservation, bounded memory, and
// termination). The batch size varies with the seed so the sweep covers
// degenerate single-tuple batches as well as batches far wider than the
// fragment queues. A red entry prints the scenario summary and the
// exact repro command (`chaos_repro --seed=N --vectorized`).

#include <cstdint>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

// Exercised batch widths: 1 (scalar-shaped batches through the batch
// driver), small primes (ragged final batches), the default, and sizes
// larger than most port queues ever hold.
constexpr size_t kBatchSizes[] = {1, 2, 7, 16, 64, 256};

class ChaosSweepVecTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSweepVecTest, InvariantsHold) {
  const uint64_t seed = GetParam();
  ChaosScenario scenario = GenerateScenario(seed);
  scenario.vectorized = true;
  scenario.vector_batch_size =
      kBatchSizes[seed % (sizeof(kBatchSizes) / sizeof(kBatchSizes[0]))];
  const ChaosRunResult result = RunScenario(scenario);

  ASSERT_TRUE(result.status.ok())
      << result.status.ToString() << "\n  scenario: " << scenario.Describe()
      << "\n  repro: " << ReproCommand(seed, ChaosProfile::kStandard, true);
  EXPECT_TRUE(result.ok()) << result.Report()
                           << "\n  scenario: " << scenario.Describe();
  EXPECT_TRUE(result.completed)
      << "query never completed; repro: "
      << ReproCommand(seed, ChaosProfile::kStandard, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweepVecTest,
                         ::testing::Range<uint64_t>(1, 41),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Regression pin: seed 87 is the historical duplicate-build-insert /
// late-purge scenario (see chaos_sweep_test.cc); it applies 8 state-move
// rounds with resends, which must survive batch-granular stepping.
INSTANTIATE_TEST_SUITE_P(RegressionSeeds, ChaosSweepVecTest,
                         ::testing::Values<uint64_t>(87),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
