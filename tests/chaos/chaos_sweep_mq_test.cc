// Multi-query chaos sweep (DESIGN.md §D12): the standard chaos schedule
// (kills, sags, link shifts) with 1-3 additional queries submitted while
// the base query runs, all on the same grid. The runner checks every
// invariant per query — result multiset vs oracle, tuple conservation,
// bounded memory under the per-query credit budget, termination — so a
// green sweep means several live queries neither corrupt each other's
// answers nor escape their memory bounds while the chaos plays out.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

class MultiQuerySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiQuerySweepTest, InvariantsHoldPerQuery) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario =
      GenerateScenario(seed, ChaosProfile::kMultiQuery);
  ASSERT_FALSE(scenario.extra_queries.empty());
  ASSERT_TRUE(scenario.flow_control);

  const ChaosRunResult result = RunScenario(scenario, ChaosRunOptions{});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.ok()) << result.Report() << "\n" << scenario.Describe();
  EXPECT_TRUE(result.completed) << scenario.Describe();

  // One outcome per submitted query, every query finished with rows.
  ASSERT_EQ(result.per_query.size(), 1 + scenario.extra_queries.size());
  for (const QueryOutcome& q : result.per_query) {
    EXPECT_TRUE(q.completed) << "q" << q.query_id << " incomplete — "
                             << scenario.Describe();
    EXPECT_GT(q.rows, 0u) << "q" << q.query_id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiQuerySweepTest,
                         ::testing::Range<uint64_t>(1, 41),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
