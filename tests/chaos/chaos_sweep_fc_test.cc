// Flow-control chaos sweeps (DESIGN.md §D11). Two scenario families:
//
//  - kSlowConsumer: one evaluator's CPU sags 8-20x mid-run under a tight
//    per-query memory budget. The interesting failure mode is unbounded
//    queue growth at the slow consumer; the runner's CheckBoundedMemory
//    invariant asserts every peak stays within the credit-window bound.
//  - kMemorySqueeze: the full standard chaos schedule (kills, sags,
//    link shifts) under a tight budget, so credit accounting is exercised
//    against the failure machinery (voided links, recovery re-charges).
//
// The OverloadDemo tests pin the headline claim on seeds chosen for a
// pronounced consumer sag: with flow control ON the peak queued bytes
// drop >= 5x versus the identical scenario with flow control OFF, the
// result is equally correct both ways, and the Diagnoser's first
// adaptation comes from the QueuePressure path — before the windowed
// rate statistics could have converged.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

class SlowConsumerSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlowConsumerSweepTest, InvariantsHold) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario =
      GenerateScenario(seed, ChaosProfile::kSlowConsumer);
  const ChaosRunResult result = RunScenario(scenario, ChaosRunOptions{});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.ok()) << result.Report() << "\n" << scenario.Describe();
  EXPECT_TRUE(result.completed) << scenario.Describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlowConsumerSweepTest,
                         ::testing::Range<uint64_t>(1, 41),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

class MemorySqueezeSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemorySqueezeSweepTest, InvariantsHold) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario =
      GenerateScenario(seed, ChaosProfile::kMemorySqueeze);
  const ChaosRunResult result = RunScenario(scenario, ChaosRunOptions{});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.ok()) << result.Report() << "\n" << scenario.Describe();
  EXPECT_TRUE(result.completed) << scenario.Describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemorySqueezeSweepTest,
                         ::testing::Range<uint64_t>(1, 41),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Seeds whose generated sag is strong enough for the 5x headline; other
// seeds still bound memory (sweep above) but with milder sags the A/B gap
// is naturally smaller.
class OverloadDemoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverloadDemoTest, FlowControlShedsLoadBeforeRateStats) {
  const uint64_t seed = GetParam();
  const ChaosScenario with_fc =
      GenerateScenario(seed, ChaosProfile::kSlowConsumer);
  ASSERT_TRUE(with_fc.flow_control);

  ChaosScenario without_fc = with_fc;
  without_fc.flow_control = false;
  without_fc.memory_budget_bytes = 0;

  const ChaosRunResult on = RunScenario(with_fc, ChaosRunOptions{});
  const ChaosRunResult off = RunScenario(without_fc, ChaosRunOptions{});
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();

  // Equal correctness: both runs complete and pass every invariant
  // (result-vs-oracle included), and produce the same result multiset.
  EXPECT_TRUE(on.ok()) << on.Report();
  EXPECT_TRUE(off.ok()) << off.Report();
  ASSERT_TRUE(on.completed);
  ASSERT_TRUE(off.completed);
  std::vector<std::string> on_rows = on.result_rows;
  std::vector<std::string> off_rows = off.result_rows;
  std::sort(on_rows.begin(), on_rows.end());
  std::sort(off_rows.begin(), off_rows.end());
  EXPECT_EQ(on_rows, off_rows);

  // Graceful degradation: bounded queues cut the peak by >= 5x.
  ASSERT_GT(on.stats.queued_bytes_peak, 0u);
  EXPECT_GE(off.stats.queued_bytes_peak, 5 * on.stats.queued_bytes_peak)
      << "off peak " << off.stats.queued_bytes_peak << " vs on peak "
      << on.stats.queued_bytes_peak << " — " << with_fc.Describe();

  // Early signal: pressure reached the Diagnoser and its first proposal
  // predates (or replaces) the first rate-statistics proposal.
  EXPECT_GE(on.stats.queue_pressure_events, 1u);
  EXPECT_GE(on.stats.pressure_proposals, 1u);
  ASSERT_GE(on.stats.first_pressure_proposal_ms, 0.0);
  if (on.stats.first_rate_proposal_ms >= 0.0) {
    EXPECT_LT(on.stats.first_pressure_proposal_ms,
              on.stats.first_rate_proposal_ms);
  }

  // The off-run never emits credit traffic.
  EXPECT_EQ(off.stats.credit_grants_sent, 0u);
  EXPECT_EQ(off.stats.queue_pressure_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, OverloadDemoTest,
                         ::testing::Values<uint64_t>(30, 44),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
