// Tenant-storm chaos sweep (DESIGN.md §D16): each seed drives an
// open-loop multi-tenant workload — one tenant bursting — through a GDQS
// with admission control while an evaluator crashes and the failure
// detector confirms it mid-storm. The runner checks terminal trichotomy
// (every submitted query reaches exactly one of Complete/Aborted/
// Rejected), per-completed-query correctness against the no-failure
// oracle, conservation, and the admission ledger; this test asserts the
// surfaced report is consistent with those checks.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

class TenantStormSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TenantStormSweepTest, OverloadDegradesGracefully) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario =
      GenerateScenario(seed, ChaosProfile::kTenantStorm);
  ASSERT_TRUE(scenario.tenant_storm);
  ASSERT_GE(scenario.storm_tenants, 2);
  ASSERT_EQ(scenario.failures.size(), 1u);

  const ChaosRunResult result = RunScenario(scenario, ChaosRunOptions{});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.ok()) << result.Report() << "\n" << scenario.Describe();
  EXPECT_TRUE(result.completed) << scenario.Describe();

  // Terminal trichotomy: the storm submits an open-loop workload, an
  // evaluator dies mid-run, and still no query may linger unresolved.
  const DriverReport& w = result.workload;
  EXPECT_TRUE(w.trichotomy_ok) << scenario.Describe();
  EXPECT_EQ(w.unresolved, 0u);
  EXPECT_GT(w.submitted, 0u);
  EXPECT_EQ(w.submitted, w.completed + w.aborted + w.rejected);

  // The admission ledger must reconcile with the workload's view: every
  // rejection the driver observed is a queue-full rejection or a shed of
  // a queued entry, and the bounded queue never overflowed.
  EXPECT_EQ(result.admission.rejected_queue_full + result.admission.shed_queued,
            w.rejected)
      << scenario.Describe();
  EXPECT_LE(result.admission.queue_peak,
            static_cast<size_t>(scenario.storm_queue_capacity));
  EXPECT_EQ(result.admission.submitted, w.submitted);
  EXPECT_LE(result.admission.admitted, result.admission.submitted);

  // The generated storms offer more than the slots can drain, so the
  // controller must have been exercised: something completed (the grid
  // was not wedged) and per-tenant accounting adds up.
  EXPECT_GT(w.completed, 0u) << scenario.Describe();
  ASSERT_EQ(w.tenants.size(), static_cast<size_t>(scenario.storm_tenants));
  uint64_t tenant_submitted = 0;
  for (const TenantReport& t : w.tenants) {
    tenant_submitted += t.submitted;
    EXPECT_EQ(t.submitted, t.completed + t.aborted + t.rejected)
        << t.name << " — " << scenario.Describe();
  }
  EXPECT_EQ(tenant_submitted, w.submitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TenantStormSweepTest,
                         ::testing::Range<uint64_t>(401, 441),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
