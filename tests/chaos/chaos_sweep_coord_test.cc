// Coordinator-kill chaos sweep (DESIGN.md §D14): each seed crashes the
// primary GDQS at a random time mid-workload with a standby mirroring it.
// The standby must take over under the fenced epoch, retry or serve every
// query, and hold all per-query invariants — with results byte-identical
// to a reference run of the same scenario where the primary survives.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

class CoordinatorKillSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoordinatorKillSweepTest, TakeoverPreservesResults) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario =
      GenerateScenario(seed, ChaosProfile::kCoordinatorKill);
  ASSERT_TRUE(scenario.standby);
  ASSERT_TRUE(scenario.coordinator_kill);
  ASSERT_TRUE(scenario.failures.empty());

  const ChaosRunResult result = RunScenario(scenario, ChaosRunOptions{});
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.ok()) << result.Report() << "\n" << scenario.Describe();
  EXPECT_TRUE(result.completed) << scenario.Describe();

  // When the kill lands mid-query the takeover runs under epoch 1 and
  // reconciles every in-flight query; the generated deadlines are generous
  // (tens of seconds against sub-second queries), so nothing dies in
  // limbo. Some seeds draw a kill time past the last completion — then the
  // standby's watch has already stood down (nothing in flight to protect)
  // and no takeover happens, which is equally correct.
  if (result.takeover.taken_over) {
    EXPECT_EQ(result.takeover.epoch, 1u);
    EXPECT_GT(result.takeover.takeover_at_ms, scenario.coordinator_kill_at_ms);
    EXPECT_EQ(result.takeover.queries_terminated, 0) << scenario.Describe();
    EXPECT_EQ(result.takeover.queries_reconciled,
              result.takeover.queries_retried +
                  result.takeover.queries_served_mirrored);
    EXPECT_EQ(result.takeover.probe_replies, result.takeover.probes_sent);
  } else {
    EXPECT_EQ(result.takeover.epoch, 0u);
    // Every mirrored query had completed before the crash.
    EXPECT_EQ(result.mirror_entries, result.mirror_acked);
  }

  // Every query — the base one and the extras — finished with rows that
  // match the no-failure oracle exactly (checked inside the runner's
  // CheckResults; here we assert the outcomes surfaced per query).
  ASSERT_EQ(result.per_query.size(), 1 + scenario.extra_queries.size());
  for (const QueryOutcome& q : result.per_query) {
    EXPECT_TRUE(q.completed) << "q" << q.query_id << " incomplete — "
                             << scenario.Describe();
    EXPECT_GT(q.rows, 0u) << "q" << q.query_id;
  }

  // Reference leg: the identical scenario minus the kill. The standby
  // stays passive and the primary's own results must match what the
  // takeover produced (the runner already compared both against the
  // oracle multiset, so equality is transitive; assert the reference is
  // clean and takeover-free).
  ChaosScenario reference = scenario;
  reference.coordinator_kill = false;
  const ChaosRunResult ref = RunScenario(reference, ChaosRunOptions{});
  ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
  EXPECT_TRUE(ref.ok()) << ref.Report();
  EXPECT_FALSE(ref.takeover.taken_over);
  ASSERT_EQ(ref.per_query.size(), result.per_query.size());
  for (size_t i = 0; i < ref.per_query.size(); ++i) {
    EXPECT_EQ(ref.per_query[i].rows, result.per_query[i].rows)
        << "q" << ref.per_query[i].query_id << " row count diverged — "
        << scenario.Describe();
  }
  // Byte-identical base-query results (order-insensitive: the retried
  // incarnation's arrival order legitimately differs).
  std::vector<std::string> got = result.result_rows;
  std::vector<std::string> want = ref.result_rows;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << scenario.Describe();
  // The passive mirror drains fully when the primary survives.
  EXPECT_EQ(ref.mirror_entries, ref.mirror_acked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatorKillSweepTest,
                         ::testing::Range<uint64_t>(301, 341),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace chaos
}  // namespace gqp
