// Invariant (c): replay determinism. Running the same seeded scenario
// twice must schedule and execute exactly the same simulator events at
// exactly the same virtual times — checked by comparing the serialized
// event traces byte for byte — and must therefore produce identical
// results and counters.

#include <cstdint>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"
#include "chaos/trace.h"

namespace gqp {
namespace chaos {
namespace {

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, IdenticalSeedsYieldIdenticalRuns) {
  const uint64_t seed = GetParam();
  const ChaosScenario scenario = GenerateScenario(seed);
  ChaosRunOptions options;
  options.keep_trace = true;

  const ChaosRunResult first = RunScenario(scenario, options);
  const ChaosRunResult second = RunScenario(scenario, options);

  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();

  // Byte-identical event traces: the strongest statement — every event at
  // every virtual time matched.
  EXPECT_EQ(first.trace_events, second.trace_events) << ReproCommand(seed);
  if (first.trace != second.trace) {
    const size_t line = FirstTraceDivergence(first.trace, second.trace);
    FAIL() << "event traces diverge at line " << line << " of "
           << first.trace_events << " events; " << ReproCommand(seed);
  }
  EXPECT_EQ(first.trace_hash, second.trace_hash) << ReproCommand(seed);

  // ...and with it, identical externally visible behavior.
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.result_rows, second.result_rows);
  EXPECT_EQ(first.violations, second.violations);
  EXPECT_DOUBLE_EQ(first.response_ms, second.response_ms);
  EXPECT_DOUBLE_EQ(first.final_time_ms, second.final_time_ms);
  EXPECT_EQ(first.stats.rounds_started, second.stats.rounds_started);
  EXPECT_EQ(first.stats.rounds_applied, second.stats.rounds_applied);
  EXPECT_EQ(first.stats.resent_tuples, second.stats.resent_tuples);
  EXPECT_EQ(first.stats.discarded_tuples, second.stats.discarded_tuples);
  EXPECT_EQ(first.stats.tuples_per_evaluator,
            second.stats.tuples_per_evaluator);
}

// A dozen seeds spanning the scenario space: quiet runs, perturbed runs,
// failures, and link shifts (seeds overlap the sweep range, so any
// determinism failure here has a matching repro entry there).
INSTANTIATE_TEST_SUITE_P(ReplaySeeds, DeterminismTest,
                         ::testing::Values(1, 7, 13, 23, 29, 40, 47, 58, 64,
                                           74, 87, 96),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(TraceDivergenceTest, ReportsFirstDifferingLine) {
  EXPECT_EQ(FirstTraceDivergence("a\nb\n", "a\nb\n"), 0u);
  EXPECT_EQ(FirstTraceDivergence("a\nb\n", "a\nc\n"), 2u);
  EXPECT_EQ(FirstTraceDivergence("a\n", "a\nb\n"), 2u);
  EXPECT_EQ(FirstTraceDivergence("", "x\n"), 1u);
}

}  // namespace
}  // namespace chaos
}  // namespace gqp
