// Sharded/sequential differential suite (DESIGN.md §D15): every seed runs
// once on the classic sequential kernel and once per shard count on the
// conservative parallel kernel, and the outcomes must agree.
//
// What MUST match (the determinism contract of §D15):
//   - per-query completion: same queries complete, with OK status;
//   - invariant outcomes: no violations on either kernel;
//   - the base query's result rows, byte-identical after sorting (arrival
//     order may differ — same-timestamp deliveries interleave differently
//     across shard counts — but the multiset of rows may not);
//   - per-query row counts for the concurrent queries of kMultiQuery.
//
// What need NOT match: event traces, virtual completion times, transport/
// loss counters, adaptivity round counts.
//
// The reference runs sequentially but with the sharded kernel's RNG
// streams forced (counter-hash per-link loss, per-host retransmit
// jitter): under at-least-once delivery with injected failures, the
// duplicate-row pattern is a function of which messages drop and when
// retransmits fire, so a reference drawing from the two classic global
// streams would legitimately differ in duplicate multiplicity (both
// sides invariant-clean). Forcing the shared streams makes the row
// multisets comparable; the classic streams stay the golden-trace
// default and are untouched.
//
// 40 seeds spread over the standard, lossy and multi-query profiles, each
// checked at 2 and 4 shards against the sequential reference.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"

namespace gqp {
namespace chaos {
namespace {

struct DiffCase {
  uint64_t seed;
  ChaosProfile profile;
};

std::string ProfileName(ChaosProfile profile) {
  switch (profile) {
    case ChaosProfile::kStandard: return "standard";
    case ChaosProfile::kLossy: return "lossy";
    case ChaosProfile::kMultiQuery: return "multi_query";
    default: return "other";
  }
}

std::vector<DiffCase> DiffCases() {
  std::vector<DiffCase> cases;
  // 14 standard + 13 lossy + 13 multi-query = 40 seeds, drawn from the
  // same ranges the per-profile sweeps use (so every scenario here is
  // also invariant-checked there).
  for (uint64_t s = 1; s <= 14; ++s) {
    cases.push_back({s, ChaosProfile::kStandard});
  }
  for (uint64_t s = 201; s <= 213; ++s) {
    cases.push_back({s, ChaosProfile::kLossy});
  }
  for (uint64_t s = 1; s <= 13; ++s) {
    cases.push_back({s, ChaosProfile::kMultiQuery});
  }
  return cases;
}

std::vector<std::string> SortedRows(const ChaosRunResult& result) {
  std::vector<std::string> rows = result.result_rows;
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ShardedDiffTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(ShardedDiffTest, ShardedMatchesSequential) {
  const DiffCase& c = GetParam();
  const ChaosScenario scenario = GenerateScenario(c.seed, c.profile);
  const std::string repro = ReproCommand(c.seed, c.profile);

  ChaosRunOptions sequential;
  sequential.shard_rng_streams = true;
  const ChaosRunResult reference = RunScenario(scenario, sequential);
  ASSERT_TRUE(reference.status.ok())
      << reference.status.ToString() << "\n  repro: " << repro;
  ASSERT_TRUE(reference.ok()) << reference.Report();
  const std::vector<std::string> reference_rows = SortedRows(reference);

  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards) + " repro: " + repro +
                 " --shards=" + std::to_string(shards));
    ChaosRunOptions options;
    options.shards = shards;
    const ChaosRunResult result = RunScenario(scenario, options);

    // Invariant outcomes must be identical: both kernels clean.
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.ok()) << result.Report();
    EXPECT_EQ(result.completed, reference.completed);

    // Byte-identical sorted result rows for the base query.
    EXPECT_EQ(SortedRows(result), reference_rows);

    // Per-query agreement (kMultiQuery adds concurrent queries; their
    // rendered rows are not kept, so counts + completion stand in).
    ASSERT_EQ(result.per_query.size(), reference.per_query.size());
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      EXPECT_EQ(result.per_query[q].completed, reference.per_query[q].completed)
          << "query index " << q;
      EXPECT_EQ(result.per_query[q].rows, reference.per_query[q].rows)
          << "query index " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ShardedDiffTest, ::testing::ValuesIn(DiffCases()),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return ProfileName(info.param.profile) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace chaos
}  // namespace gqp
