#include "expr/expression.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

int64_t I(int64_t v) { return v; }

Tuple Row() {
  auto schema = MakeSchema({{"a", DataType::kInt64},
                            {"b", DataType::kDouble},
                            {"s", DataType::kString},
                            {"n", DataType::kNull}});
  return Tuple(schema, {Value(I(10)), Value(2.5), Value("hello"),
                        Value::Null()});
}

Value Eval(const ExprPtr& e) {
  Result<Value> r = e->Eval(Row());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value();
}

TEST(ExpressionTest, ColumnRef) {
  EXPECT_EQ(Eval(Col(0, "a")).AsInt64(), 10);
  EXPECT_EQ(Eval(Col(2, "s")).AsString(), "hello");
}

TEST(ExpressionTest, ColumnRefOutOfRangeFails) {
  EXPECT_TRUE(Col(9, "x")->Eval(Row()).status().IsOutOfRange());
}

TEST(ExpressionTest, Literal) {
  EXPECT_EQ(Eval(Lit(Value(I(7)))).AsInt64(), 7);
  EXPECT_TRUE(Eval(Lit(Value::Null())).is_null());
}

TEST(ExpressionTest, Comparisons) {
  EXPECT_EQ(Eval(Cmp(CompareOp::kEq, Col(0, "a"), Lit(Value(I(10))))).AsInt64(), 1);
  EXPECT_EQ(Eval(Cmp(CompareOp::kNe, Col(0, "a"), Lit(Value(I(10))))).AsInt64(), 0);
  EXPECT_EQ(Eval(Cmp(CompareOp::kLt, Col(0, "a"), Lit(Value(I(11))))).AsInt64(), 1);
  EXPECT_EQ(Eval(Cmp(CompareOp::kLe, Col(0, "a"), Lit(Value(I(10))))).AsInt64(), 1);
  EXPECT_EQ(Eval(Cmp(CompareOp::kGt, Col(0, "a"), Lit(Value(I(10))))).AsInt64(), 0);
  EXPECT_EQ(Eval(Cmp(CompareOp::kGe, Col(0, "a"), Lit(Value(I(10))))).AsInt64(), 1);
}

TEST(ExpressionTest, StringComparison) {
  EXPECT_EQ(Eval(Cmp(CompareOp::kEq, Col(2, "s"), Lit(Value("hello")))).AsInt64(), 1);
  EXPECT_EQ(Eval(Cmp(CompareOp::kLt, Lit(Value("abc")), Lit(Value("abd")))).AsInt64(), 1);
}

TEST(ExpressionTest, NullComparisonsYieldNull) {
  EXPECT_TRUE(Eval(Cmp(CompareOp::kEq, Col(3, "n"), Lit(Value(I(1))))).is_null());
}

TEST(ExpressionTest, LogicalAndOrNot) {
  auto t = Lit(Value(I(1)));
  auto f = Lit(Value(I(0)));
  EXPECT_EQ(Eval(And(t, t)).AsInt64(), 1);
  EXPECT_EQ(Eval(And(t, f)).AsInt64(), 0);
  EXPECT_EQ(Eval(Or(f, t)).AsInt64(), 1);
  EXPECT_EQ(Eval(Or(f, f)).AsInt64(), 0);
  EXPECT_EQ(Eval(Not(f)).AsInt64(), 1);
  EXPECT_EQ(Eval(Not(t)).AsInt64(), 0);
}

TEST(ExpressionTest, LogicalShortCircuits) {
  // AND with false left never evaluates the right side (which would fail).
  auto failing = Col(99, "boom");
  EXPECT_EQ(Eval(And(Lit(Value(I(0))), failing)).AsInt64(), 0);
  EXPECT_EQ(Eval(Or(Lit(Value(I(1))), failing)).AsInt64(), 1);
}

TEST(ExpressionTest, NullLogicSemantics) {
  auto null = Lit(Value::Null());
  auto t = Lit(Value(I(1)));
  EXPECT_TRUE(Eval(And(null, t)).is_null());
  EXPECT_TRUE(Eval(Or(null, Lit(Value(I(0))))).is_null());
  EXPECT_EQ(Eval(Or(null, t)).AsInt64(), 1);  // true OR null = true
  EXPECT_TRUE(Eval(Not(null)).is_null());
}

TEST(ExpressionTest, Arithmetic) {
  EXPECT_EQ(Eval(Arith(ArithOp::kAdd, Col(0, "a"), Lit(Value(I(5))))).AsInt64(), 15);
  EXPECT_EQ(Eval(Arith(ArithOp::kSub, Col(0, "a"), Lit(Value(I(3))))).AsInt64(), 7);
  EXPECT_EQ(Eval(Arith(ArithOp::kMul, Col(0, "a"), Lit(Value(I(2))))).AsInt64(), 20);
  EXPECT_DOUBLE_EQ(Eval(Arith(ArithOp::kDiv, Col(0, "a"), Lit(Value(I(4))))).AsDouble(), 2.5);
}

TEST(ExpressionTest, MixedArithmeticIsDouble) {
  EXPECT_DOUBLE_EQ(
      Eval(Arith(ArithOp::kAdd, Col(0, "a"), Col(1, "b"))).AsDouble(), 12.5);
}

TEST(ExpressionTest, DivisionByZeroFails) {
  EXPECT_TRUE(Arith(ArithOp::kDiv, Col(0, "a"), Lit(Value(I(0))))
                  ->Eval(Row())
                  .status()
                  .IsInvalidArgument());
}

TEST(ExpressionTest, NullArithmeticYieldsNull) {
  EXPECT_TRUE(Eval(Arith(ArithOp::kAdd, Col(3, "n"), Col(0, "a"))).is_null());
}

TEST(ExpressionTest, BuiltinFunctions) {
  EXPECT_EQ(Eval(Call("LENGTH", {Col(2, "s")})).AsInt64(), 5);
  EXPECT_EQ(Eval(Call("upper", {Col(2, "s")})).AsString(), "HELLO");
  const Value e = Eval(Call("EntropyAnalyser", {Lit(Value("abab"))}));
  EXPECT_DOUBLE_EQ(e.AsDouble(), 1.0);
}

TEST(ExpressionTest, UnknownFunctionFails) {
  EXPECT_TRUE(Call("NOPE", {})->Eval(Row()).status().IsNotFound());
}

TEST(ExpressionTest, FunctionArgErrors) {
  EXPECT_FALSE(Call("LENGTH", {Col(0, "a")})->Eval(Row()).ok());
  EXPECT_FALSE(Call("ENTROPYANALYSER", {})->Eval(Row()).ok());
}

TEST(ExpressionTest, ToStringRoundTrips) {
  auto e = And(Cmp(CompareOp::kEq, Col(0, "a"), Lit(Value(I(1)))),
               Not(Col(1, "b")));
  EXPECT_EQ(e->ToString(), "((a = 1) AND NOT b)");
  EXPECT_EQ(Call("F", {Col(0, "a"), Lit(Value(I(2)))})->ToString(), "F(a, 2)");
}

TEST(ExpressionTest, ValueIsTrueSemantics) {
  EXPECT_FALSE(ValueIsTrue(Value::Null()));
  EXPECT_FALSE(ValueIsTrue(Value(I(0))));
  EXPECT_TRUE(ValueIsTrue(Value(I(-1))));
  EXPECT_FALSE(ValueIsTrue(Value(0.0)));
  EXPECT_TRUE(ValueIsTrue(Value(0.5)));
  EXPECT_FALSE(ValueIsTrue(Value("")));
  EXPECT_TRUE(ValueIsTrue(Value("x")));
}

TEST(ExpressionTest, FunctionRegistryRegisterAndFind) {
  FunctionRegistry reg;
  reg.Register("Twice", [](const std::vector<Value>& args) -> Result<Value> {
    return Value(args[0].ToNumeric() * 2);
  });
  EXPECT_TRUE(reg.Contains("TWICE"));
  EXPECT_TRUE(reg.Contains("twice"));
  EXPECT_FALSE(reg.Contains("thrice"));
  auto fn = reg.Find("tWiCe");
  ASSERT_TRUE(fn.ok());
  EXPECT_DOUBLE_EQ((*fn)({Value(I(4))})->AsDouble(), 8.0);
}

TEST(ExpressionTest, UnitCostsAreMonotone) {
  auto simple = Col(0, "a");
  auto complex = And(Cmp(CompareOp::kEq, Col(0, "a"), Col(1, "b")),
                     Cmp(CompareOp::kLt, Col(0, "a"), Lit(Value(I(3)))));
  EXPECT_GT(complex->UnitCost(), simple->UnitCost());
}

}  // namespace
}  // namespace gqp
