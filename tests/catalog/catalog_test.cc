#include "catalog/catalog.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TableEntry MakeTable(const std::string& name, size_t rows = 100) {
  TableEntry e;
  e.name = name;
  e.schema = MakeSchema({{"x", DataType::kInt64}});
  e.data_host = 1;
  e.stats.num_rows = rows;
  return e;
}

TEST(CatalogTest, RegisterAndFindTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(MakeTable("T1", 42)).ok());
  auto found = catalog.FindTable("t1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->stats.num_rows, 42u);
  EXPECT_EQ(found->data_host, 1);
}

TEST(CatalogTest, TableLookupCaseInsensitive) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(MakeTable("Protein_Sequences")).ok());
  EXPECT_TRUE(catalog.FindTable("PROTEIN_SEQUENCES").ok());
  EXPECT_TRUE(catalog.FindTable("protein_sequences").ok());
}

TEST(CatalogTest, UnknownTableFails) {
  Catalog catalog;
  EXPECT_TRUE(catalog.FindTable("nope").status().IsNotFound());
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(MakeTable("t")).ok());
  EXPECT_TRUE(catalog.RegisterTable(MakeTable("T")).IsAlreadyExists());
}

TEST(CatalogTest, InvalidTableEntryRejected) {
  Catalog catalog;
  TableEntry no_schema;
  no_schema.name = "x";
  EXPECT_TRUE(catalog.RegisterTable(no_schema).IsInvalidArgument());
}

TEST(CatalogTest, WebServiceRegistration) {
  Catalog catalog;
  WebServiceEntry ws;
  ws.name = "EntropyAnalyser";
  ws.result_type = DataType::kDouble;
  ws.nominal_cost_ms = 0.25;
  ASSERT_TRUE(catalog.RegisterWebService(ws).ok());
  EXPECT_TRUE(catalog.HasWebService("entropyanalyser"));
  EXPECT_FALSE(catalog.HasWebService("Other"));
  auto found = catalog.FindWebService("ENTROPYANALYSER");
  ASSERT_TRUE(found.ok());
  EXPECT_DOUBLE_EQ(found->nominal_cost_ms, 0.25);
}

TEST(CatalogTest, DuplicateWebServiceRejected) {
  Catalog catalog;
  WebServiceEntry ws;
  ws.name = "F";
  ASSERT_TRUE(catalog.RegisterWebService(ws).ok());
  EXPECT_TRUE(catalog.RegisterWebService(ws).IsAlreadyExists());
}

TEST(CatalogTest, TableNamesLists) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable(MakeTable("a")).ok());
  ASSERT_TRUE(catalog.RegisterTable(MakeTable("b")).ok());
  EXPECT_EQ(catalog.TableNames().size(), 2u);
}

}  // namespace
}  // namespace gqp
