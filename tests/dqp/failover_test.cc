// Fault-tolerance tests: an evaluator machine crashes mid-query and its
// unacknowledged work — queued tuples, in-transit buffers, and operator
// state — is recovered to the survivors from the producers' recovery logs.
//
// Result semantics are at-least-once: tuples the dead machine had
// processed but not yet acknowledged are replayed on a survivor, so the
// result may contain a bounded number of duplicates (at most the
// acknowledgment window), but nothing is ever lost. DESIGN.md discusses
// the exactly-once delta against the paper's fault-tolerance companion
// report.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

struct FailoverGrid {
  explicit FailoverGrid(int evaluators, uint64_t seed = 1,
                        size_t rows = 600) {
    GridOptions options;
    options.num_evaluators = evaluators;
    options.adaptive = true;
    setup = std::make_unique<GridSetup>(options);
    EXPECT_TRUE(setup->Initialize().ok());
    ProteinSequencesSpec seq_spec;
    seq_spec.num_rows = rows;
    seq_spec.sequence_length = 40;
    seq_spec.seed = seed;
    sequences = GenerateProteinSequences(seq_spec);
    EXPECT_TRUE(setup->AddTable(sequences).ok());
    ProteinInteractionsSpec inter_spec;
    inter_spec.num_rows = 900;
    inter_spec.num_orfs = rows;
    inter_spec.seed = seed + 3;
    interactions = GenerateProteinInteractions(inter_spec);
    EXPECT_TRUE(setup->AddTable(interactions).ok());
    EXPECT_TRUE(
        setup->AddWebService("EntropyAnalyser", DataType::kDouble, 0.2).ok());
  }

  std::unique_ptr<GridSetup> setup;
  TablePtr sequences;
  TablePtr interactions;
};

std::multiset<std::string> RowSet(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(t.ToString());
  return out;
}

/// actual must contain every expected row (at-least-once), with at most
/// `max_duplicates` extras.
void ExpectAtLeastOnce(const std::multiset<std::string>& expected,
                       const std::multiset<std::string>& actual,
                       size_t max_duplicates) {
  for (const std::string& row : std::set<std::string>(expected.begin(),
                                                      expected.end())) {
    EXPECT_GE(actual.count(row), expected.count(row))
        << "lost result row " << row;
  }
  EXPECT_GE(actual.size(), expected.size());
  EXPECT_LE(actual.size(), expected.size() + max_duplicates);
}

TEST(FailoverTest, Q1SurvivesEvaluatorCrash) {
  FailoverGrid grid(3);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  auto query = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1),
                                               options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Crash evaluator 1 mid-execution.
  grid.setup->simulator()->Schedule(120.0, [&grid] {
    ASSERT_TRUE(grid.setup->FailEvaluator(1).ok());
  });
  grid.setup->simulator()->RunToCompletion();

  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::multiset<std::string> expected;
  for (const Tuple& row : grid.sequences->rows()) {
    auto schema = MakeSchema({{"e", DataType::kDouble}});
    expected.insert(
        Tuple(schema, {Value(ShannonEntropy(row[1].AsString()))}).ToString());
  }
  ExpectAtLeastOnce(expected, RowSet(result->rows), 64);
}

TEST(FailoverTest, Q2JoinStateRecoveredFromLogs) {
  FailoverGrid grid(3, 2);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  options.optimizer.costs.scan_cost_ms = 1.0;
  auto query = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ2),
                                               options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  grid.setup->simulator()->Schedule(400.0, [&grid] {
    ASSERT_TRUE(grid.setup->FailEvaluator(0).ok());
  });
  grid.setup->simulator()->RunToCompletion();

  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Reference join result.
  std::set<std::string> orfs;
  for (const Tuple& row : grid.sequences->rows()) {
    orfs.insert(row[0].AsString());
  }
  std::multiset<std::string> expected;
  for (const Tuple& row : grid.interactions->rows()) {
    if (orfs.count(row[0].AsString()) > 0) {
      expected.insert("[" + row[1].AsString() + "]");
    }
  }
  ExpectAtLeastOnce(expected, RowSet(result->rows), 64);
}

TEST(FailoverTest, TightAcksBoundDuplicates) {
  FailoverGrid grid(3, 3);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  // Acknowledge every tuple immediately: the at-least-once window shrinks
  // to the acks in flight at the moment of the crash.
  options.exec.checkpoint_interval = 1;
  auto query = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1),
                                               options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  grid.setup->simulator()->Schedule(150.0, [&grid] {
    ASSERT_TRUE(grid.setup->FailEvaluator(2).ok());
  });
  grid.setup->simulator()->RunToCompletion();
  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rows.size(), grid.sequences->num_rows());
  EXPECT_LE(result->rows.size(), grid.sequences->num_rows() + 8);
}

TEST(FailoverTest, SurvivorsAbsorbTheDeadMachinesShare) {
  FailoverGrid grid(3, 4);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  auto query = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1),
                                               options);
  ASSERT_TRUE(query.ok());
  grid.setup->simulator()->Schedule(100.0, [&grid] {
    ASSERT_TRUE(grid.setup->FailEvaluator(0).ok());
  });
  grid.setup->simulator()->RunToCompletion();
  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));

  auto stats = grid.setup->gdqs()->CollectStats(*query);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tuples_per_evaluator.size(), 3u);
  // Routed counts include pre-crash routing; the dead machine must have
  // received far less than an equal share, and tuples were resent.
  EXPECT_LT(stats->tuples_per_evaluator[0], 400u);
  EXPECT_GT(stats->resent_tuples, 0u);
  const auto* responder = grid.setup->gdqs()->responder(*query);
  ASSERT_NE(responder, nullptr);
  EXPECT_EQ(responder->stats().failures_handled, 1u);
}

TEST(FailoverTest, FailureAfterCompletionIsHarmless) {
  FailoverGrid grid(2, 5, 100);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  auto query = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1),
                                               options);
  ASSERT_TRUE(query.ok());
  grid.setup->simulator()->RunToCompletion();
  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));
  // Crash after the query finished: nothing to recover, nothing breaks.
  EXPECT_TRUE(grid.setup->FailEvaluator(0).ok());
  grid.setup->simulator()->RunToCompletion();
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 100u);
}

TEST(FailoverTest, TwoCrashesOneSurvivor) {
  FailoverGrid grid(3, 6);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  auto query = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1),
                                               options);
  ASSERT_TRUE(query.ok());
  grid.setup->simulator()->Schedule(100.0, [&grid] {
    ASSERT_TRUE(grid.setup->FailEvaluator(0).ok());
  });
  grid.setup->simulator()->Schedule(260.0, [&grid] {
    ASSERT_TRUE(grid.setup->FailEvaluator(1).ok());
  });
  grid.setup->simulator()->RunToCompletion();
  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rows.size(), grid.sequences->num_rows());
}

TEST(FailoverTest, InvalidEvaluatorIndexRejected) {
  FailoverGrid grid(2, 7, 100);
  EXPECT_TRUE(grid.setup->FailEvaluator(9).IsOutOfRange());
}

}  // namespace
}  // namespace gqp
