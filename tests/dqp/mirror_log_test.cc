// Mirror-log unit tests (DESIGN.md §D14): replay determinism (the same
// log applied in any delivery order yields byte-identical standby state),
// prefix truncation after acknowledgment, out-of-order holdback and
// duplicate drops.

#include <gtest/gtest.h>

#include <vector>

#include "dqp/mirror_log.h"

namespace gqp {
namespace {

/// A small but representative log: two queries, a deployment each, an
/// epoch bump, a failure decision, applied weights, one completion and
/// one termination.
std::vector<MirrorEntry> SampleLog() {
  MirrorLog log;
  MirrorEntry reg1;
  reg1.kind = MirrorEntryKind::kQueryRegistered;
  reg1.query_id = 1;
  reg1.sql = "select p.orf from protein_sequences p";
  reg1.submit_time_ms = 0.0;
  reg1.deadline_ms = 500.0;
  log.Append(reg1);

  MirrorEntry dep1;
  dep1.kind = MirrorEntryKind::kDeployed;
  dep1.query_id = 1;
  dep1.credit_window_bytes = 4096;
  log.Append(dep1);

  MirrorEntry epoch;
  epoch.kind = MirrorEntryKind::kEpochBump;
  epoch.detector_epoch = 3;
  log.Append(epoch);

  MirrorEntry reg2;
  reg2.kind = MirrorEntryKind::kQueryRegistered;
  reg2.query_id = 2;
  reg2.sql = "select i.score from protein_interactions i";
  reg2.submit_time_ms = 12.5;
  log.Append(reg2);

  MirrorEntry fail;
  fail.kind = MirrorEntryKind::kFailureDecision;
  fail.failed_host = 3;
  log.Append(fail);

  MirrorEntry weights;
  weights.kind = MirrorEntryKind::kWeightsApplied;
  weights.query_id = 1;
  weights.round = 2;
  weights.weights = {0.25, 0.75};
  log.Append(weights);

  MirrorEntry done;
  done.kind = MirrorEntryKind::kQueryComplete;
  done.query_id = 1;
  done.completion_time_ms = 420.0;
  done.rows.push_back(Tuple(nullptr, {Value("ORF00001")}));
  log.Append(done);

  MirrorEntry term;
  term.kind = MirrorEntryKind::kQueryTerminated;
  term.query_id = 2;
  term.completion_time_ms = 999.0;
  log.Append(term);

  return std::vector<MirrorEntry>(log.pending().begin(), log.pending().end());
}

TEST(MirrorLogTest, AppendAssignsContiguousOneBasedSeqs) {
  const std::vector<MirrorEntry> entries = SampleLog();
  ASSERT_EQ(entries.size(), 8u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, i + 1);
  }
}

TEST(MirrorLogTest, AcknowledgeTruncatesPrefixOnly) {
  MirrorLog log;
  for (const MirrorEntry& e : SampleLog()) {
    MirrorEntry copy = e;
    copy.seq = 0;  // Append restamps
    log.Append(copy);
  }
  EXPECT_EQ(log.pending().size(), 8u);
  EXPECT_EQ(log.entries_appended(), 8u);

  log.Acknowledge(3);
  EXPECT_EQ(log.acked_seq(), 3u);
  EXPECT_EQ(log.entries_truncated(), 3u);
  ASSERT_EQ(log.pending().size(), 5u);
  EXPECT_EQ(log.pending().front().seq, 4u);

  // A stale (already-covered) ack must not truncate anything further.
  log.Acknowledge(2);
  EXPECT_EQ(log.acked_seq(), 3u);
  EXPECT_EQ(log.pending().size(), 5u);

  log.Acknowledge(8);
  EXPECT_TRUE(log.pending().empty());
  EXPECT_EQ(log.entries_truncated(), 8u);
}

TEST(MirrorStateTest, ReplayInOrderBuildsExpectedState) {
  MirrorState state;
  for (const MirrorEntry& e : SampleLog()) state.Apply(e);

  EXPECT_EQ(state.applied_seq(), 8u);
  EXPECT_EQ(state.held_back(), 0u);
  EXPECT_EQ(state.detector_epoch(), 3u);
  EXPECT_EQ(state.max_query_id(), 2);
  ASSERT_EQ(state.failure_decisions().count(3), 1u);

  const MirroredQuery* q1 = state.Find(1);
  ASSERT_NE(q1, nullptr);
  EXPECT_TRUE(q1->deployed);
  EXPECT_TRUE(q1->complete);
  EXPECT_EQ(q1->credit_window_bytes, 4096u);
  EXPECT_EQ(q1->weights_round, 2u);
  ASSERT_EQ(q1->last_weights.size(), 2u);
  ASSERT_EQ(q1->rows.size(), 1u);

  const MirroredQuery* q2 = state.Find(2);
  ASSERT_NE(q2, nullptr);
  EXPECT_FALSE(q2->complete);
  EXPECT_TRUE(q2->terminated);

  // Neither query is still in flight: one completed, one terminated.
  EXPECT_TRUE(state.IncompleteQueries().empty());
}

TEST(MirrorStateTest, ReplayDeterminism) {
  const std::vector<MirrorEntry> entries = SampleLog();
  MirrorState a, b;
  for (const MirrorEntry& e : entries) a.Apply(e);
  for (const MirrorEntry& e : entries) b.Apply(e);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), MirrorState().Fingerprint());
}

TEST(MirrorStateTest, OutOfOrderDeliveryIsHeldBackThenDrained) {
  const std::vector<MirrorEntry> entries = SampleLog();

  MirrorState in_order;
  for (const MirrorEntry& e : entries) in_order.Apply(e);

  // Reversed pairs: 2,1,4,3,6,5,8,7 — every even seq arrives one early.
  MirrorState shuffled;
  for (size_t i = 0; i + 1 < entries.size(); i += 2) {
    shuffled.Apply(entries[i + 1]);
    EXPECT_EQ(shuffled.held_back(), 1u) << "seq " << entries[i + 1].seq;
    shuffled.Apply(entries[i]);
    EXPECT_EQ(shuffled.held_back(), 0u) << "seq " << entries[i].seq;
  }
  EXPECT_EQ(shuffled.applied_seq(), 8u);
  EXPECT_EQ(shuffled.Fingerprint(), in_order.Fingerprint());

  // Fully reversed: everything held back until seq 1 lands.
  MirrorState reversed;
  for (size_t i = entries.size(); i > 1; --i) {
    reversed.Apply(entries[i - 1]);
    EXPECT_EQ(reversed.applied_seq(), 0u);
  }
  EXPECT_EQ(reversed.held_back(), entries.size() - 1);
  reversed.Apply(entries[0]);
  EXPECT_EQ(reversed.applied_seq(), 8u);
  EXPECT_EQ(reversed.held_back(), 0u);
  EXPECT_EQ(reversed.Fingerprint(), in_order.Fingerprint());
}

TEST(MirrorStateTest, QueuedAndRejectedEntriesReplayIntoAdmissionState) {
  MirrorLog log;
  MirrorEntry queued;
  queued.kind = MirrorEntryKind::kQueryQueued;
  queued.query_id = 7;
  queued.sql = "select p.orf from protein_sequences p";
  queued.tenant = "tenant-a";
  queued.submit_time_ms = 5.0;
  queued.deadline_ms = 100.0;
  log.Append(queued);

  MirrorEntry rejected;
  rejected.kind = MirrorEntryKind::kQueryRejected;
  rejected.query_id = 8;
  rejected.tenant = "tenant-b";
  rejected.reject_reason = 1;  // kQueueFull
  log.Append(rejected);

  MirrorState state;
  for (const MirrorEntry& e : log.pending()) state.Apply(e);

  const MirroredQuery* q7 = state.Find(7);
  ASSERT_NE(q7, nullptr);
  EXPECT_TRUE(q7->queued_pending);
  EXPECT_EQ(q7->tenant, "tenant-a");
  EXPECT_EQ(state.QueuedQueries(), std::vector<int>{7});
  // Queued-only queries are not in flight — a takeover resubmits them
  // instead of probing executors for fragments that never deployed.
  EXPECT_TRUE(state.IncompleteQueries().empty());

  const MirroredQuery* q8 = state.Find(8);
  ASSERT_NE(q8, nullptr);
  EXPECT_TRUE(q8->rejected);
  EXPECT_EQ(q8->reject_reason, 1);
  EXPECT_FALSE(q8->queued_pending);
}

TEST(MirrorStateTest, FingerprintCoversAdmissionState) {
  // The fingerprint must distinguish (a) a queued query from an absent
  // one, (b) queued from rejected, (c) different tenants and (d)
  // different rejection reasons — a standby that diverges in any of
  // these would reconcile a takeover differently.
  MirrorEntry queued;
  queued.kind = MirrorEntryKind::kQueryQueued;
  queued.seq = 1;
  queued.query_id = 7;
  queued.tenant = "tenant-a";

  MirrorState base;
  base.Apply(queued);

  EXPECT_NE(base.Fingerprint(), MirrorState().Fingerprint());

  MirrorState other_tenant;
  MirrorEntry renamed = queued;
  renamed.tenant = "tenant-b";
  other_tenant.Apply(renamed);
  EXPECT_NE(other_tenant.Fingerprint(), base.Fingerprint());

  MirrorState rejected;
  MirrorEntry reject = queued;
  reject.kind = MirrorEntryKind::kQueryRejected;
  reject.reject_reason = 1;
  rejected.Apply(reject);
  EXPECT_NE(rejected.Fingerprint(), base.Fingerprint());

  MirrorState shed;
  MirrorEntry shed_entry = reject;
  shed_entry.reject_reason = 2;  // kShed
  shed.Apply(shed_entry);
  EXPECT_NE(shed.Fingerprint(), rejected.Fingerprint());

  // Same admission history replayed twice: identical fingerprints.
  MirrorState again;
  again.Apply(queued);
  EXPECT_EQ(again.Fingerprint(), base.Fingerprint());
}

TEST(MirrorStateTest, DuplicatesAreDropped) {
  const std::vector<MirrorEntry> entries = SampleLog();
  MirrorState once, twice;
  for (const MirrorEntry& e : entries) once.Apply(e);
  for (const MirrorEntry& e : entries) {
    twice.Apply(e);
    twice.Apply(e);  // the reliable channel may redeliver
  }
  EXPECT_EQ(twice.applied_seq(), 8u);
  EXPECT_EQ(twice.Fingerprint(), once.Fingerprint());
}

}  // namespace
}  // namespace gqp
