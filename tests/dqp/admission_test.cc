// Admission-controller unit tests (DESIGN.md §D16): FIFO queue order and
// decision determinism, the per-tenant in-flight cap (including the
// head-of-line skip), memory-budget repartitioning across live queries,
// heaviest-tenant selection with its tie-breaks, rejection reason codes,
// and the end-to-end mirrored-admission replay onto a standby.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dqp/admission.h"
#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

AdmissionConfig SmallConfig() {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent_queries = 2;
  config.queue_capacity = 3;
  config.per_tenant_inflight_cap = 2;
  return config;
}

TEST(AdmissionControllerTest, QueueIsFifoAndBounded) {
  AdmissionController admission(SmallConfig());
  RejectReason reason = RejectReason::kNone;
  for (int id = 1; id <= 3; ++id) {
    EXPECT_EQ(admission.OnSubmit("t", id, &reason),
              AdmissionOutcome::kQueued);
  }
  // Capacity 3: the fourth submission is rejected with a reason code.
  EXPECT_EQ(admission.OnSubmit("t", 4, &reason),
            AdmissionOutcome::kRejected);
  EXPECT_EQ(reason, RejectReason::kQueueFull);
  EXPECT_EQ(admission.stats().rejected_queue_full, 1u);

  // Drain order is submission order.
  EXPECT_EQ(admission.NextAdmittable(), 1);
  EXPECT_EQ(admission.NextAdmittable(), 2);
  // Both slots busy now (max_concurrent 2): nothing more admits.
  EXPECT_EQ(admission.NextAdmittable(), -1);
  admission.OnQueryFinished("t", true);
  EXPECT_EQ(admission.NextAdmittable(), 3);
  EXPECT_EQ(admission.stats().queue_peak, 3u);
}

TEST(AdmissionControllerTest, DecisionsAreDeterministic) {
  // Two controllers fed the same submission/completion sequence make
  // identical decisions — the property the standby's mirror relies on.
  AdmissionController a(SmallConfig());
  AdmissionController b(SmallConfig());
  const std::string tenants[] = {"t0", "t1", "t0", "t2", "t1", "t0"};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 6; ++i) {
      RejectReason ra = RejectReason::kNone;
      RejectReason rb = RejectReason::kNone;
      const int id = round * 6 + i;
      EXPECT_EQ(a.OnSubmit(tenants[i], id, &ra),
                b.OnSubmit(tenants[i], id, &rb));
      EXPECT_EQ(ra, rb);
    }
    int ida, idb;
    while ((ida = a.NextAdmittable()) >= 0) {
      idb = b.NextAdmittable();
      EXPECT_EQ(ida, idb);
      a.OnQueryFinished(tenants[ida % 6], true);
      b.OnQueryFinished(tenants[idb % 6], true);
    }
  }
  EXPECT_EQ(a.stats().admitted, b.stats().admitted);
  EXPECT_EQ(a.stats().rejected_queue_full, b.stats().rejected_queue_full);
}

TEST(AdmissionControllerTest, PerTenantCapSkipsWithoutBlockingOthers) {
  AdmissionConfig config = SmallConfig();
  config.max_concurrent_queries = 4;
  config.queue_capacity = 8;
  config.per_tenant_inflight_cap = 1;
  AdmissionController admission(config);
  RejectReason reason = RejectReason::kNone;
  // A floods the queue ahead of B.
  EXPECT_EQ(admission.OnSubmit("a", 1, &reason), AdmissionOutcome::kQueued);
  EXPECT_EQ(admission.OnSubmit("a", 2, &reason), AdmissionOutcome::kQueued);
  EXPECT_EQ(admission.OnSubmit("b", 3, &reason), AdmissionOutcome::kQueued);

  // A's first query takes its single in-flight unit; A's second must NOT
  // head-of-line-block B.
  EXPECT_EQ(admission.NextAdmittable(), 1);
  EXPECT_EQ(admission.NextAdmittable(), 3);
  EXPECT_EQ(admission.NextAdmittable(), -1);
  EXPECT_EQ(admission.tenants().at("a").inflight, 1);
  EXPECT_EQ(admission.tenants().at("b").inflight, 1);

  // A finishing frees the cap; its queued query admits in FIFO position.
  admission.OnQueryFinished("a", true);
  EXPECT_EQ(admission.NextAdmittable(), 2);
}

TEST(AdmissionControllerTest, BudgetRepartitionsAcrossLiveQueries) {
  AdmissionConfig config = SmallConfig();
  config.max_concurrent_queries = 4;
  config.queue_capacity = 8;
  config.per_tenant_inflight_cap = 4;
  config.global_memory_budget_bytes = 1 << 20;
  AdmissionController admission(config);
  RejectReason reason = RejectReason::kNone;

  // First admission: sole live query takes the whole budget.
  admission.OnSubmit("t", 1, &reason);
  ASSERT_EQ(admission.NextAdmittable(), 1);
  EXPECT_EQ(admission.BudgetShareBytes(), static_cast<uint64_t>(1 << 20));

  // Second and third: the share a NEW admission would get shrinks.
  admission.OnSubmit("t", 2, &reason);
  ASSERT_EQ(admission.NextAdmittable(), 2);
  EXPECT_EQ(admission.BudgetShareBytes(), static_cast<uint64_t>(1 << 19));
  admission.OnSubmit("t", 3, &reason);
  ASSERT_EQ(admission.NextAdmittable(), 3);
  EXPECT_EQ(admission.BudgetShareBytes(),
            static_cast<uint64_t>((1 << 20) / 3));

  // Completions repartition back up.
  admission.OnQueryFinished("t", true);
  admission.OnQueryFinished("t", true);
  EXPECT_EQ(admission.BudgetShareBytes(), static_cast<uint64_t>(1 << 20));

  // No global budget configured: share is 0 (caller keeps its own).
  AdmissionController unbudgeted(SmallConfig());
  EXPECT_EQ(unbudgeted.BudgetShareBytes(), 0u);
}

TEST(AdmissionControllerTest, HeaviestTenantTieBreaks) {
  AdmissionConfig config = SmallConfig();
  config.max_concurrent_queries = 8;
  config.queue_capacity = 16;
  config.per_tenant_inflight_cap = 4;
  AdmissionController admission(config);
  RejectReason reason = RejectReason::kNone;

  // b: 2 in flight; a: 1 in flight + 2 queued; c: 1 in flight.
  admission.OnSubmit("b", 1, &reason);
  admission.OnSubmit("b", 2, &reason);
  admission.OnSubmit("a", 3, &reason);
  admission.OnSubmit("c", 4, &reason);
  for (int i = 0; i < 4; ++i) ASSERT_GE(admission.NextAdmittable(), 0);
  admission.OnSubmit("a", 5, &reason);
  admission.OnSubmit("a", 6, &reason);

  // Most in-flight wins outright.
  EXPECT_EQ(admission.HeaviestTenant(), "b");

  // In-flight tie (a=2 after admitting one more, b=2): most queued wins.
  ASSERT_EQ(admission.NextAdmittable(), 5);
  EXPECT_EQ(admission.HeaviestTenant(), "a");

  // Full tie (in-flight and queued equal): lexicographically smallest.
  ASSERT_EQ(admission.NextAdmittable(), 6);  // a: 3 in flight, 0 queued
  admission.OnQueryFinished("a", true);      // a: 2 in flight — ties b
  EXPECT_EQ(admission.HeaviestTenant(), "a");

  // Shedding queued work pops the NEWEST entry of the victim.
  admission.OnSubmit("a", 7, &reason);
  admission.OnSubmit("a", 8, &reason);
  EXPECT_EQ(admission.PopNewestQueuedOf("a"), 8);
  EXPECT_EQ(admission.PopNewestQueuedOf("a"), 7);
  EXPECT_EQ(admission.PopNewestQueuedOf("a"), -1);
  EXPECT_EQ(admission.stats().shed_queued, 2u);
}

TEST(AdmissionControllerTest, RejectReasonNames) {
  EXPECT_EQ(RejectReasonName(RejectReason::kQueueFull), "queue-full");
  EXPECT_EQ(RejectReasonName(RejectReason::kShed), "shed");
  EXPECT_EQ(RejectReasonName(RejectReason::kNone), "none");
}

// End-to-end mirrored replay: a primary with admission control and a
// standby mirroring it. Queued and rejected submissions must land in the
// standby's replica with tenant and reason intact, and the mirror must
// drain fully once the workload finishes.
TEST(AdmissionMirrorTest, StandbyReplicatesAdmissionDecisions) {
  GridOptions options;
  options.num_evaluators = 2;
  options.detect.enabled = true;
  options.reliable.enabled = true;
  options.standby_enabled = true;
  options.admission.enabled = true;
  options.admission.max_concurrent_queries = 1;
  options.admission.queue_capacity = 1;
  options.admission.per_tenant_inflight_cap = 1;
  GridSetup grid(options);
  ASSERT_TRUE(grid.Initialize().ok());

  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = 200;
  seq_spec.sequence_length = 16;
  seq_spec.seed = 11;
  ASSERT_TRUE(grid.AddTable(GenerateProteinSequences(seq_spec)).ok());
  ProteinInteractionsSpec inter_spec;
  inter_spec.num_rows = 300;
  inter_spec.num_orfs = 200;
  inter_spec.seed = 11 + 13;
  ASSERT_TRUE(grid.AddTable(GenerateProteinInteractions(inter_spec)).ok());
  ASSERT_TRUE(
      grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.2).ok());

  QueryOptions query_options;
  query_options.adaptivity.enabled = false;
  query_options.exec.monitoring_enabled = true;
  query_options.exec.recovery_log_enabled = true;
  query_options.deadline_ms = 5000.0;

  // Three same-instant submissions against 1 slot + 1 queue entry:
  // q1 admits, q2 queues, q3 is rejected (queue full).
  std::vector<int> ids;
  for (int i = 0; i < 3; ++i) {
    QueryOptions per_query = query_options;
    per_query.tenant = i == 0 ? "alpha" : "beta";
    Result<int> id =
        grid.gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), per_query);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  ASSERT_TRUE(grid.simulator()->Run().ok());

  EXPECT_TRUE(grid.gdqs()->QueryComplete(ids[0]));
  EXPECT_TRUE(grid.gdqs()->QueryComplete(ids[1]));
  const Status rejected = grid.gdqs()->ExecutionStatus(ids[2]);
  EXPECT_TRUE(rejected.IsRejected()) << rejected.ToString();

  // The standby replayed the same admission history.
  StandbyCoordinator* standby = grid.standby();
  ASSERT_NE(standby, nullptr);
  EXPECT_FALSE(standby->TakenOver());
  const MirrorState& mirror = standby->mirror_state();
  const MirroredQuery* q1 = mirror.Find(ids[0]);
  ASSERT_NE(q1, nullptr);
  EXPECT_TRUE(q1->complete);
  EXPECT_EQ(q1->tenant, "alpha");
  const MirroredQuery* q2 = mirror.Find(ids[1]);
  ASSERT_NE(q2, nullptr);
  EXPECT_TRUE(q2->complete);
  EXPECT_FALSE(q2->queued_pending) << "registration must clear queued";
  EXPECT_EQ(q2->tenant, "beta");
  const MirroredQuery* q3 = mirror.Find(ids[2]);
  ASSERT_NE(q3, nullptr);
  EXPECT_TRUE(q3->rejected);
  EXPECT_EQ(q3->reject_reason,
            static_cast<int>(RejectReason::kQueueFull));
  EXPECT_EQ(q3->tenant, "beta");

  // Fully replicated: no pending mirror entries, no queued leftovers.
  EXPECT_TRUE(grid.gdqs()->mirror_log()->pending().empty());
  EXPECT_TRUE(mirror.QueuedQueries().empty());
}

}  // namespace
}  // namespace gqp
