// Coordinator failover end-to-end tests (DESIGN.md §D14): standby
// mirroring without takeover, fenced takeover with query retry, deadline
// expiry during failover limbo, the primary-side deadline watchdog, epoch
// fencing at the GQES, and ReportNodeFailure argument validation.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "dqp/failover_messages.h"
#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

/// A grid with the demo datasets loaded, standby optional.
struct FailoverGrid {
  explicit FailoverGrid(bool standby, int evaluators = 2) {
    GridOptions options;
    options.num_evaluators = evaluators;
    options.detect.enabled = true;
    options.reliable.enabled = true;
    options.standby_enabled = standby;
    setup = std::make_unique<GridSetup>(options);
    EXPECT_TRUE(setup->Initialize().ok());

    ProteinSequencesSpec seq_spec;
    seq_spec.num_rows = 300;
    seq_spec.sequence_length = 32;
    seq_spec.seed = 7;
    sequences = GenerateProteinSequences(seq_spec);
    EXPECT_TRUE(setup->AddTable(sequences).ok());

    ProteinInteractionsSpec inter_spec;
    inter_spec.num_rows = 450;
    inter_spec.num_orfs = 300;
    inter_spec.seed = 7 + 13;
    interactions = GenerateProteinInteractions(inter_spec);
    EXPECT_TRUE(setup->AddTable(interactions).ok());

    EXPECT_TRUE(
        setup->AddWebService("EntropyAnalyser", DataType::kDouble, 0.2).ok());
  }

  QueryOptions Options() const {
    QueryOptions options;
    options.adaptivity.enabled = false;
    options.exec.monitoring_enabled = true;
    options.exec.recovery_log_enabled = true;
    return options;
  }

  std::unique_ptr<GridSetup> setup;
  TablePtr sequences;
  TablePtr interactions;
};

std::multiset<std::string> RowSet(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(t.ToString());
  return out;
}

TEST(CoordinatorFailoverTest, MirroringWithoutTakeoverIsPassive) {
  FailoverGrid grid(/*standby=*/true);
  Result<int> id =
      grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), grid.Options());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());

  StandbyCoordinator* standby = grid.setup->standby();
  ASSERT_NE(standby, nullptr);
  EXPECT_FALSE(standby->TakenOver());
  EXPECT_TRUE(grid.setup->gdqs()->QueryComplete(*id));

  // The mirror converged: the whole log is acknowledged and the standby's
  // replica holds the completed query with its result rows.
  const MirrorLog* log = grid.setup->gdqs()->mirror_log();
  ASSERT_NE(log, nullptr);
  EXPECT_GT(log->entries_appended(), 0u);
  EXPECT_TRUE(log->pending().empty());
  const MirroredQuery* mirrored = standby->mirror_state().Find(*id);
  ASSERT_NE(mirrored, nullptr);
  EXPECT_TRUE(mirrored->complete);
  Result<QueryResult> primary = grid.setup->gdqs()->GetResult(*id);
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ(RowSet(mirrored->rows), RowSet(primary->rows));
  // The standby view answers for the original id without a takeover.
  EXPECT_TRUE(standby->QueryComplete(*id));
  EXPECT_EQ(standby->FinalQueryId(*id), *id);
}

TEST(CoordinatorFailoverTest, TakeoverRetriesInFlightQuery) {
  // Reference run: same grid and query, primary stays alive.
  FailoverGrid reference(/*standby=*/true);
  Result<int> ref_id = reference.setup->gdqs()->SubmitQuery(
      QuerySql(QueryKind::kQ1), reference.Options());
  ASSERT_TRUE(ref_id.ok());
  ASSERT_TRUE(reference.setup->simulator()->Run().ok());
  Result<QueryResult> ref_result = reference.setup->gdqs()->GetResult(*ref_id);
  ASSERT_TRUE(ref_result.ok());

  FailoverGrid grid(/*standby=*/true);
  Result<int> id =
      grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), grid.Options());
  ASSERT_TRUE(id.ok());
  grid.setup->simulator()->Schedule(
      40.0, [&grid] { ASSERT_TRUE(grid.setup->FailCoordinator().ok()); });
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());

  StandbyCoordinator* standby = grid.setup->standby();
  ASSERT_TRUE(standby->TakenOver());
  const TakeoverStats& stats = standby->stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_GT(stats.takeover_at_ms, 40.0);
  EXPECT_EQ(stats.queries_reconciled, 1);
  EXPECT_EQ(stats.queries_retried, 1);
  EXPECT_EQ(stats.queries_terminated, 0);
  EXPECT_GT(stats.probes_sent, 0);
  EXPECT_EQ(stats.probe_replies, stats.probes_sent);
  EXPECT_EQ(stats.releases_sent, stats.probes_sent);

  // Every surviving GQES is fenced under the takeover epoch.
  for (int host = 1; host < grid.setup->num_hosts(); ++host) {
    Gqes* gqes = grid.setup->gqes_on(static_cast<HostId>(host));
    ASSERT_NE(gqes, nullptr);
    EXPECT_EQ(gqes->coordinator_epoch(), 1u) << "host " << host;
  }
  // The deposed primary's GQES never saw the announcement.
  EXPECT_EQ(grid.setup->gqes_on(0)->coordinator_epoch(), 0u);

  // The retried incarnation answers under the ORIGINAL id, and its result
  // matches the kill-free reference run byte-for-byte.
  EXPECT_NE(standby->FinalQueryId(*id), *id);
  ASSERT_TRUE(standby->QueryComplete(*id));
  EXPECT_TRUE(standby->ExecutionStatus(*id).ok());
  Result<QueryResult> result = standby->GetResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->query_id, *id);
  EXPECT_EQ(RowSet(result->rows), RowSet(ref_result->rows));
}

TEST(CoordinatorFailoverTest, DeadlineExpiredInFailoverLimboTerminates) {
  FailoverGrid grid(/*standby=*/true);
  QueryOptions options = grid.Options();
  // Expires between the kill (40 ms) and the takeover (~40 ms + detection
  // latency): the standby must terminate instead of retrying.
  options.deadline_ms = 50.0;
  Result<int> id =
      grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(id.ok());
  grid.setup->simulator()->Schedule(
      40.0, [&grid] { ASSERT_TRUE(grid.setup->FailCoordinator().ok()); });
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());

  StandbyCoordinator* standby = grid.setup->standby();
  ASSERT_TRUE(standby->TakenOver());
  EXPECT_GT(standby->stats().takeover_at_ms, 50.0);
  EXPECT_EQ(standby->stats().queries_terminated, 1);
  EXPECT_EQ(standby->stats().queries_retried, 0);

  EXPECT_FALSE(standby->QueryComplete(*id));
  const Status status = standby->ExecutionStatus(*id);
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  Result<QueryResult> result = standby->GetResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete);
}

TEST(CoordinatorFailoverTest, PrimaryDeadlineWatchdogTerminatesQuery) {
  FailoverGrid grid(/*standby=*/false);
  QueryOptions options = grid.Options();
  options.deadline_ms = 25.0;  // far below Q1's runtime
  Result<int> id =
      grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());

  EXPECT_FALSE(grid.setup->gdqs()->QueryComplete(*id));
  const Status status = grid.setup->gdqs()->ExecutionStatus(*id);
  EXPECT_TRUE(status.IsAborted()) << status.ToString();
  // The partial result (whatever the root had) is preserved, flagged
  // incomplete; the executors were torn down grid-wide.
  Result<QueryResult> result = grid.setup->gdqs()->GetResult(*id);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->complete);
  EXPECT_LT(result->rows.size(), grid.sequences->num_rows());
  for (int host = 0; host < grid.setup->num_hosts(); ++host) {
    Gqes* gqes = grid.setup->gqes_on(static_cast<HostId>(host));
    ASSERT_NE(gqes, nullptr);
    EXPECT_TRUE(gqes->Executors().empty()) << "host " << host;
  }
}

TEST(CoordinatorFailoverTest, GenerousDeadlineNeverFires) {
  FailoverGrid grid(/*standby=*/false);
  QueryOptions options = grid.Options();
  options.deadline_ms = 60'000.0;
  Result<int> id =
      grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());
  EXPECT_TRUE(grid.setup->gdqs()->QueryComplete(*id));
  EXPECT_TRUE(grid.setup->gdqs()->ExecutionStatus(*id).ok());
  // The watchdog was cancelled at completion: the simulation drained long
  // before the deadline would have fired.
  EXPECT_LT(grid.setup->simulator()->Now(), 60'000.0);
}

TEST(CoordinatorFailoverTest, StaleEpochReleaseIsDropped) {
  FailoverGrid grid(/*standby=*/true);
  Result<int> id =
      grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ1), grid.Options());
  ASSERT_TRUE(id.ok());
  grid.setup->simulator()->Schedule(
      40.0, [&grid] { ASSERT_TRUE(grid.setup->FailCoordinator().ok()); });
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());
  ASSERT_TRUE(grid.setup->standby()->TakenOver());

  // A release stamped by the deposed coordinator (epoch 0) arriving at a
  // fenced evaluator must be dropped, not acted on.
  Gqes* gqes = grid.setup->gqes_on(2);
  ASSERT_NE(gqes, nullptr);
  ASSERT_EQ(gqes->coordinator_epoch(), 1u);
  const uint64_t before = gqes->stats().stale_epoch_dropped;
  const size_t executors_before = gqes->Executors().size();
  ASSERT_TRUE(grid.setup->bus()
                  ->Send(Address{2, "test"}, gqes->address(),
                         std::make_shared<ReleaseQueryPayload>(
                             grid.setup->standby()->FinalQueryId(*id),
                             /*coordinator_epoch=*/0))
                  .ok());
  ASSERT_TRUE(grid.setup->simulator()->Run().ok());
  EXPECT_EQ(gqes->stats().stale_epoch_dropped, before + 1);
  EXPECT_EQ(gqes->Executors().size(), executors_before);
}

TEST(CoordinatorFailoverTest, ReportNodeFailureRejectsUnknownHost) {
  FailoverGrid grid(/*standby=*/false);
  const Status status = grid.setup->gdqs()->ReportNodeFailure(99);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
  // Registered hosts (even without running queries) are accepted.
  EXPECT_TRUE(grid.setup->gdqs()->ReportNodeFailure(2).ok());
}

}  // namespace
}  // namespace gqp
