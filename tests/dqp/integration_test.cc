// End-to-end integration tests: full grid, real queries, adaptivity on and
// off, perturbations injected — asserting above all that dynamic
// rebalancing (including retrospective state repartitioning) never loses
// or duplicates results.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

/// Builds a grid with the demo datasets loaded.
struct TestGrid {
  explicit TestGrid(int evaluators, bool adaptive, size_t rows = 300,
                    size_t interactions = 500, uint64_t seed = 1) {
    GridOptions options;
    options.num_evaluators = evaluators;
    options.adaptive = adaptive;
    setup = std::make_unique<GridSetup>(options);
    EXPECT_TRUE(setup->Initialize().ok());

    ProteinSequencesSpec seq_spec;
    seq_spec.num_rows = rows;
    seq_spec.sequence_length = 40;
    seq_spec.seed = seed;
    sequences = GenerateProteinSequences(seq_spec);
    EXPECT_TRUE(setup->AddTable(sequences).ok());

    ProteinInteractionsSpec inter_spec;
    inter_spec.num_rows = interactions;
    inter_spec.num_orfs = rows;
    inter_spec.seed = seed + 13;
    interactions_table = GenerateProteinInteractions(inter_spec);
    EXPECT_TRUE(setup->AddTable(interactions_table).ok());

    EXPECT_TRUE(
        setup->AddWebService("EntropyAnalyser", DataType::kDouble, 0.2).ok());
  }

  Result<QueryResult> Run(const std::string& sql, QueryOptions options) {
    GQP_ASSIGN_OR_RETURN(int id, setup->gdqs()->SubmitQuery(sql, options));
    GQP_RETURN_IF_ERROR(setup->simulator()->Run());
    if (!setup->gdqs()->QueryComplete(id)) {
      GQP_RETURN_IF_ERROR(setup->gdqs()->ExecutionStatus(id));
      return Status::Internal("query did not complete");
    }
    GQP_RETURN_IF_ERROR(setup->gdqs()->ExecutionStatus(id));
    last_query_id = id;
    return setup->gdqs()->GetResult(id);
  }

  std::unique_ptr<GridSetup> setup;
  TablePtr sequences;
  TablePtr interactions_table;
  int last_query_id = -1;
};

/// Multiset of stringified rows, for order-insensitive comparison.
std::multiset<std::string> RowSet(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const Tuple& t : rows) out.insert(t.ToString());
  return out;
}

/// The expected Q2 answer computed directly from the base tables.
std::multiset<std::string> ReferenceQ2(const Table& sequences,
                                       const Table& interactions) {
  std::set<std::string> orfs;
  for (const Tuple& row : sequences.rows()) orfs.insert(row[0].AsString());
  std::multiset<std::string> out;
  for (const Tuple& row : interactions.rows()) {
    if (orfs.count(row[0].AsString()) > 0) {
      out.insert("[" + row[1].AsString() + "]");
    }
  }
  return out;
}

TEST(IntegrationTest, Q1ReturnsEntropyForEveryRow) {
  TestGrid grid(2, /*adaptive=*/false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto result = grid.Run(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), grid.sequences->num_rows());
  // Spot-check a value against the reference implementation.
  std::multiset<double> expected, got;
  for (const Tuple& row : grid.sequences->rows()) {
    expected.insert(ShannonEntropy(row[1].AsString()));
  }
  for (const Tuple& row : result->rows) got.insert(row[0].AsDouble());
  EXPECT_EQ(expected, got);
}

TEST(IntegrationTest, Q2MatchesReferenceJoin) {
  TestGrid grid(2, /*adaptive=*/false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto result = grid.Run(QuerySql(QueryKind::kQ2), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RowSet(result->rows),
            ReferenceQ2(*grid.sequences, *grid.interactions_table));
}

TEST(IntegrationTest, ResponseTimeIsPositiveAndFinite) {
  TestGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto result = grid.Run(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->response_time_ms, 0.0);
  EXPECT_LT(result->response_time_ms, 1e9);
}

TEST(IntegrationTest, StatefulPlanRejectsProspectiveResponse) {
  TestGrid grid(2, true);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kProspective;
  auto result = grid.setup->gdqs()->SubmitQuery(QuerySql(QueryKind::kQ2),
                                                options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(IntegrationTest, UnknownTableFailsAtSubmit) {
  TestGrid grid(1, false);
  QueryOptions options;
  auto result = grid.setup->gdqs()->SubmitQuery("select x from missing",
                                                options);
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(IntegrationTest, ParseErrorSurfaced) {
  TestGrid grid(1, false);
  QueryOptions options;
  EXPECT_TRUE(grid.setup->gdqs()
                  ->SubmitQuery("selekt broken", options)
                  .status()
                  .IsParseError());
}

TEST(IntegrationTest, MultipleQueriesOnOneGrid) {
  TestGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto r1 = grid.Run("select p.orf from protein_sequences p", options);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = grid.Run("select i.orf2 from protein_interactions i", options);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->rows.size(), 300u);
  EXPECT_EQ(r2->rows.size(), 500u);
}

TEST(IntegrationTest, CompletionCallbackFires) {
  TestGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  bool fired = false;
  auto submitted = grid.setup->gdqs()->SubmitQuery(
      "select p.orf from protein_sequences p", options,
      [&](const QueryResult& r) {
        fired = true;
        EXPECT_EQ(r.rows.size(), 300u);
      });
  ASSERT_TRUE(submitted.ok());
  grid.setup->simulator()->RunToCompletion();
  EXPECT_TRUE(fired);
}

TEST(IntegrationTest, ReleaseQueryFreesExecutors) {
  TestGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto result = grid.Run("select p.orf from protein_sequences p", options);
  ASSERT_TRUE(result.ok());
  grid.setup->gdqs()->ReleaseQuery(grid.last_query_id);
  EXPECT_TRUE(grid.setup->gdqs()
                  ->GetResult(grid.last_query_id)
                  .status()
                  .IsNotFound());
}

TEST(IntegrationTest, FilterQueryEndToEnd) {
  TestGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto result = grid.Run(
      "select p.orf from protein_sequences p where p.orf = 'ORF00007'",
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString(), "ORF00007");
}

TEST(IntegrationTest, BuiltinFunctionQueryEndToEnd) {
  TestGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto result = grid.Run(
      "select LENGTH(p.sequence) from protein_sequences p", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 300u);
  for (const Tuple& row : result->rows) {
    EXPECT_EQ(row[0].AsInt64(), 40);
  }
}

// ---- Correctness under adaptation (the paper's key invariant) -------------

struct AdaptCase {
  QueryKind query;
  ResponseType response;
  int evaluators;
  double factor;     // WS/join cost multiplier on evaluator 0 (1 = none)
  double sleep_ms;   // added per-tuple delay on evaluator 0
  uint64_t seed;
};

class AdaptiveCorrectnessTest : public ::testing::TestWithParam<AdaptCase> {};

TEST_P(AdaptiveCorrectnessTest, NoLostOrDuplicatedResults) {
  const AdaptCase param = GetParam();
  TestGrid grid(param.evaluators, /*adaptive=*/true, 300, 500, param.seed);

  const std::string tag = PerturbTag(param.query);
  if (param.factor > 1) {
    ASSERT_TRUE(grid.setup
                    ->PerturbEvaluator(0, tag,
                                       std::make_shared<
                                           ConstantFactorPerturbation>(
                                           param.factor))
                    .ok());
  }
  if (param.sleep_ms > 0) {
    ASSERT_TRUE(grid.setup
                    ->PerturbEvaluator(0, tag,
                                       std::make_shared<
                                           AddedDelayPerturbation>(
                                           param.sleep_ms))
                    .ok());
  }
  // Mild drift on the other evaluators.
  for (int i = 1; i < param.evaluators; ++i) {
    ASSERT_TRUE(grid.setup
                    ->PerturbEvaluator(i, tag,
                                       std::make_shared<DriftPerturbation>(
                                           0.2, 100.0, param.seed + 7 +
                                                           static_cast<uint64_t>(i)))
                    .ok());
  }

  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = param.response;
  // Aggressive settings to provoke many adaptation rounds.
  options.adaptivity.thres_a = 0.10;
  options.adaptivity.thres_m = 0.10;
  options.exec.buffer_tuples = 20;
  options.exec.checkpoint_interval = 10;

  auto result = grid.Run(QuerySql(param.query), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  if (param.query == QueryKind::kQ1) {
    EXPECT_EQ(result->rows.size(), grid.sequences->num_rows());
  } else {
    EXPECT_EQ(RowSet(result->rows),
              ReferenceQ2(*grid.sequences, *grid.interactions_table));
  }

  // The hash joins must never observe duplicate build inserts.
  for (int i = 0; i < param.evaluators; ++i) {
    Gqes* gqes = grid.setup->gqes_on(grid.setup->evaluator_node(i)->id());
    for (FragmentExecutor* executor : gqes->Executors()) {
      if (const HashJoinOperator* join = executor->FindHashJoin()) {
        EXPECT_EQ(join->duplicate_build_inserts(), 0u);
      }
      EXPECT_TRUE(executor->finished());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PerturbationSweep, AdaptiveCorrectnessTest,
    ::testing::Values(
        // Q1 prospective, various imbalance sizes and seeds.
        AdaptCase{QueryKind::kQ1, ResponseType::kProspective, 2, 10, 0, 1},
        AdaptCase{QueryKind::kQ1, ResponseType::kProspective, 2, 30, 0, 2},
        AdaptCase{QueryKind::kQ1, ResponseType::kProspective, 3, 20, 0, 3},
        // Q1 retrospective (purge-all recalls).
        AdaptCase{QueryKind::kQ1, ResponseType::kRetrospective, 2, 10, 0, 4},
        AdaptCase{QueryKind::kQ1, ResponseType::kRetrospective, 2, 30, 0, 5},
        AdaptCase{QueryKind::kQ1, ResponseType::kRetrospective, 3, 20, 0, 6},
        AdaptCase{QueryKind::kQ1, ResponseType::kRetrospective, 4, 15, 0, 7},
        // Q2 retrospective: hash-join state repartitioning.
        AdaptCase{QueryKind::kQ2, ResponseType::kRetrospective, 2, 0, 5, 8},
        AdaptCase{QueryKind::kQ2, ResponseType::kRetrospective, 2, 0, 20, 9},
        AdaptCase{QueryKind::kQ2, ResponseType::kRetrospective, 2, 8, 0, 10},
        AdaptCase{QueryKind::kQ2, ResponseType::kRetrospective, 3, 0, 10, 11},
        AdaptCase{QueryKind::kQ2, ResponseType::kRetrospective, 4, 0, 10, 12},
        // No imbalance at all: only drift-driven adaptations.
        AdaptCase{QueryKind::kQ1, ResponseType::kRetrospective, 2, 1, 0, 13},
        AdaptCase{QueryKind::kQ2, ResponseType::kRetrospective, 2, 1, 0, 14}));

TEST(IntegrationTest, AdaptationImprovesImbalancedResponse) {
  // Static run.
  TestGrid static_grid(2, false, 600, 500, 1);
  ASSERT_TRUE(static_grid.setup
                  ->PerturbEvaluator(0, PerturbTag(QueryKind::kQ1),
                                     std::make_shared<
                                         ConstantFactorPerturbation>(10))
                  .ok());
  QueryOptions static_options;
  static_options.adaptivity.enabled = false;
  auto static_result =
      static_grid.Run(QuerySql(QueryKind::kQ1), static_options);
  ASSERT_TRUE(static_result.ok()) << static_result.status().ToString();

  // Adaptive run on an identical grid.
  TestGrid adaptive_grid(2, true, 600, 500, 1);
  ASSERT_TRUE(adaptive_grid.setup
                  ->PerturbEvaluator(0, PerturbTag(QueryKind::kQ1),
                                     std::make_shared<
                                         ConstantFactorPerturbation>(10))
                  .ok());
  QueryOptions adaptive_options;
  adaptive_options.adaptivity.enabled = true;
  auto adaptive_result =
      adaptive_grid.Run(QuerySql(QueryKind::kQ1), adaptive_options);
  ASSERT_TRUE(adaptive_result.ok()) << adaptive_result.status().ToString();

  EXPECT_LT(adaptive_result->response_time_ms,
            0.7 * static_result->response_time_ms);
}

TEST(IntegrationTest, AdaptiveRunShiftsTuplesToFasterMachine) {
  TestGrid grid(2, true, 600, 500, 1);
  ASSERT_TRUE(grid.setup
                  ->PerturbEvaluator(0, PerturbTag(QueryKind::kQ1),
                                     std::make_shared<
                                         ConstantFactorPerturbation>(10))
                  .ok());
  QueryOptions options;
  options.adaptivity.enabled = true;
  auto result = grid.Run(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto stats = grid.setup->gdqs()->CollectStats(grid.last_query_id);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tuples_per_evaluator.size(), 2u);
  // The slow machine (evaluator 0) must have received markedly fewer
  // tuples. (Prospective response cannot recall tuples shipped before the
  // adaptation, so the split is closer than the ideal 1:10.)
  EXPECT_LT(static_cast<double>(stats->tuples_per_evaluator[0]),
            0.75 * static_cast<double>(stats->tuples_per_evaluator[1]));
  EXPECT_GE(stats->rounds_applied, 1u);
}

TEST(IntegrationTest, DeterministicForEqualSeeds) {
  auto run = [] {
    TestGrid grid(2, true, 200, 300, 42);
    QueryOptions options;
    options.adaptivity.enabled = true;
    auto result = grid.Run(QuerySql(QueryKind::kQ1), options);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->response_time_ms : -1.0;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(IntegrationTest, StatsSnapshotPopulated) {
  TestGrid grid(2, true, 300, 400, 3);
  QueryOptions options;
  options.adaptivity.enabled = true;
  auto result = grid.Run(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto stats = grid.setup->gdqs()->CollectStats(grid.last_query_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->raw_m1, 0u);
  EXPECT_GT(stats->raw_m2, 0u);
  uint64_t total = 0;
  for (const uint64_t n : stats->tuples_per_evaluator) total += n;
  EXPECT_EQ(total, 300u);
}

TEST(IntegrationTest, MonitoringDisabledProducesNoRawEvents) {
  TestGrid grid(2, true, 200, 300, 3);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.exec.monitoring_enabled = false;
  auto result = grid.Run(QuerySql(QueryKind::kQ1), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto stats = grid.setup->gdqs()->CollectStats(grid.last_query_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->raw_m1, 0u);
}

}  // namespace
}  // namespace gqp
