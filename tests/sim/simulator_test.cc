#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30.0);
}

TEST(SimulatorTest, TiesBreakBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  double inner_time = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(5, [&] { inner_time = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(inner_time, 15.0);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  double t = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(-5, [&] { t = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(t, 10.0);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator sim;
  double t = -1;
  sim.Schedule(10, [&] {
    sim.ScheduleAt(3.0, [&] { t = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(t, 10.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(5, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, CancelFiredEventReturnsFalse) {
  Simulator sim;
  const EventId id = sim.Schedule(1, [] {});
  sim.RunToCompletion();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] { ++count; });
  sim.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilHorizonLeavesLaterEvents) {
  Simulator sim;
  int count = 0;
  sim.Schedule(5, [&] { ++count; });
  sim.Schedule(15, [&] { ++count; });
  ASSERT_TRUE(sim.Run(10).ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), 10.0);
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, RunawayGuardReturnsResourceExhausted) {
  Simulator sim;
  sim.set_max_events(100);
  std::function<void()> loop = [&] { sim.Schedule(1, loop); };
  sim.Schedule(1, loop);
  const Status s = sim.Run();
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST(SimulatorTest, ResetClearsState) {
  Simulator sim;
  sim.Schedule(5, [] {});
  sim.RunToCompletion();
  sim.Schedule(100, [] {});
  sim.Reset();
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.Schedule(1, [] {});
  const EventId id = sim.Schedule(2, [] {});
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

// ---- Pooled event kernel -----------------------------------------------

// Pins the pending_events() contract: a second Cancel of the same event
// (or a Cancel with an unknown handle) returns false and must not
// decrement the counter again.
TEST(SimulatorTest, PendingEventsExactUnderRecancelAndUnknownCancel) {
  Simulator sim;
  sim.Schedule(1, [] {});
  const EventId id = sim.Schedule(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.Cancel(id));  // re-cancel
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.Cancel(0xdeadbeefULL << 32 | 7));  // never issued
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_EQ(sim.pending_events(), 1u);
}

// A cancelled event's slot is recycled with a bumped generation: the new
// event fires, and the old handle no longer cancels anything.
TEST(SimulatorTest, StaleHandleAfterSlotReuseDoesNotCancelNewEvent) {
  Simulator sim;
  bool first_ran = false;
  bool second_ran = false;
  const EventId first = sim.Schedule(5, [&] { first_ran = true; });
  EXPECT_TRUE(sim.Cancel(first));
  const EventId second = sim.Schedule(5, [&] { second_ran = true; });
  EXPECT_NE(first, second);       // generation differs even on slot reuse
  EXPECT_FALSE(sim.Cancel(first));  // stale handle
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunToCompletion();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
}

// Heavy schedule/cancel churn recycles slots without leaking pending
// counts or executing cancelled callbacks.
TEST(SimulatorTest, ScheduleCancelChurnRecyclesSlots) {
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = sim.Schedule(1, [&] { ++ran; });
    EXPECT_TRUE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.RunToCompletion();
  EXPECT_EQ(ran, 0);
  // The pool must still work normally afterwards.
  sim.Schedule(1, [&] { ++ran; });
  sim.RunToCompletion();
  EXPECT_EQ(ran, 1);
}

// Cancelling one of several same-timestamp events keeps the remaining
// ones in scheduling order (the tie-break the fingerprint relies on).
TEST(SimulatorTest, TieBreakOrderSurvivesCancellation) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(sim.Schedule(5.0, [&order, i] { order.push_back(i); }));
  }
  EXPECT_TRUE(sim.Cancel(ids[2]));
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4}));
}

// An event cancelling itself mid-callback is a no-op: the slot was
// disarmed before the callback ran.
TEST(SimulatorTest, SelfCancelInsideCallbackIsNoop) {
  Simulator sim;
  EventId self = kInvalidEventId;
  bool ran = false;
  self = sim.Schedule(1, [&] {
    ran = true;
    EXPECT_FALSE(sim.Cancel(self));
  });
  sim.RunToCompletion();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// An earlier event at time T may cancel a later event also at time T.
TEST(SimulatorTest, CallbackCancelsSameTimestampEvent) {
  Simulator sim;
  bool victim_ran = false;
  EventId victim = kInvalidEventId;
  sim.Schedule(5, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  victim = sim.Schedule(5, [&] { victim_ran = true; });
  sim.RunToCompletion();
  EXPECT_FALSE(victim_ran);
}

// Captures above the inline-storage budget take the boxed path and must
// still run (and destruct) correctly.
TEST(SimulatorTest, OversizedCaptureRunsViaBoxedPath) {
  Simulator sim;
  struct Big {
    char pad[96];
  };
  Big big{};
  big.pad[0] = 42;
  int seen = 0;
  sim.Schedule(1, [big, &seen] { seen = big.pad[0]; });
  sim.RunToCompletion();
  EXPECT_EQ(seen, 42);
}

// The trace sink receives scheduling *sequence numbers* (monotonic from
// 1), not pool handles — this keeps the fingerprint stream identical to
// the pre-pool kernel. Cancelled events consume a sequence number but
// never reach the sink.
TEST(SimulatorTest, TraceSinkReceivesSchedulingSequenceNumbers) {
  Simulator sim;
  std::vector<std::pair<SimTime, EventId>> trace;
  sim.set_trace_sink(
      [&](SimTime t, EventId seq) { trace.emplace_back(t, seq); });
  sim.Schedule(10, [] {});                          // seq 1
  const EventId id = sim.Schedule(20, [] {});       // seq 2
  sim.Schedule(30, [] {});                          // seq 3
  sim.Cancel(id);
  sim.Schedule(40, [] {});                          // seq 4
  sim.RunToCompletion();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], (std::pair<SimTime, EventId>{10.0, 1}));
  EXPECT_EQ(trace[1], (std::pair<SimTime, EventId>{30.0, 3}));
  EXPECT_EQ(trace[2], (std::pair<SimTime, EventId>{40.0, 4}));
}

}  // namespace
}  // namespace gqp
