#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30.0);
}

TEST(SimulatorTest, TiesBreakBySchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  double inner_time = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(5, [&] { inner_time = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(inner_time, 15.0);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  double t = -1;
  sim.Schedule(10, [&] {
    sim.Schedule(-5, [&] { t = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(t, 10.0);
}

TEST(SimulatorTest, ScheduleAtPastClampsToNow) {
  Simulator sim;
  double t = -1;
  sim.Schedule(10, [&] {
    sim.ScheduleAt(3.0, [&] { t = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(t, 10.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.Schedule(5, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelUnknownIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, CancelFiredEventReturnsFalse) {
  Simulator sim;
  const EventId id = sim.Schedule(1, [] {});
  sim.RunToCompletion();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.Schedule(1, [&] { ++count; });
  sim.Schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunUntilHorizonLeavesLaterEvents) {
  Simulator sim;
  int count = 0;
  sim.Schedule(5, [&] { ++count; });
  sim.Schedule(15, [&] { ++count; });
  ASSERT_TRUE(sim.Run(10).ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), 10.0);
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, RunawayGuardReturnsResourceExhausted) {
  Simulator sim;
  sim.set_max_events(100);
  std::function<void()> loop = [&] { sim.Schedule(1, loop); };
  sim.Schedule(1, loop);
  const Status s = sim.Run();
  EXPECT_TRUE(s.IsResourceExhausted());
}

TEST(SimulatorTest, ResetClearsState) {
  Simulator sim;
  sim.Schedule(5, [] {});
  sim.RunToCompletion();
  sim.Schedule(100, [] {});
  sim.Reset();
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, EventsExecutedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorTest, PendingEventsExcludesCancelled) {
  Simulator sim;
  sim.Schedule(1, [] {});
  const EventId id = sim.Schedule(2, [] {});
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
}

}  // namespace
}  // namespace gqp
