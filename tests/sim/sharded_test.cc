// Unit tests of the sharded event kernel (DESIGN.md §D15): cross-shard
// channel ordering, conservative window advancement, stop-the-world
// globals, the aggregate event budget, deterministic trace merging, and
// the setup-level rejection of configurations that leave no lookahead.

#include "sim/sharded.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/trace.h"
#include "common/concurrency.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

TEST(ShardedSimulatorTest, SingleShardRunsInline) {
  ShardedSimulator sim(1, 1.0);
  std::vector<int> order;
  sim.shard(0)->ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.shard(0)->ScheduleAt(1.0, [&] { order.push_back(1); });
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.events_executed(), 2u);
  // Single-shard mode never starts workers, so the hot-path flag stays off.
  EXPECT_FALSE(ShardedRunActive());
}

TEST(ShardedSimulatorTest, CrossShardSendsArriveInTimestampOrder) {
  // A ping-pong chain across two shards: each hop schedules the next at
  // now + lookahead. The receive order must follow timestamps exactly.
  ShardedSimulator sim(2, 1.0);
  std::vector<double> arrivals;
  std::function<void(int, int)> hop = [&](int dst, int remaining) {
    arrivals.push_back(sim.shard(dst)->Now());
    if (remaining == 0) return;
    const double when = sim.shard(dst)->Now() + 1.0;
    sim.ScheduleCrossAt(1 - dst, when,
                        [&hop, dst, remaining] { hop(1 - dst, remaining - 1); });
  };
  sim.shard(0)->ScheduleAt(0.5, [&hop] { hop(0, 10); });
  ASSERT_TRUE(sim.Run().ok());
  ASSERT_EQ(arrivals.size(), 11u);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i], arrivals[i - 1] + 1.0) << "hop " << i;
  }
  EXPECT_GE(sim.events_executed(), 11u);
}

TEST(ShardedSimulatorTest, WindowAdvancementRespectsLookahead) {
  // Shard 1 has nothing to do until shard 0's send arrives; the driver
  // must keep opening windows bounded by T_min + lookahead and the run
  // must terminate with both clocks at the final event time.
  ShardedSimulator sim(4, 0.5);
  std::atomic<int> fired{0};
  for (int s = 0; s < 4; ++s) {
    sim.shard(s)->ScheduleAt(0.25 * s, [&sim, &fired, s] {
      // Fan out to every other shard at exactly the lookahead bound (the
      // tightest legal cross-shard send).
      for (int dst = 0; dst < 4; ++dst) {
        if (dst == s) continue;
        sim.ScheduleCrossAt(dst, sim.shard(s)->Now() + 0.5,
                            [&fired] { fired.fetch_add(1); });
      }
    });
  }
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(fired.load(), 12);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.25 * 3 + 0.5);
}

TEST(ShardedSimulatorTest, SameTimeCrossSendsDrainInSourceShardOrder) {
  // Two shards send to shard 0 with the SAME arrival timestamp. The drain
  // order must be (source shard id, push order) — deterministic, never
  // thread-arrival order. ScheduleAt ids on the destination then break the
  // tie in drain order, so execution order equals drain order.
  for (int round = 0; round < 5; ++round) {
    ShardedSimulator sim(3, 1.0);
    std::vector<int> order;
    for (int s = 1; s <= 2; ++s) {
      sim.shard(s)->ScheduleAt(0.0, [&sim, &order, s] {
        sim.ScheduleCrossAt(0, 2.0, [&order, s] { order.push_back(s * 10); });
        sim.ScheduleCrossAt(0, 2.0, [&order, s] { order.push_back(s * 10 + 1); });
      });
    }
    ASSERT_TRUE(sim.Run().ok());
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21})) << "round " << round;
  }
}

TEST(ShardedSimulatorTest, GlobalEventsRunAtBarriersInScheduleOrder) {
  ShardedSimulator sim(2, 1.0);
  std::vector<std::string> log;
  // Shard events on both sides of the global's time.
  sim.shard(0)->ScheduleAt(1.0, [&] { log.push_back("s0@1"); });
  sim.shard(1)->ScheduleAt(3.0, [&] { log.push_back("s1@3"); });
  // Two ties at t=2: must run in scheduling order, after every shard
  // event before t=2 and before any after it.
  sim.ScheduleGlobalAt(2.0, [&] {
    log.push_back("g1@2");
    EXPECT_DOUBLE_EQ(sim.shard(0)->Now(), 2.0);
    EXPECT_DOUBLE_EQ(sim.shard(1)->Now(), 2.0);
  });
  sim.ScheduleGlobalAt(2.0, [&] { log.push_back("g2@2"); });
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(log, (std::vector<std::string>{"s0@1", "g1@2", "g2@2", "s1@3"}));
}

TEST(ShardedSimulatorTest, GlobalEventCanScheduleOnAnyShard) {
  ShardedSimulator sim(2, 1.0);
  // Both targets land in the same conservative window, so they execute
  // concurrently on their own shards: record per-shard, not into one
  // ordered log (cross-shard intra-window order is deliberately
  // unspecified — the conservative contract makes it unobservable).
  double fired_at[2] = {-1.0, -1.0};
  sim.ScheduleGlobalAt(1.0, [&] {
    // Runs on the driver: direct scheduling on both shards is legal and
    // needs no lookahead slack.
    sim.ScheduleCrossAt(0, 1.5, [&] { fired_at[0] = sim.shard(0)->Now(); });
    sim.ScheduleCrossAt(1, 1.25, [&] { fired_at[1] = sim.shard(1)->Now(); });
  });
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_DOUBLE_EQ(fired_at[0], 1.5);
  EXPECT_DOUBLE_EQ(fired_at[1], 1.25);
}

TEST(ShardedSimulatorTest, AggregateBudgetReturnsResourceExhausted) {
  ShardedSimulator sim(2, 1.0);
  sim.set_max_events(100);
  // A self-perpetuating local loop on each shard: never drains on its own.
  std::function<void(int)> loop = [&](int s) {
    sim.shard(s)->Schedule(0.1, [&loop, s] { loop(s); });
  };
  sim.shard(0)->ScheduleAt(0.0, [&loop] { loop(0); });
  sim.shard(1)->ScheduleAt(0.0, [&loop] { loop(1); });
  const Status status = sim.Run();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  EXPECT_GE(sim.events_executed(), 100u);
}

TEST(ShardedSimulatorTest, RunUntilLeavesLaterEventsQueued) {
  ShardedSimulator sim(2, 1.0);
  int fired = 0;
  sim.shard(0)->ScheduleAt(1.0, [&] { ++fired; });
  sim.shard(1)->ScheduleAt(5.0, [&] { ++fired; });
  ASSERT_TRUE(sim.Run(3.0).ok());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  ASSERT_TRUE(sim.Run().ok());
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(ShardedSimulatorTest, EventAtExactUntilTimeStillRuns) {
  // Simulator::Run(until) is inclusive of events at exactly `until`; the
  // sharded driver must match.
  ShardedSimulator sim(2, 1.0);
  int fired = 0;
  sim.shard(1)->ScheduleAt(3.0, [&] { ++fired; });
  ASSERT_TRUE(sim.Run(3.0).ok());
  EXPECT_EQ(fired, 1);
}

TEST(ShardedTraceRecorderTest, MergeIsDeterministicAcrossRuns) {
  // Same workload, two runs: the merged (time, shard, seq) trace must be
  // byte-identical regardless of thread scheduling.
  const auto run_once = [](std::string* trace, uint64_t* hash,
                           uint64_t* events) {
    ShardedSimulator sim(4, 0.5);
    chaos::ShardedEventTraceRecorder recorder(/*keep_full=*/true);
    recorder.Attach(&sim);
    std::function<void(int, int)> chain = [&](int s, int remaining) {
      if (remaining == 0) return;
      for (int dst = 0; dst < 4; ++dst) {
        if (dst == s) continue;
        sim.ScheduleCrossAt(dst, sim.shard(s)->Now() + 0.5,
                            [&chain, dst, remaining] {
                              chain(dst, remaining - 1);
                            });
      }
    };
    for (int s = 0; s < 4; ++s) {
      sim.shard(s)->ScheduleAt(0.125 * (s + 1), [&chain, s] { chain(s, 3); });
    }
    ASSERT_TRUE(sim.Run().ok());
    chaos::ShardedEventTraceRecorder::Detach(&sim);
    recorder.Finalize();
    *trace = recorder.trace();
    *hash = recorder.hash();
    *events = recorder.events();
  };
  std::string t1, t2;
  uint64_t h1 = 0, h2 = 0, e1 = 0, e2 = 0;
  run_once(&t1, &h1, &e1);
  run_once(&t2, &h2, &e2);
  EXPECT_GT(e1, 0u);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(t1, t2);
}

TEST(ShardedSetupTest, ZeroLatencyLinksAreRejected) {
  GridOptions options;
  options.shards = 2;
  options.link.latency_ms = 0.0;  // no conservative window possible
  GridSetup grid(options);
  const Status status = grid.Initialize();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(ShardedSetupTest, StandbyIsRejected) {
  GridOptions options;
  options.shards = 2;
  options.standby_enabled = true;
  GridSetup grid(options);
  const Status status = grid.Initialize();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(ShardedSetupTest, LookaheadOverrideBeatsLinkLatency) {
  GridOptions options;
  options.shards = 2;
  options.link.latency_ms = 0.0;
  options.lookahead_override_ms = 0.25;
  GridSetup grid(options);
  ASSERT_TRUE(grid.Initialize().ok());
  ASSERT_NE(grid.sharded_simulator(), nullptr);
  EXPECT_DOUBLE_EQ(grid.sharded_simulator()->lookahead_ms(), 0.25);
}

}  // namespace
}  // namespace gqp
