#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace gqp {
namespace {

// ---- Lexer ----------------------------------------------------------------

TEST(LexerTest, TokenizesKeywordsIdentifiersSymbols) {
  auto tokens = Tokenize("select a.b from t;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 8u);  // select a . b from t ; <end>
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_TRUE((*tokens)[2].IsSymbol("."));
  EXPECT_TRUE((*tokens)[4].IsKeyword("FROM"));
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.14 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "3.14");
  EXPECT_EQ((*tokens)[2].type, TokenType::kString);
  EXPECT_EQ((*tokens)[2].text, "it's");
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Tokenize("a <= b <> c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[5].IsSymbol(">="));
  EXPECT_TRUE((*tokens)[7].IsSymbol("!="));
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("select 'oops").status().IsParseError());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_TRUE(Tokenize("select #").status().IsParseError());
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("SeLeCt FrOm WhErE");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

// ---- Parser ----------------------------------------------------------------

TEST(ParserTest, ParsesPaperQ1) {
  auto q = ParseSelect(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].expr->kind(), AstExprKind::kCall);
  ASSERT_EQ(q->tables.size(), 1u);
  EXPECT_EQ(q->tables[0].table, "protein_sequences");
  EXPECT_EQ(q->tables[0].effective_alias(), "p");
  EXPECT_EQ(q->where, nullptr);
}

TEST(ParserTest, ParsesPaperQ2) {
  auto q = ParseSelect(
      "select i.ORF2 from protein_sequences p, protein_interactions i "
      "where i.ORF1 = p.ORF;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->tables.size(), 2u);
  ASSERT_NE(q->where, nullptr);
  EXPECT_EQ(q->where->kind(), AstExprKind::kBinary);
  EXPECT_EQ(q->ToString(),
            "SELECT i.ORF2 FROM protein_sequences p, protein_interactions i "
            "WHERE (i.ORF1 = p.ORF)");
}

TEST(ParserTest, SelectStar) {
  auto q = ParseSelect("select * from t");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].expr->kind(), AstExprKind::kStar);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto q = ParseSelect("select a AS x, b y from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->items[0].alias, "x");
  EXPECT_EQ(q->items[1].alias, "y");
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = ParseSelect("select a + b * c from t where x = 1 or y = 2 and z = 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->items[0].expr->ToString(), "(a + (b * c))");
  // AND binds tighter than OR.
  EXPECT_EQ(q->where->ToString(), "((x = 1) OR ((y = 2) AND (z = 3)))");
}

TEST(ParserTest, NotAndParentheses) {
  auto q = ParseSelect("select a from t where not (a = 1 or b = 2)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "NOT ((a = 1) OR (b = 2))");
}

TEST(ParserTest, UnaryMinus) {
  auto q = ParseSelect("select -a from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->items[0].expr->ToString(), "(0 - a)");
}

TEST(ParserTest, FunctionWithMultipleArgs) {
  auto q = ParseSelect("select f(a, 1, 'x') from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->items[0].expr->ToString(), "f(a, 1, x)");
}

TEST(ParserTest, NullLiteral) {
  auto q = ParseSelect("select a from t where b = NULL");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->ToString(), "(b = NULL)");
}

TEST(ParserTest, NumberLiterals) {
  auto q = ParseSelect("select 1, 2.5 from t");
  ASSERT_TRUE(q.ok());
  const auto* lit0 = static_cast<const AstLiteral*>(q->items[0].expr.get());
  EXPECT_EQ(lit0->value().type(), DataType::kInt64);
  const auto* lit1 = static_cast<const AstLiteral*>(q->items[1].expr.get());
  EXPECT_EQ(lit1->value().type(), DataType::kDouble);
}

TEST(ParserTest, ErrorMissingFrom) {
  EXPECT_TRUE(ParseSelect("select a").status().IsParseError());
}

TEST(ParserTest, ErrorMissingSelect) {
  EXPECT_TRUE(ParseSelect("from t").status().IsParseError());
}

TEST(ParserTest, ErrorTrailingInput) {
  EXPECT_TRUE(ParseSelect("select a from t garbage garbage")
                  .status()
                  .IsParseError() ||
              ParseSelect("select a from t garbage garbage").ok() == false);
}

TEST(ParserTest, ErrorUnbalancedParens) {
  EXPECT_FALSE(ParseSelect("select (a from t").ok());
  EXPECT_FALSE(ParseSelect("select f(a from t").ok());
}

TEST(ParserTest, ErrorMissingTableName) {
  EXPECT_FALSE(ParseSelect("select a from ").ok());
  EXPECT_FALSE(ParseSelect("select a from 42").ok());
}

TEST(ParserTest, ErrorDanglingComparison) {
  EXPECT_FALSE(ParseSelect("select a from t where a =").ok());
}

TEST(ParserTest, StarMixedWithItemsParsesButIsRejectedLater) {
  // The grammar only allows '*' alone; mixing is a parse error here.
  EXPECT_FALSE(ParseSelect("select *, a from t").ok());
}

TEST(ParserTest, MultipleTablesParsed) {
  auto q = ParseSelect("select a from t1 x, t2 y, t3 z");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->tables.size(), 3u);
  EXPECT_EQ(q->tables[2].alias, "z");
}

}  // namespace
}  // namespace gqp
