#include "ft/recovery_log.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

Tuple MakeTuple(int64_t v) {
  static SchemaPtr schema = MakeSchema({{"x", DataType::kInt64}});
  return Tuple(schema, {Value(v)});
}

TEST(RecoveryLogTest, AppendAndSize) {
  RecoveryLog log;
  EXPECT_TRUE(log.empty());
  log.Append({1, 0, 0, MakeTuple(1)});
  log.Append({2, 1, 1, MakeTuple(2)});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.Contains(1));
  EXPECT_FALSE(log.Contains(3));
}

TEST(RecoveryLogTest, AckRemoves) {
  RecoveryLog log;
  log.Append({1, 0, 0, MakeTuple(1)});
  log.Ack(1);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.stats().acked, 1u);
}

TEST(RecoveryLogTest, AckUnknownIsNoop) {
  RecoveryLog log;
  log.Append({1, 0, 0, MakeTuple(1)});
  log.Ack(99);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.stats().acked, 0u);
}

TEST(RecoveryLogTest, AckBatch) {
  RecoveryLog log;
  for (uint64_t s = 1; s <= 5; ++s) log.Append({s, 0, 0, MakeTuple(1)});
  log.AckBatch({1, 3, 5});
  EXPECT_EQ(log.size(), 2u);
  EXPECT_TRUE(log.Contains(2));
  EXPECT_TRUE(log.Contains(4));
}

TEST(RecoveryLogTest, ExtractByPredicateRemovesAndReturnsInSeqOrder) {
  RecoveryLog log;
  log.Append({3, 7, 0, MakeTuple(3)});
  log.Append({1, 7, 0, MakeTuple(1)});
  log.Append({2, 9, 0, MakeTuple(2)});
  auto extracted =
      log.Extract([](const LogRecord& r) { return r.bucket == 7; });
  ASSERT_EQ(extracted.size(), 2u);
  EXPECT_EQ(extracted[0].seq, 1u);
  EXPECT_EQ(extracted[1].seq, 3u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.Contains(2));
}

TEST(RecoveryLogTest, ExtractAll) {
  RecoveryLog log;
  for (uint64_t s = 1; s <= 4; ++s) log.Append({s, 0, 0, MakeTuple(1)});
  EXPECT_EQ(log.ExtractAll().size(), 4u);
  EXPECT_TRUE(log.empty());
}

TEST(RecoveryLogTest, ReinsertAfterReroute) {
  RecoveryLog log;
  log.Append({5, 2, 0, MakeTuple(5)});
  auto extracted = log.ExtractAll();
  extracted[0].consumer = 1;
  log.Reinsert(extracted[0]);
  EXPECT_TRUE(log.Contains(5));
  EXPECT_EQ(log.size(), 1u);
}

TEST(RecoveryLogTest, HighWatermarkTracksPeak) {
  RecoveryLog log;
  for (uint64_t s = 1; s <= 10; ++s) log.Append({s, 0, 0, MakeTuple(1)});
  log.AckBatch({1, 2, 3, 4, 5});
  log.Append({11, 0, 0, MakeTuple(11)});
  EXPECT_EQ(log.stats().high_watermark, 10u);
  EXPECT_EQ(log.stats().appended, 11u);
}

TEST(RecoveryLogTest, ByteAccountingAcrossAckAndBatch) {
  RecoveryLog log;
  const uint64_t one = MakeTuple(1).WireSize();
  for (uint64_t s = 1; s <= 4; ++s) log.Append({s, 0, 0, MakeTuple(1)});
  EXPECT_EQ(log.stats().bytes_held, 4 * one);
  EXPECT_EQ(log.stats().bytes_peak, 4 * one);

  log.Ack(2);
  EXPECT_EQ(log.stats().bytes_held, 3 * one);
  log.Ack(2);  // duplicate ack: no double reclaim
  EXPECT_EQ(log.stats().bytes_held, 3 * one);

  log.AckBatch({1, 3});
  EXPECT_EQ(log.stats().bytes_held, one);
  log.AckBatch({4});
  EXPECT_EQ(log.stats().bytes_held, 0u);
  EXPECT_EQ(log.stats().bytes_peak, 4 * one);  // peak never decays
}

TEST(RecoveryLogTest, ByteAccountingReclaimsOnExtractAndRechargesOnReinsert) {
  RecoveryLog log;
  const uint64_t one = MakeTuple(1).WireSize();
  log.Append({1, 2, 0, MakeTuple(1)});
  log.Append({2, 5, 0, MakeTuple(2)});

  auto extracted = log.Extract([](const LogRecord& r) { return r.bucket == 2; });
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(log.stats().bytes_held, one);

  // Re-routing re-charges exactly what extraction reclaimed.
  extracted[0].consumer = 1;
  log.Reinsert(extracted[0]);
  EXPECT_EQ(log.stats().bytes_held, 2 * one);

  log.ExtractAll();
  EXPECT_EQ(log.stats().bytes_held, 0u);
  EXPECT_EQ(log.stats().bytes_peak, 2 * one);
}

TEST(AckBatcherTest, SignalsAtInterval) {
  AckBatcher batcher(3);
  EXPECT_FALSE(batcher.Add(1));
  EXPECT_FALSE(batcher.Add(2));
  EXPECT_TRUE(batcher.Add(3));
  EXPECT_EQ(batcher.Drain(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(AckBatcherTest, RemoveDiscardsPendingSeq) {
  AckBatcher batcher(10);
  batcher.Add(1);
  batcher.Add(2);
  batcher.Remove(1);
  EXPECT_EQ(batcher.Drain(), (std::vector<uint64_t>{2}));
}

TEST(AckBatcherTest, ZeroIntervalTreatedAsOne) {
  AckBatcher batcher(0);
  EXPECT_TRUE(batcher.Add(1));
}

TEST(AckBatcherTest, PendingSeqsVisible) {
  AckBatcher batcher(10);
  batcher.Add(4);
  batcher.Add(7);
  EXPECT_EQ(batcher.pending_seqs(), (std::vector<uint64_t>{4, 7}));
}

}  // namespace
}  // namespace gqp
