#include "plan/binder.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

std::string Q1Sql() {
  return "select EntropyAnalyser(p.sequence) from protein_sequences p";
}

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() {
    TableEntry sequences;
    sequences.name = "protein_sequences";
    sequences.schema = MakeSchema(
        {{"orf", DataType::kString}, {"sequence", DataType::kString}});
    sequences.data_host = 1;
    sequences.stats.num_rows = 3000;
    EXPECT_TRUE(catalog_.RegisterTable(sequences).ok());

    TableEntry interactions;
    interactions.name = "protein_interactions";
    interactions.schema = MakeSchema(
        {{"orf1", DataType::kString}, {"orf2", DataType::kString}});
    interactions.data_host = 1;
    interactions.stats.num_rows = 4700;
    EXPECT_TRUE(catalog_.RegisterTable(interactions).ok());

    WebServiceEntry ws;
    ws.name = "EntropyAnalyser";
    ws.result_type = DataType::kDouble;
    ws.nominal_cost_ms = 0.25;
    EXPECT_TRUE(catalog_.RegisterWebService(ws).ok());
  }

  Catalog catalog_;
};

TEST_F(BinderTest, BindsSimpleProjection) {
  auto plan = PlanSql("select p.orf from protein_sequences p", catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind(), LogicalKind::kProject);
  ASSERT_EQ((*plan)->schema()->num_fields(), 1u);
  EXPECT_EQ((*plan)->schema()->field(0).name, "orf");
  EXPECT_EQ((*plan)->schema()->field(0).type, DataType::kString);
  EXPECT_EQ((*plan)->children()[0]->kind(), LogicalKind::kScan);
}

TEST_F(BinderTest, Q1LiftsWebServiceCall) {
  auto plan = PlanSql(Q1Sql(), catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Project on top of an OperationCall on top of the scan.
  EXPECT_EQ((*plan)->kind(), LogicalKind::kProject);
  const auto children = (*plan)->children();
  const auto& below = children[0];
  ASSERT_EQ(below->kind(), LogicalKind::kOperationCall);
  const auto* call = static_cast<const LogicalOperationCall*>(below.get());
  EXPECT_EQ(call->ws().name, "EntropyAnalyser");
  EXPECT_EQ(call->arg_column(), 1u);  // p.sequence
  EXPECT_EQ((*plan)->schema()->field(0).type, DataType::kDouble);
}

TEST_F(BinderTest, Q2BuildsHashJoinWithSmallerBuildSide) {
  auto plan = PlanSql(
      "select i.orf2 from protein_sequences p, protein_interactions i "
      "where i.orf1 = p.orf",
      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto children = (*plan)->children();
  const auto& join_node = children[0];
  ASSERT_EQ(join_node->kind(), LogicalKind::kJoin);
  const auto* join = static_cast<const LogicalJoin*>(join_node.get());
  // protein_sequences (3000) is smaller than protein_interactions (4700):
  // it must be the build (left) side.
  EXPECT_EQ(join->left()->kind(), LogicalKind::kScan);
  EXPECT_EQ(static_cast<const LogicalScan*>(join->left().get())->table().name,
            "protein_sequences");
  EXPECT_EQ(join->left_key(), 0u);   // p.orf
  EXPECT_EQ(join->right_key(), 0u);  // i.orf1
}

TEST_F(BinderTest, SingleTableFilterPushedBelowJoin) {
  auto plan = PlanSql(
      "select i.orf2 from protein_sequences p, protein_interactions i "
      "where i.orf1 = p.orf and p.orf = 'ORF00001'",
      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto children = (*plan)->children();
  const auto& join_node = children[0];
  ASSERT_EQ(join_node->kind(), LogicalKind::kJoin);
  const auto* join = static_cast<const LogicalJoin*>(join_node.get());
  // One side must carry the pushed filter.
  const bool left_filtered =
      join->left()->kind() == LogicalKind::kFilter;
  const bool right_filtered =
      join->right()->kind() == LogicalKind::kFilter;
  EXPECT_TRUE(left_filtered || right_filtered);
}

TEST_F(BinderTest, SelectStarExpandsAllColumns) {
  auto plan = PlanSql("select * from protein_sequences", catalog_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->schema()->num_fields(), 2u);
}

TEST_F(BinderTest, AliasResolution) {
  auto plan = PlanSql("select orf from protein_sequences p", catalog_);
  ASSERT_TRUE(plan.ok());  // unqualified but unambiguous
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_TRUE(PlanSql("select x from nope", catalog_).status().IsNotFound());
}

TEST_F(BinderTest, UnknownColumnFails) {
  EXPECT_TRUE(PlanSql("select p.bogus from protein_sequences p", catalog_)
                  .status()
                  .IsNotFound());
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  // orf1/orf2 unique, but a self-join makes everything ambiguous.
  auto r = PlanSql(
      "select orf1 from protein_interactions a, protein_interactions b "
      "where a.orf1 = b.orf2",
      catalog_);
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, CrossJoinRejected) {
  auto r = PlanSql(
      "select p.orf from protein_sequences p, protein_interactions i",
      catalog_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  auto r = PlanSql(
      "select p.orf from protein_sequences p, protein_interactions p "
      "where p.orf = p.orf1",
      catalog_);
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, WsCallOutsideSelectListRejected) {
  auto r = PlanSql(
      "select p.orf from protein_sequences p "
      "where EntropyAnalyser(p.sequence) > 4",
      catalog_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(BinderTest, WsCallWrongArityRejected) {
  auto r = PlanSql("select EntropyAnalyser(p.orf, p.sequence) "
                   "from protein_sequences p",
                   catalog_);
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, BuiltinFunctionStaysInProjection) {
  auto plan = PlanSql("select LENGTH(p.sequence) from protein_sequences p",
                      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // No OperationCall: LENGTH is a local builtin, evaluated in the project.
  EXPECT_EQ((*plan)->children()[0]->kind(), LogicalKind::kScan);
  EXPECT_EQ((*plan)->schema()->field(0).type, DataType::kInt64);
}

TEST_F(BinderTest, ResidualPredicateBecomesFilter) {
  auto plan = PlanSql(
      "select i.orf2 from protein_sequences p, protein_interactions i "
      "where i.orf1 = p.orf and i.orf2 > p.orf",
      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The multi-table non-equi conjunct sits above the join.
  EXPECT_EQ((*plan)->children()[0]->kind(), LogicalKind::kFilter);
}

TEST_F(BinderTest, TreeStringRenders) {
  auto plan = PlanSql(Q1Sql(), catalog_);
  ASSERT_TRUE(plan.ok());
  const std::string tree = (*plan)->TreeString();
  EXPECT_NE(tree.find("Project"), std::string::npos);
  EXPECT_NE(tree.find("OperationCall"), std::string::npos);
  EXPECT_NE(tree.find("Scan"), std::string::npos);
}

}  // namespace
}  // namespace gqp
