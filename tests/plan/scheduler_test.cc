#include "plan/scheduler.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "grid/node.h"
#include "grid/registry.h"
#include "sim/simulator.h"

namespace gqp {
namespace {

// Minimal three-fragment plan: scan leaf -> partitioned evaluation ->
// root collect, connected by two exchanges.
PhysicalPlan MakePlan() {
  PhysicalPlan plan;

  FragmentDesc scan;
  scan.id = 0;
  scan.ops.push_back({});
  scan.ops.back().kind = PhysOpKind::kScan;
  scan.ops.back().table = "t";
  plan.fragments.push_back(scan);

  FragmentDesc eval;
  eval.id = 1;
  eval.ops.push_back({});
  eval.ops.back().kind = PhysOpKind::kProject;
  eval.num_input_ports = 1;
  eval.partitioned = true;
  plan.fragments.push_back(eval);

  FragmentDesc root;
  root.id = 2;
  root.ops.push_back({});
  root.ops.back().kind = PhysOpKind::kCollect;
  root.num_input_ports = 1;
  plan.fragments.push_back(root);

  ExchangeDesc scan_to_eval;
  scan_to_eval.id = 0;
  scan_to_eval.producer_fragment = 0;
  scan_to_eval.consumer_fragment = 1;
  plan.exchanges.push_back(scan_to_eval);

  ExchangeDesc eval_to_root;
  eval_to_root.id = 1;
  eval_to_root.producer_fragment = 1;
  eval_to_root.consumer_fragment = 2;
  plan.exchanges.push_back(eval_to_root);

  return plan;
}

class SchedulePlanTest : public ::testing::Test {
 protected:
  /// Builds a grid with one coordinator, one data node and compute nodes
  /// of the given capacities.
  void BuildGrid(const std::vector<double>& compute_caps) {
    HostId next = 0;
    nodes_.push_back(
        std::make_unique<GridNode>(&sim_, next++, "coord", 1.0));
    ASSERT_TRUE(
        registry_.Register(nodes_.back().get(), NodeRole::kCoordinator).ok());
    nodes_.push_back(std::make_unique<GridNode>(&sim_, next++, "data", 1.0));
    ASSERT_TRUE(
        registry_.Register(nodes_.back().get(), NodeRole::kData).ok());
    for (double cap : compute_caps) {
      nodes_.push_back(std::make_unique<GridNode>(
          &sim_, next, "eval" + std::to_string(next), cap));
      ++next;
      ASSERT_TRUE(
          registry_.Register(nodes_.back().get(), NodeRole::kCompute).ok());
    }
  }

  Simulator sim_;
  std::vector<std::unique_ptr<GridNode>> nodes_;
  ResourceRegistry registry_;
};

TEST_F(SchedulePlanTest, HeterogeneousCapacitiesYieldProportionalWeights) {
  BuildGrid({2.0, 1.0, 1.0});
  auto result = SchedulePlan(MakePlan(), registry_, SchedulerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ScheduledPlan& scheduled = result.value();

  // The partitioned fragment is cloned over all three evaluators; the
  // exchange feeding it splits the workload 2:1:1.
  ASSERT_EQ(scheduled.NumInstances(1), 3);
  const std::vector<double>& w = scheduled.initial_weights[0];
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
  EXPECT_DOUBLE_EQ(w[2], 0.25);

  // The root is a single instance; its input exchange routes everything
  // to it.
  ASSERT_EQ(scheduled.NumInstances(2), 1);
  ASSERT_EQ(scheduled.initial_weights[1].size(), 1u);
  EXPECT_DOUBLE_EQ(scheduled.initial_weights[1][0], 1.0);
}

TEST_F(SchedulePlanTest, HomogeneousCapacitiesSplitEvenly) {
  BuildGrid({1.5, 1.5});
  auto result = SchedulePlan(MakePlan(), registry_, SchedulerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<double>& w = result.value().initial_weights[0];
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST_F(SchedulePlanTest, NumEvaluatorsLimitsCloning) {
  BuildGrid({1.0, 3.0, 1.0, 1.0});
  SchedulerOptions options;
  options.num_evaluators = 2;
  auto result = SchedulePlan(MakePlan(), registry_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ScheduledPlan& scheduled = result.value();

  // Only the first two registered compute nodes are used, and the weights
  // renormalize over them (1:3).
  ASSERT_EQ(scheduled.NumInstances(1), 2);
  const std::vector<double>& w = scheduled.initial_weights[0];
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
}

TEST_F(SchedulePlanTest, PlacesRootOnCoordinatorAndScanOnDataNode) {
  BuildGrid({1.0, 1.0});
  auto result = SchedulePlan(MakePlan(), registry_, SchedulerOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ScheduledPlan& scheduled = result.value();
  EXPECT_EQ(scheduled.instance_hosts[2],
            std::vector<HostId>{nodes_[0]->id()});  // root -> coordinator
  EXPECT_EQ(scheduled.instance_hosts[0],
            std::vector<HostId>{nodes_[1]->id()});  // scan -> data node
}

TEST_F(SchedulePlanTest, FailsWithoutComputeNodes) {
  BuildGrid({});
  auto result = SchedulePlan(MakePlan(), registry_, SchedulerOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(RecoveryWeightsTest, RenormalizesSurvivorsProportionally) {
  const std::vector<double> recovered =
      RecoveryWeights({0.5, 0.25, 0.25}, {0});
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_DOUBLE_EQ(recovered[0], 0.0);
  EXPECT_DOUBLE_EQ(recovered[1], 0.5);
  EXPECT_DOUBLE_EQ(recovered[2], 0.5);
}

TEST(RecoveryWeightsTest, NoDeadInstancesLeavesWeightsUnchanged) {
  const std::vector<double> recovered = RecoveryWeights({0.6, 0.4}, {});
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_DOUBLE_EQ(recovered[0], 0.6);
  EXPECT_DOUBLE_EQ(recovered[1], 0.4);
}

TEST(RecoveryWeightsTest, SequentialFailuresCompound) {
  // The Responder re-derives W' as crashes accumulate; applying the
  // second death to the first recovery must equal applying both at once.
  std::vector<double> after_first = RecoveryWeights({0.4, 0.4, 0.2}, {0});
  const std::vector<double> sequential = RecoveryWeights(after_first, {1});
  const std::vector<double> at_once = RecoveryWeights({0.4, 0.4, 0.2}, {0, 1});
  ASSERT_EQ(sequential.size(), 3u);
  ASSERT_EQ(at_once.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sequential[i], at_once[i]) << i;
  }
  EXPECT_DOUBLE_EQ(sequential[2], 1.0);
}

TEST(RecoveryWeightsTest, EmptyOnTotalLoss) {
  // Every instance dead: no live weight remains and recovery is
  // impossible; the contract is an empty vector, not NaNs from a 0/0.
  EXPECT_TRUE(RecoveryWeights({0.5, 0.5}, {0, 1}).empty());
  EXPECT_TRUE(RecoveryWeights({1.0}, {0}).empty());
}

}  // namespace
}  // namespace gqp
