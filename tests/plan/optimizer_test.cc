#include "plan/optimizer.h"

#include <gtest/gtest.h>

#include "plan/binder.h"
#include "plan/scheduler.h"

namespace gqp {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    TableEntry sequences;
    sequences.name = "protein_sequences";
    sequences.schema = MakeSchema(
        {{"orf", DataType::kString}, {"sequence", DataType::kString}});
    sequences.data_host = 1;
    sequences.stats.num_rows = 3000;
    EXPECT_TRUE(catalog_.RegisterTable(sequences).ok());

    TableEntry interactions;
    interactions.name = "protein_interactions";
    interactions.schema = MakeSchema(
        {{"orf1", DataType::kString}, {"orf2", DataType::kString}});
    interactions.data_host = 1;
    interactions.stats.num_rows = 4700;
    EXPECT_TRUE(catalog_.RegisterTable(interactions).ok());

    WebServiceEntry ws;
    ws.name = "EntropyAnalyser";
    ws.nominal_cost_ms = 0.25;
    EXPECT_TRUE(catalog_.RegisterWebService(ws).ok());
  }

  PhysicalPlan Plan(const std::string& sql) {
    auto logical = PlanSql(sql, catalog_);
    EXPECT_TRUE(logical.ok()) << logical.status().ToString();
    auto physical = CreatePhysicalPlan(*logical, options_);
    EXPECT_TRUE(physical.ok()) << physical.status().ToString();
    return physical.TakeValue();
  }

  Catalog catalog_;
  OptimizerOptions options_;
};

TEST_F(OptimizerTest, Q1HasThreeFragments) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  ASSERT_EQ(plan.fragments.size(), 3u);
  EXPECT_TRUE(plan.fragments[0].IsScanLeaf());
  EXPECT_TRUE(plan.fragments[1].partitioned);
  EXPECT_TRUE(plan.fragments[2].IsRoot());
  // Middle: OperationCall then Project.
  ASSERT_EQ(plan.fragments[1].ops.size(), 2u);
  EXPECT_EQ(plan.fragments[1].ops[0].kind, PhysOpKind::kOperationCall);
  EXPECT_EQ(plan.fragments[1].ops[1].kind, PhysOpKind::kProject);
  EXPECT_FALSE(plan.HasStatefulPartitionedFragment());
}

TEST_F(OptimizerTest, Q1ExchangesUseRoundRobin) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  ASSERT_EQ(plan.exchanges.size(), 2u);
  EXPECT_EQ(plan.exchanges[0].policy, PolicyKind::kWeightedRoundRobin);
  EXPECT_EQ(plan.exchanges[0].producer_fragment, 0);
  EXPECT_EQ(plan.exchanges[0].consumer_fragment, 1);
}

TEST_F(OptimizerTest, Q2HasFourFragmentsAndHashExchanges) {
  PhysicalPlan plan = Plan(
      "select i.orf2 from protein_sequences p, protein_interactions i "
      "where i.orf1 = p.orf");
  ASSERT_EQ(plan.fragments.size(), 4u);  // 2 scans + middle + root
  EXPECT_TRUE(plan.HasStatefulPartitionedFragment());
  // Scan->middle exchanges hash on the join keys.
  const auto inputs = plan.InputsOf(2);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0]->policy, PolicyKind::kHashBuckets);
  EXPECT_EQ(inputs[1]->policy, PolicyKind::kHashBuckets);
  EXPECT_EQ(inputs[0]->consumer_port, 0);
  EXPECT_EQ(inputs[1]->consumer_port, 1);
  // Middle fragment has two input ports, join first.
  EXPECT_EQ(plan.fragments[2].num_input_ports, 2);
  EXPECT_EQ(plan.fragments[2].ops[0].kind, PhysOpKind::kHashJoin);
}

TEST_F(OptimizerTest, ScanFragmentPinnedToDataHost) {
  PhysicalPlan plan = Plan("select p.orf from protein_sequences p");
  EXPECT_EQ(plan.fragments[0].pinned_host, 1);
}

TEST_F(OptimizerTest, CostTagsAssigned) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  EXPECT_EQ(plan.fragments[0].ops[0].cost_tag, "op:scan");
  EXPECT_EQ(plan.fragments[1].ops[0].cost_tag, "ws:EntropyAnalyser");
}

TEST_F(OptimizerTest, WsCostFromCatalog) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  EXPECT_DOUBLE_EQ(plan.fragments[1].ops[0].base_cost_ms, 0.25);
}

TEST_F(OptimizerTest, UnpartitionedWhenDisabled) {
  options_.partition_evaluation = false;
  PhysicalPlan plan = Plan("select p.orf from protein_sequences p");
  for (const FragmentDesc& f : plan.fragments) {
    EXPECT_FALSE(f.partitioned);
  }
}

TEST_F(OptimizerTest, ResultSchemaPropagated) {
  PhysicalPlan plan = Plan("select p.orf from protein_sequences p");
  ASSERT_NE(plan.result_schema, nullptr);
  EXPECT_EQ(plan.result_schema->num_fields(), 1u);
}

TEST_F(OptimizerTest, LookupHelpers) {
  PhysicalPlan plan = Plan("select p.orf from protein_sequences p");
  EXPECT_NE(plan.FindFragment(0), nullptr);
  EXPECT_EQ(plan.FindFragment(99), nullptr);
  EXPECT_NE(plan.OutputOf(0), nullptr);
  EXPECT_EQ(plan.OutputOf(2), nullptr);  // root has no output
  EXPECT_NE(plan.FindExchange(0), nullptr);
}

// ---- Scheduler --------------------------------------------------------------

class SchedulerTest : public OptimizerTest {
 protected:
  SchedulerTest()
      : coordinator_(&sim_, 0, "coord", 1.0),
        data_(&sim_, 1, "data", 1.0),
        eval0_(&sim_, 2, "e0", 1.0),
        eval1_(&sim_, 3, "e1", 3.0) {
    EXPECT_TRUE(registry_.Register(&coordinator_, NodeRole::kCoordinator).ok());
    EXPECT_TRUE(registry_.Register(&data_, NodeRole::kData).ok());
    EXPECT_TRUE(registry_.Register(&eval0_, NodeRole::kCompute).ok());
    EXPECT_TRUE(registry_.Register(&eval1_, NodeRole::kCompute).ok());
  }

  Simulator sim_;
  GridNode coordinator_, data_, eval0_, eval1_;
  ResourceRegistry registry_;
};

TEST_F(SchedulerTest, PlacesFragmentsByRole) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  auto scheduled = SchedulePlan(plan, registry_, {});
  ASSERT_TRUE(scheduled.ok()) << scheduled.status().ToString();
  EXPECT_EQ(scheduled->instance_hosts[0], (std::vector<HostId>{1}));
  EXPECT_EQ(scheduled->instance_hosts[1], (std::vector<HostId>{2, 3}));
  EXPECT_EQ(scheduled->instance_hosts[2], (std::vector<HostId>{0}));
}

TEST_F(SchedulerTest, InitialWeightsProportionalToCapacity) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  auto scheduled = SchedulePlan(plan, registry_, {});
  ASSERT_TRUE(scheduled.ok());
  const auto& w = scheduled->initial_weights[0];
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 0.25);  // capacity 1 vs 3
  EXPECT_DOUBLE_EQ(w[1], 0.75);
}

TEST_F(SchedulerTest, NumEvaluatorsLimitsClones) {
  PhysicalPlan plan = Plan(
      "select EntropyAnalyser(p.sequence) from protein_sequences p");
  SchedulerOptions opts;
  opts.num_evaluators = 1;
  auto scheduled = SchedulePlan(plan, registry_, opts);
  ASSERT_TRUE(scheduled.ok());
  EXPECT_EQ(scheduled->instance_hosts[1].size(), 1u);
}

TEST_F(SchedulerTest, MissingCoordinatorFails) {
  ResourceRegistry empty;
  Simulator sim;
  GridNode only(&sim, 9, "x", 1.0);
  ASSERT_TRUE(empty.Register(&only, NodeRole::kCompute).ok());
  PhysicalPlan plan = Plan("select p.orf from protein_sequences p");
  EXPECT_TRUE(
      SchedulePlan(plan, empty, {}).status().IsFailedPrecondition());
}

TEST_F(SchedulerTest, MissingComputeNodesFails) {
  ResourceRegistry only_coord;
  Simulator sim;
  GridNode c(&sim, 9, "c", 1.0);
  ASSERT_TRUE(only_coord.Register(&c, NodeRole::kCoordinator).ok());
  PhysicalPlan plan = Plan("select p.orf from protein_sequences p");
  EXPECT_TRUE(
      SchedulePlan(plan, only_coord, {}).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace gqp
