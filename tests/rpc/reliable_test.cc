#include "rpc/reliable.h"

#include <gtest/gtest.h>

#include <vector>

#include "rpc/message_bus.h"
#include "rpc/service.h"

namespace gqp {
namespace {

class TagPayload : public Payload {
 public:
  explicit TagPayload(int tag) : tag_(tag) {}
  size_t WireSize() const override { return 8; }
  std::string_view TypeName() const override { return "Tag"; }
  int tag() const { return tag_; }

 private:
  int tag_;
};

class SinkService : public GridService {
 public:
  using GridService::GridService;

  std::vector<int> tags;
  std::vector<SimTime> arrivals;

 protected:
  void HandleMessage(const Message& msg) override {
    if (const auto* tag = PayloadAs<TagPayload>(msg.payload)) {
      tags.push_back(tag->tag());
      arrivals.push_back(simulator()->Now());
    }
  }
};

class ReliableTest : public ::testing::Test {
 protected:
  ReliableTest() : network_(&sim_, LinkParams{0.1, 100000.0}), bus_(&network_) {
    network_.set_envelope_bytes(0);
    ReliableConfig config;
    config.enabled = true;
    config.base_rto_ms = 4.0;
    config.max_rto_ms = 16.0;
    config.jitter_frac = 0.0;  // exact retransmit times for the tests
    bus_.EnableReliableTransport(config);
  }

  Simulator sim_;
  Network network_;
  MessageBus bus_;
};

TEST_F(ReliableTest, DeliversWithoutLoss) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<TagPayload>(7)).ok());
  sim_.RunToCompletion();
  EXPECT_EQ(b.tags, (std::vector<int>{7}));
  EXPECT_EQ(bus_.reliable()->stats().delivered, 1u);
  EXPECT_EQ(bus_.reliable()->stats().acks_received, 1u);
  EXPECT_EQ(bus_.reliable()->pending(), 0u);
}

TEST_F(ReliableTest, RetransmitsUntilTheLinkHeals) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  network_.SeedLoss(1);
  network_.SetLinkLoss(1, 2, 1.0);  // data direction black-holed
  ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<TagPayload>(1)).ok());
  ASSERT_TRUE(sim_.Run(30.0).ok());
  EXPECT_TRUE(b.tags.empty());
  EXPECT_GT(bus_.reliable()->stats().retransmits, 0u);
  EXPECT_EQ(bus_.reliable()->pending(), 1u);

  network_.SetLinkLoss(1, 2, 0.0);
  sim_.RunToCompletion();
  EXPECT_EQ(b.tags, (std::vector<int>{1}));
  EXPECT_EQ(bus_.reliable()->stats().delivered, 1u);
  EXPECT_EQ(bus_.reliable()->pending(), 0u);
}

TEST_F(ReliableTest, BackoffDoublesUpToTheCap) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  network_.SeedLoss(1);
  network_.SetLinkLoss(1, 2, 1.0);
  ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<TagPayload>(1)).ok());
  // With base_rto=4, cap=16 and zero jitter the (re)send times are
  // t=0, 4, 12, 28, 44, 60, ... — gaps 4, 8, 16, 16, 16.
  const std::vector<std::pair<double, uint64_t>> expected = {
      {1.0, 1},  {5.0, 2},  {13.0, 3}, {29.0, 4}, {45.0, 5}, {61.0, 6},
  };
  for (const auto& [until, sent] : expected) {
    ASSERT_TRUE(sim_.Run(until).ok());
    EXPECT_EQ(network_.stats().messages_sent, sent) << "at t=" << until;
  }
  network_.SetHostDown(2);  // let the retransmit loop abandon and drain
  sim_.RunToCompletion();
  EXPECT_EQ(bus_.reliable()->stats().abandoned, 1u);
}

TEST_F(ReliableTest, DedupsWhenAcksAreLost) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  network_.SeedLoss(1);
  network_.SetLinkLoss(2, 1, 1.0);  // ack direction black-holed
  ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<TagPayload>(3)).ok());
  ASSERT_TRUE(sim_.Run(30.0).ok());
  // The receiver saw the message (and its retransmits) but the endpoint
  // must still have processed it exactly once.
  EXPECT_EQ(b.tags, (std::vector<int>{3}));
  EXPECT_GT(bus_.reliable()->stats().dedup_hits, 0u);
  EXPECT_EQ(bus_.reliable()->stats().delivered, 1u);

  network_.SetLinkLoss(2, 1, 0.0);
  sim_.RunToCompletion();
  EXPECT_EQ(bus_.reliable()->pending(), 0u);
  EXPECT_EQ(b.tags, (std::vector<int>{3}));
}

TEST_F(ReliableTest, PreservesFifoUnderSymmetricLoss) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  network_.SeedLoss(99);
  network_.SetDefaultLoss(0.4);  // both data and acks drop
  std::vector<int> want;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<TagPayload>(i)).ok());
    want.push_back(i);
  }
  sim_.RunToCompletion();
  EXPECT_EQ(b.tags, want);  // in order, no gaps, no duplicates
  EXPECT_EQ(bus_.reliable()->stats().delivered, 20u);
  EXPECT_GT(bus_.reliable()->stats().retransmits, 0u);
  EXPECT_EQ(bus_.reliable()->pending(), 0u);
}

TEST_F(ReliableTest, LocalSendsBypassTheTransport) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 1, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<TagPayload>(5)).ok());
  sim_.RunToCompletion();
  EXPECT_EQ(b.tags, (std::vector<int>{5}));
  EXPECT_EQ(bus_.reliable()->stats().sent, 0u);
}

TEST_F(ReliableTest, BestEffortSendsSkipRetransmission) {
  SinkService a(&bus_, 1, "a");
  SinkService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  network_.SeedLoss(1);
  network_.SetLinkLoss(1, 2, 1.0);
  ASSERT_TRUE(bus_.SendBestEffort(a.address(), b.address(),
                                  std::make_shared<TagPayload>(9))
                  .ok());
  sim_.RunToCompletion();
  EXPECT_TRUE(b.tags.empty());
  EXPECT_EQ(bus_.reliable()->stats().sent, 0u);
  EXPECT_EQ(network_.stats().loss_drops, 1u);
}

}  // namespace
}  // namespace gqp
