#include "rpc/service.h"

#include <gtest/gtest.h>

#include "rpc/message_bus.h"

namespace gqp {
namespace {

class PingPayload : public Payload {
 public:
  explicit PingPayload(int value) : value_(value) {}
  size_t WireSize() const override { return 8; }
  std::string_view TypeName() const override { return "Ping"; }
  int value() const { return value_; }

 private:
  int value_;
};

/// A service recording everything it receives.
class RecordingService : public GridService {
 public:
  using GridService::GridService;

  std::vector<int> pings;
  std::vector<std::pair<std::string, int>> notifications;

 protected:
  void HandleMessage(const Message& msg) override {
    if (const auto* ping = PayloadAs<PingPayload>(msg.payload)) {
      pings.push_back(ping->value());
    }
  }
  void OnNotification(const Address&, const std::string& topic,
                      const PayloadPtr& body) override {
    const auto* ping = PayloadAs<PingPayload>(body);
    notifications.emplace_back(topic, ping != nullptr ? ping->value() : -1);
  }
};

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest()
      : network_(&sim_, LinkParams{0.1, 10000.0}), bus_(&network_) {}

  Simulator sim_;
  Network network_;
  MessageBus bus_;
};

TEST_F(ServiceTest, EndpointRegistrationAndSend) {
  RecordingService a(&bus_, 1, "a");
  RecordingService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.SendTo(b.address(), std::make_shared<PingPayload>(5)).ok());
  sim_.RunToCompletion();
  EXPECT_EQ(b.pings, (std::vector<int>{5}));
}

TEST_F(ServiceTest, DuplicateEndpointRejected) {
  RecordingService a(&bus_, 1, "same");
  RecordingService b(&bus_, 1, "same");
  ASSERT_TRUE(a.Start().ok());
  EXPECT_TRUE(b.Start().IsAlreadyExists());
}

TEST_F(ServiceTest, SameNameDifferentHostsAllowed) {
  RecordingService a(&bus_, 1, "med");
  RecordingService b(&bus_, 2, "med");
  ASSERT_TRUE(a.Start().ok());
  EXPECT_TRUE(b.Start().ok());
}

TEST_F(ServiceTest, StopUnregistersEndpoint) {
  RecordingService a(&bus_, 1, "a");
  RecordingService b(&bus_, 2, "b");
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  b.Stop();
  ASSERT_TRUE(a.SendTo(Address{2, "b"}, std::make_shared<PingPayload>(1)).ok());
  sim_.RunToCompletion();
  EXPECT_TRUE(b.pings.empty());
  EXPECT_EQ(bus_.dropped_messages(), 1u);
}

TEST_F(ServiceTest, SubscribeThenPublishDelivers) {
  RecordingService pub(&bus_, 1, "pub");
  RecordingService sub(&bus_, 2, "sub");
  ASSERT_TRUE(pub.Start().ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.Subscribe(pub.address(), "topic.x").ok());
  sim_.RunToCompletion();  // deliver the subscription
  EXPECT_EQ(pub.SubscriberCount("topic.x"), 1u);

  ASSERT_TRUE(pub.Publish("topic.x", std::make_shared<PingPayload>(9)).ok());
  sim_.RunToCompletion();
  ASSERT_EQ(sub.notifications.size(), 1u);
  EXPECT_EQ(sub.notifications[0].first, "topic.x");
  EXPECT_EQ(sub.notifications[0].second, 9);
}

TEST_F(ServiceTest, PublishWithoutSubscribersIsNoop) {
  RecordingService pub(&bus_, 1, "pub");
  ASSERT_TRUE(pub.Start().ok());
  EXPECT_TRUE(pub.Publish("t", std::make_shared<PingPayload>(1)).ok());
  sim_.RunToCompletion();
}

TEST_F(ServiceTest, TopicsAreIndependent) {
  RecordingService pub(&bus_, 1, "pub");
  RecordingService sub(&bus_, 2, "sub");
  ASSERT_TRUE(pub.Start().ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.Subscribe(pub.address(), "a").ok());
  sim_.RunToCompletion();
  ASSERT_TRUE(pub.Publish("b", std::make_shared<PingPayload>(1)).ok());
  sim_.RunToCompletion();
  EXPECT_TRUE(sub.notifications.empty());
}

TEST_F(ServiceTest, MultipleSubscribersAllNotified) {
  RecordingService pub(&bus_, 1, "pub");
  RecordingService s1(&bus_, 2, "s1");
  RecordingService s2(&bus_, 3, "s2");
  ASSERT_TRUE(pub.Start().ok());
  ASSERT_TRUE(s1.Start().ok());
  ASSERT_TRUE(s2.Start().ok());
  ASSERT_TRUE(s1.Subscribe(pub.address(), "t").ok());
  ASSERT_TRUE(s2.Subscribe(pub.address(), "t").ok());
  sim_.RunToCompletion();
  ASSERT_TRUE(pub.Publish("t", std::make_shared<PingPayload>(3)).ok());
  sim_.RunToCompletion();
  EXPECT_EQ(s1.notifications.size(), 1u);
  EXPECT_EQ(s2.notifications.size(), 1u);
}

TEST_F(ServiceTest, DuplicateSubscriptionDeliversOnce) {
  RecordingService pub(&bus_, 1, "pub");
  RecordingService sub(&bus_, 2, "sub");
  ASSERT_TRUE(pub.Start().ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.Subscribe(pub.address(), "t").ok());
  ASSERT_TRUE(sub.Subscribe(pub.address(), "t").ok());
  sim_.RunToCompletion();
  EXPECT_EQ(pub.SubscriberCount("t"), 1u);
}

TEST_F(ServiceTest, UnsubscribeStopsDelivery) {
  RecordingService pub(&bus_, 1, "pub");
  RecordingService sub(&bus_, 2, "sub");
  ASSERT_TRUE(pub.Start().ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.Subscribe(pub.address(), "t").ok());
  sim_.RunToCompletion();
  ASSERT_TRUE(sub.SendTo(pub.address(), std::make_shared<UnsubscribePayload>(
                                            "t", sub.address()))
                  .ok());
  sim_.RunToCompletion();
  EXPECT_EQ(pub.SubscriberCount("t"), 0u);
  ASSERT_TRUE(pub.Publish("t", std::make_shared<PingPayload>(1)).ok());
  sim_.RunToCompletion();
  EXPECT_TRUE(sub.notifications.empty());
}

TEST_F(ServiceTest, NotificationsTravelTheNetworkAsynchronously) {
  RecordingService pub(&bus_, 1, "pub");
  RecordingService sub(&bus_, 2, "sub");
  ASSERT_TRUE(pub.Start().ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.Subscribe(pub.address(), "t").ok());
  sim_.RunToCompletion();
  ASSERT_TRUE(pub.Publish("t", std::make_shared<PingPayload>(1)).ok());
  // Not delivered synchronously:
  EXPECT_TRUE(sub.notifications.empty());
  sim_.RunToCompletion();
  EXPECT_EQ(sub.notifications.size(), 1u);
}

}  // namespace
}  // namespace gqp
