#!/bin/sh
# Determinism lint: the simulation must be a pure function of its seeds.
# Any wall-clock read or unseeded randomness in src/ breaks replayability
# (chaos_repro --seed=N, the determinism sweeps) — so ban the APIs
# outright. Seeded randomness goes through common/random.h (Rng).
#
# Usage: lint_determinism.sh [SRC_DIR]   (default: <repo>/src)

set -u

src_dir="${1:-$(dirname "$0")/../src}"
if [ ! -d "$src_dir" ]; then
  echo "lint_determinism: source dir not found: $src_dir" >&2
  exit 2
fi

status=0
for pattern in 'system_clock' 'steady_clock' '[^_[:alnum:]]rand\(' \
               'random_device'; do
  hits=$(grep -rnE "$pattern" "$src_dir" \
           --include='*.cc' --include='*.h' --include='*.cpp')
  if [ -n "$hits" ]; then
    echo "lint_determinism: forbidden nondeterminism source '$pattern':"
    echo "$hits"
    status=1
  fi
done

# Coordinator-failover replication (D14): the mirror log is replayed on
# the standby and fingerprinted, and the takeover reconciles queries in
# iteration order — any unordered container in these files could leak a
# hash-order dependence into replicated state. std::map/std::set only.
for f in "$src_dir"/dqp/mirror_log.h "$src_dir"/dqp/mirror_log.cc \
         "$src_dir"/dqp/standby.h "$src_dir"/dqp/standby.cc \
         "$src_dir"/dqp/failover_messages.h; do
  [ -f "$f" ] || continue
  hits=$(grep -nE 'unordered_(map|set)' "$f")
  if [ -n "$hits" ]; then
    echo "lint_determinism: unordered container in replicated-state file $f:"
    echo "$hits"
    status=1
  fi
done

# Sharded kernel (D15): the windowed driver advances on simulated time
# only. A wall-clock sleep/yield (std::this_thread), a wall-clock read, or
# unseeded randomness in the kernel files would make window boundaries —
# and therefore the merged trace — depend on host scheduling.
for f in "$src_dir"/sim/sharded.h "$src_dir"/sim/sharded.cc \
         "$src_dir"/sim/simulator.h "$src_dir"/sim/simulator.cc \
         "$src_dir"/common/concurrency.h "$src_dir"/common/concurrency.cc; do
  [ -f "$f" ] || continue
  hits=$(grep -nE 'std::this_thread|sleep_for|sleep_until|::time\(|gettimeofday|clock_gettime|[^_[:alnum:]]rand\(' "$f")
  if [ -n "$hits" ]; then
    echo "lint_determinism: wall-clock/sleep/rand in shard-kernel file $f:"
    echo "$hits"
    status=1
  fi
done

# Multi-tenant workload + admission control (D16): the arrival schedule
# and every admission decision must replay identically from the config
# seed — the tenant bench compares whole rendered reports byte-for-byte.
# Ban wall-clock reads, unseeded randomness and unordered containers in
# the driver and controller outright.
for f in "$src_dir"/workload/driver.h "$src_dir"/workload/driver.cc \
         "$src_dir"/dqp/admission.h "$src_dir"/dqp/admission.cc; do
  [ -f "$f" ] || continue
  hits=$(grep -nE '::time\(|gettimeofday|clock_gettime|system_clock|steady_clock|[^_[:alnum:]]rand\(|random_device|mt19937|unordered_(map|set)' "$f")
  if [ -n "$hits" ]; then
    echo "lint_determinism: nondeterminism source in workload/admission file $f:"
    echo "$hits"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "lint_determinism: OK (no wall-clock or unseeded randomness in src/)"
fi
exit "$status"
