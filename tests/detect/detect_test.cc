#include "detect/monitor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "detect/heartbeater.h"
#include "grid/node.h"
#include "rpc/message_bus.h"

namespace gqp {
namespace {

/// Coordinator on host 0 watching two evaluator hosts (2 and 3). Two
/// hosts, so the last-survivor guard does not interfere with single-crash
/// tests.
class DetectTest : public ::testing::Test {
 protected:
  DetectTest()
      : network_(&sim_, LinkParams{0.1, 100000.0}),
        bus_(&network_),
        node2_(&sim_, 2, "e0"),
        node3_(&sim_, 3, "e1") {
    DetectConfig config;
    config.enabled = true;
    config.heartbeat_interval_ms = 5.0;
    monitor_ = std::make_unique<HeartbeatMonitor>(&bus_, 0, config);
    hb2_ = std::make_unique<Heartbeater>(&bus_, &node2_, monitor_->address());
    hb3_ = std::make_unique<Heartbeater>(&bus_, &node3_, monitor_->address());
    EXPECT_TRUE(monitor_->Start().ok());
    EXPECT_TRUE(hb2_->Start().ok());
    EXPECT_TRUE(hb3_->Start().ok());
    monitor_->Watch(2, hb2_->address());
    monitor_->Watch(3, hb3_->address());
    monitor_->set_on_confirm([this](HostId h) { confirms_.push_back(h); });
    monitor_->set_on_readmit([this](HostId h) { readmits_.push_back(h); });
  }

  void Crash(GridNode* node) {
    node->Kill();
    network_.SetHostDown(node->id());
  }

  /// Deactivates the detector and drains the simulation.
  void Finish() {
    monitor_->Deactivate();
    sim_.RunToCompletion();
  }

  Simulator sim_;
  Network network_;
  MessageBus bus_;
  GridNode node2_;
  GridNode node3_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
  std::unique_ptr<Heartbeater> hb2_;
  std::unique_ptr<Heartbeater> hb3_;
  std::vector<HostId> confirms_;
  std::vector<HostId> readmits_;
};

TEST_F(DetectTest, HealthyHostsAreNeverSuspected) {
  monitor_->Activate();
  ASSERT_TRUE(sim_.Run(300.0).ok());
  Finish();
  EXPECT_EQ(monitor_->stats().suspicions_raised, 0u);
  EXPECT_EQ(monitor_->stats().failures_confirmed, 0u);
  // Two hosts beating every 5 ms for 300 ms.
  EXPECT_GT(monitor_->stats().heartbeats_received, 100u);
  EXPECT_TRUE(confirms_.empty());
}

TEST_F(DetectTest, CrashIsConfirmedWithinTheLatencyBound) {
  monitor_->Activate();
  ASSERT_TRUE(sim_.Run(100.0).ok());
  Crash(&node2_);
  const double deadline = 100.0 + monitor_->MaxDetectionLatencyMs();
  ASSERT_TRUE(sim_.Run(deadline + 20.0).ok());
  EXPECT_EQ(confirms_, (std::vector<HostId>{2}));
  ASSERT_TRUE(monitor_->LastConfirmMs(2).has_value());
  EXPECT_LE(*monitor_->LastConfirmMs(2), deadline);
  EXPECT_EQ(monitor_->stats().failures_confirmed, 1u);
  Finish();
}

TEST_F(DetectTest, BriefStallRaisesThenClearsSuspicion) {
  monitor_->Activate();
  ASSERT_TRUE(sim_.Run(100.0).ok());
  // Four missed beats: enough silence to suspect (the EWMA timeout clamps
  // at min_suspect_intervals = 3 beats), not enough to confirm (3 more).
  hb2_->Stall(120.0);
  ASSERT_TRUE(sim_.Run(200.0).ok());
  Finish();
  EXPECT_GE(monitor_->stats().suspicions_raised, 1u);
  EXPECT_GE(monitor_->stats().suspicions_cleared, 1u);
  EXPECT_EQ(monitor_->stats().failures_confirmed, 0u);
  EXPECT_TRUE(confirms_.empty());
  EXPECT_GT(hb2_->beats_suppressed(), 0u);
}

TEST_F(DetectTest, LongStallConfirmsThenReadmits) {
  monitor_->Activate();
  ASSERT_TRUE(sim_.Run(100.0).ok());
  // Silent for 100 ms — far beyond the 55 ms worst-case bound — while the
  // node stays alive: the false-suspicion scenario. The detector must
  // confirm, then re-admit once beats resume.
  hb2_->Stall(200.0);
  ASSERT_TRUE(sim_.Run(300.0).ok());
  Finish();
  EXPECT_EQ(confirms_, (std::vector<HostId>{2}));
  EXPECT_EQ(readmits_, (std::vector<HostId>{2}));
  EXPECT_EQ(monitor_->stats().readmissions, 1u);
  EXPECT_FALSE(node2_.dead());
}

TEST_F(DetectTest, LastSurvivorGuardWithholdsTheFinalConfirmation) {
  monitor_->Activate();
  ASSERT_TRUE(sim_.Run(100.0).ok());
  Crash(&node2_);
  Crash(&node3_);
  ASSERT_TRUE(sim_.Run(300.0).ok());
  Finish();
  // Only one of the two may be confirmed: confirming the last unconfirmed
  // host would leave the query with no evaluator to recover onto.
  EXPECT_EQ(monitor_->stats().failures_confirmed, 1u);
  EXPECT_GE(monitor_->stats().confirms_suppressed, 1u);
  EXPECT_EQ(confirms_.size(), 1u);
  EXPECT_TRUE(monitor_->ConfirmSuppressed(2) || monitor_->ConfirmSuppressed(3));
}

TEST_F(DetectTest, StaleEpochHeartbeatsAreFenced) {
  monitor_->Activate();
  ASSERT_TRUE(sim_.Run(50.0).ok());
  // A beat from a previous watch epoch (e.g. delayed in a partition) must
  // not refresh liveness state.
  ASSERT_TRUE(bus_.Send(Address{2, "ghost"}, monitor_->address(),
                        std::make_shared<HeartbeatPayload>(2, 1, 0))
                  .ok());
  ASSERT_TRUE(sim_.Run(60.0).ok());
  Finish();
  EXPECT_GE(monitor_->stats().stale_heartbeats, 1u);
}

}  // namespace
}  // namespace gqp
