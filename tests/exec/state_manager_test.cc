// StateManager unit tests, driven through recording hooks: checkpoint-
// batched acknowledgments, the cascading-ack protocol (inputs release only
// when all derived outputs are durable downstream), retained-input
// lifetime across state moves (AckAllRetained / PruneRetained), the
// StateMoveReply contents, and the state-move round lifecycle.

#include "exec/state_manager.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace gqp {
namespace {

struct SentMessage {
  Address to;
  PayloadPtr payload;
};

/// A StateManager on a one-node simulator with one registered producer.
/// Ack sends go through GridNode::SubmitWork, so tests run the simulator
/// before asserting on `sent`.
struct Harness {
  explicit Harness(int checkpoint_interval = 3) {
    config.checkpoint_interval = checkpoint_interval;
    StateManager::Hooks hooks;
    hooks.send_to = [this](const Address& to, PayloadPtr payload) {
      sent.push_back({to, std::move(payload)});
      return Status::OK();
    };
    hooks.fail = [this](const Status& s) { failures.push_back(s); };
    state = std::make_unique<StateManager>(&node, &config, SubplanId{1, 2, 0},
                                           &stats, std::move(hooks));
    state->AddPort();
    state->RegisterProducer(0, "p", Address{1, "p"}, 7);
  }

  std::vector<const AckPayload*> Acks() {
    std::vector<const AckPayload*> out;
    for (const SentMessage& m : sent) {
      if (const auto* a = dynamic_cast<const AckPayload*>(m.payload.get())) {
        out.push_back(a);
      }
    }
    return out;
  }

  /// Processes `seq` with no derived outputs: eligible to ack at once.
  void Process(uint64_t seq, bool finished = false) {
    state->RecordProcessed(0, "p", seq, /*bucket=*/0, /*retained=*/false,
                           /*output_seqs=*/{}, /*has_producer=*/true,
                           finished);
  }

  Simulator sim;
  GridNode node{&sim, 0, "consumer"};
  ExecConfig config;
  FragmentStats stats;
  std::unique_ptr<StateManager> state;
  std::vector<SentMessage> sent;
  std::vector<Status> failures;
};

TEST(StateManagerTest, AcksBatchUntilCheckpointInterval) {
  Harness h(/*checkpoint_interval=*/3);
  h.Process(0);
  h.Process(1);
  h.sim.Run();
  EXPECT_TRUE(h.Acks().empty()) << "ack sent below the checkpoint interval";
  EXPECT_EQ(h.state->AcksPendingTotal(0), 2u);

  h.Process(2);
  h.sim.Run();
  auto acks = h.Acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->seqs(), (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(acks[0]->exchange_id(), 7);
  EXPECT_EQ(h.state->AcksPendingTotal(0), 0u);
  EXPECT_EQ(h.stats.acks_sent, 1u);
  EXPECT_TRUE(h.failures.empty());
}

TEST(StateManagerTest, FinishedFragmentStopsBatching) {
  Harness h(/*checkpoint_interval=*/25);
  h.Process(0, /*finished=*/true);
  h.sim.Run();
  auto acks = h.Acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->seqs(), (std::vector<uint64_t>{0}));
}

TEST(StateManagerTest, InputAcksOnlyAfterAllOutputsAcked) {
  Harness h(/*checkpoint_interval=*/1);
  h.state->RecordProcessed(0, "p", /*seq=*/5, /*bucket=*/0,
                           /*retained=*/false, /*output_seqs=*/{100, 101},
                           /*has_producer=*/true, /*finished=*/false);
  h.sim.Run();
  EXPECT_TRUE(h.Acks().empty()) << "input acked before its outputs";

  h.state->OnOutputsAcked({100}, /*finished=*/false);
  h.sim.Run();
  EXPECT_TRUE(h.Acks().empty()) << "input acked with one output pending";

  h.state->OnOutputsAcked({101}, /*finished=*/false);
  h.sim.Run();
  auto acks = h.Acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->seqs(), (std::vector<uint64_t>{5}));

  // Unknown output seqs (other inputs' cascade already resolved) are
  // ignored, not double-acked.
  h.state->OnOutputsAcked({100, 101, 999}, /*finished=*/false);
  h.sim.Run();
  EXPECT_EQ(h.Acks().size(), 1u);
}

TEST(StateManagerTest, RetainedInputsHoldTheirAckUntilReleased) {
  Harness h(/*checkpoint_interval=*/1);
  h.state->RecordProcessed(0, "p", /*seq=*/3, /*bucket=*/2, /*retained=*/true,
                           /*output_seqs=*/{}, /*has_producer=*/true,
                           /*finished=*/false);
  h.sim.Run();
  // The retained tuple is the recovery copy of the state: no ack yet,
  // but it counts as pending work.
  EXPECT_TRUE(h.Acks().empty());
  EXPECT_EQ(h.state->AcksPendingTotal(0), 1u);

  h.state->AckAllRetained();
  h.sim.Run();
  auto acks = h.Acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->seqs(), (std::vector<uint64_t>{3}));
  EXPECT_EQ(h.state->AcksPendingTotal(0), 0u);
}

TEST(StateManagerTest, PruneRetainedForgetsMovedBuckets) {
  Harness h(/*checkpoint_interval=*/1);
  h.state->RecordProcessed(0, "p", /*seq=*/1, /*bucket=*/0, /*retained=*/true,
                           {}, true, false);
  h.state->RecordProcessed(0, "p", /*seq=*/2, /*bucket=*/4, /*retained=*/true,
                           {}, true, false);

  // Bucket 4 moved away: its retained tuple is the new owner's problem.
  // Acking it here would prune the producer's only copy.
  h.state->PruneRetained(0, "p", /*buckets_lost=*/{4});
  h.state->AckAllRetained();
  h.sim.Run();
  auto acks = h.Acks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->seqs(), (std::vector<uint64_t>{1}));
}

TEST(StateManagerTest, BuildReplySortsAndFiltersLostBuckets) {
  Harness h;
  h.Process(9);
  h.Process(3);
  h.Process(7);
  h.state->RecordProcessed(0, "p", /*seq=*/20, /*bucket=*/1, /*retained=*/true,
                           {}, true, false);
  h.state->RecordProcessed(0, "p", /*seq=*/15, /*bucket=*/0, /*retained=*/true,
                           {}, true, false);
  h.state->RecordProcessed(0, "p", /*seq=*/18, /*bucket=*/1, /*retained=*/true,
                           {}, true, false);

  std::vector<uint64_t> processed;
  std::vector<uint64_t> retained;
  h.state->BuildReply(0, "p", /*buckets_lost=*/{1}, &processed, &retained);
  EXPECT_EQ(processed, (std::vector<uint64_t>{3, 7, 9}));
  // Bucket 1 is leaving: its retained seqs are NOT claimed (the new owner
  // needs the producer to resend them).
  EXPECT_EQ(retained, (std::vector<uint64_t>{15}));
}

TEST(StateManagerTest, RoundLifecycleGatesQuiescence) {
  Harness h;
  EXPECT_TRUE(h.state->quiescent());

  h.state->OpenRound("p", 1);
  h.state->OpenRound("p", 2);
  EXPECT_TRUE(h.state->rounds_open());
  EXPECT_FALSE(h.state->quiescent());

  h.state->CloseRound("p", 1);
  EXPECT_FALSE(h.state->quiescent());
  h.state->CloseRound("p", 2);
  EXPECT_TRUE(h.state->quiescent());

  // A restoring bucket also blocks completion until it lands.
  h.state->AwaitRestore(5);
  EXPECT_FALSE(h.state->quiescent());
  EXPECT_TRUE(h.state->AwaitingRestore(5));
  h.state->RestoreBucket(5);
  EXPECT_TRUE(h.state->quiescent());
}

TEST(StateManagerTest, AbandonProducerDropsItsOpenRounds) {
  Harness h;
  h.state->OpenRound("dead", 1);
  h.state->BeginBuildRecovery("dead", 1);
  h.state->OpenRound("alive", 3);
  EXPECT_FALSE(h.state->build_recovery_empty());

  // The producer crashed: no RestoreComplete will ever close its rounds.
  h.state->AbandonProducer("dead");
  EXPECT_TRUE(h.state->build_recovery_empty());
  EXPECT_TRUE(h.state->rounds_open());  // the live producer's round remains
  h.state->CloseRound("alive", 3);
  EXPECT_TRUE(h.state->quiescent());
}

}  // namespace
}  // namespace gqp
