#include "exec/flat_join_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/schema.h"

namespace gqp {
namespace {

SchemaPtr RowSchema() {
  return MakeSchema({{"key", DataType::kInt64},
                     {"payload", DataType::kString}});
}

Tuple Row(int64_t key, const std::string& payload) {
  return Tuple(RowSchema(), {Value(key), Value(payload)});
}

/// Collects the payload column of every entry matching `hash` whose key
/// equals `key` (the same collision filter the join operator applies).
std::vector<std::string> Matches(const FlatJoinTable& table, uint64_t hash,
                                 const Value& key) {
  std::vector<std::string> out;
  table.ForEachMatch(hash, [&](const Tuple& t) {
    if (t[0] == key) out.push_back(t[1].AsString());
  });
  return out;
}

TEST(FlatJoinTableTest, EmptyTableHasNoMatches) {
  FlatJoinTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  int calls = 0;
  table.ForEachMatch(123, [&](const Tuple&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(FlatJoinTableTest, InsertAndProbe) {
  FlatJoinTable table;
  const Value key(int64_t{7});
  EXPECT_FALSE(table.Insert(key.Hash(), Row(7, "a")));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(Matches(table, key.Hash(), key),
            (std::vector<std::string>{"a"}));
  // Probing a hash that is not in the table finds nothing.
  EXPECT_TRUE(Matches(table, key.Hash() + 1, key).empty());
}

TEST(FlatJoinTableTest, DuplicateKeysEmitInInsertionOrder) {
  FlatJoinTable table;
  const Value key(int64_t{42});
  EXPECT_FALSE(table.Insert(key.Hash(), Row(42, "first")));
  EXPECT_FALSE(table.Insert(key.Hash(), Row(42, "second")));
  EXPECT_FALSE(table.Insert(key.Hash(), Row(42, "third")));
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.distinct_hashes(), 1u);
  EXPECT_EQ(Matches(table, key.Hash(), key),
            (std::vector<std::string>{"first", "second", "third"}));
}

TEST(FlatJoinTableTest, ValueIdenticalInsertReportsDuplicate) {
  FlatJoinTable table;
  const Value key(int64_t{5});
  EXPECT_FALSE(table.Insert(key.Hash(), Row(5, "x")));
  // Same key, different payload: a legitimate multi-match, not a dup.
  EXPECT_FALSE(table.Insert(key.Hash(), Row(5, "y")));
  // Value-identical row: flagged, but still stored (matches the join
  // operator's historical duplicate-warning-then-insert behavior).
  EXPECT_TRUE(table.Insert(key.Hash(), Row(5, "x")));
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(Matches(table, key.Hash(), key),
            (std::vector<std::string>{"x", "y", "x"}));
}

TEST(FlatJoinTableTest, HashCollisionsShareAChainButKeepTheirKeys) {
  FlatJoinTable table;
  // Force a collision: two different keys inserted under the same hash.
  const Value k1(int64_t{1});
  const Value k2(int64_t{2});
  const uint64_t hash = 0x1234;
  EXPECT_FALSE(table.Insert(hash, Row(1, "one")));
  EXPECT_FALSE(table.Insert(hash, Row(2, "two")));
  EXPECT_FALSE(table.Insert(hash, Row(1, "uno")));
  EXPECT_EQ(table.distinct_hashes(), 1u);
  // The key filter separates the colliding chains.
  EXPECT_EQ(Matches(table, hash, k1),
            (std::vector<std::string>{"one", "uno"}));
  EXPECT_EQ(Matches(table, hash, k2), (std::vector<std::string>{"two"}));
}

TEST(FlatJoinTableTest, GrowthRehashPreservesAllChains) {
  FlatJoinTable table;
  constexpr int kRows = 5000;  // far beyond the initial slot count
  for (int i = 0; i < kRows; ++i) {
    const Value key(int64_t{i % 100});  // 100 distinct keys, 50 rows each
    EXPECT_FALSE(
        table.Insert(key.Hash(), Row(i % 100, "p" + std::to_string(i))));
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kRows));
  EXPECT_EQ(table.distinct_hashes(), 100u);
  EXPECT_GE(table.slot_capacity(), 100u);
  for (int k = 0; k < 100; ++k) {
    const Value key(int64_t{k});
    const std::vector<std::string> got = Matches(table, key.Hash(), key);
    ASSERT_EQ(got.size(), 50u) << "key " << k;
    // Insertion order: payload indices ascend by 100.
    for (int j = 0; j < 50; ++j) {
      EXPECT_EQ(got[static_cast<size_t>(j)],
                "p" + std::to_string(k + 100 * j));
    }
  }
}

TEST(FlatJoinTableTest, ReservePresizesSlots) {
  FlatJoinTable table;
  table.Reserve(10'000);
  const size_t presized = table.slot_capacity();
  EXPECT_GE(presized, 10'000u);
  // Inserting up to the reserved cardinality must not grow the slots.
  for (int i = 0; i < 10'000; ++i) {
    const Value key(int64_t{i});
    table.Insert(key.Hash(), Row(i, "r"));
  }
  EXPECT_EQ(table.slot_capacity(), presized);
}

TEST(FlatJoinTableTest, ClearEmptiesTable) {
  FlatJoinTable table;
  const Value key(int64_t{9});
  table.Insert(key.Hash(), Row(9, "z"));
  table.Clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.distinct_hashes(), 0u);
  EXPECT_TRUE(Matches(table, key.Hash(), key).empty());
  // Reusable after Clear.
  EXPECT_FALSE(table.Insert(key.Hash(), Row(9, "z2")));
  EXPECT_EQ(Matches(table, key.Hash(), key),
            (std::vector<std::string>{"z2"}));
}

}  // namespace
}  // namespace gqp
