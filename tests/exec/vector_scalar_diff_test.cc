// Scalar/vector differential harness (DESIGN.md §D13). Every operator is
// driven over randomized inputs in both execution modes — the scalar
// per-tuple Process chain and the batch-at-a-time ProcessBatch walk the
// driver performs — and the two runs must agree exactly:
//
//   * byte-identical result sets (rendered rows, in emission order),
//   * per-row identical retention decisions, and
//   * bit-identical total charged cost via the ChargeLedger (integer
//     counts per (tag, unit) pair; the totals are summed by the same
//     sequence of floating-point operations in both modes, so EXPECT_EQ
//     on the doubles is exact, not a tolerance check).
//
// Batch sizes cover the degenerate single-row batch, small primes that
// force ragged final batches, the configured default, and a batch wider
// than the whole input. Seeds are fixed: a red run is reproducible.

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operators.h"
#include "plan/cost_model.h"

namespace gqp {
namespace {

constexpr size_t kBatchSizes[] = {1, 3, 7, 16, 64, 4096};

SchemaPtr SeqSchema() {
  return MakeSchema(
      {{"orf", DataType::kString}, {"sequence", DataType::kString}});
}

/// One input row of a differential stream: the port it arrives on (0
/// except for join probes) and the logical partition.
struct StreamRow {
  int port = 0;
  Tuple tuple;
  int bucket = -1;
};

/// Randomized protein-ish rows: a small ORF key space (join collisions,
/// aggregate groups) and short random sequences (entropy, length
/// predicates). Pure function of the seed.
std::vector<StreamRow> MakeSeqStream(uint64_t seed, size_t n, int port,
                                     int num_buckets) {
  std::mt19937_64 rng(seed);
  std::vector<StreamRow> rows;
  rows.reserve(n);
  const SchemaPtr schema = SeqSchema();
  for (size_t i = 0; i < n; ++i) {
    const std::string orf = "ORF" + std::to_string(rng() % 23);
    std::string sequence;
    const size_t len = 1 + rng() % 12;
    for (size_t j = 0; j < len; ++j) {
      sequence.push_back("acgt"[rng() % 4]);
    }
    StreamRow row;
    row.port = port;
    row.tuple = Tuple(schema, {Value(orf), Value(sequence)});
    row.bucket = num_buckets > 0 ? static_cast<int>(rng() % num_buckets) : -1;
    rows.push_back(std::move(row));
  }
  return rows;
}

using Chain = std::vector<std::unique_ptr<PhysicalOperator>>;

/// Everything a differential run observes: rendered outputs in emission
/// order, per-input retention decisions in input order, and the
/// cumulative charge ledger.
struct RunTrace {
  std::vector<std::string> outputs;
  std::vector<bool> retained;
  ChargeLedger ledger;
};

/// Reference semantics: the scalar per-tuple chain exactly as the
/// executor drives it (Process chained through set_next, then Finish).
RunTrace RunScalar(const Chain& ops, const std::vector<StreamRow>& rows,
                   bool finish) {
  for (size_t i = 0; i + 1 < ops.size(); ++i) {
    ops[i]->set_next(ops[i + 1].get());
  }
  ExecContext ctx;
  RunTrace trace;
  for (const StreamRow& row : rows) {
    ctx.ResetForTuple();
    EXPECT_TRUE(ops[0]->Process(row.port, row.tuple, row.bucket, &ctx).ok());
    trace.retained.push_back(ctx.retained);
    for (const Tuple& t : ctx.out) trace.outputs.push_back(t.ToString());
  }
  if (finish) {
    ctx.ResetForTuple();
    EXPECT_TRUE(ops[0]->Finish(&ctx).ok());
    for (const Tuple& t : ctx.out) trace.outputs.push_back(t.ToString());
  }
  trace.ledger = ctx.ledger;
  return trace;
}

/// Batch semantics: slices the stream into port-homogeneous batches of at
/// most `batch_size` rows (ragged final slice included) and walks the
/// chain the way OperatorDriver::RunChainBatch does — ping-ponging two
/// scratch batches, no Emit chaining.
RunTrace RunVectorized(const Chain& ops, const std::vector<StreamRow>& rows,
                       size_t batch_size, bool finish) {
  for (size_t i = 0; i + 1 < ops.size(); ++i) {
    ops[i]->set_next(ops[i + 1].get());
  }
  ExecContext ctx;
  RunTrace trace;
  size_t pos = 0;
  while (pos < rows.size()) {
    const int port = rows[pos].port;
    TupleBatch in;
    while (pos < rows.size() && in.size() < batch_size &&
           rows[pos].port == port) {
      in.Append(rows[pos].tuple, rows[pos].bucket,
                static_cast<uint32_t>(in.size()));
      ++pos;
    }
    const size_t batch_rows = in.size();
    ctx.ResetForBatch(batch_rows);
    TupleBatch scratch_a, scratch_b;
    TupleBatch* cur = &in;
    TupleBatch* next = &scratch_a;
    int step_port = port;
    for (const auto& op : ops) {
      next->Clear();
      EXPECT_TRUE(op->ProcessBatch(step_port, cur, next, &ctx).ok());
      TupleBatch* spent = cur == &in ? &scratch_b : cur;
      cur = next;
      next = spent;
      step_port = 0;
    }
    for (size_t i = 0; i < cur->size(); ++i) {
      trace.outputs.push_back(cur->tuple(i).ToString());
    }
    for (size_t i = 0; i < batch_rows; ++i) {
      trace.retained.push_back(ctx.row_retained[i] != 0);
    }
  }
  if (finish) {
    ctx.ResetForTuple();
    EXPECT_TRUE(ops[0]->Finish(&ctx).ok());
    for (const Tuple& t : ctx.out) trace.outputs.push_back(t.ToString());
  }
  trace.ledger = ctx.ledger;
  return trace;
}

void ExpectTracesEqual(const RunTrace& scalar, const RunTrace& vec,
                       uint64_t seed, size_t batch_size) {
  const std::string where =
      "seed=" + std::to_string(seed) + " batch=" + std::to_string(batch_size);
  ASSERT_EQ(scalar.outputs, vec.outputs) << where;
  ASSERT_EQ(scalar.retained, vec.retained) << where;
  ASSERT_EQ(scalar.ledger.entries.size(), vec.ledger.entries.size()) << where;
  for (size_t i = 0; i < scalar.ledger.entries.size(); ++i) {
    EXPECT_EQ(scalar.ledger.entries[i].tag, vec.ledger.entries[i].tag)
        << where;
    EXPECT_EQ(scalar.ledger.entries[i].unit_ms, vec.ledger.entries[i].unit_ms)
        << where;
    EXPECT_EQ(scalar.ledger.entries[i].count, vec.ledger.entries[i].count)
        << where;
  }
  // Bit-identical, not approximately equal: both totals are the same
  // float operations in the same order (DESIGN.md §D13).
  EXPECT_EQ(scalar.ledger.TotalMs(), vec.ledger.TotalMs()) << where;
  EXPECT_EQ(scalar.ledger.TotalCount(), vec.ledger.TotalCount()) << where;
}

// ---- Chain builders (fresh state per run: stateful operators cannot be
// shared between the scalar and vectorized executions) -------------------

Chain MakeFilterProjectOpcallChain(uint64_t seed) {
  // Vary the predicate threshold with the seed so selectivity ranges from
  // keep-almost-everything to drop-almost-everything.
  const int64_t min_len = 1 + static_cast<int64_t>(seed % 12);

  PhysOpDesc filter;
  filter.kind = PhysOpKind::kFilter;
  filter.predicate = Cmp(CompareOp::kGe, Call("LENGTH", {Col(1, "sequence")}),
                         Lit(Value(min_len)));
  filter.base_cost_ms = 0.1;
  filter.cost_tag = "op:filter";

  PhysOpDesc opcall;
  opcall.kind = PhysOpKind::kOperationCall;
  opcall.ws_name = "EntropyAnalyser";
  opcall.arg_col = 1;
  opcall.base_cost_ms = 0.25;
  opcall.cost_tag = CostModel::WsTag("EntropyAnalyser");
  opcall.out_schema = MakeSchema({{"orf", DataType::kString},
                                  {"sequence", DataType::kString},
                                  {"e", DataType::kDouble}});

  PhysOpDesc project;
  project.kind = PhysOpKind::kProject;
  project.exprs = {Col(0, "orf"), Call("LENGTH", {Col(1, "sequence")}),
                   Col(2, "e")};
  project.out_schema = MakeSchema({{"orf", DataType::kString},
                                   {"len", DataType::kInt64},
                                   {"e", DataType::kDouble}});
  project.base_cost_ms = 0.05;
  project.cost_tag = "op:project";

  Chain ops;
  ops.push_back(std::make_unique<FilterOperator>(filter));
  ops.push_back(std::make_unique<OperationCallOperator>(opcall));
  ops.push_back(std::make_unique<ProjectOperator>(project));
  return ops;
}

Chain MakeJoinChain() {
  PhysOpDesc join;
  join.kind = PhysOpKind::kHashJoin;
  join.build_key = 0;
  join.probe_key = 0;
  join.base_cost_ms = 0.1;
  join.build_cost_ms = 0.05;
  join.cost_tag = "op:hash_join";
  join.out_schema = MakeSchema({{"orf", DataType::kString},
                                {"sequence", DataType::kString},
                                {"orf_p", DataType::kString},
                                {"sequence_p", DataType::kString}});
  Chain ops;
  ops.push_back(std::make_unique<HashJoinOperator>(join));
  return ops;
}

Chain MakeAggregateChain() {
  PhysOpDesc agg;
  agg.kind = PhysOpKind::kHashAggregate;
  agg.group_exprs = {Col(0, "orf")};
  AggSpec count;
  count.kind = AggKind::kCount;
  count.name = "count(*)";
  AggSpec sum;
  sum.kind = AggKind::kSum;
  sum.arg = Call("LENGTH", {Col(1, "sequence")});
  sum.name = "sum(len)";
  sum.result_type = DataType::kInt64;
  AggSpec min;
  min.kind = AggKind::kMin;
  min.arg = Col(1, "sequence");
  min.name = "min(sequence)";
  min.result_type = DataType::kString;
  agg.aggs = {count, sum, min};
  agg.out_schema = MakeSchema({{"orf", DataType::kString},
                               {"count", DataType::kInt64},
                               {"sum", DataType::kInt64},
                               {"min", DataType::kString}});
  agg.base_cost_ms = 0.03;
  agg.cost_tag = "op:hash_aggregate";
  Chain ops;
  ops.push_back(std::make_unique<HashAggregateOperator>(agg));
  return ops;
}

Chain MakeCollectChain() {
  PhysOpDesc collect;
  collect.kind = PhysOpKind::kCollect;
  collect.base_cost_ms = 0.01;
  collect.cost_tag = "op:collect";
  Chain ops;
  ops.push_back(std::make_unique<CollectOperator>(collect));
  return ops;
}

// ---- Differential sweeps ------------------------------------------------

TEST(VectorScalarDiffTest, FilterOpcallProjectChain) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<StreamRow> rows =
        MakeSeqStream(seed, 40 + seed % 37, /*port=*/0, /*num_buckets=*/0);
    const RunTrace scalar =
        RunScalar(MakeFilterProjectOpcallChain(seed), rows, /*finish=*/false);
    for (size_t batch : kBatchSizes) {
      const RunTrace vec = RunVectorized(MakeFilterProjectOpcallChain(seed),
                                         rows, batch, /*finish=*/false);
      ExpectTracesEqual(scalar, vec, seed, batch);
    }
  }
}

TEST(VectorScalarDiffTest, JoinBuildThenProbe) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    // Build and probe share the 23-key ORF space, so probes see misses,
    // single matches and multi-match fan-out; 4 logical buckets exercise
    // the per-bucket tables. Equal keys must share a bucket (as the hash
    // exchange guarantees), so bucket = f(key), not an independent draw.
    std::vector<StreamRow> rows =
        MakeSeqStream(seed * 2 + 1, 30 + seed % 29, /*port=*/0,
                      /*num_buckets=*/0);
    std::vector<StreamRow> probes =
        MakeSeqStream(seed * 2 + 2, 35 + seed % 31, /*port=*/1,
                      /*num_buckets=*/0);
    for (StreamRow& r : rows) {
      r.bucket = r.tuple[0].AsString().back() % 4;
    }
    for (StreamRow& r : probes) {
      r.port = 1;
      r.bucket = r.tuple[0].AsString().back() % 4;
    }
    rows.insert(rows.end(), probes.begin(), probes.end());

    const RunTrace scalar = RunScalar(MakeJoinChain(), rows, /*finish=*/false);
    for (size_t batch : kBatchSizes) {
      const RunTrace vec =
          RunVectorized(MakeJoinChain(), rows, batch, /*finish=*/false);
      ExpectTracesEqual(scalar, vec, seed, batch);
    }
  }
}

TEST(VectorScalarDiffTest, AggregateAccumulateAndFinish) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const std::vector<StreamRow> rows =
        MakeSeqStream(seed + 1000, 45 + seed % 23, /*port=*/0,
                      /*num_buckets=*/3);
    const RunTrace scalar =
        RunScalar(MakeAggregateChain(), rows, /*finish=*/true);
    for (size_t batch : kBatchSizes) {
      const RunTrace vec =
          RunVectorized(MakeAggregateChain(), rows, batch, /*finish=*/true);
      ExpectTracesEqual(scalar, vec, seed, batch);
    }
  }
}

TEST(VectorScalarDiffTest, CollectSink) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const std::vector<StreamRow> rows =
        MakeSeqStream(seed + 2000, 25 + seed, /*port=*/0, /*num_buckets=*/0);
    // The sink swallows rows into results_ instead of emitting, so the
    // differential check is on the collected rows plus the ledger.
    Chain scalar_chain = MakeCollectChain();
    Chain vec_chain = MakeCollectChain();
    const RunTrace scalar = RunScalar(scalar_chain, rows, /*finish=*/false);
    const RunTrace vec = RunVectorized(vec_chain, rows, 7, /*finish=*/false);
    ExpectTracesEqual(scalar, vec, seed, 7);
    const auto* scalar_sink =
        static_cast<CollectOperator*>(scalar_chain[0].get());
    const auto* vec_sink = static_cast<CollectOperator*>(vec_chain[0].get());
    ASSERT_EQ(scalar_sink->results().size(), vec_sink->results().size());
    for (size_t i = 0; i < scalar_sink->results().size(); ++i) {
      EXPECT_EQ(scalar_sink->results()[i].ToString(),
                vec_sink->results()[i].ToString());
    }
  }
}

// Satellite: exact per-batch charge accounting. The ledger total must be
// bit-identical across every batch size — not within an epsilon — because
// per-batch parts are charged as (unit, count) and only multiplied out in
// one canonical entry order.
TEST(VectorScalarDiffTest, ChargeTotalsBitIdenticalAcrossBatchSizes) {
  const std::vector<StreamRow> rows =
      MakeSeqStream(77, 333, /*port=*/0, /*num_buckets=*/0);
  const RunTrace scalar =
      RunScalar(MakeFilterProjectOpcallChain(77), rows, /*finish=*/false);
  const double canonical = scalar.ledger.TotalMs();
  ASSERT_GT(canonical, 0.0);
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{1024}}) {
    const RunTrace vec = RunVectorized(MakeFilterProjectOpcallChain(77), rows,
                                       batch, /*finish=*/false);
    EXPECT_EQ(vec.ledger.TotalMs(), canonical) << "batch=" << batch;
    EXPECT_EQ(vec.ledger.TotalCount(), scalar.ledger.TotalCount())
        << "batch=" << batch;
  }
}

}  // namespace
}  // namespace gqp
