// Unit tests for the credit-based flow-control primitives (DESIGN.md
// §D11): the producer-side CreditLedger (cumulative charged/released per
// link) and the consumer-side CreditAccount (held bytes + grant batching).

#include "exec/flow_control.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(CreditLedgerTest, DisabledLedgerIsAlwaysOpen) {
  CreditLedger ledger;
  ledger.Configure(3, /*window_bytes=*/0);
  EXPECT_FALSE(ledger.enabled());
  EXPECT_TRUE(ledger.HasHeadroom());
  ledger.Charge(0, 1 << 20, /*recall=*/false);
  EXPECT_TRUE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.Outstanding(0), 0u);
  EXPECT_EQ(ledger.stats().peak_outstanding_bytes, 0u);
}

TEST(CreditLedgerTest, ChargeGatesAtWindowAndGrantReopens) {
  CreditLedger ledger;
  ledger.Configure(2, /*window_bytes=*/100);
  ASSERT_TRUE(ledger.enabled());

  ledger.Charge(0, 60, false);
  EXPECT_TRUE(ledger.HasHeadroom());
  ledger.Charge(0, 40, false);  // exactly at the window: gate closes
  EXPECT_FALSE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.Outstanding(0), 100u);
  EXPECT_EQ(ledger.Outstanding(1), 0u);

  // One saturated link gates the whole producer, regardless of others.
  ledger.Charge(1, 10, false);
  EXPECT_FALSE(ledger.HasHeadroom());

  EXPECT_TRUE(ledger.OnGrant(0, 30));
  EXPECT_TRUE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.Outstanding(0), 70u);
  EXPECT_EQ(ledger.stats().peak_outstanding_bytes, 100u);
}

TEST(CreditLedgerTest, GrantsAreCumulativeAndReorderSafe) {
  CreditLedger ledger;
  ledger.Configure(1, 100);
  ledger.Charge(0, 90, false);

  EXPECT_TRUE(ledger.OnGrant(0, 50));
  EXPECT_EQ(ledger.Outstanding(0), 40u);

  // A stale (reordered or retransmitted) grant never moves the counter
  // backwards, and a duplicate is a no-op.
  EXPECT_FALSE(ledger.OnGrant(0, 30));
  EXPECT_FALSE(ledger.OnGrant(0, 50));
  EXPECT_EQ(ledger.Outstanding(0), 40u);

  // A grant can never exceed what was charged: the link cannot owe the
  // producer credit.
  EXPECT_TRUE(ledger.OnGrant(0, 1000));
  EXPECT_EQ(ledger.Outstanding(0), 0u);
  EXPECT_EQ(ledger.stats().grants_received, 4u);
}

TEST(CreditLedgerTest, UnchargeForgivesUnsentBytes) {
  CreditLedger ledger;
  ledger.Configure(1, 100);
  ledger.Charge(0, 100, false);
  EXPECT_FALSE(ledger.HasHeadroom());

  // A purged unsent buffer un-charges: the consumer never saw the bytes.
  ledger.Uncharge(0, 40);
  EXPECT_TRUE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.Outstanding(0), 60u);

  // Uncharge clamps at outstanding — it cannot drive the link negative.
  ledger.Uncharge(0, 1000);
  EXPECT_EQ(ledger.Outstanding(0), 0u);
}

TEST(CreditLedgerTest, VoidedConsumerStopsGating) {
  CreditLedger ledger;
  ledger.Configure(2, 100);
  ledger.Charge(0, 100, false);
  ledger.Charge(1, 50, false);
  EXPECT_FALSE(ledger.HasHeadroom());

  // The saturated consumer dies: its link is voided, bytes forgotten.
  ledger.VoidConsumer(0);
  EXPECT_TRUE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.Outstanding(0), 0u);
  EXPECT_EQ(ledger.Outstanding(1), 50u);

  // Late traffic on the dead link neither gates nor moves counters back.
  ledger.Charge(0, 500, false);
  EXPECT_TRUE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.Outstanding(0), 0u);
  EXPECT_FALSE(ledger.OnGrant(0, 1 << 20));
}

TEST(CreditLedgerTest, RecallBurstsFeedSlackNotPeak) {
  CreditLedger ledger;
  ledger.Configure(2, 100);

  ledger.BeginRecallBurst();
  ledger.Charge(0, 80, /*recall=*/true);
  ledger.Charge(1, 70, /*recall=*/true);
  ledger.EndRecallBurst();
  EXPECT_EQ(ledger.stats().max_recall_burst_bytes, 150u);

  // A later, smaller burst does not shrink the recorded maximum.
  ledger.BeginRecallBurst();
  ledger.Charge(0, 10, /*recall=*/true);
  ledger.EndRecallBurst();
  EXPECT_EQ(ledger.stats().max_recall_burst_bytes, 150u);
}

TEST(CreditLedgerTest, BlockedEventsCountOnlyExplicitNotes) {
  CreditLedger ledger;
  ledger.Configure(1, 10);
  ledger.Charge(0, 10, false);
  // Passive probing does not inflate the counter...
  EXPECT_FALSE(ledger.HasHeadroom());
  EXPECT_FALSE(ledger.HasHeadroom());
  EXPECT_EQ(ledger.stats().blocked_events, 0u);
  // ...only the caller's explicit note does.
  ledger.NoteBlocked();
  EXPECT_EQ(ledger.stats().blocked_events, 1u);
}

TEST(CreditAccountTest, ReleaseBatchesIntoGrants) {
  CreditAccount account;
  account.Hold(30);
  account.Hold(30);
  EXPECT_EQ(account.held_bytes, 60u);

  // Releases accumulate until the grant threshold is crossed.
  EXPECT_FALSE(account.Release(10, /*grant_threshold=*/25));
  EXPECT_TRUE(account.Release(20, 25));
  EXPECT_EQ(account.held_bytes, 30u);
  EXPECT_EQ(account.released_bytes, 30u);

  // TakeGrant ships the cumulative counter and resets the batch.
  EXPECT_EQ(account.TakeGrant(), 30u);
  EXPECT_EQ(account.pending_grant_bytes, 0u);

  // The next grant repeats the cumulative total plus the new releases —
  // exactly what makes retransmitted grants idempotent at the ledger.
  EXPECT_TRUE(account.Release(30, 25));
  EXPECT_EQ(account.TakeGrant(), 60u);
}

TEST(CreditAccountTest, ReleaseClampsHeldButCountsFully) {
  CreditAccount account;
  account.Hold(10);
  // A purge may release more than is held here (e.g. a fence that covers
  // bytes already processed): held clamps at zero, but the cumulative
  // released counter still advances by the full amount so the producer's
  // charge is matched.
  EXPECT_TRUE(account.Release(25, 5));
  EXPECT_EQ(account.held_bytes, 0u);
  EXPECT_EQ(account.released_bytes, 25u);
}

TEST(RoutedTupleWireBytesTest, MatchesBatchPerTupleFraming) {
  EXPECT_EQ(RoutedTupleWireBytes(0), 12u);
  EXPECT_EQ(RoutedTupleWireBytes(100), 112u);
}

}  // namespace
}  // namespace gqp
