// PortQueueManager unit tests, driven through recording hooks: byte
// accounting on enqueue/release, batched vs immediate CreditGrant
// emission and its deterministic flush order, the fenced-producer grant
// fence, purge scoping by round and bucket, and two-phase port selection.

#include "exec/port_queue_manager.h"

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace gqp {
namespace {

Tuple KeyTuple(const std::string& key) {
  static SchemaPtr schema = MakeSchema({{"orf", DataType::kString}});
  return Tuple(schema, {Value(key)});
}

size_t WireBytes(const std::string& key) {
  return RoutedTupleWireBytes(KeyTuple(key).WireSize());
}

struct SentMessage {
  Address to;
  PayloadPtr payload;
};

/// A consumer-side queue manager on a one-node simulator. Grants are sent
/// through GridNode::SubmitWork, so tests run the simulator before
/// asserting on `sent`.
struct Harness {
  explicit Harness(uint64_t credit_window_bytes = 1000) {
    config.flow_control_enabled = true;
    config.credit_window_bytes = credit_window_bytes;
    config.credit_grant_fraction = 0.25;
    PortQueueManager::Hooks hooks;
    hooks.send_to = [this](const Address& to, PayloadPtr payload) {
      sent.push_back({to, std::move(payload)});
      return Status::OK();
    };
    hooks.is_lost = [this](int, const std::string& key) {
      return lost.count(key) > 0;
    };
    queues = std::make_unique<PortQueueManager>(&node, &sim, &config,
                                                SubplanId{1, 2, 0}, &adaptivity,
                                                &stats, std::move(hooks));
  }

  /// Enqueues `keys` as one batch from `producer` with per-tuple seqs
  /// starting at `first_seq`.
  void Enqueue(int port, const std::string& producer, uint64_t round,
               const std::vector<std::pair<std::string, int>>& key_buckets,
               uint64_t first_seq = 0) {
    std::vector<RoutedTuple> tuples;
    uint64_t seq = first_seq;
    for (const auto& [key, bucket] : key_buckets) {
      RoutedTuple rt;
      rt.seq = seq++;
      rt.bucket = bucket;
      rt.tuple = KeyTuple(key);
      tuples.push_back(std::move(rt));
    }
    queues->EnqueueBatch(port, producer,
                         TupleBatchPayload(/*exchange_id=*/7, SubplanId{1, 0, 0},
                                           port, /*resend=*/false, round,
                                           std::move(tuples)));
  }

  std::vector<const CreditGrantPayload*> Grants() {
    std::vector<const CreditGrantPayload*> out;
    for (const SentMessage& m : sent) {
      if (const auto* g =
              dynamic_cast<const CreditGrantPayload*>(m.payload.get())) {
        out.push_back(g);
      }
    }
    return out;
  }

  Simulator sim;
  GridNode node{&sim, 0, "consumer"};
  ExecConfig config;
  AdaptivityWiring adaptivity;  // med unset: no pressure emission
  FragmentStats stats;
  std::set<std::string> lost;
  std::vector<SentMessage> sent;
  std::unique_ptr<PortQueueManager> queues;
};

TEST(PortQueueManagerTest, EnqueueChargesBytesAndReleaseDrainsThem) {
  Harness h;
  h.queues->AddPort(1);
  h.queues->RegisterProducer(0, "p", Address{1, "p"}, 7);

  h.Enqueue(0, "p", 0, {{"aa", 0}, {"bb", 1}, {"cc", 2}});
  const size_t wb = WireBytes("aa");
  EXPECT_EQ(h.queues->held_bytes(0), 3 * wb);
  EXPECT_EQ(h.queues->QueuedTuples(0), 3u);
  EXPECT_EQ(h.stats.queued_bytes_peak, 3 * wb);

  const QueuedTuple qt = h.queues->PopFront(0);
  EXPECT_EQ(qt.wire_bytes, wb);
  EXPECT_EQ(qt.producer_key, "p");
  h.queues->ReleaseCredit(0, "p", qt.wire_bytes);
  EXPECT_EQ(h.queues->held_bytes(0), 2 * wb);
  // Peak is monotone.
  EXPECT_EQ(h.stats.queued_bytes_peak, 3 * wb);
}

TEST(PortQueueManagerTest, SmallReleasesBatchUntilFlushed) {
  Harness h(/*credit_window_bytes=*/1000);  // threshold = 250
  h.queues->AddPort(1);
  h.queues->RegisterProducer(0, "p", Address{1, "p"}, 7);
  const size_t wb = WireBytes("aa");
  ASSERT_LT(wb, h.queues->CreditGrantThreshold());

  h.Enqueue(0, "p", 0, {{"aa", 0}});
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "p", wb);
  h.sim.Run();
  EXPECT_TRUE(h.Grants().empty()) << "sub-threshold release sent a grant";

  // The idle-time flush delivers it so the producer can never starve.
  h.queues->FlushCreditGrants();
  h.sim.Run();
  auto grants = h.Grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0]->released_bytes(), wb);  // cumulative counter
  EXPECT_EQ(grants[0]->exchange_id(), 7);
  EXPECT_EQ(h.stats.credit_grants_sent, 1u);

  // Nothing pending afterwards: a second flush is a no-op.
  h.queues->FlushCreditGrants();
  h.sim.Run();
  EXPECT_EQ(h.Grants().size(), 1u);
}

TEST(PortQueueManagerTest, ThresholdCrossingSendsGrantImmediately) {
  // Window sized so the grant threshold sits between one and two tuples.
  const size_t wb = WireBytes("aa");
  Harness h(/*credit_window_bytes=*/4 * (wb + 1));
  h.queues->AddPort(1);
  h.queues->RegisterProducer(0, "p", Address{1, "p"}, 7);
  ASSERT_LT(wb, h.queues->CreditGrantThreshold());
  ASSERT_GE(2 * wb, h.queues->CreditGrantThreshold());

  h.Enqueue(0, "p", 0, {{"aa", 0}, {"aa", 1}});
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "p", wb);
  h.sim.Run();
  EXPECT_TRUE(h.Grants().empty());
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "p", wb);  // crosses the threshold
  h.sim.Run();
  auto grants = h.Grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0]->released_bytes(), 2 * wb);
}

TEST(PortQueueManagerTest, FlushOrderIsSortedByProducerKey) {
  Harness h;
  h.queues->AddPort(2);
  h.queues->RegisterProducer(0, "q1.f0.i1", Address{2, "q1.f0.i1"}, 7);
  h.queues->RegisterProducer(0, "q1.f0.i0", Address{1, "q1.f0.i0"}, 7);
  const size_t wb = WireBytes("aa");

  // Release in reverse key order; the flush must still go out sorted so
  // replayed runs emit an identical event sequence.
  h.Enqueue(0, "q1.f0.i1", 0, {{"aa", 0}});
  h.Enqueue(0, "q1.f0.i0", 0, {{"aa", 0}});
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "q1.f0.i1", wb);
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "q1.f0.i0", wb);
  h.queues->FlushCreditGrants();
  h.sim.Run();

  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.sent[0].to.service, "q1.f0.i0");
  EXPECT_EQ(h.sent[1].to.service, "q1.f0.i1");
}

TEST(PortQueueManagerTest, FencedProducerGetsNoGrants) {
  Harness h(/*credit_window_bytes=*/100);
  h.queues->AddPort(1);
  h.queues->RegisterProducer(0, "dead", Address{1, "dead"}, 7);
  const size_t wb = WireBytes("aa");

  h.Enqueue(0, "dead", 0, {{"aa", 0}, {"aa", 1}});
  h.lost.insert("dead");
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "dead", wb);
  h.queues->PopFront(0);
  h.queues->ReleaseCredit(0, "dead", wb);  // crosses the threshold
  h.queues->FlushCreditGrants();
  h.sim.Run();
  EXPECT_TRUE(h.Grants().empty());
  EXPECT_EQ(h.stats.credit_grants_sent, 0u);
}

TEST(PortQueueManagerTest, PurgeScopesByRoundBucketAndProducer) {
  Harness h;
  h.queues->AddPort(1);
  h.queues->RegisterProducer(0, "p", Address{1, "p"}, 7);
  h.queues->RegisterProducer(0, "other", Address{2, "other"}, 7);
  const size_t wb = WireBytes("aa");

  h.Enqueue(0, "p", /*round=*/0, {{"aa", 1}, {"aa", 2}}, /*first_seq=*/10);
  h.Enqueue(0, "p", /*round=*/1, {{"aa", 1}}, /*first_seq=*/12);
  h.Enqueue(0, "other", /*round=*/0, {{"aa", 1}}, /*first_seq=*/50);

  // Bucket-scoped purge for round 1: only the producer's round-0 tuple in
  // the lost bucket goes; the round-1 tuple was routed by the new map and
  // the other producer is untouched.
  auto result = h.queues->Purge(0, "p", /*round=*/1, /*unconditional=*/false,
                                /*buckets_lost=*/{1});
  EXPECT_EQ(result.discarded, 1u);
  EXPECT_EQ(result.credit_bytes, wb);
  EXPECT_EQ(result.seqs, " 10");
  EXPECT_EQ(h.queues->QueuedTuples(0), 3u);

  // Unconditional purge (recovery) sweeps every remaining round-0 tuple
  // of the producer regardless of bucket.
  result = h.queues->Purge(0, "p", /*round=*/1, /*unconditional=*/true, {});
  EXPECT_EQ(result.discarded, 1u);
  EXPECT_EQ(result.seqs, " 11");
  EXPECT_EQ(h.queues->QueuedTuples(0), 2u);
}

TEST(PortQueueManagerTest, PurgeReachesParkedTuples) {
  Harness h;
  h.queues->AddPort(1);
  h.queues->RegisterProducer(0, "p", Address{1, "p"}, 7);

  h.Enqueue(0, "p", 0, {{"aa", 3}, {"aa", 4}}, /*first_seq=*/20);
  h.queues->ParkBlocked(0, [](int bucket) { return bucket == 3; });
  EXPECT_EQ(h.queues->parked_size(0), 1u);
  EXPECT_EQ(h.queues->queue_size(0), 1u);

  auto result = h.queues->Purge(0, "p", /*round=*/1, /*unconditional=*/false,
                                /*buckets_lost=*/{3});
  EXPECT_EQ(result.discarded, 1u);
  EXPECT_EQ(h.queues->parked_size(0), 0u);

  h.queues->Unpark([](int) { return false; });
  EXPECT_EQ(h.queues->queue_size(0), 1u);
}

TEST(PortQueueManagerTest, PickRunnablePortDrainsEarlierPortsFirst) {
  Harness h;
  h.queues->AddPort(1);  // build
  h.queues->AddPort(1);  // probe
  h.queues->RegisterProducer(0, "b", Address{1, "b"}, 7);
  h.queues->RegisterProducer(1, "p", Address{2, "p"}, 8);

  std::set<int> eos_done;
  auto eos = [&eos_done](int port) { return eos_done.count(port) > 0; };

  h.Enqueue(1, "p", 0, {{"aa", 0}});
  // Probe queued, build still open: nothing may run.
  EXPECT_EQ(h.queues->PickRunnablePort(eos), -1);

  h.Enqueue(0, "b", 0, {{"aa", 0}});
  // Build tuples always run first.
  EXPECT_EQ(h.queues->PickRunnablePort(eos), 0);

  h.queues->PopFront(0);
  EXPECT_EQ(h.queues->PickRunnablePort(eos), -1);  // build empty, no EOS yet
  eos_done.insert(0);
  EXPECT_EQ(h.queues->PickRunnablePort(eos), 1);
}

}  // namespace
}  // namespace gqp
