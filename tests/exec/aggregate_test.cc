// Unit and end-to-end tests for the partitioned hash aggregate: SQL
// surface, binding, operator semantics, and correctness under adaptive
// state repartitioning.

#include <gtest/gtest.h>

#include <map>

#include "plan/binder.h"
#include "plan/optimizer.h"
#include "sql/parser.h"
#include "storage/datagen.h"
#include "workload/experiment.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

// ---- Parser surface --------------------------------------------------------

TEST(AggregateParserTest, GroupByClauseParsed) {
  auto q = ParseSelect(
      "select i.orf1, count(*) from protein_interactions i group by i.orf1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0]->ToString(), "i.orf1");
  EXPECT_NE(q->ToString().find("GROUP BY i.orf1"), std::string::npos);
}

TEST(AggregateParserTest, CountStarParses) {
  auto q = ParseSelect("select count(*) from t");
  ASSERT_TRUE(q.ok());
  const auto* call = static_cast<const AstCall*>(q->items[0].expr.get());
  ASSERT_EQ(call->args().size(), 1u);
  EXPECT_EQ(call->args()[0]->kind(), AstExprKind::kStar);
}

TEST(AggregateParserTest, GroupWithoutByFails) {
  EXPECT_FALSE(ParseSelect("select a from t group a").ok());
}

// ---- Binder -----------------------------------------------------------------

class AggregateBinderTest : public ::testing::Test {
 protected:
  AggregateBinderTest() {
    TableEntry interactions;
    interactions.name = "protein_interactions";
    interactions.schema = MakeSchema(
        {{"orf1", DataType::kString}, {"orf2", DataType::kString}});
    interactions.data_host = 1;
    interactions.stats.num_rows = 4700;
    EXPECT_TRUE(catalog_.RegisterTable(interactions).ok());
  }
  Catalog catalog_;
};

TEST_F(AggregateBinderTest, GroupedCountBinds) {
  auto plan = PlanSql(
      "select i.orf1, count(*) from protein_interactions i group by i.orf1",
      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind(), LogicalKind::kProject);
  const auto children = (*plan)->children();
  ASSERT_EQ(children[0]->kind(), LogicalKind::kAggregate);
  const auto* agg = static_cast<const LogicalAggregate*>(children[0].get());
  EXPECT_EQ(agg->group_exprs().size(), 1u);
  ASSERT_EQ(agg->aggs().size(), 1u);
  EXPECT_EQ(agg->aggs()[0].kind, AggKind::kCount);
  EXPECT_EQ((*plan)->schema()->field(1).type, DataType::kInt64);
}

TEST_F(AggregateBinderTest, AllAggregateKindsBind) {
  auto plan = PlanSql(
      "select count(i.orf2), sum(LENGTH(i.orf2)), avg(LENGTH(i.orf2)), "
      "min(i.orf2), max(i.orf2) from protein_interactions i",
      catalog_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ((*plan)->schema()->num_fields(), 5u);
  EXPECT_EQ((*plan)->schema()->field(0).type, DataType::kInt64);   // count
  EXPECT_EQ((*plan)->schema()->field(1).type, DataType::kInt64);   // sum int
  EXPECT_EQ((*plan)->schema()->field(2).type, DataType::kDouble);  // avg
  EXPECT_EQ((*plan)->schema()->field(3).type, DataType::kString);  // min
  EXPECT_EQ((*plan)->schema()->field(4).type, DataType::kString);  // max
}

TEST_F(AggregateBinderTest, NonGroupedColumnRejected) {
  auto r = PlanSql(
      "select i.orf2, count(*) from protein_interactions i group by i.orf1",
      catalog_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(AggregateBinderTest, StarWithGroupByRejected) {
  EXPECT_FALSE(
      PlanSql("select * from protein_interactions i group by i.orf1",
              catalog_)
          .ok());
}

TEST_F(AggregateBinderTest, StarOnlyValidInCount) {
  EXPECT_FALSE(
      PlanSql("select sum(*) from protein_interactions i", catalog_).ok());
}

TEST_F(AggregateBinderTest, GroupedPlanIsPartitionedWithHashExchange) {
  auto logical = PlanSql(
      "select i.orf1, count(*) from protein_interactions i group by i.orf1",
      catalog_);
  ASSERT_TRUE(logical.ok());
  auto physical = CreatePhysicalPlan(*logical, {});
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  EXPECT_TRUE(physical->HasStatefulPartitionedFragment());
  const auto inputs = physical->InputsOf(1);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0]->policy, PolicyKind::kHashBuckets);
  EXPECT_EQ(inputs[0]->key_col, 0u);  // orf1
}

TEST_F(AggregateBinderTest, GlobalAggregateRunsUnpartitioned) {
  auto logical = PlanSql("select count(*) from protein_interactions i",
                         catalog_);
  ASSERT_TRUE(logical.ok());
  auto physical = CreatePhysicalPlan(*logical, {});
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  EXPECT_FALSE(physical->fragments[1].partitioned);
}

// ---- Operator semantics ------------------------------------------------------

class HashAggregateOpTest : public ::testing::Test {
 protected:
  HashAggregateOpTest() {
    schema_ = MakeSchema({{"k", DataType::kString},
                          {"v", DataType::kInt64}});
    PhysOpDesc desc;
    desc.kind = PhysOpKind::kHashAggregate;
    desc.group_exprs = {Col(0, "k")};
    AggSpec count;
    count.kind = AggKind::kCount;
    count.name = "count(*)";
    AggSpec sum;
    sum.kind = AggKind::kSum;
    sum.arg = Col(1, "v");
    sum.name = "sum(v)";
    sum.result_type = DataType::kInt64;
    AggSpec avg;
    avg.kind = AggKind::kAvg;
    avg.arg = Col(1, "v");
    avg.name = "avg(v)";
    avg.result_type = DataType::kDouble;
    AggSpec min;
    min.kind = AggKind::kMin;
    min.arg = Col(1, "v");
    min.name = "min(v)";
    min.result_type = DataType::kInt64;
    AggSpec max;
    max.kind = AggKind::kMax;
    max.arg = Col(1, "v");
    max.name = "max(v)";
    max.result_type = DataType::kInt64;
    desc.aggs = {count, sum, avg, min, max};
    desc.out_schema = MakeSchema({{"k", DataType::kString},
                                  {"count", DataType::kInt64},
                                  {"sum", DataType::kInt64},
                                  {"avg", DataType::kDouble},
                                  {"min", DataType::kInt64},
                                  {"max", DataType::kInt64}});
    desc.base_cost_ms = 0.03;
    desc.cost_tag = "op:hash_aggregate";
    agg_ = std::make_unique<HashAggregateOperator>(desc);
  }

  Status Feed(const std::string& k, int64_t v, int bucket = 0) {
    return agg_->Process(0, Tuple(schema_, {Value(k), Value(v)}), bucket,
                         &ctx_);
  }

  std::map<std::string, Tuple> FinishAndIndex() {
    ctx_.ResetForTuple();
    EXPECT_TRUE(agg_->Finish(&ctx_).ok());
    std::map<std::string, Tuple> by_key;
    for (const Tuple& t : ctx_.out) by_key.emplace(t[0].AsString(), t);
    return by_key;
  }

  SchemaPtr schema_;
  std::unique_ptr<HashAggregateOperator> agg_;
  ExecContext ctx_;
};

TEST_F(HashAggregateOpTest, AccumulatesPerGroup) {
  ASSERT_TRUE(Feed("a", 10).ok());
  ASSERT_TRUE(Feed("a", 20).ok());
  ASSERT_TRUE(Feed("b", 5).ok());
  EXPECT_TRUE(ctx_.retained);
  EXPECT_EQ(agg_->GroupCount(), 2u);

  auto rows = FinishAndIndex();
  ASSERT_EQ(rows.size(), 2u);
  const Tuple& a = rows.at("a");
  EXPECT_EQ(a[1].AsInt64(), 2);             // count
  EXPECT_EQ(a[2].AsInt64(), 30);            // sum
  EXPECT_DOUBLE_EQ(a[3].AsDouble(), 15.0);  // avg
  EXPECT_EQ(a[4].AsInt64(), 10);            // min
  EXPECT_EQ(a[5].AsInt64(), 20);            // max
  EXPECT_EQ(rows.at("b")[1].AsInt64(), 1);
}

TEST_F(HashAggregateOpTest, PurgeBucketsDropsGroups) {
  ASSERT_TRUE(Feed("a", 1, 3).ok());
  ASSERT_TRUE(Feed("b", 2, 5).ok());
  agg_->PurgeBuckets({3});
  EXPECT_EQ(agg_->GroupCount(), 1u);
  auto rows = FinishAndIndex();
  EXPECT_EQ(rows.count("a"), 0u);
  EXPECT_EQ(rows.count("b"), 1u);
}

TEST_F(HashAggregateOpTest, RebuildAfterPurgeMatches) {
  ASSERT_TRUE(Feed("a", 10, 3).ok());
  ASSERT_TRUE(Feed("a", 20, 3).ok());
  agg_->PurgeBuckets({3});
  ASSERT_TRUE(Feed("a", 10, 3).ok());
  ASSERT_TRUE(Feed("a", 20, 3).ok());
  auto rows = FinishAndIndex();
  EXPECT_EQ(rows.at("a")[2].AsInt64(), 30);
}

TEST_F(HashAggregateOpTest, FinishOnEmptyStateEmitsNothing) {
  auto rows = FinishAndIndex();
  EXPECT_TRUE(rows.empty());
}

TEST_F(HashAggregateOpTest, InvalidPortRejected) {
  EXPECT_TRUE(agg_->Process(1, Tuple(schema_, {Value("a"), Value(int64_t{1})}),
                            0, &ctx_)
                  .IsInvalidArgument());
}

// ---- End-to-end ---------------------------------------------------------------

std::map<std::string, int64_t> ReferenceCounts(const Table& interactions) {
  std::map<std::string, int64_t> counts;
  for (const Tuple& row : interactions.rows()) {
    counts[row[0].AsString()]++;
  }
  return counts;
}

struct AggGrid {
  explicit AggGrid(int evaluators, bool adaptive, uint64_t seed = 1) {
    GridOptions options;
    options.num_evaluators = evaluators;
    options.adaptive = adaptive;
    setup = std::make_unique<GridSetup>(options);
    EXPECT_TRUE(setup->Initialize().ok());
    ProteinSequencesSpec seq_spec;
    seq_spec.num_rows = 200;
    seq_spec.sequence_length = 30;
    seq_spec.seed = seed;
    EXPECT_TRUE(setup->AddTable(GenerateProteinSequences(seq_spec)).ok());
    ProteinInteractionsSpec inter_spec;
    inter_spec.num_rows = 800;
    inter_spec.num_orfs = 200;
    inter_spec.seed = seed + 5;
    interactions = GenerateProteinInteractions(inter_spec);
    EXPECT_TRUE(setup->AddTable(interactions).ok());
  }
  std::unique_ptr<GridSetup> setup;
  TablePtr interactions;
};

TEST(AggregateEndToEndTest, GroupedCountMatchesReference) {
  AggGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto query = grid.setup->gdqs()->SubmitQuery(
      "select i.orf1, count(*) from protein_interactions i group by i.orf1",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  grid.setup->simulator()->RunToCompletion();
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const auto expected = ReferenceCounts(*grid.interactions);
  ASSERT_EQ(result->rows.size(), expected.size());
  for (const Tuple& row : result->rows) {
    EXPECT_EQ(row[1].AsInt64(), expected.at(row[0].AsString()))
        << "group " << row[0].AsString();
  }
}

TEST(AggregateEndToEndTest, GlobalCountMatches) {
  AggGrid grid(2, false);
  QueryOptions options;
  options.adaptivity.enabled = false;
  auto query = grid.setup->gdqs()->SubmitQuery(
      "select count(*), min(i.orf1), max(i.orf1) "
      "from protein_interactions i",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  grid.setup->simulator()->RunToCompletion();
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt64(), 800);
}

TEST(AggregateEndToEndTest, AdaptiveRepartitioningPreservesGroups) {
  AggGrid grid(3, true, 7);
  // Slow down one machine's aggregate processing drastically.
  ASSERT_TRUE(grid.setup
                  ->PerturbEvaluator(0, "op:hash_aggregate",
                                     std::make_shared<
                                         AddedDelayPerturbation>(5.0))
                  .ok());
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kRetrospective;
  options.adaptivity.thres_a = 0.10;
  options.adaptivity.thres_m = 0.10;
  options.exec.buffer_tuples = 20;
  options.exec.checkpoint_interval = 10;
  auto query = grid.setup->gdqs()->SubmitQuery(
      "select i.orf1, count(*) from protein_interactions i group by i.orf1",
      options);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  grid.setup->simulator()->RunToCompletion();
  ASSERT_TRUE(grid.setup->gdqs()->QueryComplete(*query));
  ASSERT_TRUE(grid.setup->gdqs()->ExecutionStatus(*query).ok());
  auto result = grid.setup->gdqs()->GetResult(*query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every group exactly once, every count exact — despite partial
  // aggregates having been purged and rebuilt on other machines.
  const auto expected = ReferenceCounts(*grid.interactions);
  ASSERT_EQ(result->rows.size(), expected.size());
  for (const Tuple& row : result->rows) {
    EXPECT_EQ(row[1].AsInt64(), expected.at(row[0].AsString()))
        << "group " << row[0].AsString();
  }
}

TEST(AggregateEndToEndTest, StatefulAggregateRejectsProspective) {
  AggGrid grid(2, true);
  QueryOptions options;
  options.adaptivity.enabled = true;
  options.adaptivity.response = ResponseType::kProspective;
  auto query = grid.setup->gdqs()->SubmitQuery(
      "select i.orf1, count(*) from protein_interactions i group by i.orf1",
      options);
  ASSERT_FALSE(query.ok());
  EXPECT_TRUE(query.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gqp
