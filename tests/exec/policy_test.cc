#include "exec/distribution_policy.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

#include "storage/datagen.h"

namespace gqp {
namespace {

Tuple KeyTuple(const std::string& key) {
  static SchemaPtr schema = MakeSchema({{"orf", DataType::kString}});
  return Tuple(schema, {Value(key)});
}

// ---- Weight validation ------------------------------------------------------

TEST(WeightsTest, ValidatesSumAndSign) {
  EXPECT_TRUE(ValidateWeights({0.5, 0.5}, 2).ok());
  EXPECT_TRUE(ValidateWeights({0.5, 0.5}, 3).IsInvalidArgument());
  EXPECT_TRUE(ValidateWeights({0.7, 0.7}, 2).IsInvalidArgument());
  EXPECT_TRUE(ValidateWeights({-0.2, 1.2}, 2).IsInvalidArgument());
  EXPECT_TRUE(ValidateWeights({1.0}, 1).ok());
}

// ---- Weighted round-robin ---------------------------------------------------

TEST(WeightedRoundRobinTest, UniformWeightsCycle) {
  WeightedRoundRobinPolicy policy({0.5, 0.5});
  std::map<int, int> counts;
  for (int i = 0; i < 100; ++i) {
    int bucket = 99;
    counts[policy.Route(KeyTuple("k"), &bucket)]++;
    EXPECT_EQ(bucket, -1);
  }
  EXPECT_EQ(counts[0], 50);
  EXPECT_EQ(counts[1], 50);
}

/// Property: over N tuples, each consumer receives within 1 tuple of its
/// exact share, for a sweep of weight vectors.
class WrrProportionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(WrrProportionTest, SharesMatchWeights) {
  const std::vector<double> weights = GetParam();
  WeightedRoundRobinPolicy policy(weights);
  const int n = 1000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(policy.Route(KeyTuple("k"), nullptr))]++;
  }
  for (size_t c = 0; c < weights.size(); ++c) {
    EXPECT_NEAR(counts[c], weights[c] * n, weights.size() + 1.0)
        << "consumer " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightSweep, WrrProportionTest,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{0.5, 0.5},
                      std::vector<double>{0.9, 0.1},
                      std::vector<double>{10.0 / 11, 1.0 / 11},
                      std::vector<double>{0.5, 0.3, 0.2},
                      std::vector<double>{0.25, 0.25, 0.25, 0.25},
                      std::vector<double>{0.7, 0.1, 0.1, 0.1}));

TEST(WeightedRoundRobinTest, UpdateWeightsChangesShares) {
  WeightedRoundRobinPolicy policy({0.5, 0.5});
  ASSERT_TRUE(policy.UpdateWeights({0.9, 0.1}).ok());
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 1000; ++i) {
    counts[static_cast<size_t>(policy.Route(KeyTuple("k"), nullptr))]++;
  }
  EXPECT_NEAR(counts[0], 900, 5);
}

TEST(WeightedRoundRobinTest, UpdateReportsNoBucketMoves) {
  WeightedRoundRobinPolicy policy({0.5, 0.5});
  auto moves = policy.UpdateWeights({0.3, 0.7});
  ASSERT_TRUE(moves.ok());
  EXPECT_TRUE(moves->empty());
}

TEST(WeightedRoundRobinTest, InvalidUpdateRejected) {
  WeightedRoundRobinPolicy policy({0.5, 0.5});
  EXPECT_FALSE(policy.UpdateWeights({0.5, 0.6}).ok());
  EXPECT_FALSE(policy.UpdateWeights({1.0}).ok());
}

// ---- Hash buckets -----------------------------------------------------------

TEST(HashBucketTest, InitialOwnershipProportional) {
  HashBucketPolicy policy(120, 0, {0.5, 0.25, 0.25});
  std::vector<int> counts(3, 0);
  for (int b = 0; b < 120; ++b) counts[static_cast<size_t>(policy.OwnerOf(b))]++;
  EXPECT_EQ(counts[0], 60);
  EXPECT_EQ(counts[1], 30);
  EXPECT_EQ(counts[2], 30);
}

TEST(HashBucketTest, RoutingIsDeterministicByKey) {
  HashBucketPolicy a(120, 0, {0.5, 0.5});
  HashBucketPolicy b(120, 0, {0.5, 0.5});
  for (int i = 0; i < 200; ++i) {
    int bucket_a = -1, bucket_b = -1;
    const Tuple t = KeyTuple(OrfKey(static_cast<size_t>(i)));
    EXPECT_EQ(a.Route(t, &bucket_a), b.Route(t, &bucket_b));
    EXPECT_EQ(bucket_a, bucket_b);
    EXPECT_EQ(bucket_a, a.BucketOf(t));
  }
}

TEST(HashBucketTest, EqualKeysSameBucket) {
  HashBucketPolicy policy(120, 0, {0.3, 0.7});
  int b1 = -1, b2 = -1;
  policy.Route(KeyTuple("ORF00123"), &b1);
  policy.Route(KeyTuple("ORF00123"), &b2);
  EXPECT_EQ(b1, b2);
}

TEST(HashBucketTest, UpdateMovesMinimalBuckets) {
  HashBucketPolicy policy(100, 0, {0.5, 0.5});
  auto moves = policy.UpdateWeights({0.7, 0.3});
  ASSERT_TRUE(moves.ok());
  // Exactly 20 buckets change hands (50 -> 70).
  EXPECT_EQ(moves->size(), 20u);
  for (const BucketMove& m : *moves) {
    EXPECT_EQ(m.from_consumer, 1);
    EXPECT_EQ(m.to_consumer, 0);
    EXPECT_EQ(policy.OwnerOf(m.bucket), 0);
  }
}

TEST(HashBucketTest, UpdateToSameWeightsMovesNothing) {
  HashBucketPolicy policy(120, 0, {0.5, 0.5});
  auto moves = policy.UpdateWeights({0.5, 0.5});
  ASSERT_TRUE(moves.ok());
  EXPECT_TRUE(moves->empty());
}

/// Property: two policies applying the same weight-update sequence stay in
/// lockstep (the invariant the build and probe exchanges of a partitioned
/// join rely on).
class HashLockstepTest
    : public ::testing::TestWithParam<std::vector<std::vector<double>>> {};

TEST_P(HashLockstepTest, IdenticalUpdateSequencesKeepIdenticalMaps) {
  HashBucketPolicy a(120, 0, {0.5, 0.5});
  HashBucketPolicy b(120, 1, {0.5, 0.5});  // different key col is fine
  for (const auto& weights : GetParam()) {
    ASSERT_TRUE(a.UpdateWeights(weights).ok());
    ASSERT_TRUE(b.UpdateWeights(weights).ok());
    EXPECT_EQ(a.owner_map(), b.owner_map());
  }
}

INSTANTIATE_TEST_SUITE_P(
    UpdateSequences, HashLockstepTest,
    ::testing::Values(
        std::vector<std::vector<double>>{{0.9, 0.1}},
        std::vector<std::vector<double>>{{0.7, 0.3}, {0.2, 0.8}},
        std::vector<std::vector<double>>{{0.6, 0.4}, {0.6, 0.4}, {0.1, 0.9}},
        std::vector<std::vector<double>>{
            {10.0 / 11, 1.0 / 11}, {0.5, 0.5}, {1.0 / 3, 2.0 / 3}}));

/// Property: every bucket always has exactly one owner and the counts
/// match the largest-remainder apportionment after arbitrary updates.
TEST(HashBucketTest, OwnershipPartitionInvariant) {
  Rng rng(99);
  HashBucketPolicy policy(120, 0, {0.25, 0.25, 0.25, 0.25});
  for (int round = 0; round < 50; ++round) {
    std::vector<double> w(4);
    double total = 0;
    for (double& x : w) {
      x = rng.NextDouble(0.05, 1.0);
      total += x;
    }
    for (double& x : w) x /= total;
    ASSERT_TRUE(policy.UpdateWeights(w).ok());
    std::vector<int> counts(4, 0);
    int owned = 0;
    for (int b = 0; b < 120; ++b) {
      const int owner = policy.OwnerOf(b);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, 4);
      counts[static_cast<size_t>(owner)]++;
      ++owned;
    }
    EXPECT_EQ(owned, 120);
    int total_count = 0;
    for (size_t c = 0; c < 4; ++c) {
      total_count += counts[c];
      EXPECT_NEAR(counts[c], w[c] * 120, 1.5) << "consumer " << c;
    }
    EXPECT_EQ(total_count, 120);
  }
}

TEST(HashBucketTest, OwnerOfOutOfRange) {
  HashBucketPolicy policy(10, 0, {1.0});
  EXPECT_EQ(policy.OwnerOf(-1), -1);
  EXPECT_EQ(policy.OwnerOf(10), -1);
}

// ---- Factory -----------------------------------------------------------------

TEST(PolicyFactoryTest, BuildsByKind) {
  ExchangeDesc rr;
  rr.policy = PolicyKind::kWeightedRoundRobin;
  auto p1 = MakePolicy(rr, {0.5, 0.5});
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ((*p1)->kind(), PolicyKind::kWeightedRoundRobin);

  ExchangeDesc hash;
  hash.policy = PolicyKind::kHashBuckets;
  hash.num_buckets = 64;
  hash.key_col = 0;
  auto p2 = MakePolicy(hash, {0.5, 0.5});
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ((*p2)->kind(), PolicyKind::kHashBuckets);
}

TEST(PolicyFactoryTest, EmptyWeightsRejected) {
  ExchangeDesc rr;
  rr.policy = PolicyKind::kWeightedRoundRobin;
  EXPECT_FALSE(MakePolicy(rr, {}).ok());
}

}  // namespace
}  // namespace gqp
