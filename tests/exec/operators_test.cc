#include "exec/operators.h"

#include <gtest/gtest.h>

#include "plan/cost_model.h"
#include "storage/datagen.h"

namespace gqp {
namespace {

SchemaPtr SeqSchema() {
  return MakeSchema({{"orf", DataType::kString},
                     {"sequence", DataType::kString}});
}

Tuple SeqRow(const std::string& orf, const std::string& seq) {
  return Tuple(SeqSchema(), {Value(orf), Value(seq)});
}

TEST(OperatorFactoryTest, RejectsScan) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kScan;
  EXPECT_FALSE(MakeOperator(desc).ok());
}

TEST(FilterOperatorTest, DropsNonMatching) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kFilter;
  desc.predicate = Cmp(CompareOp::kEq, Col(0, "orf"), Lit(Value("A")));
  desc.base_cost_ms = 0.1;
  desc.cost_tag = "op:filter";
  FilterOperator filter(desc);
  ExecContext ctx;
  ASSERT_TRUE(filter.Process(0, SeqRow("A", "x"), -1, &ctx).ok());
  ASSERT_TRUE(filter.Process(0, SeqRow("B", "x"), -1, &ctx).ok());
  ASSERT_EQ(ctx.out.size(), 1u);
  EXPECT_EQ(ctx.out[0][0].AsString(), "A");
  // Cost charged for both evaluations.
  EXPECT_EQ(ctx.charges.size(), 2u);
}

TEST(ProjectOperatorTest, ComputesExpressions) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kProject;
  desc.exprs = {Call("LENGTH", {Col(1, "sequence")}), Col(0, "orf")};
  desc.out_schema = MakeSchema(
      {{"len", DataType::kInt64}, {"orf", DataType::kString}});
  ProjectOperator project(desc);
  ExecContext ctx;
  ASSERT_TRUE(project.Process(0, SeqRow("K", "abcde"), -1, &ctx).ok());
  ASSERT_EQ(ctx.out.size(), 1u);
  EXPECT_EQ(ctx.out[0][0].AsInt64(), 5);
  EXPECT_EQ(ctx.out[0][1].AsString(), "K");
}

TEST(OperationCallOperatorTest, AppendsComputedColumn) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kOperationCall;
  desc.ws_name = "EntropyAnalyser";
  desc.arg_col = 1;
  desc.base_cost_ms = 0.25;
  desc.cost_tag = CostModel::WsTag("EntropyAnalyser");
  desc.out_schema = MakeSchema({{"orf", DataType::kString},
                                {"sequence", DataType::kString},
                                {"e", DataType::kDouble}});
  OperationCallOperator op(desc);
  ExecContext ctx;
  ASSERT_TRUE(op.Process(0, SeqRow("K", "abab"), -1, &ctx).ok());
  ASSERT_EQ(ctx.out.size(), 1u);
  ASSERT_EQ(ctx.out[0].size(), 3u);
  EXPECT_DOUBLE_EQ(ctx.out[0][2].AsDouble(), 1.0);
  ASSERT_EQ(ctx.charges.size(), 1u);
  EXPECT_EQ(ctx.charges[0].first, "ws:EntropyAnalyser");
}

TEST(OperationCallOperatorTest, BadArgColumnFails) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kOperationCall;
  desc.ws_name = "EntropyAnalyser";
  desc.arg_col = 9;
  OperationCallOperator op(desc);
  ExecContext ctx;
  EXPECT_TRUE(op.Process(0, SeqRow("K", "x"), -1, &ctx).IsOutOfRange());
}

class HashJoinTest : public ::testing::Test {
 protected:
  HashJoinTest() {
    PhysOpDesc desc;
    desc.kind = PhysOpKind::kHashJoin;
    desc.build_key = 0;
    desc.probe_key = 0;
    desc.base_cost_ms = 0.1;
    desc.build_cost_ms = 0.05;
    desc.cost_tag = "op:hash_join";
    desc.out_schema = MakeSchema({{"orf", DataType::kString},
                                  {"sequence", DataType::kString},
                                  {"orf1", DataType::kString},
                                  {"orf2", DataType::kString}});
    join_ = std::make_unique<HashJoinOperator>(desc);
  }

  SchemaPtr ProbeSchema() {
    return MakeSchema({{"orf1", DataType::kString},
                       {"orf2", DataType::kString}});
  }
  Tuple ProbeRow(const std::string& orf1, const std::string& orf2) {
    return Tuple(ProbeSchema(), {Value(orf1), Value(orf2)});
  }

  std::unique_ptr<HashJoinOperator> join_;
  ExecContext ctx_;
};

TEST_F(HashJoinTest, BuildRetainsTuples) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  EXPECT_TRUE(ctx_.retained);
  EXPECT_TRUE(ctx_.out.empty());
  EXPECT_EQ(join_->StateSize(), 1u);
  EXPECT_EQ(join_->StateSizeForBucket(3), 1u);
}

TEST_F(HashJoinTest, ProbeEmitsMatches) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("A", "B"), 3, &ctx_).ok());
  ASSERT_EQ(ctx_.out.size(), 1u);
  EXPECT_EQ(ctx_.out[0].size(), 4u);
  EXPECT_EQ(ctx_.out[0][0].AsString(), "A");
  EXPECT_EQ(ctx_.out[0][3].AsString(), "B");
  EXPECT_FALSE(ctx_.retained);
}

TEST_F(HashJoinTest, ProbeMissEmitsNothing) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("Z", "B"), 3, &ctx_).ok());
  EXPECT_TRUE(ctx_.out.empty());
}

TEST_F(HashJoinTest, DuplicateBuildKeysAllMatch) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s2"), 3, &ctx_).ok());
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("A", "B"), 3, &ctx_).ok());
  EXPECT_EQ(ctx_.out.size(), 2u);
}

TEST_F(HashJoinTest, ProbeOnlySeesOwnBucket) {
  // Equal keys always share a bucket in production; a mismatched bucket
  // (as after a partition purge) must find nothing.
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("A", "B"), 4, &ctx_).ok());
  EXPECT_TRUE(ctx_.out.empty());
}

TEST_F(HashJoinTest, PurgeBucketsDropsState) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  ASSERT_TRUE(join_->Process(0, SeqRow("B", "s2"), 5, &ctx_).ok());
  join_->PurgeBuckets({3});
  EXPECT_EQ(join_->StateSize(), 1u);
  EXPECT_EQ(join_->StateSizeForBucket(3), 0u);
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("A", "x"), 3, &ctx_).ok());
  EXPECT_TRUE(ctx_.out.empty());
}

TEST_F(HashJoinTest, StateRebuildAfterPurge) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  join_->PurgeBuckets({3});
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  EXPECT_EQ(join_->duplicate_build_inserts(), 0u);
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("A", "B"), 3, &ctx_).ok());
  EXPECT_EQ(ctx_.out.size(), 1u);
}

TEST_F(HashJoinTest, DuplicateInsertDetectorFires) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), 3, &ctx_).ok());
  EXPECT_EQ(join_->duplicate_build_inserts(), 1u);
}

TEST_F(HashJoinTest, NegativeBucketNormalizedToZero) {
  ASSERT_TRUE(join_->Process(0, SeqRow("A", "s1"), -1, &ctx_).ok());
  ctx_.ResetForTuple();
  ASSERT_TRUE(join_->Process(1, ProbeRow("A", "B"), -1, &ctx_).ok());
  EXPECT_EQ(ctx_.out.size(), 1u);
}

TEST_F(HashJoinTest, InvalidPortFails) {
  EXPECT_TRUE(
      join_->Process(2, SeqRow("A", "s"), 0, &ctx_).IsInvalidArgument());
}

TEST(CollectOperatorTest, AccumulatesResults) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kCollect;
  desc.base_cost_ms = 0.01;
  desc.cost_tag = "op:collect";
  CollectOperator collect(desc);
  ExecContext ctx;
  ASSERT_TRUE(collect.Process(0, SeqRow("A", "x"), -1, &ctx).ok());
  ASSERT_TRUE(collect.Process(0, SeqRow("B", "y"), -1, &ctx).ok());
  EXPECT_EQ(collect.results().size(), 2u);
  EXPECT_TRUE(ctx.out.empty());  // collect is a sink
}

TEST(OperatorChainTest, EmitFlowsThroughChain) {
  PhysOpDesc filter_desc;
  filter_desc.kind = PhysOpKind::kFilter;
  filter_desc.predicate =
      Cmp(CompareOp::kNe, Col(0, "orf"), Lit(Value("skip")));
  FilterOperator filter(filter_desc);

  PhysOpDesc project_desc;
  project_desc.kind = PhysOpKind::kProject;
  project_desc.exprs = {Col(0, "orf")};
  project_desc.out_schema = MakeSchema({{"orf", DataType::kString}});
  ProjectOperator project(project_desc);

  filter.set_next(&project);
  ExecContext ctx;
  ASSERT_TRUE(filter.Process(0, SeqRow("keep", "x"), -1, &ctx).ok());
  ASSERT_TRUE(filter.Process(0, SeqRow("skip", "x"), -1, &ctx).ok());
  ASSERT_EQ(ctx.out.size(), 1u);
  EXPECT_EQ(ctx.out[0].size(), 1u);
}

TEST(ExecContextTest, ResetClearsPerTupleState) {
  ExecContext ctx;
  ctx.Charge("a", 1.0);
  ctx.retained = true;
  ctx.out.push_back(SeqRow("x", "y"));
  ctx.ResetForTuple();
  EXPECT_TRUE(ctx.charges.empty());
  EXPECT_FALSE(ctx.retained);
  EXPECT_TRUE(ctx.out.empty());
}

TEST(ExecContextTest, TotalBaseCostSums) {
  ExecContext ctx;
  ctx.Charge("a", 1.5);
  ctx.Charge("b", 2.5);
  EXPECT_DOUBLE_EQ(ctx.TotalBaseCost(), 4.0);
}

}  // namespace
}  // namespace gqp
