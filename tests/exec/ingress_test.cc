// IngressManager unit tests: per-port EOS bookkeeping, duplicate-EOS
// dedup, and the epoch fence that makes a lost producer's late messages
// inert (recovery owns its rows from the moment it is reported).

#include "exec/ingress.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(IngressTest, EosCompletionPerPort) {
  IngressManager ingress;
  ingress.AddPort(2);
  ingress.AddPort(1);

  EXPECT_FALSE(ingress.EosComplete(0));
  ingress.MarkEos(0, "q1.f0.i0");
  EXPECT_FALSE(ingress.EosComplete(0));
  EXPECT_FALSE(ingress.AllEosComplete());
  ingress.MarkEos(0, "q1.f0.i1");
  EXPECT_TRUE(ingress.EosComplete(0));
  EXPECT_FALSE(ingress.AllEosComplete());
  ingress.MarkEos(1, "q1.f1.i0");
  EXPECT_TRUE(ingress.AllEosComplete());
}

TEST(IngressTest, DuplicateEosCountsOnce) {
  IngressManager ingress;
  ingress.AddPort(2);
  ingress.MarkEos(0, "p");
  ingress.MarkEos(0, "p");
  EXPECT_EQ(ingress.eos_count(0), 1u);
  EXPECT_FALSE(ingress.EosComplete(0));
}

TEST(IngressTest, LostProducerIsFencedAndStopsBlockingEos) {
  IngressManager ingress;
  ingress.AddPort(2);
  ingress.MarkEos(0, "alive");

  EXPECT_FALSE(ingress.Fenced(0, "dead"));
  ingress.MarkLost(0, "dead");
  EXPECT_TRUE(ingress.Fenced(0, "dead"));
  EXPECT_FALSE(ingress.Fenced(0, "alive"));
  // The crashed producer's stream is over as far as recovery is
  // concerned: the port no longer waits for its EOS.
  EXPECT_TRUE(ingress.EosComplete(0));
  EXPECT_EQ(ingress.lost_count(0), 1u);
}

TEST(IngressTest, LateEosFromFencedProducerIsIgnored) {
  IngressManager ingress;
  ingress.AddPort(1);
  ingress.MarkLost(0, "dead");
  ingress.MarkEos(0, "dead");
  EXPECT_EQ(ingress.eos_count(0), 0u);
  EXPECT_TRUE(ingress.EosComplete(0));
}

TEST(IngressTest, EosThenLostDoesNotDoubleCount) {
  IngressManager ingress;
  ingress.AddPort(2);
  // EOS arrives, then the producer is reported crashed (e.g. it died after
  // finishing): the port still needs the second producer.
  ingress.MarkEos(0, "p0");
  ingress.MarkLost(0, "p0");
  EXPECT_FALSE(ingress.EosComplete(0));
  ingress.MarkEos(0, "p1");
  EXPECT_TRUE(ingress.EosComplete(0));
}

TEST(IngressTest, OutOfRangePortsAreNeverFencedAndInvalid) {
  IngressManager ingress;
  ingress.AddPort(1);
  EXPECT_TRUE(ingress.ValidPort(0));
  EXPECT_FALSE(ingress.ValidPort(-1));
  EXPECT_FALSE(ingress.ValidPort(1));
  EXPECT_FALSE(ingress.Fenced(1, "p"));
  EXPECT_FALSE(ingress.Fenced(-1, "p"));
}

}  // namespace
}  // namespace gqp
