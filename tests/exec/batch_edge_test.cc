// Pinned regression tests for batch-execution edge cases (DESIGN.md
// §D13): empty batches, masks that filter every row, probe batches whose
// join fan-out overflows the input batch width, state purged between
// batches, and full freeze/thaw state-move rounds applied while the
// executor steps batch-at-a-time (seeded chaos pins).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/runner.h"
#include "chaos/scenario.h"
#include "exec/operators.h"
#include "storage/tuple_batch.h"

namespace gqp {
namespace {

SchemaPtr SeqSchema() {
  return MakeSchema(
      {{"orf", DataType::kString}, {"sequence", DataType::kString}});
}

Tuple SeqRow(const std::string& orf, const std::string& seq) {
  return Tuple(SeqSchema(), {Value(orf), Value(seq)});
}

std::unique_ptr<FilterOperator> MakeFilter(const std::string& keep_orf) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kFilter;
  desc.predicate = Cmp(CompareOp::kEq, Col(0, "orf"), Lit(Value(keep_orf)));
  desc.base_cost_ms = 0.1;
  desc.cost_tag = "op:filter";
  return std::make_unique<FilterOperator>(desc);
}

std::unique_ptr<HashJoinOperator> MakeJoin() {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kHashJoin;
  desc.build_key = 0;
  desc.probe_key = 0;
  desc.base_cost_ms = 0.1;
  desc.build_cost_ms = 0.05;
  desc.cost_tag = "op:hash_join";
  desc.out_schema = MakeSchema({{"orf", DataType::kString},
                                {"sequence", DataType::kString},
                                {"orf_p", DataType::kString},
                                {"sequence_p", DataType::kString}});
  return std::make_unique<HashJoinOperator>(desc);
}

TEST(BatchEdgeTest, EmptyBatchChargesNothingEmitsNothing) {
  auto filter = MakeFilter("A");
  ExecContext ctx;
  ctx.ResetForBatch(0);
  TupleBatch in, out;
  ASSERT_TRUE(filter->ProcessBatch(0, &in, &out, &ctx).ok());
  EXPECT_EQ(out.size(), 0u);
  // Scalar mode charges nothing for zero tuples; ChargeN must match.
  EXPECT_TRUE(ctx.charges.empty());
  EXPECT_EQ(ctx.ledger.TotalCount(), 0u);

  auto join = MakeJoin();
  ASSERT_TRUE(join->ProcessBatch(0, &in, &out, &ctx).ok());
  ASSERT_TRUE(join->ProcessBatch(1, &in, &out, &ctx).ok());
  EXPECT_TRUE(ctx.charges.empty());
}

TEST(BatchEdgeTest, AllRowsFilteredStillChargedPerRow) {
  auto filter = MakeFilter("NOPE");
  ExecContext ctx;
  ctx.ResetForBatch(5);
  TupleBatch in, out;
  for (uint32_t i = 0; i < 5; ++i) {
    in.Append(SeqRow("ORF" + std::to_string(i), "acgt"), -1, i);
  }
  ASSERT_TRUE(filter->ProcessBatch(0, &in, &out, &ctx).ok());
  EXPECT_EQ(out.size(), 0u);
  // The predicate ran over every row even though none survived.
  ASSERT_EQ(ctx.ledger.entries.size(), 1u);
  EXPECT_EQ(ctx.ledger.entries[0].count, 5u);
  // No row was absorbed into state: nothing is marked retained.
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(ctx.row_retained[i], 0);
}

TEST(BatchEdgeTest, ProbeFanOutOverflowsInputBatchWidth) {
  // 12 duplicate-key build rows; a 4-row probe batch then fans out to 48
  // outputs — 12x wider than the input batch. Origins must stay grouped
  // and non-decreasing so the executor can ack per input row.
  auto join = MakeJoin();
  ExecContext ctx;
  ctx.ResetForBatch(12);
  TupleBatch build, out;
  for (uint32_t i = 0; i < 12; ++i) {
    build.Append(SeqRow("K", "s" + std::to_string(i)), 0, i);
  }
  ASSERT_TRUE(join->ProcessBatch(0, &build, &out, &ctx).ok());
  EXPECT_EQ(out.size(), 0u);
  for (size_t i = 0; i < 12; ++i) EXPECT_EQ(ctx.row_retained[i], 1);

  ctx.ResetForBatch(4);
  TupleBatch probe;
  for (uint32_t i = 0; i < 4; ++i) {
    probe.Append(SeqRow("K", "p" + std::to_string(i)), 0, i);
  }
  out.Clear();
  ASSERT_TRUE(join->ProcessBatch(1, &probe, &out, &ctx).ok());
  ASSERT_EQ(out.size(), 48u);
  uint32_t prev_origin = 0;
  std::vector<size_t> per_origin(4, 0);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.origin(i), prev_origin) << "origins must be non-decreasing";
    prev_origin = out.origin(i);
    ASSERT_LT(out.origin(i), 4u);
    ++per_origin[out.origin(i)];
    EXPECT_EQ(out.tuple(i).size(), 4u);
  }
  for (size_t o = 0; o < 4; ++o) EXPECT_EQ(per_origin[o], 12u);
}

TEST(BatchEdgeTest, PurgeBetweenBatchesDropsThenRebuilds) {
  // The freeze half of a state move at a batch boundary: build a batch,
  // purge the bucket (as a StateMoveRequest would), verify probes find
  // nothing, then rebuild (the thaw at the new owner) and probe again.
  auto join = MakeJoin();
  ExecContext ctx;
  ctx.ResetForBatch(3);
  TupleBatch build, out;
  for (uint32_t i = 0; i < 3; ++i) {
    build.Append(SeqRow("K", "s" + std::to_string(i)), 2, i);
  }
  ASSERT_TRUE(join->ProcessBatch(0, &build, &out, &ctx).ok());
  EXPECT_EQ(join->StateSizeForBucket(2), 3u);

  join->PurgeBuckets({2});
  EXPECT_EQ(join->StateSize(), 0u);

  ctx.ResetForBatch(1);
  TupleBatch probe;
  probe.Append(SeqRow("K", "p"), 2, 0);
  out.Clear();
  ASSERT_TRUE(join->ProcessBatch(1, &probe, &out, &ctx).ok());
  EXPECT_EQ(out.size(), 0u);

  // Rebuild from the (recovery-logged) inputs; no duplicate-insert alarm.
  ctx.ResetForBatch(3);
  TupleBatch rebuild;
  for (uint32_t i = 0; i < 3; ++i) {
    rebuild.Append(SeqRow("K", "s" + std::to_string(i)), 2, i);
  }
  out.Clear();
  ASSERT_TRUE(join->ProcessBatch(0, &rebuild, &out, &ctx).ok());
  EXPECT_EQ(join->duplicate_build_inserts(), 0u);

  ctx.ResetForBatch(1);
  TupleBatch probe2;
  probe2.Append(SeqRow("K", "p"), 2, 0);
  out.Clear();
  ASSERT_TRUE(join->ProcessBatch(1, &probe2, &out, &ctx).ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST(BatchEdgeTest, CompactKeepsSurvivorsInOrder) {
  TupleBatch batch;
  for (uint32_t i = 0; i < 6; ++i) {
    batch.Append(SeqRow("ORF" + std::to_string(i), "x"), -1, i);
  }
  const std::vector<unsigned char> mask = {1, 0, 0, 1, 1, 0};
  batch.Compact(mask);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.tuple(0)[0].AsString(), "ORF0");
  EXPECT_EQ(batch.tuple(1)[0].AsString(), "ORF3");
  EXPECT_EQ(batch.tuple(2)[0].AsString(), "ORF4");
  EXPECT_EQ(batch.origin(2), 4u);
}

// Freeze/thaw under batch stepping, end to end: these pinned seeds apply
// full state-move rounds (freeze -> redirect -> purge -> resend -> thaw)
// while every fragment steps batch-at-a-time, and every invariant —
// result multiset vs. the unperturbed oracle included — must still hold.
// Seed 87 is the historical duplicate-build-insert scenario; its 8 rounds
// include recovery resends racing in-flight batches.
struct VecStateMovePin {
  uint64_t seed;
  uint64_t min_rounds_applied;
};

class VecStateMoveTest : public ::testing::TestWithParam<VecStateMovePin> {};

TEST_P(VecStateMoveTest, RoundsApplyUnderBatchExecution) {
  const VecStateMovePin& pin = GetParam();
  chaos::ChaosScenario scenario = chaos::GenerateScenario(pin.seed);
  scenario.vectorized = true;
  const chaos::ChaosRunResult result = chaos::RunScenario(scenario);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.ok()) << result.Report();
  EXPECT_TRUE(result.completed);
  // The scenario must actually exercise mid-run freeze/thaw; if a future
  // change stops these seeds from moving state, the pin has gone stale
  // and a new seed must be chosen.
  EXPECT_GE(result.stats.rounds_applied, pin.min_rounds_applied)
      << chaos::ReproCommand(pin.seed, chaos::ChaosProfile::kStandard, true);
}

INSTANTIATE_TEST_SUITE_P(
    PinnedSeeds, VecStateMoveTest,
    ::testing::Values(VecStateMovePin{13, 5}, VecStateMovePin{87, 8}),
    [](const ::testing::TestParamInfo<VecStateMovePin>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gqp
