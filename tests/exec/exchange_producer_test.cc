// Unit tests for the enhanced exchange producer, driven through fake
// hooks (no network): buffering, flushing, logging, acknowledgments, EOS
// deferral, and the retrospective state-move protocol.

#include "exec/exchange_producer.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

Tuple KeyTuple(const std::string& key) {
  static SchemaPtr schema = MakeSchema({{"orf", DataType::kString}});
  return Tuple(schema, {Value(key)});
}

struct SentMessage {
  int consumer;
  PayloadPtr payload;
};

/// A producer wired to instant, recording hooks.
struct Harness {
  explicit Harness(PolicyKind policy, int consumers = 2,
                   size_t buffer_tuples = 4) {
    OutputWiring wiring;
    wiring.desc.id = 7;
    wiring.desc.policy = policy;
    wiring.desc.key_col = 0;
    wiring.desc.num_buckets = 8;
    wiring.desc.consumer_port = 0;
    wiring.estimated_rows = 100;
    for (int c = 0; c < consumers; ++c) {
      SubplanId id{1, 2, c};
      wiring.consumers.push_back(
          ConsumerEndpoint{id, Address{static_cast<HostId>(2 + c),
                                       id.ToString()}});
      wiring.initial_weights.push_back(1.0 / consumers);
    }
    ExecConfig config;
    config.buffer_tuples = buffer_tuples;
    ExchangeProducer::Hooks hooks;
    hooks.send = [this](int idx, PayloadPtr payload) {
      sent.push_back({idx, std::move(payload)});
      return Status::OK();
    };
    hooks.submit_work = [](double, std::function<void()> done) {
      if (done) done();  // instant CPU
    };
    hooks.on_buffer_sent = [](int, double, size_t, size_t) {};
    hooks.on_round_done = [this](uint64_t round, bool applied) {
      outcomes.emplace_back(round, applied);
    };
    producer = std::make_unique<ExchangeProducer>(SubplanId{1, 0, 0}, wiring,
                                                  config, std::move(hooks));
    EXPECT_TRUE(producer->Open().ok());
  }

  /// Batches sent so far to one consumer.
  std::vector<const TupleBatchPayload*> BatchesTo(int consumer) {
    std::vector<const TupleBatchPayload*> out;
    for (const SentMessage& m : sent) {
      if (m.consumer != consumer) continue;
      if (const auto* batch = dynamic_cast<const TupleBatchPayload*>(
              m.payload.get())) {
        out.push_back(batch);
      }
    }
    return out;
  }

  template <typename T>
  std::vector<const T*> MessagesOfType() {
    std::vector<const T*> out;
    for (const SentMessage& m : sent) {
      if (const auto* p = dynamic_cast<const T*>(m.payload.get())) {
        out.push_back(p);
      }
    }
    return out;
  }

  std::vector<SentMessage> sent;
  std::vector<std::pair<uint64_t, bool>> outcomes;
  std::unique_ptr<ExchangeProducer> producer;
};

TEST(ExchangeProducerTest, BuffersUntilFull) {
  Harness h(PolicyKind::kWeightedRoundRobin, 2, 4);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  }
  // 6 tuples alternate between 2 consumers: both buffers hold 3.
  EXPECT_TRUE(h.sent.empty());
  ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  // The 7th fills one buffer of 4 and flushes it.
  EXPECT_EQ(h.sent.size(), 1u);
  ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  EXPECT_EQ(h.sent.size(), 2u);
}

TEST(ExchangeProducerTest, SeqsAreSequential) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  EXPECT_EQ(*h.producer->Offer(KeyTuple("a")), 1u);
  EXPECT_EQ(*h.producer->Offer(KeyTuple("b")), 2u);
  EXPECT_EQ(*h.producer->Offer(KeyTuple("c")), 3u);
}

TEST(ExchangeProducerTest, LogHoldsUnacknowledged) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  }
  EXPECT_EQ(h.producer->log_size(), 6u);
  h.producer->OnAck(AckPayload(7, SubplanId{1, 2, 0}, {1, 3, 5}));
  EXPECT_EQ(h.producer->log_size(), 3u);
}

TEST(ExchangeProducerTest, FinishInputFlushesAndSendsEos) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  ASSERT_TRUE(h.producer->FinishInput().ok());
  EXPECT_TRUE(h.producer->eos_sent());
  EXPECT_EQ(h.MessagesOfType<EosPayload>().size(), 2u);  // one per consumer
  // Offers after finish are rejected.
  EXPECT_TRUE(h.producer->Offer(KeyTuple("x")).status().IsFailedPrecondition());
}

TEST(ExchangeProducerTest, ProgressFraction) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  EXPECT_DOUBLE_EQ(h.producer->ProgressFraction(), 0.0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  }
  EXPECT_DOUBLE_EQ(h.producer->ProgressFraction(), 0.5);
  ASSERT_TRUE(h.producer->FinishInput().ok());
  EXPECT_DOUBLE_EQ(h.producer->ProgressFraction(), 1.0);
}

TEST(ExchangeProducerTest, ProspectiveRedistributeAppliesImmediately) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  RedistributeRequestPayload request(1, 2, {0.9, 0.1}, false);
  ASSERT_TRUE(h.producer->HandleRedistribute(request).ok());
  ASSERT_EQ(h.outcomes.size(), 1u);
  EXPECT_TRUE(h.outcomes[0].second);
  EXPECT_FALSE(h.producer->round_in_flight());
  EXPECT_EQ(h.producer->policy()->weights(),
            (std::vector<double>{0.9, 0.1}));
}

TEST(ExchangeProducerTest, RetrospectiveWaitsForReplies) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  }
  RedistributeRequestPayload request(1, 2, {1.0, 0.0}, true);
  ASSERT_TRUE(h.producer->HandleRedistribute(request).ok());
  EXPECT_TRUE(h.producer->round_in_flight());
  EXPECT_EQ(h.MessagesOfType<StateMoveRequestPayload>().size(), 2u);
  EXPECT_TRUE(h.outcomes.empty());

  // Consumer 0 processed seq 2; consumer 1 nothing.
  ASSERT_TRUE(h.producer
                  ->HandleStateMoveReply(StateMoveReplyPayload(
                      1, 7, SubplanId{1, 2, 0}, {2}, {}, 1))
                  .ok());
  EXPECT_TRUE(h.producer->round_in_flight());
  ASSERT_TRUE(h.producer
                  ->HandleStateMoveReply(StateMoveReplyPayload(
                      1, 7, SubplanId{1, 2, 1}, {}, {}, 2))
                  .ok());
  EXPECT_FALSE(h.producer->round_in_flight());
  ASSERT_EQ(h.outcomes.size(), 1u);
  EXPECT_TRUE(h.outcomes[0].second);
  EXPECT_EQ(h.producer->stats().resent_tuples, 5u);  // 6 minus processed {2}
  // All resends target consumer 0 (weight 1.0).
  size_t resent_to_0 = 0;
  for (const auto* batch : h.BatchesTo(0)) {
    if (batch->resend()) resent_to_0 += batch->tuples().size();
  }
  EXPECT_EQ(resent_to_0, 5u);
  // RestoreComplete markers follow the resends.
  EXPECT_EQ(h.MessagesOfType<RestoreCompletePayload>().size(), 2u);
}

TEST(ExchangeProducerTest, EosDeferredDuringRetrospectiveRound) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  RedistributeRequestPayload request(1, 2, {1.0, 0.0}, true);
  ASSERT_TRUE(h.producer->HandleRedistribute(request).ok());
  ASSERT_TRUE(h.producer->FinishInput().ok());
  EXPECT_FALSE(h.producer->eos_sent());  // deferred behind the round
  ASSERT_TRUE(h.producer
                  ->HandleStateMoveReply(StateMoveReplyPayload(
                      1, 7, SubplanId{1, 2, 0}, {}, {}, 0))
                  .ok());
  ASSERT_TRUE(h.producer
                  ->HandleStateMoveReply(StateMoveReplyPayload(
                      1, 7, SubplanId{1, 2, 1}, {}, {}, 1))
                  .ok());
  EXPECT_TRUE(h.producer->eos_sent());
}

TEST(ExchangeProducerTest, RejectsRoundWhenDoneAndLogEmpty) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  ASSERT_TRUE(h.producer->FinishInput().ok());
  h.producer->OnAck(AckPayload(7, SubplanId{1, 2, 0}, {1}));
  ASSERT_EQ(h.producer->log_size(), 0u);
  RedistributeRequestPayload request(1, 2, {1.0, 0.0}, true);
  ASSERT_TRUE(h.producer->HandleRedistribute(request).ok());
  ASSERT_EQ(h.outcomes.size(), 1u);
  EXPECT_FALSE(h.outcomes[0].second);  // rejected: nothing to move
}

TEST(ExchangeProducerTest, HashRetrospectiveMovesOnlyAffectedBuckets) {
  Harness h(PolicyKind::kHashBuckets, 2, 100);
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(h.producer->Offer(KeyTuple("K" + std::to_string(i))).ok());
  }
  RedistributeRequestPayload request(1, 2, {0.25, 0.75}, true);
  ASSERT_TRUE(h.producer->HandleRedistribute(request).ok());
  // Only the shrinking consumer (0) is asked to purge; the gainer just
  // parks, so exactly one reply is awaited.
  auto moves = h.MessagesOfType<StateMoveRequestPayload>();
  bool saw_loser = false;
  for (const auto* m : moves) {
    if (!m->buckets_lost().empty()) saw_loser = true;
    EXPECT_FALSE(m->purge_all());
  }
  EXPECT_TRUE(saw_loser);
  ASSERT_TRUE(h.producer
                  ->HandleStateMoveReply(StateMoveReplyPayload(
                      1, 7, SubplanId{1, 2, 0}, {}, {}, 0))
                  .ok());
  EXPECT_FALSE(h.producer->round_in_flight());
}

TEST(ExchangeProducerTest, DeadConsumerRecoveredWithoutReply) {
  Harness h(PolicyKind::kWeightedRoundRobin);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.producer->Offer(KeyTuple("k")).ok());
  }
  const size_t sent_before = h.sent.size();
  // Consumer 1 crashed: recovery round with only consumer 0 replying.
  RedistributeRequestPayload request(1, 2, {1.0, 0.0}, true, {1});
  ASSERT_TRUE(h.producer->HandleRedistribute(request).ok());
  ASSERT_TRUE(h.producer
                  ->HandleStateMoveReply(StateMoveReplyPayload(
                      1, 7, SubplanId{1, 2, 0}, {1, 3}, {}, 0))
                  .ok());
  EXPECT_FALSE(h.producer->round_in_flight());
  // 8 offered - 2 processed at the survivor = 6 recovered.
  EXPECT_EQ(h.producer->stats().resent_tuples, 6u);
  // Nothing further was sent to the dead consumer.
  for (size_t i = sent_before; i < h.sent.size(); ++i) {
    EXPECT_NE(h.sent[i].consumer, 1);
  }
}

TEST(ExchangeProducerTest, OnAckedHookFires) {
  OutputWiring wiring;
  wiring.desc.id = 1;
  wiring.desc.policy = PolicyKind::kWeightedRoundRobin;
  SubplanId cid{1, 2, 0};
  wiring.consumers.push_back(ConsumerEndpoint{cid, Address{2, "c"}});
  wiring.initial_weights = {1.0};
  ExchangeProducer::Hooks hooks;
  hooks.send = [](int, PayloadPtr) { return Status::OK(); };
  hooks.submit_work = [](double, std::function<void()> done) {
    if (done) done();
  };
  std::vector<uint64_t> acked;
  hooks.on_acked = [&acked](const std::vector<uint64_t>& seqs) {
    acked.insert(acked.end(), seqs.begin(), seqs.end());
  };
  ExchangeProducer producer(SubplanId{1, 0, 0}, wiring, {},
                            std::move(hooks));
  ASSERT_TRUE(producer.Open().ok());
  ASSERT_TRUE(producer.Offer(KeyTuple("k")).ok());
  producer.OnAck(AckPayload(1, cid, {1}));
  EXPECT_EQ(acked, (std::vector<uint64_t>{1}));
}

}  // namespace
}  // namespace gqp
