#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/datagen.h"

namespace gqp {
namespace {

SchemaPtr TwoColSchema() {
  return MakeSchema({{"orf", DataType::kString},
                     {"len", DataType::kInt64}});
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  SchemaPtr s = TwoColSchema();
  ASSERT_TRUE(s->IndexOf("ORF").ok());
  EXPECT_EQ(*s->IndexOf("ORF"), 0u);
  EXPECT_EQ(*s->IndexOf("len"), 1u);
  EXPECT_TRUE(s->IndexOf("missing").status().IsNotFound());
}

TEST(SchemaTest, ConcatAppendsFields) {
  SchemaPtr a = TwoColSchema();
  Schema joined = a->Concat(*MakeSchema({{"x", DataType::kDouble}}));
  ASSERT_EQ(joined.num_fields(), 3u);
  EXPECT_EQ(joined.field(2).name, "x");
}

TEST(SchemaTest, ToStringListsFields) {
  EXPECT_EQ(TwoColSchema()->ToString(), "(orf:STRING, len:INT64)");
}

TEST(TupleTest, AccessAndEquality) {
  SchemaPtr s = TwoColSchema();
  Tuple t(s, {Value("ORF1"), Value(static_cast<int64_t>(7))});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].AsString(), "ORF1");
  EXPECT_EQ(t.at(1).AsInt64(), 7);
  Tuple same(s, {Value("ORF1"), Value(static_cast<int64_t>(7))});
  EXPECT_EQ(t, same);
  Tuple different(s, {Value("ORF2"), Value(static_cast<int64_t>(7))});
  EXPECT_FALSE(t == different);
}

TEST(TupleTest, CopiesShareStorage) {
  SchemaPtr s = TwoColSchema();
  Tuple t(s, {Value("a"), Value(static_cast<int64_t>(1))});
  Tuple copy = t;
  EXPECT_EQ(t.data(), copy.data());
  EXPECT_EQ(&t.schema(), &copy.schema());  // schema lives in the same rep
}

TEST(TupleTest, DefaultIsInvalid) {
  Tuple t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TupleTest, WireSizeCountsValuesPlusHeader) {
  SchemaPtr s = TwoColSchema();
  Tuple t(s, {Value("abcd"), Value(static_cast<int64_t>(1))});
  EXPECT_EQ(t.WireSize(), 8u + 8u + 8u);  // header + string(4+4) + int64
}

TEST(TupleTest, ConcatJoinsRows) {
  SchemaPtr left = TwoColSchema();
  SchemaPtr right = MakeSchema({{"v", DataType::kDouble}});
  SchemaPtr out = std::make_shared<const Schema>(left->Concat(*right));
  Tuple l(left, {Value("k"), Value(static_cast<int64_t>(1))});
  Tuple r(right, {Value(2.0)});
  Tuple joined = Tuple::Concat(out, l, r);
  ASSERT_EQ(joined.size(), 3u);
  EXPECT_EQ(joined[0].AsString(), "k");
  EXPECT_DOUBLE_EQ(joined[2].AsDouble(), 2.0);
}

TEST(TableTest, AppendChecksArity) {
  Table table("t", TwoColSchema());
  EXPECT_TRUE(table.AppendValues({Value("a"), Value(static_cast<int64_t>(1))})
                  .ok());
  EXPECT_TRUE(table.AppendValues({Value("a")}).IsInvalidArgument());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, RowsAccessible) {
  Table table("t", TwoColSchema());
  ASSERT_TRUE(
      table.AppendValues({Value("x"), Value(static_cast<int64_t>(9))}).ok());
  EXPECT_EQ(table.row(0)[1].AsInt64(), 9);
}

TEST(DatagenTest, ProteinSequencesShape) {
  ProteinSequencesSpec spec;
  spec.num_rows = 100;
  spec.sequence_length = 50;
  TablePtr t = GenerateProteinSequences(spec);
  EXPECT_EQ(t->name(), "protein_sequences");
  ASSERT_EQ(t->num_rows(), 100u);
  for (size_t i = 0; i < t->num_rows(); ++i) {
    EXPECT_EQ(t->row(i)[0].AsString(), OrfKey(i));
    EXPECT_EQ(t->row(i)[1].AsString().size(), 50u);
  }
}

TEST(DatagenTest, SequencesAreEqualLengthAsInThePaper) {
  TablePtr t = GenerateProteinSequences({});
  const size_t len = t->row(0)[1].AsString().size();
  for (size_t i = 1; i < t->num_rows(); ++i) {
    EXPECT_EQ(t->row(i)[1].AsString().size(), len);
  }
}

TEST(DatagenTest, GenerationIsDeterministicPerSeed) {
  ProteinSequencesSpec spec;
  spec.num_rows = 10;
  spec.seed = 5;
  TablePtr a = GenerateProteinSequences(spec);
  TablePtr b = GenerateProteinSequences(spec);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(a->row(i), b->row(i));
  spec.seed = 6;
  TablePtr c = GenerateProteinSequences(spec);
  EXPECT_FALSE(a->row(0) == c->row(0));
}

TEST(DatagenTest, InteractionsReferenceSequenceOrfs) {
  ProteinInteractionsSpec spec;
  spec.num_rows = 500;
  spec.num_orfs = 100;
  spec.match_fraction = 1.0;
  TablePtr t = GenerateProteinInteractions(spec);
  ASSERT_EQ(t->num_rows(), 500u);
  for (size_t i = 0; i < t->num_rows(); ++i) {
    const std::string& orf1 = t->row(i)[0].AsString();
    // With match_fraction 1.0 every orf1 is within [0, num_orfs).
    EXPECT_LT(std::stoi(orf1.substr(3)), 100);
  }
}

TEST(DatagenTest, MatchFractionZeroProducesNoMatches) {
  ProteinInteractionsSpec spec;
  spec.num_rows = 200;
  spec.num_orfs = 100;
  spec.match_fraction = 0.0;
  TablePtr t = GenerateProteinInteractions(spec);
  for (size_t i = 0; i < t->num_rows(); ++i) {
    EXPECT_GE(std::stoi(t->row(i)[0].AsString().substr(3)), 100);
  }
}

TEST(DatagenTest, PaperCardinalitiesByDefault) {
  EXPECT_EQ(GenerateProteinSequences({})->num_rows(), 3000u);
  EXPECT_EQ(GenerateProteinInteractions({})->num_rows(), 4700u);
}

TEST(DatagenTest, ShannonEntropyKnownValues) {
  EXPECT_DOUBLE_EQ(ShannonEntropy(""), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy("aaaa"), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy("ab"), 1.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy("abcd"), 2.0);
  // Entropy of 20 symbols is at most log2(20) ~ 4.32.
  TablePtr t = GenerateProteinSequences({});
  const double e = ShannonEntropy(t->row(0)[1].AsString());
  EXPECT_GT(e, 3.5);
  EXPECT_LT(e, 4.33);
}

}  // namespace
}  // namespace gqp
