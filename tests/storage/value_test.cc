#include "storage/value.h"

#include <gtest/gtest.h>
#include <set>

namespace gqp {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value(static_cast<int64_t>(5)).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_EQ(Value(std::string("y")).type(), DataType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(static_cast<int64_t>(42)).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, ToNumericCoerces) {
  EXPECT_DOUBLE_EQ(Value(static_cast<int64_t>(3)).ToNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).ToNumeric(), 2.5);
  EXPECT_DOUBLE_EQ(Value("nan-ish").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value().ToNumeric(), 0.0);
}

TEST(ValueTest, EqualitySameTypeOnly) {
  EXPECT_EQ(Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(1)));
  EXPECT_NE(Value(static_cast<int64_t>(1)), Value(1.0));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2)));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1.0), Value(1.5));
  // Null sorts before everything (type order).
  EXPECT_LT(Value(), Value(static_cast<int64_t>(0)));
}

TEST(ValueTest, HashIsStableAndTypeTagged) {
  const Value a(static_cast<int64_t>(1));
  EXPECT_EQ(a.Hash(), Value(static_cast<int64_t>(1)).Hash());
  EXPECT_NE(a.Hash(), Value(1.0).Hash());
  EXPECT_NE(Value("1").Hash(), a.Hash());
  EXPECT_EQ(Value("ORF00042").Hash(), Value("ORF00042").Hash());
}

TEST(ValueTest, HashSpreads) {
  // Hashes of sequential keys should not collide (bucket routing depends
  // on a decent spread).
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(Value("ORF" + std::to_string(i)).Hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(ValueTest, WireSize) {
  EXPECT_EQ(Value().WireSize(), 1u);
  EXPECT_EQ(Value(static_cast<int64_t>(1)).WireSize(), 8u);
  EXPECT_EQ(Value(1.0).WireSize(), 8u);
  EXPECT_EQ(Value("abcd").WireSize(), 8u);  // 4 header + 4 chars
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(static_cast<int64_t>(-3)).ToString(), "-3");
  EXPECT_EQ(Value("txt").ToString(), "txt");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, DataTypeNames) {
  EXPECT_EQ(DataTypeToString(DataType::kNull), "NULL");
  EXPECT_EQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_EQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_EQ(DataTypeToString(DataType::kString), "STRING");
}

}  // namespace
}  // namespace gqp
