#include "net/network.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

class TestPayload : public Payload {
 public:
  explicit TestPayload(size_t bytes, int tag = 0) : bytes_(bytes), tag_(tag) {}
  size_t WireSize() const override { return bytes_; }
  std::string_view TypeName() const override { return "Test"; }
  int tag() const { return tag_; }

 private:
  size_t bytes_;
  int tag_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&sim_, LinkParams{1.0, 1000.0}) {
    network_.set_envelope_bytes(0);
  }

  Message MakeMessage(HostId from, HostId to, size_t bytes, int tag = 0) {
    Message m;
    m.from = {from, "src"};
    m.to = {to, "dst"};
    m.payload = std::make_shared<TestPayload>(bytes, tag);
    return m;
  }

  Simulator sim_;
  Network network_;
};

TEST_F(NetworkTest, SendToUnregisteredHostFails) {
  EXPECT_TRUE(network_.Send(MakeMessage(1, 2, 10)).IsNotFound());
}

TEST_F(NetworkTest, DeliveryTimeIsTransmissionPlusLatency) {
  double arrival = -1;
  network_.RegisterHost(2, [&](const Message&) { arrival = sim_.Now(); });
  // 1000 bytes at 1000 bytes/ms = 1 ms tx + 1 ms latency.
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 1000)).ok());
  sim_.RunToCompletion();
  EXPECT_DOUBLE_EQ(arrival, 2.0);
}

TEST_F(NetworkTest, LinkSerializesTransfers) {
  std::vector<double> arrivals;
  network_.RegisterHost(2, [&](const Message&) {
    arrivals.push_back(sim_.Now());
  });
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 1000)).ok());
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 1000)).ok());
  sim_.RunToCompletion();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 2.0);
  // Second transfer starts when the link frees at t=1, finishes tx at 2,
  // arrives at 3.
  EXPECT_DOUBLE_EQ(arrivals[1], 3.0);
}

TEST_F(NetworkTest, FifoPerLink) {
  std::vector<int> tags;
  network_.RegisterHost(2, [&](const Message& m) {
    tags.push_back(static_cast<const TestPayload*>(m.payload.get())->tag());
  });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 100 * (5 - i), i)).ok());
  }
  sim_.RunToCompletion();
  EXPECT_EQ(tags, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(NetworkTest, IndependentLinksDoNotSerialize) {
  std::vector<double> arrivals;
  network_.RegisterHost(3, [&](const Message&) {
    arrivals.push_back(sim_.Now());
  });
  ASSERT_TRUE(network_.Send(MakeMessage(1, 3, 1000)).ok());
  ASSERT_TRUE(network_.Send(MakeMessage(2, 3, 1000)).ok());
  sim_.RunToCompletion();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 2.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 2.0);  // different (src,dst) link
}

TEST_F(NetworkTest, LocalDeliveryIsImmediateAndFree) {
  double arrival = -1;
  network_.RegisterHost(1, [&](const Message&) { arrival = sim_.Now(); });
  ASSERT_TRUE(network_.Send(MakeMessage(1, 1, 1000000)).ok());
  sim_.RunToCompletion();
  EXPECT_DOUBLE_EQ(arrival, 0.0);
  EXPECT_EQ(network_.stats().local_deliveries, 1u);
  EXPECT_EQ(network_.stats().messages_sent, 0u);
}

TEST_F(NetworkTest, PerLinkOverride) {
  network_.SetLink(1, 2, LinkParams{10.0, 1000.0});
  double arrival = -1;
  network_.RegisterHost(2, [&](const Message&) { arrival = sim_.Now(); });
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 1000)).ok());
  sim_.RunToCompletion();
  EXPECT_DOUBLE_EQ(arrival, 11.0);
}

TEST_F(NetworkTest, EnvelopeBytesCharged) {
  network_.set_envelope_bytes(1000);
  double arrival = -1;
  network_.RegisterHost(2, [&](const Message&) { arrival = sim_.Now(); });
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 0)).ok());
  sim_.RunToCompletion();
  EXPECT_DOUBLE_EQ(arrival, 2.0);  // 1000 envelope bytes = 1 ms tx
}

TEST_F(NetworkTest, StatsCountBytes) {
  network_.RegisterHost(2, [](const Message&) {});
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 123)).ok());
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 77)).ok());
  sim_.RunToCompletion();
  EXPECT_EQ(network_.stats().messages_sent, 2u);
  EXPECT_EQ(network_.stats().bytes_sent, 200u);
}

TEST_F(NetworkTest, TransferTimeMatchesModel) {
  EXPECT_DOUBLE_EQ(network_.TransferTime(1, 2, 2000), 3.0);
  EXPECT_DOUBLE_EQ(network_.TransferTime(5, 5, 2000), 0.0);  // same host
}

TEST_F(NetworkTest, SeededLossIsDeterministic) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    Network net(&sim, LinkParams{1.0, 1000.0});
    net.set_envelope_bytes(0);
    net.SeedLoss(seed);
    net.SetDefaultLoss(0.5);
    std::vector<int> tags;
    net.RegisterHost(2, [&](const Message& m) {
      tags.push_back(static_cast<const TestPayload*>(m.payload.get())->tag());
    });
    for (int i = 0; i < 50; ++i) {
      Message m;
      m.from = {1, "src"};
      m.to = {2, "dst"};
      m.payload = std::make_shared<TestPayload>(10, i);
      EXPECT_TRUE(net.Send(m).ok());
    }
    sim.RunToCompletion();
    EXPECT_EQ(tags.size() + net.stats().loss_drops, 50u);
    EXPECT_GT(net.stats().loss_drops, 0u);
    return tags;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(NetworkTest, PartitionedHostDropsUntilHealed) {
  std::vector<int> tags;
  const auto collect = [&](const Message& m) {
    tags.push_back(static_cast<const TestPayload*>(m.payload.get())->tag());
  };
  network_.RegisterHost(1, collect);
  network_.RegisterHost(2, collect);
  network_.BeginPartition(2);
  EXPECT_TRUE(network_.Partitioned(2));
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 10, 0)).ok());
  ASSERT_TRUE(network_.Send(MakeMessage(2, 1, 10, 1)).ok());  // both directions
  network_.EndPartition(2);
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 10, 2)).ok());
  sim_.RunToCompletion();
  EXPECT_EQ(tags, (std::vector<int>{2}));
  EXPECT_EQ(network_.stats().partition_drops, 2u);
}

TEST_F(NetworkTest, PartitionsAreRefcounted) {
  network_.BeginPartition(2);
  network_.BeginPartition(2);  // overlapping windows
  network_.EndPartition(2);
  EXPECT_TRUE(network_.Partitioned(2));
  network_.EndPartition(2);
  EXPECT_FALSE(network_.Partitioned(2));
}

TEST_F(NetworkTest, ReversedLinkIsSeparate) {
  std::vector<double> arrivals;
  network_.RegisterHost(1, [&](const Message&) {
    arrivals.push_back(sim_.Now());
  });
  network_.RegisterHost(2, [&](const Message&) {
    arrivals.push_back(sim_.Now());
  });
  ASSERT_TRUE(network_.Send(MakeMessage(1, 2, 1000)).ok());
  ASSERT_TRUE(network_.Send(MakeMessage(2, 1, 1000)).ok());
  sim_.RunToCompletion();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 2.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 2.0);
}

}  // namespace
}  // namespace gqp
