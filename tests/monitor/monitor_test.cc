#include "monitor/monitoring_event_detector.h"

#include <gtest/gtest.h>

#include "monitor/window_average.h"
#include "rpc/message_bus.h"

namespace gqp {
namespace {

// ---- WindowAverage ----------------------------------------------------------

TEST(WindowAverageTest, EmptyIsZero) {
  WindowAverage w(25);
  EXPECT_DOUBLE_EQ(w.Average(), 0.0);
  EXPECT_TRUE(w.empty());
}

TEST(WindowAverageTest, PlainMeanForUpToTwoValues) {
  WindowAverage w(25);
  w.Add(2.0);
  EXPECT_DOUBLE_EQ(w.Average(), 2.0);
  w.Add(4.0);
  EXPECT_DOUBLE_EQ(w.Average(), 3.0);
}

TEST(WindowAverageTest, DiscardsMinAndMax) {
  WindowAverage w(25);
  w.Add(100.0);  // max, discarded
  w.Add(0.0);    // min, discarded
  w.Add(5.0);
  w.Add(7.0);
  EXPECT_DOUBLE_EQ(w.Average(), 6.0);
}

TEST(WindowAverageTest, EvictsOldestBeyondWindow) {
  WindowAverage w(3);
  w.Add(1000.0);
  w.Add(1.0);
  w.Add(2.0);
  w.Add(3.0);  // evicts 1000
  // Window [1,2,3]: trimmed mean = 2.
  EXPECT_DOUBLE_EQ(w.Average(), 2.0);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_EQ(w.total_observations(), 4u);
}

TEST(WindowAverageTest, WindowOfOne) {
  WindowAverage w(1);
  w.Add(5.0);
  w.Add(9.0);
  EXPECT_DOUBLE_EQ(w.Average(), 9.0);
}

TEST(WindowAverageTest, ZeroWindowClampedToOne) {
  WindowAverage w(0);
  w.Add(3.0);
  EXPECT_DOUBLE_EQ(w.Average(), 3.0);
}

TEST(WindowAverageTest, ClearKeepsLifetimeCount) {
  WindowAverage w(5);
  w.Add(1.0);
  w.Add(2.0);
  w.Clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.total_observations(), 2u);
}

// ---- MonitoringEventDetector -------------------------------------------------

class MedTest : public ::testing::Test {
 protected:
  MedTest()
      : network_(&sim_, LinkParams{0.1, 10000.0}),
        bus_(&network_) {}

  /// A sink service that records MED digests.
  class DigestSink : public GridService {
   public:
    using GridService::GridService;
    std::vector<MonitoringAveragePayload> digests;

   protected:
    void HandleMessage(const Message&) override {}
    void OnNotification(const Address&, const std::string& topic,
                        const PayloadPtr& body) override {
      ASSERT_EQ(topic, std::string(kTopicMonitoringAverages));
      const auto* digest = PayloadAs<MonitoringAveragePayload>(body);
      ASSERT_NE(digest, nullptr);
      digests.push_back(*digest);
    }
  };

  void SendM1(MonitoringEventDetector* med, const SubplanId& id, double cost,
              int count) {
    for (int i = 0; i < count; ++i) {
      Message m;
      m.from = {9, "engine"};
      m.to = med->address();
      m.payload = std::make_shared<M1Payload>(id, cost, 0.0, 1.0, 10);
      (void)bus_.Send(m.from, m.to, m.payload);
    }
    sim_.RunToCompletion();
  }

  Simulator sim_;
  Network network_;
  MessageBus bus_;
};

TEST_F(MedTest, FirstDigestAfterMinEvents) {
  MonitoringEventDetectorConfig config;
  config.min_events = 3;
  MonitoringEventDetector med(&bus_, 1, "med", config);
  ASSERT_TRUE(med.Start().ok());
  DigestSink sink(&bus_, 2, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(med.address(), kTopicMonitoringAverages).ok());
  sim_.RunToCompletion();

  SubplanId id{1, 2, 0};
  SendM1(&med, id, 5.0, 2);
  EXPECT_TRUE(sink.digests.empty());  // below min_events
  SendM1(&med, id, 5.0, 1);
  ASSERT_EQ(sink.digests.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.digests[0].average_ms(), 5.0);
  EXPECT_EQ(sink.digests[0].subplan(), id);
  EXPECT_EQ(sink.digests[0].kind(),
            MonitoringAveragePayload::Kind::kProcessingCost);
}

TEST_F(MedTest, NoRenotifyWithinThreshold) {
  MonitoringEventDetectorConfig config;
  config.min_events = 1;
  config.thres_m = 0.20;
  MonitoringEventDetector med(&bus_, 1, "med", config);
  ASSERT_TRUE(med.Start().ok());
  DigestSink sink(&bus_, 2, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(med.address(), kTopicMonitoringAverages).ok());
  sim_.RunToCompletion();

  SubplanId id{1, 2, 0};
  SendM1(&med, id, 5.0, 1);
  ASSERT_EQ(sink.digests.size(), 1u);
  // 10% higher average: below thresM, no digest.
  SendM1(&med, id, 5.6, 8);
  EXPECT_EQ(sink.digests.size(), 1u);
  // Push the average past +20%.
  SendM1(&med, id, 30.0, 10);
  EXPECT_GT(sink.digests.size(), 1u);
}

TEST_F(MedTest, GroupsByM1Subplan) {
  MonitoringEventDetectorConfig config;
  config.min_events = 1;
  MonitoringEventDetector med(&bus_, 1, "med", config);
  ASSERT_TRUE(med.Start().ok());
  DigestSink sink(&bus_, 2, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(med.address(), kTopicMonitoringAverages).ok());
  sim_.RunToCompletion();

  SendM1(&med, SubplanId{1, 2, 0}, 1.0, 1);
  SendM1(&med, SubplanId{1, 2, 1}, 9.0, 1);
  ASSERT_EQ(sink.digests.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.digests[0].average_ms(), 1.0);
  EXPECT_DOUBLE_EQ(sink.digests[1].average_ms(), 9.0);
}

TEST_F(MedTest, M2GroupedByProducerRecipientPair) {
  MonitoringEventDetectorConfig config;
  config.min_events = 1;
  MonitoringEventDetector med(&bus_, 1, "med", config);
  ASSERT_TRUE(med.Start().ok());
  DigestSink sink(&bus_, 2, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(med.address(), kTopicMonitoringAverages).ok());
  sim_.RunToCompletion();

  SubplanId producer{1, 0, 0};
  SubplanId consumer0{1, 2, 0};
  Message m;
  m.from = {9, "engine"};
  m.to = med.address();
  m.payload = std::make_shared<M2Payload>(producer, consumer0, 3.0, 50);
  ASSERT_TRUE(bus_.Send(m.from, m.to, m.payload).ok());
  sim_.RunToCompletion();
  ASSERT_EQ(sink.digests.size(), 1u);
  EXPECT_EQ(sink.digests[0].kind(),
            MonitoringAveragePayload::Kind::kCommunicationCost);
  EXPECT_EQ(sink.digests[0].recipient(), consumer0);
  EXPECT_DOUBLE_EQ(sink.digests[0].avg_tuples_per_buffer(), 50.0);
  EXPECT_EQ(med.stats().raw_m2, 1u);
}

TEST_F(MedTest, StatsCountRawEvents) {
  MonitoringEventDetectorConfig config;
  config.min_events = 100;  // suppress digests
  MonitoringEventDetector med(&bus_, 1, "med", config);
  ASSERT_TRUE(med.Start().ok());
  SendM1(&med, SubplanId{1, 2, 0}, 1.0, 7);
  EXPECT_EQ(med.stats().raw_m1, 7u);
  EXPECT_EQ(med.stats().notifications_out, 0u);
}

TEST(SubplanIdTest, ToStringFormat) {
  EXPECT_EQ((SubplanId{3, 1, 2}).ToString(), "q3.f1.i2");
  EXPECT_TRUE((SubplanId{1, 2, 3}) == (SubplanId{1, 2, 3}));
  EXPECT_FALSE((SubplanId{1, 2, 3}) == (SubplanId{1, 2, 4}));
}

}  // namespace
}  // namespace gqp
