// Workload-driver unit tests (DESIGN.md §D16): seeded arrival-schedule
// determinism, burst-profile rate modulation, nearest-rank percentiles,
// and an end-to-end run whose report must hold terminal trichotomy and
// render byte-identically across two same-seed grids.

#include <gtest/gtest.h>

#include <vector>

#include "storage/datagen.h"
#include "workload/driver.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace {

DriverConfig TwoTenantConfig(uint64_t seed) {
  DriverConfig config;
  config.seed = seed;
  config.horizon_ms = 2000.0;
  config.deadline_ms = 4000.0;
  TenantSpec a;
  a.name = "a";
  a.arrival_rate_qps = 5.0;
  TenantSpec b;
  b.name = "b";
  b.arrival_rate_qps = 5.0;
  b.weight_q1 = 1.0;
  b.weight_q2 = 1.0;
  config.tenants = {a, b};
  return config;
}

TEST(WorkloadDriverTest, SameSeedSameSchedule) {
  WorkloadDriver first(TwoTenantConfig(42));
  WorkloadDriver second(TwoTenantConfig(42));
  ASSERT_EQ(first.arrivals().size(), second.arrivals().size());
  ASSERT_GT(first.arrivals().size(), 0u);
  for (size_t i = 0; i < first.arrivals().size(); ++i) {
    EXPECT_EQ(first.arrivals()[i].time_ms, second.arrivals()[i].time_ms);
    EXPECT_EQ(first.arrivals()[i].tenant, second.arrivals()[i].tenant);
    EXPECT_EQ(first.arrivals()[i].kind, second.arrivals()[i].kind);
    EXPECT_EQ(first.arrivals()[i].seq, second.arrivals()[i].seq);
  }

  // A different seed draws a different schedule.
  WorkloadDriver other(TwoTenantConfig(43));
  bool differs = other.arrivals().size() != first.arrivals().size();
  for (size_t i = 0; !differs && i < first.arrivals().size(); ++i) {
    differs = other.arrivals()[i].time_ms != first.arrivals()[i].time_ms;
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadDriverTest, ScheduleIsSortedAndWithinHorizon) {
  const DriverConfig config = TwoTenantConfig(7);
  WorkloadDriver driver(config);
  double prev = -1.0;
  for (const DriverArrival& a : driver.arrivals()) {
    EXPECT_GE(a.time_ms, prev);
    EXPECT_LT(a.time_ms, config.horizon_ms);
    prev = a.time_ms;
  }
}

TEST(WorkloadDriverTest, BurstMultiplierRaisesArrivalCount) {
  DriverConfig plain = TwoTenantConfig(9);
  plain.tenants.resize(1);
  DriverConfig bursty = plain;
  bursty.tenants[0].burst_period_ms = 500.0;
  bursty.tenants[0].burst_duty = 0.5;
  bursty.tenants[0].burst_multiplier = 8.0;
  WorkloadDriver plain_driver(plain);
  WorkloadDriver bursty_driver(bursty);
  // Half of every window runs at 8x the rate: the expectation is 4.5x
  // the plain count, so seeing at least 2x is noise-proof.
  EXPECT_GT(bursty_driver.arrivals().size(),
            2 * plain_driver.arrivals().size());
}

TEST(WorkloadDriverTest, MaxQueriesTruncatesEarliestFirst) {
  DriverConfig config = TwoTenantConfig(11);
  WorkloadDriver unlimited(config);
  ASSERT_GT(unlimited.arrivals().size(), 4u);
  config.max_queries = 4;
  WorkloadDriver capped(config);
  ASSERT_EQ(capped.arrivals().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(capped.arrivals()[i].time_ms, unlimited.arrivals()[i].time_ms);
  }
}

TEST(NearestRankPercentileTest, MatchesHandComputedRanks) {
  EXPECT_EQ(NearestRankPercentile({}, 95.0), 0.0);
  EXPECT_EQ(NearestRankPercentile({7.0}, 50.0), 7.0);
  // N=4 sorted {1,2,3,4}: rank(50) = ceil(2) = 2 -> 2; rank(95) = ceil(3.8)
  // = 4 -> 4; unsorted input must be handled.
  EXPECT_EQ(NearestRankPercentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.0);
  EXPECT_EQ(NearestRankPercentile({4.0, 1.0, 3.0, 2.0}, 95.0), 4.0);
  EXPECT_EQ(NearestRankPercentile({4.0, 1.0, 3.0, 2.0}, 100.0), 4.0);
}

TEST(WorkloadDriverTest, EndToEndReportIsDeterministicAndTrichotomous) {
  auto run_once = []() {
    GridOptions grid_options;
    grid_options.num_evaluators = 2;
    grid_options.admission.enabled = true;
    grid_options.admission.max_concurrent_queries = 2;
    grid_options.admission.queue_capacity = 2;
    grid_options.admission.per_tenant_inflight_cap = 2;
    GridSetup grid(grid_options);
    EXPECT_TRUE(grid.Initialize().ok());

    ProteinSequencesSpec seq_spec;
    seq_spec.num_rows = 80;
    seq_spec.sequence_length = 16;
    seq_spec.seed = 5;
    EXPECT_TRUE(grid.AddTable(GenerateProteinSequences(seq_spec)).ok());
    ProteinInteractionsSpec inter_spec;
    inter_spec.num_rows = 120;
    inter_spec.num_orfs = 80;
    inter_spec.seed = 5 + 13;
    EXPECT_TRUE(grid.AddTable(GenerateProteinInteractions(inter_spec)).ok());
    EXPECT_TRUE(
        grid.AddWebService("EntropyAnalyser", DataType::kDouble, 0.2).ok());

    DriverConfig config = TwoTenantConfig(21);
    config.horizon_ms = 600.0;
    config.base_options.exec.monitoring_enabled = true;
    config.base_options.exec.recovery_log_enabled = true;
    config.base_options.scheduler.num_evaluators = 2;
    WorkloadDriver driver(config);
    driver.ScheduleArrivals(&grid);
    EXPECT_TRUE(grid.simulator()->Run().ok());
    return driver.Collect(&grid);
  };

  const DriverReport first = run_once();
  EXPECT_TRUE(first.trichotomy_ok) << first.Render();
  EXPECT_GT(first.submitted, 0u);
  EXPECT_EQ(first.submitted,
            first.completed + first.aborted + first.rejected);
  EXPECT_EQ(first.unresolved, 0u);
  EXPECT_EQ(first.tenants.size(), 2u);

  const DriverReport second = run_once();
  EXPECT_EQ(first.Render(), second.Render());
}

}  // namespace
}  // namespace gqp
