#include "workload/experiment.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

ExperimentParams SmallQ1() {
  ExperimentParams p;
  p.name = "test-q1";
  p.query = QueryKind::kQ1;
  p.sequences = 200;
  p.interactions = 100;
  p.sequence_length = 30;
  p.repetitions = 1;
  return p;
}

TEST(ExperimentTest, RunsQ1) {
  ExperimentResult r = RunExperiment(SmallQ1());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.result_rows, 200u);
  EXPECT_GT(r.response_ms, 0.0);
  EXPECT_EQ(r.rep_times_ms.size(), 1u);
}

TEST(ExperimentTest, RunsQ2Retrospective) {
  ExperimentParams p = SmallQ1();
  p.name = "test-q2";
  p.query = QueryKind::kQ2;
  p.response = ResponseType::kRetrospective;
  p.interactions = 300;
  ExperimentResult r = RunExperiment(p);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.result_rows, 0u);
}

TEST(ExperimentTest, RepetitionsAveraged) {
  ExperimentParams p = SmallQ1();
  p.repetitions = 3;
  ExperimentResult r = RunExperiment(p);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.rep_times_ms.size(), 3u);
  double sum = 0;
  for (const double t : r.rep_times_ms) sum += t;
  EXPECT_NEAR(r.response_ms, sum / 3.0, 1e-9);
}

TEST(ExperimentTest, PerturbationSlowsStaticRun) {
  ExperimentParams base = SmallQ1();
  base.adaptivity = false;
  base.drift_sigma = 0;
  base.noise_stddev = 0;
  ExperimentResult baseline = RunExperiment(base);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  ExperimentParams perturbed = base;
  perturbed.perturbations = {
      {0, PerturbSpec::Kind::kFactor, 10, 0, 0, 0, 0, 0}};
  ExperimentResult slow = RunExperiment(perturbed);
  ASSERT_TRUE(slow.ok) << slow.error;
  EXPECT_GT(slow.response_ms, 1.5 * baseline.response_ms);
}

TEST(ExperimentTest, InvalidPerturbationTargetFails) {
  ExperimentParams p = SmallQ1();
  p.perturbations = {{9, PerturbSpec::Kind::kFactor, 10, 0, 0, 0, 0, 0}};
  ExperimentResult r = RunExperiment(p);
  EXPECT_FALSE(r.ok);
}

TEST(ExperimentTest, NormalizedHelper) {
  ExperimentResult a;
  a.ok = true;
  a.response_ms = 150;
  ExperimentResult b;
  b.ok = true;
  b.response_ms = 100;
  EXPECT_DOUBLE_EQ(Normalized(a, b), 1.5);
  ExperimentResult bad;
  EXPECT_DOUBLE_EQ(Normalized(bad, b), 0.0);
}

TEST(ExperimentTest, QuerySqlAndTags) {
  EXPECT_NE(QuerySql(QueryKind::kQ1).find("EntropyAnalyser"),
            std::string::npos);
  EXPECT_NE(QuerySql(QueryKind::kQ2).find("protein_interactions"),
            std::string::npos);
  EXPECT_EQ(PerturbTag(QueryKind::kQ1), "ws:EntropyAnalyser");
  EXPECT_EQ(PerturbTag(QueryKind::kQ2), "op:hash_join");
}

TEST(ExperimentTest, DeterministicPerSeed) {
  ExperimentParams p = SmallQ1();
  ExperimentResult a = RunExperiment(p);
  ExperimentResult b = RunExperiment(p);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_DOUBLE_EQ(a.response_ms, b.response_ms);
  p.seed = 999;
  ExperimentResult c = RunExperiment(p);
  ASSERT_TRUE(c.ok);
  EXPECT_NE(a.response_ms, c.response_ms);
}

TEST(GridSetupTest, TopologyAccessors) {
  GridOptions options;
  options.num_evaluators = 3;
  GridSetup grid(options);
  ASSERT_TRUE(grid.Initialize().ok());
  EXPECT_EQ(grid.coordinator_node()->id(), 0);
  EXPECT_EQ(grid.data_node()->id(), 1);
  EXPECT_EQ(grid.evaluator_node(2)->id(), 4);
  EXPECT_NE(grid.gqes_on(0), nullptr);
  EXPECT_EQ(grid.gqes_on(99), nullptr);
  EXPECT_EQ(grid.num_evaluators(), 3);
}

TEST(GridSetupTest, HeterogeneousCapacities) {
  GridOptions options;
  options.num_evaluators = 2;
  options.evaluator_capacities = {1.0, 2.0};
  GridSetup grid(options);
  ASSERT_TRUE(grid.Initialize().ok());
  EXPECT_DOUBLE_EQ(grid.evaluator_node(1)->capacity(), 2.0);
}

TEST(GridSetupTest, PerturbUnknownEvaluatorFails) {
  GridOptions options;
  GridSetup grid(options);
  ASSERT_TRUE(grid.Initialize().ok());
  EXPECT_TRUE(grid.PerturbEvaluator(5, "x", std::make_shared<NoPerturbation>())
                  .IsOutOfRange());
}

TEST(GridSetupTest, ZeroEvaluatorsRejected) {
  GridOptions options;
  options.num_evaluators = 0;
  GridSetup grid(options);
  EXPECT_TRUE(grid.Initialize().IsInvalidArgument());
}

}  // namespace
}  // namespace gqp
