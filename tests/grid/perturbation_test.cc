#include "grid/perturbation.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(PerturbationTest, NoPerturbationIsIdentity) {
  NoPerturbation none;
  EXPECT_DOUBLE_EQ(none.Apply(0.7, 0.0), 0.7);
  EXPECT_DOUBLE_EQ(none.Apply(0.7, 1e6), 0.7);
}

TEST(PerturbationTest, ConstantFactorMultipliesCost) {
  ConstantFactorPerturbation perturb(16.0);
  EXPECT_DOUBLE_EQ(perturb.Apply(0.25, 0.0), 4.0);
  // Time-invariant and stateless: repeated application is identical.
  EXPECT_DOUBLE_EQ(perturb.Apply(0.25, 500.0), 4.0);
}

TEST(PerturbationTest, AddedDelayAddsFixedCost) {
  AddedDelayPerturbation perturb(10.0);
  EXPECT_DOUBLE_EQ(perturb.Apply(0.2, 0.0), 10.2);
  EXPECT_DOUBLE_EQ(perturb.Apply(0.0, 0.0), 10.0);
}

TEST(PerturbationTest, GaussianFactorStaysWithinTruncationBounds) {
  GaussianFactorPerturbation perturb(30.0, 5.0, 25.0, 35.0, /*seed=*/7);
  for (int i = 0; i < 1000; ++i) {
    const double cost = perturb.Apply(1.0, 0.0);
    EXPECT_GE(cost, 25.0);
    EXPECT_LE(cost, 35.0);
  }
}

TEST(PerturbationTest, GaussianFactorIsStatefulPerTuple) {
  // Fig. 5's per-tuple variation: successive draws must differ (the
  // profile owns an RNG stream, not a fixed factor).
  GaussianFactorPerturbation perturb(20.0, 10.0, 1.0, 60.0, /*seed=*/11);
  std::set<double> costs;
  for (int i = 0; i < 50; ++i) costs.insert(perturb.Apply(1.0, 0.0));
  EXPECT_GT(costs.size(), 1u);
}

TEST(PerturbationTest, GaussianFactorIsSeedDeterministic) {
  GaussianFactorPerturbation a(30.0, 5.0, 20.0, 40.0, /*seed=*/42);
  GaussianFactorPerturbation b(30.0, 5.0, 20.0, 40.0, /*seed=*/42);
  GaussianFactorPerturbation c(30.0, 5.0, 20.0, 40.0, /*seed=*/43);
  bool any_difference_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const double cost_a = a.Apply(1.0, 0.0);
    EXPECT_DOUBLE_EQ(cost_a, b.Apply(1.0, 0.0)) << "draw " << i;
    if (cost_a != c.Apply(1.0, 0.0)) any_difference_from_c = true;
  }
  EXPECT_TRUE(any_difference_from_c);
}

TEST(PerturbationTest, DriftIsSeedDeterministicAndClamped) {
  DriftPerturbation a(0.5, 100.0, /*seed=*/3);
  DriftPerturbation b(0.5, 100.0, /*seed=*/3);
  for (int i = 1; i <= 200; ++i) {
    const SimTime t = 10.0 * i;
    const double cost_a = a.Apply(1.0, t);
    EXPECT_DOUBLE_EQ(cost_a, b.Apply(1.0, t)) << "t=" << t;
    EXPECT_GE(cost_a, 0.25);
    EXPECT_LE(cost_a, 4.0);
  }
}

TEST(PerturbationTest, DriftStateAdvancesOnlyWithTime) {
  DriftPerturbation perturb(0.4, 50.0, /*seed=*/9);
  // Repeated queries at the same virtual time consume no randomness: the
  // factor is a function of the (seeded) path, not of call count.
  const double at_t10 = perturb.CurrentFactor(10.0);
  EXPECT_DOUBLE_EQ(perturb.CurrentFactor(10.0), at_t10);
  EXPECT_DOUBLE_EQ(perturb.Apply(1.0, 10.0), at_t10);
}

TEST(PerturbationTest, StepAppliesLastStepNotAfterNow) {
  StepPerturbation perturb({{100.0, 8.0}, {300.0, 2.0}});
  EXPECT_DOUBLE_EQ(perturb.Apply(1.0, 0.0), 1.0);     // before first step
  EXPECT_DOUBLE_EQ(perturb.Apply(1.0, 100.0), 8.0);   // inclusive start
  EXPECT_DOUBLE_EQ(perturb.Apply(1.0, 299.9), 8.0);
  EXPECT_DOUBLE_EQ(perturb.Apply(1.0, 300.0), 2.0);
  EXPECT_DOUBLE_EQ(perturb.Apply(1.0, 1e6), 2.0);     // final step persists
}

TEST(PerturbationTest, StepWithNoStepsIsIdentity) {
  StepPerturbation perturb({});
  EXPECT_DOUBLE_EQ(perturb.Apply(3.0, 123.0), 3.0);
}

TEST(PerturbationTest, DescribeNamesTheProfile) {
  EXPECT_NE(ConstantFactorPerturbation(2.0).Describe().find("constant"),
            std::string::npos);
  EXPECT_NE(AddedDelayPerturbation(1.0).Describe().find("sleep"),
            std::string::npos);
  EXPECT_NE(GaussianFactorPerturbation(30, 5, 25, 35, 1).Describe().find(
                "gaussian"),
            std::string::npos);
  EXPECT_NE(DriftPerturbation(0.5, 100, 1).Describe().find("drift"),
            std::string::npos);
  EXPECT_NE(StepPerturbation({}).Describe().find("steps"),
            std::string::npos);
}

}  // namespace
}  // namespace gqp
