#include "grid/node.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(GridNodeTest, WorkTakesBaseCostAtUnitCapacity) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  double done_at = -1;
  node.SubmitWork("op:x", 10.0, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(done_at, 10.0);
}

TEST(GridNodeTest, CapacityScalesCost) {
  Simulator sim;
  GridNode node(&sim, 1, "fast", 2.0);
  double done_at = -1;
  node.SubmitWork("op:x", 10.0, [&] { done_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
}

TEST(GridNodeTest, WorkIsSerialFifo) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  std::vector<std::pair<int, double>> done;
  for (int i = 0; i < 3; ++i) {
    node.SubmitWork("op:x", 10.0, [&done, &sim, i] {
      done.emplace_back(i, sim.Now());
    });
  }
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], std::make_pair(0, 10.0));
  EXPECT_EQ(done[1], std::make_pair(1, 20.0));
  EXPECT_EQ(done[2], std::make_pair(2, 30.0));
}

TEST(GridNodeTest, ConstantFactorPerturbationAppliesToTag) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation("ws:E", std::make_shared<ConstantFactorPerturbation>(10));
  double ws_done = -1, other_done = -1;
  node.SubmitWork("ws:E", 1.0, [&] { ws_done = sim.Now(); });
  node.SubmitWork("op:scan", 1.0, [&] { other_done = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(ws_done, 10.0);
  EXPECT_DOUBLE_EQ(other_done, 11.0);  // unperturbed
}

TEST(GridNodeTest, AddedDelayPerturbation) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation("op:hash_join",
                       std::make_shared<AddedDelayPerturbation>(10.0));
  EXPECT_DOUBLE_EQ(node.EffectiveCost("op:hash_join", 1.0), 11.0);
}

TEST(GridNodeTest, NodeWidePerturbationAppliesToEverything) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetNodePerturbation(std::make_shared<ConstantFactorPerturbation>(3));
  EXPECT_DOUBLE_EQ(node.EffectiveCost("anything", 2.0), 6.0);
}

TEST(GridNodeTest, TagAndNodePerturbationsCompose) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation("ws:E", std::make_shared<ConstantFactorPerturbation>(2));
  node.SetNodePerturbation(std::make_shared<ConstantFactorPerturbation>(3));
  EXPECT_DOUBLE_EQ(node.EffectiveCost("ws:E", 1.0), 6.0);
}

TEST(GridNodeTest, ClearPerturbations) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation("ws:E", std::make_shared<ConstantFactorPerturbation>(9));
  node.ClearPerturbations();
  EXPECT_DOUBLE_EQ(node.EffectiveCost("ws:E", 1.0), 1.0);
}

TEST(GridNodeTest, CompositeWorkSumsPartsAndReportsActual) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation("b", std::make_shared<ConstantFactorPerturbation>(4));
  double reported = -1;
  node.SubmitComposite({{"a", 1.0}, {"b", 2.0}},
                       [&](double actual) { reported = actual; });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(reported, 9.0);  // 1 + 2*4
  EXPECT_DOUBLE_EQ(sim.Now(), 9.0);
}

TEST(GridNodeTest, StatsAccumulatePerTag) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SubmitWork("a", 2.0, nullptr);
  node.SubmitWork("a", 3.0, nullptr);
  node.SubmitWork("b", 1.0, nullptr);
  sim.RunToCompletion();
  EXPECT_EQ(node.stats().work_items, 3u);
  EXPECT_DOUBLE_EQ(node.stats().busy_ms, 6.0);
  EXPECT_DOUBLE_EQ(node.stats().busy_ms_by_tag.at("a"), 5.0);
  EXPECT_DOUBLE_EQ(node.stats().busy_ms_by_tag.at("b"), 1.0);
}

TEST(GridNodeTest, IdleReflectsQueueState) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  EXPECT_TRUE(node.Idle());
  node.SubmitWork("a", 5.0, nullptr);
  EXPECT_FALSE(node.Idle());
  sim.RunToCompletion();
  EXPECT_TRUE(node.Idle());
}

TEST(GridNodeTest, StepPerturbationSwitchesAtBoundaries) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation(
      "x", std::make_shared<StepPerturbation>(std::vector<StepPerturbation::Step>{
               {100.0, 5.0}, {200.0, 1.0}}));
  EXPECT_DOUBLE_EQ(node.EffectiveCost("x", 1.0), 1.0);  // before first step
  sim.Schedule(150, [] {});
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(node.EffectiveCost("x", 1.0), 5.0);
  sim.Schedule(100, [] {});
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(node.EffectiveCost("x", 1.0), 1.0);
}

TEST(GridNodeTest, GaussianPerturbationWithinBand) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  node.SetPerturbation("x", std::make_shared<GaussianFactorPerturbation>(
                                30.0, 5.0, 20.0, 40.0, 1));
  for (int i = 0; i < 200; ++i) {
    const double c = node.EffectiveCost("x", 1.0);
    EXPECT_GE(c, 20.0);
    EXPECT_LE(c, 40.0);
  }
}

TEST(GridNodeTest, DriftPerturbationStaysClamped) {
  Simulator sim;
  GridNode node(&sim, 1, "n", 1.0);
  auto drift = std::make_shared<DriftPerturbation>(0.5, 100.0, 42);
  node.SetPerturbation("x", drift);
  for (int i = 0; i < 500; ++i) {
    sim.Schedule(10, [] {});
    sim.RunToCompletion();
    const double c = node.EffectiveCost("x", 1.0);
    EXPECT_GE(c, 0.25);
    EXPECT_LE(c, 4.0);
  }
}

TEST(GridNodeTest, DriftPerturbationIsMeanReverting) {
  Simulator sim;
  DriftPerturbation drift(0.2, 50.0, 7);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += drift.Apply(1.0, static_cast<double>(i) * 10.0);
  }
  // exp(OU) has mean exp(sigma^2/2) ~ 1.02; accept a broad band.
  EXPECT_NEAR(sum / n, 1.0, 0.15);
}

TEST(GridNodeTest, PerturbationDescriptions) {
  EXPECT_EQ(NoPerturbation().Describe(), "none");
  EXPECT_NE(ConstantFactorPerturbation(10).Describe().find("10"),
            std::string::npos);
  EXPECT_NE(AddedDelayPerturbation(10).Describe().find("10"),
            std::string::npos);
}

}  // namespace
}  // namespace gqp
