#include "grid/registry.h"

#include <gtest/gtest.h>

namespace gqp {
namespace {

TEST(RegistryTest, RegisterAndFind) {
  Simulator sim;
  GridNode node(&sim, 5, "n", 1.0);
  ResourceRegistry registry;
  ASSERT_TRUE(registry.Register(&node, NodeRole::kCompute).ok());
  Result<GridNode*> found = registry.Find(5);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, &node);
}

TEST(RegistryTest, FindUnknownFails) {
  ResourceRegistry registry;
  EXPECT_TRUE(registry.Find(99).status().IsNotFound());
}

TEST(RegistryTest, DuplicateRegistrationFails) {
  Simulator sim;
  GridNode node(&sim, 5, "n", 1.0);
  ResourceRegistry registry;
  ASSERT_TRUE(registry.Register(&node, NodeRole::kCompute).ok());
  EXPECT_TRUE(registry.Register(&node, NodeRole::kData).IsAlreadyExists());
}

TEST(RegistryTest, NullNodeRejected) {
  ResourceRegistry registry;
  EXPECT_TRUE(registry.Register(nullptr, NodeRole::kData).IsInvalidArgument());
}

TEST(RegistryTest, NodesWithRolePreservesOrder) {
  Simulator sim;
  GridNode a(&sim, 1, "a", 1.0), b(&sim, 2, "b", 1.0), c(&sim, 3, "c", 1.0);
  ResourceRegistry registry;
  ASSERT_TRUE(registry.Register(&a, NodeRole::kCompute).ok());
  ASSERT_TRUE(registry.Register(&b, NodeRole::kData).ok());
  ASSERT_TRUE(registry.Register(&c, NodeRole::kCompute).ok());
  const auto compute = registry.NodesWithRole(NodeRole::kCompute);
  ASSERT_EQ(compute.size(), 2u);
  EXPECT_EQ(compute[0], &a);
  EXPECT_EQ(compute[1], &c);
  EXPECT_EQ(registry.NodesWithRole(NodeRole::kCoordinator).size(), 0u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(RegistryTest, RoleNames) {
  EXPECT_EQ(NodeRoleToString(NodeRole::kCoordinator), "coordinator");
  EXPECT_EQ(NodeRoleToString(NodeRole::kData), "data");
  EXPECT_EQ(NodeRoleToString(NodeRole::kCompute), "compute");
}

}  // namespace
}  // namespace gqp
