// Unit tests for the assessment (Diagnoser) and response (Responder)
// stages, driven over a real bus with scripted producer endpoints.

#include <gtest/gtest.h>

#include "adapt/diagnoser.h"
#include "adapt/responder.h"

namespace gqp {
namespace {

/// Scripted stand-in for a producer fragment endpoint: answers progress
/// requests with a fixed fraction and redistribute requests with a fixed
/// outcome, recording everything it receives.
class FakeProducer : public GridService {
 public:
  FakeProducer(MessageBus* bus, HostId host, std::string name)
      : GridService(bus, host, std::move(name)) {}

  double progress = 0.1;
  bool apply = true;
  std::vector<RedistributeRequestPayload> redistributes;
  int progress_requests = 0;

 protected:
  void HandleMessage(const Message& msg) override {
    if (const auto* req = PayloadAs<ProgressRequestPayload>(msg.payload)) {
      ++progress_requests;
      SubplanId id{1, 0, 0};
      (void)SendTo(msg.from, std::make_shared<ProgressReplyPayload>(
                                 req->round(), id, progress, false, 10));
      return;
    }
    if (const auto* req =
            PayloadAs<RedistributeRequestPayload>(msg.payload)) {
      redistributes.push_back(*req);
      SubplanId id{1, 0, 0};
      (void)SendTo(msg.from, std::make_shared<RedistributeOutcomePayload>(
                                 req->round(), id, apply));
      return;
    }
  }
};

class AdaptTest : public ::testing::Test {
 protected:
  AdaptTest()
      : network_(&sim_, LinkParams{0.1, 10000.0}), bus_(&network_) {}

  void Run() { sim_.RunToCompletion(); }

  /// Sends an M1-style cost digest to the diagnoser via pub/sub.
  void SendCostDigest(Diagnoser* diagnoser, GridService* publisher,
                      const SubplanId& subplan, double cost) {
    auto digest = std::make_shared<MonitoringAveragePayload>(
        MonitoringAveragePayload::Kind::kProcessingCost, subplan, SubplanId{},
        cost, 0, 1.0, 10);
    Message m;
    m.from = publisher->address();
    m.to = diagnoser->address();
    m.payload = std::make_shared<NotificationPayload>(
        kTopicMonitoringAverages, digest);
    ASSERT_TRUE(bus_.Send(m.from, m.to, m.payload).ok());
    Run();
  }

  Simulator sim_;
  Network network_;
  MessageBus bus_;
};

/// Records imbalance proposals published by a Diagnoser.
class ProposalSink : public GridService {
 public:
  using GridService::GridService;
  std::vector<ImbalanceProposalPayload> proposals;

 protected:
  void HandleMessage(const Message&) override {}
  void OnNotification(const Address&, const std::string& topic,
                      const PayloadPtr& body) override {
    if (topic != kTopicImbalance) return;
    const auto* p = PayloadAs<ImbalanceProposalPayload>(body);
    ASSERT_NE(p, nullptr);
    proposals.push_back(*p);
  }
};

TEST_F(AdaptTest, DiagnoserProposesInverseCostWeights) {
  SubplanId i0{1, 2, 0}, i1{1, 2, 1};
  Diagnoser diagnoser(&bus_, 0, "diag", {}, 2, {i0, i1}, {0.5, 0.5});
  ASSERT_TRUE(diagnoser.Start().ok());
  ProposalSink sink(&bus_, 1, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(diagnoser.address(), kTopicImbalance).ok());
  Run();

  SendCostDigest(&diagnoser, &sink, i0, 10.0);
  EXPECT_TRUE(sink.proposals.empty());  // only one instance known
  SendCostDigest(&diagnoser, &sink, i1, 1.0);
  ASSERT_EQ(sink.proposals.size(), 1u);
  // w' ~ 1/c: (1/10, 1) normalised = (1/11, 10/11).
  EXPECT_NEAR(sink.proposals[0].weights()[0], 1.0 / 11, 1e-9);
  EXPECT_NEAR(sink.proposals[0].weights()[1], 10.0 / 11, 1e-9);
}

TEST_F(AdaptTest, DiagnoserSilentBelowThreshold) {
  SubplanId i0{1, 2, 0}, i1{1, 2, 1};
  AdaptivityConfig config;
  config.thres_a = 0.20;
  Diagnoser diagnoser(&bus_, 0, "diag", config, 2, {i0, i1}, {0.5, 0.5});
  ASSERT_TRUE(diagnoser.Start().ok());
  ProposalSink sink(&bus_, 1, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(diagnoser.address(), kTopicImbalance).ok());
  Run();

  // 10% cost difference -> ~5% weight change: below thresA.
  SendCostDigest(&diagnoser, &sink, i0, 1.0);
  SendCostDigest(&diagnoser, &sink, i1, 1.1);
  EXPECT_TRUE(sink.proposals.empty());
}

TEST_F(AdaptTest, DiagnoserA2AddsCommunicationCost) {
  SubplanId i0{1, 2, 0}, i1{1, 2, 1};
  SubplanId producer{1, 0, 0};
  AdaptivityConfig config;
  config.assessment = AssessmentType::kA2;
  Diagnoser diagnoser(&bus_, 0, "diag", config, 2, {i0, i1}, {0.5, 0.5});
  ASSERT_TRUE(diagnoser.Start().ok());
  ProposalSink sink(&bus_, 1, "sink");
  ASSERT_TRUE(sink.Start().ok());
  ASSERT_TRUE(sink.Subscribe(diagnoser.address(), kTopicImbalance).ok());
  Run();

  // Comm digest: 50 ms per 50-tuple buffer to i0 = 1 ms/tuple extra.
  auto comm = std::make_shared<MonitoringAveragePayload>(
      MonitoringAveragePayload::Kind::kCommunicationCost, producer, i0, 50.0,
      50.0, 1.0, 5);
  ASSERT_TRUE(bus_.Send(sink.address(), diagnoser.address(),
                        std::make_shared<NotificationPayload>(
                            kTopicMonitoringAverages, comm))
                  .ok());
  Run();
  SendCostDigest(&diagnoser, &sink, i0, 1.0);
  SendCostDigest(&diagnoser, &sink, i1, 1.0);
  // A2 totals: i0 = 1 + 1 = 2, i1 = 1 -> weights (1/3, 2/3).
  ASSERT_EQ(sink.proposals.size(), 1u);
  EXPECT_NEAR(sink.proposals[0].weights()[0], 1.0 / 3, 1e-9);
}

TEST_F(AdaptTest, DiagnoserUpdatesWOnWeightsApplied) {
  SubplanId i0{1, 2, 0}, i1{1, 2, 1};
  Diagnoser diagnoser(&bus_, 0, "diag", {}, 2, {i0, i1}, {0.5, 0.5});
  ASSERT_TRUE(diagnoser.Start().ok());
  ProposalSink sink(&bus_, 1, "sink");
  ASSERT_TRUE(sink.Start().ok());

  auto applied = std::make_shared<WeightsAppliedPayload>(
      1, 2, std::vector<double>{0.1, 0.9});
  ASSERT_TRUE(bus_.Send(sink.address(), diagnoser.address(),
                        std::make_shared<NotificationPayload>(
                            kTopicWeightsApplied, applied))
                  .ok());
  Run();
  EXPECT_EQ(diagnoser.current_weights(), (std::vector<double>{0.1, 0.9}));
}

TEST_F(AdaptTest, ResponderRunsProgressThenRedistributes) {
  FakeProducer producer(&bus_, 1, "q1.f0.i0");
  ASSERT_TRUE(producer.Start().ok());
  AdaptivityConfig config;
  config.response = ResponseType::kRetrospective;
  Responder responder(&bus_, 0, "resp", config, 2,
                      {{SubplanId{1, 0, 0}, producer.address()}},
                      {0.5, 0.5});
  ASSERT_TRUE(responder.Start().ok());

  // Feed a proposal through the pub/sub path.
  auto proposal = std::make_shared<ImbalanceProposalPayload>(
      2, std::vector<double>{0.2, 0.8}, std::vector<double>{5.0, 1.0});
  ASSERT_TRUE(bus_.Send(Address{0, "diag"}, responder.address(),
                        std::make_shared<NotificationPayload>(
                            kTopicImbalance, proposal))
                  .ok());
  Run();

  EXPECT_EQ(producer.progress_requests, 1);
  ASSERT_EQ(producer.redistributes.size(), 1u);
  EXPECT_TRUE(producer.redistributes[0].retrospective());
  EXPECT_EQ(producer.redistributes[0].weights(),
            (std::vector<double>{0.2, 0.8}));
  EXPECT_EQ(responder.stats().rounds_applied, 1u);
  EXPECT_EQ(responder.current_weights(), (std::vector<double>{0.2, 0.8}));
}

TEST_F(AdaptTest, ResponderSkipsProspectiveNearCompletion) {
  FakeProducer producer(&bus_, 1, "q1.f0.i0");
  producer.progress = 0.99;
  ASSERT_TRUE(producer.Start().ok());
  AdaptivityConfig config;
  config.response = ResponseType::kProspective;
  config.progress_guard = 0.90;
  Responder responder(&bus_, 0, "resp", config, 2,
                      {{SubplanId{1, 0, 0}, producer.address()}},
                      {0.5, 0.5});
  ASSERT_TRUE(responder.Start().ok());

  auto proposal = std::make_shared<ImbalanceProposalPayload>(
      2, std::vector<double>{0.2, 0.8}, std::vector<double>{5.0, 1.0});
  ASSERT_TRUE(bus_.Send(Address{0, "diag"}, responder.address(),
                        std::make_shared<NotificationPayload>(
                            kTopicImbalance, proposal))
                  .ok());
  Run();
  EXPECT_TRUE(producer.redistributes.empty());
  EXPECT_EQ(responder.stats().skipped_progress, 1u);
}

TEST_F(AdaptTest, CompletionOfferDisablesAdaptationAndGrants) {
  FakeProducer producer(&bus_, 1, "q1.f0.i0");
  ASSERT_TRUE(producer.Start().ok());
  Responder responder(&bus_, 0, "resp", {}, 2,
                      {{SubplanId{1, 0, 0}, producer.address()}},
                      {0.5, 0.5});
  ASSERT_TRUE(responder.Start().ok());

  // A consumer offers completion.
  bool granted = false;
  class GrantSink : public GridService {
   public:
    GrantSink(MessageBus* bus, bool* granted)
        : GridService(bus, 2, "consumer"), granted_(granted) {}

   protected:
    void HandleMessage(const Message& msg) override {
      if (PayloadAs<CompletionGrantPayload>(msg.payload) != nullptr) {
        *granted_ = true;
      }
    }
    bool* granted_;
  } consumer(&bus_, &granted);
  ASSERT_TRUE(consumer.Start().ok());

  ASSERT_TRUE(bus_.Send(consumer.address(), responder.address(),
                        std::make_shared<CompletionOfferPayload>(
                            SubplanId{1, 2, 0}))
                  .ok());
  Run();
  EXPECT_TRUE(granted);
  EXPECT_FALSE(responder.adaptation_enabled());

  // Later proposals are ignored.
  auto proposal = std::make_shared<ImbalanceProposalPayload>(
      2, std::vector<double>{0.2, 0.8}, std::vector<double>{5.0, 1.0});
  ASSERT_TRUE(bus_.Send(Address{0, "diag"}, responder.address(),
                        std::make_shared<NotificationPayload>(
                            kTopicImbalance, proposal))
                  .ok());
  Run();
  EXPECT_TRUE(producer.redistributes.empty());
  EXPECT_EQ(responder.stats().skipped_disabled, 1u);
}

TEST_F(AdaptTest, FailureNoticeTriggersRecoveryRound) {
  FakeProducer producer(&bus_, 1, "q1.f0.i0");
  ASSERT_TRUE(producer.Start().ok());
  Responder responder(&bus_, 0, "resp", {}, 2,
                      {{SubplanId{1, 0, 0}, producer.address()}},
                      {0.5, 0.5});
  ASSERT_TRUE(responder.Start().ok());

  ASSERT_TRUE(bus_.Send(Address{0, "gdqs"}, responder.address(),
                        std::make_shared<FailureNoticePayload>(
                            SubplanId{1, 2, 1}, 1))
                  .ok());
  Run();

  ASSERT_EQ(producer.redistributes.size(), 1u);
  const auto& req = producer.redistributes[0];
  EXPECT_TRUE(req.retrospective());
  EXPECT_EQ(req.dead_consumers(), (std::vector<int>{1}));
  EXPECT_EQ(req.weights(), (std::vector<double>{1.0, 0.0}));
  EXPECT_EQ(responder.stats().failures_handled, 1u);
  // Duplicate notices are idempotent.
  ASSERT_TRUE(bus_.Send(Address{0, "gdqs"}, responder.address(),
                        std::make_shared<FailureNoticePayload>(
                            SubplanId{1, 2, 1}, 1))
                  .ok());
  Run();
  EXPECT_EQ(responder.stats().failures_handled, 1u);
}

TEST_F(AdaptTest, RecoveryRunsEvenAfterCompletionOffersDisabledAdaptation) {
  FakeProducer producer(&bus_, 1, "q1.f0.i0");
  ASSERT_TRUE(producer.Start().ok());
  Responder responder(&bus_, 0, "resp", {}, 2,
                      {{SubplanId{1, 0, 0}, producer.address()}},
                      {0.5, 0.5});
  ASSERT_TRUE(responder.Start().ok());

  ASSERT_TRUE(bus_.Send(Address{2, "c"}, responder.address(),
                        std::make_shared<CompletionOfferPayload>(
                            SubplanId{1, 2, 0}))
                  .ok());
  Run();
  ASSERT_FALSE(responder.adaptation_enabled());

  ASSERT_TRUE(bus_.Send(Address{0, "gdqs"}, responder.address(),
                        std::make_shared<FailureNoticePayload>(
                            SubplanId{1, 2, 1}, 1))
                  .ok());
  Run();
  EXPECT_EQ(producer.redistributes.size(), 1u);
}

TEST(AdaptTypeNames, ToStringHelpers) {
  EXPECT_EQ(AssessmentTypeToString(AssessmentType::kA1), "A1");
  EXPECT_EQ(AssessmentTypeToString(AssessmentType::kA2), "A2");
  EXPECT_EQ(ResponseTypeToString(ResponseType::kProspective), "R2");
  EXPECT_EQ(ResponseTypeToString(ResponseType::kRetrospective), "R1");
}

}  // namespace
}  // namespace gqp
