file(REMOVE_RECURSE
  "libgqp_workload.a"
)
