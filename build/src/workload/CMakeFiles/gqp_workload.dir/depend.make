# Empty dependencies file for gqp_workload.
# This may be replaced when dependencies are built.
