file(REMOVE_RECURSE
  "CMakeFiles/gqp_workload.dir/experiment.cc.o"
  "CMakeFiles/gqp_workload.dir/experiment.cc.o.d"
  "CMakeFiles/gqp_workload.dir/grid_setup.cc.o"
  "CMakeFiles/gqp_workload.dir/grid_setup.cc.o.d"
  "libgqp_workload.a"
  "libgqp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
