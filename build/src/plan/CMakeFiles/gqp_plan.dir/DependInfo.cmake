
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/binder.cc" "src/plan/CMakeFiles/gqp_plan.dir/binder.cc.o" "gcc" "src/plan/CMakeFiles/gqp_plan.dir/binder.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/plan/CMakeFiles/gqp_plan.dir/logical_plan.cc.o" "gcc" "src/plan/CMakeFiles/gqp_plan.dir/logical_plan.cc.o.d"
  "/root/repo/src/plan/optimizer.cc" "src/plan/CMakeFiles/gqp_plan.dir/optimizer.cc.o" "gcc" "src/plan/CMakeFiles/gqp_plan.dir/optimizer.cc.o.d"
  "/root/repo/src/plan/physical_plan.cc" "src/plan/CMakeFiles/gqp_plan.dir/physical_plan.cc.o" "gcc" "src/plan/CMakeFiles/gqp_plan.dir/physical_plan.cc.o.d"
  "/root/repo/src/plan/scheduler.cc" "src/plan/CMakeFiles/gqp_plan.dir/scheduler.cc.o" "gcc" "src/plan/CMakeFiles/gqp_plan.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gqp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/gqp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/gqp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/gqp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gqp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gqp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
