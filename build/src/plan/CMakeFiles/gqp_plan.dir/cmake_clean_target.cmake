file(REMOVE_RECURSE
  "libgqp_plan.a"
)
