file(REMOVE_RECURSE
  "CMakeFiles/gqp_plan.dir/binder.cc.o"
  "CMakeFiles/gqp_plan.dir/binder.cc.o.d"
  "CMakeFiles/gqp_plan.dir/logical_plan.cc.o"
  "CMakeFiles/gqp_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/gqp_plan.dir/optimizer.cc.o"
  "CMakeFiles/gqp_plan.dir/optimizer.cc.o.d"
  "CMakeFiles/gqp_plan.dir/physical_plan.cc.o"
  "CMakeFiles/gqp_plan.dir/physical_plan.cc.o.d"
  "CMakeFiles/gqp_plan.dir/scheduler.cc.o"
  "CMakeFiles/gqp_plan.dir/scheduler.cc.o.d"
  "libgqp_plan.a"
  "libgqp_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
