# Empty compiler generated dependencies file for gqp_plan.
# This may be replaced when dependencies are built.
