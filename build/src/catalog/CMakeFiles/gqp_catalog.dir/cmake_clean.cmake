file(REMOVE_RECURSE
  "CMakeFiles/gqp_catalog.dir/catalog.cc.o"
  "CMakeFiles/gqp_catalog.dir/catalog.cc.o.d"
  "libgqp_catalog.a"
  "libgqp_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
