# Empty dependencies file for gqp_catalog.
# This may be replaced when dependencies are built.
