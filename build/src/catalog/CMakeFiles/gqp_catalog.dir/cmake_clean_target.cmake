file(REMOVE_RECURSE
  "libgqp_catalog.a"
)
