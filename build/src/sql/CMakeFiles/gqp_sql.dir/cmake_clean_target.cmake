file(REMOVE_RECURSE
  "libgqp_sql.a"
)
