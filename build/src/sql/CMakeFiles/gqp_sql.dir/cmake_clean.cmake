file(REMOVE_RECURSE
  "CMakeFiles/gqp_sql.dir/ast.cc.o"
  "CMakeFiles/gqp_sql.dir/ast.cc.o.d"
  "CMakeFiles/gqp_sql.dir/lexer.cc.o"
  "CMakeFiles/gqp_sql.dir/lexer.cc.o.d"
  "CMakeFiles/gqp_sql.dir/parser.cc.o"
  "CMakeFiles/gqp_sql.dir/parser.cc.o.d"
  "libgqp_sql.a"
  "libgqp_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
