# Empty dependencies file for gqp_sql.
# This may be replaced when dependencies are built.
