# Empty dependencies file for gqp_dqp.
# This may be replaced when dependencies are built.
