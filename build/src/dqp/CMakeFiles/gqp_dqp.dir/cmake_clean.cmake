file(REMOVE_RECURSE
  "CMakeFiles/gqp_dqp.dir/gdqs.cc.o"
  "CMakeFiles/gqp_dqp.dir/gdqs.cc.o.d"
  "CMakeFiles/gqp_dqp.dir/gqes.cc.o"
  "CMakeFiles/gqp_dqp.dir/gqes.cc.o.d"
  "libgqp_dqp.a"
  "libgqp_dqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_dqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
