file(REMOVE_RECURSE
  "libgqp_dqp.a"
)
