# Empty dependencies file for gqp_exec.
# This may be replaced when dependencies are built.
