file(REMOVE_RECURSE
  "libgqp_exec.a"
)
