file(REMOVE_RECURSE
  "CMakeFiles/gqp_exec.dir/distribution_policy.cc.o"
  "CMakeFiles/gqp_exec.dir/distribution_policy.cc.o.d"
  "CMakeFiles/gqp_exec.dir/exchange_producer.cc.o"
  "CMakeFiles/gqp_exec.dir/exchange_producer.cc.o.d"
  "CMakeFiles/gqp_exec.dir/fragment_executor.cc.o"
  "CMakeFiles/gqp_exec.dir/fragment_executor.cc.o.d"
  "CMakeFiles/gqp_exec.dir/operators.cc.o"
  "CMakeFiles/gqp_exec.dir/operators.cc.o.d"
  "libgqp_exec.a"
  "libgqp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
