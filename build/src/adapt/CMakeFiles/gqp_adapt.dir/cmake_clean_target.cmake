file(REMOVE_RECURSE
  "libgqp_adapt.a"
)
