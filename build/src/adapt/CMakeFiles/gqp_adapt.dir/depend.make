# Empty dependencies file for gqp_adapt.
# This may be replaced when dependencies are built.
