file(REMOVE_RECURSE
  "CMakeFiles/gqp_adapt.dir/diagnoser.cc.o"
  "CMakeFiles/gqp_adapt.dir/diagnoser.cc.o.d"
  "CMakeFiles/gqp_adapt.dir/responder.cc.o"
  "CMakeFiles/gqp_adapt.dir/responder.cc.o.d"
  "libgqp_adapt.a"
  "libgqp_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
