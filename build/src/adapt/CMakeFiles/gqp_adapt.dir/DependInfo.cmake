
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/diagnoser.cc" "src/adapt/CMakeFiles/gqp_adapt.dir/diagnoser.cc.o" "gcc" "src/adapt/CMakeFiles/gqp_adapt.dir/diagnoser.cc.o.d"
  "/root/repo/src/adapt/responder.cc" "src/adapt/CMakeFiles/gqp_adapt.dir/responder.cc.o" "gcc" "src/adapt/CMakeFiles/gqp_adapt.dir/responder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gqp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/gqp_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gqp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/gqp_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/gqp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/gqp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gqp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gqp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/gqp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/gqp_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gqp_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
