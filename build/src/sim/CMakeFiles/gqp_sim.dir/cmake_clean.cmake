file(REMOVE_RECURSE
  "CMakeFiles/gqp_sim.dir/simulator.cc.o"
  "CMakeFiles/gqp_sim.dir/simulator.cc.o.d"
  "libgqp_sim.a"
  "libgqp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
