# Empty dependencies file for gqp_sim.
# This may be replaced when dependencies are built.
