file(REMOVE_RECURSE
  "libgqp_sim.a"
)
