# Empty dependencies file for gqp_net.
# This may be replaced when dependencies are built.
