file(REMOVE_RECURSE
  "CMakeFiles/gqp_net.dir/network.cc.o"
  "CMakeFiles/gqp_net.dir/network.cc.o.d"
  "libgqp_net.a"
  "libgqp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
