file(REMOVE_RECURSE
  "libgqp_net.a"
)
