# Empty dependencies file for gqp_grid.
# This may be replaced when dependencies are built.
