file(REMOVE_RECURSE
  "libgqp_grid.a"
)
