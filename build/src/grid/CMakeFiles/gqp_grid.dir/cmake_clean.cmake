file(REMOVE_RECURSE
  "CMakeFiles/gqp_grid.dir/node.cc.o"
  "CMakeFiles/gqp_grid.dir/node.cc.o.d"
  "CMakeFiles/gqp_grid.dir/perturbation.cc.o"
  "CMakeFiles/gqp_grid.dir/perturbation.cc.o.d"
  "CMakeFiles/gqp_grid.dir/registry.cc.o"
  "CMakeFiles/gqp_grid.dir/registry.cc.o.d"
  "libgqp_grid.a"
  "libgqp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
