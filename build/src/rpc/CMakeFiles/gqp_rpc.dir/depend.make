# Empty dependencies file for gqp_rpc.
# This may be replaced when dependencies are built.
