file(REMOVE_RECURSE
  "CMakeFiles/gqp_rpc.dir/message_bus.cc.o"
  "CMakeFiles/gqp_rpc.dir/message_bus.cc.o.d"
  "CMakeFiles/gqp_rpc.dir/service.cc.o"
  "CMakeFiles/gqp_rpc.dir/service.cc.o.d"
  "libgqp_rpc.a"
  "libgqp_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
