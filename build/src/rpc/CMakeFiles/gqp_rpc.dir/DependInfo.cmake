
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/message_bus.cc" "src/rpc/CMakeFiles/gqp_rpc.dir/message_bus.cc.o" "gcc" "src/rpc/CMakeFiles/gqp_rpc.dir/message_bus.cc.o.d"
  "/root/repo/src/rpc/service.cc" "src/rpc/CMakeFiles/gqp_rpc.dir/service.cc.o" "gcc" "src/rpc/CMakeFiles/gqp_rpc.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gqp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gqp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
