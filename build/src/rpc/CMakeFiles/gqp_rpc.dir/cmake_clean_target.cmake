file(REMOVE_RECURSE
  "libgqp_rpc.a"
)
