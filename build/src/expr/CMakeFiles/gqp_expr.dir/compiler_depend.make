# Empty compiler generated dependencies file for gqp_expr.
# This may be replaced when dependencies are built.
