file(REMOVE_RECURSE
  "CMakeFiles/gqp_expr.dir/expression.cc.o"
  "CMakeFiles/gqp_expr.dir/expression.cc.o.d"
  "libgqp_expr.a"
  "libgqp_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
