file(REMOVE_RECURSE
  "libgqp_expr.a"
)
