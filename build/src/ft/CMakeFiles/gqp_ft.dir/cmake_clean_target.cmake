file(REMOVE_RECURSE
  "libgqp_ft.a"
)
