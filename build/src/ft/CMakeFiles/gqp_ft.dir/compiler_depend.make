# Empty compiler generated dependencies file for gqp_ft.
# This may be replaced when dependencies are built.
