file(REMOVE_RECURSE
  "CMakeFiles/gqp_ft.dir/recovery_log.cc.o"
  "CMakeFiles/gqp_ft.dir/recovery_log.cc.o.d"
  "libgqp_ft.a"
  "libgqp_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
