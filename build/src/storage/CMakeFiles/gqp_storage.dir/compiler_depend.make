# Empty compiler generated dependencies file for gqp_storage.
# This may be replaced when dependencies are built.
