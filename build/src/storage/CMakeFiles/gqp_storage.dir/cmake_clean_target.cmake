file(REMOVE_RECURSE
  "libgqp_storage.a"
)
