file(REMOVE_RECURSE
  "CMakeFiles/gqp_storage.dir/datagen.cc.o"
  "CMakeFiles/gqp_storage.dir/datagen.cc.o.d"
  "CMakeFiles/gqp_storage.dir/schema.cc.o"
  "CMakeFiles/gqp_storage.dir/schema.cc.o.d"
  "CMakeFiles/gqp_storage.dir/table.cc.o"
  "CMakeFiles/gqp_storage.dir/table.cc.o.d"
  "CMakeFiles/gqp_storage.dir/tuple.cc.o"
  "CMakeFiles/gqp_storage.dir/tuple.cc.o.d"
  "CMakeFiles/gqp_storage.dir/value.cc.o"
  "CMakeFiles/gqp_storage.dir/value.cc.o.d"
  "libgqp_storage.a"
  "libgqp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
