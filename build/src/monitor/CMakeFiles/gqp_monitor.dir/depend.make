# Empty dependencies file for gqp_monitor.
# This may be replaced when dependencies are built.
