
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/monitoring_event_detector.cc" "src/monitor/CMakeFiles/gqp_monitor.dir/monitoring_event_detector.cc.o" "gcc" "src/monitor/CMakeFiles/gqp_monitor.dir/monitoring_event_detector.cc.o.d"
  "/root/repo/src/monitor/window_average.cc" "src/monitor/CMakeFiles/gqp_monitor.dir/window_average.cc.o" "gcc" "src/monitor/CMakeFiles/gqp_monitor.dir/window_average.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gqp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/gqp_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/gqp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gqp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gqp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
