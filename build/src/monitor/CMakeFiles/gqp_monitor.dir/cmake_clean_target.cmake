file(REMOVE_RECURSE
  "libgqp_monitor.a"
)
