file(REMOVE_RECURSE
  "CMakeFiles/gqp_monitor.dir/monitoring_event_detector.cc.o"
  "CMakeFiles/gqp_monitor.dir/monitoring_event_detector.cc.o.d"
  "CMakeFiles/gqp_monitor.dir/window_average.cc.o"
  "CMakeFiles/gqp_monitor.dir/window_average.cc.o.d"
  "libgqp_monitor.a"
  "libgqp_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
