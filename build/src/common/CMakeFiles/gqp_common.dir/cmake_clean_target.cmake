file(REMOVE_RECURSE
  "libgqp_common.a"
)
