# Empty compiler generated dependencies file for gqp_common.
# This may be replaced when dependencies are built.
