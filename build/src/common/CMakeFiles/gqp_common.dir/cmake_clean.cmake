file(REMOVE_RECURSE
  "CMakeFiles/gqp_common.dir/logging.cc.o"
  "CMakeFiles/gqp_common.dir/logging.cc.o.d"
  "CMakeFiles/gqp_common.dir/random.cc.o"
  "CMakeFiles/gqp_common.dir/random.cc.o.d"
  "CMakeFiles/gqp_common.dir/status.cc.o"
  "CMakeFiles/gqp_common.dir/status.cc.o.d"
  "CMakeFiles/gqp_common.dir/strings.cc.o"
  "CMakeFiles/gqp_common.dir/strings.cc.o.d"
  "libgqp_common.a"
  "libgqp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gqp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
