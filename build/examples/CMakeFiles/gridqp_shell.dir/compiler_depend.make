# Empty compiler generated dependencies file for gridqp_shell.
# This may be replaced when dependencies are built.
