file(REMOVE_RECURSE
  "CMakeFiles/gridqp_shell.dir/gridqp_shell.cpp.o"
  "CMakeFiles/gridqp_shell.dir/gridqp_shell.cpp.o.d"
  "gridqp_shell"
  "gridqp_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridqp_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
