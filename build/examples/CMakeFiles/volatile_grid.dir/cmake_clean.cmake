file(REMOVE_RECURSE
  "CMakeFiles/volatile_grid.dir/volatile_grid.cpp.o"
  "CMakeFiles/volatile_grid.dir/volatile_grid.cpp.o.d"
  "volatile_grid"
  "volatile_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volatile_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
