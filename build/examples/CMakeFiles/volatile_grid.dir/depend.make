# Empty dependencies file for volatile_grid.
# This may be replaced when dependencies are built.
