# Empty compiler generated dependencies file for adaptive_workflow.
# This may be replaced when dependencies are built.
