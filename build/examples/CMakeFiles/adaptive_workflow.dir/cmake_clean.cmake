file(REMOVE_RECURSE
  "CMakeFiles/adaptive_workflow.dir/adaptive_workflow.cpp.o"
  "CMakeFiles/adaptive_workflow.dir/adaptive_workflow.cpp.o.d"
  "adaptive_workflow"
  "adaptive_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
