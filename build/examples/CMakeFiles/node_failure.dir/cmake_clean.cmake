file(REMOVE_RECURSE
  "CMakeFiles/node_failure.dir/node_failure.cpp.o"
  "CMakeFiles/node_failure.dir/node_failure.cpp.o.d"
  "node_failure"
  "node_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
