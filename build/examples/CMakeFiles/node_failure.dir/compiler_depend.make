# Empty compiler generated dependencies file for node_failure.
# This may be replaced when dependencies are built.
