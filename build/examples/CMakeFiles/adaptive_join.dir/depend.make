# Empty dependencies file for adaptive_join.
# This may be replaced when dependencies are built.
