file(REMOVE_RECURSE
  "CMakeFiles/adaptive_join.dir/adaptive_join.cpp.o"
  "CMakeFiles/adaptive_join.dir/adaptive_join.cpp.o.d"
  "adaptive_join"
  "adaptive_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
