#include "ft/recovery_log.h"

#include <algorithm>

namespace gqp {

void RecoveryLog::Append(LogRecord record) {
  stats_.bytes_held += record.tuple.WireSize();
  stats_.bytes_peak = std::max(stats_.bytes_peak, stats_.bytes_held);
  records_.emplace(record.seq, std::move(record));
  ++stats_.appended;
  stats_.high_watermark = std::max(stats_.high_watermark, records_.size());
}

void RecoveryLog::Ack(uint64_t seq) {
  auto it = records_.find(seq);
  if (it == records_.end()) return;
  const uint64_t bytes = it->second.tuple.WireSize();
  stats_.bytes_held -= std::min(stats_.bytes_held, bytes);
  records_.erase(it);
  ++stats_.acked;
}

void RecoveryLog::AckBatch(const std::vector<uint64_t>& seqs) {
  for (const uint64_t seq : seqs) Ack(seq);
}

std::vector<LogRecord> RecoveryLog::Extract(
    const std::function<bool(const LogRecord&)>& pred) {
  std::vector<LogRecord> out;
  for (auto it = records_.begin(); it != records_.end();) {
    if (pred(it->second)) {
      const uint64_t bytes = it->second.tuple.WireSize();
      stats_.bytes_held -= std::min(stats_.bytes_held, bytes);
      out.push_back(std::move(it->second));
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.extracted += out.size();
  return out;
}

std::vector<LogRecord> RecoveryLog::ExtractAll() {
  return Extract([](const LogRecord&) { return true; });
}

std::vector<uint64_t> RecoveryLog::PendingSeqs() const {
  std::vector<uint64_t> seqs;
  seqs.reserve(records_.size());
  for (const auto& [seq, rec] : records_) seqs.push_back(seq);
  return seqs;
}

std::vector<std::pair<uint64_t, int>> RecoveryLog::PendingConsumers() const {
  std::vector<std::pair<uint64_t, int>> pairs;
  pairs.reserve(records_.size());
  for (const auto& [seq, rec] : records_) pairs.emplace_back(seq, rec.consumer);
  return pairs;
}

bool AckBatcher::Add(uint64_t seq) {
  pending_.push_back(seq);
  return pending_.size() >= interval_;
}

std::vector<uint64_t> AckBatcher::Drain() {
  std::vector<uint64_t> out;
  out.swap(pending_);
  return out;
}

void AckBatcher::Remove(uint64_t seq) {
  pending_.erase(std::remove(pending_.begin(), pending_.end(), seq),
                 pending_.end());
}

}  // namespace gqp
