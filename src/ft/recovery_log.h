// Recovery log: the fault-tolerance substrate (after Smith & Watson,
// CS-TR-893) that the paper reuses for retrospective (R1) state
// repartitioning. Exchange producers append every outgoing tuple; records
// are pruned when acknowledgment tuples return from consumers. At any
// instant the log therefore holds exactly the tuples that are in transit,
// queued unprocessed at consumers, or resident in downstream operator
// state — the set R1 redistributes.

#ifndef GRIDQP_FT_RECOVERY_LOG_H_
#define GRIDQP_FT_RECOVERY_LOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace gqp {

/// One logged outgoing tuple.
struct LogRecord {
  /// Producer-global sequence number (unique per producer instance).
  uint64_t seq = 0;
  /// Logical partition bucket (hash policies) or -1 (round-robin policies).
  int bucket = -1;
  /// Consumer index the tuple was sent to.
  int consumer = -1;
  Tuple tuple;
};

/// Aggregate counters for overhead reporting.
struct RecoveryLogStats {
  uint64_t appended = 0;
  uint64_t acked = 0;
  uint64_t extracted = 0;
  size_t high_watermark = 0;
  /// Bytes of tuple payload currently held (Tuple::WireSize is memoized,
  /// so the charge/reclaim symmetry is exact even across Reinsert).
  uint64_t bytes_held = 0;
  uint64_t bytes_peak = 0;
};

/// \brief Per-producer log of unacknowledged outgoing tuples.
class RecoveryLog {
 public:
  /// Appends a record. Sequence numbers must be strictly increasing.
  void Append(LogRecord record);

  /// Removes a record upon acknowledgment. Unknown seqs are ignored
  /// (acks may race with retrospective extraction).
  void Ack(uint64_t seq);

  /// Removes a batch of acknowledged records.
  void AckBatch(const std::vector<uint64_t>& seqs);

  /// \brief Extracts (removes and returns) all records matching `pred`,
  /// in sequence order.
  ///
  /// R1 redistribution uses this to pull back the tuples whose partition
  /// assignment changed.
  std::vector<LogRecord> Extract(
      const std::function<bool(const LogRecord&)>& pred);

  /// Extracts every record (round-robin policies redistribute all
  /// unprocessed tuples).
  std::vector<LogRecord> ExtractAll();

  /// Re-inserts a record after re-routing (it is still unacknowledged, now
  /// owned by a different consumer).
  void Reinsert(LogRecord record) { Append(std::move(record)); }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  bool Contains(uint64_t seq) const { return records_.count(seq) > 0; }
  const RecoveryLogStats& stats() const { return stats_; }

  /// Sequence numbers still unacknowledged, ascending. A query that ran to
  /// completion must leave every producer log empty; the chaos harness
  /// reports the stranded seqs when that invariant breaks.
  std::vector<uint64_t> PendingSeqs() const;

  /// Pending (seq, consumer index) pairs, ascending by seq. The chaos
  /// invariants exempt entries whose consumer died unreported: their acks
  /// were abandoned and the retained copy is the at-least-once insurance.
  std::vector<std::pair<uint64_t, int>> PendingConsumers() const;

 private:
  std::map<uint64_t, LogRecord> records_;
  RecoveryLogStats stats_;
};

/// \brief Consumer-side acknowledgment batching.
///
/// Consumers acknowledge at checkpoint granularity: processed sequence
/// numbers accumulate and are drained every `checkpoint_interval` tuples
/// (or explicitly at end-of-stream), mirroring the paper's checkpoint /
/// acknowledgment-tuple protocol.
class AckBatcher {
 public:
  explicit AckBatcher(size_t checkpoint_interval)
      : interval_(checkpoint_interval == 0 ? 1 : checkpoint_interval) {}

  /// Records a processed tuple. Returns true when a checkpoint boundary is
  /// reached and Drain() should be sent upstream.
  bool Add(uint64_t seq);

  /// Returns and clears the pending acknowledgment batch.
  std::vector<uint64_t> Drain();

  /// Discards a pending seq (the tuple was recalled before its ack went
  /// out; the producer will resend it elsewhere).
  void Remove(uint64_t seq);

  size_t pending() const { return pending_.size(); }

  /// Seqs currently awaiting acknowledgment (used in StateMove replies so
  /// producers do not resend tuples that were already processed).
  const std::vector<uint64_t>& pending_seqs() const { return pending_; }

 private:
  size_t interval_;
  std::vector<uint64_t> pending_;
};

}  // namespace gqp

#endif  // GRIDQP_FT_RECOVERY_LOG_H_
