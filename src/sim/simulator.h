// Discrete-event simulation kernel. All GridQP experiments run in virtual
// time: grid nodes, the network, and the adaptivity services schedule
// callbacks on a single Simulator, which executes them in timestamp order.
//
// Determinism: ties on timestamp are broken by scheduling sequence number,
// so a run is a pure function of its inputs (including RNG seeds).
//
// Hot-path layout (see DESIGN.md "Performance engineering"): events live
// in a pool of recycled slots with the callback stored inline (no
// per-event heap allocation for captures up to kInlineCapacity bytes, no
// hash-map bookkeeping). The binary heap orders lightweight 24-byte
// entries by (time, seq); cancellation bumps the slot's generation
// counter, and stale heap entries are discarded lazily when they surface.
// The trace sink still receives the scheduling sequence number, so the
// (time, seq) fingerprint stream is identical to the pre-pool kernel.

#ifndef GRIDQP_SIM_SIMULATOR_H_
#define GRIDQP_SIM_SIMULATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gqp {

/// Virtual time in milliseconds.
using SimTime = double;

constexpr SimTime kSimTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Handle for a scheduled event; usable with Simulator::Cancel. Opaque:
/// encodes the event's pool slot and its generation at scheduling time.
/// (The trace sink receives scheduling sequence numbers, not handles.)
using EventId = uint64_t;

constexpr EventId kInvalidEventId = 0;

/// \brief Single-threaded discrete-event simulator.
///
/// Not thread-safe by design: determinism is a core requirement (see
/// DESIGN.md D1).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator() { DestroyPending(); }

  /// Current virtual time (ms). Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ms from now. Negative delays are clamped
  /// to 0 (the event still runs after currently pending events at Now()).
  template <typename Fn>
  EventId Schedule(SimTime delay, Fn&& fn) {
    if (delay < 0) delay = 0;
    return ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  /// Schedules `fn` at an absolute virtual time. Times in the past are
  /// clamped to Now().
  template <typename Fn>
  EventId ScheduleAt(SimTime when, Fn&& fn) {
    static_assert(std::is_invocable_v<std::decay_t<Fn>>,
                  "event callbacks take no arguments");
    if (when < now_) when = now_;
    const uint32_t slot = AllocSlot();
    EventSlot& s = SlotRef(slot);
    using F = std::decay_t<Fn>;
    if constexpr (sizeof(F) <= EventSlot::kInlineCapacity &&
                  alignof(F) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) F(std::forward<Fn>(fn));
      s.invoke = [](void* p) { (*static_cast<F*>(p))(); };
      s.destroy = [](void* p) { static_cast<F*>(p)->~F(); };
    } else {
      // Oversized capture: one boxed allocation, pointer stored inline.
      ::new (static_cast<void*>(s.storage)) (F*)(new F(std::forward<Fn>(fn)));
      s.invoke = [](void* p) { (**static_cast<F**>(p))(); };
      s.destroy = [](void* p) { delete *static_cast<F**>(p); };
    }
    heap_.push_back(HeapEntry{when, next_seq_++, slot, s.gen});
    std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
    ++live_;
    return MakeEventId(slot, s.gen);
  }

  /// Cancels a pending event. Cancelling an already-fired, already-
  /// cancelled or unknown event is a no-op. Returns true if the event was
  /// pending (exactly once per scheduled event).
  bool Cancel(EventId id);

  /// Runs one event. Returns false if the queue is empty.
  bool Step();

  /// Runs until the event queue is empty or `until` is passed (events with
  /// timestamp > `until` stay queued; Now() advances to at most `until`).
  /// Returns an error if the event budget is exhausted (runaway loop guard).
  Status Run(SimTime until = kSimTimeInfinity);

  /// Timestamp of the earliest pending event, or kSimTimeInfinity if none.
  /// Discards stale (cancelled) heap entries as a side effect; does not
  /// execute anything or advance Now(). Used by the sharded kernel to
  /// compute conservative synchronization windows.
  SimTime NextEventTime();

  /// Runs every pending event with timestamp strictly below `end` (new
  /// events scheduled inside the window run too if they land below `end`).
  /// Unlike Run(), does NOT advance Now() to `end` — the sharded kernel
  /// advances clocks explicitly via AdvanceTo() at barriers. The runaway
  /// guard is cumulative across windows: events_executed() >= max_events
  /// fails, so a runaway inside one shard is caught no matter how the run
  /// is windowed.
  Status RunWindow(SimTime end);

  /// Advances Now() to `t` without executing anything (no-op if t <= Now()).
  /// Barrier helper for the sharded kernel: before a global (stop-the-world)
  /// event at time G runs, every shard clock is moved to G so events it
  /// schedules with zero delay land at G on any shard.
  void AdvanceTo(SimTime t) {
    if (t > now_ && t != kSimTimeInfinity) now_ = t;
  }

  /// Convenience: runs the full simulation and returns the final time.
  /// CHECK-fails (aborts) on runaway; use Run() where errors must propagate.
  SimTime RunToCompletion();

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of currently pending (non-cancelled) events. Exact: scheduling
  /// increments, firing or a successful Cancel decrements; re-cancelling
  /// or cancelling unknown ids has no effect.
  size_t pending_events() const { return live_; }

  /// Replaces the runaway guard (default: 500M events).
  void set_max_events(uint64_t max_events) { max_events_ = max_events; }

  /// Observer invoked for every executed event, immediately before its
  /// callback runs, with the event's scheduling sequence number. The
  /// (time, seq) stream is a complete fingerprint of the schedule — equal
  /// streams mean equal executions — so the chaos harness records it to
  /// verify replay determinism. Pass nullptr to detach.
  void set_trace_sink(std::function<void(SimTime, EventId)> sink) {
    trace_sink_ = std::move(sink);
  }

  /// Resets time to 0 and drops all pending events. (The scheduling
  /// sequence keeps counting, exactly like the pre-pool kernel's ids.)
  void Reset();

 private:
  /// 24-byte heap entry; the callback stays in its pool slot.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;   // scheduling sequence: tie-break + trace fingerprint
    uint32_t slot;  // pool slot holding the callback
    uint32_t gen;   // slot generation at scheduling time
  };
  /// Heap comparator: true when `a` fires after `b`, so std::push_heap &
  /// co. keep the earliest (time, seq) at the front.
  struct FiresLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pooled event record. `gen` counts disarms: a heap entry (or EventId)
  /// is live iff its recorded generation equals the slot's. Slots live in
  /// fixed-size chunks, so their addresses are stable while callbacks run
  /// (a callback may schedule new events and grow the pool).
  struct EventSlot {
    static constexpr size_t kInlineCapacity = 48;
    alignas(std::max_align_t) unsigned char storage[kInlineCapacity];
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    uint32_t gen = 0;
  };
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;  // slots/chunk

  static EventId MakeEventId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) + 1) << 32 | gen;
  }

  EventSlot& SlotRef(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  uint32_t AllocSlot() {
    if (free_.empty()) GrowPool();
    const uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }

  void GrowPool();
  /// Destroys the callback, bumps the generation (invalidating every
  /// outstanding reference) and recycles the slot.
  void DisarmSlot(uint32_t slot);
  /// Pops the heap front (a stale, already-disarmed entry).
  void PopDiscard();
  /// Executes the heap front. Precondition: front is live.
  void FireTop();
  /// Destroys callbacks of all still-pending events.
  void DestroyPending();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  uint64_t max_events_ = 500'000'000ULL;
  size_t live_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  std::vector<uint32_t> free_;
  uint32_t slot_count_ = 0;
  std::function<void(SimTime, EventId)> trace_sink_;
};

}  // namespace gqp

#endif  // GRIDQP_SIM_SIMULATOR_H_
