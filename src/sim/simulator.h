// Discrete-event simulation kernel. All GridQP experiments run in virtual
// time: grid nodes, the network, and the adaptivity services schedule
// callbacks on a single Simulator, which executes them in timestamp order.
//
// Determinism: ties on timestamp are broken by scheduling sequence number,
// so a run is a pure function of its inputs (including RNG seeds).

#ifndef GRIDQP_SIM_SIMULATOR_H_
#define GRIDQP_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace gqp {

/// Virtual time in milliseconds.
using SimTime = double;

constexpr SimTime kSimTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Handle for a scheduled event; usable with Simulator::Cancel.
using EventId = uint64_t;

constexpr EventId kInvalidEventId = 0;

/// \brief Single-threaded discrete-event simulator.
///
/// Not thread-safe by design: determinism is a core requirement (see
/// DESIGN.md D1).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time (ms). Starts at 0.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` ms from now. Negative delays are clamped
  /// to 0 (the event still runs after currently pending events at Now()).
  EventId Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute virtual time. Times in the past are
  /// clamped to Now().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  /// Runs one event. Returns false if the queue is empty.
  bool Step();

  /// Runs until the event queue is empty or `until` is passed (events with
  /// timestamp > `until` stay queued; Now() advances to at most `until`).
  /// Returns an error if the event budget is exhausted (runaway loop guard).
  Status Run(SimTime until = kSimTimeInfinity);

  /// Convenience: runs the full simulation and returns the final time.
  /// CHECK-fails (aborts) on runaway; use Run() where errors must propagate.
  SimTime RunToCompletion();

  /// Number of events executed so far.
  uint64_t events_executed() const { return events_executed_; }

  /// Number of currently pending (non-cancelled) events.
  size_t pending_events() const { return heap_.size() - cancelled_.size(); }

  /// Replaces the runaway guard (default: 500M events).
  void set_max_events(uint64_t max_events) { max_events_ = max_events; }

  /// Observer invoked for every executed event, immediately before its
  /// callback runs. The (time, id) stream is a complete fingerprint of the
  /// schedule — equal streams mean equal executions — so the chaos harness
  /// records it to verify replay determinism. Pass nullptr to detach.
  void set_trace_sink(std::function<void(SimTime, EventId)> sink) {
    trace_sink_ = std::move(sink);
  }

  /// Resets time to 0 and drops all pending events.
  void Reset();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Min-heap by (time, id).
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  uint64_t max_events_ = 500'000'000ULL;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<EventId> cancelled_;
  // Callbacks keyed by id; erased on execution/cancellation.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::function<void(SimTime, EventId)> trace_sink_;
};

}  // namespace gqp

#endif  // GRIDQP_SIM_SIMULATOR_H_
