#include "sim/sharded.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/concurrency.h"
#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

namespace {
// Shard id of the current thread; -1 outside worker threads. Used both to
// route ScheduleCrossAt and to enforce the lookahead contract.
thread_local int t_current_shard = -1;

// Tolerance for the lookahead contract check. Arrival times are computed
// as now + latency (+ serialization); latency >= lookahead by derivation,
// but the additions round independently.
constexpr double kLookaheadSlackMs = 1e-9;
}  // namespace

ShardedSimulator::ShardedSimulator(int num_shards, double lookahead_ms)
    : lookahead_ms_(lookahead_ms) {
  if (num_shards < 1 || !(lookahead_ms > 0.0)) {
    GQP_LOG_ERROR << "ShardedSimulator: invalid configuration (shards="
                  << num_shards << ", lookahead_ms=" << lookahead_ms
                  << "); lookahead must be > 0";
    std::abort();
  }
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  outboxes_.resize(shards_.size());
  shard_status_.resize(shards_.size());
}

ShardedSimulator::~ShardedSimulator() = default;

int ShardedSimulator::CurrentShard() { return t_current_shard; }

void ShardedSimulator::ScheduleCrossAt(int dst, SimTime when,
                                       std::function<void()> fn) {
  const int src = t_current_shard;
  if (src < 0) {
    // Driver context (setup, global events): workers are quiescent, all
    // shard heaps are safe to touch directly.
    shards_[static_cast<size_t>(dst)]->ScheduleAt(when, std::move(fn));
    return;
  }
  Simulator& src_sim = *shards_[static_cast<size_t>(src)];
  if (dst == src) {
    src_sim.ScheduleAt(when, std::move(fn));
    return;
  }
  // Conservative contract: a cross-shard send from simulated time t may
  // not arrive before t + lookahead, otherwise the destination shard may
  // already have executed past `when` and determinism is silently lost.
  if (when + kLookaheadSlackMs < src_sim.Now() + lookahead_ms_) {
    GQP_LOG_ERROR << "ShardedSimulator: lookahead contract violation: shard "
                  << src << " at t=" << src_sim.Now() << " ms sent to shard "
                  << dst << " arriving at t=" << when << " ms (< now + "
                  << lookahead_ms_ << " ms lookahead)";
    std::abort();
  }
  outboxes_[static_cast<size_t>(src)].push_back(
      CrossEvent{when, dst, std::move(fn)});
}

void ShardedSimulator::ScheduleGlobalAt(SimTime when,
                                        std::function<void()> fn) {
  globals_.push_back(GlobalEvent{when, next_global_seq_++, std::move(fn)});
}

void ShardedSimulator::DrainOutboxes() {
  for (auto& outbox : outboxes_) {
    for (CrossEvent& ev : outbox) {
      shards_[static_cast<size_t>(ev.dst)]->ScheduleAt(ev.when,
                                                       std::move(ev.fn));
    }
    outbox.clear();
  }
}

SimTime ShardedSimulator::MinNextEventTime() {
  SimTime t_min = kSimTimeInfinity;
  for (auto& shard : shards_) {
    t_min = std::min(t_min, shard->NextEventTime());
  }
  return t_min;
}

void ShardedSimulator::StartWorkers() {
  stop_ = false;
  done_count_ = 0;
  workers_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back(&ShardedSimulator::WorkerLoop, this,
                          static_cast<int>(s));
  }
}

void ShardedSimulator::StopWorkers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_workers_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ShardedSimulator::WorkerLoop(int shard_id) {
  t_current_shard = shard_id;
  Simulator& sim = *shards_[static_cast<size_t>(shard_id)];
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_workers_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
    if (stop_) return;
    seen_epoch = epoch_;
    const SimTime end = window_end_;
    lk.unlock();
    Status st = sim.RunWindow(end);
    lk.lock();
    if (!st.ok()) shard_status_[static_cast<size_t>(shard_id)] = st;
    if (++done_count_ == static_cast<int>(shards_.size())) {
      cv_driver_.notify_one();
    }
  }
}

void ShardedSimulator::RunWindowOnWorkers(SimTime end) {
  std::unique_lock<std::mutex> lk(mu_);
  window_end_ = end;
  done_count_ = 0;
  ++epoch_;
  cv_workers_.notify_all();
  cv_driver_.wait(
      lk, [&] { return done_count_ == static_cast<int>(shards_.size()); });
}

Status ShardedSimulator::Run(SimTime until) {
  // RunWindow's cutoff is strict (<), so to include events at exactly
  // `until` the clamp horizon is the next representable time above it.
  const SimTime horizon = (until == kSimTimeInfinity)
                              ? kSimTimeInfinity
                              : std::nextafter(until, kSimTimeInfinity);
  const bool threaded = shards_.size() > 1;
  if (threaded) {
    SetShardedRunActive(true);
    StartWorkers();
  }
  for (Status& st : shard_status_) st = Status::OK();

  Status result = Status::OK();
  for (;;) {
    if (events_executed() >= max_events_) {
      result = Status::ResourceExhausted(
          StrCat("sharded simulator exceeded ", max_events_,
                 " aggregate events; likely a runaway event loop (t=", Now(),
                 " ms)"));
      break;
    }
    const SimTime t_min = MinNextEventTime();
    // Globals are few; a linear scan per window is cheaper than
    // maintaining a heap.
    const GlobalEvent* next_global = nullptr;
    for (const GlobalEvent& g : globals_) {
      if (next_global == nullptr || g.when < next_global->when ||
          (g.when == next_global->when && g.seq < next_global->seq)) {
        next_global = &g;
      }
    }
    const SimTime g_time = next_global ? next_global->when : kSimTimeInfinity;
    const SimTime next = std::min(t_min, g_time);
    if (next == kSimTimeInfinity || next > until) break;
    if (g_time <= t_min) {
      // Stop-the-world: all shards quiescent below g_time; advance every
      // clock so zero-delay scheduling inside the event lands at g_time on
      // any shard, then run all globals tied at g_time in scheduling order.
      for (auto& shard : shards_) shard->AdvanceTo(g_time);
      std::vector<GlobalEvent> due;
      for (size_t i = 0; i < globals_.size();) {
        if (globals_[i].when == g_time) {
          due.push_back(std::move(globals_[i]));
          globals_.erase(globals_.begin() + static_cast<ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      std::sort(due.begin(), due.end(),
                [](const GlobalEvent& a, const GlobalEvent& b) {
                  return a.seq < b.seq;
                });
      for (GlobalEvent& g : due) g.fn();
      continue;
    }
    const SimTime end = std::min(std::min(t_min + lookahead_ms_, g_time),
                                 horizon);
    if (threaded) {
      RunWindowOnWorkers(end);
      for (const Status& st : shard_status_) {
        if (!st.ok()) {
          result = st;
          break;
        }
      }
      if (!result.ok()) break;
    } else {
      t_current_shard = 0;
      Status st = shards_[0]->RunWindow(end);
      t_current_shard = -1;
      if (!st.ok()) {
        result = st;
        break;
      }
    }
    DrainOutboxes();
  }

  if (threaded) {
    StopWorkers();
    SetShardedRunActive(false);
  }
  if (result.ok() && until != kSimTimeInfinity) {
    for (auto& shard : shards_) shard->AdvanceTo(until);
  }
  return result;
}

SimTime ShardedSimulator::RunToCompletion() {
  Status s = Run();
  if (!s.ok()) {
    GQP_LOG_ERROR << "ShardedSimulator::RunToCompletion failed: "
                  << s.ToString();
    std::abort();
  }
  return Now();
}

SimTime ShardedSimulator::Now() const {
  SimTime now = 0.0;
  for (const auto& shard : shards_) now = std::max(now, shard->Now());
  return now;
}

uint64_t ShardedSimulator::events_executed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_executed();
  return total;
}

size_t ShardedSimulator::pending_events() const {
  size_t total = globals_.size();
  for (const auto& shard : shards_) total += shard->pending_events();
  for (const auto& outbox : outboxes_) total += outbox.size();
  return total;
}

void ShardedSimulator::set_max_events(uint64_t max_events) {
  max_events_ = max_events;
  // Raise each shard's own guard to the aggregate so a runaway confined to
  // one shard inside a single window still terminates (RunWindow checks
  // cumulative events_executed against it).
  for (auto& shard : shards_) shard->set_max_events(max_events);
}

}  // namespace gqp
