// Sharded multi-core event kernel (DESIGN.md §D15).
//
// Partitions the simulation into N shards, each a plain single-threaded
// Simulator driven by its own worker thread, synchronized by conservative
// lookahead in bounded windows (a YAWNS-style protocol):
//
//   window_end = min(T_min + lookahead, next_global_event, horizon)
//
// where T_min is the earliest pending event time across all shards and
// lookahead is the minimum cross-shard link latency of the network model.
// Every shard executes all of its events with time < window_end in
// parallel, then the shards barrier. Cross-shard sends made inside a
// window are pushed to the sending shard's outbox and drained at the
// barrier in (source shard id, push order) order — a deterministic merge,
// because each shard's execution order is itself deterministic. The
// conservative contract makes the drain safe: an event executing at time
// t ∈ [T_min, window_end) may only send cross-shard with arrival
// ≥ t + lookahead ≥ window_end, so no drained arrival can land in a
// window that has already run.
//
// Global (stop-the-world) events — chaos perturbations, failure
// injections, link shifts — run on the driver thread at a barrier, with
// every shard clock first advanced to the event's time, so whatever they
// schedule lands consistently on any shard.
//
// Determinism contract: a sharded run is a pure function of its inputs
// and the shard count. It is NOT trace-identical to a sequential run
// (same-timestamp events on different shards interleave differently);
// the differential suite asserts the stronger invariant that matters —
// identical per-query results and invariant outcomes (see
// tests/chaos/sharded_diff_test.cc).
//
// Threading: workers are started at the top of Run() and joined before it
// returns; all synchronization is a single mutex + condvar epoch barrier,
// which also provides the happens-before edges for outbox drains and the
// driver's NextEventTime() scans. No wall-clock reads, no unseeded RNG,
// no thread sleeps or yields — simulated time only (lint-enforced).

#ifndef GRIDQP_SIM_SHARDED_H_
#define GRIDQP_SIM_SHARDED_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"

namespace gqp {

/// \brief Conservative-lookahead parallel driver over per-shard Simulators.
///
/// The driver thread owns the windowing loop; per-shard worker threads own
/// event execution. All public methods except ScheduleCrossAt are
/// driver-thread-only (ScheduleCrossAt is additionally callable from the
/// worker thread of the sending shard, which is where the network calls it).
class ShardedSimulator {
 public:
  /// `lookahead_ms` must be strictly positive: it is the conservative
  /// synchronization bound, derived by the caller from the minimum
  /// cross-shard link latency (a zero-latency remote link would make every
  /// window empty and must be rejected upstream with InvalidArgument).
  /// Aborts on lookahead <= 0 or num_shards < 1 — programming errors, not
  /// user input; user-facing validation happens in GridSetup/chaos.
  ShardedSimulator(int num_shards, double lookahead_ms);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  double lookahead_ms() const { return lookahead_ms_; }

  /// The shard's underlying sequential simulator. Services on hosts mapped
  /// to shard `i` schedule their local events here directly.
  Simulator* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }

  /// Shard index of the calling thread: the shard id on a worker thread
  /// during Run(), -1 on the driver (or any other) thread.
  static int CurrentShard();

  /// Schedules `fn` at absolute time `when` on shard `dst`. From a worker
  /// thread this enforces the conservative contract (`when` must be at
  /// least the sending shard's Now() + lookahead; violations abort — they
  /// would silently break determinism) and routes cross-shard sends via
  /// the sender's outbox for the deterministic barrier drain. From the
  /// driver thread (setup, global events) it schedules directly.
  void ScheduleCrossAt(int dst, SimTime when, std::function<void()> fn);

  /// Schedules a stop-the-world event: runs on the driver thread at a
  /// barrier once every shard has exhausted events before `when`, with all
  /// shard clocks advanced to `when` first. Used for chaos perturbations
  /// and anything else that touches state spanning shards. Ties are run
  /// in scheduling order. Driver-thread-only (including from inside a
  /// running global event).
  void ScheduleGlobalAt(SimTime when, std::function<void()> fn);

  /// Runs the windowed loop until no shard has pending events, no global
  /// events remain, or `until` is passed (events with time > `until` stay
  /// queued and every shard clock advances to `until`, matching
  /// Simulator::Run). Starts workers on entry and joins them before
  /// returning; while they are live, ShardedRunActive() is true (with one
  /// shard everything runs inline on the driver thread and no flag is
  /// set). Returns ResourceExhausted when the aggregate executed-event
  /// count exceeds the budget.
  Status Run(SimTime until = kSimTimeInfinity);

  /// Convenience mirror of Simulator::RunToCompletion: aborts on error.
  SimTime RunToCompletion();

  /// Latest shard clock (they converge at barriers and at the end of Run).
  SimTime Now() const;

  /// Total events executed across all shards.
  uint64_t events_executed() const;

  /// Pending events across shard heaps, outboxes, and global events.
  size_t pending_events() const;

  /// Aggregate runaway guard (default 500M, like Simulator). Each shard's
  /// own guard is raised to the aggregate so a single-shard runaway loop
  /// inside one window still terminates.
  void set_max_events(uint64_t max_events);

 private:
  struct CrossEvent {
    SimTime when;
    int dst;
    std::function<void()> fn;
  };
  struct GlobalEvent {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };

  void StartWorkers();
  void StopWorkers();
  void WorkerLoop(int shard_id);
  /// Dispatches one window to the workers and blocks until all report done.
  void RunWindowOnWorkers(SimTime end);
  /// Delivers outboxed cross-shard events in (src shard, push order) order.
  void DrainOutboxes();
  /// Earliest pending shard-event time across all shards.
  SimTime MinNextEventTime();

  std::vector<std::unique_ptr<Simulator>> shards_;
  const double lookahead_ms_;
  uint64_t max_events_ = 500'000'000ULL;

  // Outboxes: outboxes_[s] is written only by shard s's worker during a
  // window and drained only by the driver at the barrier (mutex acquire/
  // release on the barrier orders the accesses).
  std::vector<std::vector<CrossEvent>> outboxes_;

  // Global events, driver-thread-only. Sorted lazily in the run loop;
  // kept as a vector because the set is tiny (chaos scenario actions).
  std::vector<GlobalEvent> globals_;
  uint64_t next_global_seq_ = 0;

  // Epoch barrier.
  std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_driver_;
  std::vector<std::thread> workers_;
  uint64_t epoch_ = 0;           // guarded by mu_
  SimTime window_end_ = 0.0;     // guarded by mu_
  int done_count_ = 0;           // guarded by mu_
  bool stop_ = false;            // guarded by mu_
  std::vector<Status> shard_status_;  // guarded by mu_
};

}  // namespace gqp

#endif  // GRIDQP_SIM_SHARDED_H_
