#include "sim/simulator.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

EventId Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(top.id);
    if (cb_it == callbacks_.end()) continue;  // defensive
    std::function<void()> fn = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = top.time;
    ++events_executed_;
    if (trace_sink_) trace_sink_(top.time, top.id);
    fn();
    return true;
  }
  return false;
}

Status Simulator::Run(SimTime until) {
  const uint64_t budget_start = events_executed_;
  while (!heap_.empty()) {
    // Peek: stop before events beyond the horizon.
    Entry top = heap_.top();
    if (cancelled_.count(top.id) > 0) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > until) {
      if (until != kSimTimeInfinity && until > now_) now_ = until;
      return Status::OK();
    }
    if (events_executed_ - budget_start >= max_events_) {
      return Status::ResourceExhausted(
          StrCat("simulator exceeded ", max_events_,
                 " events; likely a runaway event loop (t=", now_, " ms)"));
    }
    Step();
  }
  if (until != kSimTimeInfinity && until > now_) now_ = until;
  return Status::OK();
}

SimTime Simulator::RunToCompletion() {
  Status s = Run();
  if (!s.ok()) {
    GQP_LOG_ERROR << "Simulator::RunToCompletion failed: " << s.ToString();
    std::abort();
  }
  return now_;
}

void Simulator::Reset() {
  now_ = 0.0;
  events_executed_ = 0;
  heap_ = {};
  cancelled_.clear();
  callbacks_.clear();
}

}  // namespace gqp
