#include "sim/simulator.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

void Simulator::GrowPool() {
  chunks_.push_back(std::make_unique<EventSlot[]>(kChunkSize));
  const uint32_t base = slot_count_;
  slot_count_ += kChunkSize;
  // Pushed in reverse so slots are handed out in ascending order.
  for (uint32_t i = 0; i < kChunkSize; ++i) {
    free_.push_back(base + kChunkSize - 1 - i);
  }
}

void Simulator::DisarmSlot(uint32_t slot) {
  EventSlot& s = SlotRef(slot);
  s.destroy(s.storage);
  s.invoke = nullptr;
  ++s.gen;
  free_.push_back(slot);
}

void Simulator::PopDiscard() {
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  heap_.pop_back();
}

bool Simulator::Cancel(EventId id) {
  const uint64_t slot_part = id >> 32;
  if (slot_part == 0 || slot_part > slot_count_) return false;
  const uint32_t slot = static_cast<uint32_t>(slot_part - 1);
  EventSlot& s = SlotRef(slot);
  if (s.gen != static_cast<uint32_t>(id) || s.invoke == nullptr) return false;
  DisarmSlot(slot);
  --live_;
  return true;  // heap entry goes stale; discarded when it surfaces
}

void Simulator::FireTop() {
  const HeapEntry top = heap_.front();
  PopDiscard();
  EventSlot& s = SlotRef(top.slot);
  now_ = top.time;
  ++events_executed_;
  --live_;
  // Disarm before invoking: the callback observes itself as fired (a
  // self-cancel is a no-op) but the slot is recycled only afterwards, so
  // events it schedules cannot clobber the running callback's storage.
  // Slot addresses are chunk-stable, so pool growth is safe too.
  void (*invoke)(void*) = s.invoke;
  s.invoke = nullptr;
  ++s.gen;
  if (trace_sink_) trace_sink_(top.time, top.seq);
  invoke(s.storage);
  EventSlot& after = SlotRef(top.slot);
  after.destroy(after.storage);
  free_.push_back(top.slot);
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (SlotRef(top.slot).gen != top.gen) {
      PopDiscard();
      continue;
    }
    FireTop();
    return true;
  }
  return false;
}

Status Simulator::Run(SimTime until) {
  const uint64_t budget_start = events_executed_;
  while (!heap_.empty()) {
    // Peek: discard stale entries, stop before events beyond the horizon.
    const HeapEntry& top = heap_.front();
    if (SlotRef(top.slot).gen != top.gen) {
      PopDiscard();
      continue;
    }
    if (top.time > until) {
      if (until != kSimTimeInfinity && until > now_) now_ = until;
      return Status::OK();
    }
    if (events_executed_ - budget_start >= max_events_) {
      return Status::ResourceExhausted(
          StrCat("simulator exceeded ", max_events_,
                 " events; likely a runaway event loop (t=", now_, " ms)"));
    }
    FireTop();
  }
  if (until != kSimTimeInfinity && until > now_) now_ = until;
  return Status::OK();
}

SimTime Simulator::NextEventTime() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (SlotRef(top.slot).gen != top.gen) {
      PopDiscard();
      continue;
    }
    return top.time;
  }
  return kSimTimeInfinity;
}

Status Simulator::RunWindow(SimTime end) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (SlotRef(top.slot).gen != top.gen) {
      PopDiscard();
      continue;
    }
    if (!(top.time < end)) return Status::OK();
    if (events_executed_ >= max_events_) {
      return Status::ResourceExhausted(
          StrCat("simulator exceeded ", max_events_,
                 " events; likely a runaway event loop (t=", now_, " ms)"));
    }
    FireTop();
  }
  return Status::OK();
}

SimTime Simulator::RunToCompletion() {
  Status s = Run();
  if (!s.ok()) {
    GQP_LOG_ERROR << "Simulator::RunToCompletion failed: " << s.ToString();
    std::abort();
  }
  return now_;
}

void Simulator::DestroyPending() {
  for (const HeapEntry& entry : heap_) {
    EventSlot& s = SlotRef(entry.slot);
    if (s.gen != entry.gen) continue;  // stale (cancelled) duplicate
    s.destroy(s.storage);
    s.invoke = nullptr;
    ++s.gen;
  }
}

void Simulator::Reset() {
  DestroyPending();
  now_ = 0.0;
  events_executed_ = 0;
  live_ = 0;
  heap_.clear();
  chunks_.clear();
  free_.clear();
  slot_count_ = 0;
  // next_seq_ keeps counting, matching the pre-pool kernel's next_id_.
}

}  // namespace gqp
