// Value: the runtime datum type flowing through the engine (null, int64,
// double, string).

#ifndef GRIDQP_STORAGE_VALUE_H_
#define GRIDQP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace gqp {

/// Column/value types known to the engine.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view DataTypeToString(DataType type);

/// \brief A single datum.
///
/// Values are small; strings dominate size. Equality and ordering follow
/// SQL semantics except that null == null (needed for hashing) and null
/// sorts first.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  DataType type() const;

  /// Typed accessors. Preconditions: matching type.
  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric coercion: int64 and double both convert; 0.0 for others.
  double ToNumeric() const;

  /// Approximate serialized size in bytes (wire-cost model).
  size_t WireSize() const;

  /// Stable 64-bit hash (used by hash-partitioning and hash joins).
  uint64_t Hash() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace gqp

#endif  // GRIDQP_STORAGE_VALUE_H_
