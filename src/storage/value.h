// Value: the runtime datum type flowing through the engine (null, int64,
// double, string).

#ifndef GRIDQP_STORAGE_VALUE_H_
#define GRIDQP_STORAGE_VALUE_H_

#include <cstdint>
#include <new>
#include <string>
#include <utility>

#include "common/concurrency.h"

namespace gqp {

/// Column/value types known to the engine.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view DataTypeToString(DataType type);

/// \brief A single datum.
///
/// Values are small; strings dominate size. Equality and ordering follow
/// SQL semantics except that null == null (needed for hashing) and null
/// sorts first.
///
/// Layout: a hand-rolled 16-byte tagged union rather than std::variant.
/// Rows are copied, compared and destroyed millions of times per second
/// on the join/exchange hot paths, and both the variant's visit-table
/// indirection and an inline std::string payload (40 bytes per value,
/// most of them padding for the non-string case) are measurable there: at
/// 16 bytes a whole row fits in one or two cache lines, which roughly
/// halves the memory traffic of the vectorized join's build and probe
/// loops. String payloads are immutable and live behind a refcounted rep,
/// so copying a string value is a pointer plus refcount bump — cheaper
/// than the SSO copy it replaces. The refcount is non-atomic because the
/// engine is single-threaded by design (DESIGN.md D1).
class Value {
 public:
  Value() : type_(DataType::kNull), i_(0) {}
  explicit Value(int64_t v) : type_(DataType::kInt64), i_(v) {}
  explicit Value(double v) : type_(DataType::kDouble), d_(v) {}
  explicit Value(std::string v)
      : type_(DataType::kString), s_(new StrRep{1, std::move(v)}) {}
  explicit Value(const char* v)
      : type_(DataType::kString), s_(new StrRep{1, std::string(v)}) {}

  Value(const Value& other) : type_(other.type_), i_(other.i_) {
    if (type_ == DataType::kString) RefIncrement(&s_->refs);
  }
  Value(Value&& other) noexcept : type_(other.type_), i_(other.i_) {
    other.type_ = DataType::kNull;
    other.i_ = 0;
  }
  Value& operator=(const Value& other) {
    if (other.type_ == DataType::kString) RefIncrement(&other.s_->refs);
    ReleasePayload();
    type_ = other.type_;
    i_ = other.i_;
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this != &other) {
      ReleasePayload();
      type_ = other.type_;
      i_ = other.i_;
      other.type_ = DataType::kNull;
      other.i_ = 0;
    }
    return *this;
  }
  ~Value() { ReleasePayload(); }

  static Value Null() { return Value(); }

  bool is_null() const { return type_ == DataType::kNull; }
  DataType type() const { return type_; }

  /// Typed accessors. Preconditions: matching type.
  int64_t AsInt64() const { return i_; }
  double AsDouble() const { return d_; }
  const std::string& AsString() const { return s_->str; }

  /// Numeric coercion: int64 and double both convert; 0.0 for others.
  double ToNumeric() const;

  /// Approximate serialized size in bytes (wire-cost model).
  size_t WireSize() const;

  /// Stable 64-bit hash. This is the replay/fingerprint contract hash:
  /// hash-partitioning and the chaos goldens depend on its exact bytes,
  /// so its definition (FNV-1a with a type-tag seed) never changes.
  uint64_t Hash() const;

  /// Fast 64-bit hash for join-table placement. Placement only decides
  /// which slot a chain lands in — never row content, match sets, or
  /// emission order (chains emit in insertion order) — so unlike Hash()
  /// this one is free to be fast: fixed-width types mix their 8 payload
  /// bytes with a splitmix64 finalizer (3 multiplies, no byte-serial
  /// dependency chain) instead of FNV's 8-round loop. Strings hash their
  /// bytes via Hash(). Equal values always agree, across both the scalar
  /// and vectorized join paths.
  uint64_t JoinHash() const {
    if (type_ == DataType::kString) return Hash();
    uint64_t x = static_cast<uint64_t>(i_) +
                 static_cast<uint64_t>(type_) * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  bool operator==(const Value& other) const {
    if (type_ != other.type_) return false;
    switch (type_) {
      case DataType::kNull:
        return true;
      case DataType::kInt64:
        return i_ == other.i_;
      case DataType::kDouble:
        return d_ == other.d_;
      case DataType::kString:
        return s_ == other.s_ || s_->str == other.s_->str;
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  /// Immutable shared string payload. refs uses plain ops in sequential
  /// mode (single-threaded engine, DESIGN.md D1) and atomic ops while a
  /// sharded run is live (common/concurrency.h).
  struct StrRep {
    uint32_t refs;
    std::string str;
  };

  void ReleasePayload() {
    if (type_ == DataType::kString && RefDecrement(&s_->refs) == 0) delete s_;
  }

  DataType type_;
  union {
    int64_t i_;
    double d_;
    StrRep* s_;
  };
};

static_assert(sizeof(Value) == 16, "Value is two machine words");

}  // namespace gqp

#endif  // GRIDQP_STORAGE_VALUE_H_
