#include "storage/value.h"

#include <cstring>

#include "common/strings.h"

namespace gqp {
namespace {

// FNV-1a over raw bytes, with a type-tag seed so 1 (int) != 1.0 (double).
uint64_t FnvHash(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

double Value::ToNumeric() const {
  if (type() == DataType::kInt64) return static_cast<double>(AsInt64());
  if (type() == DataType::kDouble) return AsDouble();
  return 0.0;
}

size_t Value::WireSize() const {
  switch (type()) {
    case DataType::kNull:
      return 1;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 4 + AsString().size();
  }
  return 1;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kInt64: {
      const int64_t v = AsInt64();
      return FnvHash(&v, sizeof(v), 1);
    }
    case DataType::kDouble: {
      const double v = AsDouble();
      return FnvHash(&v, sizeof(v), 2);
    }
    case DataType::kString: {
      const std::string& s = AsString();
      return FnvHash(s.data(), s.size(), 3);
    }
  }
  return 0;
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  switch (type()) {
    case DataType::kNull:
      return false;
    case DataType::kInt64:
      return AsInt64() < other.AsInt64();
    case DataType::kDouble:
      return AsDouble() < other.AsDouble();
    case DataType::kString:
      return AsString() < other.AsString();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble:
      return StrFormat("%g", AsDouble());
    case DataType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace gqp
