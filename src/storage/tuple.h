// Tuple: an immutable row handle. Copies are cheap (shared payload), which
// matters because the exchange machinery keeps tuples simultaneously in
// producer recovery logs, consumer queues and operator state.

#ifndef GRIDQP_STORAGE_TUPLE_H_
#define GRIDQP_STORAGE_TUPLE_H_

#include <memory>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace gqp {

/// \brief A reference-counted row.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)),
        values_(std::make_shared<const std::vector<Value>>(std::move(values))) {
  }

  bool valid() const { return values_ != nullptr; }
  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return values_ ? values_->size() : 0; }

  /// Column accessor. Precondition: i < size().
  const Value& at(size_t i) const { return (*values_)[i]; }
  const Value& operator[](size_t i) const { return at(i); }

  const std::vector<Value>& values() const { return *values_; }

  /// Serialized size in bytes for the network cost model.
  size_t WireSize() const;

  /// Concatenates two tuples under a combined schema (join output).
  static Tuple Concat(const SchemaPtr& schema, const Tuple& left,
                      const Tuple& right);

  bool operator==(const Tuple& other) const;

  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::shared_ptr<const std::vector<Value>> values_;
};

}  // namespace gqp

#endif  // GRIDQP_STORAGE_TUPLE_H_
