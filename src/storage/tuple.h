// Tuple: an immutable row handle. Copies are cheap (shared payload), which
// matters because the exchange machinery keeps tuples simultaneously in
// producer recovery logs, consumer queues and operator state.
//
// Layout (see DESIGN.md "Performance engineering"): one packed allocation
// holds the refcount, the schema handle, a memoized wire size and the
// value array inline — one malloc per row instead of the former
// shared_ptr-control-block + vector pair, and a copy is a single
// non-atomic increment in sequential mode (the engine is single-threaded
// by design, DESIGN.md D1); during sharded runs the same field is bumped
// atomically, because payloads cross shard boundaries inside messages
// (common/concurrency.h). WireSize() walks the values once and caches the
// result; values are immutable, so the memo can never go stale.

#ifndef GRIDQP_STORAGE_TUPLE_H_
#define GRIDQP_STORAGE_TUPLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/concurrency.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace gqp {

/// \brief A reference-counted row.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values);

  Tuple(const Tuple& other) : rep_(other.rep_) {
    if (rep_ != nullptr) RefIncrement(&rep_->refs);
  }
  Tuple(Tuple&& other) noexcept : rep_(other.rep_) { other.rep_ = nullptr; }
  Tuple& operator=(const Tuple& other) {
    if (other.rep_ != nullptr) RefIncrement(&other.rep_->refs);
    Unref();
    rep_ = other.rep_;
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      Unref();
      rep_ = other.rep_;
      other.rep_ = nullptr;
    }
    return *this;
  }
  ~Tuple() { Unref(); }

  bool valid() const { return rep_ != nullptr; }
  const SchemaPtr& schema() const {
    static const SchemaPtr kNoSchema;
    return rep_ != nullptr ? rep_->schema : kNoSchema;
  }
  size_t size() const { return rep_ != nullptr ? rep_->size : 0; }

  /// Column accessor. Precondition: i < size().
  const Value& at(size_t i) const { return data()[i]; }
  const Value& operator[](size_t i) const { return at(i); }

  /// First element of the packed value array (nullptr for an invalid
  /// tuple). Two tuples share payload iff their data() pointers are equal.
  const Value* data() const {
    return rep_ != nullptr ? ValuesOf(rep_) : nullptr;
  }

  /// Serialized size in bytes for the network cost model. Memoized: the
  /// first call walks the values, later calls are a load.
  size_t WireSize() const;

  /// Concatenates two tuples under a combined schema (join output) in a
  /// single packed allocation.
  static Tuple Concat(const SchemaPtr& schema, const Tuple& left,
                      const Tuple& right);

  bool operator==(const Tuple& other) const;

  std::string ToString() const;

 private:
  /// Packed-row header; `size` Values follow immediately after it in the
  /// same allocation.
  struct Rep {
    uint32_t refs;
    uint32_t size;
    size_t wire_size;  // 0 = not yet computed (real sizes are >= 8)
    SchemaPtr schema;
  };
  static_assert(sizeof(Rep) % alignof(Value) == 0 &&
                    alignof(Rep) >= alignof(Value),
                "value array must start aligned after the header");

  /// Allocates a Rep with refs=1 and room for `n` values; the caller
  /// placement-constructs the values.
  static Rep* NewRep(SchemaPtr schema, uint32_t n);

  static Value* ValuesOf(Rep* rep) {
    return reinterpret_cast<Value*>(reinterpret_cast<unsigned char*>(rep) +
                                    sizeof(Rep));
  }

  explicit Tuple(Rep* rep) : rep_(rep) {}

  void Unref() {
    if (rep_ != nullptr && RefDecrement(&rep_->refs) == 0) Destroy(rep_);
    rep_ = nullptr;
  }
  static void Destroy(Rep* rep);

  Rep* rep_ = nullptr;
};

}  // namespace gqp

#endif  // GRIDQP_STORAGE_TUPLE_H_
