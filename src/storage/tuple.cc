#include "storage/tuple.h"

#include <new>
#include <utility>
#include <vector>

namespace gqp {

namespace {

// Freelist pool of Rep blocks, one size class per value count. Rows churn
// at millions per second through the exchange and join hot paths, and the
// round trip through the global allocator is the single biggest cost of
// materializing a row; recycling fixed-size blocks turns it into a
// pointer pop/push. Safe without locks because the engine is
// single-threaded by design (DESIGN.md D1); while a sharded run is live
// (common/concurrency.h) the pool is bypassed entirely and blocks go
// through the global allocator, which is thread-safe — blocks parked in
// the pool before the run stay there untouched until sequential
// execution resumes. The pool itself is intentionally leaked so rows
// destroyed during static teardown never touch a dead vector.
constexpr uint32_t kPooledMaxValues = 16;
constexpr size_t kPoolMaxBlocksPerClass = 8192;

std::vector<void*>* PoolForClass(uint32_t n) {
  static std::vector<void*>* pools =
      new std::vector<void*>[kPooledMaxValues + 1];
  return &pools[n];
}

}  // namespace

Tuple::Rep* Tuple::NewRep(SchemaPtr schema, uint32_t n) {
  void* block = nullptr;
  if (n <= kPooledMaxValues && !ShardedRunActive()) {
    std::vector<void*>* pool = PoolForClass(n);
    if (!pool->empty()) {
      block = pool->back();
      pool->pop_back();
    }
  }
  if (block == nullptr) {
    block = ::operator new(sizeof(Rep) + n * sizeof(Value));
  }
  Rep* rep = ::new (block) Rep{1, n, 0, std::move(schema)};
  return rep;
}

void Tuple::Destroy(Rep* rep) {
  Value* values = ValuesOf(rep);
  const uint32_t n = rep->size;
  for (uint32_t i = n; i > 0; --i) values[i - 1].~Value();
  rep->~Rep();
  if (n <= kPooledMaxValues && !ShardedRunActive()) {
    std::vector<void*>* pool = PoolForClass(n);
    if (pool->size() < kPoolMaxBlocksPerClass) {
      pool->push_back(rep);
      return;
    }
  }
  ::operator delete(rep);
}

Tuple::Tuple(SchemaPtr schema, std::vector<Value> values)
    : rep_(NewRep(std::move(schema), static_cast<uint32_t>(values.size()))) {
  Value* out = ValuesOf(rep_);
  for (size_t i = 0; i < values.size(); ++i) {
    ::new (static_cast<void*>(out + i)) Value(std::move(values[i]));
  }
}

size_t Tuple::WireSize() const {
  if (rep_ == nullptr) return 8;  // bare row header
  if (ShardedRunActive()) {
    // Two shards may race to fill the memo; both compute the same value
    // (the walk is over immutable data), so relaxed atomics suffice.
    size_t memo = __atomic_load_n(&rep_->wire_size, __ATOMIC_RELAXED);
    if (memo != 0) return memo;
    size_t bytes = 8;  // row header
    const Value* values = ValuesOf(rep_);
    for (uint32_t i = 0; i < rep_->size; ++i) bytes += values[i].WireSize();
    __atomic_store_n(&rep_->wire_size, bytes, __ATOMIC_RELAXED);
    return bytes;
  }
  if (rep_->wire_size == 0) {
    size_t bytes = 8;  // row header
    const Value* values = ValuesOf(rep_);
    for (uint32_t i = 0; i < rep_->size; ++i) bytes += values[i].WireSize();
    rep_->wire_size = bytes;
  }
  return rep_->wire_size;
}

Tuple Tuple::Concat(const SchemaPtr& schema, const Tuple& left,
                    const Tuple& right) {
  Rep* rep =
      NewRep(schema, static_cast<uint32_t>(left.size() + right.size()));
  Value* out = ValuesOf(rep);
  for (size_t i = 0; i < left.size(); ++i) {
    ::new (static_cast<void*>(out++)) Value(left.at(i));
  }
  for (size_t i = 0; i < right.size(); ++i) {
    ::new (static_cast<void*>(out++)) Value(right.at(i));
  }
  return Tuple(rep);
}

bool Tuple::operator==(const Tuple& other) const {
  if (rep_ == other.rep_) return true;  // shared payload (or both invalid)
  if (size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (at(i) != other.at(i)) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += at(i).ToString();
  }
  out += "]";
  return out;
}

}  // namespace gqp
