#include "storage/tuple.h"

namespace gqp {

size_t Tuple::WireSize() const {
  size_t bytes = 8;  // row header
  if (values_) {
    for (const Value& v : *values_) bytes += v.WireSize();
  }
  return bytes;
}

Tuple Tuple::Concat(const SchemaPtr& schema, const Tuple& left,
                    const Tuple& right) {
  std::vector<Value> values;
  values.reserve(left.size() + right.size());
  for (size_t i = 0; i < left.size(); ++i) values.push_back(left.at(i));
  for (size_t i = 0; i < right.size(); ++i) values.push_back(right.at(i));
  return Tuple(schema, std::move(values));
}

bool Tuple::operator==(const Tuple& other) const {
  if (size() != other.size()) return false;
  for (size_t i = 0; i < size(); ++i) {
    if (at(i) != other.at(i)) return false;
  }
  return true;
}

std::string Tuple::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += at(i).ToString();
  }
  out += "]";
  return out;
}

}  // namespace gqp
