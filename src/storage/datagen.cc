#include "storage/datagen.h"

#include <array>
#include <cmath>

#include "common/random.h"
#include "common/strings.h"

namespace gqp {
namespace {

// The 20 standard amino-acid one-letter codes.
constexpr char kAminoAcids[] = "ACDEFGHIKLMNPQRSTVWY";
constexpr size_t kNumAminoAcids = sizeof(kAminoAcids) - 1;

}  // namespace

std::string OrfKey(size_t i) { return StrFormat("ORF%05zu", i); }

TablePtr GenerateProteinSequences(const ProteinSequencesSpec& spec) {
  auto schema = MakeSchema({{"orf", DataType::kString},
                            {"sequence", DataType::kString}});
  auto table = std::make_shared<Table>("protein_sequences", schema);
  Rng rng(spec.seed);
  for (size_t i = 0; i < spec.num_rows; ++i) {
    std::string seq;
    seq.reserve(spec.sequence_length);
    for (size_t j = 0; j < spec.sequence_length; ++j) {
      seq.push_back(kAminoAcids[rng.NextBelow(kNumAminoAcids)]);
    }
    // Appends cannot fail here: arity always matches the schema.
    (void)table->AppendValues({Value(OrfKey(i)), Value(std::move(seq))});
  }
  return table;
}

TablePtr GenerateProteinInteractions(const ProteinInteractionsSpec& spec) {
  auto schema = MakeSchema({{"orf1", DataType::kString},
                            {"orf2", DataType::kString}});
  auto table = std::make_shared<Table>("protein_interactions", schema);
  Rng rng(spec.seed);
  for (size_t i = 0; i < spec.num_rows; ++i) {
    const bool matches = rng.NextBool(spec.match_fraction);
    const size_t orf1_index =
        matches ? rng.NextBelow(spec.num_orfs)
                : spec.num_orfs + rng.NextBelow(spec.num_orfs + 1);
    const size_t orf2_index = rng.NextBelow(2 * spec.num_orfs);
    (void)table->AppendValues(
        {Value(OrfKey(orf1_index)), Value(OrfKey(orf2_index))});
  }
  return table;
}

double ShannonEntropy(const std::string& s) {
  if (s.empty()) return 0.0;
  std::array<size_t, 256> counts{};
  for (const char c : s) counts[static_cast<unsigned char>(c)]++;
  double entropy = 0.0;
  const double n = static_cast<double>(s.size());
  for (const size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace gqp
