// Table: an in-memory relation. Backs the Grid Data Services on the data
// node; also used to collect query results.

#ifndef GRIDQP_STORAGE_TABLE_H_
#define GRIDQP_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/tuple.h"

namespace gqp {

/// \brief A named, schema'd collection of tuples.
class Table {
 public:
  Table(std::string name, SchemaPtr schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Appends a row; fails if the arity does not match the schema. (Types
  /// are not coerced; generators produce well-typed rows.)
  Status Append(Tuple tuple);

  /// Convenience: appends from raw values.
  Status AppendValues(std::vector<Value> values);

  /// Total wire size of all rows (used in bench reporting).
  size_t TotalWireSize() const;

 private:
  std::string name_;
  SchemaPtr schema_;
  std::vector<Tuple> rows_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace gqp

#endif  // GRIDQP_STORAGE_TABLE_H_
