#include "storage/tuple_batch.h"

namespace gqp {

void TupleBatch::FillColumn(size_t col, std::vector<const Value*>* view) const {
  view->clear();
  view->reserve(tuples_.size());
  for (const Tuple& t : tuples_) {
    view->push_back(col < t.size() ? &t.at(col) : nullptr);
  }
}

void TupleBatch::Compact(const std::vector<unsigned char>& mask) {
  size_t keep = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (mask[i] == 0) continue;
    if (keep != i) {
      tuples_[keep] = std::move(tuples_[i]);
      buckets_[keep] = buckets_[i];
      origins_[keep] = origins_[i];
    }
    ++keep;
  }
  tuples_.resize(keep);
  buckets_.resize(keep);
  origins_.resize(keep);
}

}  // namespace gqp
