// Schema: ordered, named, typed columns. Shared immutably between tuples.

#ifndef GRIDQP_STORAGE_SCHEMA_H_
#define GRIDQP_STORAGE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace gqp {

/// One column of a schema.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief Immutable column layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given name (case-insensitive), or
  /// NotFound.
  Result<size_t> IndexOf(std::string_view name) const;

  /// Builds a schema concatenating this and `other` (join output). Columns
  /// keep their names; callers qualify them beforehand if needed.
  Schema Concat(const Schema& other) const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

inline SchemaPtr MakeSchema(std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(fields));
}

}  // namespace gqp

#endif  // GRIDQP_STORAGE_SCHEMA_H_
