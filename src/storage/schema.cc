#include "storage/schema.h"

#include "common/strings.h"

namespace gqp {

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return Status::NotFound(StrCat("no column named '", name, "'"));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Field> fields = fields_;
  fields.insert(fields.end(), other.fields_.begin(), other.fields_.end());
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace gqp
