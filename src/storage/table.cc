#include "storage/table.h"

#include "common/strings.h"

namespace gqp {

Status Table::Append(Tuple tuple) {
  if (tuple.size() != schema_->num_fields()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch appending to ", name_, ": got ", tuple.size(),
               " values, schema has ", schema_->num_fields()));
  }
  rows_.push_back(std::move(tuple));
  return Status::OK();
}

Status Table::AppendValues(std::vector<Value> values) {
  return Append(Tuple(schema_, std::move(values)));
}

size_t Table::TotalWireSize() const {
  size_t bytes = 0;
  for (const Tuple& t : rows_) bytes += t.WireSize();
  return bytes;
}

}  // namespace gqp
