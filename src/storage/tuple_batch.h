// TupleBatch: a column-addressable run of tuples, the unit of work of the
// vectorized execution mode (DESIGN.md §D13). A batch carries, per row,
// the tuple itself, the logical exchange bucket it was routed to, and the
// row's *origin* — its index in the batch the driver popped from the input
// queue — so per-input-tuple bookkeeping (retained flags, the
// output-to-input acknowledgment cascade) survives filtering and joins
// that reshape the row set.
//
// Batches are transient scratch space: operators consume one batch and
// append to the next, so the backing vectors are reused across steps
// (Clear keeps capacity). Column() materializes a per-row Value-pointer
// view of one column so tight loops (join key probes, operation-call
// arguments) skip the per-row header indirection of Tuple::at.

#ifndef GRIDQP_STORAGE_TUPLE_BATCH_H_
#define GRIDQP_STORAGE_TUPLE_BATCH_H_

#include <cstdint>
#include <vector>

#include "storage/tuple.h"

namespace gqp {

class TupleBatch {
 public:
  TupleBatch() = default;

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  void Reserve(size_t n) {
    tuples_.reserve(n);
    buckets_.reserve(n);
    origins_.reserve(n);
  }

  /// Drops all rows, keeping the backing capacity (batches are recycled
  /// across chain steps).
  void Clear() {
    tuples_.clear();
    buckets_.clear();
    origins_.clear();
  }

  void Append(Tuple tuple, int bucket, uint32_t origin) {
    tuples_.push_back(std::move(tuple));
    buckets_.push_back(bucket);
    origins_.push_back(origin);
  }

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  int bucket(size_t i) const { return buckets_[i]; }
  uint32_t origin(size_t i) const { return origins_[i]; }

  /// Replaces row i's tuple in place (projection-style rewrites that
  /// preserve bucket and origin).
  void ReplaceTuple(size_t i, Tuple tuple) { tuples_[i] = std::move(tuple); }

  /// Per-row pointers to column `col`, in row order. Rows too narrow for
  /// the column yield nullptr; callers check once per batch instead of
  /// per row. The view is invalidated by any mutation of the batch.
  void FillColumn(size_t col, std::vector<const Value*>* view) const;

  /// Keeps exactly the rows with mask[i] != 0 (stable order). mask must
  /// have size() entries.
  void Compact(const std::vector<unsigned char>& mask);

  void Swap(TupleBatch& other) {
    tuples_.swap(other.tuples_);
    buckets_.swap(other.buckets_);
    origins_.swap(other.origins_);
  }

  /// Moves row i's tuple out (tail-of-chain handoff into the staged
  /// output); the batch is in a moved-from state afterwards.
  Tuple TakeTuple(size_t i) { return std::move(tuples_[i]); }

 private:
  std::vector<Tuple> tuples_;
  std::vector<int> buckets_;
  std::vector<uint32_t> origins_;
};

}  // namespace gqp

#endif  // GRIDQP_STORAGE_TUPLE_BATCH_H_
