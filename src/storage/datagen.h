// Synthetic data generators reproducing the OGSA-DQP demo database used in
// the paper's evaluation: `protein_sequences` (3000 rows; the paper notes
// the sequences were modified to equal length) and `protein_interactions`
// (4700 rows joining back to the sequence ORFs).

#ifndef GRIDQP_STORAGE_DATAGEN_H_
#define GRIDQP_STORAGE_DATAGEN_H_

#include <cstdint>

#include "storage/table.h"

namespace gqp {

/// Parameters for the protein-sequence table generator.
struct ProteinSequencesSpec {
  /// Row count; the paper uses 3000 (Fig. 3(b) doubles it to 6000).
  size_t num_rows = 3000;
  /// All sequences have this length, matching the paper's equal-length
  /// modification.
  size_t sequence_length = 200;
  uint64_t seed = 1;
};

/// Parameters for the protein-interactions generator.
struct ProteinInteractionsSpec {
  /// Row count; the paper uses 4700.
  size_t num_rows = 4700;
  /// ORF keys are drawn from [0, num_orfs); make this the sequence-table
  /// row count so every interaction joins with probability
  /// `match_fraction`.
  size_t num_orfs = 3000;
  /// Fraction of ORF1 values that exist in protein_sequences.
  double match_fraction = 1.0;
  uint64_t seed = 2;
};

/// Schema: (orf STRING, sequence STRING). `orf` is the primary key
/// ("ORF00042" style).
TablePtr GenerateProteinSequences(const ProteinSequencesSpec& spec);

/// Schema: (orf1 STRING, orf2 STRING). `orf1` references
/// protein_sequences.orf for `match_fraction` of the rows; non-matching
/// rows use keys outside the generated range.
TablePtr GenerateProteinInteractions(const ProteinInteractionsSpec& spec);

/// Builds the ORF key string for index `i` ("ORF%05d" style, stable).
std::string OrfKey(size_t i);

/// Shannon entropy (bits per symbol) of a string — the reference
/// implementation of the paper's EntropyAnalyser web service.
double ShannonEntropy(const std::string& s);

}  // namespace gqp

#endif  // GRIDQP_STORAGE_DATAGEN_H_
