#include "rpc/reliable.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/logging.h"

namespace gqp {
namespace {

/// Transport endpoints live outside the service namespace; the '!' prefix
/// cannot collide with a registered service name.
constexpr const char* kTransportService = "!transport";

uint64_t ChannelKey(HostId src, HostId dst) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
         static_cast<uint32_t>(dst);
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Parses the query id embedded in a service name, or 0.
int QueryOfService(std::string_view service) {
  // Fragment endpoints: "q<N>.f<F>.i<I>".
  if (service.size() >= 2 && service[0] == 'q' && IsDigit(service[1])) {
    int value = 0;
    size_t i = 1;
    while (i < service.size() && IsDigit(service[i])) {
      value = value * 10 + (service[i] - '0');
      ++i;
    }
    if (i < service.size() && service[i] == '.') return value;
  }
  // Per-query adaptivity services: "<role>.q<N>".
  const size_t pos = service.rfind(".q");
  if (pos != std::string_view::npos && pos + 2 < service.size()) {
    int value = 0;
    for (size_t i = pos + 2; i < service.size(); ++i) {
      if (!IsDigit(service[i])) return 0;
      value = value * 10 + (service[i] - '0');
    }
    return value;
  }
  return 0;
}

}  // namespace

int QueryOf(const Message& msg) {
  const int to = QueryOfService(msg.to.service);
  if (to != 0) return to;
  return QueryOfService(msg.from.service);
}

ReliableTransport::ReliableTransport(Network* network,
                                     const ReliableConfig& config,
                                     DeliverFn deliver)
    : network_(network),
      sim_(network->simulator()),
      config_(config),
      deliver_(std::move(deliver)),
      jitter_rng_(config.jitter_seed) {}

Status ReliableTransport::Send(Message msg) {
  const HostId src = msg.from.host;
  const HostId dst = msg.to.host;
  const int query = QueryOf(msg);
  SenderChannel& ch = senders_[ChannelKey(src, dst)];
  const uint64_t seq = ch.next_seq;

  Message envelope;
  envelope.from = msg.from;
  envelope.to = msg.to;
  envelope.payload =
      std::make_shared<ReliableEnvelopePayload>(seq, std::move(msg.payload));

  const Status sent = network_->Send(envelope);
  // An unregistered destination is a caller error, not loss: report it
  // without consuming the seq, or the receiver's cursor would stall on
  // the gap forever.
  if (!sent.ok()) return sent;
  ++ch.next_seq;
  ++stats_.sent;
  ++QueryStats(query).sent;

  Pending pending;
  pending.envelope = std::move(envelope);
  pending.rto_ms = config_.base_rto_ms;
  pending.query = query;
  ch.pending.emplace(seq, std::move(pending));
  ScheduleRetransmit(src, dst, seq);
  return Status::OK();
}

void ReliableTransport::ScheduleRetransmit(HostId src, HostId dst,
                                           uint64_t seq) {
  Pending& p = senders_[ChannelKey(src, dst)].pending[seq];
  const double jitter =
      config_.jitter_frac > 0.0
          ? p.rto_ms * config_.jitter_frac * jitter_rng_.NextDouble()
          : 0.0;
  p.timer = sim_->Schedule(p.rto_ms + jitter, [this, src, dst, seq] {
    OnTimeout(src, dst, seq);
  });
}

void ReliableTransport::OnTimeout(HostId src, HostId dst, uint64_t seq) {
  auto ch_it = senders_.find(ChannelKey(src, dst));
  if (ch_it == senders_.end()) return;
  auto it = ch_it->second.pending.find(seq);
  if (it == ch_it->second.pending.end()) return;
  Pending& p = it->second;

  // A dead endpoint never acks; retrying would keep the simulation alive
  // forever. Retry exhaustion is the lossless-hang safety net.
  if (network_->HostDown(src) || network_->HostDown(dst) ||
      p.retries >= config_.max_retries) {
    ++stats_.abandoned;
    ++QueryStats(p.query).abandoned;
    ch_it->second.pending.erase(it);
    return;
  }

  ++p.retries;
  ++stats_.retransmits;
  ++QueryStats(p.query).retransmits;
  (void)network_->Send(p.envelope);
  if (p.rto_ms < config_.max_rto_ms) {
    ++stats_.backoffs;
    ++QueryStats(p.query).backoffs;
  }
  p.rto_ms = std::min(p.rto_ms * 2.0, config_.max_rto_ms);
  ScheduleRetransmit(src, dst, seq);
}

bool ReliableTransport::MaybeHandle(const Message& msg) {
  if (const auto* env = PayloadAs<ReliableEnvelopePayload>(msg.payload)) {
    OnEnvelope(msg, *env);
    return true;
  }
  if (const auto* ack = PayloadAs<ReliableAckPayload>(msg.payload)) {
    OnAck(msg, *ack);
    return true;
  }
  return false;
}

void ReliableTransport::OnEnvelope(const Message& msg,
                                   const ReliableEnvelopePayload& env) {
  // Always ack, duplicates included: the sender retransmitted because the
  // previous ack may itself have been lost.
  const int query = QueryOf(msg);  // the envelope keeps the inner addresses
  ++stats_.acks_sent;
  ++QueryStats(query).acks_sent;
  Message ack;
  ack.from = Address{msg.to.host, kTransportService};
  ack.to = Address{msg.from.host, kTransportService};
  ack.payload = std::make_shared<ReliableAckPayload>(env.seq());
  (void)network_->Send(std::move(ack));

  ReceiverChannel& ch = receivers_[ChannelKey(msg.from.host, msg.to.host)];
  if (env.seq() < ch.next_expected || ch.holdback.count(env.seq()) > 0) {
    ++stats_.dedup_hits;
    ++QueryStats(query).dedup_hits;
    return;
  }
  Message inner;
  inner.from = msg.from;
  inner.to = msg.to;
  inner.payload = env.inner();
  ch.holdback.emplace(env.seq(), std::move(inner));

  // Release strictly in sequence: a lost message holds its successors back
  // until the retransmission lands, preserving per-link FIFO end to end.
  while (true) {
    auto it = ch.holdback.find(ch.next_expected);
    if (it == ch.holdback.end()) break;
    Message release = std::move(it->second);
    ch.holdback.erase(it);
    ++ch.next_expected;
    ++stats_.delivered;
    ++QueryStats(QueryOf(release)).delivered;
    deliver_(release);
  }
}

void ReliableTransport::OnAck(const Message& msg,
                              const ReliableAckPayload& ack) {
  ++stats_.acks_received;
  // The ack flows dst -> src of the original send.
  auto ch_it = senders_.find(ChannelKey(msg.to.host, msg.from.host));
  if (ch_it == senders_.end()) return;
  auto it = ch_it->second.pending.find(ack.seq());
  if (it == ch_it->second.pending.end()) return;
  ++QueryStats(it->second.query).acks_received;
  sim_->Cancel(it->second.timer);
  ch_it->second.pending.erase(it);
}

const ReliableStats& ReliableTransport::stats_for_query(int query) const {
  static const ReliableStats kEmpty;
  auto it = by_query_.find(query);
  return it == by_query_.end() ? kEmpty : it->second;
}

size_t ReliableTransport::pending() const {
  size_t n = 0;
  for (const auto& [key, ch] : senders_) n += ch.pending.size();
  return n;
}

}  // namespace gqp
