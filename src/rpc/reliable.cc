#include "rpc/reliable.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/logging.h"

namespace gqp {
namespace {

/// Transport endpoints live outside the service namespace; the '!' prefix
/// cannot collide with a registered service name.
constexpr const char* kTransportService = "!transport";

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Parses the query id embedded in a service name, or 0.
int QueryOfService(std::string_view service) {
  // Fragment endpoints: "q<N>.f<F>.i<I>".
  if (service.size() >= 2 && service[0] == 'q' && IsDigit(service[1])) {
    int value = 0;
    size_t i = 1;
    while (i < service.size() && IsDigit(service[i])) {
      value = value * 10 + (service[i] - '0');
      ++i;
    }
    if (i < service.size() && service[i] == '.') return value;
  }
  // Per-query adaptivity services: "<role>.q<N>".
  const size_t pos = service.rfind(".q");
  if (pos != std::string_view::npos && pos + 2 < service.size()) {
    int value = 0;
    for (size_t i = pos + 2; i < service.size(); ++i) {
      if (!IsDigit(service[i])) return 0;
      value = value * 10 + (service[i] - '0');
    }
    return value;
  }
  return 0;
}

/// Decorrelates the per-host jitter streams from the global one (and from
/// each other) without new configuration surface.
uint64_t HostJitterSeed(uint64_t base, HostId host) {
  return base ^ (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(host + 1));
}

}  // namespace

int QueryOf(const Message& msg) {
  const int to = QueryOfService(msg.to.service);
  if (to != 0) return to;
  return QueryOfService(msg.from.service);
}

ReliableTransport::ReliableTransport(Network* network,
                                     const ReliableConfig& config,
                                     DeliverFn deliver)
    : network_(network),
      config_(config),
      deliver_(std::move(deliver)),
      jitter_rng_(config.jitter_seed) {}

void ReliableTransport::EnsureHosts(int num_hosts) {
  if (num_hosts <= 0) return;
  if (hosts_.size() < static_cast<size_t>(num_hosts)) {
    hosts_.resize(static_cast<size_t>(num_hosts));
  }
  for (HostId h = 0; h < num_hosts; ++h) {
    if (hosts_[static_cast<size_t>(h)] == nullptr) {
      auto state = std::make_unique<HostState>();
      state->jitter = Rng(HostJitterSeed(config_.jitter_seed, h));
      hosts_[static_cast<size_t>(h)] = std::move(state);
    }
  }
}

ReliableTransport::HostState& ReliableTransport::ForHost(HostId host) {
  // Lazy growth only happens sequentially; sharded setups pre-create every
  // host via EnsureHosts before workers exist.
  if (host < 0) host = 0;
  if (static_cast<size_t>(host) >= hosts_.size() ||
      hosts_[static_cast<size_t>(host)] == nullptr) {
    EnsureHosts(host + 1);
  }
  return *hosts_[static_cast<size_t>(host)];
}

double ReliableTransport::NextJitterDraw(HostId src) {
  // Sequential runs keep the original single stream and its draw order
  // (byte-identical schedules); sharded runs cannot have a global order,
  // so each source host owns an independent seeded stream. Differential
  // references force the per-host streams sequentially too, so both
  // kernels draw identical jitter (Network::ForceShardRngStreams).
  if (network_->shard_rng_streams()) return ForHost(src).jitter.NextDouble();
  return jitter_rng_.NextDouble();
}

Status ReliableTransport::Send(Message msg) {
  const HostId src = msg.from.host;
  const HostId dst = msg.to.host;
  const int query = QueryOf(msg);
  HostState& host = ForHost(src);
  SenderChannel& ch = host.senders[dst];
  const uint64_t seq = ch.next_seq;

  Message envelope;
  envelope.from = msg.from;
  envelope.to = msg.to;
  envelope.payload =
      std::make_shared<ReliableEnvelopePayload>(seq, std::move(msg.payload));

  const Status sent = network_->Send(envelope);
  // An unregistered destination is a caller error, not loss: report it
  // without consuming the seq, or the receiver's cursor would stall on
  // the gap forever.
  if (!sent.ok()) return sent;
  ++ch.next_seq;
  ++host.stats.sent;
  ++QueryStats(src, query).sent;

  Pending pending;
  pending.envelope = std::move(envelope);
  pending.rto_ms = config_.base_rto_ms;
  pending.query = query;
  ch.pending.emplace(seq, std::move(pending));
  ScheduleRetransmit(src, dst, seq);
  return Status::OK();
}

void ReliableTransport::ScheduleRetransmit(HostId src, HostId dst,
                                           uint64_t seq) {
  Pending& p = ForHost(src).senders[dst].pending[seq];
  const double jitter =
      config_.jitter_frac > 0.0
          ? p.rto_ms * config_.jitter_frac * NextJitterDraw(src)
          : 0.0;
  // The timer is a shard-local event on src's simulator, like every other
  // piece of sender-side channel state.
  p.timer = network_->SimulatorFor(src)->Schedule(
      p.rto_ms + jitter, [this, src, dst, seq] { OnTimeout(src, dst, seq); });
}

void ReliableTransport::OnTimeout(HostId src, HostId dst, uint64_t seq) {
  HostState& host = ForHost(src);
  auto ch_it = host.senders.find(dst);
  if (ch_it == host.senders.end()) return;
  auto it = ch_it->second.pending.find(seq);
  if (it == ch_it->second.pending.end()) return;
  Pending& p = it->second;

  // A dead endpoint never acks; retrying would keep the simulation alive
  // forever. Retry exhaustion is the lossless-hang safety net.
  if (network_->HostDown(src) || network_->HostDown(dst) ||
      p.retries >= config_.max_retries) {
    ++host.stats.abandoned;
    ++QueryStats(src, p.query).abandoned;
    ch_it->second.pending.erase(it);
    return;
  }

  ++p.retries;
  ++host.stats.retransmits;
  ++QueryStats(src, p.query).retransmits;
  (void)network_->Send(p.envelope);
  if (p.rto_ms < config_.max_rto_ms) {
    ++host.stats.backoffs;
    ++QueryStats(src, p.query).backoffs;
  }
  p.rto_ms = std::min(p.rto_ms * 2.0, config_.max_rto_ms);
  ScheduleRetransmit(src, dst, seq);
}

bool ReliableTransport::MaybeHandle(const Message& msg) {
  if (const auto* env = PayloadAs<ReliableEnvelopePayload>(msg.payload)) {
    OnEnvelope(msg, *env);
    return true;
  }
  if (const auto* ack = PayloadAs<ReliableAckPayload>(msg.payload)) {
    OnAck(msg, *ack);
    return true;
  }
  return false;
}

void ReliableTransport::OnEnvelope(const Message& msg,
                                   const ReliableEnvelopePayload& env) {
  // Runs on the destination host's shard; all state touched here belongs
  // to msg.to.host.
  HostState& host = ForHost(msg.to.host);
  // Always ack, duplicates included: the sender retransmitted because the
  // previous ack may itself have been lost.
  const int query = QueryOf(msg);  // the envelope keeps the inner addresses
  ++host.stats.acks_sent;
  ++QueryStats(msg.to.host, query).acks_sent;
  Message ack;
  ack.from = Address{msg.to.host, kTransportService};
  ack.to = Address{msg.from.host, kTransportService};
  ack.payload = std::make_shared<ReliableAckPayload>(env.seq());
  (void)network_->Send(std::move(ack));

  ReceiverChannel& ch = host.receivers[msg.from.host];
  if (env.seq() < ch.next_expected || ch.holdback.count(env.seq()) > 0) {
    ++host.stats.dedup_hits;
    ++QueryStats(msg.to.host, query).dedup_hits;
    return;
  }
  Message inner;
  inner.from = msg.from;
  inner.to = msg.to;
  inner.payload = env.inner();
  ch.holdback.emplace(env.seq(), std::move(inner));

  // Release strictly in sequence: a lost message holds its successors back
  // until the retransmission lands, preserving per-link FIFO end to end.
  while (true) {
    auto it = ch.holdback.find(ch.next_expected);
    if (it == ch.holdback.end()) break;
    Message release = std::move(it->second);
    ch.holdback.erase(it);
    ++ch.next_expected;
    ++host.stats.delivered;
    ++QueryStats(msg.to.host, QueryOf(release)).delivered;
    deliver_(release);
  }
}

void ReliableTransport::OnAck(const Message& msg,
                              const ReliableAckPayload& ack) {
  // The ack flows dst -> src of the original send; it is delivered on the
  // original sender's shard and only touches that host's sender state.
  const HostId src = msg.to.host;
  HostState& host = ForHost(src);
  ++host.stats.acks_received;
  auto ch_it = host.senders.find(msg.from.host);
  if (ch_it == host.senders.end()) return;
  auto it = ch_it->second.pending.find(ack.seq());
  if (it == ch_it->second.pending.end()) return;
  ++QueryStats(src, it->second.query).acks_received;
  network_->SimulatorFor(src)->Cancel(it->second.timer);
  ch_it->second.pending.erase(it);
}

namespace {

void AccumulateStats(ReliableStats* into, const ReliableStats& from) {
  into->sent += from.sent;
  into->retransmits += from.retransmits;
  into->backoffs += from.backoffs;
  into->acks_sent += from.acks_sent;
  into->acks_received += from.acks_received;
  into->dedup_hits += from.dedup_hits;
  into->delivered += from.delivered;
  into->abandoned += from.abandoned;
}

}  // namespace

const ReliableStats& ReliableTransport::stats() const {
  merged_stats_ = ReliableStats{};
  for (const auto& host : hosts_) {
    if (host != nullptr) AccumulateStats(&merged_stats_, host->stats);
  }
  return merged_stats_;
}

const ReliableStats& ReliableTransport::stats_for_query(int query) const {
  ReliableStats& merged = merged_by_query_[query];
  merged = ReliableStats{};
  for (const auto& host : hosts_) {
    if (host == nullptr) continue;
    auto it = host->by_query.find(query);
    if (it != host->by_query.end()) AccumulateStats(&merged, it->second);
  }
  return merged;
}

size_t ReliableTransport::pending() const {
  size_t n = 0;
  for (const auto& host : hosts_) {
    if (host == nullptr) continue;
    for (const auto& [dst, ch] : host->senders) n += ch.pending.size();
  }
  return n;
}

}  // namespace gqp
