#include "rpc/message_bus.h"

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

Status MessageBus::RegisterEndpoint(const Address& addr, Handler handler) {
  if (addr.host == kInvalidHost || addr.service.empty()) {
    return Status::InvalidArgument("endpoint needs a host and service name");
  }
  auto [it, inserted] = endpoints_.emplace(addr, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("endpoint already registered: ", addr.ToString()));
  }
  EnsureHostRegistered(addr.host);
  return Status::OK();
}

void MessageBus::UnregisterEndpoint(const Address& addr) {
  endpoints_.erase(addr);
}

void MessageBus::EnsureHostRegistered(HostId host) {
  auto [it, inserted] = hosts_registered_.try_emplace(host, true);
  (void)it;
  if (inserted) {
    network_->RegisterHost(host,
                           [this](const Message& msg) { Deliver(msg); });
  }
}

Status MessageBus::Send(const Address& from, const Address& to,
                        PayloadPtr payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  if (reliable_ && from.host != to.host) {
    return reliable_->Send(std::move(msg));
  }
  return network_->Send(std::move(msg));
}

Status MessageBus::SendBestEffort(const Address& from, const Address& to,
                                  PayloadPtr payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  return network_->Send(std::move(msg));
}

void MessageBus::EnableReliableTransport(const ReliableConfig& config) {
  if (!config.enabled || reliable_) return;
  reliable_ = std::make_unique<ReliableTransport>(
      network_, config, [this](const Message& msg) { DispatchToEndpoint(msg); });
}

void MessageBus::Deliver(const Message& msg) {
  // Transport payloads (envelopes, acks) never reach endpoints.
  if (reliable_ && reliable_->MaybeHandle(msg)) return;
  DispatchToEndpoint(msg);
}

void MessageBus::DispatchToEndpoint(const Message& msg) {
  auto it = endpoints_.find(msg.to);
  if (it == endpoints_.end()) {
    ++dropped_;
    GQP_LOG_DEBUG << "dropping message for unknown endpoint "
                  << msg.to.ToString() << " (type "
                  << (msg.payload ? msg.payload->TypeName() : "null") << ")";
    return;
  }
  it->second(msg);
}

}  // namespace gqp
