#include "rpc/message_bus.h"

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

MessageBus::HostEndpoints* MessageBus::SlotFor(HostId host) const {
  const size_t index = static_cast<size_t>(host);
  if (host < 0 || index >= hosts_.size()) return nullptr;
  return hosts_[index].get();
}

Status MessageBus::RegisterEndpoint(const Address& addr, Handler handler) {
  if (addr.host == kInvalidHost || addr.service.empty()) {
    return Status::InvalidArgument("endpoint needs a host and service name");
  }
  EnsureHostRegistered(addr.host);
  HostEndpoints* slot = SlotFor(addr.host);
  auto [it, inserted] = slot->endpoints.emplace(addr, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("endpoint already registered: ", addr.ToString()));
  }
  return Status::OK();
}

void MessageBus::UnregisterEndpoint(const Address& addr) {
  if (HostEndpoints* slot = SlotFor(addr.host)) slot->endpoints.erase(addr);
}

void MessageBus::EnsureHostRegistered(HostId host) {
  if (host < 0) return;
  const size_t index = static_cast<size_t>(host);
  if (index >= hosts_.size()) hosts_.resize(index + 1);
  if (hosts_[index] == nullptr) {
    hosts_[index] = std::make_unique<HostEndpoints>();
    network_->RegisterHost(host,
                           [this](const Message& msg) { Deliver(msg); });
  }
}

Status MessageBus::Send(const Address& from, const Address& to,
                        PayloadPtr payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  if (reliable_ && from.host != to.host) {
    return reliable_->Send(std::move(msg));
  }
  return network_->Send(std::move(msg));
}

Status MessageBus::SendBestEffort(const Address& from, const Address& to,
                                  PayloadPtr payload) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = std::move(payload);
  return network_->Send(std::move(msg));
}

void MessageBus::EnableReliableTransport(const ReliableConfig& config) {
  if (!config.enabled || reliable_) return;
  reliable_ = std::make_unique<ReliableTransport>(
      network_, config, [this](const Message& msg) { DispatchToEndpoint(msg); });
}

void MessageBus::Deliver(const Message& msg) {
  // Transport payloads (envelopes, acks) never reach endpoints.
  if (reliable_ && reliable_->MaybeHandle(msg)) return;
  DispatchToEndpoint(msg);
}

void MessageBus::DispatchToEndpoint(const Message& msg) {
  HostEndpoints* slot = SlotFor(msg.to.host);
  if (slot != nullptr) {
    auto it = slot->endpoints.find(msg.to);
    if (it != slot->endpoints.end()) {
      it->second(msg);
      return;
    }
    ++slot->dropped;
  }
  GQP_LOG_DEBUG << "dropping message for unknown endpoint "
                << msg.to.ToString() << " (type "
                << (msg.payload ? msg.payload->TypeName() : "null") << ")";
}

uint64_t MessageBus::dropped_messages() const {
  uint64_t total = 0;
  for (const auto& slot : hosts_) {
    if (slot != nullptr) total += slot->dropped;
  }
  return total;
}

}  // namespace gqp
