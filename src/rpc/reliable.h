// Reliable at-least-once delivery over the lossy network model: every
// remote bus message is wrapped in a sequenced envelope, acknowledged by
// the receiving transport, and retransmitted on timeout with capped
// exponential backoff plus seeded jitter. The receiver deduplicates by
// (sender host, receiver host, seq) and releases messages strictly in
// sequence order, so the per-link FIFO contract the exchange protocol
// relies on (DESIGN.md §D7) survives message loss: the delivered stream
// between any two hosts is exactly the sent stream.
//
// End-to-end durability of data tuples still comes from the exchange
// ack/recovery-log path — transport acks only drive retransmission and are
// never a correctness proof across crashes. Heartbeats bypass this layer
// entirely (MessageBus::SendBestEffort): their loss IS the failure signal.

#ifndef GRIDQP_RPC_RELIABLE_H_
#define GRIDQP_RPC_RELIABLE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/network.h"

namespace gqp {

/// Knobs of the acknowledged-send layer.
struct ReliableConfig {
  /// Off by default: legacy (loss-free) setups keep raw network sends and
  /// byte-identical schedules.
  bool enabled = false;
  /// First retransmission timeout.
  double base_rto_ms = 4.0;
  /// Backoff cap: rto_n = min(base * 2^n, max) + jitter.
  double max_rto_ms = 50.0;
  /// Uniform jitter in [0, jitter_frac * rto), drawn from a seeded RNG so
  /// retransmission schedules replay deterministically.
  double jitter_frac = 0.25;
  /// Retransmissions before a pending message is abandoned. Loss rates are
  /// bounded (<= ~5%) and partitions heal, so this is a safety net; the
  /// common abandonment cause is the destination host going down.
  int max_retries = 64;
  uint64_t jitter_seed = 0x0e77a11eULL;
};

/// Transport counters (chaos diagnostics and the overhead bench).
struct ReliableStats {
  /// First transmissions of wrapped messages.
  uint64_t sent = 0;
  uint64_t retransmits = 0;
  /// Retransmissions whose RTO grew (i.e. the exponential backoff actually
  /// engaged — a proxy for sustained loss rather than a one-off drop).
  uint64_t backoffs = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;
  /// Duplicate envelopes discarded by receiver-side dedup.
  uint64_t dedup_hits = 0;
  /// Inner messages released (in order) to endpoint dispatch.
  uint64_t delivered = 0;
  /// Pendings dropped: destination/source host down or retries exhausted.
  uint64_t abandoned = 0;
};

/// Best-effort query attribution of a bus message, from the service
/// naming conventions: fragment endpoints are "q<N>.f<F>.i<I>" and the
/// per-query adaptivity services end in ".q<N>" ("diagnoser.q<N>",
/// "responder.q<N>"). Checks the destination first, then the sender
/// (e.g. an M1 from "q1.f2.i0" to the shared "med" endpoint belongs to
/// query 1). Returns 0 for unattributable traffic (deploy control,
/// transport internals).
int QueryOf(const Message& msg);

/// Wraps one bus message with its channel sequence number. The outer
/// Message keeps the original from/to addresses; the transport intercepts
/// by payload type before endpoint dispatch.
class ReliableEnvelopePayload : public Payload {
 public:
  ReliableEnvelopePayload(uint64_t seq, PayloadPtr inner)
      : seq_(seq), inner_(std::move(inner)) {}

  size_t WireSize() const override {
    return 16 + (inner_ ? inner_->WireSize() : 0);
  }
  std::string_view TypeName() const override { return "ReliableEnvelope"; }

  uint64_t seq() const { return seq_; }
  const PayloadPtr& inner() const { return inner_; }

 private:
  uint64_t seq_;
  PayloadPtr inner_;
};

/// Transport-level acknowledgment of one envelope. Sent best-effort (an
/// acked duplicate re-acks, so ack loss only costs a retransmission).
class ReliableAckPayload : public Payload {
 public:
  explicit ReliableAckPayload(uint64_t seq) : seq_(seq) {}

  size_t WireSize() const override { return 16; }
  std::string_view TypeName() const override { return "ReliableAck"; }

  uint64_t seq() const { return seq_; }

 private:
  uint64_t seq_;
};

/// \brief The acknowledged-send layer, one per MessageBus.
///
/// Channels are directed host pairs; each carries its own seq space, its
/// own retransmission state on the sender, and its own in-order release
/// cursor on the receiver.
///
/// Sharded mode: all state is partitioned per host. Sender-side state of
/// channel (src,dst) — seq allocation, pendings, retransmission timers —
/// is only touched by events on src (Send, the timer, the returning ack
/// delivered to src); receiver-side state only by envelope arrivals on
/// dst. So each host's partition is confined to its shard. The jitter RNG
/// splits per source host too (a single global draw order cannot exist
/// under parallel sends); sequential runs keep the one global stream and
/// its byte-identical schedules. EnsureHosts pre-creates the partitions
/// so the vector never grows while shard workers are live.
class ReliableTransport {
 public:
  using DeliverFn = std::function<void(const Message&)>;

  /// `deliver` releases an unwrapped message to endpoint dispatch.
  ReliableTransport(Network* network, const ReliableConfig& config,
                    DeliverFn deliver);

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Pre-creates per-host state for hosts [0, num_hosts). Sharded setups
  /// must call this before traffic starts.
  void EnsureHosts(int num_hosts);

  /// Wraps and sends a remote message, scheduling retransmissions until
  /// the receiving transport acknowledges it.
  Status Send(Message msg);

  /// Consumes transport payloads (envelopes and acks). Returns false for
  /// application messages, which the bus dispatches normally.
  bool MaybeHandle(const Message& msg);

  /// Envelopes awaiting acknowledgment across all channels.
  size_t pending() const;

  /// Bus-wide totals, over every query and control message.
  const ReliableStats& stats() const;
  /// Counters of one query's traffic only, attributed via QueryOf at send
  /// time (retransmissions and acks inherit the envelope's attribution).
  /// Exact per query even with several queries on the bus; query 0 holds
  /// unattributable control traffic.
  const ReliableStats& stats_for_query(int query) const;

 private:
  struct Pending {
    Message envelope;
    double rto_ms = 0.0;
    int retries = 0;
    /// Query attributed at send time (0: control traffic).
    int query = 0;
    EventId timer = kInvalidEventId;
  };
  struct SenderChannel {
    uint64_t next_seq = 1;
    std::map<uint64_t, Pending> pending;
  };
  struct ReceiverChannel {
    uint64_t next_expected = 1;
    /// Out-of-order arrivals held back until the gap fills.
    std::map<uint64_t, Message> holdback;
  };
  /// One host's slice of the transport. Sender maps are keyed by the
  /// destination host (this host is the source); receiver maps by the
  /// source host (this host is the destination).
  struct HostState {
    std::map<HostId, SenderChannel> senders;
    std::map<HostId, ReceiverChannel> receivers;
    /// Per-source-host jitter stream, used in sharded mode only.
    Rng jitter{0};
    ReliableStats stats;
    std::map<int, ReliableStats> by_query;
  };

  HostState& ForHost(HostId host);
  double NextJitterDraw(HostId src);

  /// The per-query slice of `host`'s stats (created on first use).
  ReliableStats& QueryStats(HostId host, int query) {
    return ForHost(host).by_query[query];
  }

  void ScheduleRetransmit(HostId src, HostId dst, uint64_t seq);
  void OnTimeout(HostId src, HostId dst, uint64_t seq);
  void OnEnvelope(const Message& msg, const ReliableEnvelopePayload& env);
  void OnAck(const Message& msg, const ReliableAckPayload& ack);

  Network* network_;
  ReliableConfig config_;
  DeliverFn deliver_;
  /// The sequential mode's single global jitter stream.
  Rng jitter_rng_;
  /// Indexed by HostId; grown only in EnsureHosts / sequential mode.
  std::vector<std::unique_ptr<HostState>> hosts_;
  mutable ReliableStats merged_stats_;
  mutable std::map<int, ReliableStats> merged_by_query_;
};

}  // namespace gqp

#endif  // GRIDQP_RPC_RELIABLE_H_
