#include "rpc/service.h"

#include <algorithm>

#include "common/logging.h"
#include "common/result.h"

namespace gqp {

GridService::GridService(MessageBus* bus, HostId host, std::string name)
    : bus_(bus) {
  address_.host = host;
  address_.service = std::move(name);
}

GridService::~GridService() { Stop(); }

Status GridService::Start() {
  if (started_) return Status::OK();
  GQP_RETURN_IF_ERROR(bus_->RegisterEndpoint(
      address_, [this](const Message& msg) { Dispatch(msg); }));
  started_ = true;
  return Status::OK();
}

void GridService::Stop() {
  if (!started_) return;
  bus_->UnregisterEndpoint(address_);
  started_ = false;
}

Status GridService::SendTo(const Address& to, PayloadPtr payload) {
  return bus_->Send(address_, to, std::move(payload));
}

Status GridService::Subscribe(const Address& publisher,
                              const std::string& topic) {
  return SendTo(publisher,
                std::make_shared<SubscribePayload>(topic, address_));
}

Status GridService::Publish(const std::string& topic, PayloadPtr body) {
  auto it = subscribers_.find(topic);
  if (it == subscribers_.end()) return Status::OK();
  auto notification =
      std::make_shared<NotificationPayload>(topic, std::move(body));
  for (const Address& sub : it->second) {
    GQP_RETURN_IF_ERROR(SendTo(sub, notification));
  }
  return Status::OK();
}

size_t GridService::SubscriberCount(const std::string& topic) const {
  auto it = subscribers_.find(topic);
  return it == subscribers_.end() ? 0 : it->second.size();
}

void GridService::OnNotification(const Address& /*publisher*/,
                                 const std::string& /*topic*/,
                                 const PayloadPtr& /*body*/) {}

void GridService::Dispatch(const Message& msg) {
  if (const auto* sub = PayloadAs<SubscribePayload>(msg.payload)) {
    auto& subs = subscribers_[sub->topic()];
    if (std::find(subs.begin(), subs.end(), sub->subscriber()) == subs.end()) {
      subs.push_back(sub->subscriber());
    }
    return;
  }
  if (const auto* unsub = PayloadAs<UnsubscribePayload>(msg.payload)) {
    auto it = subscribers_.find(unsub->topic());
    if (it != subscribers_.end()) {
      auto& subs = it->second;
      subs.erase(std::remove(subs.begin(), subs.end(), unsub->subscriber()),
                 subs.end());
    }
    return;
  }
  if (const auto* note = PayloadAs<NotificationPayload>(msg.payload)) {
    OnNotification(msg.from, note->topic(), note->body());
    return;
  }
  HandleMessage(msg);
}

}  // namespace gqp
