// GridService: base class for all service-oriented components (GDQS, GQES,
// MonitoringEventDetector, Diagnoser, Responder, GridDataService).
//
// Services communicate asynchronously and support the publish/subscribe
// model of the paper's architecture (Fig. 1): any service can act as an
// event source; others Subscribe() to a topic and receive Notification
// payloads via OnNotification().

#ifndef GRIDQP_RPC_SERVICE_H_
#define GRIDQP_RPC_SERVICE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rpc/message_bus.h"

namespace gqp {

/// Control payload: subscription request for a topic.
class SubscribePayload : public Payload {
 public:
  SubscribePayload(std::string topic, Address subscriber)
      : topic_(std::move(topic)), subscriber_(std::move(subscriber)) {}

  size_t WireSize() const override { return 64 + topic_.size(); }
  std::string_view TypeName() const override { return "Subscribe"; }

  const std::string& topic() const { return topic_; }
  const Address& subscriber() const { return subscriber_; }

 private:
  std::string topic_;
  Address subscriber_;
};

/// Control payload: unsubscription request.
class UnsubscribePayload : public Payload {
 public:
  UnsubscribePayload(std::string topic, Address subscriber)
      : topic_(std::move(topic)), subscriber_(std::move(subscriber)) {}

  size_t WireSize() const override { return 64 + topic_.size(); }
  std::string_view TypeName() const override { return "Unsubscribe"; }

  const std::string& topic() const { return topic_; }
  const Address& subscriber() const { return subscriber_; }

 private:
  std::string topic_;
  Address subscriber_;
};

/// Envelope for published events: a topic plus the application payload.
class NotificationPayload : public Payload {
 public:
  NotificationPayload(std::string topic, PayloadPtr body)
      : topic_(std::move(topic)), body_(std::move(body)) {}

  size_t WireSize() const override {
    return 32 + topic_.size() + (body_ ? body_->WireSize() : 0);
  }
  std::string_view TypeName() const override { return "Notification"; }

  const std::string& topic() const { return topic_; }
  const PayloadPtr& body() const { return body_; }

 private:
  std::string topic_;
  PayloadPtr body_;
};

/// \brief Base class for grid services.
///
/// Lifecycle: construct, then Start() registers the endpoint with the bus;
/// Stop() unregisters it. Subclasses implement HandleMessage() for direct
/// (request-style) payloads and OnNotification() for pub/sub events; the
/// base class handles the subscribe/unsubscribe/notification plumbing.
class GridService {
 public:
  GridService(MessageBus* bus, HostId host, std::string name);
  virtual ~GridService();

  GridService(const GridService&) = delete;
  GridService& operator=(const GridService&) = delete;

  /// Registers this service's endpoint; must be called before messaging.
  Status Start();

  /// Unregisters the endpoint. Idempotent.
  void Stop();

  const Address& address() const { return address_; }
  HostId host() const { return address_.host; }
  const std::string& name() const { return address_.service; }
  MessageBus* bus() const { return bus_; }
  /// This host's simulator: its shard's in a sharded run, the single
  /// sequential one otherwise. Every timer a service schedules therefore
  /// lands on its own shard.
  Simulator* simulator() const { return bus_->SimulatorFor(host()); }

  /// Sends a direct payload to another service.
  Status SendTo(const Address& to, PayloadPtr payload);

  /// Subscribes this service to `topic` at `publisher` (sends a Subscribe
  /// control message through the network, as a loosely-coupled system
  /// would).
  Status Subscribe(const Address& publisher, const std::string& topic);

  /// Publishes an event to all current subscribers of `topic`.
  Status Publish(const std::string& topic, PayloadPtr body);

  /// Number of subscribers currently registered for a topic.
  size_t SubscriberCount(const std::string& topic) const;

 protected:
  /// Direct (non-pub/sub) message dispatch.
  virtual void HandleMessage(const Message& msg) = 0;

  /// Pub/sub event dispatch. Default ignores events.
  virtual void OnNotification(const Address& publisher,
                              const std::string& topic, const PayloadPtr& body);

 private:
  void Dispatch(const Message& msg);

  MessageBus* bus_;
  Address address_;
  bool started_ = false;
  std::unordered_map<std::string, std::vector<Address>> subscribers_;
};

}  // namespace gqp

#endif  // GRIDQP_RPC_SERVICE_H_
