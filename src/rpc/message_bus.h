// MessageBus: routes messages to service endpoints over the simulated
// network. One bus per grid; services register their Address with it.
//
// Sharded mode: endpoint registrations are partitioned per host. A host's
// endpoints are only registered/unregistered/dispatched by events running
// on that host (deploys create executors on their own host), so each
// shard touches only its hosts' maps. The per-host slots themselves are
// created eagerly at setup (EnsureHost) so the slot vector never grows
// while shard workers are live.

#ifndef GRIDQP_RPC_MESSAGE_BUS_H_
#define GRIDQP_RPC_MESSAGE_BUS_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/message.h"
#include "net/network.h"
#include "rpc/reliable.h"

namespace gqp {

/// \brief Endpoint registry + send facade.
///
/// The bus registers one delivery handler per host with the Network and
/// dispatches arriving messages to the addressed service. Unknown
/// destinations are logged and dropped (as a lossy wide-area transport
/// would), never fatal.
class MessageBus {
 public:
  explicit MessageBus(Network* network) : network_(network) {}

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  using Handler = std::function<void(const Message&)>;

  /// Pre-creates the host's endpoint slot and registers its delivery
  /// handler with the network. Implied by RegisterEndpoint; sharded setups
  /// call it eagerly for every host so no slot is created mid-run.
  void EnsureHost(HostId host) { EnsureHostRegistered(host); }

  /// Registers a service endpoint. Fails on duplicate address.
  Status RegisterEndpoint(const Address& addr, Handler handler);

  /// Removes an endpoint (e.g., when a query's evaluators shut down).
  void UnregisterEndpoint(const Address& addr);

  /// Sends `payload` from `from` to `to` through the network model. When
  /// the reliable transport is enabled, remote messages travel through it
  /// (acked, retransmitted, deduplicated, released in order); same-host
  /// messages always go raw — local delivery cannot be lost.
  Status Send(const Address& from, const Address& to, PayloadPtr payload);

  /// Sends raw even when the reliable transport is enabled. Heartbeats use
  /// this: their loss is the signal the detector measures, and masking it
  /// with retransmission would blind the failure detector.
  Status SendBestEffort(const Address& from, const Address& to,
                        PayloadPtr payload);

  /// Routes all subsequent remote sends through an acknowledged-send
  /// layer. Call before traffic starts; config.enabled must be true.
  void EnableReliableTransport(const ReliableConfig& config);

  /// Null unless EnableReliableTransport was called.
  ReliableTransport* reliable() const { return reliable_.get(); }

  Network* network() const { return network_; }
  Simulator* simulator() const { return network_->simulator(); }
  /// The simulator running `host`'s events (its shard's, or the single
  /// sequential one). Services schedule their timers through this.
  Simulator* SimulatorFor(HostId host) const {
    return network_->SimulatorFor(host);
  }

  /// Count of messages that arrived for unregistered endpoints, summed
  /// over all hosts.
  uint64_t dropped_messages() const;

 private:
  /// Endpoint registry of one host. Touched only by that host's events.
  struct HostEndpoints {
    std::unordered_map<Address, Handler, AddressHash> endpoints;
    uint64_t dropped = 0;
  };

  void Deliver(const Message& msg);
  void DispatchToEndpoint(const Message& msg);
  void EnsureHostRegistered(HostId host);
  HostEndpoints* SlotFor(HostId host) const;

  Network* network_;
  /// Indexed by HostId; slots created in EnsureHostRegistered (setup or
  /// sequential-mode lazy registration only).
  std::vector<std::unique_ptr<HostEndpoints>> hosts_;
  std::unique_ptr<ReliableTransport> reliable_;
};

}  // namespace gqp

#endif  // GRIDQP_RPC_MESSAGE_BUS_H_
