// MessageBus: routes messages to service endpoints over the simulated
// network. One bus per grid; services register their Address with it.

#ifndef GRIDQP_RPC_MESSAGE_BUS_H_
#define GRIDQP_RPC_MESSAGE_BUS_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "net/message.h"
#include "net/network.h"
#include "rpc/reliable.h"

namespace gqp {

/// \brief Endpoint registry + send facade.
///
/// The bus registers one delivery handler per host with the Network and
/// dispatches arriving messages to the addressed service. Unknown
/// destinations are logged and dropped (as a lossy wide-area transport
/// would), never fatal.
class MessageBus {
 public:
  explicit MessageBus(Network* network) : network_(network) {}

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  using Handler = std::function<void(const Message&)>;

  /// Registers a service endpoint. Fails on duplicate address.
  Status RegisterEndpoint(const Address& addr, Handler handler);

  /// Removes an endpoint (e.g., when a query's evaluators shut down).
  void UnregisterEndpoint(const Address& addr);

  /// Sends `payload` from `from` to `to` through the network model. When
  /// the reliable transport is enabled, remote messages travel through it
  /// (acked, retransmitted, deduplicated, released in order); same-host
  /// messages always go raw — local delivery cannot be lost.
  Status Send(const Address& from, const Address& to, PayloadPtr payload);

  /// Sends raw even when the reliable transport is enabled. Heartbeats use
  /// this: their loss is the signal the detector measures, and masking it
  /// with retransmission would blind the failure detector.
  Status SendBestEffort(const Address& from, const Address& to,
                        PayloadPtr payload);

  /// Routes all subsequent remote sends through an acknowledged-send
  /// layer. Call before traffic starts; config.enabled must be true.
  void EnableReliableTransport(const ReliableConfig& config);

  /// Null unless EnableReliableTransport was called.
  ReliableTransport* reliable() const { return reliable_.get(); }

  Network* network() const { return network_; }
  Simulator* simulator() const { return network_->simulator(); }

  /// Count of messages that arrived for unregistered endpoints.
  uint64_t dropped_messages() const { return dropped_; }

 private:
  void Deliver(const Message& msg);
  void DispatchToEndpoint(const Message& msg);
  void EnsureHostRegistered(HostId host);

  Network* network_;
  std::unordered_map<Address, Handler, AddressHash> endpoints_;
  std::unordered_map<HostId, bool> hosts_registered_;
  std::unique_ptr<ReliableTransport> reliable_;
  uint64_t dropped_ = 0;
};

}  // namespace gqp

#endif  // GRIDQP_RPC_MESSAGE_BUS_H_
