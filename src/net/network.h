// Simulated wide-area network: point-to-point links with latency and
// bandwidth, FIFO per-link serialization, per-byte accounting, and an
// optional lossy-delivery model (seeded per-message drops plus partition
// windows that isolate hosts).
//
// This stands in for the paper's 100 Mbps LAN + SOAP/HTTP transport (see
// DESIGN.md §1). Delivery within a host is free and immediate, matching the
// paper's "communication cost between subplans in the same machine is
// considered zero".
//
// Sharded mode (DESIGN.md §D15): with EnableSharding the fabric routes
// deliveries to the destination host's shard. The partitioning works
// because all mutable per-send state is naturally confined: a directed
// link (src,dst) is only ever used by sends from src, which execute on
// src's shard, so each shard owns the FIFO state of its hosts' outgoing
// links (and a stats lane). Link parameters, host registrations, down
// sets and partition windows are only written at setup or inside
// stop-the-world global events, when all shard workers are quiescent.

#ifndef GRIDQP_NET_NETWORK_H_
#define GRIDQP_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/message.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace gqp {

/// Characteristics of a directed link between two hosts.
struct LinkParams {
  /// One-way propagation delay in ms.
  double latency_ms = 0.5;
  /// Bytes per ms. Default models 100 Mbps ~ 12.5 MB/s = 12500 bytes/ms.
  double bandwidth_bytes_per_ms = 12500.0;
};

/// Aggregate traffic counters, exposed for the overhead experiments.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t local_deliveries = 0;
  /// Remote messages discarded by the random-loss model.
  uint64_t loss_drops = 0;
  /// Remote messages discarded because an endpoint was partitioned away.
  uint64_t partition_drops = 0;
};

/// \brief The simulated network fabric.
///
/// Hosts register a delivery handler; Send() schedules delivery events on
/// the simulator. Each directed (src,dst) link serializes transfers FIFO:
/// a message begins transmission when the link is free, occupies it for
/// size/bandwidth ms, and arrives latency ms after transmission ends.
class Network {
 public:
  using DeliveryHandler = std::function<void(const Message&)>;

  Network(Simulator* sim, LinkParams default_link)
      : sim_(sim), default_link_(default_link) {
    lanes_.resize(1);
    stats_lanes_.resize(1);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Switches the fabric to sharded routing: host h lives on shard
  /// h % num_shards, sends execute on the source host's shard and
  /// deliveries are scheduled on the destination host's shard (cross-shard
  /// via the sharded simulator's channels). Call once, at setup, before
  /// traffic starts. Every link latency must be >= the sharded simulator's
  /// lookahead — the setup layer validates this.
  void EnableSharding(ShardedSimulator* sharded);

  bool sharded() const { return sharded_ != nullptr; }
  ShardedSimulator* sharded_simulator() const { return sharded_; }

  /// Shard owning `host` (0 when not sharded).
  int ShardOf(HostId host) const {
    return sharded_ == nullptr
               ? 0
               : static_cast<int>(host) % sharded_->num_shards();
  }

  /// The simulator that runs `host`'s events: the shard simulator of the
  /// host's shard, or the single sequential simulator.
  Simulator* SimulatorFor(HostId host) const {
    return sharded_ == nullptr ? sim_ : sharded_->shard(ShardOf(host));
  }

  /// Registers a host's delivery handler (one per host; the RPC layer
  /// dispatches to services). Re-registration replaces the handler.
  void RegisterHost(HostId host, DeliveryHandler handler);

  /// Overrides link parameters for a directed host pair.
  void SetLink(HostId src, HostId dst, LinkParams params);

  /// Replaces the parameters of every existing link and the default used
  /// for links created later. In-flight transfers keep their original
  /// schedule; only subsequent sends see the new delay/bandwidth (chaos
  /// scenarios shift the whole fabric mid-query this way).
  void SetAllLinks(LinkParams params);

  /// Smallest latency any current link configuration would give a remote
  /// send: min over the default and every per-link override. The sharded
  /// lookahead is derived from this (plus any latencies a scenario will
  /// set later).
  double MinConfiguredLatencyMs() const;

  /// Envelope bytes added to every remote message (SOAP/HTTP analogue).
  void set_envelope_bytes(size_t bytes) { envelope_bytes_ = bytes; }

  /// Reseeds the loss model's RNG. Drop decisions are a pure function of
  /// the seed and the (deterministic) send sequence, so lossy runs replay
  /// byte-identically (DESIGN.md §6).
  void SeedLoss(uint64_t seed) {
    loss_rng_ = Rng(seed);
    loss_seed_ = seed;
  }

  /// Drop probability applied to every remote message without a per-link
  /// override. 0 (the default) disables the model entirely: no RNG draw
  /// happens, so pre-existing deterministic runs are unchanged.
  void SetDefaultLoss(double drop_probability) {
    default_loss_ = drop_probability;
  }

  /// Per-directed-link drop probability override.
  void SetLinkLoss(HostId src, HostId dst, double drop_probability);

  /// Switches the fabric (and the reliable transport, which consults this)
  /// to the sharded mode's RNG streams even on the sequential kernel:
  /// counter-hash per-link loss and per-host retransmit jitter instead of
  /// the two classic global streams. The differential suite runs its
  /// sequential reference this way so both kernels draw identical loss and
  /// jitter patterns; golden-fingerprint runs never set it.
  void ForceShardRngStreams() { shard_rng_streams_ = true; }
  /// True when loss/jitter draws must use the shard-invariant streams.
  bool shard_rng_streams() const {
    return sharded_ != nullptr || shard_rng_streams_;
  }

  /// Opens a partition window isolating `host`: every remote message to or
  /// from it is dropped (the transfer still occupies the link — the bytes
  /// are transmitted and lost in the fabric). Windows nest: each
  /// BeginPartition must be matched by an EndPartition before traffic
  /// flows again. Unlike SetHostDown, the host itself keeps running.
  void BeginPartition(HostId host);
  void EndPartition(HostId host);
  bool Partitioned(HostId host) const;

  /// Sends a message. Local (same-host) messages are delivered in a
  /// zero-delay event (still asynchronously, to preserve causality).
  /// Fails if the destination host is not registered.
  Status Send(Message msg);

  /// Marks a host as failed: messages to or from it are silently dropped
  /// (the Send itself reports OK, as a real unreliable transport would;
  /// in-flight messages already scheduled still arrive).
  void SetHostDown(HostId host);
  bool HostDown(HostId host) const { return down_.count(host) > 0; }

  /// Time a transfer of `bytes` would occupy the (src,dst) link, excluding
  /// queueing: bytes/bandwidth + latency. Used by exchange producers to
  /// report M2 communication costs.
  double TransferTime(HostId src, HostId dst, size_t bytes) const;

  /// Aggregated over all shard lanes (post-run or sequential use).
  const NetworkStats& stats() const;
  Simulator* simulator() const { return sim_; }

 private:
  /// Per-link dynamic send state. Confined to the source host's shard.
  struct LinkFifo {
    SimTime busy_until = 0.0;
    /// Arrival time of the last message sent on this link. Delivery is
    /// clamped to it so a latency drop mid-stream cannot make a later
    /// (small) message overtake an earlier (large) one: the exchange
    /// round protocol relies on in-order links (a StateMoveRequest or
    /// RestoreComplete marker proves everything sent before it arrived).
    SimTime last_arrival = 0.0;
    /// Per-link send counter, the loss-draw index in sharded mode.
    uint64_t sends = 0;
  };

  LinkFifo& GetFifo(HostId src, HostId dst);
  const LinkParams& GetLinkParams(HostId src, HostId dst) const;
  double LossRate(HostId src, HostId dst) const;
  /// Sharded-mode drop decision: a pure hash of (seed, link, send index),
  /// so it depends on neither shard count nor thread interleaving.
  bool CounterHashDrop(uint64_t link_key, uint64_t send_index,
                       double loss) const;

  Simulator* sim_;
  ShardedSimulator* sharded_ = nullptr;
  LinkParams default_link_;
  size_t envelope_bytes_ = 256;
  std::unordered_map<HostId, DeliveryHandler> hosts_;
  std::unordered_set<HostId> down_;
  /// Per-link parameter overrides. Written at setup / stop-the-world only.
  std::unordered_map<uint64_t, LinkParams> link_params_;
  /// Dynamic link state, one lane per shard (a single lane sequentially):
  /// lane i holds the outgoing links of hosts on shard i, so shard workers
  /// never touch each other's lanes.
  std::vector<std::unordered_map<uint64_t, LinkFifo>> lanes_;
  double default_loss_ = 0.0;
  bool shard_rng_streams_ = false;
  std::unordered_map<uint64_t, double> link_loss_;
  Rng loss_rng_{0x10551055ULL};
  uint64_t loss_seed_ = 0x10551055ULL;
  /// Open partition windows per host (windows may overlap, hence a count).
  std::unordered_map<HostId, int> partitioned_;
  /// Traffic counters, one lane per shard; stats() sums them.
  std::vector<NetworkStats> stats_lanes_;
  mutable NetworkStats merged_stats_;
};

}  // namespace gqp

#endif  // GRIDQP_NET_NETWORK_H_
