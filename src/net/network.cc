#include "net/network.h"

#include <algorithm>

#include "common/strings.h"

namespace gqp {
namespace {

uint64_t LinkKey(HostId src, HostId dst) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
         static_cast<uint32_t>(dst);
}

}  // namespace

void Network::EnableSharding(ShardedSimulator* sharded) {
  sharded_ = sharded;
  lanes_.assign(static_cast<size_t>(sharded->num_shards()), {});
  stats_lanes_.assign(static_cast<size_t>(sharded->num_shards()),
                      NetworkStats{});
}

void Network::RegisterHost(HostId host, DeliveryHandler handler) {
  hosts_[host] = std::move(handler);
}

void Network::SetLink(HostId src, HostId dst, LinkParams params) {
  link_params_[LinkKey(src, dst)] = params;
}

void Network::SetAllLinks(LinkParams params) {
  default_link_ = params;
  for (auto& [key, p] : link_params_) p = params;
}

double Network::MinConfiguredLatencyMs() const {
  double min_latency = default_link_.latency_ms;
  for (const auto& [key, p] : link_params_) {
    min_latency = std::min(min_latency, p.latency_ms);
  }
  return min_latency;
}

Network::LinkFifo& Network::GetFifo(HostId src, HostId dst) {
  // Lane = src's shard: only sends from src touch this link, and those
  // execute on src's shard, so lazy insertion here never races.
  return lanes_[static_cast<size_t>(ShardOf(src))][LinkKey(src, dst)];
}

const LinkParams& Network::GetLinkParams(HostId src, HostId dst) const {
  auto it = link_params_.find(LinkKey(src, dst));
  return it == link_params_.end() ? default_link_ : it->second;
}

void Network::SetHostDown(HostId host) { down_.insert(host); }

void Network::SetLinkLoss(HostId src, HostId dst, double drop_probability) {
  link_loss_[LinkKey(src, dst)] = drop_probability;
}

double Network::LossRate(HostId src, HostId dst) const {
  auto it = link_loss_.find(LinkKey(src, dst));
  return it == link_loss_.end() ? default_loss_ : it->second;
}

bool Network::CounterHashDrop(uint64_t link_key, uint64_t send_index,
                              double loss) const {
  // splitmix64 finalizer over (seed, link, index): a per-link drop stream
  // that is identical for every shard count and thread interleaving —
  // unlike the sequential mode's single RNG, whose draw order IS the
  // global send order and therefore cannot exist under parallel sends.
  uint64_t x = loss_seed_ ^ (link_key * 0x9E3779B97F4A7C15ULL) ^
               (send_index * 0xBF58476D1CE4E5B9ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  const double draw = static_cast<double>(x >> 11) * 0x1.0p-53;
  return draw < loss;
}

void Network::BeginPartition(HostId host) { ++partitioned_[host]; }

void Network::EndPartition(HostId host) {
  auto it = partitioned_.find(host);
  if (it == partitioned_.end()) return;
  if (--it->second <= 0) partitioned_.erase(it);
}

bool Network::Partitioned(HostId host) const {
  return partitioned_.count(host) > 0;
}

Status Network::Send(Message msg) {
  if (down_.count(msg.to.host) > 0 || down_.count(msg.from.host) > 0) {
    return Status::OK();  // dropped on the floor, like the real wide area
  }
  auto host_it = hosts_.find(msg.to.host);
  if (host_it == hosts_.end()) {
    return Status::NotFound(
        StrCat("destination host ", msg.to.host, " not registered"));
  }
  DeliveryHandler* handler = &host_it->second;
  // Sends execute on the source host's shard; its clock is the send time.
  Simulator* src_sim = SimulatorFor(msg.from.host);
  NetworkStats& stats = stats_lanes_[static_cast<size_t>(ShardOf(msg.from.host))];

  if (msg.from.host == msg.to.host) {
    ++stats.local_deliveries;
    src_sim->Schedule(0.0, [handler, m = std::move(msg)]() { (*handler)(m); });
    return Status::OK();
  }

  const size_t bytes =
      (msg.payload ? msg.payload->WireSize() : 0) + envelope_bytes_;
  const uint64_t key = LinkKey(msg.from.host, msg.to.host);
  LinkFifo& link = GetFifo(msg.from.host, msg.to.host);
  const LinkParams& params = GetLinkParams(msg.from.host, msg.to.host);
  const SimTime start = std::max(src_sim->Now(), link.busy_until);
  const double tx = static_cast<double>(bytes) / params.bandwidth_bytes_per_ms;
  link.busy_until = start + tx;
  const SimTime arrival =
      std::max(start + tx + params.latency_ms, link.last_arrival);
  link.last_arrival = arrival;
  ++link.sends;

  ++stats.messages_sent;
  stats.bytes_sent += bytes;

  // Lossy delivery: the transfer occupied the link either way (the bytes
  // went out and vanished in the fabric), so the busy/FIFO bookkeeping
  // above stands; only the delivery event is suppressed. Partition checks
  // precede the loss draw so partition windows never perturb the RNG
  // stream of unrelated messages.
  if (Partitioned(msg.from.host) || Partitioned(msg.to.host)) {
    ++stats.partition_drops;
    return Status::OK();
  }
  const double loss = LossRate(msg.from.host, msg.to.host);
  if (loss > 0.0) {
    const bool drop = shard_rng_streams()
                          ? CounterHashDrop(key, link.sends, loss)
                          : loss_rng_.NextDouble() < loss;
    if (drop) {
      ++stats.loss_drops;
      return Status::OK();
    }
  }

  if (sharded_ != nullptr) {
    // Arrival >= now + latency >= now + lookahead: the conservative
    // contract holds by link-latency validation at setup.
    sharded_->ScheduleCrossAt(
        ShardOf(msg.to.host), arrival,
        [handler, m = std::move(msg)]() { (*handler)(m); });
    return Status::OK();
  }
  sim_->ScheduleAt(arrival, [handler, m = std::move(msg)]() { (*handler)(m); });
  return Status::OK();
}

double Network::TransferTime(HostId src, HostId dst, size_t bytes) const {
  if (src == dst) return 0.0;
  const LinkParams& p = GetLinkParams(src, dst);
  return static_cast<double>(bytes + envelope_bytes_) /
             p.bandwidth_bytes_per_ms +
         p.latency_ms;
}

const NetworkStats& Network::stats() const {
  if (stats_lanes_.size() == 1) return stats_lanes_[0];
  merged_stats_ = NetworkStats{};
  for (const NetworkStats& lane : stats_lanes_) {
    merged_stats_.messages_sent += lane.messages_sent;
    merged_stats_.bytes_sent += lane.bytes_sent;
    merged_stats_.local_deliveries += lane.local_deliveries;
    merged_stats_.loss_drops += lane.loss_drops;
    merged_stats_.partition_drops += lane.partition_drops;
  }
  return merged_stats_;
}

}  // namespace gqp
