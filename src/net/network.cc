#include "net/network.h"

#include <algorithm>

#include "common/strings.h"

namespace gqp {
namespace {

uint64_t LinkKey(HostId src, HostId dst) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
         static_cast<uint32_t>(dst);
}

}  // namespace

void Network::RegisterHost(HostId host, DeliveryHandler handler) {
  hosts_[host] = std::move(handler);
}

void Network::SetLink(HostId src, HostId dst, LinkParams params) {
  links_[LinkKey(src, dst)].params = params;
}

void Network::SetAllLinks(LinkParams params) {
  default_link_ = params;
  for (auto& [key, link] : links_) link.params = params;
}

Network::LinkState& Network::GetLink(HostId src, HostId dst) {
  auto [it, inserted] = links_.try_emplace(LinkKey(src, dst));
  if (inserted) it->second.params = default_link_;
  return it->second;
}

const LinkParams& Network::GetLinkParams(HostId src, HostId dst) const {
  auto it = links_.find(LinkKey(src, dst));
  return it == links_.end() ? default_link_ : it->second.params;
}

void Network::SetHostDown(HostId host) { down_.insert(host); }

void Network::SetLinkLoss(HostId src, HostId dst, double drop_probability) {
  link_loss_[LinkKey(src, dst)] = drop_probability;
}

double Network::LossRate(HostId src, HostId dst) const {
  auto it = link_loss_.find(LinkKey(src, dst));
  return it == link_loss_.end() ? default_loss_ : it->second;
}

void Network::BeginPartition(HostId host) { ++partitioned_[host]; }

void Network::EndPartition(HostId host) {
  auto it = partitioned_.find(host);
  if (it == partitioned_.end()) return;
  if (--it->second <= 0) partitioned_.erase(it);
}

bool Network::Partitioned(HostId host) const {
  return partitioned_.count(host) > 0;
}

Status Network::Send(Message msg) {
  if (down_.count(msg.to.host) > 0 || down_.count(msg.from.host) > 0) {
    return Status::OK();  // dropped on the floor, like the real wide area
  }
  auto host_it = hosts_.find(msg.to.host);
  if (host_it == hosts_.end()) {
    return Status::NotFound(
        StrCat("destination host ", msg.to.host, " not registered"));
  }
  DeliveryHandler* handler = &host_it->second;

  if (msg.from.host == msg.to.host) {
    ++stats_.local_deliveries;
    sim_->Schedule(0.0, [handler, m = std::move(msg)]() { (*handler)(m); });
    return Status::OK();
  }

  const size_t bytes =
      (msg.payload ? msg.payload->WireSize() : 0) + envelope_bytes_;
  LinkState& link = GetLink(msg.from.host, msg.to.host);
  const SimTime start = std::max(sim_->Now(), link.busy_until);
  const double tx = static_cast<double>(bytes) /
                    link.params.bandwidth_bytes_per_ms;
  link.busy_until = start + tx;
  const SimTime arrival =
      std::max(start + tx + link.params.latency_ms, link.last_arrival);
  link.last_arrival = arrival;

  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;

  // Lossy delivery: the transfer occupied the link either way (the bytes
  // went out and vanished in the fabric), so the busy/FIFO bookkeeping
  // above stands; only the delivery event is suppressed. Partition checks
  // precede the loss draw so partition windows never perturb the RNG
  // stream of unrelated messages.
  if (Partitioned(msg.from.host) || Partitioned(msg.to.host)) {
    ++stats_.partition_drops;
    return Status::OK();
  }
  const double loss = LossRate(msg.from.host, msg.to.host);
  if (loss > 0.0 && loss_rng_.NextDouble() < loss) {
    ++stats_.loss_drops;
    return Status::OK();
  }

  sim_->ScheduleAt(arrival, [handler, m = std::move(msg)]() { (*handler)(m); });
  return Status::OK();
}

double Network::TransferTime(HostId src, HostId dst, size_t bytes) const {
  if (src == dst) return 0.0;
  const LinkParams& p = GetLinkParams(src, dst);
  return static_cast<double>(bytes + envelope_bytes_) /
             p.bandwidth_bytes_per_ms +
         p.latency_ms;
}

}  // namespace gqp
