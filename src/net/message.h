// Message and payload types carried by the simulated network.
//
// GridQP is an in-process simulation, so payloads are passed by pointer
// rather than actually serialized; every payload nevertheless reports a
// WireSize() used by the network cost model, mirroring the byte cost the
// paper's SOAP/HTTP transport would have paid.

#ifndef GRIDQP_NET_MESSAGE_H_
#define GRIDQP_NET_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>

namespace gqp {

/// Identifies a simulated grid host. Hosts are registered with the Network.
using HostId = int32_t;

constexpr HostId kInvalidHost = -1;

/// A service endpoint: a named service running on a host.
struct Address {
  HostId host = kInvalidHost;
  std::string service;

  bool operator==(const Address& other) const {
    return host == other.host && service == other.service;
  }
  std::string ToString() const {
    return service + "@" + std::to_string(host);
  }
};

struct AddressHash {
  size_t operator()(const Address& a) const {
    return std::hash<std::string>()(a.service) * 1000003u ^
           std::hash<int32_t>()(a.host);
  }
};

/// \brief Base class for everything sent over the simulated network.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Serialized size in bytes, used for transfer-time costing. Includes a
  /// nominal envelope (the SOAP/HTTP analogue) added by the network layer,
  /// so implementations return body size only.
  virtual size_t WireSize() const = 0;

  /// Stable payload type name for dispatch and debugging.
  virtual std::string_view TypeName() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A message in flight between two service endpoints.
struct Message {
  Address from;
  Address to;
  PayloadPtr payload;
};

/// Downcasts a payload; returns nullptr when the runtime type differs.
template <typename T>
const T* PayloadAs(const PayloadPtr& p) {
  return dynamic_cast<const T*>(p.get());
}

}  // namespace gqp

#endif  // GRIDQP_NET_MESSAGE_H_
