// Perturbation profiles: the load-injection models of the paper's
// evaluation (Section 3.2). A profile transforms the base virtual cost of a
// unit of work into the cost actually charged on a perturbed machine.
//
// The paper injects load two ways: (i) making an operation k times costlier
// (busy-loop iteration) and (ii) inserting sleep() calls before each tuple.
// Fig. 5 additionally varies the factor per tuple, normally distributed
// around a stable mean.

#ifndef GRIDQP_GRID_PERTURBATION_H_
#define GRIDQP_GRID_PERTURBATION_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "sim/simulator.h"

namespace gqp {

/// \brief Maps a base work cost to a perturbed cost.
///
/// Profiles may be stateful (RNG-driven); one instance is owned per
/// (node, operation-tag) binding.
class PerturbationProfile {
 public:
  virtual ~PerturbationProfile() = default;

  /// Returns the perturbed cost in ms for work whose unperturbed cost is
  /// `base_cost_ms`, at virtual time `now`.
  virtual double Apply(double base_cost_ms, SimTime now) = 0;

  /// Human-readable description for logs/reports.
  virtual std::string Describe() const = 0;
};

using PerturbationPtr = std::shared_ptr<PerturbationProfile>;

/// No perturbation; returns the base cost unchanged.
class NoPerturbation : public PerturbationProfile {
 public:
  double Apply(double base_cost_ms, SimTime) override { return base_cost_ms; }
  std::string Describe() const override { return "none"; }
};

/// Multiplies cost by a constant factor (the paper's "k times costlier" WS).
class ConstantFactorPerturbation : public PerturbationProfile {
 public:
  explicit ConstantFactorPerturbation(double factor);
  double Apply(double base_cost_ms, SimTime) override;
  std::string Describe() const override;

 private:
  double factor_;
};

/// Adds a fixed delay per unit of work (the paper's sleep(10 ms) before each
/// join tuple).
class AddedDelayPerturbation : public PerturbationProfile {
 public:
  explicit AddedDelayPerturbation(double delay_ms);
  double Apply(double base_cost_ms, SimTime) override;
  std::string Describe() const override;

 private:
  double delay_ms_;
};

/// Per-tuple factor drawn from a truncated normal distribution (Fig. 5:
/// factors in [25,35], [20,40], [1,60] with a stable mean).
class GaussianFactorPerturbation : public PerturbationProfile {
 public:
  GaussianFactorPerturbation(double mean, double stddev, double lo, double hi,
                             uint64_t seed);
  double Apply(double base_cost_ms, SimTime) override;
  std::string Describe() const override;

 private:
  double mean_, stddev_, lo_, hi_;
  Rng rng_;
};

/// Mean-reverting load drift (Ornstein–Uhlenbeck process on the log
/// factor): models the natural performance fluctuations of shared
/// wide-area machines. The factor wanders around 1.0 with stationary
/// standard deviation `sigma` (of the log factor) and correlation time
/// `tau_ms`; the paper observed such fluctuations occasionally triggering
/// adaptations even between nominally identical machines.
class DriftPerturbation : public PerturbationProfile {
 public:
  DriftPerturbation(double sigma, double tau_ms, uint64_t seed);
  double Apply(double base_cost_ms, SimTime now) override;
  std::string Describe() const override;

  /// Current multiplicative factor (tests).
  double CurrentFactor(SimTime now);

 private:
  double sigma_;
  double tau_ms_;
  Rng rng_;
  double x_ = 0.0;  // log-factor state
  SimTime last_t_ = 0.0;
};

/// Piecewise-constant factor over virtual time: the factor of the last
/// step whose start time is <= now applies. Used to model machines whose
/// load changes mid-query.
class StepPerturbation : public PerturbationProfile {
 public:
  struct Step {
    SimTime start_ms;
    double factor;
  };

  /// Steps must be sorted by start time; factor 1.0 applies before the
  /// first step.
  explicit StepPerturbation(std::vector<Step> steps);
  double Apply(double base_cost_ms, SimTime now) override;
  std::string Describe() const override;

 private:
  std::vector<Step> steps_;
};

}  // namespace gqp

#endif  // GRIDQP_GRID_PERTURBATION_H_
