#include "grid/perturbation.h"

#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace gqp {

ConstantFactorPerturbation::ConstantFactorPerturbation(double factor)
    : factor_(factor) {
  assert(factor > 0.0);
}

double ConstantFactorPerturbation::Apply(double base_cost_ms, SimTime) {
  return base_cost_ms * factor_;
}

std::string ConstantFactorPerturbation::Describe() const {
  return StrFormat("constant x%.2f", factor_);
}

AddedDelayPerturbation::AddedDelayPerturbation(double delay_ms)
    : delay_ms_(delay_ms) {
  assert(delay_ms >= 0.0);
}

double AddedDelayPerturbation::Apply(double base_cost_ms, SimTime) {
  return base_cost_ms + delay_ms_;
}

std::string AddedDelayPerturbation::Describe() const {
  return StrFormat("sleep +%.1f ms", delay_ms_);
}

GaussianFactorPerturbation::GaussianFactorPerturbation(double mean,
                                                       double stddev,
                                                       double lo, double hi,
                                                       uint64_t seed)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi), rng_(seed) {
  assert(lo <= hi);
}

double GaussianFactorPerturbation::Apply(double base_cost_ms, SimTime) {
  return base_cost_ms * rng_.NextTruncatedGaussian(mean_, stddev_, lo_, hi_);
}

std::string GaussianFactorPerturbation::Describe() const {
  return StrFormat("gaussian mean=%.1f sd=%.1f in [%.1f,%.1f]", mean_, stddev_,
                   lo_, hi_);
}

DriftPerturbation::DriftPerturbation(double sigma, double tau_ms,
                                     uint64_t seed)
    : sigma_(sigma), tau_ms_(tau_ms), rng_(seed) {
  assert(sigma >= 0.0 && tau_ms > 0.0);
  // Start from the stationary distribution.
  x_ = rng_.NextGaussian(0.0, sigma_);
}

double DriftPerturbation::CurrentFactor(SimTime now) {
  const double dt = now - last_t_;
  if (dt > 0) {
    const double decay = std::exp(-dt / tau_ms_);
    const double stddev = sigma_ * std::sqrt(1.0 - decay * decay);
    x_ = x_ * decay + rng_.NextGaussian(0.0, stddev);
    last_t_ = now;
  }
  // Clamp to keep pathological tails out of the cost model.
  const double factor = std::exp(x_);
  return factor < 0.25 ? 0.25 : (factor > 4.0 ? 4.0 : factor);
}

double DriftPerturbation::Apply(double base_cost_ms, SimTime now) {
  return base_cost_ms * CurrentFactor(now);
}

std::string DriftPerturbation::Describe() const {
  return StrFormat("drift sigma=%.2f tau=%.0fms", sigma_, tau_ms_);
}

StepPerturbation::StepPerturbation(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  for (size_t i = 1; i < steps_.size(); ++i) {
    assert(steps_[i - 1].start_ms <= steps_[i].start_ms);
  }
}

double StepPerturbation::Apply(double base_cost_ms, SimTime now) {
  double factor = 1.0;
  for (const Step& s : steps_) {
    if (s.start_ms > now) break;
    factor = s.factor;
  }
  return base_cost_ms * factor;
}

std::string StepPerturbation::Describe() const {
  std::string out = "steps{";
  for (const Step& s : steps_) {
    out += StrFormat("%.0fms:x%.1f ", s.start_ms, s.factor);
  }
  out += "}";
  return out;
}

}  // namespace gqp
