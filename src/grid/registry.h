// ResourceRegistry: the directory of computational resources and service
// addresses. The paper's GDQS "contacts resource registries that contain
// the addresses of the computational and data resources available"; this
// is that registry.

#ifndef GRIDQP_GRID_REGISTRY_H_
#define GRIDQP_GRID_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "grid/node.h"

namespace gqp {

/// Role a node advertises to the scheduler.
enum class NodeRole {
  kCoordinator,  ///< runs the GDQS and collects results
  kData,         ///< hosts Grid Data Services (table scans)
  kCompute,      ///< eligible to evaluate partitioned subplans
};

std::string_view NodeRoleToString(NodeRole role);

/// Registry entry for one machine.
struct ResourceEntry {
  GridNode* node = nullptr;
  NodeRole role = NodeRole::kCompute;
};

/// \brief In-memory resource directory.
///
/// Owns nothing; nodes are owned by the grid setup (see
/// workload/grid_setup.h). Lookup failures return NotFound.
class ResourceRegistry {
 public:
  /// Registers a node under its HostId. Fails on duplicates.
  Status Register(GridNode* node, NodeRole role);

  /// All registered nodes with the given role, in registration order.
  std::vector<GridNode*> NodesWithRole(NodeRole role) const;

  /// Node lookup by id.
  Result<GridNode*> Find(HostId id) const;

  size_t size() const { return order_.size(); }

 private:
  std::unordered_map<HostId, ResourceEntry> entries_;
  std::vector<HostId> order_;
};

}  // namespace gqp

#endif  // GRIDQP_GRID_REGISTRY_H_
