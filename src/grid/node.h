// GridNode: a simulated grid machine with a single CPU that executes work
// items serially in FIFO order. Work is tagged with an operation name
// (e.g. "ws:EntropyAnalyser", "op:hash_join") so that perturbation profiles
// can target specific operations, exactly as the paper perturbs the WS call
// or the join on one machine.

#ifndef GRIDQP_GRID_NODE_H_
#define GRIDQP_GRID_NODE_H_

#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "grid/perturbation.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace gqp {

/// Per-node utilization counters. The tag map accepts string_view lookups
/// (transparent hashing): hot-path charges carry interned views, never
/// temporary strings.
struct NodeStats {
  uint64_t work_items = 0;
  double busy_ms = 0.0;
  /// Perturbed cost charged per operation tag.
  std::unordered_map<std::string, double, StringHash, std::equal_to<>>
      busy_ms_by_tag;
};

/// \brief A simulated machine.
///
/// `capacity` scales all costs: a node with capacity 2.0 executes work in
/// half the base time (heterogeneous grids). Perturbation profiles then
/// apply on top, per operation tag or node-wide.
class GridNode {
 public:
  GridNode(Simulator* sim, HostId id, std::string name, double capacity = 1.0);

  GridNode(const GridNode&) = delete;
  GridNode& operator=(const GridNode&) = delete;

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }

  /// Installs a perturbation for a specific operation tag on this node.
  void SetPerturbation(std::string_view tag, PerturbationPtr profile);

  /// Installs a node-wide perturbation applied to every work item (after
  /// any tag-specific profile).
  void SetNodePerturbation(PerturbationPtr profile);

  /// Removes all perturbations.
  void ClearPerturbations();

  /// \brief Enqueues a work item.
  ///
  /// The item costs `base_cost_ms` at capacity 1.0 with no perturbation;
  /// the effective duration is computed when execution starts (so
  /// time-varying profiles see the correct virtual time). `done` runs when
  /// the work completes. Work items on a node never overlap.
  ///
  /// The tag is held by view until execution: callers pass literals or
  /// interned tags (InternString), never transient strings.
  void SubmitWork(std::string_view tag, double base_cost_ms,
                  std::function<void()> done);

  /// \brief Enqueues a composite work item made of several tagged parts
  /// (e.g. one tuple flowing through a chain of operators, each charging
  /// its own cost).
  ///
  /// Per-tag perturbations apply to each part; the parts execute as one
  /// uninterruptible unit. `done` receives the total effective duration —
  /// the engine's self-monitoring instrumentation reports it as the
  /// tuple's processing cost. Part tags follow the SubmitWork view
  /// contract (literals or interned).
  void SubmitComposite(std::vector<std::pair<std::string_view, double>> parts,
                       std::function<void(double actual_ms)> done);

  /// The perturbed, capacity-scaled cost this node would charge for the
  /// given work right now (without enqueueing). Used by tests and by
  /// self-monitoring instrumentation.
  double EffectiveCost(std::string_view tag, double base_cost_ms);

  /// True if the CPU is idle and no work is queued.
  bool Idle() const { return !running_ && queue_.empty(); }

  /// Simulates a machine crash: queued work is dropped and completion
  /// callbacks of in-flight work are suppressed; subsequent submissions
  /// are ignored.
  void Kill();
  bool dead() const { return dead_; }

  size_t queue_length() const { return queue_.size(); }
  const NodeStats& stats() const { return stats_; }
  Simulator* simulator() const { return sim_; }

 private:
  struct WorkItem {
    std::vector<std::pair<std::string_view, double>> parts;
    std::function<void(double)> done;
  };

  void StartNext();

  Simulator* sim_;
  HostId id_;
  std::string name_;
  double capacity_;
  bool running_ = false;
  bool dead_ = false;
  std::deque<WorkItem> queue_;
  std::unordered_map<std::string, PerturbationPtr, StringHash,
                     std::equal_to<>>
      tag_perturbations_;
  PerturbationPtr node_perturbation_;
  NodeStats stats_;
};

}  // namespace gqp

#endif  // GRIDQP_GRID_NODE_H_
