#include "grid/registry.h"

#include "common/strings.h"

namespace gqp {

std::string_view NodeRoleToString(NodeRole role) {
  switch (role) {
    case NodeRole::kCoordinator:
      return "coordinator";
    case NodeRole::kData:
      return "data";
    case NodeRole::kCompute:
      return "compute";
  }
  return "?";
}

Status ResourceRegistry::Register(GridNode* node, NodeRole role) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  auto [it, inserted] = entries_.emplace(node->id(), ResourceEntry{node, role});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        StrCat("node ", node->id(), " already registered"));
  }
  order_.push_back(node->id());
  return Status::OK();
}

std::vector<GridNode*> ResourceRegistry::NodesWithRole(NodeRole role) const {
  std::vector<GridNode*> out;
  for (HostId id : order_) {
    const ResourceEntry& e = entries_.at(id);
    if (e.role == role) out.push_back(e.node);
  }
  return out;
}

Result<GridNode*> ResourceRegistry::Find(HostId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::NotFound(StrCat("node ", id, " not registered"));
  }
  return it->second.node;
}

}  // namespace gqp
