#include "grid/node.h"

#include <cassert>
#include <utility>

namespace gqp {

GridNode::GridNode(Simulator* sim, HostId id, std::string name,
                   double capacity)
    : sim_(sim), id_(id), name_(std::move(name)), capacity_(capacity) {
  assert(capacity > 0.0);
}

void GridNode::SetPerturbation(std::string_view tag,
                               PerturbationPtr profile) {
  // Heterogeneous operator[] is unavailable: find-or-emplace by hand.
  auto it = tag_perturbations_.find(tag);
  if (it == tag_perturbations_.end()) {
    tag_perturbations_.emplace(std::string(tag), std::move(profile));
  } else {
    it->second = std::move(profile);
  }
}

void GridNode::SetNodePerturbation(PerturbationPtr profile) {
  node_perturbation_ = std::move(profile);
}

void GridNode::ClearPerturbations() {
  tag_perturbations_.clear();
  node_perturbation_.reset();
}

double GridNode::EffectiveCost(std::string_view tag, double base_cost_ms) {
  double cost = base_cost_ms / capacity_;
  auto it = tag_perturbations_.find(tag);
  if (it != tag_perturbations_.end() && it->second != nullptr) {
    cost = it->second->Apply(cost, sim_->Now());
  }
  if (node_perturbation_ != nullptr) {
    cost = node_perturbation_->Apply(cost, sim_->Now());
  }
  return cost;
}

void GridNode::SubmitWork(std::string_view tag, double base_cost_ms,
                          std::function<void()> done) {
  SubmitComposite({{tag, base_cost_ms}},
                  [done = std::move(done)](double) {
                    if (done) done();
                  });
}

void GridNode::SubmitComposite(
    std::vector<std::pair<std::string_view, double>> parts,
    std::function<void(double)> done) {
  if (dead_) return;
  queue_.push_back(WorkItem{std::move(parts), std::move(done)});
  if (!running_) StartNext();
}

void GridNode::Kill() {
  dead_ = true;
  queue_.clear();
}

void GridNode::StartNext() {
  if (queue_.empty()) {
    running_ = false;
    return;
  }
  running_ = true;
  WorkItem item = std::move(queue_.front());
  queue_.pop_front();

  double duration = 0.0;
  for (const auto& [tag, base_cost] : item.parts) {
    const double part = EffectiveCost(tag, base_cost);
    auto it = stats_.busy_ms_by_tag.find(tag);
    if (it == stats_.busy_ms_by_tag.end()) {
      it = stats_.busy_ms_by_tag.emplace(std::string(tag), 0.0).first;
    }
    it->second += part;
    duration += part;
  }
  ++stats_.work_items;
  stats_.busy_ms += duration;

  sim_->Schedule(duration, [this, duration, done = std::move(item.done)]() {
    if (dead_) return;  // the machine crashed while this work was running
    if (done) done(duration);
    StartNext();
  });
}

}  // namespace gqp
