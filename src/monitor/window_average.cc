#include "monitor/window_average.h"

#include <algorithm>
#include <cstdint>

namespace gqp {

WindowAverage::WindowAverage(size_t window)
    : window_(window < 1 ? 1 : window) {}

void WindowAverage::Add(double value) {
  values_.push_back(value);
  ++total_;
  if (values_.size() > window_) values_.pop_front();
}

double WindowAverage::Average() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  double lo = values_.front();
  double hi = values_.front();
  for (const double v : values_) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (values_.size() > 2) {
    return (sum - lo - hi) / static_cast<double>(values_.size() - 2);
  }
  return sum / static_cast<double>(values_.size());
}

void WindowAverage::Clear() {
  values_.clear();
  // total_ intentionally preserved: it counts lifetime observations.
}

}  // namespace gqp
