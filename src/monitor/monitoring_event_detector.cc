#include "monitor/monitoring_event_detector.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

std::string SubplanId::ToString() const {
  return StrFormat("q%d.f%d.i%d", query, fragment, instance);
}

MonitoringEventDetector::MonitoringEventDetector(
    MessageBus* bus, HostId host, std::string name,
    MonitoringEventDetectorConfig config, GridNode* node)
    : GridService(bus, host, std::move(name)),
      config_(config),
      node_(node) {}

const MedStats& MonitoringEventDetector::stats_for_query(int query) const {
  static const MedStats kEmpty;
  auto it = by_query_.find(query);
  return it == by_query_.end() ? kEmpty : it->second;
}

void MonitoringEventDetector::HandleMessage(const Message& msg) {
  if (const auto* m1 = PayloadAs<M1Payload>(msg.payload)) {
    ++stats_.raw_m1;
    ++QueryStats(m1->subplan().query).raw_m1;
    const std::string key = StrCat("m1:", m1->subplan().ToString());
    auto [it, inserted] = groups_.try_emplace(key, config_.window);
    Group& group = it->second;
    if (inserted) {
      group.kind = MonitoringAveragePayload::Kind::kProcessingCost;
      group.subplan = m1->subplan();
    }
    group.last_selectivity = m1->selectivity();
    Observe(&group, m1->cost_per_tuple_ms(), 0.0);
    return;
  }
  if (const auto* m2 = PayloadAs<M2Payload>(msg.payload)) {
    ++stats_.raw_m2;
    ++QueryStats(m2->producer().query).raw_m2;
    const std::string key = StrCat("m2:", m2->producer().ToString(), ">",
                                   m2->recipient().ToString());
    auto [it, inserted] = groups_.try_emplace(key, config_.window);
    Group& group = it->second;
    if (inserted) {
      group.kind = MonitoringAveragePayload::Kind::kCommunicationCost;
      group.subplan = m2->producer();
      group.recipient = m2->recipient();
    }
    Observe(&group, m2->send_cost_ms(),
            static_cast<double>(m2->tuples_in_buffer()));
    return;
  }
  if (const auto* pressure =
          PayloadAs<QueuePressurePayload>(msg.payload)) {
    // Flow-control pressure (D11) is forwarded verbatim and immediately:
    // it is an *early* signal, valuable precisely because it does not
    // wait for a window of rate samples to converge.
    ++stats_.pressure_events;
    if (node_ != nullptr && config_.processing_cost_ms > 0) {
      node_->SubmitWork("med:process", config_.processing_cost_ms, nullptr);
    }
    ++stats_.notifications_out;
    MedStats& qs = QueryStats(pressure->subplan().query);
    ++qs.pressure_events;
    ++qs.notifications_out;
    const Status s = Publish(kTopicMonitoringAverages, msg.payload);
    if (!s.ok()) {
      GQP_LOG_WARN << "MED " << name()
                   << ": failed to forward pressure event: " << s.ToString();
    }
    return;
  }
  GQP_LOG_DEBUG << "MED " << name() << ": ignoring payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void MonitoringEventDetector::Observe(Group* group, double value,
                                      double tuples_in_buffer) {
  if (node_ != nullptr && config_.processing_cost_ms > 0) {
    node_->SubmitWork("med:process", config_.processing_cost_ms, nullptr);
  }
  group->costs.Add(value);
  if (tuples_in_buffer > 0) group->tuples_per_buffer.Add(tuples_in_buffer);
  MaybeNotify(group);
}

void MonitoringEventDetector::MaybeNotify(Group* group) {
  if (group->costs.total_observations() < config_.min_events) return;
  const double avg = group->costs.Average();
  bool notify = false;
  if (group->last_notified < 0) {
    notify = true;  // first digest establishes the baseline downstream
  } else if (group->last_notified == 0.0) {
    notify = avg != 0.0;
  } else {
    const double change =
        std::abs(avg - group->last_notified) / group->last_notified;
    notify = change >= config_.thres_m;
  }
  if (!notify) return;
  group->last_notified = avg;
  ++stats_.notifications_out;
  ++QueryStats(group->subplan.query).notifications_out;
  auto digest = std::make_shared<MonitoringAveragePayload>(
      group->kind, group->subplan, group->recipient, avg,
      group->tuples_per_buffer.Average(), group->last_selectivity,
      group->costs.total_observations());
  const Status s = Publish(kTopicMonitoringAverages, std::move(digest));
  if (!s.ok()) {
    GQP_LOG_WARN << "MED " << name()
                 << ": failed to publish digest: " << s.ToString();
  }
}

}  // namespace gqp
