// MonitoringEventDetector (MED): one per evaluating site. Receives raw
// M1/M2 notifications from the local query engine, groups them (M1 by
// producing operator, M2 by producer+recipient pair), maintains a trimmed
// sliding-window average per group, and notifies subscribed Diagnosers
// when a group's average moves by more than `thresM` relative to the last
// value it published.

#ifndef GRIDQP_MONITOR_MONITORING_EVENT_DETECTOR_H_
#define GRIDQP_MONITOR_MONITORING_EVENT_DETECTOR_H_

#include <map>
#include <string>
#include <unordered_map>

#include "grid/node.h"
#include "monitor/monitoring_events.h"
#include "monitor/window_average.h"
#include "rpc/service.h"

namespace gqp {

/// Configuration knobs (paper defaults, all configurable per component).
struct MonitoringEventDetectorConfig {
  /// Sliding-window length (paper: last 25 events).
  size_t window = 25;
  /// Relative change of the windowed average that triggers a notification
  /// to Diagnosers (paper thresM: 20%).
  double thres_m = 0.20;
  /// Minimum raw events in a group before the first notification goes out
  /// (the first notification establishes the Diagnoser's baseline).
  size_t min_events = 4;
  /// Small CPU cost charged per raw event processed (self-monitoring was
  /// shown in the paper's ref [10] to be very cheap; this keeps it
  /// non-zero).
  double processing_cost_ms = 0.002;
};

/// MED counters for the overhead experiments.
struct MedStats {
  uint64_t raw_m1 = 0;
  uint64_t raw_m2 = 0;
  uint64_t notifications_out = 0;
  /// QueuePressure events forwarded verbatim to Diagnosers (D11).
  uint64_t pressure_events = 0;
};

/// \brief The MED grid service.
///
/// Publishes MonitoringAveragePayload on topic kTopicMonitoringAverages;
/// Diagnosers subscribe to it (Fig. 1 of the paper).
class MonitoringEventDetector : public GridService {
 public:
  MonitoringEventDetector(MessageBus* bus, HostId host, std::string name,
                          MonitoringEventDetectorConfig config,
                          GridNode* node = nullptr);

  /// Site-wide totals, summed over every query this MED has observed.
  const MedStats& stats() const { return stats_; }
  /// Counters of one query only. MEDs are per-site, shared by every live
  /// query on the host; each raw event carries its SubplanId, so the
  /// attribution is exact even with concurrent queries.
  const MedStats& stats_for_query(int query) const;
  const MonitoringEventDetectorConfig& config() const { return config_; }

 protected:
  void HandleMessage(const Message& msg) override;

 private:
  struct Group {
    WindowAverage costs;
    WindowAverage tuples_per_buffer;
    double last_notified = -1.0;  // <0: nothing published yet
    double last_selectivity = 1.0;
    // Identity re-published with every digest.
    MonitoringAveragePayload::Kind kind =
        MonitoringAveragePayload::Kind::kProcessingCost;
    SubplanId subplan;
    SubplanId recipient;

    explicit Group(size_t window) : costs(window), tuples_per_buffer(window) {}
  };

  void Observe(Group* group, double value, double tuples_in_buffer);
  void MaybeNotify(Group* group);

  /// Per-query slice of `stats_` (created on first event of the query).
  MedStats& QueryStats(int query) { return by_query_[query]; }

  MonitoringEventDetectorConfig config_;
  GridNode* node_;  // optional: charges processing_cost_ms per raw event
  std::unordered_map<std::string, Group> groups_;
  MedStats stats_;
  std::map<int, MedStats> by_query_;
};

}  // namespace gqp

#endif  // GRIDQP_MONITOR_MONITORING_EVENT_DETECTOR_H_
