// Sliding-window average over the last N observations, discarding the
// minimum and maximum before averaging — the exact smoothing the paper's
// MonitoringEventDetector applies to raw monitoring events.

#ifndef GRIDQP_MONITOR_WINDOW_AVERAGE_H_
#define GRIDQP_MONITOR_WINDOW_AVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace gqp {

/// \brief Trimmed sliding-window mean.
class WindowAverage {
 public:
  /// `window` is the maximum number of retained observations (the paper
  /// uses 25). Values < 1 are treated as 1.
  explicit WindowAverage(size_t window);

  /// Adds an observation, evicting the oldest when the window is full.
  void Add(double value);

  /// The trimmed average: mean over the window with one minimum and one
  /// maximum removed (when more than 2 observations are present; otherwise
  /// the plain mean). Returns 0 when empty.
  double Average() const;

  size_t count() const { return values_.size(); }
  uint64_t total_observations() const { return total_; }
  bool empty() const { return values_.empty(); }
  void Clear();

 private:
  size_t window_;
  std::deque<double> values_;
  uint64_t total_ = 0;
};

}  // namespace gqp

#endif  // GRIDQP_MONITOR_WINDOW_AVERAGE_H_
