#include "plan/binder.h"

#include <optional>
#include <set>
#include <unordered_map>

#include "common/strings.h"
#include "sql/parser.h"

namespace gqp {
namespace {

/// Tracks the provenance of each column in a relation's schema.
struct ColumnBinding {
  std::string qualifier;  // table alias (lowercased not required; compared
                          // case-insensitively); empty for computed columns
  std::string name;
};

/// A bound relation: plan subtree plus column provenance and a row
/// estimate for build-side selection.
struct BoundRel {
  LogicalNodePtr node;
  std::vector<ColumnBinding> cols;
  double row_estimate = 0;
};

/// Collects the table qualifiers (aliases) an AST expression references;
/// unqualified columns contribute "".
void CollectQualifiers(const AstExprPtr& e, std::set<std::string>* out) {
  switch (e->kind()) {
    case AstExprKind::kColumn: {
      const auto* c = static_cast<const AstColumn*>(e.get());
      out->insert(ToUpper(c->qualifier()));
      return;
    }
    case AstExprKind::kLiteral:
    case AstExprKind::kStar:
      return;
    case AstExprKind::kCall: {
      const auto* c = static_cast<const AstCall*>(e.get());
      for (const auto& a : c->args()) CollectQualifiers(a, out);
      return;
    }
    case AstExprKind::kBinary: {
      const auto* b = static_cast<const AstBinary*>(e.get());
      CollectQualifiers(b->left(), out);
      CollectQualifiers(b->right(), out);
      return;
    }
    case AstExprKind::kUnaryNot: {
      const auto* n = static_cast<const AstUnaryNot*>(e.get());
      CollectQualifiers(n->operand(), out);
      return;
    }
  }
}

/// Maps an aggregate function name to its kind; nullopt for non-aggregates.
std::optional<AggKind> AggKindFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggKind::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggKind::kSum;
  if (EqualsIgnoreCase(name, "AVG")) return AggKind::kAvg;
  if (EqualsIgnoreCase(name, "MIN")) return AggKind::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggKind::kMax;
  return std::nullopt;
}

/// Splits an AND tree into conjuncts.
void SplitConjuncts(const AstExprPtr& e, std::vector<AstExprPtr>* out) {
  if (e->kind() == AstExprKind::kBinary) {
    const auto* b = static_cast<const AstBinary*>(e.get());
    if (b->op() == AstBinaryOp::kAnd) {
      SplitConjuncts(b->left(), out);
      SplitConjuncts(b->right(), out);
      return;
    }
  }
  out->push_back(e);
}

/// Resolves a column against a relation. Ambiguous unqualified names and
/// unknown columns are errors.
Result<size_t> ResolveColumn(const BoundRel& rel, const std::string& qualifier,
                             const std::string& name) {
  size_t found = rel.cols.size();
  for (size_t i = 0; i < rel.cols.size(); ++i) {
    const ColumnBinding& c = rel.cols[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    if (found != rel.cols.size()) {
      return Status::InvalidArgument(
          StrCat("ambiguous column reference '", name, "'"));
    }
    found = i;
  }
  if (found == rel.cols.size()) {
    return Status::NotFound(StrCat(
        "unknown column '", qualifier.empty() ? name : qualifier + "." + name,
        "'"));
  }
  return found;
}

/// Infers the output type of a bound expression.
DataType InferType(const ExprPtr& e, const Schema& schema) {
  switch (e->kind()) {
    case ExprKind::kColumnRef: {
      const auto* c = static_cast<const ColumnRefExpr*>(e.get());
      if (c->index() < schema.num_fields()) {
        return schema.field(c->index()).type;
      }
      return DataType::kNull;
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr*>(e.get())->value().type();
    case ExprKind::kComparison:
    case ExprKind::kLogical:
      return DataType::kInt64;
    case ExprKind::kArithmetic:
      return DataType::kDouble;
    case ExprKind::kFunctionCall: {
      const auto* c = static_cast<const FunctionCallExpr*>(e.get());
      if (EqualsIgnoreCase(c->name(), "LENGTH")) return DataType::kInt64;
      if (EqualsIgnoreCase(c->name(), "UPPER")) return DataType::kString;
      return DataType::kDouble;
    }
  }
  return DataType::kDouble;
}

/// Binder working state.
class Binder {
 public:
  Binder(const SelectQuery& query, const Catalog& catalog)
      : query_(query), catalog_(catalog) {}

  Result<LogicalNodePtr> Bind();

 private:
  Result<BoundRel> BindTable(const TableRef& ref);

  /// Binds an AST expression over `rel`. Web-service calls are resolved
  /// through `ws_columns_` (must have been lifted first); hitting an
  /// unlifted WS call is an error.
  Result<ExprPtr> BindExpr(const AstExprPtr& e, const BoundRel& rel);

  /// Finds WS calls in an AST subtree, in evaluation order.
  void FindWsCalls(const AstExprPtr& e, std::vector<const AstCall*>* out);

  /// Builds the aggregate + projection plan on top of `rel` for a grouped
  /// or globally-aggregated query.
  Result<LogicalNodePtr> BindAggregate(const BoundRel& rel);

  const SelectQuery& query_;
  const Catalog& catalog_;
  std::unordered_map<const AstExpr*, size_t> ws_columns_;
};

Result<BoundRel> Binder::BindTable(const TableRef& ref) {
  GQP_ASSIGN_OR_RETURN(TableEntry entry, catalog_.FindTable(ref.table));
  BoundRel rel;
  const std::string& alias = ref.effective_alias();
  rel.node = std::make_shared<LogicalScan>(entry, alias, entry.schema);
  for (const Field& f : entry.schema->fields()) {
    rel.cols.push_back(ColumnBinding{alias, f.name});
  }
  rel.row_estimate = static_cast<double>(entry.stats.num_rows);
  return rel;
}

void Binder::FindWsCalls(const AstExprPtr& e,
                         std::vector<const AstCall*>* out) {
  switch (e->kind()) {
    case AstExprKind::kCall: {
      const auto* c = static_cast<const AstCall*>(e.get());
      if (catalog_.HasWebService(c->name())) {
        out->push_back(c);
        return;  // nested WS calls inside WS args are not supported
      }
      for (const auto& a : c->args()) FindWsCalls(a, out);
      return;
    }
    case AstExprKind::kBinary: {
      const auto* b = static_cast<const AstBinary*>(e.get());
      FindWsCalls(b->left(), out);
      FindWsCalls(b->right(), out);
      return;
    }
    case AstExprKind::kUnaryNot: {
      const auto* n = static_cast<const AstUnaryNot*>(e.get());
      FindWsCalls(n->operand(), out);
      return;
    }
    default:
      return;
  }
}

Result<ExprPtr> Binder::BindExpr(const AstExprPtr& e, const BoundRel& rel) {
  switch (e->kind()) {
    case AstExprKind::kColumn: {
      const auto* c = static_cast<const AstColumn*>(e.get());
      GQP_ASSIGN_OR_RETURN(size_t idx,
                           ResolveColumn(rel, c->qualifier(), c->name()));
      return Col(idx, c->ToString());
    }
    case AstExprKind::kLiteral:
      return Lit(static_cast<const AstLiteral*>(e.get())->value());
    case AstExprKind::kStar:
      return Status::InvalidArgument("'*' is only allowed alone in SELECT");
    case AstExprKind::kCall: {
      const auto* c = static_cast<const AstCall*>(e.get());
      auto ws_it = ws_columns_.find(e.get());
      if (ws_it != ws_columns_.end()) {
        return Col(ws_it->second, c->ToString());
      }
      if (catalog_.HasWebService(c->name())) {
        return Status::InvalidArgument(
            StrCat("web-service call ", c->name(),
                   "() is only supported in the select list"));
      }
      if (!FunctionRegistry::Builtins().Contains(c->name())) {
        return Status::NotFound(StrCat("unknown function '", c->name(), "'"));
      }
      std::vector<ExprPtr> args;
      for (const auto& a : c->args()) {
        GQP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(a, rel));
        args.push_back(std::move(bound));
      }
      return Call(c->name(), std::move(args));
    }
    case AstExprKind::kBinary: {
      const auto* b = static_cast<const AstBinary*>(e.get());
      GQP_ASSIGN_OR_RETURN(ExprPtr l, BindExpr(b->left(), rel));
      GQP_ASSIGN_OR_RETURN(ExprPtr r, BindExpr(b->right(), rel));
      switch (b->op()) {
        case AstBinaryOp::kEq:
          return Cmp(CompareOp::kEq, l, r);
        case AstBinaryOp::kNe:
          return Cmp(CompareOp::kNe, l, r);
        case AstBinaryOp::kLt:
          return Cmp(CompareOp::kLt, l, r);
        case AstBinaryOp::kLe:
          return Cmp(CompareOp::kLe, l, r);
        case AstBinaryOp::kGt:
          return Cmp(CompareOp::kGt, l, r);
        case AstBinaryOp::kGe:
          return Cmp(CompareOp::kGe, l, r);
        case AstBinaryOp::kAnd:
          return And(l, r);
        case AstBinaryOp::kOr:
          return Or(l, r);
        case AstBinaryOp::kAdd:
          return Arith(ArithOp::kAdd, l, r);
        case AstBinaryOp::kSub:
          return Arith(ArithOp::kSub, l, r);
        case AstBinaryOp::kMul:
          return Arith(ArithOp::kMul, l, r);
        case AstBinaryOp::kDiv:
          return Arith(ArithOp::kDiv, l, r);
      }
      return Status::Internal("unhandled binary op");
    }
    case AstExprKind::kUnaryNot: {
      const auto* n = static_cast<const AstUnaryNot*>(e.get());
      GQP_ASSIGN_OR_RETURN(ExprPtr operand, BindExpr(n->operand(), rel));
      return Not(std::move(operand));
    }
  }
  return Status::Internal("unhandled AST node");
}

Result<LogicalNodePtr> Binder::BindAggregate(const BoundRel& rel) {
  // Bind the GROUP BY expressions.
  std::vector<ExprPtr> group_exprs;
  std::vector<Field> agg_fields;
  for (const AstExprPtr& g : query_.group_by) {
    GQP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(g, rel));
    std::string name = g->ToString();
    if (bound->kind() == ExprKind::kColumnRef) {
      name = rel.cols[static_cast<const ColumnRefExpr*>(bound.get())->index()]
                 .name;
    }
    agg_fields.push_back(
        Field{std::move(name), InferType(bound, *rel.node->schema())});
    group_exprs.push_back(std::move(bound));
  }

  // Classify select items: group columns or aggregate calls.
  struct ItemSlot {
    size_t position = 0;  // into the aggregate output schema
    std::string name;
    DataType type = DataType::kNull;
  };
  std::vector<ItemSlot> slots;
  std::vector<AggSpec> aggs;
  for (const SelectItem& item : query_.items) {
    if (item.expr->kind() == AstExprKind::kStar) {
      return Status::InvalidArgument("'*' is not allowed with GROUP BY");
    }
    const auto* call = item.expr->kind() == AstExprKind::kCall
                           ? static_cast<const AstCall*>(item.expr.get())
                           : nullptr;
    const std::optional<AggKind> kind =
        call != nullptr ? AggKindFromName(call->name()) : std::nullopt;
    if (kind.has_value()) {
      AggSpec spec;
      spec.kind = *kind;
      if (call->args().size() != 1) {
        return Status::InvalidArgument(
            StrCat(call->name(), " expects exactly one argument"));
      }
      const bool star = call->args()[0]->kind() == AstExprKind::kStar;
      if (star) {
        if (spec.kind != AggKind::kCount) {
          return Status::InvalidArgument("'*' is only valid in COUNT(*)");
        }
      } else {
        GQP_ASSIGN_OR_RETURN(spec.arg, BindExpr(call->args()[0], rel));
      }
      // Result type: COUNT int64; AVG double; SUM follows the argument
      // (int64 stays integral); MIN/MAX follow the argument.
      const DataType arg_type =
          spec.arg != nullptr ? InferType(spec.arg, *rel.node->schema())
                              : DataType::kInt64;
      switch (spec.kind) {
        case AggKind::kCount:
          spec.result_type = DataType::kInt64;
          break;
        case AggKind::kAvg:
          spec.result_type = DataType::kDouble;
          break;
        case AggKind::kSum:
          spec.result_type = arg_type == DataType::kInt64
                                 ? DataType::kInt64
                                 : DataType::kDouble;
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          spec.result_type = arg_type;
          break;
      }
      spec.name = item.alias.empty() ? item.expr->ToString() : item.alias;
      ItemSlot slot;
      slot.position = group_exprs.size() + aggs.size();
      slot.name = spec.name;
      slot.type = spec.result_type;
      slots.push_back(std::move(slot));
      aggs.push_back(std::move(spec));
      continue;
    }
    // Non-aggregate item: must match a GROUP BY expression.
    GQP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(item.expr, rel));
    size_t position = group_exprs.size();
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      if (group_exprs[g]->ToString() == bound->ToString()) {
        position = g;
        break;
      }
    }
    if (position == group_exprs.size()) {
      return Status::InvalidArgument(
          StrCat("'", item.expr->ToString(),
                 "' must appear in GROUP BY or be aggregated"));
    }
    ItemSlot slot;
    slot.position = position;
    slot.name = item.alias.empty() ? agg_fields[position].name : item.alias;
    slot.type = agg_fields[position].type;
    slots.push_back(std::move(slot));
  }
  for (const AggSpec& spec : aggs) {
    agg_fields.push_back(Field{spec.name, spec.result_type});
  }

  SchemaPtr agg_schema = MakeSchema(std::move(agg_fields));
  LogicalNodePtr agg_node = std::make_shared<LogicalAggregate>(
      rel.node, std::move(group_exprs), std::move(aggs), agg_schema);

  // Projection mapping select-list order onto the aggregate output.
  std::vector<ExprPtr> exprs;
  std::vector<Field> out_fields;
  for (const ItemSlot& slot : slots) {
    exprs.push_back(Col(slot.position, slot.name));
    out_fields.push_back(Field{slot.name, slot.type});
  }
  return LogicalNodePtr(std::make_shared<LogicalProject>(
      agg_node, std::move(exprs), MakeSchema(std::move(out_fields))));
}

Result<LogicalNodePtr> Binder::Bind() {
  if (query_.tables.empty()) {
    return Status::InvalidArgument("query needs at least one table");
  }

  // Bind each table, checking alias uniqueness.
  std::vector<BoundRel> rels;
  std::set<std::string> aliases;
  for (const TableRef& ref : query_.tables) {
    if (!aliases.insert(ToUpper(ref.effective_alias())).second) {
      return Status::InvalidArgument(
          StrCat("duplicate table alias '", ref.effective_alias(), "'"));
    }
    GQP_ASSIGN_OR_RETURN(BoundRel rel, BindTable(ref));
    rels.push_back(std::move(rel));
  }

  // Classify WHERE conjuncts.
  std::vector<AstExprPtr> conjuncts;
  if (query_.where != nullptr) SplitConjuncts(query_.where, &conjuncts);

  auto alias_to_rel = [&](const std::string& upper_alias) -> int {
    for (size_t i = 0; i < query_.tables.size(); ++i) {
      if (ToUpper(query_.tables[i].effective_alias()) == upper_alias) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // A conjunct is single-table if it references exactly one alias (or only
  // unqualified columns that resolve within one table — approximated here
  // by qualifier analysis; unqualified references force join-time
  // placement for safety).
  struct PendingConjunct {
    AstExprPtr ast;
    int sole_rel = -1;  // >=0: push to that table
  };
  std::vector<PendingConjunct> pending;
  for (const AstExprPtr& c : conjuncts) {
    std::set<std::string> quals;
    CollectQualifiers(c, &quals);
    PendingConjunct pc{c, -1};
    if (quals.size() == 1 && !quals.count("")) {
      pc.sole_rel = alias_to_rel(*quals.begin());
    }
    pending.push_back(std::move(pc));
  }

  // Push single-table filters below the joins.
  for (auto it = pending.begin(); it != pending.end();) {
    if (it->sole_rel >= 0) {
      BoundRel& rel = rels[static_cast<size_t>(it->sole_rel)];
      GQP_ASSIGN_OR_RETURN(ExprPtr pred, BindExpr(it->ast, rel));
      rel.node = std::make_shared<LogicalFilter>(rel.node, std::move(pred));
      rel.row_estimate *= 0.5;  // default filter selectivity estimate
      it = pending.erase(it);
    } else {
      ++it;
    }
  }

  // Greedy left-deep join ordering: repeatedly find an equi-conjunct
  // linking the accumulated relation to an unjoined one.
  BoundRel accum = std::move(rels[0]);
  std::vector<bool> joined(rels.size(), false);
  joined[0] = true;
  size_t remaining = rels.size() - 1;

  // Provenance of which original rel each accumulated column came from is
  // implicit in the qualifier; equi-join detection works on qualifiers.
  while (remaining > 0) {
    bool progressed = false;
    for (auto it = pending.begin(); it != pending.end() && !progressed;
         ++it) {
      const AstExprPtr& ast = it->ast;
      if (ast->kind() != AstExprKind::kBinary) continue;
      const auto* bin = static_cast<const AstBinary*>(ast.get());
      if (bin->op() != AstBinaryOp::kEq) continue;
      if (bin->left()->kind() != AstExprKind::kColumn ||
          bin->right()->kind() != AstExprKind::kColumn) {
        continue;
      }
      const auto* lc = static_cast<const AstColumn*>(bin->left().get());
      const auto* rc = static_cast<const AstColumn*>(bin->right().get());
      const int lrel = alias_to_rel(ToUpper(lc->qualifier()));
      const int rrel = alias_to_rel(ToUpper(rc->qualifier()));
      if (lrel < 0 || rrel < 0) continue;
      const bool l_in = joined[static_cast<size_t>(lrel)];
      const bool r_in = joined[static_cast<size_t>(rrel)];
      if (l_in == r_in) continue;  // both joined (residual) or both not

      const int new_rel_idx = l_in ? rrel : lrel;
      const AstColumn* accum_col = l_in ? lc : rc;
      const AstColumn* new_col = l_in ? rc : lc;
      BoundRel& incoming = rels[static_cast<size_t>(new_rel_idx)];

      GQP_ASSIGN_OR_RETURN(
          size_t accum_key,
          ResolveColumn(accum, accum_col->qualifier(), accum_col->name()));
      GQP_ASSIGN_OR_RETURN(
          size_t incoming_key,
          ResolveColumn(incoming, new_col->qualifier(), new_col->name()));

      // Build side = smaller estimated input (hash table lives there).
      BoundRel* build = &accum;
      BoundRel* probe = &incoming;
      size_t build_key = accum_key;
      size_t probe_key = incoming_key;
      if (incoming.row_estimate < accum.row_estimate) {
        std::swap(build, probe);
        std::swap(build_key, probe_key);
      }

      SchemaPtr out_schema = std::make_shared<const Schema>(
          build->node->schema()->Concat(*probe->node->schema()));
      BoundRel joined_rel;
      joined_rel.node = std::make_shared<LogicalJoin>(
          build->node, probe->node, build_key, probe_key, out_schema);
      joined_rel.cols = build->cols;
      joined_rel.cols.insert(joined_rel.cols.end(), probe->cols.begin(),
                             probe->cols.end());
      joined_rel.row_estimate =
          std::max(build->row_estimate, probe->row_estimate);
      accum = std::move(joined_rel);

      joined[static_cast<size_t>(new_rel_idx)] = true;
      --remaining;
      pending.erase(it);
      progressed = true;
    }
    if (!progressed) {
      return Status::InvalidArgument(
          "cross joins are not supported: every table must be connected by "
          "an equi-join predicate");
    }
  }

  // Residual conjuncts become a filter above the join tree.
  for (const PendingConjunct& pc : pending) {
    GQP_ASSIGN_OR_RETURN(ExprPtr pred, BindExpr(pc.ast, accum));
    accum.node = std::make_shared<LogicalFilter>(accum.node, std::move(pred));
  }

  // Lift web-service calls from the select list into OperationCall nodes.
  std::vector<const AstCall*> ws_calls;
  for (const SelectItem& item : query_.items) {
    if (item.expr->kind() == AstExprKind::kStar) continue;
    FindWsCalls(item.expr, &ws_calls);
  }
  for (const AstCall* call : ws_calls) {
    GQP_ASSIGN_OR_RETURN(WebServiceEntry ws,
                         catalog_.FindWebService(call->name()));
    if (call->args().size() != 1) {
      return Status::InvalidArgument(
          StrCat("web-service operation ", call->name(),
                 " expects exactly one argument"));
    }
    GQP_ASSIGN_OR_RETURN(ExprPtr arg, BindExpr(call->args()[0], accum));
    if (arg->kind() != ExprKind::kColumnRef) {
      return Status::Unimplemented(
          "web-service arguments must be plain column references");
    }
    const size_t arg_col =
        static_cast<const ColumnRefExpr*>(arg.get())->index();
    const std::string out_name = call->ToString();

    std::vector<Field> fields = accum.node->schema()->fields();
    fields.push_back(Field{out_name, ws.result_type});
    SchemaPtr out_schema = MakeSchema(std::move(fields));
    accum.node = std::make_shared<LogicalOperationCall>(
        accum.node, ws, arg_col, out_name, out_schema);
    ws_columns_[call] = accum.node->schema()->num_fields() - 1;
    accum.cols.push_back(ColumnBinding{"", out_name});
  }

  // Aggregation: triggered by GROUP BY or aggregate calls in the select
  // list. Aggregates and web-service calls cannot be combined.
  bool has_agg_items = false;
  for (const SelectItem& item : query_.items) {
    if (item.expr->kind() != AstExprKind::kCall) continue;
    const auto* call = static_cast<const AstCall*>(item.expr.get());
    if (AggKindFromName(call->name()).has_value()) has_agg_items = true;
  }
  if (has_agg_items || !query_.group_by.empty()) {
    if (!ws_calls.empty()) {
      return Status::Unimplemented(
          "aggregates cannot be combined with web-service calls");
    }
    return BindAggregate(accum);
  }

  // Final projection.
  std::vector<ExprPtr> exprs;
  std::vector<Field> out_fields;
  for (const SelectItem& item : query_.items) {
    if (item.expr->kind() == AstExprKind::kStar) {
      if (query_.items.size() != 1) {
        return Status::InvalidArgument("'*' must be the only select item");
      }
      for (size_t i = 0; i < accum.node->schema()->num_fields(); ++i) {
        const Field& f = accum.node->schema()->field(i);
        exprs.push_back(Col(i, f.name));
        out_fields.push_back(f);
      }
      break;
    }
    GQP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(item.expr, accum));
    std::string name = item.alias;
    if (name.empty()) {
      if (bound->kind() == ExprKind::kColumnRef) {
        const size_t idx =
            static_cast<const ColumnRefExpr*>(bound.get())->index();
        name = accum.cols[idx].name;
      } else {
        name = item.expr->ToString();
      }
    }
    out_fields.push_back(
        Field{std::move(name), InferType(bound, *accum.node->schema())});
    exprs.push_back(std::move(bound));
  }

  SchemaPtr out_schema = MakeSchema(std::move(out_fields));
  return LogicalNodePtr(std::make_shared<LogicalProject>(
      accum.node, std::move(exprs), std::move(out_schema)));
}

}  // namespace

Result<LogicalNodePtr> BindSelect(const SelectQuery& query,
                                  const Catalog& catalog) {
  Binder binder(query, catalog);
  return binder.Bind();
}

Result<LogicalNodePtr> PlanSql(const std::string& sql,
                               const Catalog& catalog) {
  GQP_ASSIGN_OR_RETURN(SelectQuery query, ParseSelect(sql));
  return BindSelect(query, catalog);
}

}  // namespace gqp
