// Per-tuple base cost model used by the optimiser to annotate physical
// operators. These are *virtual milliseconds at node capacity 1.0*; the
// defaults are calibrated (see EXPERIMENTS.md) so that the paper's Q1/Q2
// workloads reproduce the published response-time ratios.

#ifndef GRIDQP_PLAN_COST_MODEL_H_
#define GRIDQP_PLAN_COST_MODEL_H_

#include <string>

namespace gqp {

struct CostModel {
  /// Retrieving one tuple from a Grid Data Service (I/O + wrapper).
  double scan_cost_ms = 0.30;
  /// Evaluating a predicate on one tuple.
  double filter_cost_ms = 0.005;
  /// Computing projections for one tuple.
  double project_cost_ms = 0.005;
  /// Inserting one tuple into a hash-join build table.
  double join_build_cost_ms = 0.05;
  /// Probing one tuple against the build table (paper Q2's join work; the
  /// sleep() perturbation adds on top of this).
  double join_probe_cost_ms = 0.10;
  /// Default web-service call cost when the catalog has no entry.
  double default_ws_cost_ms = 0.25;
  /// Updating one group accumulator in a hash aggregate.
  double agg_update_cost_ms = 0.03;
  /// Appending one result tuple at the coordinator.
  double collect_cost_ms = 0.01;

  /// Operation tags (perturbation targets). Scan/join tags are fixed; WS
  /// calls are tagged "ws:<NAME>".
  static std::string ScanTag() { return "op:scan"; }
  static std::string FilterTag() { return "op:filter"; }
  static std::string ProjectTag() { return "op:project"; }
  static std::string JoinTag() { return "op:hash_join"; }
  static std::string AggregateTag() { return "op:hash_aggregate"; }
  static std::string CollectTag() { return "op:collect"; }
  static std::string WsTag(const std::string& ws_name) {
    return "ws:" + ws_name;
  }
};

}  // namespace gqp

#endif  // GRIDQP_PLAN_COST_MODEL_H_
