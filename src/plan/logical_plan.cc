#include "plan/logical_plan.h"

#include "common/strings.h"

namespace gqp {

std::string LogicalNode::TreeString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += ToString();
  out += "\n";
  for (const LogicalNodePtr& child : children()) {
    out += child->TreeString(indent + 1);
  }
  return out;
}

std::string LogicalScan::ToString() const {
  return StrCat("Scan(", table_.name, " AS ", alias_, ", rows=",
                table_.stats.num_rows, ")");
}

std::string LogicalFilter::ToString() const {
  return StrCat("Filter(", predicate_->ToString(), ")");
}

std::string LogicalProject::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(exprs_.size());
  for (const auto& e : exprs_) parts.push_back(e->ToString());
  return StrCat("Project(", StrJoin(parts, ", "), ")");
}

std::string LogicalJoin::ToString() const {
  return StrCat("HashJoin(build.", schema()->field(left_key_).name,
                " = probe.", right_->schema()->field(right_key_).name, ")");
}

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

std::string LogicalAggregate::ToString() const {
  std::vector<std::string> parts;
  for (const auto& g : group_exprs_) parts.push_back(g->ToString());
  for (const auto& a : aggs_) {
    parts.push_back(StrCat(AggKindToString(a.kind), "(",
                           a.arg ? a.arg->ToString() : "*", ")"));
  }
  return StrCat("Aggregate(", StrJoin(parts, ", "), ")");
}

std::string LogicalOperationCall::ToString() const {
  return StrCat("OperationCall(", ws_.name, " -> ", out_name_, ")");
}

}  // namespace gqp
