// Logical query plans: the binder resolves a parsed SelectQuery against
// the catalog into this representation; the optimiser then turns it into
// a fragmented physical plan.

#ifndef GRIDQP_PLAN_LOGICAL_PLAN_H_
#define GRIDQP_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"
#include "storage/schema.h"

namespace gqp {

class LogicalNode;
using LogicalNodePtr = std::shared_ptr<const LogicalNode>;

enum class LogicalKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kOperationCall,
  kAggregate,
};

/// Aggregate function kinds.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

std::string_view AggKindToString(AggKind kind);

/// One aggregate computation: a function over an input expression
/// (null expr = COUNT(*)).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  ExprPtr arg;  // null for COUNT(*)
  std::string name;
  DataType result_type = DataType::kInt64;
};

/// \brief Base class for logical operators.
///
/// Every node knows its output schema; expressions inside a node are bound
/// to positions in its *input* schema.
class LogicalNode {
 public:
  LogicalNode(LogicalKind kind, SchemaPtr schema)
      : kind_(kind), schema_(std::move(schema)) {}
  virtual ~LogicalNode() = default;

  LogicalKind kind() const { return kind_; }
  const SchemaPtr& schema() const { return schema_; }
  virtual std::vector<LogicalNodePtr> children() const = 0;
  virtual std::string ToString() const = 0;

  /// Pretty-prints the subtree (for EXPLAIN-style output).
  std::string TreeString(int indent = 0) const;

 private:
  LogicalKind kind_;
  SchemaPtr schema_;
};

/// Scan of a catalog table (columns renamed by alias qualification).
class LogicalScan : public LogicalNode {
 public:
  LogicalScan(TableEntry table, std::string alias, SchemaPtr schema)
      : LogicalNode(LogicalKind::kScan, std::move(schema)),
        table_(std::move(table)),
        alias_(std::move(alias)) {}

  const TableEntry& table() const { return table_; }
  const std::string& alias() const { return alias_; }
  std::vector<LogicalNodePtr> children() const override { return {}; }
  std::string ToString() const override;

 private:
  TableEntry table_;
  std::string alias_;
};

/// Row filter.
class LogicalFilter : public LogicalNode {
 public:
  LogicalFilter(LogicalNodePtr input, ExprPtr predicate)
      : LogicalNode(LogicalKind::kFilter, input->schema()),
        input_(std::move(input)),
        predicate_(std::move(predicate)) {}

  const LogicalNodePtr& input() const { return input_; }
  const ExprPtr& predicate() const { return predicate_; }
  std::vector<LogicalNodePtr> children() const override { return {input_}; }
  std::string ToString() const override;

 private:
  LogicalNodePtr input_;
  ExprPtr predicate_;
};

/// Projection (computes expressions over the input row).
class LogicalProject : public LogicalNode {
 public:
  LogicalProject(LogicalNodePtr input, std::vector<ExprPtr> exprs,
                 SchemaPtr schema)
      : LogicalNode(LogicalKind::kProject, std::move(schema)),
        input_(std::move(input)),
        exprs_(std::move(exprs)) {}

  const LogicalNodePtr& input() const { return input_; }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  std::vector<LogicalNodePtr> children() const override { return {input_}; }
  std::string ToString() const override;

 private:
  LogicalNodePtr input_;
  std::vector<ExprPtr> exprs_;
};

/// Equi-join; output schema is left ++ right.
class LogicalJoin : public LogicalNode {
 public:
  LogicalJoin(LogicalNodePtr left, LogicalNodePtr right, size_t left_key,
              size_t right_key, SchemaPtr schema)
      : LogicalNode(LogicalKind::kJoin, std::move(schema)),
        left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key) {}

  const LogicalNodePtr& left() const { return left_; }
  const LogicalNodePtr& right() const { return right_; }
  /// Key column position in the left (build) input schema.
  size_t left_key() const { return left_key_; }
  /// Key column position in the right (probe) input schema.
  size_t right_key() const { return right_key_; }
  std::vector<LogicalNodePtr> children() const override {
    return {left_, right_};
  }
  std::string ToString() const override;

 private:
  LogicalNodePtr left_;
  LogicalNodePtr right_;
  size_t left_key_;
  size_t right_key_;
};

/// Invocation of a web-service operation as a typed foreign function; the
/// result column is appended to the input schema.
class LogicalOperationCall : public LogicalNode {
 public:
  LogicalOperationCall(LogicalNodePtr input, WebServiceEntry ws,
                       size_t arg_column, std::string out_name,
                       SchemaPtr schema)
      : LogicalNode(LogicalKind::kOperationCall, std::move(schema)),
        input_(std::move(input)),
        ws_(std::move(ws)),
        arg_column_(arg_column),
        out_name_(std::move(out_name)) {}

  const LogicalNodePtr& input() const { return input_; }
  const WebServiceEntry& ws() const { return ws_; }
  size_t arg_column() const { return arg_column_; }
  const std::string& out_name() const { return out_name_; }
  std::vector<LogicalNodePtr> children() const override { return {input_}; }
  std::string ToString() const override;

 private:
  LogicalNodePtr input_;
  WebServiceEntry ws_;
  size_t arg_column_;
  std::string out_name_;
};

/// Hash aggregation with grouping. Output schema: group columns followed
/// by aggregate results. Stateful: partial aggregates live per logical
/// partition bucket, so retrospective adaptation can move them like join
/// state.
class LogicalAggregate : public LogicalNode {
 public:
  LogicalAggregate(LogicalNodePtr input, std::vector<ExprPtr> group_exprs,
                   std::vector<AggSpec> aggs, SchemaPtr schema)
      : LogicalNode(LogicalKind::kAggregate, std::move(schema)),
        input_(std::move(input)),
        group_exprs_(std::move(group_exprs)),
        aggs_(std::move(aggs)) {}

  const LogicalNodePtr& input() const { return input_; }
  const std::vector<ExprPtr>& group_exprs() const { return group_exprs_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  std::vector<LogicalNodePtr> children() const override { return {input_}; }
  std::string ToString() const override;

 private:
  LogicalNodePtr input_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
};

}  // namespace gqp

#endif  // GRIDQP_PLAN_LOGICAL_PLAN_H_
