#include "plan/optimizer.h"

#include <algorithm>

#include "common/strings.h"

namespace gqp {
namespace {

/// True if the subtree is a scan optionally topped by pushed filters.
bool IsScanChain(const LogicalNodePtr& node) {
  if (node->kind() == LogicalKind::kScan) return true;
  if (node->kind() == LogicalKind::kFilter) {
    return IsScanChain(
        static_cast<const LogicalFilter*>(node.get())->input());
  }
  return false;
}

/// Base-table row count at the bottom of a scan chain (filters above the
/// scan do not shrink the estimate; join-table pre-sizing only needs the
/// right order of magnitude). 0 when unknown.
size_t EstimateChainRows(const LogicalNodePtr& node) {
  LogicalNodePtr cur = node;
  while (cur != nullptr) {
    if (cur->kind() == LogicalKind::kScan) {
      return static_cast<const LogicalScan*>(cur.get())->table().stats.num_rows;
    }
    const std::vector<LogicalNodePtr> children = cur->children();
    if (children.size() != 1) return 0;
    cur = children[0];
  }
  return 0;
}

int CountJoins(const LogicalNodePtr& node) {
  int count = node->kind() == LogicalKind::kJoin ? 1 : 0;
  for (const LogicalNodePtr& child : node->children()) {
    count += CountJoins(child);
  }
  return count;
}

PhysOpDesc MakeScanDesc(const LogicalScan& scan, const CostModel& costs) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kScan;
  desc.out_schema = scan.schema();
  desc.base_cost_ms = costs.scan_cost_ms;
  desc.cost_tag = CostModel::ScanTag();
  desc.table = scan.table().name;
  desc.data_host = scan.table().data_host;
  desc.estimated_rows = scan.table().stats.num_rows;
  return desc;
}

PhysOpDesc MakeFilterDesc(const LogicalFilter& filter,
                          const CostModel& costs) {
  PhysOpDesc desc;
  desc.kind = PhysOpKind::kFilter;
  desc.out_schema = filter.schema();
  desc.base_cost_ms = costs.filter_cost_ms;
  desc.cost_tag = CostModel::FilterTag();
  desc.predicate = filter.predicate();
  return desc;
}

/// Builds a scan-leaf fragment from a scan chain, ops in push order.
Result<FragmentDesc> BuildScanFragment(const LogicalNodePtr& chain,
                                       const CostModel& costs) {
  // Collect Filter* above the Scan, bottom-up.
  std::vector<const LogicalFilter*> filters;
  LogicalNodePtr cur = chain;
  while (cur->kind() == LogicalKind::kFilter) {
    const auto* f = static_cast<const LogicalFilter*>(cur.get());
    filters.push_back(f);
    cur = f->input();
  }
  if (cur->kind() != LogicalKind::kScan) {
    return Status::Internal("scan chain does not terminate in a scan");
  }
  FragmentDesc frag;
  frag.ops.push_back(
      MakeScanDesc(*static_cast<const LogicalScan*>(cur.get()), costs));
  for (auto it = filters.rbegin(); it != filters.rend(); ++it) {
    frag.ops.push_back(MakeFilterDesc(**it, costs));
  }
  frag.pinned_host = frag.ops.front().data_host;
  return frag;
}

}  // namespace

Result<PhysicalPlan> CreatePhysicalPlan(const LogicalNodePtr& root,
                                        const OptimizerOptions& options) {
  const CostModel& costs = options.costs;
  if (CountJoins(root) > 1) {
    return Status::Unimplemented(
        "plans with more than one join are not supported yet");
  }

  // Walk down from the root, splitting the middle chain from the scan
  // chains.
  std::vector<LogicalNodePtr> middle_top_down;
  std::vector<LogicalNodePtr> scan_chains;  // port order
  const LogicalJoin* join = nullptr;

  LogicalNodePtr cur = root;
  while (true) {
    if (IsScanChain(cur)) {
      scan_chains.push_back(cur);
      break;
    }
    middle_top_down.push_back(cur);
    if (cur->kind() == LogicalKind::kJoin) {
      join = static_cast<const LogicalJoin*>(cur.get());
      if (!IsScanChain(join->left()) || !IsScanChain(join->right())) {
        return Status::Unimplemented(
            "joins must read directly from base tables");
      }
      scan_chains.push_back(join->left());   // port 0: build
      scan_chains.push_back(join->right());  // port 1: probe
      break;
    }
    const std::vector<LogicalNodePtr> children = cur->children();
    if (children.size() != 1) {
      return Status::Internal(
          StrCat("unexpected child count ", children.size(),
                 " in middle chain"));
    }
    cur = children[0];
  }

  PhysicalPlan plan;
  plan.result_schema = root->schema();

  // Scan-leaf fragments.
  for (const LogicalNodePtr& chain : scan_chains) {
    GQP_ASSIGN_OR_RETURN(FragmentDesc frag, BuildScanFragment(chain, costs));
    frag.id = static_cast<int>(plan.fragments.size());
    plan.fragments.push_back(std::move(frag));
  }
  const int num_scans = static_cast<int>(plan.fragments.size());

  // Middle (evaluation) fragment: middle chain in push order.
  FragmentDesc middle;
  middle.id = num_scans;
  middle.partitioned = options.partition_evaluation;
  middle.num_input_ports = num_scans;
  for (auto it = middle_top_down.rbegin(); it != middle_top_down.rend();
       ++it) {
    const LogicalNode& node = **it;
    PhysOpDesc desc;
    desc.out_schema = node.schema();
    switch (node.kind()) {
      case LogicalKind::kJoin: {
        const auto& j = static_cast<const LogicalJoin&>(node);
        desc.kind = PhysOpKind::kHashJoin;
        // base_cost_ms covers the probe; build cost is configured
        // separately below via a second field (probe dominates).
        desc.base_cost_ms = costs.join_probe_cost_ms;
        desc.build_cost_ms = costs.join_build_cost_ms;
        desc.cost_tag = CostModel::JoinTag();
        desc.build_key = j.left_key();
        desc.probe_key = j.right_key();
        desc.estimated_build_rows = EstimateChainRows(j.left());
        desc.build_partitions = options.num_buckets;
        break;
      }
      case LogicalKind::kFilter: {
        desc = MakeFilterDesc(static_cast<const LogicalFilter&>(node), costs);
        break;
      }
      case LogicalKind::kProject: {
        const auto& p = static_cast<const LogicalProject&>(node);
        desc.kind = PhysOpKind::kProject;
        desc.base_cost_ms = costs.project_cost_ms;
        desc.cost_tag = CostModel::ProjectTag();
        desc.exprs = p.exprs();
        desc.out_schema = p.schema();
        break;
      }
      case LogicalKind::kOperationCall: {
        const auto& oc = static_cast<const LogicalOperationCall&>(node);
        desc.kind = PhysOpKind::kOperationCall;
        desc.base_cost_ms = oc.ws().nominal_cost_ms > 0
                                ? oc.ws().nominal_cost_ms
                                : costs.default_ws_cost_ms;
        desc.cost_tag = CostModel::WsTag(oc.ws().name);
        desc.ws_name = oc.ws().name;
        desc.arg_col = oc.arg_column();
        break;
      }
      case LogicalKind::kAggregate: {
        const auto& agg = static_cast<const LogicalAggregate&>(node);
        desc.kind = PhysOpKind::kHashAggregate;
        desc.base_cost_ms = costs.agg_update_cost_ms;
        desc.cost_tag = CostModel::AggregateTag();
        desc.group_exprs = agg.group_exprs();
        desc.aggs = agg.aggs();
        break;
      }
      case LogicalKind::kScan:
        return Status::Internal("scan cannot appear in the middle chain");
    }
    middle.ops.push_back(std::move(desc));
  }
  if (middle.ops.empty()) {
    // Degenerate single-table SELECT * handled by an identity project.
    PhysOpDesc identity;
    identity.kind = PhysOpKind::kProject;
    identity.out_schema = root->schema();
    identity.base_cost_ms = costs.project_cost_ms;
    identity.cost_tag = CostModel::ProjectTag();
    for (size_t i = 0; i < root->schema()->num_fields(); ++i) {
      identity.exprs.push_back(Col(i, root->schema()->field(i).name));
    }
    middle.ops.push_back(std::move(identity));
  }
  plan.fragments.push_back(std::move(middle));

  // Root collect fragment.
  FragmentDesc root_frag;
  root_frag.id = num_scans + 1;
  root_frag.num_input_ports = 1;
  PhysOpDesc collect;
  collect.kind = PhysOpKind::kCollect;
  collect.out_schema = root->schema();
  collect.base_cost_ms = costs.collect_cost_ms;
  collect.cost_tag = CostModel::CollectTag();
  root_frag.ops.push_back(std::move(collect));
  plan.fragments.push_back(std::move(root_frag));

  // Grouped aggregates need their input hash-partitioned on a group
  // column so each group lives at exactly one instance. Global aggregates
  // (or non-column group keys) cannot be partitioned this way; they run
  // on a single evaluator.
  const LogicalAggregate* aggregate = nullptr;
  for (const LogicalNodePtr& node : middle_top_down) {
    if (node->kind() == LogicalKind::kAggregate) {
      aggregate = static_cast<const LogicalAggregate*>(node.get());
    }
  }
  int aggregate_key_col = -1;
  if (aggregate != nullptr) {
    if (join != nullptr) {
      return Status::Unimplemented(
          "aggregation over join results is not supported yet");
    }
    if (!aggregate->group_exprs().empty() &&
        aggregate->group_exprs()[0]->kind() == ExprKind::kColumnRef) {
      aggregate_key_col = static_cast<int>(
          static_cast<const ColumnRefExpr*>(
              aggregate->group_exprs()[0].get())
              ->index());
    } else {
      plan.fragments[static_cast<size_t>(num_scans)].partitioned = false;
    }
  }

  // Exchanges: scans -> middle.
  for (int s = 0; s < num_scans; ++s) {
    ExchangeDesc ex;
    ex.id = static_cast<int>(plan.exchanges.size());
    ex.producer_fragment = s;
    ex.consumer_fragment = num_scans;
    ex.consumer_port = s;
    ex.num_buckets = options.num_buckets;
    if (join != nullptr) {
      ex.policy = PolicyKind::kHashBuckets;
      ex.key_col = (s == 0) ? join->left_key() : join->right_key();
    } else if (aggregate_key_col >= 0) {
      ex.policy = PolicyKind::kHashBuckets;
      ex.key_col = static_cast<size_t>(aggregate_key_col);
    } else {
      ex.policy = PolicyKind::kWeightedRoundRobin;
    }
    plan.exchanges.push_back(ex);
  }
  // Middle -> root.
  ExchangeDesc out;
  out.id = static_cast<int>(plan.exchanges.size());
  out.producer_fragment = num_scans;
  out.consumer_fragment = num_scans + 1;
  out.consumer_port = 0;
  out.policy = PolicyKind::kWeightedRoundRobin;
  plan.exchanges.push_back(out);

  return plan;
}

}  // namespace gqp
