#include "plan/physical_plan.h"

#include "common/strings.h"

namespace gqp {

std::string_view PhysOpKindToString(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kScan:
      return "Scan";
    case PhysOpKind::kFilter:
      return "Filter";
    case PhysOpKind::kProject:
      return "Project";
    case PhysOpKind::kHashJoin:
      return "HashJoin";
    case PhysOpKind::kOperationCall:
      return "OperationCall";
    case PhysOpKind::kHashAggregate:
      return "HashAggregate";
    case PhysOpKind::kCollect:
      return "Collect";
  }
  return "?";
}

std::string_view PolicyKindToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kWeightedRoundRobin:
      return "weighted-round-robin";
    case PolicyKind::kHashBuckets:
      return "hash-buckets";
  }
  return "?";
}

std::string PhysOpDesc::ToString() const {
  std::string out(PhysOpKindToString(kind));
  switch (kind) {
    case PhysOpKind::kScan:
      out += StrCat("(", table, ")");
      break;
    case PhysOpKind::kFilter:
      out += StrCat("(", predicate ? predicate->ToString() : "?", ")");
      break;
    case PhysOpKind::kProject: {
      std::vector<std::string> parts;
      for (const auto& e : exprs) parts.push_back(e->ToString());
      out += StrCat("(", StrJoin(parts, ", "), ")");
      break;
    }
    case PhysOpKind::kHashJoin:
      out += StrCat("(build[", build_key, "]=probe[", probe_key, "])");
      break;
    case PhysOpKind::kOperationCall:
      out += StrCat("(", ws_name, ")");
      break;
    case PhysOpKind::kHashAggregate: {
      std::vector<std::string> parts;
      for (const auto& g : group_exprs) parts.push_back(g->ToString());
      for (const auto& a : aggs) {
        parts.push_back(StrCat(AggKindToString(a.kind), "(",
                               a.arg ? a.arg->ToString() : "*", ")"));
      }
      out += StrCat("(", StrJoin(parts, ", "), ")");
      break;
    }
    case PhysOpKind::kCollect:
      break;
  }
  return out;
}

const FragmentDesc* PhysicalPlan::FindFragment(int id) const {
  for (const FragmentDesc& f : fragments) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const ExchangeDesc* PhysicalPlan::FindExchange(int id) const {
  for (const ExchangeDesc& e : exchanges) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::vector<const ExchangeDesc*> PhysicalPlan::InputsOf(
    int fragment_id) const {
  std::vector<const ExchangeDesc*> out;
  for (const ExchangeDesc& e : exchanges) {
    if (e.consumer_fragment == fragment_id) out.push_back(&e);
  }
  std::sort(out.begin(), out.end(),
            [](const ExchangeDesc* a, const ExchangeDesc* b) {
              return a->consumer_port < b->consumer_port;
            });
  return out;
}

const ExchangeDesc* PhysicalPlan::OutputOf(int fragment_id) const {
  for (const ExchangeDesc& e : exchanges) {
    if (e.producer_fragment == fragment_id) return &e;
  }
  return nullptr;
}

bool PhysicalPlan::HasStatefulPartitionedFragment() const {
  for (const FragmentDesc& f : fragments) {
    if (f.partitioned && f.Stateful()) return true;
  }
  return false;
}

std::string PhysicalPlan::ToString() const {
  std::string out;
  for (const FragmentDesc& f : fragments) {
    out += StrFormat("fragment %d%s%s:\n", f.id,
                     f.partitioned ? " [partitioned]" : "",
                     f.pinned_host != kInvalidHost
                         ? StrCat(" [host ", f.pinned_host, "]").c_str()
                         : "");
    for (const PhysOpDesc& op : f.ops) {
      out += "  " + op.ToString() + "\n";
    }
  }
  for (const ExchangeDesc& e : exchanges) {
    out += StrFormat("exchange %d: f%d -> f%d.port%d (%s)\n", e.id,
                     e.producer_fragment, e.consumer_fragment,
                     e.consumer_port,
                     std::string(PolicyKindToString(e.policy)).c_str());
  }
  return out;
}

std::string ScheduledPlan::ToString() const {
  std::string out = plan.ToString();
  for (size_t f = 0; f < instance_hosts.size(); ++f) {
    std::vector<std::string> hosts;
    for (HostId h : instance_hosts[f]) hosts.push_back(std::to_string(h));
    out += StrFormat("placement f%zu: hosts [%s]\n", f,
                     StrJoin(hosts, ", ").c_str());
  }
  return out;
}

}  // namespace gqp
