#include "plan/scheduler.h"

#include <algorithm>

#include "common/strings.h"

namespace gqp {

Result<ScheduledPlan> SchedulePlan(const PhysicalPlan& plan,
                                   const ResourceRegistry& registry,
                                   const SchedulerOptions& options) {
  ScheduledPlan scheduled;
  scheduled.plan = plan;

  // Resolve the coordinator.
  HostId coordinator = options.coordinator;
  if (coordinator == kInvalidHost) {
    const auto coordinators = registry.NodesWithRole(NodeRole::kCoordinator);
    if (coordinators.empty()) {
      return Status::FailedPrecondition("no coordinator node registered");
    }
    coordinator = coordinators.front()->id();
  }

  // Select evaluator nodes, scheduling around confirmed-failed hosts.
  std::vector<GridNode*> compute = registry.NodesWithRole(NodeRole::kCompute);
  if (!options.exclude_hosts.empty()) {
    compute.erase(std::remove_if(compute.begin(), compute.end(),
                                 [&options](GridNode* node) {
                                   return options.exclude_hosts.count(
                                              node->id()) > 0;
                                 }),
                  compute.end());
  }
  if (compute.empty()) {
    return Status::FailedPrecondition(
        "no live compute nodes registered (every evaluator excluded as "
        "failed?)");
  }
  if (options.num_evaluators > 0 &&
      static_cast<size_t>(options.num_evaluators) < compute.size()) {
    compute.resize(static_cast<size_t>(options.num_evaluators));
  }

  scheduled.instance_hosts.resize(plan.fragments.size());
  for (const FragmentDesc& frag : plan.fragments) {
    auto& hosts = scheduled.instance_hosts[static_cast<size_t>(frag.id)];
    if (frag.IsRoot()) {
      hosts = {coordinator};
    } else if (frag.IsScanLeaf()) {
      HostId data_host = frag.pinned_host;
      if (data_host == kInvalidHost) {
        const auto data_nodes = registry.NodesWithRole(NodeRole::kData);
        if (data_nodes.empty()) {
          return Status::FailedPrecondition(
              StrCat("no data node for table fragment ", frag.id));
        }
        data_host = data_nodes.front()->id();
      } else {
        GQP_ASSIGN_OR_RETURN(GridNode * node, registry.Find(data_host));
        (void)node;
      }
      hosts = {data_host};
    } else if (frag.partitioned) {
      for (GridNode* node : compute) hosts.push_back(node->id());
    } else {
      hosts = {compute.front()->id()};
    }
  }

  // Initial weights per exchange: proportional to consumer-node capacity.
  scheduled.initial_weights.resize(plan.exchanges.size());
  for (const ExchangeDesc& ex : plan.exchanges) {
    const auto& hosts =
        scheduled.instance_hosts[static_cast<size_t>(ex.consumer_fragment)];
    std::vector<double> weights;
    double total = 0.0;
    for (HostId h : hosts) {
      GQP_ASSIGN_OR_RETURN(GridNode * node, registry.Find(h));
      weights.push_back(node->capacity());
      total += node->capacity();
    }
    for (double& w : weights) w /= total;
    scheduled.initial_weights[static_cast<size_t>(ex.id)] =
        std::move(weights);
  }

  return scheduled;
}

std::vector<double> RecoveryWeights(std::vector<double> weights,
                                    const std::set<int>& dead) {
  double live_total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (dead.count(static_cast<int>(i)) > 0) weights[i] = 0.0;
    live_total += weights[i];
  }
  if (live_total <= 0.0) return {};
  for (double& w : weights) w /= live_total;
  return weights;
}

}  // namespace gqp
