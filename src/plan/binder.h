// Binder: resolves a parsed SelectQuery against the Catalog into a logical
// plan. Performs name resolution, single-table filter pushdown, greedy
// equi-join ordering (build side = smaller estimated input), and lifting
// of web-service calls out of the select list into LogicalOperationCall
// nodes (the paper's operation_call operator).

#ifndef GRIDQP_PLAN_BINDER_H_
#define GRIDQP_PLAN_BINDER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace gqp {

/// Binds `query` against `catalog`. Errors: unknown tables/columns/
/// functions, ambiguous names, missing join predicates (cross joins are
/// rejected), web-service calls outside the select list.
Result<LogicalNodePtr> BindSelect(const SelectQuery& query,
                                  const Catalog& catalog);

/// Convenience: parse + bind.
Result<LogicalNodePtr> PlanSql(const std::string& sql, const Catalog& catalog);

}  // namespace gqp

#endif  // GRIDQP_PLAN_BINDER_H_
