// Physical plans are *descriptors*: plain data the GDQS ships to remote
// GQES services, which instantiate executable operators from them
// (exec/fragment_executor.h). A plan is a set of fragments connected by
// exchanges; fragments marked `partitioned` are cloned across evaluator
// nodes (intra-operator parallelism).

#ifndef GRIDQP_PLAN_PHYSICAL_PLAN_H_
#define GRIDQP_PLAN_PHYSICAL_PLAN_H_

#include <string>
#include <vector>

#include "expr/expression.h"
#include "plan/logical_plan.h"
#include "net/message.h"
#include "storage/schema.h"

namespace gqp {

enum class PhysOpKind {
  kScan,
  kFilter,
  kProject,
  kHashJoin,
  kOperationCall,
  kHashAggregate,
  kCollect,
};

std::string_view PhysOpKindToString(PhysOpKind kind);

/// Descriptor of one physical operator.
struct PhysOpDesc {
  PhysOpKind kind = PhysOpKind::kScan;
  /// Output schema of this operator.
  SchemaPtr out_schema;
  /// Per-tuple base CPU cost (ms at node capacity 1.0) and the operation
  /// tag perturbation profiles key on.
  double base_cost_ms = 0.0;
  std::string cost_tag;

  // kScan
  std::string table;
  HostId data_host = kInvalidHost;
  size_t estimated_rows = 0;

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;

  // kHashJoin: key positions in the build (port 0) and probe (port 1)
  // input schemas. `base_cost_ms` is the per-probe cost;
  // `build_cost_ms` the per-build-tuple insertion cost.
  size_t build_key = 0;
  size_t probe_key = 0;
  double build_cost_ms = 0.0;
  /// Build-side cardinality estimate (base-table rows of the build scan
  /// chain) and the exchange's logical bucket count; the join operator
  /// pre-sizes its per-bucket flat tables from estimate / partitions.
  size_t estimated_build_rows = 0;
  int build_partitions = 1;

  // kOperationCall
  std::string ws_name;
  size_t arg_col = 0;

  // kHashAggregate
  std::vector<ExprPtr> group_exprs;
  std::vector<AggSpec> aggs;

  std::string ToString() const;
};

/// Tuple-routing policy of an exchange.
enum class PolicyKind {
  /// Weighted round-robin: stateless downstream, any tuple anywhere.
  kWeightedRoundRobin,
  /// Hash of a key column into logical buckets owned by consumers:
  /// required when the consuming fragment holds keyed state (hash join).
  kHashBuckets,
};

std::string_view PolicyKindToString(PolicyKind kind);

/// Descriptor of an exchange connecting a producer fragment to one input
/// port of a consumer fragment.
struct ExchangeDesc {
  int id = 0;
  PolicyKind policy = PolicyKind::kWeightedRoundRobin;
  /// Key column in the producer's output schema (kHashBuckets only).
  size_t key_col = 0;
  /// Logical partition count for bucketed routing (Flux-style).
  int num_buckets = 120;
  int producer_fragment = -1;
  int consumer_fragment = -1;
  int consumer_port = 0;
};

/// Descriptor of a plan fragment (subplan).
struct FragmentDesc {
  int id = 0;
  /// Operators in push order: ops[0] is the leaf (scan source or the
  /// operator fed by the input exchanges), ops.back() feeds the output
  /// exchange or is the kCollect sink.
  std::vector<PhysOpDesc> ops;
  /// Number of exchange input ports (0 for scan leaves).
  int num_input_ports = 0;
  /// Cloned across evaluator nodes when true.
  bool partitioned = false;
  /// Placement constraint (data host for scans, coordinator for the root);
  /// kInvalidHost when the scheduler is free to choose.
  HostId pinned_host = kInvalidHost;

  bool IsScanLeaf() const {
    return !ops.empty() && ops.front().kind == PhysOpKind::kScan;
  }
  bool IsRoot() const {
    return !ops.empty() && ops.back().kind == PhysOpKind::kCollect;
  }
  /// True if the fragment holds partitioned operator state (hash join or
  /// hash aggregate).
  bool Stateful() const {
    for (const PhysOpDesc& op : ops) {
      if (op.kind == PhysOpKind::kHashJoin ||
          op.kind == PhysOpKind::kHashAggregate) {
        return true;
      }
    }
    return false;
  }
};

/// A complete (unplaced) physical plan.
struct PhysicalPlan {
  std::vector<FragmentDesc> fragments;
  std::vector<ExchangeDesc> exchanges;
  SchemaPtr result_schema;

  const FragmentDesc* FindFragment(int id) const;
  const ExchangeDesc* FindExchange(int id) const;
  /// Exchanges feeding a given fragment, ordered by consumer port.
  std::vector<const ExchangeDesc*> InputsOf(int fragment_id) const;
  /// The output exchange of a fragment, or nullptr for the root.
  const ExchangeDesc* OutputOf(int fragment_id) const;
  /// True if any partitioned fragment is stateful (forces retrospective
  /// response for correctness).
  bool HasStatefulPartitionedFragment() const;

  std::string ToString() const;
};

/// Placement decision: hosts per fragment (clones for partitioned ones)
/// and the initial workload-distribution vector W per exchange.
struct ScheduledPlan {
  PhysicalPlan plan;
  /// instance_hosts[fragment_id] lists the host of each instance.
  std::vector<std::vector<HostId>> instance_hosts;
  /// initial_weights[exchange_id][i]: fraction of tuples routed to
  /// consumer instance i. Sums to 1.
  std::vector<std::vector<double>> initial_weights;

  int NumInstances(int fragment_id) const {
    return static_cast<int>(instance_hosts[fragment_id].size());
  }
  std::string ToString() const;
};

}  // namespace gqp

#endif  // GRIDQP_PLAN_PHYSICAL_PLAN_H_
