// Optimiser: converts a bound logical plan into a fragmented physical
// plan. Mirrors the OGSA-DQP compile pipeline: scans (plus their pushed
// filters) stay on the data hosts; everything between the scans and the
// result collection forms a single partitioned subplan cloned across
// evaluator nodes; the root collect fragment runs on the coordinator.
//
// Distribution policies: inputs feeding a hash join are hash-bucketed on
// the join keys (so that clones see consistent key ranges — the paper's
// "hash function applied to the join attribute defines the site for each
// tuple"); stateless partitioned fragments receive tuples by weighted
// round-robin.

#ifndef GRIDQP_PLAN_OPTIMIZER_H_
#define GRIDQP_PLAN_OPTIMIZER_H_

#include "common/result.h"
#include "plan/cost_model.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"

namespace gqp {

struct OptimizerOptions {
  CostModel costs;
  /// Logical partition count for bucketed routing.
  int num_buckets = 120;
  /// When false, the evaluation fragment is not cloned (single-node
  /// execution; useful for reference runs in tests).
  bool partition_evaluation = true;
};

/// Builds the physical plan. Current limitations (sufficient for the
/// paper's workloads and documented in DESIGN.md): at most one join per
/// query; joins must sit directly on scan fragments.
Result<PhysicalPlan> CreatePhysicalPlan(const LogicalNodePtr& root,
                                        const OptimizerOptions& options);

}  // namespace gqp

#endif  // GRIDQP_PLAN_OPTIMIZER_H_
