// Scheduler: places plan fragments onto grid nodes and assigns the initial
// workload-distribution vector W (after the resource-scheduling approach
// of Gounaris et al., GRID'04 [11]: partitioned fragments are cloned over
// the selected compute nodes and W is proportional to node capacity).

#ifndef GRIDQP_PLAN_SCHEDULER_H_
#define GRIDQP_PLAN_SCHEDULER_H_

#include <set>
#include <vector>

#include "common/result.h"
#include "grid/registry.h"
#include "plan/physical_plan.h"

namespace gqp {

struct SchedulerOptions {
  /// Number of compute nodes to clone partitioned fragments over;
  /// 0 = all registered compute nodes.
  int num_evaluators = 0;
  /// Host running the root collect fragment; kInvalidHost = the
  /// registry's coordinator node.
  HostId coordinator = kInvalidHost;
  /// Compute hosts to schedule around — the coordinator passes its
  /// confirmed failure set so queries submitted AFTER a crash deploy only
  /// onto live evaluators instead of waiting on a dead host's deploy ack
  /// until their deadline. Errors when the exclusion empties the pool.
  std::set<HostId> exclude_hosts;
};

/// Produces a ScheduledPlan. Errors when required roles are missing from
/// the registry (no coordinator, no compute nodes, unknown data host).
Result<ScheduledPlan> SchedulePlan(const PhysicalPlan& plan,
                                   const ResourceRegistry& registry,
                                   const SchedulerOptions& options);

/// Derives the distribution vector after instances die: dead entries are
/// zeroed and the survivors' shares renormalized to sum to 1, so the dead
/// machines' workload is absorbed proportionally (the Responder applies
/// this W' in its recovery rounds). Returns an empty vector when no live
/// weight remains — every instance failed and recovery is impossible.
std::vector<double> RecoveryWeights(std::vector<double> weights,
                                    const std::set<int>& dead);

}  // namespace gqp

#endif  // GRIDQP_PLAN_SCHEDULER_H_
