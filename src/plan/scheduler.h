// Scheduler: places plan fragments onto grid nodes and assigns the initial
// workload-distribution vector W (after the resource-scheduling approach
// of Gounaris et al., GRID'04 [11]: partitioned fragments are cloned over
// the selected compute nodes and W is proportional to node capacity).

#ifndef GRIDQP_PLAN_SCHEDULER_H_
#define GRIDQP_PLAN_SCHEDULER_H_

#include "common/result.h"
#include "grid/registry.h"
#include "plan/physical_plan.h"

namespace gqp {

struct SchedulerOptions {
  /// Number of compute nodes to clone partitioned fragments over;
  /// 0 = all registered compute nodes.
  int num_evaluators = 0;
  /// Host running the root collect fragment; kInvalidHost = the
  /// registry's coordinator node.
  HostId coordinator = kInvalidHost;
};

/// Produces a ScheduledPlan. Errors when required roles are missing from
/// the registry (no coordinator, no compute nodes, unknown data host).
Result<ScheduledPlan> SchedulePlan(const PhysicalPlan& plan,
                                   const ResourceRegistry& registry,
                                   const SchedulerOptions& options);

}  // namespace gqp

#endif  // GRIDQP_PLAN_SCHEDULER_H_
