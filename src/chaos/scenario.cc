#include "chaos/scenario.h"

#include <algorithm>
#include <set>

#include "common/random.h"
#include "common/strings.h"
#include "detect/heartbeat.h"

namespace gqp {
namespace chaos {

namespace {

std::string_view KindName(PerturbationEvent::Kind kind) {
  switch (kind) {
    case PerturbationEvent::Kind::kConstantFactor:
      return "factor";
    case PerturbationEvent::Kind::kAddedDelay:
      return "sleep";
    case PerturbationEvent::Kind::kGaussianFactor:
      return "gauss";
    case PerturbationEvent::Kind::kDrift:
      return "drift";
    case PerturbationEvent::Kind::kStep:
      return "step";
    case PerturbationEvent::Kind::kClear:
      return "clear";
  }
  return "?";
}

}  // namespace

std::string PerturbationEvent::Describe() const {
  std::string out =
      StrCat("t", at_ms, ":e", evaluator, ":", KindName(kind));
  if (node_wide) out += ":node";
  switch (kind) {
    case Kind::kConstantFactor:
    case Kind::kAddedDelay:
      out += StrCat("(", p0, ")");
      break;
    case Kind::kGaussianFactor:
      out += StrCat("(", p0, ",", p1, ",[", p2, ",", p3, "])");
      break;
    case Kind::kDrift:
      out += StrCat("(", p0, ",", p1, ")");
      break;
    case Kind::kStep:
      out += StrCat("(", steps.size(), " steps)");
      break;
    case Kind::kClear:
      break;
  }
  return out;
}

std::string ChaosScenario::Describe() const {
  std::string caps;
  for (size_t i = 0; i < capacities.size(); ++i) {
    if (i > 0) caps += ",";
    caps += StrCat(capacities[i]);
  }
  std::string out = StrCat(
      "seed=", seed, " query=", QueryKindName(query),
      " rows=", sequences, "/", interactions, " evals=", num_evaluators,
      " caps=[", caps, "] link=", initial_link.latency_ms, "ms/",
      initial_link.bandwidth_bytes_per_ms, " assess=",
      AssessmentTypeToString(assessment), " resp=",
      ResponseTypeToString(response), " ckpt=", checkpoint_interval,
      " m1=", m1_frequency, " med=", med_window, " buf=", buffer_tuples);
  if (!perturbations.empty()) {
    out += " perturb=[";
    for (size_t i = 0; i < perturbations.size(); ++i) {
      if (i > 0) out += " ";
      out += perturbations[i].Describe();
    }
    out += "]";
  }
  if (!failures.empty()) {
    out += " fail=[";
    for (size_t i = 0; i < failures.size(); ++i) {
      if (i > 0) out += " ";
      out += StrCat("t", failures[i].at_ms, ":e", failures[i].evaluator);
    }
    out += "]";
  }
  if (!link_shifts.empty()) {
    out += " links=[";
    for (size_t i = 0; i < link_shifts.size(); ++i) {
      if (i > 0) out += " ";
      out += StrCat("t", link_shifts[i].at_ms, ":",
                    link_shifts[i].params.latency_ms, "ms/",
                    link_shifts[i].params.bandwidth_bytes_per_ms);
    }
    out += "]";
  }
  if (loss_rate > 0.0) {
    out += StrCat(" loss=", loss_rate, " hb=", heartbeat_interval_ms);
  }
  if (flow_control) {
    out += StrCat(" fc=on budget=", memory_budget_bytes);
  }
  if (vectorized) {
    out += StrCat(" vec=on batch=", vector_batch_size);
  }
  if (!partitions.empty()) {
    out += " part=[";
    for (size_t i = 0; i < partitions.size(); ++i) {
      if (i > 0) out += " ";
      out += StrCat("t", partitions[i].at_ms, "+", partitions[i].duration_ms,
                    ":e", partitions[i].evaluator);
    }
    out += "]";
  }
  if (!stalls.empty()) {
    out += " stall=[";
    for (size_t i = 0; i < stalls.size(); ++i) {
      if (i > 0) out += " ";
      out += StrCat("t", stalls[i].at_ms, "+", stalls[i].duration_ms, ":e",
                    stalls[i].evaluator);
    }
    out += "]";
  }
  if (standby) {
    out += " standby=on";
    if (coordinator_kill) out += StrCat(" coordkill=t", coordinator_kill_at_ms);
    if (deadline_ms > 0) out += StrCat(" deadline=", deadline_ms);
  }
  if (!extra_queries.empty()) {
    out += " mq=[";
    for (size_t i = 0; i < extra_queries.size(); ++i) {
      if (i > 0) out += " ";
      out += StrCat("t", extra_queries[i].submit_at_ms, ":",
                    QueryKindName(extra_queries[i].kind));
    }
    out += "]";
  }
  if (tenant_storm) {
    out += StrCat(" storm=[tenants=", storm_tenants, " rate=", storm_rate_qps,
                  "qps burst=", storm_burst_multiplier,
                  "x horizon=", storm_horizon_ms,
                  "ms queue=", storm_queue_capacity,
                  " conc=", storm_max_concurrent,
                  " pertenant=", storm_per_tenant_cap,
                  " deadline=", deadline_ms, "]");
  }
  return out;
}

ChaosScenario GenerateScenario(uint64_t seed, ChaosProfile profile) {
  // Every draw happens in a fixed order so the scenario is a pure function
  // of the seed; never reorder or make draws conditional on earlier ones
  // unless the condition itself is seed-deterministic.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ChaosScenario s;
  s.seed = seed;
  s.profile = profile;

  s.query = rng.NextBool(0.5) ? QueryKind::kQ1 : QueryKind::kQ2;
  s.sequences = static_cast<size_t>(rng.NextInt(150, 600));
  s.interactions = static_cast<size_t>(rng.NextInt(200, 900));
  s.sequence_length = static_cast<size_t>(rng.NextInt(16, 48));
  s.ws_cost_ms = rng.NextDouble(0.1, 0.4);

  s.num_evaluators = static_cast<int>(rng.NextInt(2, 4));
  for (int i = 0; i < s.num_evaluators; ++i) {
    s.capacities.push_back(rng.NextDouble(0.5, 2.0));
  }
  s.initial_link.latency_ms = rng.NextDouble(0.1, 2.0);
  s.initial_link.bandwidth_bytes_per_ms = rng.NextDouble(4000.0, 20000.0);

  s.assessment =
      rng.NextBool(0.5) ? AssessmentType::kA1 : AssessmentType::kA2;
  s.response = rng.NextBool(0.5) ? ResponseType::kProspective
                                 : ResponseType::kRetrospective;
  // R2 cannot preserve correctness for partitioned stateful operators
  // (the GDQS rejects it for the join); override after the draw so the
  // draw sequence stays identical across queries.
  if (s.query == QueryKind::kQ2) s.response = ResponseType::kRetrospective;
  static constexpr size_t kCheckpoints[] = {1, 5, 25, 50};
  s.checkpoint_interval = kCheckpoints[rng.NextBelow(4)];
  static constexpr size_t kM1[] = {1, 5, 10, 20};
  s.m1_frequency = kM1[rng.NextBelow(4)];
  static constexpr size_t kWindows[] = {5, 10, 25};
  s.med_window = kWindows[rng.NextBelow(3)];
  static constexpr size_t kBuffers[] = {10, 25, 50};
  s.buffer_tuples = kBuffers[rng.NextBelow(3)];
  s.thres_m = rng.NextDouble(0.10, 0.40);
  s.thres_a = rng.NextDouble(0.10, 0.40);

  // Perturbation schedule: 0-3 profile installations at random times on
  // random evaluators.
  const int num_perturbations = static_cast<int>(rng.NextInt(0, 3));
  for (int i = 0; i < num_perturbations; ++i) {
    PerturbationEvent ev;
    ev.at_ms = rng.NextDouble(0.0, 400.0);
    ev.evaluator = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(s.num_evaluators)));
    ev.node_wide = rng.NextBool(0.25);
    ev.profile_seed = rng.Next();
    switch (rng.NextBelow(6)) {
      case 0:
        ev.kind = PerturbationEvent::Kind::kConstantFactor;
        ev.p0 = rng.NextDouble(2.0, 30.0);
        break;
      case 1:
        ev.kind = PerturbationEvent::Kind::kAddedDelay;
        ev.p0 = rng.NextDouble(1.0, 12.0);
        break;
      case 2: {
        ev.kind = PerturbationEvent::Kind::kGaussianFactor;
        ev.p0 = rng.NextDouble(5.0, 30.0);   // mean
        ev.p1 = rng.NextDouble(1.0, 10.0);   // stddev
        ev.p2 = std::max(1.0, ev.p0 - rng.NextDouble(2.0, 15.0));  // lo
        ev.p3 = ev.p0 + rng.NextDouble(2.0, 15.0);                 // hi
        break;
      }
      case 3:
        ev.kind = PerturbationEvent::Kind::kDrift;
        ev.p0 = rng.NextDouble(0.2, 0.8);       // sigma
        ev.p1 = rng.NextDouble(50.0, 400.0);    // tau_ms
        break;
      case 4: {
        ev.kind = PerturbationEvent::Kind::kStep;
        const int num_steps = static_cast<int>(rng.NextInt(2, 4));
        double t = rng.NextDouble(0.0, 100.0);
        for (int step = 0; step < num_steps; ++step) {
          ev.steps.emplace_back(t, rng.NextDouble(1.0, 20.0));
          t += rng.NextDouble(30.0, 200.0);
        }
        break;
      }
      default:
        ev.kind = PerturbationEvent::Kind::kClear;
        break;
    }
    s.perturbations.push_back(std::move(ev));
  }

  // Failure schedule: at most num_evaluators - 1 crashes (someone must
  // survive to absorb the recovered work), on distinct evaluators.
  int num_failures = 0;
  const double failure_dice = rng.NextDouble();
  if (failure_dice > 0.85) {
    num_failures = 2;
  } else if (failure_dice > 0.50) {
    num_failures = 1;
  }
  num_failures = std::min(num_failures, s.num_evaluators - 1);
  std::vector<int> victims;
  for (int i = 0; i < s.num_evaluators; ++i) victims.push_back(i);
  for (int i = 0; i < num_failures; ++i) {
    const size_t pick = rng.NextBelow(victims.size());
    FailureEvent ev;
    ev.evaluator = victims[pick];
    victims.erase(victims.begin() + static_cast<long>(pick));
    ev.at_ms = rng.NextDouble(30.0, 500.0);
    s.failures.push_back(ev);
  }

  // Network shifts: 0-2 fabric-wide latency/bandwidth changes.
  const int num_shifts = static_cast<int>(rng.NextInt(0, 2));
  for (int i = 0; i < num_shifts; ++i) {
    LinkShiftEvent ev;
    ev.at_ms = rng.NextDouble(20.0, 400.0);
    ev.params.latency_ms = rng.NextDouble(0.1, 4.0);
    ev.params.bandwidth_bytes_per_ms = rng.NextDouble(2000.0, 20000.0);
    s.link_shifts.push_back(ev);
  }

  // Lossy-fabric extensions. Drawn UNCONDITIONALLY so both profiles
  // consume the same RNG stream (a seed means the same base scenario in
  // each); the standard profile simply discards the results.
  const double loss_rate = rng.NextDouble(0.01, 0.05);
  static constexpr double kHbIntervals[] = {2.5, 5.0, 10.0};
  const double hb_interval = kHbIntervals[rng.NextBelow(3)];
  std::vector<PartitionEvent> partitions;
  const int num_partitions = static_cast<int>(rng.NextInt(0, 2));
  for (int i = 0; i < num_partitions; ++i) {
    PartitionEvent ev;
    ev.at_ms = rng.NextDouble(30.0, 500.0);
    ev.duration_ms = rng.NextDouble(10.0, 120.0);
    ev.evaluator = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(s.num_evaluators)));
    partitions.push_back(ev);
  }
  std::vector<StallEvent> stalls;
  const int num_stalls = static_cast<int>(rng.NextInt(0, 2));
  for (int i = 0; i < num_stalls; ++i) {
    StallEvent ev;
    ev.at_ms = rng.NextDouble(30.0, 500.0);
    ev.duration_ms = rng.NextDouble(10.0, 120.0);
    ev.evaluator = static_cast<int>(
        rng.NextBelow(static_cast<uint64_t>(s.num_evaluators)));
    stalls.push_back(ev);
  }

  // Flow-control extensions (D11). Tail draws, taken UNCONDITIONALLY for
  // every profile so the base scenario of a seed stays identical across
  // all four profiles; the legacy profiles simply discard the results.
  const int slow_victim = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(s.num_evaluators)));
  const double slow_factor = rng.NextDouble(8.0, 20.0);
  const double slow_at_ms = rng.NextDouble(20.0, 60.0);
  const size_t slow_budget_bytes =
      static_cast<size_t>(rng.NextInt(4, 8)) * 1024;
  const size_t squeeze_budget_bytes =
      static_cast<size_t>(rng.NextInt(8, 24)) * 1024;

  // Multi-query extensions (D12). Same unconditional-tail-draw rule. The
  // submission window [5, 25] ms closes before the earliest possible
  // failure/partition (30 ms), so every query deploys onto a fully-live
  // grid and the chaos then hits several running queries at once.
  const int num_extra_queries = static_cast<int>(rng.NextInt(1, 3));
  std::vector<ConcurrentQuery> extra_queries;
  for (int i = 0; i < num_extra_queries; ++i) {
    ConcurrentQuery q;
    q.kind = rng.NextBool(0.5) ? QueryKind::kQ1 : QueryKind::kQ2;
    q.submit_at_ms = rng.NextDouble(5.0, 25.0);
    extra_queries.push_back(q);
  }
  const size_t mq_budget_bytes =
      static_cast<size_t>(rng.NextInt(16, 48)) * 1024;

  // Coordinator-failover extensions (D14). Same unconditional-tail-draw
  // rule. The kill window [40, 220] ms opens after every query has
  // deployed and usually closes before the base query drains, so the
  // standby takes over with real in-flight state. The deadline is
  // deliberately generous — takeover plus a full retry fits comfortably —
  // so sweep queries never deadline-terminate (the termination path is
  // pinned by unit tests instead).
  const double coord_kill_at_ms = rng.NextDouble(40.0, 220.0);
  const double coord_deadline_ms = rng.NextDouble(30000.0, 60000.0);
  const int coord_extra_queries = static_cast<int>(rng.NextInt(0, 2));

  // Multi-tenant storm extensions (D16). Same unconditional-tail-draw
  // rule, appended after every earlier draw so all legacy profiles keep
  // their scenarios (and recorded golden traces) bit-identical.
  const int storm_tenants = static_cast<int>(rng.NextInt(2, 4));
  const double storm_rate_qps = rng.NextDouble(10.0, 25.0);
  const double storm_burst_multiplier = rng.NextDouble(2.0, 4.0);
  const double storm_horizon_ms = rng.NextDouble(400.0, 800.0);
  const double storm_deadline_ms = rng.NextDouble(4000.0, 8000.0);
  const int storm_queue_capacity = static_cast<int>(rng.NextInt(4, 10));
  const int storm_max_concurrent = static_cast<int>(rng.NextInt(2, 4));
  const int storm_per_tenant_cap = static_cast<int>(rng.NextInt(1, 2));
  const int storm_victim = static_cast<int>(
      rng.NextBelow(static_cast<uint64_t>(s.num_evaluators)));
  const double storm_kill_at_ms = rng.NextDouble(80.0, 300.0);

  if (profile == ChaosProfile::kSlowConsumer) {
    // A single sustained node-wide CPU sag on one evaluator and nothing
    // else: no kills, no partitions, no stalls. The interesting dynamics
    // are the unbounded queue growth at the sagging consumer (FC off) vs
    // the credit gate holding producers back (FC on).
    s.failures.clear();
    s.partitions.clear();
    s.stalls.clear();
    s.perturbations.clear();
    PerturbationEvent sag;
    sag.at_ms = slow_at_ms;
    sag.evaluator = slow_victim;
    sag.kind = PerturbationEvent::Kind::kConstantFactor;
    sag.p0 = slow_factor;
    sag.node_wide = true;
    s.perturbations.push_back(sag);
    s.flow_control = true;
    s.memory_budget_bytes = slow_budget_bytes;
  } else if (profile == ChaosProfile::kMemorySqueeze) {
    // Standard chaos schedule, but every queue/buffer must live inside a
    // tight per-query budget.
    s.flow_control = true;
    s.memory_budget_bytes = squeeze_budget_bytes;
  } else if (profile == ChaosProfile::kMultiQuery) {
    // Standard chaos with several live queries on the same grid. Flow
    // control on with a per-query budget, so the bounded-memory invariant
    // is checked for every query independently.
    s.flow_control = true;
    s.memory_budget_bytes = mq_budget_bytes;
    s.extra_queries = std::move(extra_queries);
  } else if (profile == ChaosProfile::kCoordinatorKill) {
    // The only injected fault is the primary coordinator's crash:
    // evaluator kills are cleared so a kill-free reference run of the
    // same seed produces the exact rows the failover run must reproduce.
    s.failures.clear();
    s.standby = true;
    s.coordinator_kill = true;
    s.coordinator_kill_at_ms = coord_kill_at_ms;
    s.deadline_ms = coord_deadline_ms;
    s.flow_control = true;
    s.memory_budget_bytes = mq_budget_bytes;
    if (extra_queries.size() > static_cast<size_t>(coord_extra_queries)) {
      extra_queries.resize(static_cast<size_t>(coord_extra_queries));
    }
    s.extra_queries = std::move(extra_queries);
  } else if (profile == ChaosProfile::kTenantStorm) {
    // Open-loop multi-tenant overload (D16): K tenants press a bounded
    // admission queue at burst rates while one evaluator crashes and the
    // detector recovers mid-storm. Small fixed datasets keep the per-seed
    // cost linear in the arrival count; seed diversity comes from the
    // rates, caps and kill schedule. Retrospective response throughout:
    // the mix includes stateful partitioned operators (join, aggregate).
    s.tenant_storm = true;
    s.storm_tenants = storm_tenants;
    s.storm_rate_qps = storm_rate_qps;
    s.storm_burst_multiplier = storm_burst_multiplier;
    s.storm_horizon_ms = storm_horizon_ms;
    s.storm_queue_capacity = storm_queue_capacity;
    s.storm_max_concurrent = storm_max_concurrent;
    s.storm_per_tenant_cap = storm_per_tenant_cap;
    s.deadline_ms = storm_deadline_ms;
    s.sequences = 80;
    s.interactions = 120;
    s.sequence_length = 16;
    s.response = ResponseType::kRetrospective;
    s.perturbations.clear();
    s.link_shifts.clear();
    s.failures.clear();
    FailureEvent kill;
    kill.evaluator = storm_victim;
    kill.at_ms = storm_kill_at_ms;
    s.failures.push_back(kill);
    s.flow_control = true;
    s.memory_budget_bytes = mq_budget_bytes;
  }

  if (profile == ChaosProfile::kLossy) {
    s.loss_rate = loss_rate;
    s.heartbeat_interval_ms = hb_interval;
    s.partitions = std::move(partitions);
    s.stalls = std::move(stalls);

    // Survivor budget: a silence window long enough to be confirmed is a
    // potential false kill. Real crashes plus false kills must leave at
    // least one evaluator standing (the Responder needs a recovery
    // target; the monitor's last-survivor guard is only a backstop).
    // Deterministic post-processing, like the Q2 response override above.
    DetectConfig detect;
    detect.heartbeat_interval_ms = hb_interval;
    // The FASTEST possible confirmation: the EWMA suspect timeout clamps
    // at min_suspect_intervals, so a silence of (min_suspect + confirm)
    // intervals can already kill. Every window that merely COULD reach
    // that horizon must charge budget — observed silence exceeds the
    // window itself by up to a beat phase, check granularity and a couple
    // of loss-eaten beats.
    const double confirmable_ms =
        (detect.min_suspect_intervals + detect.confirm_intervals) *
        hb_interval;
    std::set<int> crashed;
    for (const FailureEvent& ev : s.failures) crashed.insert(ev.evaluator);
    std::set<int> budgeted;
    int budget = s.num_evaluators - 1 - static_cast<int>(crashed.size());
    auto ration = [&](int evaluator, double* duration_ms) {
      if (crashed.count(evaluator) > 0) return;  // already dead anyway
      if (budgeted.count(evaluator) > 0) return;  // budget already charged
      if (budget > 0) {
        --budget;
        budgeted.insert(evaluator);
      } else {
        // Shorten well below the confirmation horizon: still suspicion
        // pressure on the detector, but never a kill — even if loss eats
        // the two beats flanking the window.
        *duration_ms = std::min(*duration_ms, 0.3 * confirmable_ms);
      }
    };
    for (PartitionEvent& ev : s.partitions) {
      ration(ev.evaluator, &ev.duration_ms);
    }
    for (StallEvent& ev : s.stalls) ration(ev.evaluator, &ev.duration_ms);
  }

  return s;
}

std::string ReproCommand(uint64_t seed, ChaosProfile profile,
                         bool vectorized) {
  std::string_view flag;
  switch (profile) {
    case ChaosProfile::kStandard:
      flag = "";
      break;
    case ChaosProfile::kLossy:
      flag = " --lossy";
      break;
    case ChaosProfile::kSlowConsumer:
      flag = " --slow-consumer";
      break;
    case ChaosProfile::kMemorySqueeze:
      flag = " --memory-squeeze";
      break;
    case ChaosProfile::kMultiQuery:
      flag = " --multi-query";
      break;
    case ChaosProfile::kCoordinatorKill:
      flag = " --coordinator-kill";
      break;
    case ChaosProfile::kTenantStorm:
      flag = " --tenant-storm";
      break;
  }
  return StrCat("chaos_repro --seed=", seed, flag,
                vectorized ? " --vectorized" : "");
}

}  // namespace chaos
}  // namespace gqp
