#include "chaos/runner.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "chaos/invariants.h"
#include "chaos/trace.h"
#include "common/strings.h"
#include "storage/datagen.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace chaos {

namespace {

PerturbationPtr MakeProfile(const PerturbationEvent& ev) {
  switch (ev.kind) {
    case PerturbationEvent::Kind::kConstantFactor:
      return std::make_shared<ConstantFactorPerturbation>(ev.p0);
    case PerturbationEvent::Kind::kAddedDelay:
      return std::make_shared<AddedDelayPerturbation>(ev.p0);
    case PerturbationEvent::Kind::kGaussianFactor:
      return std::make_shared<GaussianFactorPerturbation>(
          ev.p0, ev.p1, ev.p2, ev.p3, ev.profile_seed);
    case PerturbationEvent::Kind::kDrift:
      return std::make_shared<DriftPerturbation>(ev.p0, ev.p1,
                                                 ev.profile_seed);
    case PerturbationEvent::Kind::kStep: {
      std::vector<StepPerturbation::Step> steps;
      for (const auto& [start_ms, factor] : ev.steps) {
        steps.push_back(StepPerturbation::Step{start_ms, factor});
      }
      return std::make_shared<StepPerturbation>(std::move(steps));
    }
    case PerturbationEvent::Kind::kClear:
      return nullptr;
  }
  return nullptr;
}

void InstallPerturbation(GridSetup* grid, const PerturbationEvent& ev,
                         const std::string& tag) {
  if (ev.kind == PerturbationEvent::Kind::kClear) {
    grid->evaluator_node(ev.evaluator)->ClearPerturbations();
    return;
  }
  PerturbationPtr profile = MakeProfile(ev);
  if (ev.node_wide) {
    grid->evaluator_node(ev.evaluator)->SetNodePerturbation(
        std::move(profile));
  } else {
    (void)grid->PerturbEvaluator(ev.evaluator, tag, std::move(profile));
  }
}

std::string DumpExecutors(GridSetup* grid, int query_id) {
  std::string out;
  const int num_hosts = grid->num_hosts();
  for (int host = 0; host < num_hosts; ++host) {
    Gqes* gqes = grid->gqes_on(static_cast<HostId>(host));
    if (gqes == nullptr) continue;
    for (FragmentExecutor* exec : gqes->Executors()) {
      if (exec->plan().id.query != query_id) continue;
      out += StrCat("\n    ", exec->DebugString());
    }
  }
  return out;
}

/// Multi-tenant storm (D16): the open-loop workload driver replaces the
/// single base query; the per-query invariant is the terminal trichotomy
/// plus per-completed-query result correctness, and the admission
/// controller's caps are checked against its own counters.
ChaosRunResult RunTenantStorm(const ChaosScenario& scenario,
                              const ChaosRunOptions& options) {
  ChaosRunResult result;
  const std::string repro =
      ReproCommand(scenario.seed, scenario.profile, scenario.vectorized);
  if (options.shards > 1) {
    result.status = Status::InvalidArgument(
        "tenant-storm scenarios run on the sequential kernel only");
    return result;
  }

  GridOptions grid_options;
  grid_options.num_evaluators = scenario.num_evaluators;
  grid_options.evaluator_capacities = scenario.capacities;
  grid_options.link = scenario.initial_link;
  grid_options.adaptive = true;
  grid_options.med.window = scenario.med_window;
  grid_options.med.thres_m = scenario.thres_m;
  grid_options.detect.enabled = true;
  grid_options.detect.heartbeat_interval_ms = scenario.heartbeat_interval_ms;
  grid_options.reliable.enabled = true;
  grid_options.admission.enabled = true;
  grid_options.admission.max_concurrent_queries = scenario.storm_max_concurrent;
  grid_options.admission.queue_capacity =
      static_cast<size_t>(scenario.storm_queue_capacity);
  grid_options.admission.per_tenant_inflight_cap = scenario.storm_per_tenant_cap;
  // Each admitted query's share of the global pool lands near the
  // scenario's per-query budget.
  grid_options.admission.global_memory_budget_bytes =
      static_cast<uint64_t>(scenario.memory_budget_bytes) *
      static_cast<uint64_t>(scenario.storm_max_concurrent);
  grid_options.admission.shed_enabled = true;

  GridSetup grid(grid_options);
  result.status = grid.Initialize();
  if (!result.status.ok()) return result;

  EventTraceRecorder recorder(options.keep_trace);
  recorder.Attach(grid.simulator());
  grid.simulator()->set_max_events(options.max_events);

  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = scenario.sequences;
  seq_spec.sequence_length = scenario.sequence_length;
  seq_spec.seed = scenario.seed;
  const TablePtr sequences = GenerateProteinSequences(seq_spec);
  ProteinInteractionsSpec inter_spec;
  inter_spec.num_rows = scenario.interactions;
  inter_spec.num_orfs = scenario.sequences;
  inter_spec.seed = scenario.seed + 1000003;
  const TablePtr interactions = GenerateProteinInteractions(inter_spec);
  result.status = grid.AddTable(sequences);
  if (!result.status.ok()) return result;
  result.status = grid.AddTable(interactions);
  if (!result.status.ok()) return result;
  result.status = grid.AddWebService("EntropyAnalyser", DataType::kDouble,
                                     scenario.ws_cost_ms);
  if (!result.status.ok()) return result;

  for (const FailureEvent& ev : scenario.failures) {
    grid.simulator()->Schedule(
        ev.at_ms, [&grid, &ev] { (void)grid.FailEvaluator(ev.evaluator); });
  }

  DriverConfig driver_config;
  driver_config.seed = scenario.seed ^ 0x7E4A47ULL;
  driver_config.horizon_ms = scenario.storm_horizon_ms;
  driver_config.deadline_ms = scenario.deadline_ms;
  driver_config.max_queries = 300;
  for (int i = 0; i < scenario.storm_tenants; ++i) {
    TenantSpec tenant;
    tenant.name = StrCat("t", i);
    tenant.arrival_rate_qps = scenario.storm_rate_qps;
    if (i == 0) {
      // The heaviest tenant: periodic bursts on top of the base rate —
      // the shedding target when sustained queue pressure hits.
      tenant.burst_period_ms = scenario.storm_horizon_ms / 3.0;
      tenant.burst_duty = 0.4;
      tenant.burst_multiplier = scenario.storm_burst_multiplier;
    }
    tenant.weight_q1 = 1.0;
    tenant.weight_q2 = 0.5;
    tenant.weight_scan_agg = 0.5;
    driver_config.tenants.push_back(std::move(tenant));
  }
  QueryOptions base;
  base.adaptivity.enabled = true;
  base.adaptivity.assessment = scenario.assessment;
  base.adaptivity.response = ResponseType::kRetrospective;
  base.adaptivity.thres_a = scenario.thres_a;
  base.adaptivity.thres_m = scenario.thres_m;
  base.adaptivity.window = scenario.med_window;
  base.exec.m1_frequency = scenario.m1_frequency;
  base.exec.checkpoint_interval = scenario.checkpoint_interval;
  base.exec.buffer_tuples = scenario.buffer_tuples;
  base.exec.monitoring_enabled = true;
  base.exec.recovery_log_enabled = true;
  base.exec.flow_control_enabled = scenario.flow_control;
  base.exec.memory_budget_bytes = scenario.memory_budget_bytes;
  base.scheduler.num_evaluators = scenario.num_evaluators;
  driver_config.base_options = base;

  WorkloadDriver driver(driver_config);
  driver.ScheduleArrivals(&grid);

  const Status run_status = grid.simulator()->Run();
  EventTraceRecorder::Detach(grid.simulator());
  result.trace_hash = recorder.hash();
  result.trace_events = recorder.events();
  if (options.keep_trace) result.trace = recorder.trace();
  result.final_time_ms = grid.simulator()->Now();

  result.net = grid.network()->stats();
  if (grid.bus()->reliable() != nullptr) {
    result.transport = grid.bus()->reliable()->stats();
  }
  if (grid.monitor() != nullptr) {
    result.detect = grid.monitor()->stats();
    for (int i = 0; i < scenario.num_evaluators; ++i) {
      if (const Heartbeater* hb = grid.heartbeater(i)) {
        result.heartbeats_sent += hb->beats_sent();
        result.heartbeats_suppressed += hb->beats_suppressed();
      }
    }
  }
  if (const AdmissionController* admission = grid.gdqs()->admission()) {
    result.admission = admission->stats();
  }

  if (!run_status.ok()) {
    result.violations.push_back(
        StrCat("[termination] simulator did not drain: ",
               run_status.ToString(), " — repro: ", repro));
    return result;
  }

  result.workload = driver.Collect(&grid);
  result.completed = result.workload.trichotomy_ok;

  std::vector<std::string> violations;
  for (const DriverQueryRecord& record : result.workload.queries) {
    if (record.outcome == gqp::QueryOutcome::kUnresolved) {
      violations.push_back(StrCat(
          "[trichotomy] query ", record.query_id, " (tenant t",
          record.tenant, ", ", QueryKindName(record.kind), ", submitted t",
          record.submit_ms, ") drained without a terminal state: ",
          record.detail));
    }
  }

  // Per-completed-query correctness, under at-least-once bounds (one
  // evaluator crash is always injected mid-storm).
  const std::set<HostId> reported_failures = grid.gdqs()->reported_failures();
  for (const DriverQueryRecord& record : result.workload.queries) {
    if (record.outcome != gqp::QueryOutcome::kComplete) continue;
    Result<QueryResult> rows = grid.gdqs()->GetResult(record.query_id);
    if (!rows.ok()) {
      violations.push_back(StrCat("[results] completed query ",
                                  record.query_id, " has no result: ",
                                  rows.status().ToString()));
      continue;
    }
    Result<QueryStatsSnapshot> stats =
        grid.gdqs()->CollectStats(record.query_id);
    const uint64_t resent = stats.ok() ? stats->resent_tuples : 0;
    const size_t before = violations.size();
    if (record.kind == QueryKind::kScanAgg) {
      CheckAggregateResults(*interactions, rows->rows,
                            /*failures_injected=*/true, resent, &violations);
    } else {
      CheckResults(OracleRows(record.kind, *sequences, *interactions),
                   rows->rows, /*failures_injected=*/true, resent,
                   MaxOutputFanout(record.kind, *sequences, *interactions),
                   &violations);
    }
    CheckConservation(&grid, record.query_id, reported_failures, &violations);
    for (size_t v = before; v < violations.size(); ++v) {
      violations[v] += StrCat(" [q", record.query_id, "]");
    }
    result.per_query.push_back(QueryOutcome{
        record.query_id, record.kind, true, rows->rows.size(),
        record.latency_ms, stats.ok() ? stats->queued_bytes_peak : 0,
        stats.ok() ? stats->rounds_applied : 0});
  }

  // Admission accounting: the bounded queue must actually have been
  // bounded, every rejection the clients saw must match the controller's
  // own ledger, and nothing may be left admitted or queued after drain.
  if (result.admission.queue_peak >
      static_cast<size_t>(scenario.storm_queue_capacity)) {
    violations.push_back(StrCat(
        "[admission] queue peak ", result.admission.queue_peak,
        " exceeded the configured capacity ", scenario.storm_queue_capacity));
  }
  if (result.admission.rejected_queue_full + result.admission.shed_queued !=
      result.workload.rejected) {
    violations.push_back(StrCat(
        "[admission] controller counted ",
        result.admission.rejected_queue_full, " queue-full + ",
        result.admission.shed_queued, " shed rejections but clients saw ",
        result.workload.rejected));
  }
  if (const AdmissionController* admission = grid.gdqs()->admission()) {
    if (admission->live() != 0 || admission->queue_depth() != 0) {
      violations.push_back(StrCat(
          "[admission] drained simulation left live=", admission->live(),
          " queued=", admission->queue_depth()));
    }
  }

  for (std::string& v : violations) {
    result.violations.push_back(StrCat(v, " — repro: ", repro));
  }
  return result;
}

}  // namespace

std::string ChaosRunResult::Report() const {
  std::string out;
  if (!status.ok()) out = StrCat("run error: ", status.ToString(), "\n");
  for (const std::string& v : violations) out += v + "\n";
  return out;
}

ChaosRunResult RunScenario(const ChaosScenario& scenario,
                           const ChaosRunOptions& options) {
  if (scenario.tenant_storm) return RunTenantStorm(scenario, options);
  ChaosRunResult result;
  const std::string repro =
      ReproCommand(scenario.seed, scenario.profile, scenario.vectorized);

  GridOptions grid_options;
  grid_options.num_evaluators = scenario.num_evaluators;
  grid_options.evaluator_capacities = scenario.capacities;
  grid_options.link = scenario.initial_link;
  grid_options.adaptive = true;
  grid_options.med.window = scenario.med_window;
  grid_options.med.thres_m = scenario.thres_m;
  // Failure detection + reliable control plane run in EVERY chaos
  // scenario: crashes must be discovered through missed heartbeats, never
  // reported by the harness.
  grid_options.detect.enabled = true;
  grid_options.detect.heartbeat_interval_ms = scenario.heartbeat_interval_ms;
  grid_options.reliable.enabled = true;
  grid_options.loss_rate = scenario.loss_rate;
  grid_options.loss_seed = scenario.seed ^ 0x1055C0DEULL;
  grid_options.standby_enabled = scenario.standby;
  grid_options.shards = options.shards;
  grid_options.shard_rng_streams = options.shard_rng_streams;
  if (options.shards > 1) {
    // Conservative lookahead must lower-bound every latency the run will
    // ever see, including mid-run link shifts.
    double min_latency = scenario.initial_link.latency_ms;
    for (const LinkShiftEvent& ev : scenario.link_shifts) {
      min_latency = std::min(min_latency, ev.params.latency_ms);
    }
    grid_options.lookahead_override_ms = min_latency;
  }

  GridSetup grid(grid_options);
  result.status = grid.Initialize();
  if (!result.status.ok()) return result;

  ShardedSimulator* ssim = grid.sharded_simulator();
  EventTraceRecorder recorder(options.keep_trace);
  ShardedEventTraceRecorder sharded_recorder(options.keep_trace);
  if (ssim != nullptr) {
    sharded_recorder.Attach(ssim);
    ssim->set_max_events(options.max_events);
  } else {
    recorder.Attach(grid.simulator());
    grid.simulator()->set_max_events(options.max_events);
  }
  // Chaos events mutate state across hosts (link tables, down sets, node
  // kills); in a sharded run they execute as stop-the-world globals.
  const auto schedule_chaos = [&grid, ssim](double at_ms,
                                            std::function<void()> fn) {
    if (ssim != nullptr) {
      ssim->ScheduleGlobalAt(at_ms, std::move(fn));
    } else {
      grid.simulator()->Schedule(at_ms, std::move(fn));
    }
  };

  // Datasets, seeded from the scenario (same derivation as the experiment
  // harness so chaos results stay comparable to the paper runs).
  ProteinSequencesSpec seq_spec;
  seq_spec.num_rows = scenario.sequences;
  seq_spec.sequence_length = scenario.sequence_length;
  seq_spec.seed = scenario.seed;
  const TablePtr sequences = GenerateProteinSequences(seq_spec);
  ProteinInteractionsSpec inter_spec;
  inter_spec.num_rows = scenario.interactions;
  inter_spec.num_orfs = scenario.sequences;
  inter_spec.seed = scenario.seed + 1000003;
  const TablePtr interactions = GenerateProteinInteractions(inter_spec);

  result.status = grid.AddTable(sequences);
  if (!result.status.ok()) return result;
  result.status = grid.AddTable(interactions);
  if (!result.status.ok()) return result;
  result.status = grid.AddWebService("EntropyAnalyser", DataType::kDouble,
                                     scenario.ws_cost_ms);
  if (!result.status.ok()) return result;

  // Chaos schedule: perturbations, failures and link shifts fire as
  // simulator events at their scenario times.
  const std::string tag = PerturbTag(scenario.query);
  for (const PerturbationEvent& ev : scenario.perturbations) {
    if (ev.at_ms <= 0.0) {
      InstallPerturbation(&grid, ev, tag);
    } else {
      schedule_chaos(ev.at_ms,
                     [&grid, &ev, tag] { InstallPerturbation(&grid, ev, tag); });
    }
  }
  for (const FailureEvent& ev : scenario.failures) {
    schedule_chaos(ev.at_ms,
                   [&grid, &ev] { (void)grid.FailEvaluator(ev.evaluator); });
  }
  for (const LinkShiftEvent& ev : scenario.link_shifts) {
    schedule_chaos(ev.at_ms,
                   [&grid, &ev] { grid.network()->SetAllLinks(ev.params); });
  }
  for (const PartitionEvent& ev : scenario.partitions) {
    schedule_chaos(ev.at_ms, [&grid, &ev] {
      grid.network()->BeginPartition(grid.evaluator_node(ev.evaluator)->id());
    });
    schedule_chaos(ev.at_ms + ev.duration_ms, [&grid, &ev] {
      grid.network()->EndPartition(grid.evaluator_node(ev.evaluator)->id());
    });
  }
  for (const StallEvent& ev : scenario.stalls) {
    schedule_chaos(ev.at_ms, [&grid, &ev] {
      if (Heartbeater* hb = grid.heartbeater(ev.evaluator)) {
        hb->Stall(ev.at_ms + ev.duration_ms);
      }
    });
  }
  if (scenario.coordinator_kill) {
    schedule_chaos(scenario.coordinator_kill_at_ms,
                   [&grid] { (void)grid.FailCoordinator(); });
  }

  QueryOptions query_options;
  query_options.adaptivity.enabled = true;
  query_options.adaptivity.assessment = scenario.assessment;
  query_options.adaptivity.response = scenario.response;
  query_options.adaptivity.thres_a = scenario.thres_a;
  query_options.adaptivity.thres_m = scenario.thres_m;
  query_options.adaptivity.window = scenario.med_window;
  query_options.exec.m1_frequency = scenario.m1_frequency;
  query_options.exec.checkpoint_interval = scenario.checkpoint_interval;
  query_options.exec.buffer_tuples = scenario.buffer_tuples;
  query_options.exec.monitoring_enabled = true;
  query_options.exec.recovery_log_enabled = true;
  query_options.exec.flow_control_enabled = scenario.flow_control;
  query_options.exec.memory_budget_bytes = scenario.memory_budget_bytes;
  query_options.exec.vectorized_enabled = scenario.vectorized;
  query_options.exec.vector_batch_size = scenario.vector_batch_size;
  query_options.scheduler.num_evaluators = scenario.num_evaluators;
  query_options.deadline_ms = scenario.deadline_ms;

  Result<int> query = grid.gdqs()->SubmitQuery(QuerySql(scenario.query),
                                               query_options);
  if (!query.ok()) {
    result.status = query.status();
    return result;
  }

  // Concurrent queries (kMultiQuery only; the vector is empty in every
  // other profile, so legacy runs schedule zero extra events). Submission
  // happens at virtual time, while the base query is already executing.
  std::vector<int> extra_ids(scenario.extra_queries.size(), -1);
  for (size_t i = 0; i < scenario.extra_queries.size(); ++i) {
    const ConcurrentQuery& q = scenario.extra_queries[i];
    QueryOptions extra_options = query_options;
    // R2 cannot preserve correctness for the partitioned stateful join;
    // per-query override, same rule the generator applies to the base.
    if (q.kind == QueryKind::kQ2) {
      extra_options.adaptivity.response = ResponseType::kRetrospective;
    }
    // Submission only touches coordinator-host state (plus messages), so
    // in a sharded run it is an ordinary event on the coordinator's shard,
    // not a stop-the-world global.
    grid.SimForHost(0)->ScheduleAt(
        q.submit_at_ms, [&grid, &extra_ids, i, q, extra_options] {
          Result<int> id =
              grid.gdqs()->SubmitQuery(QuerySql(q.kind), extra_options);
          if (id.ok()) extra_ids[i] = *id;
        });
  }

  // --- invariant (d): termination --------------------------------------
  Status run_status;
  if (ssim != nullptr) {
    run_status = ssim->Run();
    ShardedEventTraceRecorder::Detach(ssim);
    sharded_recorder.Finalize();
    result.trace_hash = sharded_recorder.hash();
    result.trace_events = sharded_recorder.events();
    if (options.keep_trace) result.trace = sharded_recorder.trace();
    result.final_time_ms = ssim->Now();
  } else {
    run_status = grid.simulator()->Run();
    EventTraceRecorder::Detach(grid.simulator());
    result.trace_hash = recorder.hash();
    result.trace_events = recorder.events();
    if (options.keep_trace) result.trace = recorder.trace();
    result.final_time_ms = grid.simulator()->Now();
  }

  // After a takeover the standby is the authority for every original query
  // id (it proxies retried incarnations and serves mirrored results);
  // otherwise the primary GDQS answers directly. Invariant checks run
  // against the FINAL id — a retried query's executors live under its new
  // id, the released originals are gone.
  StandbyCoordinator* standby = grid.standby();
  const bool took_over = standby != nullptr && standby->TakenOver();
  const auto final_id = [&](int id) {
    return took_over ? standby->FinalQueryId(id) : id;
  };
  const auto query_complete = [&](int id) {
    return took_over ? standby->QueryComplete(id)
                     : grid.gdqs()->QueryComplete(id);
  };
  const auto execution_status = [&](int id) {
    return took_over ? standby->ExecutionStatus(id)
                     : grid.gdqs()->ExecutionStatus(id);
  };
  const auto get_result = [&](int id) {
    return took_over ? standby->GetResult(id) : grid.gdqs()->GetResult(id);
  };
  const auto collect_stats = [&](int id) {
    if (took_over && final_id(id) != id) {
      return standby->gdqs()->CollectStats(final_id(id));
    }
    return grid.gdqs()->CollectStats(id);
  };
  std::set<HostId> reported_failures = grid.gdqs()->reported_failures();
  if (standby != nullptr) {
    const auto& extra = standby->gdqs()->reported_failures();
    reported_failures.insert(extra.begin(), extra.end());
  }

  result.completed = query_complete(*query);

  // Control-plane counters (kept even on violation paths — they are the
  // first thing a red seed's diagnosis needs).
  result.net = grid.network()->stats();
  if (grid.bus()->reliable() != nullptr) {
    result.transport = grid.bus()->reliable()->stats();
  }
  if (grid.monitor() != nullptr) {
    result.detect = grid.monitor()->stats();
    for (int i = 0; i < scenario.num_evaluators; ++i) {
      if (const Heartbeater* hb = grid.heartbeater(i)) {
        result.heartbeats_sent += hb->beats_sent();
        result.heartbeats_suppressed += hb->beats_suppressed();
      }
    }
  }
  if (standby != nullptr) {
    result.takeover = standby->stats();
    if (const MirrorLog* log = grid.gdqs()->mirror_log()) {
      result.mirror_entries = log->entries_appended();
      result.mirror_acked = log->entries_truncated();
    }
    for (int host = 0; host < grid.num_hosts(); ++host) {
      Gqes* gqes = grid.gqes_on(static_cast<HostId>(host));
      if (gqes == nullptr) continue;
      result.stale_epoch_dropped += gqes->stats().stale_epoch_dropped;
      result.epoch_updates += gqes->stats().epoch_updates;
      for (const FragmentExecutor* exec : gqes->Executors()) {
        result.stale_epoch_dropped += exec->epoch_guard().stale_dropped();
      }
    }
  }

  if (!run_status.ok()) {
    result.violations.push_back(
        StrCat("[termination] simulator did not drain: ",
               run_status.ToString(), " — repro: ", repro,
               DumpExecutors(&grid, *query)));
    return result;
  }
  if (!result.completed) {
    result.violations.push_back(StrCat(
        "[termination] query never completed (events=",
        ssim != nullptr ? ssim->events_executed()
                        : grid.simulator()->events_executed(),
        ", t=", result.final_time_ms, " ms) — repro: ", repro,
        DumpExecutors(&grid, *query)));
    return result;
  }
  const Status exec_status = execution_status(*query);
  if (!exec_status.ok()) {
    result.violations.push_back(
        StrCat("[termination] execution error: ", exec_status.ToString(),
               " — repro: ", repro));
    return result;
  }

  Result<QueryResult> query_result = get_result(*query);
  if (!query_result.ok()) {
    result.status = query_result.status();
    return result;
  }
  result.response_ms = query_result->response_time_ms;
  for (const Tuple& row : query_result->rows) {
    result.result_rows.push_back(row.ToString());
  }
  Result<QueryStatsSnapshot> stats = collect_stats(*query);
  if (stats.ok()) result.stats = *stats;
  result.per_query.push_back(QueryOutcome{
      *query, scenario.query, true, query_result->rows.size(),
      result.response_ms, result.stats.queued_bytes_peak,
      result.stats.rounds_applied});

  // --- invariants (a) + (b) + (e) ---------------------------------------
  std::vector<std::string> violations;
  const std::multiset<std::string> oracle =
      OracleRows(scenario.query, *sequences, *interactions);
  // A confirmed false suspicion triggers the same recovery resends as a
  // real crash, so it widens the at-least-once budget the same way.
  const bool failures_injected = !scenario.failures.empty() ||
                                 result.detect.failures_confirmed > 0;
  // Bounds need the largest tuple the pipeline can carry (a join output
  // concatenates one row of each input before projection).
  size_t max_row = 0;
  size_t max_inter = 0;
  uint64_t dataset_bytes = 0;
  if (scenario.flow_control) {
    for (const Tuple& row : sequences->rows()) {
      max_row = std::max(max_row, row.WireSize());
      dataset_bytes += row.WireSize();
    }
    for (const Tuple& row : interactions->rows()) {
      max_inter = std::max(max_inter, row.WireSize());
      dataset_bytes += row.WireSize();
    }
  }
  CheckResults(oracle, query_result->rows, failures_injected,
               result.stats.resent_tuples,
               MaxOutputFanout(scenario.query, *sequences, *interactions),
               &violations);
  CheckConservation(&grid, final_id(*query), reported_failures, &violations);
  CheckDetection(grid.monitor(), scenario, &violations);
  if (scenario.flow_control) {
    CheckBoundedMemory(
        &grid, final_id(*query), max_row + max_inter,
        MaxOutputFanout(scenario.query, *sequences, *interactions),
        dataset_bytes, &violations);
  }

  // Every concurrent query is held to the same invariants: correct result
  // multiset, tuple conservation and bounded memory, all scoped per query.
  for (size_t i = 0; i < scenario.extra_queries.size(); ++i) {
    const ConcurrentQuery& q = scenario.extra_queries[i];
    QueryOutcome outcome;
    outcome.query_id = extra_ids[i];
    outcome.kind = q.kind;
    const size_t before = violations.size();
    if (extra_ids[i] < 0 || !query_complete(extra_ids[i])) {
      violations.push_back(StrCat("[termination] concurrent query ", i + 1,
                                  " never completed"));
    } else if (const Status st = execution_status(extra_ids[i]); !st.ok()) {
      violations.push_back(StrCat(
          "[termination] concurrent query execution error: ", st.ToString()));
    } else {
      outcome.completed = true;
      Result<QueryResult> extra_result = get_result(extra_ids[i]);
      Result<QueryStatsSnapshot> extra_stats = collect_stats(extra_ids[i]);
      if (extra_result.ok() && extra_stats.ok()) {
        outcome.rows = extra_result->rows.size();
        outcome.response_ms = extra_result->response_time_ms;
        outcome.queued_bytes_peak = extra_stats->queued_bytes_peak;
        outcome.rounds_applied = extra_stats->rounds_applied;
        CheckResults(OracleRows(q.kind, *sequences, *interactions),
                     extra_result->rows, failures_injected,
                     extra_stats->resent_tuples,
                     MaxOutputFanout(q.kind, *sequences, *interactions),
                     &violations);
        CheckConservation(&grid, final_id(extra_ids[i]), reported_failures,
                          &violations);
        if (scenario.flow_control) {
          CheckBoundedMemory(&grid, final_id(extra_ids[i]),
                             max_row + max_inter,
                             MaxOutputFanout(q.kind, *sequences,
                                             *interactions),
                             dataset_bytes, &violations);
        }
      }
    }
    for (size_t v = before; v < violations.size(); ++v) {
      violations[v] += StrCat(" [q", extra_ids[i], "]");
    }
    result.per_query.push_back(outcome);
  }

  for (std::string& v : violations) {
    result.violations.push_back(StrCat(v, " — repro: ", repro));
  }
  return result;
}

}  // namespace chaos
}  // namespace gqp
