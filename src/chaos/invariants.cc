#include "chaos/invariants.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/strings.h"
#include "storage/datagen.h"

namespace gqp {
namespace chaos {

namespace {

/// First few elements of a container, for violation messages.
template <typename Container>
std::string Preview(const Container& items, size_t limit = 8) {
  std::string out = "[";
  size_t shown = 0;
  for (const auto& item : items) {
    if (shown == limit) {
      out += StrCat(", ... (", items.size(), " total)");
      break;
    }
    if (shown > 0) out += ", ";
    out += StrCat(item);
    ++shown;
  }
  out += "]";
  return out;
}

}  // namespace

std::multiset<std::string> OracleRows(QueryKind query, const Table& sequences,
                                      const Table& interactions) {
  std::multiset<std::string> oracle;
  if (query == QueryKind::kQ1) {
    const SchemaPtr schema = MakeSchema({{"e", DataType::kDouble}});
    for (const Tuple& row : sequences.rows()) {
      oracle.insert(
          Tuple(schema, {Value(ShannonEntropy(row[1].AsString()))})
              .ToString());
    }
    return oracle;
  }
  if (query == QueryKind::kScanAgg) {
    // SA: select i.orf1, count(*) from interactions i group by i.orf1.
    const SchemaPtr schema = MakeSchema(
        {{"orf1", DataType::kString}, {"count", DataType::kInt64}});
    std::map<std::string, int64_t> counts;
    for (const Tuple& row : interactions.rows()) ++counts[row[0].AsString()];
    for (const auto& [orf, count] : counts) {
      oracle.insert(
          Tuple(schema, {Value(orf), Value(count)}).ToString());
    }
    return oracle;
  }
  // Q2: select i.orf2 from sequences p, interactions i where i.orf1 = p.orf.
  std::multiset<std::string> orfs;
  for (const Tuple& row : sequences.rows()) orfs.insert(row[0].AsString());
  for (const Tuple& row : interactions.rows()) {
    const size_t matches = orfs.count(row[0].AsString());
    for (size_t i = 0; i < matches; ++i) {
      oracle.insert(StrCat("[", row[1].AsString(), "]"));
    }
  }
  return oracle;
}

void CheckAggregateResults(const Table& interactions,
                           const std::vector<Tuple>& actual,
                           bool failures_injected, uint64_t resent_tuples,
                           std::vector<std::string>* violations) {
  std::map<std::string, int64_t> want;
  for (const Tuple& row : interactions.rows()) ++want[row[0].AsString()];
  std::map<std::string, int64_t> got;
  for (const Tuple& row : actual) got[row[0].AsString()] += row[1].AsInt64();

  std::vector<std::string> missing, unexpected;
  for (const auto& [orf, count] : want) {
    if (got.find(orf) == got.end()) missing.push_back(orf);
  }
  for (const auto& [orf, count] : got) {
    if (want.find(orf) == want.end()) unexpected.push_back(orf);
  }
  if (!missing.empty() || !unexpected.empty()) {
    violations->push_back(StrCat(
        "[results] aggregate group set diverged: missing=", Preview(missing),
        " unexpected=", Preview(unexpected)));
    return;
  }
  if (!failures_injected && resent_tuples == 0) {
    // Exact run: every count must match the oracle precisely.
    for (const auto& [orf, count] : want) {
      if (got[orf] != count) {
        violations->push_back(StrCat("[results] aggregate count for group '",
                                     orf, "' is ", got[orf], ", oracle says ",
                                     count, " (no replays to excuse it)"));
        return;
      }
    }
    return;
  }
  // At-least-once run: replayed inputs can only INFLATE counts, and the
  // total inflation across groups is bounded by the replay count.
  int64_t inflation = 0;
  for (const auto& [orf, count] : want) {
    if (got[orf] < count) {
      violations->push_back(
          StrCat("[results] aggregate count for group '", orf, "' is ",
                 got[orf], ", below the oracle's ", count,
                 " (at-least-once must never lose inputs)"));
      return;
    }
    inflation += got[orf] - count;
  }
  if (inflation > static_cast<int64_t>(resent_tuples)) {
    violations->push_back(
        StrCat("[results] aggregate counts inflated by ", inflation,
               " but only ", resent_tuples, " tuples were replayed"));
  }
}

size_t MaxOutputFanout(QueryKind query, const Table& sequences,
                       const Table& interactions) {
  // Q1 maps one input to one output; a replayed aggregate input touches
  // exactly one group row.
  if (query == QueryKind::kQ1 || query == QueryKind::kScanAgg) return 1;
  // A replayed probe (interaction) tuple re-emits one row per build tuple
  // sharing its key; a replayed build (sequence) tuple can at worst
  // re-enable every interaction row of its orf.
  std::unordered_map<std::string, size_t> seq_by_orf;
  for (const Tuple& row : sequences.rows()) ++seq_by_orf[row[0].AsString()];
  std::unordered_map<std::string, size_t> inter_by_orf;
  for (const Tuple& row : interactions.rows()) {
    ++inter_by_orf[row[0].AsString()];
  }
  size_t fanout = 1;
  for (const auto& [orf, count] : seq_by_orf) fanout = std::max(fanout, count);
  for (const auto& [orf, count] : inter_by_orf) {
    fanout = std::max(fanout, count);
  }
  return fanout;
}

void CheckResults(const std::multiset<std::string>& oracle,
                  const std::vector<Tuple>& actual, bool failures_injected,
                  uint64_t resent_tuples, size_t max_fanout,
                  std::vector<std::string>* violations) {
  std::multiset<std::string> got;
  for (const Tuple& t : actual) got.insert(t.ToString());

  // Nothing may ever be lost, failures or not.
  std::vector<std::string> missing;
  for (auto it = oracle.begin(); it != oracle.end();
       it = oracle.upper_bound(*it)) {
    const size_t want = oracle.count(*it);
    const size_t have = got.count(*it);
    if (have < want) {
      missing.push_back(StrCat(*it, " (want ", want, ", got ", have, ")"));
    }
  }
  if (!missing.empty()) {
    violations->push_back(StrCat("[results] lost result rows: ",
                                 Preview(missing)));
  }

  // Extras: exact equality without failures; with failures, at most the
  // replayed tuples times their worst-case fanout.
  std::vector<std::string> extra;
  for (auto it = got.begin(); it != got.end(); it = got.upper_bound(*it)) {
    const size_t want = oracle.count(*it);
    const size_t have = got.count(*it);
    if (have > want) {
      extra.push_back(StrCat(*it, " (want ", want, ", got ", have, ")"));
    }
  }
  const uint64_t budget =
      failures_injected ? resent_tuples * static_cast<uint64_t>(max_fanout)
                        : 0;
  if (got.size() > oracle.size() + budget) {
    violations->push_back(
        StrCat("[results] ", got.size() - oracle.size(),
               " duplicate rows exceed the at-least-once budget of ", budget,
               " (resent=", resent_tuples, ", fanout=", max_fanout,
               "): ", Preview(extra)));
  } else if (!failures_injected && !extra.empty()) {
    violations->push_back(StrCat(
        "[results] duplicated rows without any failure injected "
        "(redistribution must be exactly-once): ",
        Preview(extra)));
  }
}

void CheckConservation(GridSetup* grid, int query_id,
                       const std::set<HostId>& reported_failures,
                       std::vector<std::string>* violations) {
  // Gather every fragment instance of the query, hosts in id order.
  struct Instance {
    FragmentExecutor* exec = nullptr;
    /// Machine still running (its counted sends were delivered).
    bool alive = false;
    /// Alive AND never reported failed — only these instances' protocol
    /// bookkeeping is required to balance; a falsely-suspected one was
    /// fenced mid-flight and recovery rewrote who owns its work.
    bool live = false;
  };
  std::map<std::string, Instance> instances;
  const int num_hosts = grid->num_hosts();
  for (int host = 0; host < num_hosts; ++host) {
    Gqes* gqes = grid->gqes_on(static_cast<HostId>(host));
    if (gqes == nullptr) continue;
    for (FragmentExecutor* exec : gqes->Executors()) {
      if (exec->plan().id.query != query_id) continue;
      const bool alive = !exec->node()->dead();
      instances[exec->plan().id.ToString()] = Instance{
          exec, alive,
          alive && reported_failures.count(static_cast<HostId>(host)) == 0};
    }
  }

  // Producer-side: routing conservation, log drain, and the expected
  // delivery count per consumer instance.
  std::map<std::string, uint64_t> expected_min;
  std::map<std::string, uint64_t> expected_max;
  for (const auto& [key, inst] : instances) {
    const ExchangeProducer* producer = inst.exec->producer();
    if (producer == nullptr) continue;
    const ProducerStats& ps = producer->stats();

    uint64_t routed = 0;
    for (const uint64_t n : ps.tuples_to_consumer) routed += n;
    if (inst.live && routed != ps.tuples_offered + ps.resent_tuples) {
      violations->push_back(StrCat(
          "[conservation] producer ", key, ": routed ", routed,
          " != offered ", ps.tuples_offered, " + resent ", ps.resent_tuples));
    }

    const RecoveryLogStats& ls = producer->log().stats();
    if (inst.live && ls.appended > 0 &&
        ls.appended != ps.tuples_offered + ps.resent_tuples) {
      violations->push_back(StrCat(
          "[conservation] producer ", key, ": recovery log appended ",
          ls.appended, " != offered ", ps.tuples_offered, " + resent ",
          ps.resent_tuples));
    }
    if (inst.live && producer->eos_sent() && !producer->log().empty()) {
      // Entries whose consumer died UNREPORTED (e.g. a crash after the
      // detector deactivated) are exempt: their acks were abandoned with
      // the host and the retained copy is exactly the at-least-once
      // insurance the log exists for. Entries owned by a protocol-live
      // consumer are genuinely stranded — the transport guarantees their
      // acks' delivery.
      std::vector<uint64_t> stranded;
      for (const auto& [seq, consumer] : producer->log().PendingConsumers()) {
        bool consumer_live = true;
        if (inst.exec->plan().output.has_value() && consumer >= 0) {
          const auto& outs = inst.exec->plan().output->consumers;
          if (static_cast<size_t>(consumer) < outs.size()) {
            const auto cit = instances.find(outs[consumer].id.ToString());
            consumer_live = cit == instances.end() || cit->second.live;
          }
        }
        if (consumer_live) stranded.push_back(seq);
      }
      if (!stranded.empty()) {
        violations->push_back(StrCat(
            "[conservation] producer ", key, ": ", stranded.size(),
            " tuples stranded in the recovery log after completion, seqs ",
            Preview(stranded)));
      }
    }

    if (!inst.exec->plan().output.has_value()) continue;
    const auto& consumers = inst.exec->plan().output->consumers;
    for (size_t c = 0;
         c < consumers.size() && c < ps.tuples_sent_to_consumer.size(); ++c) {
      // An alive producer's counted sends are guaranteed delivered (the
      // reliable transport retransmits until acked; loss-free raw sends
      // always arrive); a dead one's may have evaporated mid-flight.
      if (inst.alive) {
        expected_min[consumers[c].id.ToString()] +=
            ps.tuples_sent_to_consumer[c];
      }
      expected_max[consumers[c].id.ToString()] +=
          ps.tuples_sent_to_consumer[c];
    }
  }

  // Consumer-side: every tuple sent to a surviving consumer arrived, and
  // no sequence number was processed by two surviving consumers.
  std::map<std::string, std::map<uint64_t, int>> processed_by_producer;
  for (const auto& [key, inst] : instances) {
    if (!inst.live) continue;
    const auto lo_it = expected_min.find(key);
    const auto hi_it = expected_max.find(key);
    const uint64_t lo = lo_it == expected_min.end() ? 0 : lo_it->second;
    const uint64_t hi = hi_it == expected_max.end() ? 0 : hi_it->second;
    const uint64_t received = inst.exec->stats().tuples_received;
    if (received < lo || received > hi) {
      violations->push_back(StrCat(
          "[conservation] consumer ", key, ": received ", received,
          " tuples but producers sent ", lo == hi ? StrCat(lo)
                                                  : StrCat(lo, "..", hi)));
    }
    const size_t num_ports = inst.exec->plan().inputs.size();
    for (size_t port = 0; port < num_ports; ++port) {
      for (const auto& [producer_key, seqs] :
           inst.exec->ProcessedSeqs(static_cast<int>(port))) {
        for (const uint64_t seq : seqs) {
          const int count = ++processed_by_producer[producer_key][seq];
          if (count == 2) {
            violations->push_back(StrCat(
                "[conservation] seq ", seq, " of producer ", producer_key,
                " processed by two surviving consumers"));
          }
        }
      }
    }
  }
}

void CheckBoundedMemory(GridSetup* grid, int query_id,
                        size_t max_tuple_wire_bytes, size_t max_fanout,
                        uint64_t dataset_wire_bytes,
                        std::vector<std::string>* violations) {
  const int num_hosts = grid->num_hosts();
  std::vector<FragmentExecutor*> execs;
  uint64_t total_recall_bytes = 0;
  for (int host = 0; host < num_hosts; ++host) {
    Gqes* gqes = grid->gqes_on(static_cast<HostId>(host));
    if (gqes == nullptr) continue;
    for (FragmentExecutor* exec : gqes->Executors()) {
      if (exec->plan().id.query != query_id) continue;
      execs.push_back(exec);
      if (exec->producer() != nullptr) {
        total_recall_bytes +=
            exec->producer()->credit().stats().total_recall_bytes;
      }
    }
  }

  for (FragmentExecutor* exec : execs) {
    const ExecConfig& config = exec->plan().config;
    if (!config.flow_control_enabled || config.credit_window_bytes == 0) {
      continue;
    }
    const std::string key = exec->plan().id.ToString();
    const uint64_t window = config.credit_window_bytes;
    // Overshoot of one gated driver step: the credit gate is consulted
    // before a step starts, and one step routes up to `max_fanout` outputs
    // per input tuple before the gate is seen again. A scalar step covers
    // one tuple; a vectorized step covers a whole batch (D13).
    const uint64_t step_tuples =
        config.vectorized_enabled
            ? std::max<uint64_t>(config.vector_batch_size, 1)
            : 1;
    const uint64_t slack = step_tuples * static_cast<uint64_t>(max_fanout) *
                           (12 + max_tuple_wire_bytes);

    if (exec->producer() != nullptr) {
      const CreditLedgerStats& cs = exec->producer()->credit().stats();
      // Recall resends of successive rounds bypass the gate and may all be
      // in flight at once, so the whole cumulative recall traffic is
      // exempt — the gate only governs ordinary sends.
      const uint64_t bound = window + slack + cs.total_recall_bytes;
      if (cs.peak_outstanding_bytes > bound) {
        violations->push_back(StrCat(
            "[memory] producer ", key, ": peak outstanding credit ",
            cs.peak_outstanding_bytes, " bytes exceeds window ", window,
            " + slack ", slack, " + recall ", cs.total_recall_bytes));
      }
      const RecoveryLogStats& ls = exec->producer()->log().stats();
      const uint64_t log_cap =
          (static_cast<uint64_t>(max_fanout) + 2) * dataset_wire_bytes + 1024;
      if (ls.bytes_peak > log_cap) {
        violations->push_back(
            StrCat("[memory] producer ", key, ": recovery log peaked at ",
                   ls.bytes_peak, " bytes, over the dataset-derived cap ",
                   log_cap));
      }
    }

    size_t max_producers = 0;
    for (const InputWiring& input : exec->plan().inputs) {
      max_producers =
          std::max(max_producers, static_cast<size_t>(input.num_producers));
    }
    if (max_producers > 0) {
      const uint64_t bound =
          static_cast<uint64_t>(max_producers) * (window + slack) +
          total_recall_bytes;
      if (exec->stats().queued_bytes_peak > bound) {
        violations->push_back(StrCat(
            "[memory] consumer ", key, ": port held ",
            exec->stats().queued_bytes_peak, " bytes at peak, over ",
            max_producers, " producers x (window ", window, " + slack ",
            slack, ") + recall ", total_recall_bytes));
      }
    }
  }
}

void CheckDetection(const HeartbeatMonitor* monitor,
                    const ChaosScenario& scenario,
                    std::vector<std::string>* violations) {
  if (monitor == nullptr) return;
  const double bound_ms = monitor->MaxDetectionLatencyMs();
  for (const FailureEvent& ev : scenario.failures) {
    const HostId host = static_cast<HostId>(2 + ev.evaluator);
    const double deadline = ev.at_ms + bound_ms;
    const std::optional<SimTime> confirmed = monitor->LastConfirmMs(host);
    if (confirmed.has_value() && *confirmed <= deadline) continue;
    // The query may simply have finished first: once the detector is
    // deactivated nothing beats and nothing can (or needs to) confirm.
    if (!monitor->active() && monitor->last_deactivate_ms() <= deadline) {
      continue;
    }
    // The last-survivor guard withholds confirmation on purpose.
    if (monitor->ConfirmSuppressed(host)) continue;
    violations->push_back(StrCat(
        "[detection] evaluator ", ev.evaluator, " (host ", host,
        ") crashed at ", ev.at_ms, " ms but was ",
        confirmed.has_value() ? StrCat("confirmed at ", *confirmed)
                              : std::string("never confirmed"),
        "; bound is ", deadline, " ms (latency budget ", bound_ms, " ms)"));
  }
}

}  // namespace chaos
}  // namespace gqp
