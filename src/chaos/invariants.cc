#include "chaos/invariants.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/strings.h"
#include "storage/datagen.h"

namespace gqp {
namespace chaos {

namespace {

/// First few elements of a container, for violation messages.
template <typename Container>
std::string Preview(const Container& items, size_t limit = 8) {
  std::string out = "[";
  size_t shown = 0;
  for (const auto& item : items) {
    if (shown == limit) {
      out += StrCat(", ... (", items.size(), " total)");
      break;
    }
    if (shown > 0) out += ", ";
    out += StrCat(item);
    ++shown;
  }
  out += "]";
  return out;
}

}  // namespace

std::multiset<std::string> OracleRows(QueryKind query, const Table& sequences,
                                      const Table& interactions) {
  std::multiset<std::string> oracle;
  if (query == QueryKind::kQ1) {
    const SchemaPtr schema = MakeSchema({{"e", DataType::kDouble}});
    for (const Tuple& row : sequences.rows()) {
      oracle.insert(
          Tuple(schema, {Value(ShannonEntropy(row[1].AsString()))})
              .ToString());
    }
    return oracle;
  }
  // Q2: select i.orf2 from sequences p, interactions i where i.orf1 = p.orf.
  std::multiset<std::string> orfs;
  for (const Tuple& row : sequences.rows()) orfs.insert(row[0].AsString());
  for (const Tuple& row : interactions.rows()) {
    const size_t matches = orfs.count(row[0].AsString());
    for (size_t i = 0; i < matches; ++i) {
      oracle.insert(StrCat("[", row[1].AsString(), "]"));
    }
  }
  return oracle;
}

size_t MaxOutputFanout(QueryKind query, const Table& sequences,
                       const Table& interactions) {
  if (query == QueryKind::kQ1) return 1;
  // A replayed probe (interaction) tuple re-emits one row per build tuple
  // sharing its key; a replayed build (sequence) tuple can at worst
  // re-enable every interaction row of its orf.
  std::unordered_map<std::string, size_t> seq_by_orf;
  for (const Tuple& row : sequences.rows()) ++seq_by_orf[row[0].AsString()];
  std::unordered_map<std::string, size_t> inter_by_orf;
  for (const Tuple& row : interactions.rows()) {
    ++inter_by_orf[row[0].AsString()];
  }
  size_t fanout = 1;
  for (const auto& [orf, count] : seq_by_orf) fanout = std::max(fanout, count);
  for (const auto& [orf, count] : inter_by_orf) {
    fanout = std::max(fanout, count);
  }
  return fanout;
}

void CheckResults(const std::multiset<std::string>& oracle,
                  const std::vector<Tuple>& actual, bool failures_injected,
                  uint64_t resent_tuples, size_t max_fanout,
                  std::vector<std::string>* violations) {
  std::multiset<std::string> got;
  for (const Tuple& t : actual) got.insert(t.ToString());

  // Nothing may ever be lost, failures or not.
  std::vector<std::string> missing;
  for (auto it = oracle.begin(); it != oracle.end();
       it = oracle.upper_bound(*it)) {
    const size_t want = oracle.count(*it);
    const size_t have = got.count(*it);
    if (have < want) {
      missing.push_back(StrCat(*it, " (want ", want, ", got ", have, ")"));
    }
  }
  if (!missing.empty()) {
    violations->push_back(StrCat("[results] lost result rows: ",
                                 Preview(missing)));
  }

  // Extras: exact equality without failures; with failures, at most the
  // replayed tuples times their worst-case fanout.
  std::vector<std::string> extra;
  for (auto it = got.begin(); it != got.end(); it = got.upper_bound(*it)) {
    const size_t want = oracle.count(*it);
    const size_t have = got.count(*it);
    if (have > want) {
      extra.push_back(StrCat(*it, " (want ", want, ", got ", have, ")"));
    }
  }
  const uint64_t budget =
      failures_injected ? resent_tuples * static_cast<uint64_t>(max_fanout)
                        : 0;
  if (got.size() > oracle.size() + budget) {
    violations->push_back(
        StrCat("[results] ", got.size() - oracle.size(),
               " duplicate rows exceed the at-least-once budget of ", budget,
               " (resent=", resent_tuples, ", fanout=", max_fanout,
               "): ", Preview(extra)));
  } else if (!failures_injected && !extra.empty()) {
    violations->push_back(StrCat(
        "[results] duplicated rows without any failure injected "
        "(redistribution must be exactly-once): ",
        Preview(extra)));
  }
}

void CheckConservation(GridSetup* grid, int query_id,
                       std::vector<std::string>* violations) {
  // Gather every fragment instance of the query, hosts in id order.
  struct Instance {
    FragmentExecutor* exec = nullptr;
    bool live = false;
  };
  std::map<std::string, Instance> instances;
  const int num_hosts = 2 + grid->num_evaluators();
  for (int host = 0; host < num_hosts; ++host) {
    Gqes* gqes = grid->gqes_on(static_cast<HostId>(host));
    if (gqes == nullptr) continue;
    for (FragmentExecutor* exec : gqes->Executors()) {
      if (exec->plan().id.query != query_id) continue;
      instances[exec->plan().id.ToString()] =
          Instance{exec, !exec->node()->dead()};
    }
  }

  // Producer-side: routing conservation, log drain, and the expected
  // delivery count per consumer instance.
  std::map<std::string, uint64_t> expected_received;
  for (const auto& [key, inst] : instances) {
    const ExchangeProducer* producer = inst.exec->producer();
    if (producer == nullptr) continue;
    const ProducerStats& ps = producer->stats();

    uint64_t routed = 0;
    for (const uint64_t n : ps.tuples_to_consumer) routed += n;
    if (inst.live && routed != ps.tuples_offered + ps.resent_tuples) {
      violations->push_back(StrCat(
          "[conservation] producer ", key, ": routed ", routed,
          " != offered ", ps.tuples_offered, " + resent ", ps.resent_tuples));
    }

    const RecoveryLogStats& ls = producer->log().stats();
    if (inst.live && ls.appended > 0 &&
        ls.appended != ps.tuples_offered + ps.resent_tuples) {
      violations->push_back(StrCat(
          "[conservation] producer ", key, ": recovery log appended ",
          ls.appended, " != offered ", ps.tuples_offered, " + resent ",
          ps.resent_tuples));
    }
    if (inst.live && producer->eos_sent() && !producer->log().empty()) {
      violations->push_back(StrCat(
          "[conservation] producer ", key, ": ", producer->log().size(),
          " tuples stranded in the recovery log after completion, seqs ",
          Preview(producer->log().PendingSeqs())));
    }

    if (!inst.exec->plan().output.has_value()) continue;
    const auto& consumers = inst.exec->plan().output->consumers;
    for (size_t c = 0;
         c < consumers.size() && c < ps.tuples_sent_to_consumer.size(); ++c) {
      expected_received[consumers[c].id.ToString()] +=
          ps.tuples_sent_to_consumer[c];
    }
  }

  // Consumer-side: every tuple sent to a surviving consumer arrived, and
  // no sequence number was processed by two surviving consumers.
  std::map<std::string, std::map<uint64_t, int>> processed_by_producer;
  for (const auto& [key, inst] : instances) {
    if (!inst.live) continue;
    const auto it = expected_received.find(key);
    const uint64_t expected =
        it == expected_received.end() ? 0 : it->second;
    if (inst.exec->stats().tuples_received != expected) {
      violations->push_back(StrCat(
          "[conservation] consumer ", key, ": received ",
          inst.exec->stats().tuples_received, " tuples but producers sent ",
          expected));
    }
    const size_t num_ports = inst.exec->plan().inputs.size();
    for (size_t port = 0; port < num_ports; ++port) {
      for (const auto& [producer_key, seqs] :
           inst.exec->ProcessedSeqs(static_cast<int>(port))) {
        for (const uint64_t seq : seqs) {
          const int count = ++processed_by_producer[producer_key][seq];
          if (count == 2) {
            violations->push_back(StrCat(
                "[conservation] seq ", seq, " of producer ", producer_key,
                " processed by two surviving consumers"));
          }
        }
      }
    }
  }
}

}  // namespace chaos
}  // namespace gqp
