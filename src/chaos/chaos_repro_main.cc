// chaos_repro --seed=N
//   [--lossy|--slow-consumer|--memory-squeeze|--multi-query] [--trace]
//
// Replays one chaos scenario and prints its description, invariant
// violations, control-plane counters and trace fingerprint. Runs the
// scenario twice to also check invariant (c): identical seeds must produce
// byte-identical event traces. `--lossy` selects the lossy-network profile
// (message loss, partitions, heartbeat stalls) of the same seed. Exit code
// 0 iff every invariant holds.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/runner.h"
#include "chaos/trace.h"
#include "common/logging.h"

namespace {

/// Parses a full decimal seed; rejects empty or trailing garbage (a typo
/// must not silently replay seed 0).
bool ParseSeed(const char* text, uint64_t* seed) {
  if (*text == '\0') return false;
  char* end = nullptr;
  *seed = std::strtoull(text, &end, 10);
  return *end == '\0';
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --seed=N "
      "[--lossy|--slow-consumer|--memory-squeeze|--multi-query|"
      "--coordinator-kill|--tenant-storm] [--trace]\n"
      "  --seed=N          scenario seed to replay (required)\n"
      "  --lossy           lossy-network profile (loss, partitions, "
      "stalls)\n"
      "  --slow-consumer   sustained CPU sag on one evaluator, flow "
      "control on\n"
      "  --memory-squeeze  standard chaos under a tight memory budget\n"
      "  --multi-query     standard chaos with several overlapping "
      "queries\n"
      "  --coordinator-kill  crash the primary coordinator; a standby "
      "GDQS takes over (D14)\n"
      "  --tenant-storm    open-loop multi-tenant overload under GDQS "
      "admission control (D16)\n"
      "  --no-flow-control force flow control off (A/B against a flow-"
      "control profile)\n"
      "  --vectorized      batch-at-a-time operator execution (D13)\n"
      "  --shards=N        run the conservative sharded kernel with N "
      "event shards (D15)\n"
      "  --sequential      force the classic sequential kernel (default)\n"
      "  --trace           dump the full event trace of the first run\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 0;
  bool have_seed = false;
  bool dump_trace = false;
  bool no_flow_control = false;
  bool vectorized = false;
  int shards = 1;
  gqp::chaos::ChaosProfile profile = gqp::chaos::ChaosProfile::kStandard;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseSeed(arg + 7, &seed)) {
        std::fprintf(stderr, "invalid seed: '%s'\n", arg + 7);
        return 2;
      }
      have_seed = true;
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      if (!ParseSeed(argv[++i], &seed)) {
        std::fprintf(stderr, "invalid seed: '%s'\n", argv[i]);
        return 2;
      }
      have_seed = true;
    } else if (std::strcmp(arg, "--lossy") == 0) {
      profile = gqp::chaos::ChaosProfile::kLossy;
    } else if (std::strcmp(arg, "--slow-consumer") == 0) {
      profile = gqp::chaos::ChaosProfile::kSlowConsumer;
    } else if (std::strcmp(arg, "--memory-squeeze") == 0) {
      profile = gqp::chaos::ChaosProfile::kMemorySqueeze;
    } else if (std::strcmp(arg, "--multi-query") == 0) {
      profile = gqp::chaos::ChaosProfile::kMultiQuery;
    } else if (std::strcmp(arg, "--coordinator-kill") == 0) {
      profile = gqp::chaos::ChaosProfile::kCoordinatorKill;
    } else if (std::strcmp(arg, "--tenant-storm") == 0) {
      profile = gqp::chaos::ChaosProfile::kTenantStorm;
    } else if (std::strcmp(arg, "--no-flow-control") == 0) {
      no_flow_control = true;
    } else if (std::strcmp(arg, "--vectorized") == 0) {
      vectorized = true;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = std::atoi(arg + 9);
      if (shards < 1) {
        std::fprintf(stderr, "invalid shard count: '%s'\n", arg + 9);
        return 2;
      }
    } else if (std::strcmp(arg, "--sequential") == 0) {
      shards = 1;
    } else if (std::strcmp(arg, "--trace") == 0) {
      dump_trace = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      gqp::Logger::SetLevel(gqp::LogLevel::kDebug);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (!have_seed) {
    Usage(argv[0]);
    return 2;
  }

  gqp::chaos::ChaosScenario scenario =
      gqp::chaos::GenerateScenario(seed, profile);
  if (no_flow_control) {
    scenario.flow_control = false;
    scenario.memory_budget_bytes = 0;
  }
  if (vectorized) scenario.vectorized = true;
  std::printf("%s\n", scenario.Describe().c_str());

  gqp::chaos::ChaosRunOptions options;
  options.keep_trace = true;
  options.shards = shards;
  if (shards > 1) std::printf("kernel: %d event shards (D15)\n", shards);
  const gqp::chaos::ChaosRunResult first =
      gqp::chaos::RunScenario(scenario, options);
  const gqp::chaos::ChaosRunResult second =
      gqp::chaos::RunScenario(scenario, options);

  std::printf("run 1: events=%llu hash=%016llx rows=%zu t=%.3f ms\n",
              static_cast<unsigned long long>(first.trace_events),
              static_cast<unsigned long long>(first.trace_hash),
              first.result_rows.size(), first.final_time_ms);
  std::printf(
      "stats: rounds=%llu/%llu resent=%llu discarded=%llu "
      "med=%llu proposals=%llu\n",
      static_cast<unsigned long long>(first.stats.rounds_applied),
      static_cast<unsigned long long>(first.stats.rounds_started),
      static_cast<unsigned long long>(first.stats.resent_tuples),
      static_cast<unsigned long long>(first.stats.discarded_tuples),
      static_cast<unsigned long long>(first.stats.med_notifications),
      static_cast<unsigned long long>(first.stats.diagnoser_proposals));
  std::printf(
      "detect: beats=%llu/%llu suspected=%llu cleared=%llu confirmed=%llu "
      "readmitted=%llu stale=%llu suppressed=%llu\n",
      static_cast<unsigned long long>(first.detect.heartbeats_received),
      static_cast<unsigned long long>(first.heartbeats_sent),
      static_cast<unsigned long long>(first.detect.suspicions_raised),
      static_cast<unsigned long long>(first.detect.suspicions_cleared),
      static_cast<unsigned long long>(first.detect.failures_confirmed),
      static_cast<unsigned long long>(first.detect.readmissions),
      static_cast<unsigned long long>(first.detect.stale_heartbeats),
      static_cast<unsigned long long>(first.heartbeats_suppressed));
  std::printf(
      "transport: sent=%llu retransmit=%llu backoff=%llu dedup=%llu "
      "abandoned=%llu net_loss=%llu net_partition=%llu\n",
      static_cast<unsigned long long>(first.transport.sent),
      static_cast<unsigned long long>(first.transport.retransmits),
      static_cast<unsigned long long>(first.transport.backoffs),
      static_cast<unsigned long long>(first.transport.dedup_hits),
      static_cast<unsigned long long>(first.transport.abandoned),
      static_cast<unsigned long long>(first.net.loss_drops),
      static_cast<unsigned long long>(first.net.partition_drops));
  std::printf(
      "queues: high_watermark=%zu parked_peak=%zu bytes_peak=%llu "
      "grants=%llu pressure=%llu pressure_proposals=%llu blocked=%llu "
      "outstanding_peak=%llu first_pressure=%.3f first_rate=%.3f\n",
      first.stats.queue_high_watermark, first.stats.parked_peak,
      static_cast<unsigned long long>(first.stats.queued_bytes_peak),
      static_cast<unsigned long long>(first.stats.credit_grants_sent),
      static_cast<unsigned long long>(first.stats.queue_pressure_events),
      static_cast<unsigned long long>(first.stats.pressure_proposals),
      static_cast<unsigned long long>(first.stats.credit_blocked_events),
      static_cast<unsigned long long>(
          first.stats.peak_outstanding_credit_bytes),
      first.stats.first_pressure_proposal_ms,
      first.stats.first_rate_proposal_ms);
  if (scenario.standby) {
    std::printf(
        "mirror: entries=%llu acked=%llu lag=%llu stale_epoch_dropped=%llu "
        "epoch_updates=%llu\n",
        static_cast<unsigned long long>(first.mirror_entries),
        static_cast<unsigned long long>(first.mirror_acked),
        static_cast<unsigned long long>(first.mirror_entries -
                                        first.mirror_acked),
        static_cast<unsigned long long>(first.stale_epoch_dropped),
        static_cast<unsigned long long>(first.epoch_updates));
    if (first.takeover.taken_over) {
      std::printf(
          "takeover: epoch=%llu at=%.3f ms latency=%.3f ms "
          "applied=%llu held_back=%llu reconciled=%d retried=%d "
          "terminated=%d mirrored=%d probes=%d/%d instances=%d "
          "releases=%d\n",
          static_cast<unsigned long long>(first.takeover.epoch),
          first.takeover.takeover_at_ms,
          first.takeover.takeover_at_ms - scenario.coordinator_kill_at_ms,
          static_cast<unsigned long long>(
              first.takeover.mirror_entries_applied),
          static_cast<unsigned long long>(
              first.takeover.mirror_entries_held_back),
          first.takeover.queries_reconciled, first.takeover.queries_retried,
          first.takeover.queries_terminated,
          first.takeover.queries_served_mirrored,
          first.takeover.probe_replies, first.takeover.probes_sent,
          first.takeover.instances_probed, first.takeover.releases_sent);
    } else {
      std::printf("takeover: none (primary survived)\n");
    }
  }
  if (first.per_query.size() > 1) {
    for (const gqp::chaos::QueryOutcome& q : first.per_query) {
      std::printf(
          "query q%d (%s): %s rows=%zu response=%.3f ms "
          "queued_bytes_peak=%llu rounds_applied=%llu\n",
          q.query_id, gqp::QueryKindName(q.kind).c_str(),
          q.completed ? "completed" : "INCOMPLETE", q.rows, q.response_ms,
          static_cast<unsigned long long>(q.queued_bytes_peak),
          static_cast<unsigned long long>(q.rounds_applied));
    }
  }
  if (scenario.tenant_storm) {
    std::fputs(first.workload.Render().c_str(), stdout);
    std::printf(
        "admission: submitted=%llu admitted=%llu queue_full=%llu "
        "shed_queued=%llu shed_running=%llu pressure=%llu rounds=%llu "
        "queue_peak=%zu\n",
        static_cast<unsigned long long>(first.admission.submitted),
        static_cast<unsigned long long>(first.admission.admitted),
        static_cast<unsigned long long>(first.admission.rejected_queue_full),
        static_cast<unsigned long long>(first.admission.shed_queued),
        static_cast<unsigned long long>(first.admission.shed_running),
        static_cast<unsigned long long>(first.admission.pressure_events),
        static_cast<unsigned long long>(first.admission.shed_rounds),
        first.admission.queue_peak);
  }

  bool ok = first.ok();
  if (!first.status.ok()) {
    std::printf("run error: %s\n", first.status.ToString().c_str());
  }
  for (const std::string& v : first.violations) {
    std::printf("VIOLATION %s\n", v.c_str());
  }

  // Invariant (c): replay determinism.
  if (first.trace != second.trace) {
    ok = false;
    std::printf(
        "VIOLATION [determinism] replays diverge at trace line %zu "
        "(hashes %016llx vs %016llx) — repro: %s\n",
        gqp::chaos::FirstTraceDivergence(first.trace, second.trace),
        static_cast<unsigned long long>(first.trace_hash),
        static_cast<unsigned long long>(second.trace_hash),
        gqp::chaos::ReproCommand(seed, profile, vectorized).c_str());
  } else if (first.result_rows != second.result_rows) {
    ok = false;
    std::printf(
        "VIOLATION [determinism] identical traces but different result "
        "rows — repro: %s\n",
        gqp::chaos::ReproCommand(seed, profile, vectorized).c_str());
  } else if (first.workload.Render() != second.workload.Render()) {
    ok = false;
    std::printf(
        "VIOLATION [determinism] identical traces but different workload "
        "reports — repro: %s\n",
        gqp::chaos::ReproCommand(seed, profile, vectorized).c_str());
  }

  if (dump_trace) std::fputs(first.trace.c_str(), stdout);
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
