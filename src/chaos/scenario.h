// Chaos scenarios: seeded, randomized stress inputs for the adaptivity
// loop. A ChaosScenario is a pure function of a single uint64_t seed — it
// composes a query, a heterogeneous grid, perturbation schedules (the
// paper's load-injection profiles attached to random (node, operation)
// bindings at random virtual times), evaluator failures, and network
// delay/bandwidth shifts. The runner (runner.h) executes scenarios through
// the full GDQS/GQES pipeline and checks system invariants instead of
// golden outputs.

#ifndef GRIDQP_CHAOS_SCENARIO_H_
#define GRIDQP_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/adaptivity_config.h"
#include "net/network.h"
#include "workload/experiment.h"

namespace gqp {
namespace chaos {

/// Installs (or clears) a perturbation profile on one evaluator at a
/// virtual time.
struct PerturbationEvent {
  enum class Kind {
    /// Operation k times costlier (factor = p0).
    kConstantFactor,
    /// Fixed added delay per unit of work (delay_ms = p0).
    kAddedDelay,
    /// Per-tuple factor ~ truncated N(p0, p1) in [p2, p3].
    kGaussianFactor,
    /// Ornstein-Uhlenbeck load drift (sigma = p0, tau_ms = p1).
    kDrift,
    /// Piecewise-constant factor over time (steps).
    kStep,
    /// Removes every perturbation from the evaluator (load goes away).
    kClear,
  };

  SimTime at_ms = 0.0;
  int evaluator = 0;
  Kind kind = Kind::kConstantFactor;
  /// Profile parameters; meaning depends on `kind` (see enumerators).
  double p0 = 1.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;
  /// (start_ms, factor) pairs for kStep, sorted by start time.
  std::vector<std::pair<double, double>> steps;
  /// Seed for RNG-driven profiles.
  uint64_t profile_seed = 0;
  /// Node-wide (every operation) instead of the query's perturb tag.
  bool node_wide = false;

  std::string Describe() const;
};

/// Crashes one evaluator machine at a virtual time.
struct FailureEvent {
  SimTime at_ms = 0.0;
  int evaluator = 0;
};

/// Isolates one evaluator from the network for a window (the machine keeps
/// running; its traffic is dropped in both directions).
struct PartitionEvent {
  SimTime at_ms = 0.0;
  double duration_ms = 0.0;
  int evaluator = 0;
};

/// Silences one evaluator's heartbeats for a window while it keeps
/// processing work (GC pause / overloaded control path): the
/// false-suspicion trigger.
struct StallEvent {
  SimTime at_ms = 0.0;
  double duration_ms = 0.0;
  int evaluator = 0;
};

/// Replaces every link's latency/bandwidth at a virtual time.
struct LinkShiftEvent {
  SimTime at_ms = 0.0;
  LinkParams params;
};

/// Scenario family. Every profile consumes the identical RNG draw
/// sequence, so a seed describes the same base scenario in each; kLossy
/// additionally applies message loss, partition windows and heartbeat
/// stalls that kStandard discards. kSlowConsumer replaces the chaos
/// schedule with a single sustained CPU sag on one evaluator (no kills)
/// and turns flow control on; kMemorySqueeze keeps the standard chaos but
/// runs under a tight per-query memory budget; kMultiQuery keeps the
/// standard chaos and submits 1-3 additional overlapping queries, every
/// invariant checked per query (DESIGN.md §D12). kCoordinatorKill drops
/// every evaluator kill and instead crashes the PRIMARY COORDINATOR at a
/// random time, with a standby GDQS mirroring it and taking over (D14) —
/// the results must match a kill-free reference run byte-for-byte.
/// kTenantStorm replaces the single base query with an open-loop
/// multi-tenant workload pressing a bounded GDQS admission queue at burst
/// rates while one evaluator crashes and recovers mid-storm (D16); the
/// per-query invariant is the terminal trichotomy — every submitted query
/// reaches exactly one of {Complete, Aborted, Rejected}.
enum class ChaosProfile {
  kStandard,
  kLossy,
  kSlowConsumer,
  kMemorySqueeze,
  kMultiQuery,
  kCoordinatorKill,
  kTenantStorm,
};

/// One additional query of a multi-query scenario, submitted while the
/// base query is running.
struct ConcurrentQuery {
  QueryKind kind = QueryKind::kQ1;
  SimTime submit_at_ms = 0.0;
};

/// \brief A complete seeded chaos scenario.
struct ChaosScenario {
  uint64_t seed = 0;
  ChaosProfile profile = ChaosProfile::kStandard;

  // --- workload ---------------------------------------------------------
  QueryKind query = QueryKind::kQ1;
  size_t sequences = 300;
  size_t interactions = 450;
  size_t sequence_length = 32;
  double ws_cost_ms = 0.2;

  // --- grid -------------------------------------------------------------
  int num_evaluators = 2;
  std::vector<double> capacities;
  LinkParams initial_link;

  // --- engine / adaptivity knobs ---------------------------------------
  AssessmentType assessment = AssessmentType::kA1;
  ResponseType response = ResponseType::kRetrospective;
  size_t checkpoint_interval = 25;
  size_t m1_frequency = 10;
  size_t med_window = 25;
  size_t buffer_tuples = 50;
  double thres_m = 0.20;
  double thres_a = 0.20;

  // --- failure detection / lossy fabric ---------------------------------
  /// Uniform drop probability of every remote message (0 in the standard
  /// profile: legacy seeds keep their meaning).
  double loss_rate = 0.0;
  double heartbeat_interval_ms = 5.0;

  // --- flow control (D11) ------------------------------------------------
  /// Credit-based flow control (off in the legacy profiles: their seeds
  /// keep byte-identical schedules).
  bool flow_control = false;
  size_t memory_budget_bytes = 0;

  // --- vectorized execution (D13) ----------------------------------------
  /// Batch-at-a-time operator execution. GenerateScenario never sets this
  /// (legacy traces stay byte-identical); the vectorized sweeps and
  /// `chaos_repro --vectorized` flip it after generation.
  bool vectorized = false;
  size_t vector_batch_size = 16;

  // --- multi-query (D12) -------------------------------------------------
  /// Queries submitted on top of the base `query` while it runs. Only the
  /// kMultiQuery profile populates this; legacy profiles leave it empty so
  /// their runs add zero events and keep byte-identical traces.
  std::vector<ConcurrentQuery> extra_queries;

  // --- coordinator failover (D14) ----------------------------------------
  /// Run with a standby GDQS mirroring the primary. Only the
  /// kCoordinatorKill profile sets it; legacy profiles stay standby-free
  /// and keep byte-identical traces.
  bool standby = false;
  /// Crash the primary coordinator at `coordinator_kill_at_ms`.
  bool coordinator_kill = false;
  double coordinator_kill_at_ms = 0.0;
  /// Per-query deadline handed to the GDQS (0: no watchdog).
  double deadline_ms = 0.0;

  // --- multi-tenant storm (D16) ------------------------------------------
  /// Open-loop multi-tenant overload under GDQS admission control. Only
  /// the kTenantStorm profile sets it; legacy profiles keep byte-identical
  /// runs (the storm knobs below are dead weight for them).
  bool tenant_storm = false;
  int storm_tenants = 0;
  /// Sustained per-tenant arrival rate; tenant 0 additionally bursts at
  /// `storm_burst_multiplier` times that rate in periodic windows.
  double storm_rate_qps = 0.0;
  double storm_burst_multiplier = 1.0;
  /// Arrivals are generated in [0, storm_horizon_ms).
  double storm_horizon_ms = 0.0;
  /// Bounded admission queue + concurrency caps (AdmissionConfig).
  int storm_queue_capacity = 0;
  int storm_max_concurrent = 0;
  int storm_per_tenant_cap = 0;

  // --- injected chaos ---------------------------------------------------
  std::vector<PerturbationEvent> perturbations;
  std::vector<FailureEvent> failures;
  std::vector<LinkShiftEvent> link_shifts;
  std::vector<PartitionEvent> partitions;
  std::vector<StallEvent> stalls;

  /// One-line summary for logs and violation reports.
  std::string Describe() const;
};

/// Generates the scenario for a seed. Deterministic: equal (seed, profile)
/// pairs yield structurally identical scenarios. Guarantees at least one
/// evaluator survives every failure schedule — including worst-case false
/// kills from partition/stall windows long enough to be confirmed.
ChaosScenario GenerateScenario(uint64_t seed,
                               ChaosProfile profile = ChaosProfile::kStandard);

/// The one-line command that reproduces a scenario (printed with every
/// invariant violation).
std::string ReproCommand(uint64_t seed,
                         ChaosProfile profile = ChaosProfile::kStandard,
                         bool vectorized = false);

}  // namespace chaos
}  // namespace gqp

#endif  // GRIDQP_CHAOS_SCENARIO_H_
