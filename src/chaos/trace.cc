#include "chaos/trace.h"

#include <cstdio>
#include <cstring>

namespace gqp {
namespace chaos {

void EventTraceRecorder::Attach(Simulator* sim) {
  sim->set_trace_sink(
      [this](SimTime time, EventId id) { Record(time, id); });
}

void EventTraceRecorder::Detach(Simulator* sim) {
  sim->set_trace_sink(nullptr);
}

void EventTraceRecorder::Record(SimTime time, EventId id) {
  // Exact bit pattern of the timestamp: two traces are equal iff the runs
  // were (no rounding ambiguity).
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(time));
  std::memcpy(&bits, &time, sizeof(bits));
  char line[48];
  const int n = std::snprintf(line, sizeof(line), "%016llx:%llu\n",
                              static_cast<unsigned long long>(bits),
                              static_cast<unsigned long long>(id));
  for (int i = 0; i < n; ++i) {
    hash_ ^= static_cast<unsigned char>(line[i]);
    hash_ *= 1099511628211ULL;  // FNV-1a prime
  }
  ++events_;
  if (keep_full_) trace_.append(line, static_cast<size_t>(n));
}

size_t FirstTraceDivergence(const std::string& a, const std::string& b) {
  if (a == b) return 0;
  size_t line = 1;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return line;
    if (a[i] == '\n') ++line;
  }
  return line;
}

}  // namespace chaos
}  // namespace gqp
