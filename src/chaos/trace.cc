#include "chaos/trace.h"

#include <cstdio>
#include <cstring>

namespace gqp {
namespace chaos {

void EventTraceRecorder::Attach(Simulator* sim) {
  sim->set_trace_sink(
      [this](SimTime time, EventId id) { Record(time, id); });
}

void EventTraceRecorder::Detach(Simulator* sim) {
  sim->set_trace_sink(nullptr);
}

void EventTraceRecorder::Record(SimTime time, EventId id) {
  // Exact bit pattern of the timestamp: two traces are equal iff the runs
  // were (no rounding ambiguity).
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(time));
  std::memcpy(&bits, &time, sizeof(bits));
  char line[48];
  const int n = std::snprintf(line, sizeof(line), "%016llx:%llu\n",
                              static_cast<unsigned long long>(bits),
                              static_cast<unsigned long long>(id));
  for (int i = 0; i < n; ++i) {
    hash_ ^= static_cast<unsigned char>(line[i]);
    hash_ *= 1099511628211ULL;  // FNV-1a prime
  }
  ++events_;
  if (keep_full_) trace_.append(line, static_cast<size_t>(n));
}

void ShardedEventTraceRecorder::Attach(ShardedSimulator* sim) {
  per_shard_.assign(static_cast<size_t>(sim->num_shards()), {});
  for (int s = 0; s < sim->num_shards(); ++s) {
    std::vector<Entry>* buf = &per_shard_[static_cast<size_t>(s)];
    sim->shard(s)->set_trace_sink([buf](SimTime time, EventId id) {
      buf->push_back(Entry{time, static_cast<uint64_t>(id)});
    });
  }
}

void ShardedEventTraceRecorder::Detach(ShardedSimulator* sim) {
  for (int s = 0; s < sim->num_shards(); ++s) {
    sim->shard(s)->set_trace_sink(nullptr);
  }
}

void ShardedEventTraceRecorder::Finalize() {
  // Canonical merge order: (time, shard, seq). Per-shard buffers are
  // already (time, seq)-ordered, so a k-way index merge suffices; the
  // result depends only on the buffers, never on thread scheduling.
  std::vector<size_t> pos(per_shard_.size(), 0);
  for (;;) {
    int best = -1;
    for (size_t s = 0; s < per_shard_.size(); ++s) {
      if (pos[s] >= per_shard_[s].size()) continue;
      if (best < 0 ||
          per_shard_[s][pos[s]].time <
              per_shard_[static_cast<size_t>(best)]
                        [pos[static_cast<size_t>(best)]].time) {
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    const Entry& e = per_shard_[static_cast<size_t>(best)]
                               [pos[static_cast<size_t>(best)]++];
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(e.time));
    std::memcpy(&bits, &e.time, sizeof(bits));
    char line[64];
    const int n = std::snprintf(line, sizeof(line), "%016llx:%d:%llu\n",
                                static_cast<unsigned long long>(bits), best,
                                static_cast<unsigned long long>(e.seq));
    for (int i = 0; i < n; ++i) {
      hash_ ^= static_cast<unsigned char>(line[i]);
      hash_ *= 1099511628211ULL;  // FNV-1a prime
    }
    ++events_;
    if (keep_full_) trace_.append(line, static_cast<size_t>(n));
  }
  per_shard_.clear();
}

size_t FirstTraceDivergence(const std::string& a, const std::string& b) {
  if (a == b) return 0;
  size_t line = 1;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return line;
    if (a[i] == '\n') ++line;
  }
  return line;
}

}  // namespace chaos
}  // namespace gqp
