// Chaos runner: executes one seeded scenario through the full GDQS/GQES
// pipeline (grid construction, datasets, query compilation, adaptive
// execution under the scenario's perturbation/failure/network schedule)
// and checks the system invariants of invariants.h. Any violation carries
// the one-line repro command, so a red sweep entry is immediately
// replayable: `chaos_repro --seed=N`.

#ifndef GRIDQP_CHAOS_RUNNER_H_
#define GRIDQP_CHAOS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "detect/heartbeat.h"
#include "dqp/admission.h"
#include "dqp/gdqs.h"
#include "dqp/standby.h"
#include "rpc/reliable.h"
#include "workload/driver.h"

namespace gqp {
namespace chaos {

struct ChaosRunOptions {
  /// Keep the full serialized event trace (determinism tests); the FNV
  /// hash is always recorded.
  bool keep_trace = false;
  /// Per-scenario event budget: a runaway loop becomes a termination
  /// violation instead of a hung test.
  uint64_t max_events = 30'000'000ULL;
  /// Event shards of the kernel (D15). 1 = the classic sequential
  /// simulator, byte-identical to all recorded golden traces. >1 runs the
  /// conservative parallel kernel; per-query results and invariant
  /// outcomes match sequential runs, traces and stats orderings need not.
  /// The runner derives the lookahead from the minimum link latency the
  /// scenario will ever configure (initial link and every link shift).
  int shards = 1;
  /// Sequential-only knob for the differential suite: draw loss/jitter
  /// from the sharded kernel's shard-invariant RNG streams so the
  /// reference run sees the exact drop/retransmit pattern sharded runs do.
  /// Golden-fingerprint runs never set this (it perturbs their streams).
  bool shard_rng_streams = false;
};

/// Outcome of one query of a chaos run (every run has at least the base
/// query; kMultiQuery scenarios add the concurrent ones).
struct QueryOutcome {
  int query_id = 0;
  QueryKind kind = QueryKind::kQ1;
  bool completed = false;
  size_t rows = 0;
  double response_ms = 0.0;
  uint64_t queued_bytes_peak = 0;
  uint64_t rounds_applied = 0;
};

struct ChaosRunResult {
  /// Infrastructure failures (grid setup, submission); invariant
  /// violations are reported in `violations`, not here.
  Status status = Status::OK();
  bool completed = false;
  std::vector<std::string> violations;

  /// Result rows in arrival order (rendered), for determinism comparison.
  /// Base query only; concurrent queries are summarized in `per_query`.
  std::vector<std::string> result_rows;
  double response_ms = 0.0;
  double final_time_ms = 0.0;
  QueryStatsSnapshot stats;
  /// One entry per submitted query, base query first.
  std::vector<QueryOutcome> per_query;

  /// Control-plane diagnostics (chaos_repro --verbose): failure-detector,
  /// reliable-transport and network-loss counters of the run.
  DetectStats detect;
  ReliableStats transport;
  NetworkStats net;
  uint64_t heartbeats_sent = 0;
  /// Heartbeats swallowed by injected stall windows.
  uint64_t heartbeats_suppressed = 0;

  /// Coordinator failover (D14) diagnostics; all zero unless the scenario
  /// enabled the standby.
  TakeoverStats takeover;
  /// Entries the primary appended to / had acknowledged from its mirror
  /// log (`mirror_entries - mirror_acked` is the final replication lag).
  uint64_t mirror_entries = 0;
  uint64_t mirror_acked = 0;
  /// Fenced commands dropped grid-wide: GQES-level deploy/release drops
  /// plus per-executor stale producer/consumer/state-move drops.
  uint64_t stale_epoch_dropped = 0;
  /// GQES endpoints that advanced to the takeover epoch.
  uint64_t epoch_updates = 0;

  /// Multi-tenant storm (D16): the open-loop workload's full report and
  /// the admission controller's counters. Only populated when the
  /// scenario set tenant_storm; `workload.queries` then replaces the
  /// single-base-query fields above (result_rows stays empty).
  DriverReport workload;
  AdmissionStats admission;

  uint64_t trace_hash = 0;
  uint64_t trace_events = 0;
  /// Only populated with ChaosRunOptions::keep_trace.
  std::string trace;

  bool ok() const { return status.ok() && violations.empty(); }
  /// Violations joined into one report, repro command included.
  std::string Report() const;
};

/// Runs one scenario and checks invariants (a), (b) and (d). Invariant (c)
/// is checked by running the same scenario twice and comparing
/// trace/results (see tests/chaos/determinism_test.cc).
ChaosRunResult RunScenario(const ChaosScenario& scenario,
                           const ChaosRunOptions& options = {});

}  // namespace chaos
}  // namespace gqp

#endif  // GRIDQP_CHAOS_RUNNER_H_
