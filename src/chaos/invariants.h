// System-invariant checks for chaos runs. Instead of golden outputs, a
// chaos run is judged by properties that must hold under ANY perturbation
// and failure schedule:
//
//   (a) result correctness — the result multiset equals the oracle answer
//       computed directly from the datasets; when machines crashed
//       mid-query, at-least-once semantics apply (nothing lost, duplicate
//       rows bounded by the replayed-tuple count);
//   (b) tuple conservation — producer routing, recovery-log and
//       consumer-receive counters balance across every exchange, no
//       recovery log is left non-empty, and no tuple is processed by two
//       surviving consumers;
//   (c) replay determinism — checked by the runner/tests comparing event
//       traces of double runs (see trace.h);
//   (d) termination — the simulation drains, the query completes and
//       reports no execution error;
//   (e) detection latency — every injected crash is confirmed by the
//       heartbeat detector within its configured worst-case bound (unless
//       the query finished first or the last-survivor guard applied).
//
// Every violation string is prefixed with the invariant tag so sweeps can
// aggregate by class.

#ifndef GRIDQP_CHAOS_INVARIANTS_H_
#define GRIDQP_CHAOS_INVARIANTS_H_

#include <set>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "workload/grid_setup.h"

namespace gqp {
namespace chaos {

/// Oracle result rows (rendered with Tuple::ToString) computed directly
/// from the datasets, independent of the pipeline: Q1 applies the web
/// service function to every sequence; Q2 evaluates the join.
std::multiset<std::string> OracleRows(QueryKind query, const Table& sequences,
                                      const Table& interactions);

/// Upper bound on result rows a single replayed input tuple can
/// regenerate: the duplicate-row budget per resent tuple under
/// at-least-once recovery. Q1 maps one input to one output; Q2 is bounded
/// by the heaviest join key of the build side.
size_t MaxOutputFanout(QueryKind query, const Table& sequences,
                       const Table& interactions);

/// Invariant (a). `resent_tuples` is the producers' total replay count;
/// with no failures injected the result must equal the oracle exactly
/// (redistribution rounds must never duplicate or lose tuples).
void CheckResults(const std::multiset<std::string>& oracle,
                  const std::vector<Tuple>& actual, bool failures_injected,
                  uint64_t resent_tuples, size_t max_fanout,
                  std::vector<std::string>* violations);

/// Invariant (a) for the scan-aggregate query (kScanAgg), whose outputs
/// are group rows rather than per-input rows. The group SET must always
/// equal the oracle's; with no failures/replays every count matches
/// exactly, and under at-least-once recovery counts may only inflate, by
/// at most `resent_tuples` in total.
void CheckAggregateResults(const Table& interactions,
                           const std::vector<Tuple>& actual,
                           bool failures_injected, uint64_t resent_tuples,
                           std::vector<std::string>* violations);

/// Invariant (b), checked over every fragment instance of `query_id` in
/// the grid after the simulation drained. `reported_failures` are the
/// hosts whose failure the coordinator acted on
/// (Gdqs::reported_failures()): an instance is protocol-live only if its
/// node is both actually alive and unreported — a falsely-suspected host
/// is alive but fenced, so its counters are exempt like a dead one's.
/// Under message loss a dead producer's counted sends may never arrive
/// (retransmission abandons when the host is down), so consumer delivery
/// is checked as a band: alive producers' sends are a floor, all counted
/// sends a ceiling; the check stays exact when the two coincide.
void CheckConservation(GridSetup* grid, int query_id,
                       const std::set<HostId>& reported_failures,
                       std::vector<std::string>* violations);

/// Invariant (e): every injected crash is confirmed within
/// monitor->MaxDetectionLatencyMs() of the kill — excused only when the
/// detector was deactivated (query done) before the bound expired or the
/// last-survivor guard deliberately withheld the confirmation.
void CheckDetection(const HeartbeatMonitor* monitor,
                    const ChaosScenario& scenario,
                    std::vector<std::string>* violations);

/// Invariant (f), flow-control runs only: every queue, producer buffer and
/// recovery log stayed inside its configured bound. Per producer link, the
/// peak unacknowledged bytes may exceed the credit window W only by the
/// processing overshoot of one input tuple (`max_fanout` outputs of up to
/// `max_tuple_wire_bytes` each) plus the cumulative recall traffic of
/// recovery rounds, which deliberately bypasses the gate (DESIGN.md §D11)
/// and can have several rounds' bursts in flight at once; a consumer port
/// holds at most that much per live producer. Recovery-log bytes get a
/// generous dataset-derived sanity cap (the log is bounded by acks, not
/// credits).
void CheckBoundedMemory(GridSetup* grid, int query_id,
                        size_t max_tuple_wire_bytes, size_t max_fanout,
                        uint64_t dataset_wire_bytes,
                        std::vector<std::string>* violations);

}  // namespace chaos
}  // namespace gqp

#endif  // GRIDQP_CHAOS_INVARIANTS_H_
