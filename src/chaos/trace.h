// Event-trace recording for replay-determinism checks. The simulator's
// (time, id) dispatch stream is a complete fingerprint of a run: event ids
// are scheduling sequence numbers, so two runs with byte-identical traces
// scheduled and executed exactly the same events at exactly the same
// virtual times.

#ifndef GRIDQP_CHAOS_TRACE_H_
#define GRIDQP_CHAOS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sharded.h"
#include "sim/simulator.h"

namespace gqp {
namespace chaos {

/// \brief Serializes a simulator's event dispatch stream.
///
/// Each executed event appends one line "<time-hex>:<id>\n" (times are
/// rendered from the double's exact bit pattern, so equality of traces is
/// equality of the runs, not of rounded representations). A running
/// FNV-1a hash is always maintained; the full serialized trace is kept
/// only when requested (determinism tests compare traces byte-for-byte;
/// the sweep compares hashes).
class EventTraceRecorder {
 public:
  explicit EventTraceRecorder(bool keep_full = false)
      : keep_full_(keep_full) {}

  /// Installs this recorder as the simulator's trace sink (replacing any
  /// other). The recorder must outlive the simulation or be detached.
  void Attach(Simulator* sim);

  /// Removes the sink. Safe to call when not attached.
  static void Detach(Simulator* sim);

  uint64_t hash() const { return hash_; }
  uint64_t events() const { return events_; }
  /// Empty unless constructed with keep_full = true.
  const std::string& trace() const { return trace_; }

 private:
  void Record(SimTime time, EventId id);

  bool keep_full_;
  uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a offset basis
  uint64_t events_ = 0;
  std::string trace_;
};

/// \brief Trace recording for sharded runs (DESIGN.md §D15).
///
/// Each shard's dispatch stream is buffered shard-locally (its worker
/// thread is the only writer, so recording takes no locks), then
/// Finalize() merges the buffers into one canonical stream ordered by
/// (time, shard, seq) and folds it through the same FNV-1a hash as the
/// sequential recorder. The merge order is a deterministic function of
/// the buffers alone — two sharded runs with equal per-shard streams get
/// byte-identical merged traces regardless of thread scheduling. Lines
/// are "<time-hex>:<shard>:<seq>\n" (the shard id disambiguates the
/// independent per-shard sequence counters), so sharded fingerprints are
/// comparable to other sharded runs, not to sequential ones.
class ShardedEventTraceRecorder {
 public:
  explicit ShardedEventTraceRecorder(bool keep_full = false)
      : keep_full_(keep_full) {}

  /// Installs a per-shard sink on every shard. The recorder must outlive
  /// the simulation or be detached.
  void Attach(ShardedSimulator* sim);

  /// Removes all per-shard sinks. Safe to call when not attached.
  static void Detach(ShardedSimulator* sim);

  /// Merges the shard-local buffers into hash()/trace(). Call after the
  /// run completes (driver thread). Idempotent only in the sense that it
  /// consumes the buffers; call it once.
  void Finalize();

  uint64_t hash() const { return hash_; }
  uint64_t events() const { return events_; }
  /// Empty unless constructed with keep_full = true.
  const std::string& trace() const { return trace_; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
  };

  bool keep_full_;
  uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a offset basis
  uint64_t events_ = 0;
  std::string trace_;
  std::vector<std::vector<Entry>> per_shard_;
};

/// First line number (1-based) at which two serialized traces differ;
/// 0 when they are identical. Diagnostic for determinism failures.
size_t FirstTraceDivergence(const std::string& a, const std::string& b);

}  // namespace chaos
}  // namespace gqp

#endif  // GRIDQP_CHAOS_TRACE_H_
