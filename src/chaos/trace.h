// Event-trace recording for replay-determinism checks. The simulator's
// (time, id) dispatch stream is a complete fingerprint of a run: event ids
// are scheduling sequence numbers, so two runs with byte-identical traces
// scheduled and executed exactly the same events at exactly the same
// virtual times.

#ifndef GRIDQP_CHAOS_TRACE_H_
#define GRIDQP_CHAOS_TRACE_H_

#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace gqp {
namespace chaos {

/// \brief Serializes a simulator's event dispatch stream.
///
/// Each executed event appends one line "<time-hex>:<id>\n" (times are
/// rendered from the double's exact bit pattern, so equality of traces is
/// equality of the runs, not of rounded representations). A running
/// FNV-1a hash is always maintained; the full serialized trace is kept
/// only when requested (determinism tests compare traces byte-for-byte;
/// the sweep compares hashes).
class EventTraceRecorder {
 public:
  explicit EventTraceRecorder(bool keep_full = false)
      : keep_full_(keep_full) {}

  /// Installs this recorder as the simulator's trace sink (replacing any
  /// other). The recorder must outlive the simulation or be detached.
  void Attach(Simulator* sim);

  /// Removes the sink. Safe to call when not attached.
  static void Detach(Simulator* sim);

  uint64_t hash() const { return hash_; }
  uint64_t events() const { return events_; }
  /// Empty unless constructed with keep_full = true.
  const std::string& trace() const { return trace_; }

 private:
  void Record(SimTime time, EventId id);

  bool keep_full_;
  uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a offset basis
  uint64_t events_ = 0;
  std::string trace_;
};

/// First line number (1-based) at which two serialized traces differ;
/// 0 when they are identical. Diagnostic for determinism failures.
size_t FirstTraceDivergence(const std::string& a, const std::string& b);

}  // namespace chaos
}  // namespace gqp

#endif  // GRIDQP_CHAOS_TRACE_H_
