// Ingress stage of a fragment instance: per-port producer liveness
// bookkeeping — end-of-stream markers and epoch fencing of producers
// reported lost. Once a producer is fenced, recovery owns its rows: late
// batches, EOS markers and state-move rounds from it carry no
// information and must be dropped by the caller.

#ifndef GRIDQP_EXEC_INGRESS_H_
#define GRIDQP_EXEC_INGRESS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "exec/coordinator_epoch.h"

namespace gqp {

class IngressManager {
 public:
  /// Declares one input port expecting `num_producers` streams.
  void AddPort(int num_producers);

  /// Installs the instance's coordinator-epoch fence (D14). Null: every
  /// command admitted (legacy single-coordinator setups).
  void set_epoch_guard(CoordinatorEpochGuard* guard) { epoch_guard_ = guard; }

  size_t num_ports() const { return ports_.size(); }
  bool ValidPort(int port) const {
    return port >= 0 && static_cast<size_t>(port) < ports_.size();
  }

  /// True when this producer was reported lost on the port (epoch fence).
  /// Out-of-range ports are never fenced (callers validate separately).
  bool Fenced(int port, const std::string& key) const;

  /// Records a producer's end-of-stream marker. A fenced producer's
  /// stream already ended as far as recovery is concerned; its late EOS
  /// is ignored.
  void MarkEos(int port, const std::string& key);

  /// Fences a producer reported crashed before its EOS arrived.
  void MarkLost(int port, const std::string& key);

  /// Epoch-checked MarkLost (D14): applies the command only when
  /// `cmd_epoch` passes the coordinator-epoch fence. Returns false (and
  /// counts the drop) for commands of a deposed coordinator.
  bool MarkLostIfCurrent(int port, const std::string& key,
                         uint64_t cmd_epoch) {
    if (epoch_guard_ != nullptr && !epoch_guard_->Admit(cmd_epoch)) {
      return false;
    }
    MarkLost(port, key);
    return true;
  }

  /// All streams of the port ended (EOS received or producer fenced).
  bool EosComplete(int port) const;
  bool AllEosComplete() const {
    for (size_t p = 0; p < ports_.size(); ++p) {
      if (!EosComplete(static_cast<int>(p))) return false;
    }
    return true;
  }

  size_t eos_count(int port) const {
    return ports_[static_cast<size_t>(port)].eos_from.size();
  }
  size_t lost_count(int port) const {
    return ports_[static_cast<size_t>(port)].lost.size();
  }
  int num_producers(int port) const {
    return ports_[static_cast<size_t>(port)].num_producers;
  }

 private:
  struct Port {
    int num_producers = 1;
    /// Producers that sent their end-of-stream marker.
    std::set<std::string> eos_from;
    /// Producers reported crashed before their EOS arrived.
    std::set<std::string> lost;
  };

  std::vector<Port> ports_;
  CoordinatorEpochGuard* epoch_guard_ = nullptr;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_INGRESS_H_
