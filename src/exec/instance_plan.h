// Deployment-time description of one fragment instance plus its runtime
// counters. Shared by the executor components (ingress, port queues,
// state manager, operator driver, egress) so none of them needs the
// FragmentExecutor header.

#ifndef GRIDQP_EXEC_INSTANCE_PLAN_H_
#define GRIDQP_EXEC_INSTANCE_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "exec/exchange_producer.h"
#include "exec/exec_config.h"
#include "net/message.h"
#include "plan/physical_plan.h"
#include "storage/table.h"

namespace gqp {

/// Work-item tag every exchange-machinery CPU charge runs under.
inline constexpr std::string_view kExchangeTag = "op:exchange";

inline bool BucketInList(int bucket, const std::vector<int>& buckets) {
  return std::find(buckets.begin(), buckets.end(), bucket) != buckets.end();
}

/// Wiring of one input port.
struct InputWiring {
  ExchangeDesc desc;
  int num_producers = 1;
};

/// Adaptivity wiring of a fragment instance.
struct AdaptivityWiring {
  bool enabled = false;
  /// Local MonitoringEventDetector receiving raw M1/M2 events.
  Address med;
  /// The query's Responder (state-move outcomes + completion handshake).
  Address responder;
};

/// Everything a GQES needs to instantiate one fragment instance.
struct FragmentInstancePlan {
  SubplanId id;
  FragmentDesc fragment;
  std::vector<InputWiring> inputs;
  std::optional<OutputWiring> output;
  ExecConfig config;
  AdaptivityWiring adaptivity;
  /// Coordinator (GDQS) endpoint for completion notifications.
  Address coordinator;
  /// Coordinator epoch the deployment belongs to (D14): the instance's
  /// fence starts here, and commands from older epochs are dropped. 0 is
  /// the pre-failover epoch every legacy deployment carries.
  uint64_t coordinator_epoch = 0;
};

/// Deployment-time sanity checks shared by Prepare().
inline Status ValidateInstancePlan(const FragmentInstancePlan& plan,
                                   const Table* scan_table) {
  if (plan.fragment.ops.empty()) {
    return Status::InvalidArgument("fragment has no operators");
  }
  const bool is_scan = plan.fragment.IsScanLeaf();
  if (is_scan && scan_table == nullptr) {
    return Status::FailedPrecondition("no local table for scan fragment " +
                                      plan.fragment.ops.front().table);
  }
  if (!is_scan && static_cast<int>(plan.inputs.size()) !=
                      plan.fragment.num_input_ports) {
    return Status::InvalidArgument("input wiring/port count mismatch");
  }
  return Status::OK();
}

/// Per-instance execution counters.
struct FragmentStats {
  /// Tuples delivered by upstream exchanges (includes resends).
  uint64_t tuples_received = 0;
  /// Tuples rejected because their producer was fenced: it was reported
  /// failed (possibly a false suspicion) and recovery reassigned its
  /// work, so late output from it must not contribute twice.
  uint64_t tuples_fenced = 0;
  uint64_t tuples_processed = 0;
  uint64_t tuples_emitted = 0;
  uint64_t tuples_discarded_in_moves = 0;
  uint64_t tuples_parked = 0;
  uint64_t m1_sent = 0;
  uint64_t m2_sent = 0;
  uint64_t acks_sent = 0;
  double busy_ms = 0.0;
  double idle_wait_ms = 0.0;
  size_t queue_high_watermark = 0;
  /// Peak number of tuples parked at once across all ports.
  size_t parked_peak = 0;
  // --- flow control (D11); all zero with it off -------------------------
  /// Peak bytes held (queued + parked) on any single input port.
  uint64_t queued_bytes_peak = 0;
  uint64_t credit_grants_sent = 0;
  uint64_t queue_pressure_events = 0;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_INSTANCE_PLAN_H_
