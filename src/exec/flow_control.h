// Credit-based flow control for the exchange operator (DESIGN.md §D11).
//
// Every producer->consumer link carries a byte window W. The producer
// keeps a monotonic cumulative count of bytes *charged* to the link
// (buffered, in flight, or held in the consumer's queues); the consumer
// keeps the matching cumulative count of bytes it has *released*
// (processed, purged by a state move, or fenced) and ships it back in
// CreditGrant messages. outstanding = charged - released; a producer with
// any live link at or above W stops starting new input tuples until a
// grant restores headroom.
//
// Cumulative counters — rather than decrement-style credit tokens — make
// the protocol self-consistent across the failure machinery: grants are
// idempotent and reorder-safe (the receiver keeps the max), a recovery
// round's consumer-side purge releases exactly what the producer's resend
// re-charges, and a StateMove that re-routes a bucket simply releases on
// the old link and charges on the new one. Links to epoch-fenced dead
// consumers are voided outright: they stop gating and their bytes are
// forgotten (recovery re-charges the resends on the surviving links).

#ifndef GRIDQP_EXEC_FLOW_CONTROL_H_
#define GRIDQP_EXEC_FLOW_CONTROL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gqp {

/// Producer-side counters, surfaced through ProducerStats/chaos checks.
struct CreditLedgerStats {
  /// Largest charged-minus-released ever observed on one live link.
  uint64_t peak_outstanding_bytes = 0;
  /// Times the producer wanted to start a tuple and found a saturated
  /// link (one parked "episode" can count many times; it is a pressure
  /// indicator, not a wall-clock measure).
  uint64_t blocked_events = 0;
  /// Largest number of bytes re-charged by a single retrospective-round
  /// resend. Resends bypass the gate (RestoreComplete must follow them on
  /// the same link or parked consumers would wait forever), so this is
  /// the slack term of the bounded-memory invariant.
  uint64_t max_recall_burst_bytes = 0;
  /// All recall bytes ever re-charged. Bursts of successive rounds can be
  /// in flight together when acks drain slowly (e.g. several queries
  /// sharing a CPU), so the bounded-memory invariant exempts cumulative
  /// recall traffic, not just the largest single burst.
  uint64_t total_recall_bytes = 0;
  uint64_t grants_received = 0;
};

/// \brief Producer-side credit ledger: one cumulative charged/released
/// pair per consumer link.
class CreditLedger {
 public:
  /// `window_bytes` == 0 disables the ledger entirely (all methods become
  /// cheap no-ops and HasHeadroom() is always true).
  void Configure(size_t num_consumers, size_t window_bytes);

  bool enabled() const { return window_bytes_ > 0; }
  size_t window_bytes() const { return window_bytes_; }

  /// Charges `bytes` to consumer link `idx` (tuple routed into its
  /// buffer). `recall` marks a retrospective-round resend, which feeds
  /// the max_recall_burst_bytes slack instead of the blocked gate.
  void Charge(int idx, size_t bytes, bool recall);

  /// Un-charges bytes for tuples purged from an *unsent* buffer (the
  /// consumer never saw them, so it can never release them).
  void Uncharge(int idx, size_t bytes);

  /// A CreditGrant arrived: the consumer has cumulatively released
  /// `released_bytes` on this link. Returns true when the grant advanced
  /// the counter (headroom may have appeared).
  bool OnGrant(int idx, uint64_t released_bytes);

  /// The consumer was epoch-fenced (declared dead): the link stops
  /// gating and its accounting is dropped.
  void VoidConsumer(int idx);

  /// True when every live link is below the window. Counting a blocked
  /// probe is the caller's job via NoteBlocked() so that passive
  /// inspection (stats, logging) does not inflate the counter.
  bool HasHeadroom() const;
  void NoteBlocked() { ++stats_.blocked_events; }

  /// Marks the start/end of one retrospective-round resend burst.
  void BeginRecallBurst() { recall_burst_bytes_ = 0; }
  void EndRecallBurst();

  uint64_t Outstanding(int idx) const;
  const CreditLedgerStats& stats() const { return stats_; }

 private:
  struct Link {
    uint64_t charged = 0;
    uint64_t released = 0;
    bool voided = false;
  };

  std::vector<Link> links_;
  size_t window_bytes_ = 0;
  uint64_t recall_burst_bytes_ = 0;
  CreditLedgerStats stats_;
};

/// \brief Consumer-side account for one producer link: bytes currently
/// held here plus the cumulative released counter shipped in grants.
struct CreditAccount {
  uint64_t held_bytes = 0;
  uint64_t released_bytes = 0;
  /// Released since the last grant was sent; a grant is due when this
  /// crosses grant_threshold bytes.
  uint64_t pending_grant_bytes = 0;

  void Hold(size_t bytes) { held_bytes += bytes; }

  /// Releases `bytes`; returns true when a grant is due.
  bool Release(size_t bytes, size_t grant_threshold) {
    held_bytes -= bytes > held_bytes ? held_bytes : bytes;
    released_bytes += bytes;
    pending_grant_bytes += bytes;
    return grant_threshold > 0 && pending_grant_bytes >= grant_threshold;
  }

  /// Consumes the pending batch; the returned cumulative counter goes
  /// into the CreditGrant payload.
  uint64_t TakeGrant() {
    pending_grant_bytes = 0;
    return released_bytes;
  }
};

/// The wire-accounting size of one routed tuple inside a batch; matches
/// TupleBatchPayload::WireSize() so producer charges and consumer
/// releases agree byte-for-byte.
inline size_t RoutedTupleWireBytes(size_t tuple_wire_size) {
  return 12 + tuple_wire_size;
}

}  // namespace gqp

#endif  // GRIDQP_EXEC_FLOW_CONTROL_H_
