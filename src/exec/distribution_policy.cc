#include "exec/distribution_policy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace gqp {

Status ValidateWeights(const std::vector<double>& weights,
                       size_t expected_size) {
  if (weights.size() != expected_size) {
    return Status::InvalidArgument(
        StrCat("weight vector has ", weights.size(), " entries, expected ",
               expected_size));
  }
  double sum = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
    sum += w;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("weights must sum to 1 (got %.9f)", sum));
  }
  return Status::OK();
}

WeightedRoundRobinPolicy::WeightedRoundRobinPolicy(std::vector<double> weights)
    : weights_(std::move(weights)), credits_(weights_.size(), 0.0) {}

int WeightedRoundRobinPolicy::Route(const Tuple& /*tuple*/, int* bucket_out) {
  if (bucket_out != nullptr) *bucket_out = -1;
  // Zero-weight consumers (e.g. crashed machines) never win the credit
  // race, even when every live credit is negative.
  int best = -1;
  for (size_t i = 0; i < credits_.size(); ++i) {
    credits_[i] += weights_[i];
    if (weights_[i] <= 0.0) continue;
    if (best < 0 || credits_[i] > credits_[static_cast<size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) best = 0;  // all weights zero: degenerate, validated away
  credits_[static_cast<size_t>(best)] -= 1.0;
  return best;
}

Result<std::vector<BucketMove>> WeightedRoundRobinPolicy::UpdateWeights(
    const std::vector<double>& weights) {
  GQP_RETURN_IF_ERROR(ValidateWeights(weights, weights_.size()));
  weights_ = weights;
  // Keep credits: routing smoothly converges to the new proportions.
  return std::vector<BucketMove>{};
}

HashBucketPolicy::HashBucketPolicy(int num_buckets, size_t key_col,
                                   std::vector<double> weights)
    : num_buckets_(num_buckets < 1 ? 1 : num_buckets),
      key_col_(key_col),
      weights_(std::move(weights)),
      owner_(static_cast<size_t>(num_buckets_), 0) {
  const std::vector<int> counts = TargetCounts(weights_);
  int bucket = 0;
  for (size_t c = 0; c < counts.size(); ++c) {
    for (int k = 0; k < counts[c]; ++k) {
      owner_[static_cast<size_t>(bucket++)] = static_cast<int>(c);
    }
  }
}

std::vector<int> HashBucketPolicy::TargetCounts(
    const std::vector<double>& weights) const {
  const size_t n = weights.size();
  std::vector<int> counts(n, 0);
  std::vector<std::pair<double, size_t>> remainders;
  int assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double exact = weights[i] * num_buckets_;
    counts[i] = static_cast<int>(std::floor(exact));
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  // Largest remainder first; ties broken by index for determinism.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int k = 0; k < num_buckets_ - assigned; ++k) {
    counts[remainders[static_cast<size_t>(k) % remainders.size()].second]++;
  }
  return counts;
}

int HashBucketPolicy::BucketOf(const Tuple& tuple) const {
  const Value& key = tuple.at(key_col_);
  return static_cast<int>(key.Hash() % static_cast<uint64_t>(num_buckets_));
}

int HashBucketPolicy::Route(const Tuple& tuple, int* bucket_out) {
  const int bucket = BucketOf(tuple);
  if (bucket_out != nullptr) *bucket_out = bucket;
  return owner_[static_cast<size_t>(bucket)];
}

int HashBucketPolicy::OwnerOf(int bucket) const {
  if (bucket < 0 || bucket >= num_buckets_) return -1;
  return owner_[static_cast<size_t>(bucket)];
}

Result<std::vector<BucketMove>> HashBucketPolicy::UpdateWeights(
    const std::vector<double>& weights) {
  GQP_RETURN_IF_ERROR(ValidateWeights(weights, weights_.size()));
  const std::vector<int> target = TargetCounts(weights);

  std::vector<int> current(weights_.size(), 0);
  for (const int owner : owner_) current[static_cast<size_t>(owner)]++;

  // Move the minimal number of buckets: take from over-allocated owners
  // (highest bucket index first, deterministic) and hand to
  // under-allocated ones.
  std::vector<BucketMove> moves;
  std::vector<int> deficit(weights_.size());
  for (size_t c = 0; c < weights_.size(); ++c) {
    deficit[c] = target[c] - current[c];
  }
  size_t receiver = 0;
  for (int b = num_buckets_ - 1; b >= 0; --b) {
    const int owner = owner_[static_cast<size_t>(b)];
    if (deficit[static_cast<size_t>(owner)] >= 0) continue;
    while (receiver < deficit.size() && deficit[receiver] <= 0) ++receiver;
    if (receiver >= deficit.size()) break;
    moves.push_back(BucketMove{b, owner, static_cast<int>(receiver)});
    owner_[static_cast<size_t>(b)] = static_cast<int>(receiver);
    deficit[static_cast<size_t>(owner)]++;
    deficit[receiver]--;
  }
  weights_ = weights;
  return moves;
}

Result<std::unique_ptr<DistributionPolicy>> MakePolicy(
    const ExchangeDesc& desc, std::vector<double> weights) {
  GQP_RETURN_IF_ERROR(ValidateWeights(weights, weights.size()));
  if (weights.empty()) {
    return Status::InvalidArgument("policy needs at least one consumer");
  }
  switch (desc.policy) {
    case PolicyKind::kWeightedRoundRobin:
      return std::unique_ptr<DistributionPolicy>(
          new WeightedRoundRobinPolicy(std::move(weights)));
    case PolicyKind::kHashBuckets:
      return std::unique_ptr<DistributionPolicy>(new HashBucketPolicy(
          desc.num_buckets, desc.key_col, std::move(weights)));
  }
  return Status::Internal("unknown policy kind");
}

}  // namespace gqp
