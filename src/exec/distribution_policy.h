// Tuple-distribution policies of the enhanced exchange operator. The
// Diagnoser reasons in terms of the workload vector W = (w1..wn); these
// classes turn W into per-tuple routing decisions:
//
//  - WeightedRoundRobinPolicy: smooth weighted round-robin for stateless
//    downstream operators (any tuple may go anywhere).
//  - HashBucketPolicy: Flux-style logical partitions. The key column is
//    hashed into `num_buckets` buckets; buckets are owned by consumers in
//    proportion to W. Rebalancing reassigns the minimal number of buckets,
//    which defines exactly which state must move.

#ifndef GRIDQP_EXEC_DISTRIBUTION_POLICY_H_
#define GRIDQP_EXEC_DISTRIBUTION_POLICY_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "plan/physical_plan.h"
#include "storage/tuple.h"

namespace gqp {

/// One bucket ownership change from a weight update.
struct BucketMove {
  int bucket = -1;
  int from_consumer = -1;
  int to_consumer = -1;
};

/// \brief Maps tuples to consumer indexes under a weight vector W.
class DistributionPolicy {
 public:
  virtual ~DistributionPolicy() = default;

  virtual PolicyKind kind() const = 0;
  virtual int num_consumers() const = 0;
  virtual const std::vector<double>& weights() const = 0;

  /// Routes a tuple. `bucket_out` receives the logical bucket (-1 for
  /// round-robin policies).
  virtual int Route(const Tuple& tuple, int* bucket_out) = 0;

  /// Installs a new weight vector. Returns the bucket ownership changes
  /// (empty for round-robin policies). Fails if the vector has the wrong
  /// arity, non-positive entries, or does not sum to ~1.
  virtual Result<std::vector<BucketMove>> UpdateWeights(
      const std::vector<double>& weights) = 0;

  /// Consumer currently owning `bucket`; -1 when not applicable.
  virtual int OwnerOf(int bucket) const = 0;
};

/// Validates a weight vector (size, positivity, sums to 1 within 1e-6).
Status ValidateWeights(const std::vector<double>& weights,
                       size_t expected_size);

/// \brief Smooth weighted round-robin (credit-based).
///
/// Each decision adds w_i to every consumer's credit and picks the highest
/// credit, subtracting 1 from the winner; over time consumer i receives a
/// w_i fraction of tuples with minimal burstiness.
class WeightedRoundRobinPolicy : public DistributionPolicy {
 public:
  explicit WeightedRoundRobinPolicy(std::vector<double> weights);

  PolicyKind kind() const override {
    return PolicyKind::kWeightedRoundRobin;
  }
  int num_consumers() const override {
    return static_cast<int>(weights_.size());
  }
  const std::vector<double>& weights() const override { return weights_; }
  int Route(const Tuple& tuple, int* bucket_out) override;
  Result<std::vector<BucketMove>> UpdateWeights(
      const std::vector<double>& weights) override;
  int OwnerOf(int) const override { return -1; }

 private:
  std::vector<double> weights_;
  std::vector<double> credits_;
};

/// \brief Hash partitioning into logical buckets owned by consumers.
class HashBucketPolicy : public DistributionPolicy {
 public:
  /// Builds the initial ownership map: bucket counts proportional to
  /// `weights` (largest-remainder rounding), buckets dealt to consumers in
  /// contiguous runs. Deterministic: producers sharing a consumer group
  /// stay in lockstep as long as they apply the same weight updates in the
  /// same order.
  HashBucketPolicy(int num_buckets, size_t key_col,
                   std::vector<double> weights);

  PolicyKind kind() const override { return PolicyKind::kHashBuckets; }
  int num_consumers() const override {
    return static_cast<int>(weights_.size());
  }
  const std::vector<double>& weights() const override { return weights_; }
  int Route(const Tuple& tuple, int* bucket_out) override;
  Result<std::vector<BucketMove>> UpdateWeights(
      const std::vector<double>& weights) override;
  int OwnerOf(int bucket) const override;

  int num_buckets() const { return num_buckets_; }
  /// The bucket a tuple falls into (stable across producers/consumers).
  int BucketOf(const Tuple& tuple) const;
  const std::vector<int>& owner_map() const { return owner_; }

 private:
  /// Target bucket counts per consumer for a weight vector
  /// (largest-remainder apportionment; sums to num_buckets_).
  std::vector<int> TargetCounts(const std::vector<double>& weights) const;

  int num_buckets_;
  size_t key_col_;
  std::vector<double> weights_;
  std::vector<int> owner_;  // bucket -> consumer
};

/// Factory from an exchange descriptor + initial weights.
Result<std::unique_ptr<DistributionPolicy>> MakePolicy(
    const ExchangeDesc& desc, std::vector<double> weights);

}  // namespace gqp

#endif  // GRIDQP_EXEC_DISTRIBUTION_POLICY_H_
