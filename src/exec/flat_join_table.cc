#include "exec/flat_join_table.h"

#include <algorithm>

namespace gqp {

namespace {

constexpr size_t kMinSlots = 16;
// Grow when occupied slots exceed 7/8 of capacity: linear probing stays
// short and the doubling keeps rehashes amortized-constant.
constexpr size_t kLoadNum = 7;
constexpr size_t kLoadDen = 8;

size_t NextPow2(size_t n) {
  size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void FlatJoinTable::Reserve(size_t expected_rows) {
  if (expected_rows == 0) return;
  if (expected_rows > entries_.capacity()) {
    // At least double: batched builds call Reserve with a running total
    // every batch, and an exact-fit reserve each time would degrade the
    // entry vector to quadratic reallocation.
    entries_.reserve(std::max(expected_rows, entries_.capacity() * 2));
  }
  const size_t wanted = NextPow2(expected_rows * kLoadDen / kLoadNum + 1);
  if (wanted > slots_.size()) Rehash(wanted);
}

uint32_t FlatJoinTable::FindHead(uint64_t hash) const {
  const size_t mask = slots_.size() - 1;
  const uint8_t tag = TagOf(hash);
  for (size_t i = hash & mask;; i = (i + 1) & mask) {
    const uint32_t at = slots_[i];
    if (at == 0) return 0;
    if (tags_[i] == tag && entries_[at - 1].hash == hash) return at;
  }
}

bool FlatJoinTable::Insert(uint64_t hash, const Tuple& tuple) {
  if (slots_.empty() ||
      (occupied_ + 1) * kLoadDen > slots_.size() * kLoadNum) {
    Rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
  }

  const uint32_t offset = static_cast<uint32_t>(entries_.size() + 1);
  const size_t mask = slots_.size() - 1;
  const uint8_t tag = TagOf(hash);
  size_t i = hash & mask;
  for (;; i = (i + 1) & mask) {
    const uint32_t head = slots_[i];
    if (head == 0) {
      // New chain.
      slots_[i] = offset;
      tags_[i] = tag;
      ++occupied_;
      entries_.push_back(Entry{hash, 0, offset, tuple});
      return false;
    }
    if (tags_[i] != tag || entries_[head - 1].hash != hash) {
      continue;  // probe collision
    }
    // Existing chain: check for a value-identical duplicate, then append
    // at the tail so iteration stays in insertion order.
    bool duplicate = false;
    for (uint32_t at = head; at != 0; at = entries_[at - 1].next) {
      if (entries_[at - 1].tuple == tuple) {
        duplicate = true;
        break;
      }
    }
    Entry& head_entry = entries_[head - 1];
    entries_[head_entry.tail - 1].next = offset;
    head_entry.tail = offset;
    entries_.push_back(Entry{hash, 0, 0, tuple});
    return duplicate;
  }
}

void FlatJoinTable::Rehash(size_t new_slot_count) {
  slots_.assign(new_slot_count, 0);
  tags_.assign(new_slot_count, 0);
  occupied_ = 0;
  const size_t mask = new_slot_count - 1;
  // Re-seat chain heads only; chains and entries are untouched.
  for (size_t e = 0; e < entries_.size(); ++e) {
    const Entry& entry = entries_[e];
    if (entry.tail == 0) continue;  // not a chain head
    for (size_t i = entry.hash & mask;; i = (i + 1) & mask) {
      if (slots_[i] == 0) {
        slots_[i] = static_cast<uint32_t>(e + 1);
        tags_[i] = TagOf(entry.hash);
        ++occupied_;
        break;
      }
    }
  }
}

void FlatJoinTable::Clear() {
  entries_.clear();
  slots_.clear();
  tags_.clear();
  occupied_ = 0;
}

}  // namespace gqp
