// Payload types exchanged between fragment instances (data path) and
// between the Responder and fragment instances (adaptation control path).
//
// Data path:   TupleBatchPayload, EosPayload, AckPayload
// Control path: RedistributeRequest/Outcome, StateMoveRequest/Reply,
//               RestoreComplete, ProgressRequest/Reply,
//               CompletionOffer/Grant, WeightsAppliedPayload
//
// The control protocol implements the paper's two response types:
//   R2 (prospective):  producers switch their distribution policy for
//                      future tuples only.
//   R1 (retrospective): additionally, tuples in the recovery logs (queued,
//                      in transit, or constituting downstream operator
//                      state) are recalled and redistributed under the new
//                      policy; consumers purge moved state and park probe
//                      tuples of moved buckets until the state is rebuilt.

#ifndef GRIDQP_EXEC_EXCHANGE_MESSAGES_H_
#define GRIDQP_EXEC_EXCHANGE_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "monitor/monitoring_events.h"
#include "net/message.h"
#include "storage/tuple.h"

namespace gqp {

/// A tuple tagged with its producer sequence number and logical partition
/// bucket (-1 under round-robin routing).
struct RoutedTuple {
  uint64_t seq = 0;
  int bucket = -1;
  Tuple tuple;
};

/// A buffer of data tuples on one exchange.
class TupleBatchPayload : public Payload {
 public:
  TupleBatchPayload(int exchange_id, SubplanId producer, int consumer_port,
                    bool resend, uint64_t round, std::vector<RoutedTuple> tuples)
      : exchange_id_(exchange_id),
        producer_(producer),
        consumer_port_(consumer_port),
        resend_(resend),
        round_(round),
        tuples_(std::move(tuples)) {}

  /// Memoized at batch granularity: the batch is immutable once built,
  /// and the network cost model asks for the size of the same batch on
  /// send, on (possibly repeated) transmission and in diagnostics — the
  /// values are walked once, not once per ask.
  size_t WireSize() const override {
    if (wire_size_ == 0) {
      size_t bytes = 48;
      for (const RoutedTuple& t : tuples_) bytes += 12 + t.tuple.WireSize();
      wire_size_ = bytes;
    }
    return wire_size_;
  }
  std::string_view TypeName() const override { return "TupleBatch"; }

  int exchange_id() const { return exchange_id_; }
  const SubplanId& producer() const { return producer_; }
  int consumer_port() const { return consumer_port_; }
  bool resend() const { return resend_; }
  /// Latest retrospective round the producer had opened when this batch
  /// was flushed (0 = none). Tuples routed at round >= R already obey
  /// round R's new map and are never recalled by it, so R's state-move
  /// purge must leave them alone.
  uint64_t round() const { return round_; }
  const std::vector<RoutedTuple>& tuples() const { return tuples_; }

 private:
  int exchange_id_;
  SubplanId producer_;
  int consumer_port_;
  bool resend_;
  uint64_t round_;
  std::vector<RoutedTuple> tuples_;
  mutable size_t wire_size_ = 0;  // 0 = not yet computed
};

/// End-of-stream marker from one producer instance.
class EosPayload : public Payload {
 public:
  EosPayload(int exchange_id, SubplanId producer, int consumer_port)
      : exchange_id_(exchange_id),
        producer_(producer),
        consumer_port_(consumer_port) {}

  size_t WireSize() const override { return 32; }
  std::string_view TypeName() const override { return "Eos"; }

  int exchange_id() const { return exchange_id_; }
  const SubplanId& producer() const { return producer_; }
  int consumer_port() const { return consumer_port_; }

 private:
  int exchange_id_;
  SubplanId producer_;
  int consumer_port_;
};

/// Acknowledgment tuples: seqs whose processing completed downstream.
class AckPayload : public Payload {
 public:
  AckPayload(int exchange_id, SubplanId consumer, std::vector<uint64_t> seqs)
      : exchange_id_(exchange_id),
        consumer_(consumer),
        seqs_(std::move(seqs)) {}

  size_t WireSize() const override { return 32 + 8 * seqs_.size(); }
  std::string_view TypeName() const override { return "Ack"; }

  int exchange_id() const { return exchange_id_; }
  const SubplanId& consumer() const { return consumer_; }
  const std::vector<uint64_t>& seqs() const { return seqs_; }

 private:
  int exchange_id_;
  SubplanId consumer_;
  std::vector<uint64_t> seqs_;
};

/// Consumer -> producer: credit replenishment of the flow-control
/// protocol (D11). Carries the cumulative number of bytes the consumer
/// has released on this link since the query began — NOT a delta — so
/// retransmitted or reordered grants are idempotent (the producer keeps
/// the max). Travels over the reliable control plane when it is enabled.
class CreditGrantPayload : public Payload {
 public:
  CreditGrantPayload(int exchange_id, SubplanId consumer,
                     uint64_t released_bytes)
      : exchange_id_(exchange_id),
        consumer_(consumer),
        released_bytes_(released_bytes) {}

  size_t WireSize() const override { return 32; }
  std::string_view TypeName() const override { return "CreditGrant"; }

  int exchange_id() const { return exchange_id_; }
  const SubplanId& consumer() const { return consumer_; }
  uint64_t released_bytes() const { return released_bytes_; }

 private:
  int exchange_id_;
  SubplanId consumer_;
  uint64_t released_bytes_;
};

/// Responder -> producer fragment: change the distribution policy of the
/// exchanges feeding fragment `target_fragment` to `weights`;
/// retrospectively redistribute logged tuples when `retrospective`.
class RedistributeRequestPayload : public Payload {
 public:
  RedistributeRequestPayload(uint64_t round, int target_fragment,
                             std::vector<double> weights, bool retrospective,
                             std::vector<int> dead_consumers = {})
      : round_(round),
        target_fragment_(target_fragment),
        weights_(std::move(weights)),
        retrospective_(retrospective),
        dead_consumers_(std::move(dead_consumers)) {}

  size_t WireSize() const override {
    return 40 + 8 * weights_.size() + 4 * dead_consumers_.size();
  }
  std::string_view TypeName() const override { return "RedistributeRequest"; }

  uint64_t round() const { return round_; }
  int target_fragment() const { return target_fragment_; }
  const std::vector<double>& weights() const { return weights_; }
  bool retrospective() const { return retrospective_; }
  /// Consumer indexes that crashed: they are excluded from routing, never
  /// asked for state-move replies, and their processed-set is assumed
  /// empty (everything unacknowledged is recovered to survivors).
  const std::vector<int>& dead_consumers() const { return dead_consumers_; }

 private:
  uint64_t round_;
  int target_fragment_;
  std::vector<double> weights_;
  bool retrospective_;
  std::vector<int> dead_consumers_;
};

/// Producer fragment -> Responder: outcome of a redistribution round on
/// one exchange (applied, or rejected because the stream had fully
/// completed).
class RedistributeOutcomePayload : public Payload {
 public:
  RedistributeOutcomePayload(uint64_t round, SubplanId producer, bool applied)
      : round_(round), producer_(producer), applied_(applied) {}

  size_t WireSize() const override { return 40; }
  std::string_view TypeName() const override { return "RedistributeOutcome"; }

  uint64_t round() const { return round_; }
  const SubplanId& producer() const { return producer_; }
  bool applied() const { return applied_; }

 private:
  uint64_t round_;
  SubplanId producer_;
  bool applied_;
};

/// Producer -> consumer: purge instruction of a retrospective round.
/// `purge_all` (round-robin policies) drops every unprocessed queued tuple
/// of this producer; otherwise `buckets_lost` lists partitions to purge
/// (queued tuples and operator state) and `buckets_gained` partitions this
/// consumer is about to receive (probe tuples for them must be parked until
/// RestoreComplete).
class StateMoveRequestPayload : public Payload {
 public:
  StateMoveRequestPayload(uint64_t round, int exchange_id, SubplanId producer,
                          int consumer_port, bool purge_all, bool recovery,
                          std::vector<int> buckets_lost,
                          std::vector<int> buckets_gained,
                          uint64_t coordinator_epoch = 0)
      : round_(round),
        exchange_id_(exchange_id),
        producer_(producer),
        consumer_port_(consumer_port),
        purge_all_(purge_all),
        recovery_(recovery),
        buckets_lost_(std::move(buckets_lost)),
        buckets_gained_(std::move(buckets_gained)),
        coordinator_epoch_(coordinator_epoch) {}

  size_t WireSize() const override {
    return 49 + 4 * (buckets_lost_.size() + buckets_gained_.size());
  }
  std::string_view TypeName() const override { return "StateMoveRequest"; }

  uint64_t round() const { return round_; }
  int exchange_id() const { return exchange_id_; }
  const SubplanId& producer() const { return producer_; }
  int consumer_port() const { return consumer_port_; }
  bool purge_all() const { return purge_all_; }
  /// A failure-recovery round: the purge scope widens to every
  /// unprocessed queued tuple of this producer (a crashed consumer may
  /// have held records of ANY bucket, including buckets that since
  /// migrated elsewhere), and the reply must claim everything this
  /// consumer holds — processed and state-retained alike — so only the
  /// truly lost records are resent.
  bool recovery() const { return recovery_; }
  const std::vector<int>& buckets_lost() const { return buckets_lost_; }
  const std::vector<int>& buckets_gained() const { return buckets_gained_; }
  /// Coordinator epoch of the round's initiator (D14 fencing: recovery
  /// rounds started by a deposed primary must not purge state).
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }

 private:
  uint64_t round_;
  int exchange_id_;
  SubplanId producer_;
  int consumer_port_;
  bool purge_all_;
  bool recovery_;
  std::vector<int> buckets_lost_;
  std::vector<int> buckets_gained_;
  uint64_t coordinator_epoch_;
};

/// Consumer -> producer: seqs of this producer the consumer has fully
/// processed among the purged scope (they must NOT be resent), plus how
/// many queued tuples were discarded (for accounting).
class StateMoveReplyPayload : public Payload {
 public:
  StateMoveReplyPayload(uint64_t round, int exchange_id, SubplanId consumer,
                        std::vector<uint64_t> processed_seqs,
                        std::vector<uint64_t> retained_seqs,
                        uint64_t discarded)
      : round_(round),
        exchange_id_(exchange_id),
        consumer_(consumer),
        processed_seqs_(std::move(processed_seqs)),
        retained_seqs_(std::move(retained_seqs)),
        discarded_(discarded) {}

  size_t WireSize() const override {
    return 40 + 8 * (processed_seqs_.size() + retained_seqs_.size());
  }
  std::string_view TypeName() const override { return "StateMoveReply"; }

  uint64_t round() const { return round_; }
  int exchange_id() const { return exchange_id_; }
  const SubplanId& consumer() const { return consumer_; }
  /// Streamed seqs this consumer fully processed: its outputs hold their
  /// results, so the claim stays valid (and the record must never be
  /// resent) for as long as this consumer lives — even across later
  /// bucket moves.
  const std::vector<uint64_t>& processed_seqs() const {
    return processed_seqs_;
  }
  /// State-resident seqs of buckets this consumer keeps. The claim is
  /// only as durable as the bucket ownership, so it suppresses resending
  /// for the current round only.
  const std::vector<uint64_t>& retained_seqs() const {
    return retained_seqs_;
  }
  uint64_t discarded() const { return discarded_; }

 private:
  uint64_t round_;
  int exchange_id_;
  SubplanId consumer_;
  std::vector<uint64_t> processed_seqs_;
  std::vector<uint64_t> retained_seqs_;
  uint64_t discarded_;
};

/// Producer -> consumer: all recalled tuples for `buckets` have been
/// resent; parked probe tuples of those buckets may flow again.
class RestoreCompletePayload : public Payload {
 public:
  RestoreCompletePayload(uint64_t round, int exchange_id, SubplanId producer,
                         int consumer_port, std::vector<int> buckets,
                         bool all_buckets)
      : round_(round),
        exchange_id_(exchange_id),
        producer_(producer),
        consumer_port_(consumer_port),
        buckets_(std::move(buckets)),
        all_buckets_(all_buckets) {}

  size_t WireSize() const override { return 40 + 4 * buckets_.size(); }
  std::string_view TypeName() const override { return "RestoreComplete"; }

  uint64_t round() const { return round_; }
  int exchange_id() const { return exchange_id_; }
  const SubplanId& producer() const { return producer_; }
  int consumer_port() const { return consumer_port_; }
  const std::vector<int>& buckets() const { return buckets_; }
  bool all_buckets() const { return all_buckets_; }

 private:
  uint64_t round_;
  int exchange_id_;
  SubplanId producer_;
  int consumer_port_;
  std::vector<int> buckets_;
  bool all_buckets_;
};

/// Responder -> producer: progress estimation request (Chaudhuri et al.
/// style "how far along is the stream").
class ProgressRequestPayload : public Payload {
 public:
  explicit ProgressRequestPayload(uint64_t round) : round_(round) {}

  size_t WireSize() const override { return 16; }
  std::string_view TypeName() const override { return "ProgressRequest"; }

  uint64_t round() const { return round_; }

 private:
  uint64_t round_;
};

/// Producer -> Responder: fraction of the input already distributed.
class ProgressReplyPayload : public Payload {
 public:
  ProgressReplyPayload(uint64_t round, SubplanId producer, double fraction,
                       bool eos_sent, uint64_t log_size)
      : round_(round),
        producer_(producer),
        fraction_(fraction),
        eos_sent_(eos_sent),
        log_size_(log_size) {}

  size_t WireSize() const override { return 48; }
  std::string_view TypeName() const override { return "ProgressReply"; }

  uint64_t round() const { return round_; }
  const SubplanId& producer() const { return producer_; }
  double fraction() const { return fraction_; }
  bool eos_sent() const { return eos_sent_; }
  uint64_t log_size() const { return log_size_; }

 private:
  uint64_t round_;
  SubplanId producer_;
  double fraction_;
  bool eos_sent_;
  uint64_t log_size_;
};

/// Consumer fragment -> Responder: the instance has drained all inputs and
/// wants to finish; the Responder must confirm no retrospective
/// redistribution can still route work to it.
class CompletionOfferPayload : public Payload {
 public:
  explicit CompletionOfferPayload(SubplanId consumer) : consumer_(consumer) {}

  size_t WireSize() const override { return 24; }
  std::string_view TypeName() const override { return "CompletionOffer"; }

  const SubplanId& consumer() const { return consumer_; }

 private:
  SubplanId consumer_;
};

/// Responder -> consumer fragment: go ahead and finish.
class CompletionGrantPayload : public Payload {
 public:
  explicit CompletionGrantPayload(SubplanId consumer) : consumer_(consumer) {}

  size_t WireSize() const override { return 24; }
  std::string_view TypeName() const override { return "CompletionGrant"; }

  const SubplanId& consumer() const { return consumer_; }

 private:
  SubplanId consumer_;
};

/// Responder -> Diagnoser (pub/sub): a redistribution round completed and
/// the effective distribution vector is now `weights` (W <- W').
class WeightsAppliedPayload : public Payload {
 public:
  WeightsAppliedPayload(uint64_t round, int target_fragment,
                        std::vector<double> weights)
      : round_(round),
        target_fragment_(target_fragment),
        weights_(std::move(weights)) {}

  size_t WireSize() const override { return 32 + 8 * weights_.size(); }
  std::string_view TypeName() const override { return "WeightsApplied"; }

  uint64_t round() const { return round_; }
  int target_fragment() const { return target_fragment_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  uint64_t round_;
  int target_fragment_;
  std::vector<double> weights_;
};

/// Coordinator -> consumer fragment: one of the producers feeding `port`
/// crashed; stop waiting for its end-of-stream marker.
class ProducerLostPayload : public Payload {
 public:
  ProducerLostPayload(int exchange_id, SubplanId producer, int consumer_port,
                      uint64_t coordinator_epoch = 0)
      : exchange_id_(exchange_id),
        producer_(producer),
        consumer_port_(consumer_port),
        coordinator_epoch_(coordinator_epoch) {}

  size_t WireSize() const override { return 32; }
  std::string_view TypeName() const override { return "ProducerLost"; }

  int exchange_id() const { return exchange_id_; }
  const SubplanId& producer() const { return producer_; }
  int consumer_port() const { return consumer_port_; }
  /// Coordinator epoch the command was issued under (D14 fencing; 0 =
  /// pre-failover, always admitted).
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }

 private:
  int exchange_id_;
  SubplanId producer_;
  int consumer_port_;
  uint64_t coordinator_epoch_;
};

/// Coordinator -> producer fragment: one of the consumers of `exchange_id`
/// crashed. The producer stops sending to it, and — critically — drops it
/// from any in-flight redistribution round: a dead consumer can never send
/// its StateMoveReply, and a round stuck waiting for one would deadlock
/// the whole query (the Responder serializes rounds, so the recovery round
/// could never start either).
class ConsumerLostPayload : public Payload {
 public:
  ConsumerLostPayload(int exchange_id, SubplanId consumer,
                      uint64_t coordinator_epoch = 0)
      : exchange_id_(exchange_id),
        consumer_(consumer),
        coordinator_epoch_(coordinator_epoch) {}

  size_t WireSize() const override { return 32; }
  std::string_view TypeName() const override { return "ConsumerLost"; }

  int exchange_id() const { return exchange_id_; }
  const SubplanId& consumer() const { return consumer_; }
  /// Coordinator epoch the command was issued under (D14 fencing).
  uint64_t coordinator_epoch() const { return coordinator_epoch_; }

 private:
  int exchange_id_;
  SubplanId consumer_;
  uint64_t coordinator_epoch_;
};

/// Coordinator -> Responder/Diagnoser: a monitored evaluator instance
/// crashed; trigger recovery (Responder) and exclude it from balancing
/// decisions (Diagnoser).
class FailureNoticePayload : public Payload {
 public:
  FailureNoticePayload(SubplanId instance, int consumer_index)
      : instance_(instance), consumer_index_(consumer_index) {}

  size_t WireSize() const override { return 32; }
  std::string_view TypeName() const override { return "FailureNotice"; }

  const SubplanId& instance() const { return instance_; }
  int consumer_index() const { return consumer_index_; }

 private:
  SubplanId instance_;
  int consumer_index_;
};

/// GDQS -> fragment instance: all fragments are deployed, begin execution
/// (scan leaves start pumping).
class BeginPayload : public Payload {
 public:
  explicit BeginPayload(int query) : query_(query) {}

  size_t WireSize() const override { return 16; }
  std::string_view TypeName() const override { return "Begin"; }

  int query() const { return query_; }

 private:
  int query_;
};

/// Fragment instance -> coordinator (GDQS): this instance finished.
class FragmentCompletePayload : public Payload {
 public:
  FragmentCompletePayload(SubplanId id, uint64_t tuples_processed,
                          uint64_t tuples_emitted)
      : id_(id),
        tuples_processed_(tuples_processed),
        tuples_emitted_(tuples_emitted) {}

  size_t WireSize() const override { return 40; }
  std::string_view TypeName() const override { return "FragmentComplete"; }

  const SubplanId& id() const { return id_; }
  uint64_t tuples_processed() const { return tuples_processed_; }
  uint64_t tuples_emitted() const { return tuples_emitted_; }

 private:
  SubplanId id_;
  uint64_t tuples_processed_;
  uint64_t tuples_emitted_;
};

/// Pub/sub topic on which the Responder announces applied weight vectors.
inline constexpr const char* kTopicWeightsApplied = "adapt.weights_applied";

}  // namespace gqp

#endif  // GRIDQP_EXEC_EXCHANGE_MESSAGES_H_
