#include "exec/state_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "exec/operator_driver.h"
#include "exec/port_queue_manager.h"

namespace gqp {

StateManager::StateManager(GridNode* node, const ExecConfig* config,
                           const SubplanId& self, FragmentStats* stats,
                           Hooks hooks)
    : node_(node),
      config_(config),
      self_(self),
      stats_(stats),
      hooks_(std::move(hooks)) {}

StateManager::~StateManager() = default;

void StateManager::AddPort() { ports_.emplace_back(); }

void StateManager::RegisterProducer(int port, const std::string& key,
                                    const Address& address, int exchange_id) {
  auto& producers = ports_[static_cast<size_t>(port)];
  auto it = producers.find(key);
  if (it == producers.end()) {
    Entry entry;
    entry.address = address;
    entry.acks = std::make_unique<AckBatcher>(config_->checkpoint_interval);
    entry.exchange_id = exchange_id;
    producers.emplace(key, std::move(entry));
  }
}

void StateManager::RecordProcessed(int port, const std::string& key,
                                   uint64_t seq, int bucket, bool retained,
                                   const std::vector<uint64_t>& output_seqs,
                                   bool has_producer, bool finished) {
  auto& producers = ports_[static_cast<size_t>(port)];
  auto it = producers.find(key);
  if (it == producers.end()) return;
  if (retained) {
    it->second.retained_unacked.push_back(Entry::RetainedInput{seq, bucket});
    return;
  }
  it->second.processed.insert(seq);
  if (output_seqs.empty() || !has_producer) {
    AckInput(port, key, seq, finished);
    return;
  }
  auto pending = std::make_shared<PendingInput>();
  pending->port = port;
  pending->producer_key = key;
  pending->seq = seq;
  pending->remaining_outputs = output_seqs.size();
  for (const uint64_t out_seq : output_seqs) {
    output_to_input_.emplace(out_seq, pending);
  }
}

void StateManager::AckInput(int port, const std::string& key, uint64_t seq,
                            bool finished) {
  auto& producers = ports_[static_cast<size_t>(port)];
  auto it = producers.find(key);
  if (it == producers.end()) return;
  const bool checkpoint_due = it->second.acks->Add(seq);
  // After the fragment finished, acknowledgments no longer batch: late
  // cascading acks (outputs confirmed downstream after our completion)
  // must still reach the producer, or its recovery log never drains.
  if (checkpoint_due || finished) {
    FlushAcks(port, key, /*force=*/finished);
  }
}

void StateManager::OnOutputsAcked(const std::vector<uint64_t>& seqs,
                                  bool finished) {
  for (const uint64_t out_seq : seqs) {
    auto it = output_to_input_.find(out_seq);
    if (it == output_to_input_.end()) continue;
    const std::shared_ptr<PendingInput> pending = it->second;
    output_to_input_.erase(it);
    if (pending->remaining_outputs == 0) continue;  // defensive
    if (--pending->remaining_outputs == 0) {
      AckInput(pending->port, pending->producer_key, pending->seq, finished);
    }
  }
}

void StateManager::AckAllRetained() {
  for (size_t p = 0; p < ports_.size(); ++p) {
    std::vector<std::string> keys;
    for (const auto& [key, entry] : ports_[p]) {
      if (!entry.retained_unacked.empty()) keys.push_back(key);
    }
    for (const std::string& key : keys) {
      Entry& entry = ports_[p].at(key);
      for (const Entry::RetainedInput& r : entry.retained_unacked) {
        entry.acks->Add(r.seq);
      }
      entry.retained_unacked.clear();
      FlushAcks(static_cast<int>(p), key, /*force=*/true);
    }
  }
}

void StateManager::FlushAcks(int port, const std::string& key, bool force) {
  auto& producers = ports_[static_cast<size_t>(port)];
  auto it = producers.find(key);
  if (it == producers.end()) return;
  Entry& entry = it->second;
  if (!force && entry.acks->pending() < config_->checkpoint_interval) {
    return;
  }
  std::vector<uint64_t> seqs = entry.acks->Drain();
  if (seqs.empty()) return;
  auto ack = std::make_shared<AckPayload>(entry.exchange_id, self_,
                                          std::move(seqs));
  ++stats_->acks_sent;
  const Address to = entry.address;
  node_->SubmitWork(kExchangeTag, config_->exchange_send_cost_ms,
                    [this, to, ack]() {
                      const Status s = hooks_.send_to(to, ack);
                      if (!s.ok()) hooks_.fail(s);
                    });
}

void StateManager::FlushAllAcks() {
  for (size_t p = 0; p < ports_.size(); ++p) {
    std::vector<std::string> keys;
    for (const auto& [key, entry] : ports_[p]) {
      keys.push_back(key);
    }
    for (const std::string& key : keys) {
      FlushAcks(static_cast<int>(p), key, /*force=*/true);
    }
  }
}

void StateManager::ApplyStateMove(const StateMoveRequestPayload& request,
                                  const std::string& key, const Address& from,
                                  bool stateful, PortQueueManager* queues,
                                  OperatorDriver* driver) {
  // Coordinator-epoch fence (D14): a round initiated under a deposed
  // coordinator must not purge queues or freeze state — the standby's
  // reconciliation owns this query now.
  if (epoch_guard_ != nullptr &&
      !epoch_guard_->Admit(request.coordinator_epoch())) {
    return;
  }
  const int port = request.consumer_port();
  // The round stays open (and the fragment unfinishable) until the
  // producer's RestoreComplete marker arrives behind any resent tuples.
  OpenRound(key, request.round());

  // 1. Purge unprocessed queued/parked tuples of this producer in scope.
  const PortQueueManager::PurgeResult purged =
      queues->Purge(port, key, request.round(),
                    request.purge_all() || request.recovery(),
                    request.buckets_lost());
  // Purged tuples release their credit: the producer's recovery resend
  // re-charges whichever link the new routing map picks.
  queues->ReleaseCredit(port, key, purged.credit_bytes);
  if (purged.discarded > 0) {
    GQP_LOG_DEBUG << "fragment " << self_.ToString() << " round "
                  << request.round() << ": discarded" << purged.seqs
                  << " from " << key << " (producer will resend)";
  }
  stats_->tuples_discarded_in_moves += purged.discarded;
  if (purged.discarded > 0) {
    node_->SubmitWork(kExchangeTag,
                      config_->consumer_discard_cost_ms *
                          static_cast<double>(purged.discarded),
                      nullptr);
  }

  // 2. Stateful fragments: port 0 carries build state.
  if (stateful && port == 0) {
    if (request.recovery()) {
      // The recovery purge above discarded queued build tuples of every
      // bucket, kept ones included. Probe processing must pause entirely
      // until this producer's resends land (RestoreComplete), or probes
      // would run against incomplete state and silently drop matches.
      BeginBuildRecovery(key, request.round());
    }
    if (!request.buckets_lost().empty()) {
      driver->PurgeBuckets(request.buckets_lost());
      // Probe tuples of lost buckets must not run against the now-missing
      // state; they stay parked until the probe-side purge removes them.
      for (const int b : request.buckets_lost()) Freeze(b);
      PruneRetained(port, key, request.buckets_lost());
    }
    for (const int b : request.buckets_gained()) AwaitRestore(b);
  }
  if (stateful && port != 0 && !request.buckets_lost().empty()) {
    // The probe-side purge arrived: those buckets can thaw.
    for (const int b : request.buckets_lost()) Thaw(b);
  }

  // 3. Reply with everything this consumer holds — processed seqs (its
  // outputs carry their results while it lives) plus retained
  // (state-resident) seqs of buckets it keeps — so nothing it already
  // has is resent and duplicated.
  if (request.purge_all() || request.recovery() ||
      !request.buckets_lost().empty()) {
    std::vector<uint64_t> processed;
    std::vector<uint64_t> retained;
    BuildReply(port, key, request.buckets_lost(), &processed, &retained);
    auto reply = std::make_shared<StateMoveReplyPayload>(
        request.round(), request.exchange_id(), self_, std::move(processed),
        std::move(retained), purged.discarded);
    node_->SubmitWork(kExchangeTag, config_->exchange_send_cost_ms,
                      [this, from, reply]() {
                        const Status s = hooks_.send_to(from, reply);
                        if (!s.ok()) hooks_.fail(s);
                      });
  }
}

void StateManager::ApplyRestoreComplete(const RestoreCompletePayload& restore,
                                        const std::string& key, bool stateful,
                                        PortQueueManager* queues) {
  CloseRound(key, restore.round());
  if (restore.consumer_port() != 0 || !stateful) return;
  EndBuildRecovery(key, restore.round());
  if (restore.all_buckets()) {
    ClearAwaitingRestore();
  } else {
    for (const int b : restore.buckets()) RestoreBucket(b);
  }
  // Unpark probe tuples whose buckets are clear again (none while a
  // build-side recovery round is still restoring state).
  if (build_recovery_empty()) {
    queues->Unpark([this](int bucket) {
      return AwaitingRestore(bucket) || Frozen(bucket);
    });
  }
}

void StateManager::OpenRound(const std::string& key, uint64_t round) {
  open_state_rounds_[key].insert(round);
}

void StateManager::CloseRound(const std::string& key, uint64_t round) {
  auto it = open_state_rounds_.find(key);
  if (it != open_state_rounds_.end()) {
    it->second.erase(round);
    if (it->second.empty()) open_state_rounds_.erase(it);
  }
}

void StateManager::AbandonProducer(const std::string& key) {
  open_state_rounds_.erase(key);
  for (auto it = build_recovery_rounds_.begin();
       it != build_recovery_rounds_.end();) {
    it = it->first == key ? build_recovery_rounds_.erase(it) : std::next(it);
  }
}

void StateManager::BeginBuildRecovery(const std::string& key,
                                      uint64_t round) {
  build_recovery_rounds_.insert({key, round});
}

void StateManager::EndBuildRecovery(const std::string& key, uint64_t round) {
  build_recovery_rounds_.erase({key, round});
}

void StateManager::PruneRetained(int port, const std::string& key,
                                 const std::vector<int>& buckets_lost) {
  auto& producers = ports_[static_cast<size_t>(port)];
  auto it = producers.find(key);
  if (it == producers.end()) return;
  auto& retained = it->second.retained_unacked;
  retained.erase(
      std::remove_if(retained.begin(), retained.end(),
                     [&buckets_lost](const Entry::RetainedInput& r) {
                       return BucketInList(r.bucket, buckets_lost);
                     }),
      retained.end());
}

void StateManager::BuildReply(int port, const std::string& key,
                              const std::vector<int>& buckets_lost,
                              std::vector<uint64_t>* processed,
                              std::vector<uint64_t>* retained) const {
  const auto& producers = ports_[static_cast<size_t>(port)];
  auto it = producers.find(key);
  if (it == producers.end()) return;
  processed->assign(it->second.processed.begin(), it->second.processed.end());
  std::sort(processed->begin(), processed->end());
  for (const Entry::RetainedInput& r : it->second.retained_unacked) {
    if (!BucketInList(r.bucket, buckets_lost)) {
      retained->push_back(r.seq);
    }
  }
  std::sort(retained->begin(), retained->end());
}

std::unordered_map<std::string, std::vector<uint64_t>>
StateManager::ProcessedSeqs(int port) const {
  std::unordered_map<std::string, std::vector<uint64_t>> out;
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) return out;
  for (const auto& [key, entry] : ports_[static_cast<size_t>(port)]) {
    out[key] = std::vector<uint64_t>(entry.processed.begin(),
                                     entry.processed.end());
  }
  return out;
}

size_t StateManager::AcksPendingTotal(int port) const {
  size_t acks_pending = 0;
  for (const auto& [key, entry] : ports_[static_cast<size_t>(port)]) {
    acks_pending += entry.acks->pending();
    acks_pending += entry.retained_unacked.size();
  }
  return acks_pending;
}

std::string StateManager::DebugSuffix() const {
  std::string out;
  if (!open_state_rounds_.empty()) {
    out += " open_rounds={";
    bool first = true;
    for (const auto& [key, rounds] : open_state_rounds_) {
      if (!first) out += " ";
      first = false;
      out += StrCat(key, ":", rounds.size());
    }
    out += "}";
  }
  if (!awaiting_restore_.empty()) {
    out += StrCat(" awaiting_restore=", awaiting_restore_.size());
  }
  if (!frozen_lost_.empty()) out += StrCat(" frozen=", frozen_lost_.size());
  return out;
}

}  // namespace gqp
