#include "exec/port_queue_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "monitor/monitoring_events.h"

namespace gqp {

PortQueueManager::PortQueueManager(GridNode* node, Simulator* simulator,
                                   const ExecConfig* config,
                                   const SubplanId& self,
                                   const AdaptivityWiring* adaptivity,
                                   FragmentStats* stats, Hooks hooks)
    : node_(node),
      simulator_(simulator),
      config_(config),
      self_(self),
      adaptivity_(adaptivity),
      stats_(stats),
      hooks_(std::move(hooks)) {}

void PortQueueManager::AddPort(int num_producers) {
  Port port;
  port.num_producers = num_producers;
  ports_.push_back(std::move(port));
}

void PortQueueManager::RegisterProducer(int port, const std::string& key,
                                        const Address& address,
                                        int exchange_id) {
  Port& p = ports_[static_cast<size_t>(port)];
  auto it = p.producers.find(key);
  if (it == p.producers.end()) {
    Producer producer;
    producer.address = address;
    producer.exchange_id = exchange_id;
    p.producers.emplace(key, std::move(producer));
  }
}

size_t PortQueueManager::CreditGrantThreshold() const {
  const double t = static_cast<double>(config_->credit_window_bytes) *
                   config_->credit_grant_fraction;
  return t < 1.0 ? 1 : static_cast<size_t>(t);
}

void PortQueueManager::EnqueueBatch(int port_idx, const std::string& key,
                                    const TupleBatchPayload& batch) {
  Port& port = ports_[static_cast<size_t>(port_idx)];
  Producer& producer = port.producers.at(key);
  const bool fc = flow_control_on();
  for (const RoutedTuple& rt : batch.tuples()) {
    QueuedTuple qt{rt, key, batch.round()};
    // Byte accounting runs with flow control off too (WireSize is
    // memoized): the peaks are what an A/B run compares FC against.
    qt.wire_bytes = RoutedTupleWireBytes(rt.tuple.WireSize());
    if (fc) producer.credit.Hold(qt.wire_bytes);
    port.held_bytes += qt.wire_bytes;
    port.queue.push_back(std::move(qt));
  }
  stats_->queue_high_watermark =
      std::max(stats_->queue_high_watermark, port.queue.size());
  port.peak_held_bytes = std::max(port.peak_held_bytes, port.held_bytes);
  stats_->queued_bytes_peak =
      std::max(stats_->queued_bytes_peak, port.held_bytes);
  if (fc) UpdateQueuePressure(port_idx);
  node_->SubmitWork(kExchangeTag,
                    config_->consumer_enqueue_cost_ms *
                        static_cast<double>(batch.tuples().size()),
                    nullptr);
}

bool PortQueueManager::QueueEmpty(int port) const {
  return ports_[static_cast<size_t>(port)].queue.empty();
}

int PortQueueManager::PickRunnablePort(
    const std::function<bool(int port)>& eos_complete) const {
  for (size_t p = 0; p < ports_.size(); ++p) {
    if (ports_[p].queue.empty()) continue;
    bool runnable = true;
    for (size_t q = 0; q < p; ++q) {
      if (!eos_complete(static_cast<int>(q)) || !ports_[q].queue.empty()) {
        runnable = false;
        break;
      }
    }
    if (runnable) return static_cast<int>(p);
  }
  return -1;
}

int PortQueueManager::FrontBucket(int port) const {
  return ports_[static_cast<size_t>(port)].queue.front().rt.bucket;
}

QueuedTuple PortQueueManager::PopFront(int port) {
  Port& p = ports_[static_cast<size_t>(port)];
  QueuedTuple qt = std::move(p.queue.front());
  p.queue.pop_front();
  return qt;
}

void PortQueueManager::ParkBlocked(
    int port, const std::function<bool(int bucket)>& blocked) {
  Port& p = ports_[static_cast<size_t>(port)];
  while (!p.queue.empty()) {
    if (!blocked(p.queue.front().rt.bucket)) break;
    p.parked.push_back(std::move(p.queue.front()));
    p.queue.pop_front();
    ++stats_->tuples_parked;
    stats_->parked_peak = std::max(stats_->parked_peak, p.parked.size());
  }
}

void PortQueueManager::Unpark(
    const std::function<bool(int bucket)>& still_blocked) {
  for (Port& port : ports_) {
    for (auto it = port.parked.begin(); it != port.parked.end();) {
      if (!still_blocked(it->rt.bucket)) {
        port.queue.push_back(std::move(*it));
        it = port.parked.erase(it);
      } else {
        ++it;
      }
    }
  }
}

PortQueueManager::PurgeResult PortQueueManager::Purge(
    int port_idx, const std::string& key, uint64_t round, bool unconditional,
    const std::vector<int>& buckets_lost) {
  Port& port = ports_[static_cast<size_t>(port_idx)];
  PurgeResult result;
  auto purge = [&](std::deque<QueuedTuple>* q) {
    for (auto it = q->begin(); it != q->end();) {
      const bool mine = it->producer_key == key;
      // Batches stamped with this round (or a later one) were routed
      // under its new map AFTER the producer froze its recall watermark:
      // the producer will never resend them, so purging them here would
      // lose them outright. They slip in when this request's dispatch was
      // deferred behind a slow in-flight tuple.
      const bool in_scope =
          it->round < round &&
          (unconditional || BucketInList(it->rt.bucket, buckets_lost));
      if (mine && in_scope) {
        ++result.discarded;
        result.credit_bytes += it->wire_bytes;
        result.seqs += StrCat(" ", it->rt.seq);
        it = q->erase(it);
      } else {
        ++it;
      }
    }
  };
  purge(&port.queue);
  purge(&port.parked);
  return result;
}

void PortQueueManager::ReleaseCredit(int port_idx, const std::string& key,
                                     size_t bytes) {
  if (bytes == 0) return;
  Port& port = ports_[static_cast<size_t>(port_idx)];
  port.held_bytes -= std::min<uint64_t>(bytes, port.held_bytes);
  if (!flow_control_on()) return;
  auto it = port.producers.find(key);
  if (it != port.producers.end()) {
    const bool due = it->second.credit.Release(bytes, CreditGrantThreshold());
    // No grants to fenced producers: their link was voided at the
    // producer side, and recovery owns their bytes now.
    if (due && !hooks_.is_lost(port_idx, key)) {
      SendCreditGrant(&it->second);
    }
  }
  UpdateQueuePressure(port_idx);
}

void PortQueueManager::FlushCreditGrants() {
  if (!flow_control_on()) return;
  for (size_t p = 0; p < ports_.size(); ++p) {
    Port& port = ports_[p];
    std::vector<std::string> keys;
    for (const auto& [key, producer] : port.producers) {
      if (producer.credit.pending_grant_bytes > 0 &&
          !hooks_.is_lost(static_cast<int>(p), key)) {
        keys.push_back(key);
      }
    }
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      SendCreditGrant(&port.producers.at(key));
    }
  }
}

void PortQueueManager::SendCreditGrant(Producer* producer) {
  const uint64_t released = producer->credit.TakeGrant();
  auto grant = std::make_shared<CreditGrantPayload>(producer->exchange_id,
                                                    self_, released);
  ++stats_->credit_grants_sent;
  const Address to = producer->address;
  node_->SubmitWork(kExchangeTag, config_->exchange_send_cost_ms,
                    [this, to, grant]() {
                      const Status s = hooks_.send_to(to, grant);
                      if (!s.ok()) {
                        GQP_LOG_WARN << "credit grant send failed: "
                                     << s.ToString();
                      }
                    });
}

void PortQueueManager::UpdateQueuePressure(int port_idx) {
  if (!flow_control_on()) return;
  Port& port = ports_[static_cast<size_t>(port_idx)];
  const double window = static_cast<double>(config_->credit_window_bytes) *
                        static_cast<double>(std::max(port.num_producers, 1));
  const bool over = static_cast<double>(port.held_bytes) >=
                    config_->pressure_fraction * window;
  if (!over) {
    // Relief re-arms the episode detector.
    port.pressure_since = -1.0;
    port.pressure_emitted = false;
    return;
  }
  const SimTime now = simulator_->Now();
  if (port.pressure_since < 0.0) {
    port.pressure_since = now;
    return;
  }
  if (port.pressure_emitted ||
      now - port.pressure_since < config_->pressure_threshold_ms) {
    return;
  }
  port.pressure_emitted = true;
  ++stats_->queue_pressure_events;
  if (adaptivity_->med.host == kInvalidHost) return;
  node_->SubmitWork(kExchangeTag, config_->monitor_emit_cost_ms, nullptr);
  const Status s = hooks_.send_to(
      adaptivity_->med,
      std::make_shared<QueuePressurePayload>(self_, port_idx, port.held_bytes,
                                             static_cast<uint64_t>(window)));
  if (!s.ok()) {
    GQP_LOG_WARN << "QueuePressure emission failed: " << s.ToString();
  }
}

size_t PortQueueManager::queue_size(int port) const {
  return ports_[static_cast<size_t>(port)].queue.size();
}

size_t PortQueueManager::parked_size(int port) const {
  return ports_[static_cast<size_t>(port)].parked.size();
}

size_t PortQueueManager::QueuedTuples(int port) const {
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) return 0;
  const Port& p = ports_[static_cast<size_t>(port)];
  return p.queue.size() + p.parked.size();
}

uint64_t PortQueueManager::held_bytes(int port) const {
  return ports_[static_cast<size_t>(port)].held_bytes;
}

bool PortQueueManager::AllQueuesEmpty() const {
  for (const Port& port : ports_) {
    if (!port.queue.empty() || !port.parked.empty()) return false;
  }
  return true;
}

}  // namespace gqp
