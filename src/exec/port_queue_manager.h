// Port queues + credit accounting of a fragment instance (DESIGN.md §D11,
// §D12). Owns the per-port tuple queues (runnable + parked), the byte
// accounting behind the bounded-memory invariant, and the consumer side of
// the credit protocol: per-producer CreditAccounts, batched CreditGrant
// emission and queue-pressure episode detection. The composition root
// (FragmentExecutor) decides WHEN tuples are enqueued, popped, parked or
// purged; this component owns the bookkeeping of each transition.

#ifndef GRIDQP_EXEC_PORT_QUEUE_MANAGER_H_
#define GRIDQP_EXEC_PORT_QUEUE_MANAGER_H_

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/exchange_messages.h"
#include "exec/flow_control.h"
#include "exec/instance_plan.h"
#include "grid/node.h"
#include "sim/simulator.h"

namespace gqp {

/// One tuple waiting on an input port.
struct QueuedTuple {
  RoutedTuple rt;
  /// Producer identity (for acknowledgments and processed-tracking).
  std::string producer_key;
  /// Round epoch stamped on the carrying batch; a state-move purge for
  /// round R skips tuples with round >= R (already routed by R's map).
  uint64_t round = 0;
  /// Bytes this tuple holds against its producer's credit window
  /// (0 with flow control off). Released exactly once, when the tuple
  /// is popped for processing or purged by a state move.
  size_t wire_bytes = 0;
};

class PortQueueManager {
 public:
  struct Hooks {
    /// Delivers a control payload (grants, pressure) over the bus.
    std::function<Status(const Address&, PayloadPtr)> send_to;
    /// Fenced-producer probe: no grants to producers recovery owns.
    std::function<bool(int port, const std::string& key)> is_lost;
  };

  /// What a state-move purge removed from the queues.
  struct PurgeResult {
    uint64_t discarded = 0;
    uint64_t credit_bytes = 0;
    /// " seq seq ..." for the discard debug log.
    std::string seqs;
  };

  PortQueueManager(GridNode* node, Simulator* simulator,
                   const ExecConfig* config, const SubplanId& self,
                   const AdaptivityWiring* adaptivity, FragmentStats* stats,
                   Hooks hooks);

  void AddPort(int num_producers);
  /// Ensures a credit account exists for the producer link (registration
  /// order mirrors StateManager's so iteration-order-sensitive paths stay
  /// aligned with the pre-split executor).
  void RegisterProducer(int port, const std::string& key,
                        const Address& address, int exchange_id);

  bool flow_control_on() const {
    return config_->flow_control_enabled && config_->credit_window_bytes > 0;
  }
  size_t CreditGrantThreshold() const;

  /// Enqueues a batch: charges each tuple's wire bytes to the producer's
  /// account (byte accounting runs with flow control off too: the peaks
  /// are what an A/B run compares FC against), refreshes watermarks and
  /// pressure tracking, and charges the per-tuple enqueue CPU cost.
  void EnqueueBatch(int port, const std::string& key,
                    const TupleBatchPayload& batch);

  bool QueueEmpty(int port) const;
  /// Two-phase port selection: the first port with queued tuples whose
  /// earlier ports are fully drained (EOS complete and queue empty), or
  /// -1. Build inputs (port 0) therefore always run before probes.
  int PickRunnablePort(
      const std::function<bool(int port)>& eos_complete) const;
  /// Bucket of the front queued tuple (undefined when empty).
  int FrontBucket(int port) const;
  /// Pops the front tuple; the caller releases its credit.
  QueuedTuple PopFront(int port);
  /// Moves blocked front tuples to the parked queue until the front is
  /// runnable or the queue drains.
  void ParkBlocked(int port, const std::function<bool(int bucket)>& blocked);
  /// Re-queues parked tuples whose bucket became runnable again.
  void Unpark(const std::function<bool(int bucket)>& still_blocked);

  /// Removes unprocessed tuples of `key` below `round` on the port —
  /// every bucket when `unconditional` (purge_all/recovery), else only
  /// `buckets_lost`. The caller releases the returned credit bytes.
  PurgeResult Purge(int port, const std::string& key, uint64_t round,
                    bool unconditional, const std::vector<int>& buckets_lost);

  /// Releases `bytes` of a producer's credit (tuple processed or purged)
  /// and sends a CreditGrant when the batched releases cross the
  /// threshold. Also refreshes the port's pressure tracking.
  void ReleaseCredit(int port, const std::string& key, size_t bytes);
  /// Sends any sub-threshold pending grants (called when the driver goes
  /// idle or parks on credit, so an upstream producer can never starve on
  /// releases that sit below the batching threshold forever).
  void FlushCreditGrants();
  void UpdateQueuePressure(int port);

  // --- introspection ----------------------------------------------------
  size_t queue_size(int port) const;
  size_t parked_size(int port) const;
  /// Queued + parked tuples on one port.
  size_t QueuedTuples(int port) const;
  uint64_t held_bytes(int port) const;
  bool AllQueuesEmpty() const;

 private:
  struct Producer {
    Address address;
    int exchange_id = -1;
    /// Flow-control account of this link (D11).
    CreditAccount credit;
  };

  struct Port {
    int num_producers = 1;
    std::deque<QueuedTuple> queue;
    /// Probe tuples parked while their bucket's build state moves.
    std::deque<QueuedTuple> parked;
    std::unordered_map<std::string, Producer> producers;
    /// Bytes currently held (queued + parked) on this port, the peak
    /// seen, and pressure episode tracking (D11).
    uint64_t held_bytes = 0;
    uint64_t peak_held_bytes = 0;
    SimTime pressure_since = -1.0;
    bool pressure_emitted = false;
  };

  void SendCreditGrant(Producer* producer);

  GridNode* node_;
  Simulator* simulator_;
  const ExecConfig* config_;
  SubplanId self_;
  const AdaptivityWiring* adaptivity_;
  FragmentStats* stats_;
  Hooks hooks_;
  std::vector<Port> ports_;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_PORT_QUEUE_MANAGER_H_
