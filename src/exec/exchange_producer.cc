#include "exec/exchange_producer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace gqp {

ExchangeProducer::ExchangeProducer(SubplanId self, OutputWiring wiring,
                                   ExecConfig config, Hooks hooks)
    : self_(self),
      wiring_(std::move(wiring)),
      config_(config),
      hooks_(std::move(hooks)) {}

Status ExchangeProducer::Open() {
  if (wiring_.consumers.empty()) {
    return Status::InvalidArgument("exchange producer needs >= 1 consumer");
  }
  GQP_ASSIGN_OR_RETURN(policy_,
                       MakePolicy(wiring_.desc, wiring_.initial_weights));
  buffers_.resize(wiring_.consumers.size());
  pending_overhead_ms_.resize(wiring_.consumers.size(), 0.0);
  credit_.Configure(wiring_.consumers.size(),
                    config_.flow_control_enabled ? config_.credit_window_bytes
                                                 : 0);
  stats_.tuples_to_consumer.assign(wiring_.consumers.size(), 0);
  stats_.tuples_sent_to_consumer.assign(wiring_.consumers.size(), 0);
  return Status::OK();
}

Status ExchangeProducer::RouteAndBuffer(const Tuple& tuple, uint64_t seq,
                                        bool resend) {
  int bucket = -1;
  const int idx = policy_->Route(tuple, &bucket);
  if (idx < 0 || idx >= num_consumers()) {
    return Status::Internal(StrCat("policy routed to invalid consumer ", idx));
  }
  const size_t uidx = static_cast<size_t>(idx);

  if (config_.recovery_log_enabled) {
    log_.Append(LogRecord{seq, bucket, idx, tuple});
    pending_overhead_ms_[uidx] += config_.log_append_cost_ms;
  }
  pending_overhead_ms_[uidx] += config_.exchange_route_cost_ms;

  buffers_[uidx].push_back(RoutedTuple{seq, bucket, tuple});
  ++stats_.tuples_to_consumer[uidx];
  if (resend) ++stats_.resent_tuples;
  credit_.Charge(idx, RoutedTupleWireBytes(tuple.WireSize()), resend);

  if (buffers_[uidx].size() >= config_.buffer_tuples) {
    return Flush(idx, resend);
  }
  return Status::OK();
}

Result<uint64_t> ExchangeProducer::Offer(const Tuple& tuple) {
  if (input_finished_) {
    return Status::FailedPrecondition("Offer after FinishInput");
  }
  ++stats_.tuples_offered;
  const uint64_t seq = next_seq_++;
  GQP_RETURN_IF_ERROR(RouteAndBuffer(tuple, seq, /*resend=*/false));
  return seq;
}

Status ExchangeProducer::Flush(int idx, bool resend) {
  const size_t uidx = static_cast<size_t>(idx);
  if (dead_consumers_.count(idx) > 0) {
    buffers_[uidx].clear();
    return Status::OK();
  }
  if (buffers_[uidx].empty()) return Status::OK();

  auto batch = std::make_shared<TupleBatchPayload>(
      wiring_.desc.id, self_, wiring_.desc.consumer_port, resend,
      round_epoch_, std::move(buffers_[uidx]));
  buffers_[uidx].clear();
  const double cost =
      config_.exchange_send_cost_ms + pending_overhead_ms_[uidx];
  pending_overhead_ms_[uidx] = 0.0;
  ++stats_.buffers_sent;
  const size_t tuple_count = batch->tuples().size();
  const size_t wire_bytes = batch->WireSize();

  // The send happens when the CPU work completes, preserving causality.
  hooks_.submit_work(cost, [this, idx, batch, cost, tuple_count,
                            wire_bytes]() {
    const Status s = hooks_.send(idx, batch);
    if (!s.ok()) {
      GQP_LOG_WARN << "exchange " << wiring_.desc.id
                   << ": send failed: " << s.ToString();
      return;
    }
    stats_.tuples_sent_to_consumer[static_cast<size_t>(idx)] += tuple_count;
    if (hooks_.on_buffer_sent) {
      hooks_.on_buffer_sent(idx, cost, tuple_count, wire_bytes);
    }
  });
  return Status::OK();
}

Status ExchangeProducer::FlushPartialBuffers() {
  for (int idx = 0; idx < num_consumers(); ++idx) {
    GQP_RETURN_IF_ERROR(Flush(idx, /*resend=*/false));
  }
  return Status::OK();
}

Status ExchangeProducer::SendEos() {
  eos_sent_ = true;
  for (int idx = 0; idx < num_consumers(); ++idx) {
    if (dead_consumers_.count(idx) > 0) continue;
    GQP_RETURN_IF_ERROR(Flush(idx, /*resend=*/false));
    auto eos = std::make_shared<EosPayload>(wiring_.desc.id, self_,
                                            wiring_.desc.consumer_port);
    hooks_.submit_work(config_.exchange_send_cost_ms, [this, idx, eos]() {
      const Status s = hooks_.send(idx, eos);
      if (!s.ok()) {
        GQP_LOG_WARN << "exchange " << wiring_.desc.id
                     << ": EOS send failed: " << s.ToString();
      }
    });
  }
  return Status::OK();
}

Status ExchangeProducer::FinishInput() {
  if (input_finished_) return Status::OK();
  input_finished_ = true;
  if (round_.has_value()) {
    // EOS is deferred until the retrospective round completes, so resent
    // tuples always precede the end-of-stream markers.
    return Status::OK();
  }
  return SendEos();
}

void ExchangeProducer::OnAck(const AckPayload& ack) {
  // Fence acks from consumers already declared dead (false suspicion:
  // the consumer is alive and still flushing). Its records were recovered
  // to survivors; a stale ack must not prune the log copy they now own.
  for (int c = 0; c < num_consumers(); ++c) {
    if (wiring_.consumers[static_cast<size_t>(c)].id == ack.consumer()) {
      if (dead_consumers_.count(c) > 0) return;
      break;
    }
  }
  log_.AckBatch(ack.seqs());
  for (const uint64_t seq : ack.seqs()) claimed_by_.erase(seq);
  if (hooks_.on_acked) hooks_.on_acked(ack.seqs());
}

bool ExchangeProducer::OnCreditGrant(const CreditGrantPayload& grant) {
  if (!credit_.enabled()) return false;
  for (int c = 0; c < num_consumers(); ++c) {
    if (wiring_.consumers[static_cast<size_t>(c)].id == grant.consumer()) {
      if (dead_consumers_.count(c) > 0) return false;  // voided link
      return credit_.OnGrant(c, grant.released_bytes());
    }
  }
  return false;
}

double ExchangeProducer::ProgressFraction() const {
  if (input_finished_) return 1.0;
  if (wiring_.estimated_rows == 0) return 0.0;
  const double f = static_cast<double>(stats_.tuples_offered) /
                   static_cast<double>(wiring_.estimated_rows);
  return std::min(f, 1.0);
}

Status ExchangeProducer::HandleRedistribute(
    const RedistributeRequestPayload& request) {
  if (round_.has_value()) {
    // The Responder serializes rounds; a concurrent request is a protocol
    // violation — reject rather than corrupt the in-flight dance.
    ++stats_.redistributions_rejected;
    hooks_.on_round_done(request.round(), false);
    return Status::FailedPrecondition("redistribution round already active");
  }
  if (eos_sent_ && (!config_.recovery_log_enabled || log_.empty())) {
    // Stream fully delivered and nothing left to move.
    ++stats_.redistributions_rejected;
    hooks_.on_round_done(request.round(), false);
    return Status::OK();
  }

  if (!request.retrospective()) {
    // R2 (prospective): only future tuples are affected.
    Result<std::vector<BucketMove>> moves =
        policy_->UpdateWeights(request.weights());
    if (!moves.ok()) {
      ++stats_.redistributions_rejected;
      hooks_.on_round_done(request.round(), false);
      return moves.status();
    }
    ++stats_.redistributions_applied;
    hooks_.on_round_done(request.round(), true);
    return Status::OK();
  }

  // R1 (retrospective).
  if (!config_.recovery_log_enabled) {
    ++stats_.redistributions_rejected;
    hooks_.on_round_done(request.round(), false);
    return Status::FailedPrecondition(
        "retrospective response requires the recovery log");
  }

  // Crashed consumers first: they stop receiving anything, and their
  // recovery-log records are recovered to survivors (the fault-tolerance
  // substrate of Smith & Watson working as designed).
  for (const int dead : request.dead_consumers()) {
    if (dead >= 0 && dead < num_consumers()) {
      dead_consumers_.insert(dead);
      // Epoch fence for flow control too: a dead consumer can never
      // release its bytes; its link stops gating.
      credit_.VoidConsumer(dead);
    }
  }

  GQP_ASSIGN_OR_RETURN(std::vector<BucketMove> moves,
                       policy_->UpdateWeights(request.weights()));

  InFlightRound round;
  round.id = request.round();
  round.recall_before_seq = next_seq_;
  // From here on every tuple is routed by the new map; stamp outgoing
  // batches so a consumer whose StateMoveRequest processing lags (it may
  // defer mid-tuple) cannot purge them — they are exactly the tuples the
  // recall watermark above excludes, so nobody would ever resend them.
  round_epoch_ = round.id;
  GQP_LOG_DEBUG << "producer " << self_.ToString() << " round " << round.id
                << " opened: recall_before_seq=" << round.recall_before_seq;
  round.lost.resize(static_cast<size_t>(num_consumers()));
  round.gained.resize(static_cast<size_t>(num_consumers()));
  round.purge_all = policy_->kind() == PolicyKind::kWeightedRoundRobin;
  // A crashed consumer may have held records of ANY bucket — including
  // buckets that migrated away from it in earlier rounds while it kept
  // the (unacknowledged) results. Recovery therefore recalls the whole
  // log, and every survivor must reply with what it holds so only the
  // truly lost records are resent.
  round.recovery = !request.dead_consumers().empty();
  if (!round.purge_all) {
    for (const BucketMove& m : moves) {
      round.lost[static_cast<size_t>(m.from_consumer)].push_back(m.bucket);
      round.gained[static_cast<size_t>(m.to_consumer)].push_back(m.bucket);
    }
  }
  for (int c = 0; c < num_consumers(); ++c) {
    if (dead_consumers_.count(c) > 0) continue;  // no reply will come
    if (round.purge_all || round.recovery ||
        !round.lost[static_cast<size_t>(c)].empty()) {
      round.awaiting_reply.insert(c);
    }
  }
  // A dead consumer's processed set is unknown and assumed empty: every
  // unacknowledged record it held is resent to survivors. Clear its
  // buffered (unsent) tuples; they are in the log and will be recalled.
  for (const int dead : request.dead_consumers()) {
    if (dead >= 0 && dead < num_consumers()) {
      buffers_[static_cast<size_t>(dead)].clear();
    }
  }

  // Pull moved tuples out of the unsent buffers first; they are in the log
  // and will be resent through the new routing (avoids duplicates). The
  // consumer never saw these tuples, so their credit is un-charged here —
  // the resend re-charges them on whichever link the new map picks.
  for (int c = 0; c < num_consumers(); ++c) {
    auto& buf = buffers_[static_cast<size_t>(c)];
    size_t purged_bytes = 0;
    if (round.purge_all || round.recovery) {
      for (const RoutedTuple& t : buf) {
        purged_bytes += RoutedTupleWireBytes(t.tuple.WireSize());
      }
      buf.clear();
      credit_.Uncharge(c, purged_bytes);
      continue;
    }
    const auto& lost = round.lost[static_cast<size_t>(c)];
    if (lost.empty()) continue;
    buf.erase(std::remove_if(buf.begin(), buf.end(),
                             [&lost, &purged_bytes](const RoutedTuple& t) {
                               if (std::find(lost.begin(), lost.end(),
                                             t.bucket) == lost.end()) {
                                 return false;
                               }
                               purged_bytes +=
                                   RoutedTupleWireBytes(t.tuple.WireSize());
                               return true;
                             }),
              buf.end());
    credit_.Uncharge(c, purged_bytes);
  }

  // Notify live consumers. Purgers reply; gain-only consumers just park.
  for (int c = 0; c < num_consumers(); ++c) {
    const size_t uc = static_cast<size_t>(c);
    if (dead_consumers_.count(c) > 0) continue;
    if (!round.purge_all && !round.recovery && round.lost[uc].empty() &&
        round.gained[uc].empty()) {
      continue;
    }
    auto msg = std::make_shared<StateMoveRequestPayload>(
        round.id, wiring_.desc.id, self_, wiring_.desc.consumer_port,
        round.purge_all, round.recovery, round.lost[uc], round.gained[uc],
        coordinator_epoch_);
    const int idx = c;
    hooks_.submit_work(config_.exchange_send_cost_ms, [this, idx, msg]() {
      const Status s = hooks_.send(idx, msg);
      if (!s.ok()) {
        GQP_LOG_WARN << "exchange " << wiring_.desc.id
                     << ": StateMoveRequest send failed: " << s.ToString();
      }
    });
  }

  round_ = std::move(round);
  if (round_->awaiting_reply.empty()) {
    // Nothing to recall (e.g. weights changed without bucket moves).
    return CompleteRound();
  }
  return Status::OK();
}

std::string ExchangeProducer::DebugString() const {
  std::string out =
      StrCat("eos=", eos_sent_, " input_finished=", input_finished_,
             " log=", log_.size());
  size_t buffered = 0;
  for (const auto& buf : buffers_) buffered += buf.size();
  if (buffered > 0) out += StrCat(" buffered=", buffered);
  if (!dead_consumers_.empty()) {
    out += StrCat(" dead_consumers=", dead_consumers_.size());
  }
  if (round_.has_value()) {
    out += StrCat(" round=", round_->id, " awaiting_reply={");
    bool first = true;
    for (const int c : round_->awaiting_reply) {
      if (!first) out += " ";
      first = false;
      out += StrCat(c);
    }
    out += "}";
  }
  return out;
}

Status ExchangeProducer::HandleStateMoveReply(
    const StateMoveReplyPayload& reply) {
  if (!round_.has_value() || reply.round() != round_->id) {
    GQP_LOG_WARN << "exchange " << wiring_.desc.id
                 << ": stale StateMoveReply for round " << reply.round();
    return Status::OK();
  }
  const SubplanId& consumer = reply.consumer();
  int idx = -1;
  for (int c = 0; c < num_consumers(); ++c) {
    if (wiring_.consumers[static_cast<size_t>(c)].id == consumer) {
      idx = c;
      break;
    }
  }
  if (idx < 0) {
    return Status::NotFound("StateMoveReply from unknown consumer");
  }
  // Fence: a consumer declared dead mid-round (its reply raced the
  // ConsumerLost) must not claim records — the recovery round assumes its
  // processed set is empty and resends to survivors.
  if (dead_consumers_.count(idx) > 0) return Status::OK();
  round_->awaiting_reply.erase(idx);
  for (const uint64_t seq : reply.processed_seqs()) {
    round_->processed.insert(seq);
    // Sticky claim: the consumer's outputs hold this record's results as
    // long as it lives, so later rounds must not resend it either — even
    // ones that do not consult this consumer (e.g. its bucket moved on).
    claimed_by_[seq] = idx;
  }
  // Retained (state-resident) claims are only as durable as the bucket
  // ownership: they suppress resending for this round only.
  for (const uint64_t seq : reply.retained_seqs()) {
    round_->processed.insert(seq);
  }
  if (round_->awaiting_reply.empty()) return CompleteRound();
  return Status::OK();
}

Status ExchangeProducer::HandleConsumerLost(const SubplanId& consumer) {
  int idx = -1;
  for (int c = 0; c < num_consumers(); ++c) {
    if (wiring_.consumers[static_cast<size_t>(c)].id == consumer) {
      idx = c;
      break;
    }
  }
  if (idx < 0) return Status::OK();
  dead_consumers_.insert(idx);
  // Void the flow-control link: its bytes can never be released by the
  // dead consumer, and a blocked producer must not stay parked waiting
  // for a grant that cannot come.
  credit_.VoidConsumer(idx);
  // Unsent buffered tuples are in the log; the recovery round recalls and
  // reroutes them.
  buffers_[static_cast<size_t>(idx)].clear();
  if (round_.has_value() && round_->awaiting_reply.erase(idx) > 0 &&
      round_->awaiting_reply.empty()) {
    // Its processed set is unknown and assumed empty: anything it had not
    // acknowledged is recalled by the recovery round that follows.
    return CompleteRound();
  }
  return Status::OK();
}

Status ExchangeProducer::CompleteRound() {
  InFlightRound round = std::move(*round_);
  round_.reset();

  // Extract the recalled tuples from the log: everything in a moved
  // bucket (or everything, for purge_all) that no consumer has fully
  // processed.
  std::vector<int> moved_buckets;
  for (const auto& lost : round.lost) {
    moved_buckets.insert(moved_buckets.end(), lost.begin(), lost.end());
  }
  std::sort(moved_buckets.begin(), moved_buckets.end());

  std::vector<LogRecord> recalled = log_.Extract(
      [this, &round, &moved_buckets](const LogRecord& rec) {
        if (rec.seq >= round.recall_before_seq) return false;
        if (round.processed.count(rec.seq) > 0) return false;
        // A surviving consumer claimed this record in an earlier round:
        // its outputs still hold the results.
        const auto claim = claimed_by_.find(rec.seq);
        if (claim != claimed_by_.end() &&
            dead_consumers_.count(claim->second) == 0) {
          return false;
        }
        if (round.purge_all || round.recovery) return true;
        return std::binary_search(moved_buckets.begin(), moved_buckets.end(),
                                  rec.bucket);
      });
  // Processed-but-unacked records stay in the log: "processed" only means
  // the consumer holds the derived results, and those are durable nowhere
  // else until the downstream acknowledgment cascades back. Dropping them
  // here would make the results unrecoverable if that consumer crashes
  // later. The pending acknowledgments prune them in due course.

  // Re-route under the new policy. Buckets are stable; only ownership
  // changed. Charge the paper's "log management" overhead.
  const double extract_cost =
      static_cast<double>(recalled.size()) * config_.log_extract_cost_ms;
  if (extract_cost > 0) hooks_.submit_work(extract_cost, nullptr);
  if (!recalled.empty()) {
    std::string seqs;
    for (const LogRecord& rec : recalled) seqs += StrCat(" ", rec.seq);
    GQP_LOG_DEBUG << "producer " << self_.ToString() << " round " << round.id
                  << ": recalled" << seqs;
  }
  // Resends bypass the credit gate: the RestoreComplete markers below must
  // follow them on the same links, and parked consumers cannot release
  // credit until those markers arrive. The burst still charges the links
  // (the consumers will release it as they drain), and its size feeds the
  // bounded-memory slack term.
  credit_.BeginRecallBurst();
  for (const LogRecord& rec : recalled) {
    GQP_RETURN_IF_ERROR(RouteAndBuffer(rec.tuple, rec.seq, /*resend=*/true));
  }
  // Flush every consumer so RestoreComplete markers follow all resends.
  for (int c = 0; c < num_consumers(); ++c) {
    GQP_RETURN_IF_ERROR(Flush(c, /*resend=*/true));
  }
  credit_.EndRecallBurst();

  // Close the round at every consumer that saw its StateMoveRequest: the
  // marker follows all resent tuples on the same link, so its arrival
  // proves the consumer has everything (gained buckets also unpark).
  for (int c = 0; c < num_consumers(); ++c) {
    const size_t uc = static_cast<size_t>(c);
    if (dead_consumers_.count(c) > 0) continue;
    if (!round.purge_all && !round.recovery && round.gained[uc].empty() &&
        round.lost[uc].empty()) {
      continue;
    }
    auto msg = std::make_shared<RestoreCompletePayload>(
        round.id, wiring_.desc.id, self_, wiring_.desc.consumer_port,
        round.gained[uc], round.purge_all);
    const int idx = c;
    hooks_.submit_work(config_.exchange_send_cost_ms, [this, idx, msg]() {
      const Status s = hooks_.send(idx, msg);
      if (!s.ok()) {
        GQP_LOG_WARN << "exchange " << wiring_.desc.id
                     << ": RestoreComplete send failed: " << s.ToString();
      }
    });
  }

  ++stats_.redistributions_applied;
  hooks_.on_round_done(round.id, true);

  if (input_finished_ && !eos_sent_) {
    return SendEos();
  }
  return Status::OK();
}

}  // namespace gqp
