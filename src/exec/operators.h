// Runtime physical operators. Fragments run a push-based chain:
// the FragmentExecutor feeds tuples into ops[0]; each operator does its
// real work (predicates, hash tables, web-service computations), charges
// its virtual CPU cost to the ExecContext, and emits to the next operator;
// the chain's sink stages output tuples for the exchange producer (or the
// result collector).
//
// Stateful operators implement PurgeBuckets() so retrospective adaptation
// can drop (and later rebuild elsewhere) the state of moved partitions.

#ifndef GRIDQP_EXEC_OPERATORS_H_
#define GRIDQP_EXEC_OPERATORS_H_

#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "exec/flat_join_table.h"
#include "expr/expression.h"
#include "plan/physical_plan.h"
#include "storage/table.h"
#include "storage/tuple_batch.h"

namespace gqp {

/// Cumulative record of every cost charged through an ExecContext, kept as
/// integer counts per distinct (tag, unit cost) pair. Because the counts
/// are exact and the entry order depends only on the order of first
/// encounter (identical in scalar and vectorized mode: the chain order),
/// TotalMs() is computed by the *same* sequence of floating-point
/// operations regardless of batch size — so scalar and vectorized runs of
/// the same input agree bit-for-bit, with none of the drift that
/// re-associating per-tuple additions into per-batch multiplies would
/// introduce (DESIGN.md §D13).
struct ChargeLedger {
  struct Entry {
    std::string_view tag;
    double unit_ms;
    uint64_t count;
  };
  std::vector<Entry> entries;

  void Add(std::string_view tag, double unit_ms, uint64_t n) {
    // Charges repeat the same (tag, unit) in runs; scan from the back so
    // the common case is a first-probe hit.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->unit_ms == unit_ms && it->tag == tag) {
        it->count += n;
        return;
      }
    }
    entries.push_back(Entry{tag, unit_ms, n});
  }
  double TotalMs() const {
    double total = 0.0;
    for (const Entry& e : entries) {
      total += e.unit_ms * static_cast<double>(e.count);
    }
    return total;
  }
  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const Entry& e : entries) total += e.count;
    return total;
  }
  void Clear() { entries.clear(); }
};

/// Per-tuple execution context: cost charges, retention flag, staging area
/// for chain outputs.
struct ExecContext {
  /// (operation tag, base cost ms) pairs accumulated while processing the
  /// current tuple (or batch); the driver turns them into one composite
  /// node work item. Tags are interned views (InternString): charging is
  /// allocation-free on the hot path, and the views stay valid for the
  /// lifetime of any node work item they are copied into.
  std::vector<std::pair<std::string_view, double>> charges;
  /// Set by stateful operators when the input tuple was absorbed into
  /// operator state (it must not be acknowledged upstream yet). Scalar
  /// mode only; batch mode records per-row retention in `row_retained`.
  bool retained = false;
  /// Tuples emitted by the chain for the current input tuple/batch.
  std::vector<Tuple> out;
  /// Batch mode: out_origin[i] is the input-batch row index `out[i]`
  /// derives from (parallel to `out`; empty in scalar mode). Survives the
  /// egress clearing `out` so the executor can map delivered output seqs
  /// back to the input tuples awaiting acknowledgment.
  std::vector<uint32_t> out_origin;
  /// Batch mode: row_retained[i] != 0 when input-batch row i was absorbed
  /// into operator state (indexed by origin, sized by ResetForBatch).
  std::vector<unsigned char> row_retained;
  /// Cumulative (whole-run) charge counts; never reset between tuples.
  /// The canonical total cost both execution modes are compared on.
  ChargeLedger ledger;
  /// Scalar function implementations for filter/project expressions.
  const FunctionRegistry* functions = &FunctionRegistry::Builtins();
  /// Shared predicate-mask scratch for batch filters (capacity reuse).
  std::vector<unsigned char> mask;

  void Charge(std::string_view tag, double ms) {
    charges.emplace_back(tag, ms);
    ledger.Add(tag, ms, 1);
  }
  /// Batch-mode charge: one composite part worth n scalar charges. No-op
  /// for an empty batch (scalar mode charges nothing for zero tuples).
  void ChargeN(std::string_view tag, double unit_ms, uint64_t n) {
    if (n == 0) return;
    charges.emplace_back(tag, unit_ms * static_cast<double>(n));
    ledger.Add(tag, unit_ms, n);
  }
  void ResetForTuple() {
    charges.clear();
    retained = false;
    out.clear();
    out_origin.clear();
  }
  void ResetForBatch(size_t rows) {
    ResetForTuple();
    row_retained.assign(rows, 0);
  }
  double TotalBaseCost() const {
    double total = 0.0;
    for (const auto& [tag, ms] : charges) total += ms;
    return total;
  }
};

/// \brief Base class for chain operators.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual Status Open(ExecContext* ctx);

  /// Processes one tuple arriving on input `port` (0 for single-input
  /// operators; hash join: 0 = build, 1 = probe). `bucket` is the logical
  /// partition assigned by the upstream exchange (-1 when not
  /// partitioned).
  virtual Status Process(int port, const Tuple& tuple, int bucket,
                         ExecContext* ctx) = 0;

  /// Vectorized step: consumes the rows of `in` (which may be left
  /// moved-from) and appends this operator's outputs to `out`. Unlike
  /// Process, a batch step never chains into next_ — the driver walks the
  /// chain, handing each operator's output batch to the next (run to
  /// completion over the batch). Emitted rows carry bucket -1 (exactly
  /// what scalar Emit forwards) and inherit the origin of the input row
  /// they derive from; rows absorbed into operator state mark
  /// ctx->row_retained[origin] instead of ctx->retained. The default
  /// implementation runs the scalar Process per row with chaining
  /// suppressed; every built-in operator overrides it with a tight loop.
  virtual Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                              ExecContext* ctx);

  /// All producers of `port` reached end-of-stream and the queue drained.
  virtual Status FinishPort(int port, ExecContext* ctx);

  /// The whole fragment input is complete; flush any buffered output.
  virtual Status Finish(ExecContext* ctx);

  /// Drops operator state belonging to the given partitions (retrospective
  /// adaptation). Default: no state, no-op.
  virtual void PurgeBuckets(const std::vector<int>& buckets);

  void set_next(PhysicalOperator* next) { next_ = next; }
  PhysicalOperator* next() const { return next_; }

 protected:
  /// Forwards a tuple to the next operator (port 0) or stages it in the
  /// context when this is the chain tail.
  Status Emit(const Tuple& tuple, ExecContext* ctx);

  PhysicalOperator* next_ = nullptr;
};

/// Predicate filter.
class FilterOperator : public PhysicalOperator {
 public:
  explicit FilterOperator(const PhysOpDesc& desc);
  Status Process(int port, const Tuple& tuple, int bucket,
                 ExecContext* ctx) override;
  Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                      ExecContext* ctx) override;

 private:
  ExprPtr predicate_;
  double cost_ms_;
  /// Interned (process-lifetime) operation tag.
  std::string_view tag_;
};

/// Expression projection.
class ProjectOperator : public PhysicalOperator {
 public:
  explicit ProjectOperator(const PhysOpDesc& desc);
  Status Process(int port, const Tuple& tuple, int bucket,
                 ExecContext* ctx) override;
  Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                      ExecContext* ctx) override;

 private:
  std::vector<ExprPtr> exprs_;
  SchemaPtr out_schema_;
  double cost_ms_;
  /// Interned (process-lifetime) operation tag.
  std::string_view tag_;
};

/// Web-service operation call (the paper's operation_call operator). The
/// registered scalar function is genuinely evaluated; the per-call cost is
/// the perturbation target of the Q1 experiments.
class OperationCallOperator : public PhysicalOperator {
 public:
  explicit OperationCallOperator(const PhysOpDesc& desc);
  Status Process(int port, const Tuple& tuple, int bucket,
                 ExecContext* ctx) override;
  /// The registry lookup (a std::function copy in scalar mode) is
  /// amortized: one Find per batch, reused for every row.
  Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                      ExecContext* ctx) override;

 private:
  std::string ws_name_;
  size_t arg_col_;
  SchemaPtr out_schema_;
  double cost_ms_;
  /// Interned (process-lifetime) operation tag.
  std::string_view tag_;
};

/// Partitioned hash join (stateful). Build state is bucketed by the
/// exchange's logical partition so moved partitions can be purged and
/// recreated elsewhere.
class HashJoinOperator : public PhysicalOperator {
 public:
  explicit HashJoinOperator(const PhysOpDesc& desc);

  Status Process(int port, const Tuple& tuple, int bucket,
                 ExecContext* ctx) override;
  /// Build: inserts the whole batch, marking every row retained. Probe:
  /// hashes the key column up front, prefetches the bucket tables, then
  /// probes in a tight loop.
  Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                      ExecContext* ctx) override;
  void PurgeBuckets(const std::vector<int>& buckets) override;

  /// Number of build tuples currently held in state.
  size_t StateSize() const;
  /// Value-identical build tuples inserted while an equal tuple was
  /// already in state — an invariant violation under state moves (unless
  /// the input itself has duplicate rows).
  size_t duplicate_build_inserts() const { return duplicate_build_inserts_; }
  /// Build tuples held for one bucket (tests/inspection).
  size_t StateSizeForBucket(int bucket) const;

 private:
  /// Lazily creates bucket `bucket`'s table, pre-sized from the
  /// optimizer's build-side estimate.
  FlatJoinTable& TableForBucket(int bucket);

  size_t build_key_;
  size_t probe_key_;
  SchemaPtr out_schema_;
  double probe_cost_ms_;
  double build_cost_ms_;
  /// Interned (process-lifetime) operation tag.
  std::string_view tag_;
  /// Per-bucket pre-size hint: estimated build rows / logical buckets.
  size_t bucket_reserve_hint_;
  // Build state, one flat table per logical partition (DESIGN.md
  // "Performance engineering"); index = bucket id, grown on demand.
  std::vector<FlatJoinTable> state_;
  /// Per-batch key-hash scratch (capacity reused across batches).
  std::vector<uint64_t> hash_scratch_;
  /// Per-batch probe candidate-slot scratch (capacity reused across
  /// batches).
  std::vector<uint32_t> cand_scratch_;
  /// Per-batch probe chain-head scratch (capacity reused across batches).
  std::vector<uint32_t> head_scratch_;
  /// Per-batch build-row count per bucket (capacity reused across
  /// batches) for one-shot table pre-sizing.
  std::vector<size_t> batch_bucket_counts_;
  size_t duplicate_build_inserts_ = 0;
};

/// Partitioned hash aggregation (stateful). Partial aggregates are
/// bucketed by the exchange's logical partition: moved partitions are
/// purged here and rebuilt at their new owner from the recovery-logged
/// input tuples, exactly like hash-join state.
class HashAggregateOperator : public PhysicalOperator {
 public:
  explicit HashAggregateOperator(const PhysOpDesc& desc);

  Status Process(int port, const Tuple& tuple, int bucket,
                 ExecContext* ctx) override;
  Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                      ExecContext* ctx) override;
  /// Emits one output tuple per group, then finishes downstream.
  Status Finish(ExecContext* ctx) override;
  void PurgeBuckets(const std::vector<int>& buckets) override;

  /// Number of groups currently held.
  size_t GroupCount() const;

 private:
  struct Accumulator {
    int64_t count = 0;
    double sum = 0.0;
    Value min;
    Value max;
    bool has_value = false;
  };
  struct GroupState {
    std::vector<Value> group_values;
    std::vector<Accumulator> accums;
  };
  // bucket -> encoded group key -> state. Ordered maps: Finish() emits in
  // traversal order, and output order must not depend on hash-table
  // layout (replay determinism, DESIGN.md "Testing & determinism
  // contract").
  using BucketGroups = std::map<std::string, GroupState>;

  Status Accumulate(GroupState* group, const Tuple& tuple, ExecContext* ctx);
  Value Finalize(const AggSpec& spec, const Accumulator& acc) const;

  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  SchemaPtr out_schema_;
  double cost_ms_;
  /// Interned (process-lifetime) operation tag.
  std::string_view tag_;
  std::map<int, BucketGroups> state_;
};

/// Result sink at the coordinator.
class CollectOperator : public PhysicalOperator {
 public:
  explicit CollectOperator(const PhysOpDesc& desc);
  Status Process(int port, const Tuple& tuple, int bucket,
                 ExecContext* ctx) override;
  Status ProcessBatch(int port, TupleBatch* in, TupleBatch* out,
                      ExecContext* ctx) override;

  const std::vector<Tuple>& results() const { return results_; }
  std::vector<Tuple> TakeResults() { return std::move(results_); }

 private:
  double cost_ms_;
  /// Interned (process-lifetime) operation tag.
  std::string_view tag_;
  std::vector<Tuple> results_;
};

/// Instantiates the runtime operator for a descriptor. kScan descriptors
/// are rejected (scans are driven directly by the FragmentExecutor).
Result<std::unique_ptr<PhysicalOperator>> MakeOperator(
    const PhysOpDesc& desc);

}  // namespace gqp

#endif  // GRIDQP_EXEC_OPERATORS_H_
