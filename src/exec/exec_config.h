// Runtime configuration of the query engine shipped to every fragment
// instance at deployment. Paper defaults: one M1 notification per 10
// tuples, one M2 per buffer, checkpoints (= acknowledgment batches) every
// 25 tuples.

#ifndef GRIDQP_EXEC_EXEC_CONFIG_H_
#define GRIDQP_EXEC_EXEC_CONFIG_H_

#include <cstddef>

namespace gqp {

struct ExecConfig {
  /// Tuples per exchange buffer (one network message per buffer).
  size_t buffer_tuples = 50;
  /// Acknowledgment batch size (the checkpoint interval of the
  /// fault-tolerance protocol).
  size_t checkpoint_interval = 25;
  /// Generate one M1 raw notification per this many processed tuples;
  /// 0 disables M1.
  size_t m1_frequency = 10;
  /// Master switch for self-monitoring (M1 + M2 generation).
  bool monitoring_enabled = true;
  /// Producers keep recovery logs (required for retrospective response and
  /// part of the fault-tolerance infrastructure). Static GQESs run with
  /// this off.
  bool recovery_log_enabled = true;

  // --- vectorized execution (D13) --------------------------------------
  /// Batch-at-a-time operator execution: the executor pops up to
  /// `vector_batch_size` runnable tuples per step and runs them through
  /// the chain as one TupleBatch (one composite work item, one M1
  /// accumulation, per-batch cost charging). Off by default: the scalar
  /// path keeps the pinned golden traces byte-identical.
  bool vectorized_enabled = false;
  /// Rows per batch in vectorized mode.
  size_t vector_batch_size = 64;

  // --- credit-based flow control (D11) ---------------------------------
  /// Master switch. Off by default: with flow control disabled the engine
  /// sends zero credit messages and performs zero credit bookkeeping, so
  /// pinned golden traces are unchanged.
  bool flow_control_enabled = false;
  /// Per-query memory budget. At deployment the coordinator divides this
  /// across all exchange links to derive `credit_window_bytes`; ignored
  /// when a window is set explicitly. 0 = unlimited.
  size_t memory_budget_bytes = 0;
  /// Per producer->consumer link credit window: the maximum bytes a
  /// producer may have outstanding (buffered, in flight or held in the
  /// consumer's queues) on one link. 0 = derive from the budget.
  size_t credit_window_bytes = 0;
  /// A consumer sends a CreditGrant once it has released at least this
  /// fraction of a link's window since the previous grant (batching keeps
  /// the control plane quiet).
  double credit_grant_fraction = 0.25;
  /// A consumer is "pressured" when the bytes it holds for a port exceed
  /// this fraction of the port's aggregate window.
  double pressure_fraction = 0.75;
  /// Sustained pressure (virtual ms) before a QueuePressure monitoring
  /// event is emitted.
  double pressure_threshold_ms = 10.0;

  // --- CPU cost model of the exchange machinery (virtual ms) -----------
  /// Serializing + initiating the send of one buffer.
  double exchange_send_cost_ms = 0.05;
  /// Routing one tuple through the distribution policy.
  double exchange_route_cost_ms = 0.001;
  /// Appending one tuple to the recovery log.
  double log_append_cost_ms = 0.008;
  /// Extracting + re-routing one logged tuple during retrospective
  /// redistribution (the paper's "log management" overhead).
  double log_extract_cost_ms = 0.150;
  /// Discarding one queued/state tuple at a consumer during a state move.
  double consumer_discard_cost_ms = 0.050;
  /// Enqueueing one received tuple at a consumer.
  double consumer_enqueue_cost_ms = 0.001;
  /// Generating one raw monitoring notification (self-monitoring operators
  /// are cheap, per the paper's ref [10]).
  double monitor_emit_cost_ms = 0.030;
};

}  // namespace gqp

#endif  // GRIDQP_EXEC_EXEC_CONFIG_H_
