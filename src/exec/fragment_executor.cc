#include "exec/fragment_executor.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "plan/cost_model.h"

namespace gqp {
namespace {

constexpr const char* kExchangeTag = "op:exchange";

std::string ProducerKey(const SubplanId& id) { return id.ToString(); }

bool BucketInList(int bucket, const std::vector<int>& buckets) {
  return std::find(buckets.begin(), buckets.end(), bucket) != buckets.end();
}

}  // namespace

FragmentExecutor::FragmentExecutor(MessageBus* bus, GridNode* node,
                                   Network* network,
                                   FragmentInstancePlan plan,
                                   TablePtr scan_table)
    : GridService(bus, node->id(), plan.id.ToString()),
      node_(node),
      network_(network),
      plan_(std::move(plan)),
      scan_table_(std::move(scan_table)) {}

FragmentExecutor::~FragmentExecutor() = default;

Status FragmentExecutor::Prepare() {
  if (plan_.fragment.ops.empty()) {
    return Status::InvalidArgument("fragment has no operators");
  }
  const bool is_scan = plan_.fragment.IsScanLeaf();
  if (is_scan && scan_table_ == nullptr) {
    return Status::FailedPrecondition(
        StrCat("no local table for scan fragment ",
               plan_.fragment.ops.front().table));
  }
  if (!is_scan &&
      static_cast<int>(plan_.inputs.size()) !=
          plan_.fragment.num_input_ports) {
    return Status::InvalidArgument("input wiring/port count mismatch");
  }

  // Instantiate the chain (scan leaves skip the scan descriptor: the
  // executor itself drives the table).
  const size_t first_op = is_scan ? 1 : 0;
  for (size_t i = first_op; i < plan_.fragment.ops.size(); ++i) {
    GQP_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalOperator> op,
                         MakeOperator(plan_.fragment.ops[i]));
    ops_.push_back(std::move(op));
  }
  for (size_t i = 0; i + 1 < ops_.size(); ++i) {
    ops_[i]->set_next(ops_[i + 1].get());
  }
  for (auto& op : ops_) {
    GQP_RETURN_IF_ERROR(op->Open(&ctx_));
  }

  // Input ports.
  ports_.clear();
  for (const InputWiring& wiring : plan_.inputs) {
    PortState port;
    port.wiring = wiring;
    ports_.push_back(std::move(port));
  }

  // Output exchange.
  if (plan_.output.has_value()) {
    ExchangeProducer::Hooks hooks;
    hooks.send = [this](int idx, PayloadPtr payload) {
      return SendTo(
          plan_.output->consumers[static_cast<size_t>(idx)].address,
          std::move(payload));
    };
    hooks.submit_work = [this](double cost_ms, std::function<void()> done) {
      node_->SubmitWork(kExchangeTag, cost_ms,
                        [done = std::move(done)]() {
                          if (done) done();
                        });
    };
    hooks.on_buffer_sent = [this](int idx, double send_cost_ms,
                                  size_t tuples, size_t wire_bytes) {
      ++stats_.m2_sent;
      if (!plan_.config.monitoring_enabled ||
          plan_.adaptivity.med.host == kInvalidHost) {
        return;
      }
      const ConsumerEndpoint& consumer =
          plan_.output->consumers[static_cast<size_t>(idx)];
      const double transfer = network_->TransferTime(
          host(), consumer.address.host, wire_bytes);
      node_->SubmitWork(kExchangeTag, plan_.config.monitor_emit_cost_ms,
                        nullptr);
      const Status s = SendTo(
          plan_.adaptivity.med,
          std::make_shared<M2Payload>(plan_.id, consumer.id,
                                      send_cost_ms + transfer, tuples));
      if (!s.ok()) {
        GQP_LOG_WARN << "M2 emission failed: " << s.ToString();
      }
    };
    hooks.on_acked = [this](const std::vector<uint64_t>& seqs) {
      OnOutputsAcked(seqs);
    };
    hooks.on_round_done = [this](uint64_t round, bool applied) {
      if (plan_.adaptivity.responder.host == kInvalidHost) return;
      const Status s =
          SendTo(plan_.adaptivity.responder,
                 std::make_shared<RedistributeOutcomePayload>(
                     round, plan_.id, applied));
      if (!s.ok()) {
        GQP_LOG_WARN << "redistribute outcome report failed: "
                     << s.ToString();
      }
    };
    producer_ = std::make_unique<ExchangeProducer>(
        plan_.id, *plan_.output, plan_.config, std::move(hooks));
    GQP_RETURN_IF_ERROR(producer_->Open());
  }

  return Start();  // register the service endpoint
}

Status FragmentExecutor::Begin() {
  if (began_) return Status::OK();
  began_ = true;
  idle_since_ = simulator()->Now();
  idle_tracking_ = true;
  MaybeProcess();
  return Status::OK();
}

const std::vector<Tuple>& FragmentExecutor::Results() const {
  static const std::vector<Tuple> kEmpty;
  for (const auto& op : ops_) {
    if (const auto* collect = dynamic_cast<const CollectOperator*>(op.get())) {
      return collect->results();
    }
  }
  return kEmpty;
}

size_t FragmentExecutor::QueuedTuples(int port) const {
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) return 0;
  const PortState& p = ports_[static_cast<size_t>(port)];
  return p.queue.size() + p.parked.size();
}

const HashJoinOperator* FragmentExecutor::FindHashJoin() const {
  for (const auto& op : ops_) {
    if (const auto* join = dynamic_cast<const HashJoinOperator*>(op.get())) {
      return join;
    }
  }
  return nullptr;
}

std::unordered_map<std::string, std::vector<uint64_t>>
FragmentExecutor::ProcessedSeqs(int port) const {
  std::unordered_map<std::string, std::vector<uint64_t>> out;
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) return out;
  for (const auto& [key, tracking] : ports_[static_cast<size_t>(port)].producers) {
    out[key] = std::vector<uint64_t>(tracking.processed.begin(),
                                     tracking.processed.end());
  }
  return out;
}

void FragmentExecutor::Fail(const Status& status) {
  if (exec_status_.ok()) exec_status_ = status;
  GQP_LOG_ERROR << "fragment " << plan_.id.ToString()
                << " failed: " << status.ToString();
}

// ---- message dispatch ----------------------------------------------------

void FragmentExecutor::HandleMessage(const Message& msg) {
  if (const auto* begin = PayloadAs<BeginPayload>(msg.payload)) {
    (void)begin;
    const Status s = Begin();
    if (!s.ok()) Fail(s);
    return;
  }
  if (const auto* batch = PayloadAs<TupleBatchPayload>(msg.payload)) {
    OnTupleBatch(msg, *batch);
    return;
  }
  if (const auto* eos = PayloadAs<EosPayload>(msg.payload)) {
    OnEos(*eos);
    return;
  }
  if (const auto* lost = PayloadAs<ProducerLostPayload>(msg.payload)) {
    OnProducerLost(*lost);
    return;
  }
  if (const auto* lost = PayloadAs<ConsumerLostPayload>(msg.payload)) {
    if (producer_ != nullptr) {
      const Status s = producer_->HandleConsumerLost(lost->consumer());
      if (!s.ok()) Fail(s);
      MaybeProcess();
      CheckCompletion();
    }
    return;
  }
  if (const auto* ack = PayloadAs<AckPayload>(msg.payload)) {
    OnAck(*ack);
    return;
  }
  if (const auto* grant = PayloadAs<CreditGrantPayload>(msg.payload)) {
    if (producer_ != nullptr && producer_->OnCreditGrant(*grant)) {
      // Headroom may be back: re-probe the driver.
      MaybeProcess();
    }
    return;
  }
  if (const auto* redistribute =
          PayloadAs<RedistributeRequestPayload>(msg.payload)) {
    OnRedistribute(*redistribute);
    return;
  }
  if (PayloadAs<StateMoveRequestPayload>(msg.payload) != nullptr ||
      PayloadAs<RestoreCompletePayload>(msg.payload) != nullptr) {
    // Defer while a tuple is mid-processing, and keep arrival order: a
    // RestoreComplete must never overtake the StateMoveRequest that set
    // up the buckets it clears.
    if (processing_ || !deferred_state_moves_.empty()) {
      deferred_state_moves_.push_back(msg);
    } else {
      DispatchStateMove(msg);
    }
    return;
  }
  if (const auto* reply = PayloadAs<StateMoveReplyPayload>(msg.payload)) {
    OnStateMoveReply(*reply);
    return;
  }
  if (const auto* restore = PayloadAs<RestoreCompletePayload>(msg.payload)) {
    OnRestoreComplete(*restore);
    return;
  }
  if (const auto* progress = PayloadAs<ProgressRequestPayload>(msg.payload)) {
    const double fraction =
        producer_ != nullptr ? producer_->ProgressFraction() : 1.0;
    const bool eos = producer_ != nullptr ? producer_->eos_sent() : true;
    const uint64_t log_size =
        producer_ != nullptr ? producer_->log_size() : 0;
    const Status s =
        SendTo(msg.from, std::make_shared<ProgressReplyPayload>(
                             progress->round(), plan_.id, fraction, eos,
                             log_size));
    if (!s.ok()) Fail(s);
    return;
  }
  if (PayloadAs<CompletionGrantPayload>(msg.payload) != nullptr) {
    OnCompletionGrant();
    return;
  }
  GQP_LOG_DEBUG << "fragment " << plan_.id.ToString()
                << ": unhandled payload "
                << (msg.payload ? msg.payload->TypeName() : "null");
}

void FragmentExecutor::DispatchStateMove(const Message& msg) {
  if (const auto* move = PayloadAs<StateMoveRequestPayload>(msg.payload)) {
    OnStateMoveRequest(msg, *move);
    return;
  }
  if (const auto* restore = PayloadAs<RestoreCompletePayload>(msg.payload)) {
    OnRestoreComplete(*restore);
  }
}

FragmentExecutor::ProducerTracking& FragmentExecutor::TrackProducer(
    PortState* port, const SubplanId& producer, const Address& address,
    int exchange_id) {
  const std::string key = ProducerKey(producer);
  auto it = port->producers.find(key);
  if (it == port->producers.end()) {
    ProducerTracking tracking;
    tracking.address = address;
    tracking.acks =
        std::make_unique<AckBatcher>(plan_.config.checkpoint_interval);
    tracking.exchange_id = exchange_id;
    it = port->producers.emplace(key, std::move(tracking)).first;
  }
  return it->second;
}

void FragmentExecutor::OnTupleBatch(const Message& msg,
                                    const TupleBatchPayload& batch) {
  const int port_idx = batch.consumer_port();
  if (port_idx < 0 || static_cast<size_t>(port_idx) >= ports_.size()) {
    Fail(Status::OutOfRange(
        StrCat("tuple batch for invalid port ", port_idx)));
    return;
  }
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  const std::string key = ProducerKey(batch.producer());
  // Epoch fence: once a producer is reported lost, recovery owns its rows.
  // A falsely-suspected (alive) producer may still flush stale batches;
  // counting them received keeps the conservation ledger balanced, but
  // they are dropped unprocessed and never acknowledged.
  if (port.lost.count(key) > 0) {
    stats_.tuples_received += batch.tuples().size();
    stats_.tuples_fenced += batch.tuples().size();
    return;
  }
  ProducerTracking& tracking =
      TrackProducer(&port, batch.producer(), msg.from, batch.exchange_id());
  stats_.tuples_received += batch.tuples().size();
  const bool fc = FlowControlOn();
  for (const RoutedTuple& rt : batch.tuples()) {
    QueuedTuple qt{rt, key, batch.round()};
    // Byte accounting runs with flow control off too (WireSize is
    // memoized): the peaks are what an A/B run compares FC against.
    qt.wire_bytes = RoutedTupleWireBytes(rt.tuple.WireSize());
    if (fc) tracking.credit.Hold(qt.wire_bytes);
    port.held_bytes += qt.wire_bytes;
    port.queue.push_back(std::move(qt));
  }
  stats_.queue_high_watermark =
      std::max(stats_.queue_high_watermark, port.queue.size());
  port.peak_held_bytes = std::max(port.peak_held_bytes, port.held_bytes);
  stats_.queued_bytes_peak =
      std::max(stats_.queued_bytes_peak, port.held_bytes);
  if (fc) UpdateQueuePressure(port_idx);
  node_->SubmitWork(kExchangeTag,
                    plan_.config.consumer_enqueue_cost_ms *
                        static_cast<double>(batch.tuples().size()),
                    nullptr);
  // New work may re-open a fragment that had offered completion — or one
  // that already finished: the completion handshake cannot foresee
  // failures, so a recovery resend may arrive post-completion. Resume,
  // reprocess, and finish (incl. EOS + completion report) again.
  if (finished_) {
    finished_ = false;
    if (producer_ != nullptr) producer_->Reopen();
  }
  completion_offered_ = false;
  MaybeProcess();
}

void FragmentExecutor::OnEos(const EosPayload& eos) {
  const int port_idx = eos.consumer_port();
  if (port_idx < 0 || static_cast<size_t>(port_idx) >= ports_.size()) {
    Fail(Status::OutOfRange(StrCat("EOS for invalid port ", port_idx)));
    return;
  }
  const std::string key = ProducerKey(eos.producer());
  // A fenced producer's stream already ended as far as recovery is
  // concerned; its late EOS marker carries no information.
  if (ports_[static_cast<size_t>(port_idx)].lost.count(key) == 0) {
    ports_[static_cast<size_t>(port_idx)].eos_from.insert(key);
  }
  MaybeProcess();
  CheckCompletion();
}

void FragmentExecutor::OnProducerLost(const ProducerLostPayload& lost) {
  const int port_idx = lost.consumer_port();
  if (port_idx < 0 || static_cast<size_t>(port_idx) >= ports_.size()) {
    return;
  }
  // Keep whatever the crashed producer already delivered (those outputs
  // are valid); just stop waiting for its end-of-stream marker.
  const std::string key = ProducerKey(lost.producer());
  ports_[static_cast<size_t>(port_idx)].lost.insert(key);
  // Abandon its open rounds: no RestoreComplete will ever arrive, and the
  // replacement delivery comes through the coordinator's recovery.
  open_state_rounds_.erase(key);
  for (auto it = build_recovery_rounds_.begin();
       it != build_recovery_rounds_.end();) {
    it = it->first == key ? build_recovery_rounds_.erase(it) : std::next(it);
  }
  MaybeProcess();
  CheckCompletion();
}

void FragmentExecutor::OnAck(const AckPayload& ack) {
  if (producer_ == nullptr) return;
  producer_->OnAck(ack);
  // The ack may have drained the recovery log: retained inputs become
  // releasable only once every output is durable downstream.
  MaybeAckRetained();
}

void FragmentExecutor::OnRedistribute(
    const RedistributeRequestPayload& request) {
  if (producer_ == nullptr) {
    GQP_LOG_WARN << "redistribute request at fragment without an output";
    return;
  }
  const Status s = producer_->HandleRedistribute(request);
  if (!s.ok()) {
    GQP_LOG_WARN << "fragment " << plan_.id.ToString()
                 << ": redistribute failed: " << s.ToString();
  }
}

void FragmentExecutor::OnStateMoveRequest(
    const Message& msg, const StateMoveRequestPayload& request) {
  const int port_idx = request.consumer_port();
  if (port_idx < 0 || static_cast<size_t>(port_idx) >= ports_.size()) {
    Fail(Status::OutOfRange("StateMoveRequest for invalid port"));
    return;
  }
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  const std::string key = ProducerKey(request.producer());
  // Fence: a round opened by an already-lost producer would be tracked in
  // open_state_rounds_ with no ProducerLost left to clean it up, leaving
  // the fragment unfinishable. Ignore the stale request entirely (the
  // producer gets no reply; its outputs no longer matter).
  if (port.lost.count(key) > 0) return;
  ProducerTracking& tracking = TrackProducer(&port, request.producer(),
                                             msg.from, request.exchange_id());
  const bool stateful = plan_.fragment.Stateful();

  // The round stays open (and this fragment unfinishable) until the
  // producer's RestoreComplete marker arrives behind any resent tuples.
  open_state_rounds_[key].insert(request.round());

  // 1. Purge unprocessed queued/parked tuples of this producer in scope.
  uint64_t discarded = 0;
  uint64_t purged_credit_bytes = 0;
  std::string discarded_seqs;
  auto purge = [&](std::deque<QueuedTuple>* q) {
    for (auto it = q->begin(); it != q->end();) {
      const bool mine = it->producer_key == key;
      // Batches stamped with this round (or a later one) were routed
      // under its new map AFTER the producer froze its recall watermark:
      // the producer will never resend them, so purging them here would
      // lose them outright. They slip in when this request's dispatch was
      // deferred behind a slow in-flight tuple.
      const bool in_scope =
          it->round < request.round() &&
          (request.purge_all() || request.recovery() ||
           BucketInList(it->rt.bucket, request.buckets_lost()));
      if (mine && in_scope) {
        ++discarded;
        purged_credit_bytes += it->wire_bytes;
        discarded_seqs += StrCat(" ", it->rt.seq);
        it = q->erase(it);
      } else {
        ++it;
      }
    }
  };
  purge(&port.queue);
  purge(&port.parked);
  // Purged tuples release their credit: the producer's recovery resend
  // re-charges whichever link the new routing map picks.
  ReleaseCredit(port_idx, key, purged_credit_bytes);
  if (discarded > 0) {
    GQP_LOG_DEBUG << "fragment " << plan_.id.ToString() << " round "
                  << request.round() << ": discarded" << discarded_seqs
                  << " from " << key << " (producer will resend)";
  }
  stats_.tuples_discarded_in_moves += discarded;
  if (discarded > 0) {
    node_->SubmitWork(kExchangeTag,
                      plan_.config.consumer_discard_cost_ms *
                          static_cast<double>(discarded),
                      nullptr);
  }

  // 2. Stateful fragments: port 0 carries build state.
  if (stateful && port_idx == 0) {
    if (request.recovery()) {
      // The recovery purge above discarded queued build tuples of every
      // bucket, kept ones included. Probe processing must pause entirely
      // until this producer's resends land (RestoreComplete), or probes
      // would run against incomplete state and silently drop matches.
      build_recovery_rounds_.insert({key, request.round()});
    }
    if (!request.buckets_lost().empty()) {
      for (auto& op : ops_) op->PurgeBuckets(request.buckets_lost());
      // Probe tuples of lost buckets must not run against the now-missing
      // state; they stay parked until the probe-side purge removes them.
      for (const int b : request.buckets_lost()) frozen_lost_.insert(b);
      // The purged state's inputs are no longer held here; the bucket's
      // new owner becomes responsible for them. Forgetting them now keeps
      // a later ack of ours from pruning the producer's only copy.
      auto& retained = tracking.retained_unacked;
      retained.erase(
          std::remove_if(retained.begin(), retained.end(),
                         [&request](const ProducerTracking::RetainedInput& r) {
                           return BucketInList(r.bucket,
                                               request.buckets_lost());
                         }),
          retained.end());
    }
    for (const int b : request.buckets_gained()) {
      awaiting_restore_.insert(b);
    }
  }
  if (stateful && port_idx != 0 && !request.buckets_lost().empty()) {
    // The probe-side purge arrived: those buckets can thaw.
    for (const int b : request.buckets_lost()) frozen_lost_.erase(b);
  }

  // 3. Reply with everything this consumer holds — processed seqs (its
  // outputs carry their results while it lives) plus retained
  // (state-resident) seqs of buckets it keeps — so nothing it already
  // has is resent and duplicated.
  if (request.purge_all() || request.recovery() ||
      !request.buckets_lost().empty()) {
    std::vector<uint64_t> processed(tracking.processed.begin(),
                                    tracking.processed.end());
    std::sort(processed.begin(), processed.end());
    std::vector<uint64_t> retained;
    for (const ProducerTracking::RetainedInput& r :
         tracking.retained_unacked) {
      if (!BucketInList(r.bucket, request.buckets_lost())) {
        retained.push_back(r.seq);
      }
    }
    std::sort(retained.begin(), retained.end());
    auto reply = std::make_shared<StateMoveReplyPayload>(
        request.round(), request.exchange_id(), plan_.id,
        std::move(processed), std::move(retained), discarded);
    const Address to = msg.from;
    node_->SubmitWork(kExchangeTag, plan_.config.exchange_send_cost_ms,
                      [this, to, reply]() {
                        const Status s = SendTo(to, reply);
                        if (!s.ok()) Fail(s);
                      });
  }
  MaybeProcess();
  CheckCompletion();
}

void FragmentExecutor::OnStateMoveReply(const StateMoveReplyPayload& reply) {
  if (producer_ == nullptr) return;
  const Status s = producer_->HandleStateMoveReply(reply);
  if (!s.ok()) {
    GQP_LOG_WARN << "fragment " << plan_.id.ToString()
                 << ": state-move reply failed: " << s.ToString();
  }
}

void FragmentExecutor::OnRestoreComplete(
    const RestoreCompletePayload& restore) {
  // Fence stale markers, mirroring OnStateMoveRequest: a lost producer's
  // rounds were already abandoned in OnProducerLost.
  {
    const int p = restore.consumer_port();
    if (p >= 0 && static_cast<size_t>(p) < ports_.size() &&
        ports_[static_cast<size_t>(p)].lost.count(
            ProducerKey(restore.producer())) > 0) {
      return;
    }
  }
  auto open_it = open_state_rounds_.find(ProducerKey(restore.producer()));
  if (open_it != open_state_rounds_.end()) {
    open_it->second.erase(restore.round());
    if (open_it->second.empty()) open_state_rounds_.erase(open_it);
  }
  const int port_idx = restore.consumer_port();
  if (port_idx == 0 && plan_.fragment.Stateful()) {
    build_recovery_rounds_.erase(
        {ProducerKey(restore.producer()), restore.round()});
    if (restore.all_buckets()) {
      awaiting_restore_.clear();
    } else {
      for (const int b : restore.buckets()) awaiting_restore_.erase(b);
    }
    // Unpark probe tuples whose buckets are clear again (none while a
    // build-side recovery round is still restoring state).
    if (build_recovery_rounds_.empty()) {
      for (auto& port : ports_) {
        for (auto it = port.parked.begin(); it != port.parked.end();) {
          const int b = it->rt.bucket;
          if (awaiting_restore_.count(b) == 0 && frozen_lost_.count(b) == 0) {
            port.queue.push_back(std::move(*it));
            it = port.parked.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
  MaybeProcess();
  CheckCompletion();
}

// ---- driver ----------------------------------------------------------------

bool FragmentExecutor::PortRunnable(int port) const {
  for (int q = 0; q < port; ++q) {
    const PortState& earlier = ports_[static_cast<size_t>(q)];
    if (!earlier.EosComplete() || !earlier.queue.empty()) return false;
  }
  return true;
}

int FragmentExecutor::PickPort() {
  for (size_t p = 0; p < ports_.size(); ++p) {
    if (ports_[p].queue.empty()) continue;
    if (!PortRunnable(static_cast<int>(p))) continue;
    return static_cast<int>(p);
  }
  return -1;
}

void FragmentExecutor::MaybeProcess() {
  if (!began_ || processing_ || finished_ || dispatching_control_) return;

  // Flow-control gate (D11): with a saturated output link, starting
  // another input tuple would only pile more bytes onto the starved
  // consumer. Park the driver; the pending CreditGrant re-probes it.
  // Control traffic (state moves, acks, EOS) is never gated, and round
  // resends bypass this entirely (they run from CompleteRound).
  if (producer_ != nullptr && !producer_->HasCreditHeadroom()) {
    producer_->NoteCreditBlocked();
    // Parked output still ships: a window below `buffer_tuples` would
    // otherwise strand tuples in buffers that can never fill, and the
    // credit they hold could never be granted back (deadlock).
    const Status flush = producer_->FlushPartialBuffers();
    if (!flush.ok()) {
      GQP_LOG_WARN << "credit-parked flush failed: " << flush.ToString();
    }
    // Any releases we owe our own producers still go out, so a blocked
    // chain always unblocks bottom-up from the root.
    FlushCreditGrants();
    if (!idle_tracking_) {
      idle_tracking_ = true;
      idle_since_ = simulator()->Now();
    }
    return;
  }

  if (plan_.fragment.IsScanLeaf()) {
    if (scan_row_ < scan_table_->num_rows()) {
      processing_ = true;
      ProcessScanRow();
    } else {
      CheckCompletion();
    }
    return;
  }

  const int port = PickPort();
  if (port < 0) {
    // Going idle: ship sub-threshold credit batches now — an upstream
    // producer blocked on them has no other way to make progress.
    FlushCreditGrants();
    if (!idle_tracking_) {
      idle_tracking_ = true;
      idle_since_ = simulator()->Now();
    }
    return;
  }
  if (idle_tracking_) {
    const double wait = simulator()->Now() - idle_since_;
    m1_wait_ms_ += wait;
    stats_.idle_wait_ms += wait;
    idle_tracking_ = false;
  }
  processing_ = true;
  ProcessQueuedTuple(port);
}

void FragmentExecutor::ProcessScanRow() {
  const Tuple& row = scan_table_->row(scan_row_++);
  const PhysOpDesc& scan_desc = plan_.fragment.ops.front();
  ctx_.ResetForTuple();
  ctx_.Charge(scan_desc.cost_tag, scan_desc.base_cost_ms);

  Status s = Status::OK();
  if (!ops_.empty()) {
    s = ops_.front()->Process(0, row, -1, &ctx_);
  } else {
    ctx_.out.push_back(row);
  }
  if (!s.ok()) {
    Fail(s);
    processing_ = false;
    return;
  }

  ++stats_.tuples_processed;
  node_->SubmitComposite(ctx_.charges, [this](double actual_ms) {
    stats_.busy_ms += actual_ms;
    m1_cost_ms_ += actual_ms;
    ++m1_tuples_;
    (void)DeliverOutputs(&ctx_);
    EmitM1IfDue(actual_ms);
    processing_ = false;
    MaybeProcess();
  });
}

void FragmentExecutor::ProcessQueuedTuple(int port_idx) {
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  // Park probe tuples of in-move buckets (stateful fragments only).
  while (!port.queue.empty()) {
    const int bucket = port.queue.front().rt.bucket;
    const bool parked =
        port_idx > 0 &&
        (!build_recovery_rounds_.empty() ||
         awaiting_restore_.count(bucket) > 0 || frozen_lost_.count(bucket) > 0);
    if (!parked) break;
    port.parked.push_back(std::move(port.queue.front()));
    port.queue.pop_front();
    ++stats_.tuples_parked;
    stats_.parked_peak = std::max(stats_.parked_peak, port.parked.size());
  }
  if (port.queue.empty()) {
    processing_ = false;
    MaybeProcess();
    return;
  }

  QueuedTuple qt = std::move(port.queue.front());
  port.queue.pop_front();
  // The tuple leaves the bounded queue here; its bytes stop counting
  // against the producer's window (operator state is not budgeted).
  ReleaseCredit(port_idx, qt.producer_key, qt.wire_bytes);

  ctx_.ResetForTuple();
  const Status s =
      ops_.front()->Process(port_idx, qt.rt.tuple, qt.rt.bucket, &ctx_);
  if (!s.ok()) {
    Fail(s);
    processing_ = false;
    return;
  }
  const bool retained = ctx_.retained;
  ++stats_.tuples_processed;

  node_->SubmitComposite(
      ctx_.charges, [this, port_idx, qt = std::move(qt),
                     retained](double actual_ms) {
        stats_.busy_ms += actual_ms;
        m1_cost_ms_ += actual_ms;
        ++m1_tuples_;
        const std::vector<uint64_t> output_seqs = DeliverOutputs(&ctx_);
        RecordProcessed(port_idx, qt, retained, output_seqs);
        processing_ = false;
        // Handle state moves that raced with this tuple: its seq is now in
        // the processed set, so the purge/reply below stay consistent.
        // The driver stays suppressed until every deferred control message
        // is dispatched — otherwise the first handler would start new
        // tuple work and later purges/replies would race with it again.
        dispatching_control_ = true;
        std::vector<Message> deferred;
        deferred.swap(deferred_state_moves_);
        for (const Message& m : deferred) DispatchStateMove(m);
        dispatching_control_ = false;
        EmitM1IfDue(actual_ms);
        MaybeProcess();
        CheckCompletion();
      });
}

std::vector<uint64_t> FragmentExecutor::DeliverOutputs(ExecContext* ctx) {
  std::vector<uint64_t> seqs;
  stats_.tuples_emitted += ctx->out.size();
  if (producer_ == nullptr) {
    ctx->out.clear();
    return seqs;
  }
  seqs.reserve(ctx->out.size());
  for (const Tuple& t : ctx->out) {
    Result<uint64_t> seq = producer_->Offer(t);
    if (!seq.ok()) {
      Fail(seq.status());
      break;
    }
    seqs.push_back(*seq);
  }
  ctx->out.clear();
  return seqs;
}

void FragmentExecutor::RecordProcessed(
    int port_idx, const QueuedTuple& qt, bool retained,
    const std::vector<uint64_t>& output_seqs) {
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  auto it = port.producers.find(qt.producer_key);
  if (it == port.producers.end()) return;
  if (retained) {
    // State-resident tuples are acknowledged only once the fragment has
    // finished and its outputs are durable downstream (MaybeAckRetained):
    // until then they are the recovery copy of the state.
    it->second.retained_unacked.push_back(
        ProducerTracking::RetainedInput{qt.rt.seq, qt.rt.bucket});
    return;
  }
  // The processed set is updated immediately (state moves must not resend
  // this tuple), but the acknowledgment cascades: it is sent only once all
  // outputs derived from the tuple are acknowledged downstream.
  it->second.processed.insert(qt.rt.seq);
  if (output_seqs.empty() || producer_ == nullptr) {
    AckInput(port_idx, qt.producer_key, qt.rt.seq);
    return;
  }
  auto pending = std::make_shared<PendingInput>();
  pending->port = port_idx;
  pending->producer_key = qt.producer_key;
  pending->seq = qt.rt.seq;
  pending->remaining_outputs = output_seqs.size();
  for (const uint64_t out_seq : output_seqs) {
    output_to_input_.emplace(out_seq, pending);
  }
}

void FragmentExecutor::AckInput(int port_idx, const std::string& producer_key,
                                uint64_t seq) {
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  auto it = port.producers.find(producer_key);
  if (it == port.producers.end()) return;
  const bool checkpoint_due = it->second.acks->Add(seq);
  // After the fragment finished, acknowledgments no longer batch: late
  // cascading acks (outputs confirmed downstream after our completion)
  // must still reach the producer, or its recovery log never drains.
  if (checkpoint_due || finished_) {
    FlushAcks(port_idx, producer_key, /*force=*/finished_);
  }
}

void FragmentExecutor::OnOutputsAcked(const std::vector<uint64_t>& seqs) {
  for (const uint64_t out_seq : seqs) {
    auto it = output_to_input_.find(out_seq);
    if (it == output_to_input_.end()) continue;
    const std::shared_ptr<PendingInput> pending = it->second;
    output_to_input_.erase(it);
    if (pending->remaining_outputs == 0) continue;  // defensive
    if (--pending->remaining_outputs == 0) {
      AckInput(pending->port, pending->producer_key, pending->seq);
    }
  }
}

void FragmentExecutor::MaybeAckRetained() {
  if (!finished_) return;
  // Outputs are durable once nothing remains in the recovery log (the
  // root has no producer: its outputs ARE the delivered result).
  if (producer_ != nullptr && !producer_->log().empty()) return;
  for (size_t p = 0; p < ports_.size(); ++p) {
    std::vector<std::string> keys;
    for (const auto& [key, tracking] : ports_[p].producers) {
      if (!tracking.retained_unacked.empty()) keys.push_back(key);
    }
    for (const std::string& key : keys) {
      ProducerTracking& tracking = ports_[p].producers.at(key);
      for (const ProducerTracking::RetainedInput& r :
           tracking.retained_unacked) {
        tracking.acks->Add(r.seq);
      }
      tracking.retained_unacked.clear();
      FlushAcks(static_cast<int>(p), key, /*force=*/true);
    }
  }
}

void FragmentExecutor::FlushAcks(int port_idx, const std::string& producer_key,
                                 bool force) {
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  auto it = port.producers.find(producer_key);
  if (it == port.producers.end()) return;
  ProducerTracking& tracking = it->second;
  if (!force && tracking.acks->pending() < plan_.config.checkpoint_interval) {
    return;
  }
  std::vector<uint64_t> seqs = tracking.acks->Drain();
  if (seqs.empty()) return;
  auto ack = std::make_shared<AckPayload>(tracking.exchange_id, plan_.id,
                                          std::move(seqs));
  ++stats_.acks_sent;
  const Address to = tracking.address;
  node_->SubmitWork(kExchangeTag, plan_.config.exchange_send_cost_ms,
                    [this, to, ack]() {
                      const Status s = SendTo(to, ack);
                      if (!s.ok()) Fail(s);
                    });
}

// ---- flow control (D11) ----------------------------------------------------

size_t FragmentExecutor::CreditGrantThreshold() const {
  const double t = static_cast<double>(plan_.config.credit_window_bytes) *
                   plan_.config.credit_grant_fraction;
  return t < 1.0 ? 1 : static_cast<size_t>(t);
}

void FragmentExecutor::ReleaseCredit(int port_idx,
                                     const std::string& producer_key,
                                     size_t bytes) {
  if (bytes == 0) return;
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  port.held_bytes -= std::min<uint64_t>(bytes, port.held_bytes);
  if (!FlowControlOn()) return;
  auto it = port.producers.find(producer_key);
  if (it != port.producers.end()) {
    const bool due = it->second.credit.Release(bytes, CreditGrantThreshold());
    // No grants to fenced producers: their link was voided at the
    // producer side, and recovery owns their bytes now.
    if (due && port.lost.count(producer_key) == 0) {
      SendCreditGrant(&it->second);
    }
  }
  UpdateQueuePressure(port_idx);
}

void FragmentExecutor::FlushCreditGrants() {
  if (!FlowControlOn()) return;
  for (auto& port : ports_) {
    std::vector<std::string> keys;
    for (const auto& [key, tracking] : port.producers) {
      if (tracking.credit.pending_grant_bytes > 0 &&
          port.lost.count(key) == 0) {
        keys.push_back(key);
      }
    }
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      SendCreditGrant(&port.producers.at(key));
    }
  }
}

void FragmentExecutor::SendCreditGrant(ProducerTracking* tracking) {
  const uint64_t released = tracking->credit.TakeGrant();
  auto grant = std::make_shared<CreditGrantPayload>(tracking->exchange_id,
                                                    plan_.id, released);
  ++stats_.credit_grants_sent;
  const Address to = tracking->address;
  node_->SubmitWork(kExchangeTag, plan_.config.exchange_send_cost_ms,
                    [this, to, grant]() {
                      const Status s = SendTo(to, grant);
                      if (!s.ok()) {
                        GQP_LOG_WARN << "credit grant send failed: "
                                     << s.ToString();
                      }
                    });
}

void FragmentExecutor::UpdateQueuePressure(int port_idx) {
  if (!FlowControlOn()) return;
  PortState& port = ports_[static_cast<size_t>(port_idx)];
  const double window =
      static_cast<double>(plan_.config.credit_window_bytes) *
      static_cast<double>(std::max(port.wiring.num_producers, 1));
  const bool over = static_cast<double>(port.held_bytes) >=
                    plan_.config.pressure_fraction * window;
  if (!over) {
    // Relief re-arms the episode detector.
    port.pressure_since = -1.0;
    port.pressure_emitted = false;
    return;
  }
  const SimTime now = simulator()->Now();
  if (port.pressure_since < 0.0) {
    port.pressure_since = now;
    return;
  }
  if (port.pressure_emitted ||
      now - port.pressure_since < plan_.config.pressure_threshold_ms) {
    return;
  }
  port.pressure_emitted = true;
  ++stats_.queue_pressure_events;
  if (plan_.adaptivity.med.host == kInvalidHost) return;
  node_->SubmitWork(kExchangeTag, plan_.config.monitor_emit_cost_ms, nullptr);
  const Status s =
      SendTo(plan_.adaptivity.med,
             std::make_shared<QueuePressurePayload>(
                 plan_.id, port_idx, port.held_bytes,
                 static_cast<uint64_t>(window)));
  if (!s.ok()) {
    GQP_LOG_WARN << "QueuePressure emission failed: " << s.ToString();
  }
}

void FragmentExecutor::EmitM1IfDue(double /*cost_ms*/) {
  if (!plan_.config.monitoring_enabled || plan_.config.m1_frequency == 0 ||
      plan_.adaptivity.med.host == kInvalidHost || producer_ == nullptr) {
    return;
  }
  if (m1_tuples_ < plan_.config.m1_frequency) return;

  const double cost_per_tuple =
      m1_cost_ms_ / static_cast<double>(m1_tuples_);
  const double wait_per_tuple =
      m1_wait_ms_ / static_cast<double>(m1_tuples_);
  const double selectivity =
      stats_.tuples_processed > 0
          ? static_cast<double>(stats_.tuples_emitted) /
                static_cast<double>(stats_.tuples_processed)
          : 1.0;
  m1_tuples_ = 0;
  m1_cost_ms_ = 0.0;
  m1_wait_ms_ = 0.0;
  ++stats_.m1_sent;
  node_->SubmitWork(kExchangeTag, plan_.config.monitor_emit_cost_ms, nullptr);
  const Status s = SendTo(
      plan_.adaptivity.med,
      std::make_shared<M1Payload>(plan_.id, cost_per_tuple, wait_per_tuple,
                                  selectivity, stats_.tuples_processed));
  if (!s.ok()) {
    GQP_LOG_WARN << "M1 emission failed: " << s.ToString();
  }
}

// ---- completion ------------------------------------------------------------

std::string FragmentExecutor::DebugString() const {
  std::string out = StrCat(plan_.id.ToString(), ": began=", began_,
                           " finished=", finished_, " processing=",
                           processing_, " offered=", completion_offered_,
                           " dead=", node_->dead());
  if (plan_.fragment.IsScanLeaf()) {
    out += StrCat(" scan_row=", scan_row_, "/", scan_table_->num_rows());
  }
  for (size_t p = 0; p < ports_.size(); ++p) {
    const PortState& port = ports_[p];
    size_t acks_pending = 0;
    for (const auto& [key, tracking] : port.producers) {
      acks_pending += tracking.acks->pending();
      acks_pending += tracking.retained_unacked.size();
    }
    out += StrCat(" port", p, "={queue=", port.queue.size(), " parked=",
                  port.parked.size(), " eos=", port.eos_from.size(), "/",
                  port.wiring.num_producers, " lost=", port.lost.size(),
                  " acks_pending=", acks_pending, "}");
  }
  if (!open_state_rounds_.empty()) {
    out += " open_rounds={";
    bool first = true;
    for (const auto& [key, rounds] : open_state_rounds_) {
      if (!first) out += " ";
      first = false;
      out += StrCat(key, ":", rounds.size());
    }
    out += "}";
  }
  if (!awaiting_restore_.empty()) {
    out += StrCat(" awaiting_restore=", awaiting_restore_.size());
  }
  if (!frozen_lost_.empty()) out += StrCat(" frozen=", frozen_lost_.size());
  if (producer_ != nullptr) {
    out += StrCat(" producer={", producer_->DebugString(), "}");
  }
  if (!exec_status_.ok()) out += StrCat(" error=", exec_status_.ToString());
  return out;
}

bool FragmentExecutor::LocallyDrained() const {
  if (processing_) return false;
  if (plan_.fragment.IsScanLeaf()) {
    return scan_row_ >= scan_table_->num_rows();
  }
  if (!awaiting_restore_.empty()) return false;
  if (!open_state_rounds_.empty()) return false;
  for (const PortState& port : ports_) {
    if (!port.EosComplete()) return false;
    if (!port.queue.empty() || !port.parked.empty()) return false;
  }
  return true;
}

void FragmentExecutor::CheckCompletion() {
  if (finished_ || !began_ || !LocallyDrained()) return;

  // Partitioned consumers must confirm with the Responder that no
  // retrospective redistribution can still route work to them.
  const bool needs_handshake =
      plan_.adaptivity.enabled && plan_.fragment.partitioned &&
      !plan_.fragment.IsScanLeaf() &&
      plan_.adaptivity.responder.host != kInvalidHost;
  if (!needs_handshake) {
    FinishFragment();
    return;
  }
  if (completion_offered_) return;
  completion_offered_ = true;
  const Status s =
      SendTo(plan_.adaptivity.responder,
             std::make_shared<CompletionOfferPayload>(plan_.id));
  if (!s.ok()) Fail(s);
}

void FragmentExecutor::OnCompletionGrant() {
  if (finished_) return;
  if (!LocallyDrained()) {
    // In-flight resends arrived between our offer and the grant; drain
    // them and re-offer.
    completion_offered_ = false;
    MaybeProcess();
    return;
  }
  FinishFragment();
}

void FragmentExecutor::FinishFragment() {
  if (finished_) return;
  finished_ = true;

  for (size_t p = 0; p < ports_.size(); ++p) {
    for (auto& op : ops_) {
      const Status s = op->FinishPort(static_cast<int>(p), &ctx_);
      if (!s.ok()) Fail(s);
    }
  }
  ctx_.ResetForTuple();
  if (!ops_.empty()) {
    const Status s = ops_.front()->Finish(&ctx_);
    if (!s.ok()) Fail(s);
    (void)DeliverOutputs(&ctx_);
  }

  // Drain remaining acknowledgments (the paper's "checkpoints are returned
  // ... when tuples are not needed any more"). Retained (state-resident)
  // tuples are NOT unneeded yet: our outputs may still be unacknowledged
  // downstream, and after a crash they can only be regenerated by
  // replaying those inputs. MaybeAckRetained releases them once the
  // recovery log drains.
  for (size_t p = 0; p < ports_.size(); ++p) {
    std::vector<std::string> keys;
    for (const auto& [key, tracking] : ports_[p].producers) {
      keys.push_back(key);
    }
    for (const std::string& key : keys) {
      FlushAcks(static_cast<int>(p), key, /*force=*/true);
    }
  }

  if (producer_ != nullptr) {
    const Status s = producer_->FinishInput();
    if (!s.ok()) Fail(s);
  }
  MaybeAckRetained();

  if (plan_.coordinator.host != kInvalidHost) {
    const Status s =
        SendTo(plan_.coordinator,
               std::make_shared<FragmentCompletePayload>(
                   plan_.id, stats_.tuples_processed, stats_.tuples_emitted));
    if (!s.ok()) Fail(s);
  }
}

}  // namespace gqp
